// On-disk validator tests: CheckStructure() accepts freshly built and
// reopened structures and detects injected corruption.

#include <gtest/gtest.h>

#include <cstring>

#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "io/mem_page_device.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

std::vector<Point> Pts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 500'000;
  return GenPointsUniform(o);
}

TEST(CheckStructureTest, FreshExternalPstIsClean) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(30000, 3)).ok());
  EXPECT_TRUE(pst.CheckStructure().ok());

  ExternalPst empty(&dev);
  ASSERT_TRUE(empty.Build({}).ok());
  EXPECT_TRUE(empty.CheckStructure().ok());
}

TEST(CheckStructureTest, FreshTwoLevelIsClean) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(50000, 5)).ok());
  EXPECT_TRUE(pst.CheckStructure().ok());
}

TEST(CheckStructureTest, SmallPagesClean) {
  MemPageDevice dev(512);
  ExternalPst a(&dev);
  ASSERT_TRUE(a.Build(Pts(5000, 7)).ok());
  EXPECT_TRUE(a.CheckStructure().ok());
  TwoLevelPst b(&dev);
  ASSERT_TRUE(b.Build(Pts(5000, 9)).ok());
  EXPECT_TRUE(b.CheckStructure().ok());
}

TEST(CheckStructureTest, ReopenedStructureIsClean) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(20000, 11)).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());
  ExternalPst reopened(&dev);
  ASSERT_TRUE(reopened.Open(manifest.value()).ok());
  EXPECT_TRUE(reopened.CheckStructure().ok());
}

TEST(CheckStructureTest, DetectsCorruptedPage) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(30000, 13)).ok());
  ASSERT_TRUE(pst.CheckStructure().ok());

  // Smash a handful of non-skeletal pages with garbage point data; the
  // validator must notice at least one broken invariant.  (Pages holding
  // list records are the overwhelming majority of the store.)
  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(dev.Read(40, buf.data()).ok());
  // Flip y values inside what is very likely a record page: write a
  // descending pattern violation after the header.
  for (size_t off = 16; off + 24 <= buf.size(); off += 24) {
    int64_t garbage = static_cast<int64_t>(off);  // ascending ys
    std::memcpy(buf.data() + off + 8, &garbage, 8);
  }
  ASSERT_TRUE(dev.Write(40, buf.data()).ok());
  Status s = pst.CheckStructure();
  // Either a direct Corruption or (if page 40 was structural) an I/O-layer
  // corruption surfaces; what must NOT happen is a clean bill of health.
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace pathcache
