// On-disk validator tests: CheckStructure() accepts freshly built and
// reopened structures and detects injected corruption.

#include <gtest/gtest.h>

#include <cstring>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "core/three_sided.h"
#include "io/mem_page_device.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

std::vector<Point> Pts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 500'000;
  return GenPointsUniform(o);
}

std::vector<Interval> Ivs(uint64_t n, uint64_t seed) {
  IntervalGenOptions o;
  o.n = n;
  o.domain_max = 500'000;
  o.seed = seed;
  return GenIntervalsUniform(o);
}

TEST(CheckStructureTest, FreshExternalPstIsClean) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(30000, 3)).ok());
  EXPECT_TRUE(pst.CheckStructure().ok());

  ExternalPst empty(&dev);
  ASSERT_TRUE(empty.Build({}).ok());
  EXPECT_TRUE(empty.CheckStructure().ok());
}

TEST(CheckStructureTest, FreshTwoLevelIsClean) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(50000, 5)).ok());
  EXPECT_TRUE(pst.CheckStructure().ok());
}

TEST(CheckStructureTest, SmallPagesClean) {
  MemPageDevice dev(512);
  ExternalPst a(&dev);
  ASSERT_TRUE(a.Build(Pts(5000, 7)).ok());
  EXPECT_TRUE(a.CheckStructure().ok());
  TwoLevelPst b(&dev);
  ASSERT_TRUE(b.Build(Pts(5000, 9)).ok());
  EXPECT_TRUE(b.CheckStructure().ok());
}

TEST(CheckStructureTest, ReopenedStructureIsClean) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(20000, 11)).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());
  ExternalPst reopened(&dev);
  ASSERT_TRUE(reopened.Open(manifest.value()).ok());
  EXPECT_TRUE(reopened.CheckStructure().ok());
}

TEST(CheckStructureTest, DetectsCorruptedPage) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(30000, 13)).ok());
  ASSERT_TRUE(pst.CheckStructure().ok());

  // Smash a handful of non-skeletal pages with garbage point data; the
  // validator must notice at least one broken invariant.  (Pages holding
  // list records are the overwhelming majority of the store.)
  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(dev.Read(40, buf.data()).ok());
  // Flip y values inside what is very likely a record page: write a
  // descending pattern violation after the header.
  for (size_t off = 16; off + 24 <= buf.size(); off += 24) {
    int64_t garbage = static_cast<int64_t>(off);  // ascending ys
    std::memcpy(buf.data() + off + 8, &garbage, 8);
  }
  ASSERT_TRUE(dev.Write(40, buf.data()).ok());
  Status s = pst.CheckStructure();
  // Either a direct Corruption or (if page 40 was structural) an I/O-layer
  // corruption surfaces; what must NOT happen is a clean bill of health.
  EXPECT_FALSE(s.ok());
}

TEST(CheckStructureTest, FreshThreeSidedIsClean) {
  for (bool caching : {true, false}) {
    MemPageDevice dev(4096);
    ThreeSidedPstOptions opts;
    opts.enable_path_caching = caching;
    ThreeSidedPst pst(&dev, opts);
    ASSERT_TRUE(pst.Build(Pts(20000, 15)).ok());
    EXPECT_TRUE(pst.CheckStructure().ok()) << "caching=" << caching;
  }
}

TEST(CheckStructureTest, FreshSegmentTreeIsClean) {
  for (bool caching : {true, false}) {
    MemPageDevice dev(4096);
    ExtSegmentTreeOptions opts;
    opts.enable_path_caching = caching;
    ExtSegmentTree tree(&dev, opts);
    ASSERT_TRUE(tree.Build(Ivs(8000, 17)).ok());
    EXPECT_TRUE(tree.CheckStructure().ok()) << "caching=" << caching;
  }
}

TEST(CheckStructureTest, FreshIntervalTreeIsClean) {
  for (bool caching : {true, false}) {
    MemPageDevice dev(4096);
    ExtIntervalTreeOptions opts;
    opts.enable_path_caching = caching;
    ExtIntervalTree tree(&dev, opts);
    ASSERT_TRUE(tree.Build(Ivs(8000, 19)).ok());
    EXPECT_TRUE(tree.CheckStructure().ok()) << "caching=" << caching;
  }
}

TEST(CheckStructureTest, SmallPagesNewStructuresClean) {
  MemPageDevice dev(512);
  ThreeSidedPst a(&dev);
  ASSERT_TRUE(a.Build(Pts(4000, 21)).ok());
  EXPECT_TRUE(a.CheckStructure().ok());
  ExtSegmentTree b(&dev);
  ASSERT_TRUE(b.Build(Ivs(2000, 23)).ok());
  EXPECT_TRUE(b.CheckStructure().ok());
  ExtIntervalTree c(&dev);
  ASSERT_TRUE(c.Build(Ivs(2000, 25)).ok());
  EXPECT_TRUE(c.CheckStructure().ok());
}

TEST(CheckStructureTest, ClusteredAndReopenedStayClean) {
  MemPageDevice dev(4096);
  ThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(15000, 27)).ok());
  ASSERT_TRUE(pst.Cluster().ok());
  EXPECT_TRUE(pst.CheckStructure().ok());
  auto m1 = pst.Save();
  ASSERT_TRUE(m1.ok());
  ThreeSidedPst pst2(&dev);
  ASSERT_TRUE(pst2.Open(m1.value()).ok());
  EXPECT_TRUE(pst2.CheckStructure().ok());

  ExtSegmentTree seg(&dev);
  ASSERT_TRUE(seg.Build(Ivs(6000, 29)).ok());
  ASSERT_TRUE(seg.Cluster().ok());
  EXPECT_TRUE(seg.CheckStructure().ok());
  auto m2 = seg.Save();
  ASSERT_TRUE(m2.ok());
  ExtSegmentTree seg2(&dev);
  ASSERT_TRUE(seg2.Open(m2.value()).ok());
  EXPECT_TRUE(seg2.CheckStructure().ok());

  ExtIntervalTree ivt(&dev);
  ASSERT_TRUE(ivt.Build(Ivs(6000, 31)).ok());
  ASSERT_TRUE(ivt.Cluster().ok());
  EXPECT_TRUE(ivt.CheckStructure().ok());
  auto m3 = ivt.Save();
  ASSERT_TRUE(m3.ok());
  ExtIntervalTree ivt2(&dev);
  ASSERT_TRUE(ivt2.Open(m3.value()).ok());
  EXPECT_TRUE(ivt2.CheckStructure().ok());
}

// Smashing record pages must never yield a clean bill of health from the
// new validators either.
TEST(CheckStructureTest, NewValidatorsDetectCorruptedPages) {
  MemPageDevice dev(4096);
  ThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(20000, 33)).ok());
  ASSERT_TRUE(pst.CheckStructure().ok());

  std::vector<std::byte> buf(4096);
  PageId victim = dev.live_pages() / 3;
  while (!dev.Read(victim, buf.data()).ok()) ++victim;
  for (size_t off = 16; off + 8 <= buf.size(); off += 8) {
    int64_t garbage = static_cast<int64_t>(off * 7919);
    std::memcpy(buf.data() + off, &garbage, 8);
  }
  ASSERT_TRUE(dev.Write(victim, buf.data()).ok());
  EXPECT_FALSE(pst.CheckStructure().ok());
}

}  // namespace
}  // namespace pathcache
