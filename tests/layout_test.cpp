// Disk-layout clustering (io/layout.h): unit tests for the ordering and
// relocation primitives, plus golden-layout tests for all four structures —
// clustering must leave query results AND counted logical I/O bit-identical
// to an unclustered twin; only physical placement changes.

#include "io/layout.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/persist.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "io/block_list.h"
#include "io/file_page_device.h"
#include "io/mem_page_device.h"
#include "util/random.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 300'000;
  return GenPointsUniform(o);
}

std::vector<Interval> UniformIvs(uint64_t n, uint64_t seed) {
  IntervalGenOptions o;
  o.n = n;
  o.seed = seed;
  auto ivs = GenIntervalsUniform(o);
  MakeEndpointsDistinct(&ivs);
  return ivs;
}

// ---- VanEmdeBoasOrder ------------------------------------------------------

std::vector<PageTreeNode> CompleteTree(uint32_t levels) {
  const uint32_t n = (1u << levels) - 1;
  std::vector<PageTreeNode> nodes(n);
  for (uint32_t i = 0; i < n; ++i) {
    nodes[i].id = 100 + i;
    if (2 * i + 2 < n) nodes[i].children = {2 * i + 1, 2 * i + 2};
  }
  return nodes;
}

TEST(VanEmdeBoasOrderTest, CompleteHeight3) {
  auto nodes = CompleteTree(3);
  EXPECT_EQ(VanEmdeBoasOrder(nodes, 0),
            (std::vector<uint32_t>{0, 1, 3, 4, 2, 5, 6}));
}

TEST(VanEmdeBoasOrderTest, CompleteHeight4GroupsBottomSubtrees) {
  auto nodes = CompleteTree(4);
  // Top two levels first, then each height-2 bottom subtree contiguously.
  EXPECT_EQ(VanEmdeBoasOrder(nodes, 0),
            (std::vector<uint32_t>{0, 1, 2, 3, 7, 8, 4, 9, 10, 5, 11, 12, 6,
                                   13, 14}));
}

TEST(VanEmdeBoasOrderTest, UnbalancedChainAndPermutation) {
  // A path: 0 -> 1 -> 2 -> 3 -> 4.
  std::vector<PageTreeNode> nodes(5);
  for (uint32_t i = 0; i < 5; ++i) {
    nodes[i].id = i;
    if (i + 1 < 5) nodes[i].children = {i + 1};
  }
  EXPECT_EQ(VanEmdeBoasOrder(nodes, 0),
            (std::vector<uint32_t>{0, 1, 2, 3, 4}));

  // A lopsided tree: every emitted index appears exactly once.
  std::vector<PageTreeNode> lop(6);
  for (uint32_t i = 0; i < 6; ++i) lop[i].id = i;
  lop[0].children = {1, 2};
  lop[1].children = {3};
  lop[3].children = {4, 5};
  auto order = VanEmdeBoasOrder(lop, 0);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 0u);
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> want(6);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(sorted, want);
}

// ---- ComputeRemap / ApplyLayout -------------------------------------------

TEST(LayoutPlanTest, ComputeRemapRejectsBadPlans) {
  LayoutPlan dup;
  dup.Add(3);
  dup.Add(3);
  EXPECT_TRUE(ComputeRemap(dup).status().IsInvalidArgument());

  LayoutPlan invalid;
  invalid.Add(kInvalidPageId);
  EXPECT_TRUE(ComputeRemap(invalid).status().IsInvalidArgument());

  LayoutPlan stray;
  stray.Add(1);
  stray.AddRef(2, 0);  // slot on a page the plan does not own
  EXPECT_TRUE(ComputeRemap(stray).status().IsInvalidArgument());
}

TEST(ApplyLayoutTest, ReordersInterleavedChainsAndFixesContig) {
  MemPageDevice dev(256);
  const uint32_t per_page = RecordsPerPage<uint64_t>(256);

  // Chain A at ids {0,1}, a foreign page at 2, chain B at ids {3,4}.
  std::vector<uint64_t> recs_a(per_page + 3), recs_b(per_page + 5);
  std::iota(recs_a.begin(), recs_a.end(), 1000);
  std::iota(recs_b.begin(), recs_b.end(), 5000);
  auto a = BuildBlockList<uint64_t>(&dev, recs_a);
  auto foreign = dev.Allocate();
  ASSERT_TRUE(foreign.ok());
  std::vector<std::byte> sentinel(256, std::byte{0xAB});
  ASSERT_TRUE(dev.Write(foreign.value(), sentinel.data()).ok());
  auto b = BuildBlockList<uint64_t>(&dev, recs_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().pages, (std::vector<PageId>{0, 1}));
  ASSERT_EQ(b.value().pages, (std::vector<PageId>{3, 4}));

  // Desired order: B first, then A — so both chains move but page 2 stays.
  LayoutPlan plan;
  plan.AddChain(b.value().pages);
  plan.AddChain(a.value().pages);
  auto remap = ComputeRemap(plan);
  ASSERT_TRUE(remap.ok());
  EXPECT_EQ(remap.value().Of(3), 0u);
  EXPECT_EQ(remap.value().Of(4), 1u);
  EXPECT_EQ(remap.value().Of(0), 3u);
  EXPECT_EQ(remap.value().Of(2), 2u);  // identity outside the plan
  ASSERT_TRUE(ApplyLayout(&dev, plan, remap.value()).ok());

  // Both chains read back intact from their remapped heads.
  std::vector<uint64_t> got_a, got_b;
  BlockListRef ra{remap.value().Of(a.value().ref.head), recs_a.size()};
  BlockListRef rb{remap.value().Of(b.value().ref.head), recs_b.size()};
  ASSERT_TRUE(ReadBlockList<uint64_t>(&dev, ra, &got_a).ok());
  ASSERT_TRUE(ReadBlockList<uint64_t>(&dev, rb, &got_b).ok());
  EXPECT_EQ(got_a, recs_a);
  EXPECT_EQ(got_b, recs_b);

  // Chain headers were rewritten: both chains are now id-contiguous and say
  // so in their contig run-lengths; next pointers were remapped.
  std::vector<std::byte> buf(256);
  ASSERT_TRUE(dev.Read(rb.head, buf.data()).ok());
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  EXPECT_EQ(hdr.contig, 1u);
  EXPECT_EQ(hdr.next, rb.head + 1);

  // The foreign page never moved and never got rewritten.
  ASSERT_TRUE(dev.Read(foreign.value(), buf.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), sentinel.data(), 256), 0);
}

// ---- Golden layout: clustered twin answers identically --------------------

TEST(ClusterTest, ExternalPstBitIdenticalCountedIo) {
  auto pts = UniformPts(20000, 3);
  MemPageDevice plain_dev(1024), clus_dev(1024);
  ExternalPst plain(&plain_dev), clustered(&clus_dev);
  ASSERT_TRUE(plain.Build(pts).ok());
  ASSERT_TRUE(clustered.Build(pts).ok());
  ASSERT_TRUE(clustered.Cluster().ok());
  // Invariants hold on the relocated pages, and the skeletal root — first
  // page of the plan — landed on the smallest owned id of a fresh build.
  ASSERT_TRUE(clustered.CheckStructure().ok());
  EXPECT_EQ(clustered.root().page, 0u);

  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got_plain, got_clus;
    const uint64_t before_plain = plain_dev.stats().reads;
    ASSERT_TRUE(plain.QueryTwoSided(q, &got_plain).ok());
    const uint64_t reads_plain = plain_dev.stats().reads - before_plain;
    const uint64_t before_clus = clus_dev.stats().reads;
    ASSERT_TRUE(clustered.QueryTwoSided(q, &got_clus).ok());
    const uint64_t reads_clus = clus_dev.stats().reads - before_clus;
    ASSERT_TRUE(SameResult(got_plain, got_clus));
    EXPECT_EQ(reads_plain, reads_clus) << "query " << i;
  }
}

TEST(ClusterTest, ExternalPstCachingOffToo) {
  auto pts = UniformPts(8000, 5);
  MemPageDevice plain_dev(1024), clus_dev(1024);
  ExternalPstOptions opts;
  opts.enable_path_caching = false;
  ExternalPst plain(&plain_dev, opts), clustered(&clus_dev, opts);
  ASSERT_TRUE(plain.Build(pts).ok());
  ASSERT_TRUE(clustered.Build(pts).ok());
  ASSERT_TRUE(clustered.Cluster().ok());
  Rng rng(11);
  for (int i = 0; i < 15; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got_plain, got_clus;
    const uint64_t before_plain = plain_dev.stats().reads;
    ASSERT_TRUE(plain.QueryTwoSided(q, &got_plain).ok());
    const uint64_t reads_plain = plain_dev.stats().reads - before_plain;
    const uint64_t before_clus = clus_dev.stats().reads;
    ASSERT_TRUE(clustered.QueryTwoSided(q, &got_clus).ok());
    ASSERT_TRUE(SameResult(got_plain, got_clus));
    EXPECT_EQ(reads_plain, clus_dev.stats().reads - before_clus);
  }
}

TEST(ClusterTest, ThreeSidedPstBitIdenticalCountedIo) {
  auto pts = UniformPts(15000, 13);
  MemPageDevice plain_dev(1024), clus_dev(1024);
  ThreeSidedPst plain(&plain_dev), clustered(&clus_dev);
  ASSERT_TRUE(plain.Build(pts).ok());
  ASSERT_TRUE(clustered.Build(pts).ok());
  ASSERT_TRUE(clustered.Cluster().ok());

  Rng rng(17);
  for (int i = 0; i < 25; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.1, &rng);
    std::vector<Point> got_plain, got_clus;
    const uint64_t before_plain = plain_dev.stats().reads;
    ASSERT_TRUE(plain.QueryThreeSided(q, &got_plain).ok());
    const uint64_t reads_plain = plain_dev.stats().reads - before_plain;
    const uint64_t before_clus = clus_dev.stats().reads;
    ASSERT_TRUE(clustered.QueryThreeSided(q, &got_clus).ok());
    const uint64_t reads_clus = clus_dev.stats().reads - before_clus;
    ASSERT_TRUE(SameResult(got_plain, got_clus));
    ASSERT_TRUE(SameResult(got_plain, BruteThreeSided(pts, q)));
    EXPECT_EQ(reads_plain, reads_clus) << "query " << i;
  }
}

TEST(ClusterTest, ExtSegmentTreeBitIdenticalCountedIo) {
  auto ivs = UniformIvs(8000, 19);
  MemPageDevice plain_dev(1024), clus_dev(1024);
  ExtSegmentTree plain(&plain_dev), clustered(&clus_dev);
  ASSERT_TRUE(plain.Build(ivs).ok());
  ASSERT_TRUE(clustered.Build(ivs).ok());
  ASSERT_TRUE(clustered.Cluster().ok());

  Rng rng(23);
  for (int i = 0; i < 25; ++i) {
    const auto& iv = ivs[rng.Uniform(ivs.size())];
    const int64_t q = rng.Bernoulli(0.5) ? iv.lo : iv.hi;
    std::vector<Interval> got_plain, got_clus;
    const uint64_t before_plain = plain_dev.stats().reads;
    ASSERT_TRUE(plain.Stab(q, &got_plain).ok());
    const uint64_t reads_plain = plain_dev.stats().reads - before_plain;
    const uint64_t before_clus = clus_dev.stats().reads;
    ASSERT_TRUE(clustered.Stab(q, &got_clus).ok());
    const uint64_t reads_clus = clus_dev.stats().reads - before_clus;
    ASSERT_TRUE(SameResult(got_plain, got_clus));
    ASSERT_TRUE(SameResult(got_plain, BruteStab(ivs, q)));
    EXPECT_EQ(reads_plain, reads_clus) << "stab " << q;
  }
}

TEST(ClusterTest, ExtIntervalTreeBitIdenticalCountedIo) {
  auto ivs = UniformIvs(8000, 29);
  MemPageDevice plain_dev(1024), clus_dev(1024);
  ExtIntervalTree plain(&plain_dev), clustered(&clus_dev);
  ASSERT_TRUE(plain.Build(ivs).ok());
  ASSERT_TRUE(clustered.Build(ivs).ok());
  ASSERT_TRUE(clustered.Cluster().ok());

  Rng rng(31);
  for (int i = 0; i < 25; ++i) {
    const auto& iv = ivs[rng.Uniform(ivs.size())];
    const int64_t q = rng.Bernoulli(0.5) ? iv.lo : iv.hi;
    std::vector<Interval> got_plain, got_clus;
    const uint64_t before_plain = plain_dev.stats().reads;
    ASSERT_TRUE(plain.Stab(q, &got_plain).ok());
    const uint64_t reads_plain = plain_dev.stats().reads - before_plain;
    const uint64_t before_clus = clus_dev.stats().reads;
    ASSERT_TRUE(clustered.Stab(q, &got_clus).ok());
    const uint64_t reads_clus = clus_dev.stats().reads - before_clus;
    ASSERT_TRUE(SameResult(got_plain, got_clus));
    ASSERT_TRUE(SameResult(got_plain, BruteStab(ivs, q)));
    EXPECT_EQ(reads_plain, reads_clus) << "stab " << q;
  }
}

// ---- Cluster + persistence ------------------------------------------------

TEST(ClusterTest, ClusterAfterSaveIsRejected) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(2000, 37)).ok());
  ASSERT_TRUE(pst.Save().ok());
  // The manifest chain is not part of the page graph.
  EXPECT_EQ(pst.Cluster().code(), StatusCode::kFailedPrecondition);
}

TEST(ClusterTest, SaveClusteredSurvivesFileReopenAllStructures) {
  const std::string path = ::testing::TempDir() + "/pc_layout.db";
  auto pts = UniformPts(12000, 41);
  auto ivs = UniformIvs(6000, 43);
  PageId m_pst, m_3s, m_seg, m_int;
  {
    auto r = FilePageDevice::Create(path, 1024);
    ASSERT_TRUE(r.ok());
    auto dev = std::move(r).value();
    ExternalPst pst(dev.get());
    ThreeSidedPst pst3(dev.get());
    ExtSegmentTree seg(dev.get());
    ExtIntervalTree itree(dev.get());
    ASSERT_TRUE(pst.Build(pts).ok());
    ASSERT_TRUE(pst3.Build(pts).ok());
    ASSERT_TRUE(seg.Build(ivs).ok());
    ASSERT_TRUE(itree.Build(ivs).ok());
    auto r1 = SaveClustered(&pst);
    auto r2 = SaveClustered(&pst3);
    auto r3 = SaveClustered(&seg);
    auto r4 = SaveClustered(&itree);
    ASSERT_TRUE(r1.ok()) << r1.status().message();
    ASSERT_TRUE(r2.ok()) << r2.status().message();
    ASSERT_TRUE(r3.ok()) << r3.status().message();
    ASSERT_TRUE(r4.ok()) << r4.status().message();
    m_pst = r1.value();
    m_3s = r2.value();
    m_seg = r3.value();
    m_int = r4.value();
  }
  {
    auto r = FilePageDevice::Open(path, 1024);
    ASSERT_TRUE(r.ok());
    auto dev = std::move(r).value();
    ExternalPst pst(dev.get());
    ThreeSidedPst pst3(dev.get());
    ExtSegmentTree seg(dev.get());
    ExtIntervalTree itree(dev.get());
    ASSERT_TRUE(pst.Open(m_pst).ok());
    ASSERT_TRUE(pst3.Open(m_3s).ok());
    ASSERT_TRUE(seg.Open(m_seg).ok());
    ASSERT_TRUE(itree.Open(m_int).ok());
    ASSERT_TRUE(pst.CheckStructure().ok());
    EXPECT_EQ(pst.size(), pts.size());
    EXPECT_EQ(pst3.size(), pts.size());
    EXPECT_EQ(seg.size(), ivs.size());
    EXPECT_EQ(itree.size(), ivs.size());
    EXPECT_GT(seg.stored_copies(), 0u);  // round-tripped through aux

    Rng rng(47);
    for (int i = 0; i < 10; ++i) {
      auto q2 = SampleTwoSidedQuery(pts, &rng);
      std::vector<Point> got;
      ASSERT_TRUE(pst.QueryTwoSided(q2, &got).ok());
      ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q2)));
      auto q3 = SampleThreeSidedQuery(pts, 0.1, &rng);
      got.clear();
      ASSERT_TRUE(pst3.QueryThreeSided(q3, &got).ok());
      ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q3)));
      const int64_t qs = ivs[rng.Uniform(ivs.size())].lo;
      std::vector<Interval> stabbed;
      ASSERT_TRUE(seg.Stab(qs, &stabbed).ok());
      ASSERT_TRUE(SameResult(stabbed, BruteStab(ivs, qs)));
      stabbed.clear();
      ASSERT_TRUE(itree.Stab(qs, &stabbed).ok());
      ASSERT_TRUE(SameResult(stabbed, BruteStab(ivs, qs)));
    }
  }
}

TEST(ClusterTest, EmptyStructuresClusterTrivially) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build({}).ok());
  EXPECT_TRUE(pst.Cluster().ok());
  ExtSegmentTree seg(&dev);
  ASSERT_TRUE(seg.Build({}).ok());
  EXPECT_TRUE(seg.Cluster().ok());
}

}  // namespace
}  // namespace pathcache
