// io_uring-vs-preadv equivalence for FilePageDevice::ReadBatch.  The backend
// is supposed to be a pure transport choice: bytes delivered, IoStats,
// read_syscalls() and error mapping must all be identical, so every
// experiment's counted I/O is the same no matter which path served it.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/file_page_device.h"
#include "io/uring_reader.h"

namespace pathcache {
namespace {

using Backend = FilePageDevice::ReadBackend;

// Deterministic page content so byte-level comparisons are meaningful.
void FillPage(PageId id, uint32_t page_size, std::byte* buf) {
  for (uint32_t j = 0; j < page_size; ++j) {
    buf[j] = static_cast<std::byte>((id * 131u + j * 7u + 3u) & 0xFF);
  }
}

Result<std::unique_ptr<FilePageDevice>> MakeStore(const std::string& path,
                                                  size_t pages,
                                                  uint32_t page_size) {
  PC_ASSIGN_OR_RETURN(auto dev, FilePageDevice::Create(path, page_size));
  std::vector<std::byte> buf(page_size);
  for (size_t p = 0; p < pages; ++p) {
    PC_ASSIGN_OR_RETURN(PageId id, dev->Allocate());
    FillPage(id, page_size, buf.data());
    PC_RETURN_IF_ERROR(dev->Write(id, buf.data()));
  }
  return dev;
}

// Batches covering the shapes ReadBatch distinguishes: single run, many
// scattered runs, unsorted arrivals, adjacent-run boundaries, big fan-out.
std::vector<std::vector<PageId>> InterestingBatches(size_t pages) {
  std::vector<std::vector<PageId>> batches;
  batches.push_back({0});                          // single page
  batches.push_back({0, 1, 2, 3});                 // one sorted run
  batches.push_back({0, 2, 4, 6});                 // all 1-page runs
  batches.push_back({5, 1, 9, 3, 7});              // unsorted, all gaps
  batches.push_back({8, 9, 2, 3, 0});              // unsorted, mixed runs
  std::vector<PageId> evens, all;
  for (PageId p = 0; p < pages; ++p) {
    all.push_back(p);
    if (p % 2 == 0) evens.push_back(p);
  }
  batches.push_back(std::move(evens));             // many runs
  batches.push_back(std::move(all));               // one max-length run
  std::vector<PageId> reversed;
  for (PageId p = pages; p-- > 0;) reversed.push_back(p);
  batches.push_back(std::move(reversed));          // worst-case arrival order
  return batches;
}

TEST(UringReader, ProbeIsStable) {
  const bool first = UringReader::SystemSupported();
  EXPECT_EQ(UringReader::SystemSupported(), first);
  if (first) {
    auto ring = UringReader::Create();
    EXPECT_TRUE(ring.ok()) << ring.status().ToString();
  }
}

TEST(UringEquivalence, BytesStatsAndSyscalls) {
  const std::string path = ::testing::TempDir() + "/pc_uring_equiv.db";
  constexpr uint32_t kPageSize = 512;
  constexpr size_t kPages = 40;
  auto r = MakeStore(path, kPages, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();

  if (!UringReader::SystemSupported()) {
    GTEST_SKIP() << "io_uring unavailable; preadv path is covered by "
                    "page_device_test";
  }
  for (const auto& batch : InterestingBatches(kPages)) {
    std::vector<std::byte> via_preadv(batch.size() * kPageSize);
    std::vector<std::byte> via_uring(batch.size() * kPageSize, std::byte{0xAA});

    ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
    dev->ResetStats();
    ASSERT_TRUE(dev->ReadBatch(batch, via_preadv.data()).ok());
    const IoStats preadv_stats = dev->stats();
    const uint64_t preadv_syscalls = dev->read_syscalls();
    EXPECT_EQ(dev->uring_batches(), 0u);

    ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
    EXPECT_EQ(dev->read_backend(), Backend::kIoUring);
    dev->ResetStats();
    ASSERT_TRUE(dev->ReadBatch(batch, via_uring.data()).ok());
    const IoStats uring_stats = dev->stats();

    EXPECT_EQ(std::memcmp(via_preadv.data(), via_uring.data(),
                          via_preadv.size()),
              0)
        << "byte mismatch on batch of " << batch.size();
    // Every slot holds the page the caller asked for, in the caller's order.
    for (size_t k = 0; k < batch.size(); ++k) {
      std::vector<std::byte> want(kPageSize);
      FillPage(batch[k], kPageSize, want.data());
      ASSERT_EQ(std::memcmp(via_uring.data() + k * kPageSize, want.data(),
                            kPageSize),
                0)
          << "slot " << k << " (page " << batch[k] << ")";
    }
    EXPECT_EQ(uring_stats.reads, preadv_stats.reads);
    EXPECT_EQ(uring_stats.batch_reads, preadv_stats.batch_reads);
    EXPECT_EQ(uring_stats.reads, batch.size());
    EXPECT_EQ(uring_stats.batch_reads, 1u);
    // One SQE per coalesced run == one preadv per run: counted transfer ops
    // are backend-independent on healthy files.
    EXPECT_EQ(dev->read_syscalls(), preadv_syscalls)
        << "batch of " << batch.size();
  }
}

TEST(UringEquivalence, UringBatchesCounterAndSingleRunBypass) {
  if (!UringReader::SystemSupported()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "/pc_uring_count.db";
  constexpr uint32_t kPageSize = 256;
  auto r = MakeStore(path, 8, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
  dev->ResetStats();

  std::vector<std::byte> buf(8 * kPageSize);
  // A single coalesced run costs one syscall either way, so it stays on
  // preadv and must not bump the uring counter.
  std::vector<PageId> one_run{2, 3, 4};
  ASSERT_TRUE(dev->ReadBatch(one_run, buf.data()).ok());
  EXPECT_EQ(dev->uring_batches(), 0u);
  // Two runs is where async submission engages.
  std::vector<PageId> two_runs{0, 1, 6, 7};
  ASSERT_TRUE(dev->ReadBatch(two_runs, buf.data()).ok());
  EXPECT_EQ(dev->uring_batches(), 1u);
  EXPECT_EQ(dev->read_syscalls(), 1u + 2u);
}

TEST(UringEquivalence, TruncatedFileMapsToCorruptionOnBothBackends) {
  const std::string path = ::testing::TempDir() + "/pc_uring_trunc.db";
  constexpr uint32_t kPageSize = 512;
  auto r = MakeStore(path, 10, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();

  // Cut the file while the device still believes all 10 pages exist; pages
  // 6..9 are now beyond EOF and must surface as Corruption ("short read"),
  // never as silently zero-filled buffers.
  ASSERT_EQ(::truncate(path.c_str(), 6 * kPageSize), 0);

  std::vector<PageId> batch{0, 1, 5, 6, 8, 9};  // several runs, some past EOF
  std::vector<std::byte> buf(batch.size() * kPageSize);

  ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
  Status preadv_status = dev->ReadBatch(batch, buf.data());
  ASSERT_FALSE(preadv_status.ok());
  EXPECT_EQ(preadv_status.code(), StatusCode::kCorruption)
      << preadv_status.ToString();

  if (UringReader::SystemSupported()) {
    ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
    Status uring_status = dev->ReadBatch(batch, buf.data());
    ASSERT_FALSE(uring_status.ok());
    EXPECT_EQ(uring_status.code(), StatusCode::kCorruption)
        << uring_status.ToString();
    EXPECT_NE(uring_status.message().find("short read"), std::string::npos)
        << uring_status.ToString();
  }
  EXPECT_NE(preadv_status.message().find("short read"), std::string::npos)
      << preadv_status.ToString();

  // The healthy prefix is still readable on both backends after the error.
  std::vector<PageId> healthy{0, 2, 4};
  std::vector<std::byte> ok_buf(healthy.size() * kPageSize);
  ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
  EXPECT_TRUE(dev->ReadBatch(healthy, ok_buf.data()).ok());
  if (UringReader::SystemSupported()) {
    ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
    EXPECT_TRUE(dev->ReadBatch(healthy, ok_buf.data()).ok());
    for (size_t k = 0; k < healthy.size(); ++k) {
      std::vector<std::byte> want(kPageSize);
      FillPage(healthy[k], kPageSize, want.data());
      EXPECT_EQ(std::memcmp(ok_buf.data() + k * kPageSize, want.data(),
                            kPageSize),
                0);
    }
  }
}

TEST(UringEquivalence, EnvDisableForcesPreadvDefault) {
  ASSERT_EQ(::setenv("PATHCACHE_DISABLE_IOURING", "1", 1), 0);
  const std::string path = ::testing::TempDir() + "/pc_uring_env.db";
  auto r = MakeStore(path, 4, 256);
  ::unsetenv("PATHCACHE_DISABLE_IOURING");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  // The env switch governs the default; an explicit SetReadBackend may
  // still opt back in (CI flips the env to push the whole suite through
  // the preadv path by default).
  EXPECT_EQ(dev->read_backend(), Backend::kPreadv);
  std::vector<PageId> batch{0, 2};
  std::vector<std::byte> buf(2 * 256);
  ASSERT_TRUE(dev->ReadBatch(batch, buf.data()).ok());
  EXPECT_EQ(dev->uring_batches(), 0u);
}

// --- SubmitBatch/AwaitBatch: the truly-async split ------------------------

TEST(UringAsync, SubmitAwaitMatchesReadBatch) {
  if (!UringReader::SystemSupported()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "/pc_uring_async.db";
  constexpr uint32_t kPageSize = 512;
  constexpr size_t kPages = 40;
  auto r = MakeStore(path, kPages, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());

  for (const auto& batch : InterestingBatches(kPages)) {
    std::vector<std::byte> via_sync(batch.size() * kPageSize);
    std::vector<std::byte> via_async(batch.size() * kPageSize, std::byte{0xAA});

    dev->ResetStats();
    ASSERT_TRUE(dev->ReadBatch(batch, via_sync.data()).ok());
    const IoStats sync_stats = dev->stats();
    const uint64_t sync_syscalls = dev->read_syscalls();

    dev->ResetStats();
    auto t = dev->SubmitBatch(batch, via_async.data());
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    // Counting happens at await: a submitted-but-unawaited batch has not
    // paid its logical reads yet.
    EXPECT_EQ(dev->stats().reads, 0u);
    ASSERT_TRUE(dev->AwaitBatch(t.value()).ok());
    const IoStats async_stats = dev->stats();

    EXPECT_EQ(std::memcmp(via_sync.data(), via_async.data(), via_sync.size()),
              0)
        << "byte mismatch on batch of " << batch.size();
    EXPECT_EQ(async_stats.reads, sync_stats.reads);
    EXPECT_EQ(async_stats.batch_reads, sync_stats.batch_reads);
    // Same coalescing, same runs, same op count — splitting submit from
    // await is a transport change, never an accounting one.
    EXPECT_EQ(dev->read_syscalls(), sync_syscalls)
        << "batch of " << batch.size();
  }
}

TEST(UringAsync, ManyOverlappedBatchesLandCorrectly) {
  if (!UringReader::SystemSupported()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "/pc_uring_overlap.db";
  constexpr uint32_t kPageSize = 256;
  constexpr size_t kPages = 64;
  auto r = MakeStore(path, kPages, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());

  // Submit a pile of overlapping batches, then await them out of order;
  // every slot must still hold exactly the page its batch asked for.
  std::vector<std::vector<PageId>> batches;
  for (size_t b = 0; b < 16; ++b) {
    std::vector<PageId> ids;
    for (size_t k = 0; k < 7; ++k) ids.push_back((b * 11 + k * 5) % kPages);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    batches.push_back(std::move(ids));
  }
  std::vector<std::vector<std::byte>> bufs(batches.size());
  std::vector<uint64_t> tickets(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    bufs[b].assign(batches[b].size() * kPageSize, std::byte{0});
    auto t = dev->SubmitBatch(batches[b], bufs[b].data());
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tickets[b] = t.value();
  }
  for (size_t b = batches.size(); b-- > 0;) {  // reverse await order
    ASSERT_TRUE(dev->AwaitBatch(tickets[b]).ok());
    for (size_t k = 0; k < batches[b].size(); ++k) {
      std::vector<std::byte> want(kPageSize);
      FillPage(batches[b][k], kPageSize, want.data());
      ASSERT_EQ(std::memcmp(bufs[b].data() + k * kPageSize, want.data(),
                            kPageSize),
                0)
          << "batch " << b << " slot " << k;
    }
  }
  EXPECT_EQ(dev->AwaitBatch(tickets[0]).code(), StatusCode::kInvalidArgument)
      << "double await must not silently succeed";
}

TEST(UringAsync, PreadvBackendReportsNotSupportedAndReaderFallsBack) {
  const std::string path = ::testing::TempDir() + "/pc_uring_async_fb.db";
  constexpr uint32_t kPageSize = 256;
  auto r = MakeStore(path, 8, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());

  std::vector<PageId> batch{1, 4, 6};
  std::vector<std::byte> buf(batch.size() * kPageSize);
  EXPECT_EQ(dev->SubmitBatch(batch, buf.data()).status().code(),
            StatusCode::kNotSupported);

  // AsyncBatchReader packages the fallback: same bytes, ReadBatch counting.
  dev->ResetStats();
  AsyncBatchReader reader;
  ASSERT_TRUE(reader.Start(dev.get(), batch, buf.data()).ok());
  EXPECT_FALSE(reader.in_flight());  // fell back to the blocking path
  ASSERT_TRUE(reader.Wait().ok());
  EXPECT_EQ(dev->stats().reads, batch.size());
  EXPECT_EQ(dev->stats().batch_reads, 1u);
  for (size_t k = 0; k < batch.size(); ++k) {
    std::vector<std::byte> want(kPageSize);
    FillPage(batch[k], kPageSize, want.data());
    EXPECT_EQ(
        std::memcmp(buf.data() + k * kPageSize, want.data(), kPageSize), 0);
  }
}

TEST(UringAsync, EmptyBatchIsAValidTicket) {
  if (!UringReader::SystemSupported()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "/pc_uring_async_empty.db";
  auto r = MakeStore(path, 2, 256);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
  dev->ResetStats();
  auto t = dev->SubmitBatch({}, nullptr);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(dev->AwaitBatch(t.value()).ok());
  EXPECT_EQ(dev->stats().reads, 0u);
  EXPECT_EQ(dev->stats().batch_reads, 0u);
}

TEST(UringAsync, TruncatedFileSurfacesCorruptionAtAwait) {
  if (!UringReader::SystemSupported()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "/pc_uring_async_trunc.db";
  constexpr uint32_t kPageSize = 512;
  auto r = MakeStore(path, 10, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
  ASSERT_EQ(::truncate(path.c_str(), 6 * kPageSize), 0);

  std::vector<PageId> batch{0, 1, 5, 6, 8, 9};
  std::vector<std::byte> buf(batch.size() * kPageSize);
  auto t = dev->SubmitBatch(batch, buf.data());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  Status s = dev->AwaitBatch(t.value());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("short read"), std::string::npos) << s.ToString();

  // The device stays usable: the healthy prefix reads clean afterwards.
  std::vector<PageId> healthy{0, 2, 4};
  std::vector<std::byte> ok_buf(healthy.size() * kPageSize);
  auto t2 = dev->SubmitBatch(healthy, ok_buf.data());
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_TRUE(dev->AwaitBatch(t2.value()).ok());
  for (size_t k = 0; k < healthy.size(); ++k) {
    std::vector<std::byte> want(kPageSize);
    FillPage(healthy[k], kPageSize, want.data());
    EXPECT_EQ(std::memcmp(ok_buf.data() + k * kPageSize, want.data(),
                          kPageSize),
              0);
  }
}

TEST(UringAsync, RawRingIsThreadSafeAcrossConcurrentBatches) {
  if (!UringReader::SystemSupported()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "/pc_uring_async_mt.db";
  constexpr uint32_t kPageSize = 512;
  constexpr size_t kPages = 64;
  {
    auto r = MakeStore(path, kPages, kPageSize);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  auto ring_r = UringReader::Create();
  ASSERT_TRUE(ring_r.ok()) << ring_r.status().ToString();
  auto ring = std::move(ring_r).value();

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int tix = 0; tix < kThreads; ++tix) {
    threads.emplace_back([&, tix] {
      std::vector<std::byte> buf(8 * kPageSize);
      for (int round = 0; round < kRounds; ++round) {
        // Each thread reads its own stride of scattered pages.
        std::vector<PageId> ids;
        for (int k = 0; k < 8; ++k) {
          ids.push_back((tix * 13 + round * 7 + k * 9) % kPages);
        }
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        std::vector<struct iovec> iov;
        std::vector<UringReader::Run> runs;
        for (size_t k = 0; k < ids.size(); ++k) {
          iov.push_back({buf.data() + k * kPageSize, kPageSize});
        }
        for (size_t k = 0; k < ids.size(); ++k) {
          runs.push_back({static_cast<off_t>(ids[k]) * kPageSize,
                          iov.data() + k, 1});
        }
        auto t = ring->BeginBatch(fd, std::move(iov), std::move(runs),
                                  nullptr);
        if (!t.ok()) {
          ++failures;
          return;
        }
        if (!ring->WaitBatch(t.value()).ok()) {
          ++failures;
          return;
        }
        for (size_t k = 0; k < ids.size(); ++k) {
          std::vector<std::byte> want(kPageSize);
          FillPage(ids[k], kPageSize, want.data());
          if (std::memcmp(buf.data() + k * kPageSize, want.data(),
                          kPageSize) != 0) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ::close(fd);
  EXPECT_EQ(failures.load(), 0);
}

TEST(UringEquivalence, SetReadBackendReportsSupport) {
  const std::string path = ::testing::TempDir() + "/pc_uring_set.db";
  auto r = MakeStore(path, 2, 256);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
  EXPECT_EQ(dev->read_backend(), Backend::kPreadv);
  Status s = dev->SetReadBackend(Backend::kIoUring);
  if (UringReader::SystemSupported()) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(dev->read_backend(), Backend::kIoUring);
  } else {
    EXPECT_EQ(s.code(), StatusCode::kNotSupported);
    EXPECT_EQ(dev->read_backend(), Backend::kPreadv);
  }
}

}  // namespace
}  // namespace pathcache
