// io_uring-vs-preadv equivalence for FilePageDevice::ReadBatch.  The backend
// is supposed to be a pure transport choice: bytes delivered, IoStats,
// read_syscalls() and error mapping must all be identical, so every
// experiment's counted I/O is the same no matter which path served it.

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/file_page_device.h"
#include "io/uring_reader.h"

namespace pathcache {
namespace {

using Backend = FilePageDevice::ReadBackend;

// Deterministic page content so byte-level comparisons are meaningful.
void FillPage(PageId id, uint32_t page_size, std::byte* buf) {
  for (uint32_t j = 0; j < page_size; ++j) {
    buf[j] = static_cast<std::byte>((id * 131u + j * 7u + 3u) & 0xFF);
  }
}

Result<std::unique_ptr<FilePageDevice>> MakeStore(const std::string& path,
                                                  size_t pages,
                                                  uint32_t page_size) {
  PC_ASSIGN_OR_RETURN(auto dev, FilePageDevice::Create(path, page_size));
  std::vector<std::byte> buf(page_size);
  for (size_t p = 0; p < pages; ++p) {
    PC_ASSIGN_OR_RETURN(PageId id, dev->Allocate());
    FillPage(id, page_size, buf.data());
    PC_RETURN_IF_ERROR(dev->Write(id, buf.data()));
  }
  return dev;
}

// Batches covering the shapes ReadBatch distinguishes: single run, many
// scattered runs, unsorted arrivals, adjacent-run boundaries, big fan-out.
std::vector<std::vector<PageId>> InterestingBatches(size_t pages) {
  std::vector<std::vector<PageId>> batches;
  batches.push_back({0});                          // single page
  batches.push_back({0, 1, 2, 3});                 // one sorted run
  batches.push_back({0, 2, 4, 6});                 // all 1-page runs
  batches.push_back({5, 1, 9, 3, 7});              // unsorted, all gaps
  batches.push_back({8, 9, 2, 3, 0});              // unsorted, mixed runs
  std::vector<PageId> evens, all;
  for (PageId p = 0; p < pages; ++p) {
    all.push_back(p);
    if (p % 2 == 0) evens.push_back(p);
  }
  batches.push_back(std::move(evens));             // many runs
  batches.push_back(std::move(all));               // one max-length run
  std::vector<PageId> reversed;
  for (PageId p = pages; p-- > 0;) reversed.push_back(p);
  batches.push_back(std::move(reversed));          // worst-case arrival order
  return batches;
}

TEST(UringReader, ProbeIsStable) {
  const bool first = UringReader::SystemSupported();
  EXPECT_EQ(UringReader::SystemSupported(), first);
  if (first) {
    auto ring = UringReader::Create();
    EXPECT_TRUE(ring.ok()) << ring.status().ToString();
  }
}

TEST(UringEquivalence, BytesStatsAndSyscalls) {
  const std::string path = ::testing::TempDir() + "/pc_uring_equiv.db";
  constexpr uint32_t kPageSize = 512;
  constexpr size_t kPages = 40;
  auto r = MakeStore(path, kPages, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();

  if (!UringReader::SystemSupported()) {
    GTEST_SKIP() << "io_uring unavailable; preadv path is covered by "
                    "page_device_test";
  }
  for (const auto& batch : InterestingBatches(kPages)) {
    std::vector<std::byte> via_preadv(batch.size() * kPageSize);
    std::vector<std::byte> via_uring(batch.size() * kPageSize, std::byte{0xAA});

    ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
    dev->ResetStats();
    ASSERT_TRUE(dev->ReadBatch(batch, via_preadv.data()).ok());
    const IoStats preadv_stats = dev->stats();
    const uint64_t preadv_syscalls = dev->read_syscalls();
    EXPECT_EQ(dev->uring_batches(), 0u);

    ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
    EXPECT_EQ(dev->read_backend(), Backend::kIoUring);
    dev->ResetStats();
    ASSERT_TRUE(dev->ReadBatch(batch, via_uring.data()).ok());
    const IoStats uring_stats = dev->stats();

    EXPECT_EQ(std::memcmp(via_preadv.data(), via_uring.data(),
                          via_preadv.size()),
              0)
        << "byte mismatch on batch of " << batch.size();
    // Every slot holds the page the caller asked for, in the caller's order.
    for (size_t k = 0; k < batch.size(); ++k) {
      std::vector<std::byte> want(kPageSize);
      FillPage(batch[k], kPageSize, want.data());
      ASSERT_EQ(std::memcmp(via_uring.data() + k * kPageSize, want.data(),
                            kPageSize),
                0)
          << "slot " << k << " (page " << batch[k] << ")";
    }
    EXPECT_EQ(uring_stats.reads, preadv_stats.reads);
    EXPECT_EQ(uring_stats.batch_reads, preadv_stats.batch_reads);
    EXPECT_EQ(uring_stats.reads, batch.size());
    EXPECT_EQ(uring_stats.batch_reads, 1u);
    // One SQE per coalesced run == one preadv per run: counted transfer ops
    // are backend-independent on healthy files.
    EXPECT_EQ(dev->read_syscalls(), preadv_syscalls)
        << "batch of " << batch.size();
  }
}

TEST(UringEquivalence, UringBatchesCounterAndSingleRunBypass) {
  if (!UringReader::SystemSupported()) GTEST_SKIP();
  const std::string path = ::testing::TempDir() + "/pc_uring_count.db";
  constexpr uint32_t kPageSize = 256;
  auto r = MakeStore(path, 8, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
  dev->ResetStats();

  std::vector<std::byte> buf(8 * kPageSize);
  // A single coalesced run costs one syscall either way, so it stays on
  // preadv and must not bump the uring counter.
  std::vector<PageId> one_run{2, 3, 4};
  ASSERT_TRUE(dev->ReadBatch(one_run, buf.data()).ok());
  EXPECT_EQ(dev->uring_batches(), 0u);
  // Two runs is where async submission engages.
  std::vector<PageId> two_runs{0, 1, 6, 7};
  ASSERT_TRUE(dev->ReadBatch(two_runs, buf.data()).ok());
  EXPECT_EQ(dev->uring_batches(), 1u);
  EXPECT_EQ(dev->read_syscalls(), 1u + 2u);
}

TEST(UringEquivalence, TruncatedFileMapsToCorruptionOnBothBackends) {
  const std::string path = ::testing::TempDir() + "/pc_uring_trunc.db";
  constexpr uint32_t kPageSize = 512;
  auto r = MakeStore(path, 10, kPageSize);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();

  // Cut the file while the device still believes all 10 pages exist; pages
  // 6..9 are now beyond EOF and must surface as Corruption ("short read"),
  // never as silently zero-filled buffers.
  ASSERT_EQ(::truncate(path.c_str(), 6 * kPageSize), 0);

  std::vector<PageId> batch{0, 1, 5, 6, 8, 9};  // several runs, some past EOF
  std::vector<std::byte> buf(batch.size() * kPageSize);

  ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
  Status preadv_status = dev->ReadBatch(batch, buf.data());
  ASSERT_FALSE(preadv_status.ok());
  EXPECT_EQ(preadv_status.code(), StatusCode::kCorruption)
      << preadv_status.ToString();

  if (UringReader::SystemSupported()) {
    ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
    Status uring_status = dev->ReadBatch(batch, buf.data());
    ASSERT_FALSE(uring_status.ok());
    EXPECT_EQ(uring_status.code(), StatusCode::kCorruption)
        << uring_status.ToString();
    EXPECT_NE(uring_status.message().find("short read"), std::string::npos)
        << uring_status.ToString();
  }
  EXPECT_NE(preadv_status.message().find("short read"), std::string::npos)
      << preadv_status.ToString();

  // The healthy prefix is still readable on both backends after the error.
  std::vector<PageId> healthy{0, 2, 4};
  std::vector<std::byte> ok_buf(healthy.size() * kPageSize);
  ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
  EXPECT_TRUE(dev->ReadBatch(healthy, ok_buf.data()).ok());
  if (UringReader::SystemSupported()) {
    ASSERT_TRUE(dev->SetReadBackend(Backend::kIoUring).ok());
    EXPECT_TRUE(dev->ReadBatch(healthy, ok_buf.data()).ok());
    for (size_t k = 0; k < healthy.size(); ++k) {
      std::vector<std::byte> want(kPageSize);
      FillPage(healthy[k], kPageSize, want.data());
      EXPECT_EQ(std::memcmp(ok_buf.data() + k * kPageSize, want.data(),
                            kPageSize),
                0);
    }
  }
}

TEST(UringEquivalence, EnvDisableForcesPreadvDefault) {
  ASSERT_EQ(::setenv("PATHCACHE_DISABLE_IOURING", "1", 1), 0);
  const std::string path = ::testing::TempDir() + "/pc_uring_env.db";
  auto r = MakeStore(path, 4, 256);
  ::unsetenv("PATHCACHE_DISABLE_IOURING");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  // The env switch governs the default; an explicit SetReadBackend may
  // still opt back in (CI flips the env to push the whole suite through
  // the preadv path by default).
  EXPECT_EQ(dev->read_backend(), Backend::kPreadv);
  std::vector<PageId> batch{0, 2};
  std::vector<std::byte> buf(2 * 256);
  ASSERT_TRUE(dev->ReadBatch(batch, buf.data()).ok());
  EXPECT_EQ(dev->uring_batches(), 0u);
}

TEST(UringEquivalence, SetReadBackendReportsSupport) {
  const std::string path = ::testing::TempDir() + "/pc_uring_set.db";
  auto r = MakeStore(path, 2, 256);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->SetReadBackend(Backend::kPreadv).ok());
  EXPECT_EQ(dev->read_backend(), Backend::kPreadv);
  Status s = dev->SetReadBackend(Backend::kIoUring);
  if (UringReader::SystemSupported()) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(dev->read_backend(), Backend::kIoUring);
  } else {
    EXPECT_EQ(s.code(), StatusCode::kNotSupported);
    EXPECT_EQ(dev->read_backend(), Backend::kPreadv);
  }
}

}  // namespace
}  // namespace pathcache
