// Unified property-based differential harness: every external structure is
// exercised against its in-core brute-force oracle over randomly generated
// record sets and randomly sampled queries, all derived deterministically
// from a case seed.
//
// The harness replaces the per-structure ad-hoc "MatchesBruteForce" sweeps
// the test suite grew one copy at a time.  What it adds over them:
//
//  * One shrinking engine.  On a disagreement the harness does not just
//    fail — it delta-debugs the record set down to a locally minimal set
//    that still reproduces the disagreement (rebuilding the structure from
//    scratch per candidate, so shrink results are trustworthy), then prints
//    a self-contained reproducer: the case parameters, the seed, the
//    surviving records, and the failing query.
//  * One place to add query-distribution coverage for all four structures.
//
// A structure plugs in via an Adapter type:
//
//   struct MyAdapter {
//     using Record = ...;              // Point or Interval
//     using Query = ...;
//     static const char* Name();
//     struct Instance {                // a built structure on a fresh device
//       Instance(const std::vector<Record>&, const DiffCase&);
//       Status init;                   // Build() outcome
//       Status Query(const Query&, std::vector<Record>* out) const;
//     };
//     static std::vector<Record> GenRecords(const DiffCase&);
//     static Query Sample(const std::vector<Record>&, Rng*, const DiffCase&,
//                         int ordinal);
//     static std::vector<Query> BoundaryQueries();
//     static std::vector<Record> Oracle(const std::vector<Record>&,
//                                       const Query&);
//     static std::string FormatQuery(const Query&);
//   };

#ifndef PATHCACHE_TESTS_ORACLE_COMMON_H_
#define PATHCACHE_TESTS_ORACLE_COMMON_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <future>

#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "dynamic/dynamic_store.h"
#include "dynamic/update.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "net/wire.h"
#include "serve/query_engine.h"
#include "shard/shard_router.h"
#include "util/geometry.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/oracle.h"

namespace pathcache {
namespace difftest {

/// One differential case: everything about it (records and queries) derives
/// from these values, so quoting the case IS the reproducer.
struct DiffCase {
  uint64_t n = 0;
  uint64_t seed = 0;
  uint32_t page_size = 4096;
  bool caching = true;
  const char* dist = "uniform";
  double x_frac = 0.2;  // 3-sided query width fraction; ignored elsewhere
};

inline std::string FormatCase(const DiffCase& c) {
  std::ostringstream os;
  os << "DiffCase{.n=" << c.n << ", .seed=" << c.seed
     << ", .page_size=" << c.page_size
     << ", .caching=" << (c.caching ? "true" : "false") << ", .dist=\""
     << c.dist << "\", .x_frac=" << c.x_frac << "}";
  return os.str();
}

inline std::string FormatRecord(const Point& p) {
  std::ostringstream os;
  os << "{" << p.x << ", " << p.y << ", " << p.id << "}";
  return os.str();
}

inline std::string FormatRecord(const Interval& iv) {
  std::ostringstream os;
  os << "{" << iv.lo << ", " << iv.hi << ", " << iv.id << "}";
  return os.str();
}

/// True iff a fresh instance built over `recs` disagrees with the oracle on
/// `q` (a Build or Query error also counts: the shrinker may legitimately
/// walk into one while minimizing, and an erroring input is just as much a
/// reproducer).
template <typename A>
bool Disagrees(const std::vector<typename A::Record>& recs,
               const typename A::Query& q, const DiffCase& c) {
  typename A::Instance inst(recs, c);
  if (!inst.init.ok()) return true;
  std::vector<typename A::Record> got;
  if (!inst.Query(q, &got).ok()) return true;
  return !SameResult(got, A::Oracle(recs, q));
}

/// ddmin-style minimizer: repeatedly tries deleting chunks of the record
/// set, keeping any deletion that still reproduces the disagreement, until
/// the set is 1-minimal (no single record can be removed) or the rebuild
/// budget runs out.  Each probe rebuilds the structure from scratch.
template <typename A>
std::vector<typename A::Record> ShrinkRecords(
    std::vector<typename A::Record> recs, const typename A::Query& q,
    const DiffCase& c, int max_probes = 600) {
  size_t chunks = 2;
  int probes = 0;
  while (recs.size() > 1 && chunks <= recs.size() && probes < max_probes) {
    const size_t chunk_len = (recs.size() + chunks - 1) / chunks;
    bool removed_any = false;
    for (size_t start = 0; start < recs.size() && probes < max_probes;
         start += chunk_len) {
      std::vector<typename A::Record> candidate;
      candidate.reserve(recs.size());
      for (size_t i = 0; i < recs.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(recs[i]);
      }
      if (candidate.empty()) continue;
      ++probes;
      if (Disagrees<A>(candidate, q, c)) {
        recs = std::move(candidate);
        chunks = std::max<size_t>(2, chunks - 1);
        removed_any = true;
        break;  // restart the chunk scan on the smaller set
      }
    }
    if (!removed_any) {
      if (chunk_len == 1) break;  // 1-minimal
      chunks = std::min(recs.size(), chunks * 2);
    }
  }
  return recs;
}

/// Self-contained failure report: enough to paste into a regression test.
template <typename A>
std::string Reproducer(const std::vector<typename A::Record>& minimal,
                       const typename A::Query& q, const DiffCase& c) {
  std::ostringstream os;
  os << A::Name() << " disagrees with its oracle.\n"
     << "case: " << FormatCase(c) << "\n"
     << "query: " << A::FormatQuery(q) << "\n"
     << "shrunk to " << minimal.size() << " record(s):\n";
  const size_t show = std::min<size_t>(minimal.size(), 64);
  for (size_t i = 0; i < show; ++i) {
    os << "  " << FormatRecord(minimal[i]) << ",\n";
  }
  if (show < minimal.size()) {
    os << "  ... (" << (minimal.size() - show) << " more)\n";
  }
  {
    typename A::Instance inst(minimal, c);
    if (!inst.init.ok()) {
      os << "Build on the shrunk set: " << inst.init.ToString() << "\n";
    } else {
      std::vector<typename A::Record> got;
      Status s = inst.Query(q, &got);
      if (!s.ok()) {
        os << "Query on the shrunk set: " << s.ToString() << "\n";
      } else {
        auto want = A::Oracle(minimal, q);
        os << "structure returned " << got.size() << " record(s), oracle "
           << want.size() << "\n";
      }
    }
  }
  return os.str();
}

/// The harness entry point: builds the structure once over the generated
/// records, then replays `num_queries` sampled queries plus the adapter's
/// fixed boundary queries against the oracle.  The first disagreement is
/// shrunk and reported; the test fails with the reproducer.
template <typename A>
void RunDifferential(const DiffCase& c, int num_queries) {
  const std::vector<typename A::Record> recs = A::GenRecords(c);
  typename A::Instance inst(recs, c);
  ASSERT_TRUE(inst.init.ok()) << A::Name() << " Build: "
                              << inst.init.ToString() << "\n"
                              << FormatCase(c);

  std::vector<typename A::Query> queries = A::BoundaryQueries();
  Rng rng(c.seed ^ 0x5EEDF00DULL);
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(A::Sample(recs, &rng, c, i));
  }

  for (const auto& q : queries) {
    std::vector<typename A::Record> got;
    Status s = inst.Query(q, &got);
    const bool ok = s.ok() && SameResult(got, A::Oracle(recs, q));
    if (ok) continue;
    auto minimal = ShrinkRecords<A>(recs, q, c);
    FAIL() << Reproducer<A>(minimal, q, c)
           << (s.ok() ? "" : "first failure status: " + s.ToString());
  }
}

// --- Interleaved update/query/rebuild schedules (dynamic stores) -----------
//
// The static harness above checks one built structure against its oracle.
// Dynamic stores need schedules: a deterministic interleaving of durable
// updates (insert/delete), merged queries and rebuild/publish steps, checked
// step by step against a plain set model — the "rebuilt from scratch after
// every mutation" semantics the delta merge claims to be identical to.  On a
// disagreement the ddmin shrinker minimizes the SCHEDULE (any subsequence of
// steps is itself a valid schedule), replaying each candidate on a fresh
// store, and prints every surviving step as a reproducer.
//
// A dynamic structure plugs in via a DynAdapter type:
//
//   struct MyDynAdapter {
//     using Record = ...;              // Point or Interval
//     using Query = ...;
//     static const char* Name();
//     static DynamicStructure Kind();
//     static Record ToRecord(const DynamicItem&);
//     static DynamicItem MakeItem(Rng*, const DynCase&);   // random record
//     static Query SampleQuery(Rng*, const DynCase&);
//     static Status RunQuery(DynamicStore*, const Query&,
//                            std::vector<Record>*);
//     static std::vector<Record> Oracle(const std::vector<Record>&,
//                                       const Query&);
//     static std::string FormatQuery(const Query&);
//   };

namespace dyntest {

/// One schedule case: steps, queries and records all derive from these
/// values, so quoting the case IS the reproducer.
struct DynCase {
  uint64_t steps = 0;
  uint64_t seed = 0;
  uint32_t page_size = 1024;
  /// Small coordinate domain and id space on purpose: collisions make
  /// deletes hit live records and re-inserts exercise the override rules.
  int64_t coord_max = 1000;
  uint64_t id_max = 256;
  double p_insert = 0.45;
  double p_delete = 0.25;
  double p_query = 0.25;  // remainder: explicit Rebuild() steps
  /// Forwarded to DynamicStoreOptions (0 = only explicit rebuild steps).
  uint64_t rebuild_threshold = 0;
};

inline std::string FormatDynCase(const DynCase& c) {
  std::ostringstream os;
  os << "DynCase{.steps=" << c.steps << ", .seed=" << c.seed
     << ", .page_size=" << c.page_size << ", .coord_max=" << c.coord_max
     << ", .id_max=" << c.id_max << ", .rebuild_threshold="
     << c.rebuild_threshold << "}";
  return os.str();
}

template <typename D>
struct DynStep {
  enum What : uint8_t { kInsert, kDelete, kQuery, kRebuild };
  What what = kInsert;
  DynamicItem item;         // kInsert / kDelete
  typename D::Query query;  // kQuery
};

template <typename D>
std::vector<DynStep<D>> GenSchedule(const DynCase& c) {
  Rng rng(c.seed ^ 0xD15C0B07ULL);
  std::vector<DynStep<D>> steps;
  steps.reserve(c.steps);
  for (uint64_t i = 0; i < c.steps; ++i) {
    DynStep<D> s;
    const double r = rng.NextDouble();
    if (r < c.p_insert) {
      s.what = DynStep<D>::kInsert;
      s.item = D::MakeItem(&rng, c);
    } else if (r < c.p_insert + c.p_delete) {
      s.what = DynStep<D>::kDelete;
      s.item = D::MakeItem(&rng, c);
    } else if (r < c.p_insert + c.p_delete + c.p_query) {
      s.what = DynStep<D>::kQuery;
      s.query = D::SampleQuery(&rng, c);
    } else {
      s.what = DynStep<D>::kRebuild;
    }
    steps.push_back(s);
  }
  return steps;
}

/// Replays `steps` on a fresh store against the set model.  Returns true on
/// the first disagreement or error, with a description in `*why` (step
/// index included so a non-shrunk failure is still actionable).
template <typename D>
bool ScheduleFails(const std::vector<DynStep<D>>& steps, const DynCase& c,
                   std::string* why) {
  MemPageDevice mem(c.page_size);
  DynamicStoreOptions opts;
  opts.rebuild_threshold = c.rebuild_threshold;
  auto made = DynamicStore::Create(&mem, D::Kind(), {}, opts);
  if (!made.ok()) {
    *why = "Create: " + made.status().ToString();
    return true;
  }
  auto store = std::move(made).value();
  std::map<DynamicItem, bool, DynamicItemLess> model;  // presence set
  for (size_t i = 0; i < steps.size(); ++i) {
    const DynStep<D>& s = steps[i];
    std::ostringstream at;
    at << "step " << i << "/" << steps.size() << ": ";
    switch (s.what) {
      case DynStep<D>::kInsert: {
        Status st = store->Insert(s.item);
        if (!st.ok()) {
          *why = at.str() + "Insert: " + st.ToString();
          return true;
        }
        model[s.item] = true;
        break;
      }
      case DynStep<D>::kDelete: {
        Status st = store->Erase(s.item);
        if (!st.ok()) {
          *why = at.str() + "Erase: " + st.ToString();
          return true;
        }
        model.erase(s.item);
        break;
      }
      case DynStep<D>::kRebuild: {
        Status st = store->Rebuild();
        if (!st.ok()) {
          *why = at.str() + "Rebuild: " + st.ToString();
          return true;
        }
        break;
      }
      case DynStep<D>::kQuery: {
        std::vector<typename D::Record> got;
        Status st = D::RunQuery(store.get(), s.query, &got);
        if (!st.ok()) {
          *why = at.str() + "Query: " + st.ToString();
          return true;
        }
        std::vector<typename D::Record> live;
        live.reserve(model.size());
        for (const auto& [item, present] : model) {
          if (present) live.push_back(D::ToRecord(item));
        }
        if (!SameResult(got, D::Oracle(live, s.query))) {
          *why = at.str() + "merged answer for " + D::FormatQuery(s.query) +
                 " disagrees with the set model (" + std::to_string(got.size())
                 + " records vs model's expectation)";
          return true;
        }
        break;
      }
    }
  }
  return false;
}

/// ddmin over the step sequence: any subsequence is a valid schedule, so the
/// shrinker deletes chunks while the replay-from-scratch still fails.
template <typename D>
std::vector<DynStep<D>> ShrinkSchedule(std::vector<DynStep<D>> steps,
                                       const DynCase& c,
                                       int max_probes = 400) {
  std::string why;
  size_t chunks = 2;
  int probes = 0;
  while (steps.size() > 1 && chunks <= steps.size() && probes < max_probes) {
    const size_t chunk_len = (steps.size() + chunks - 1) / chunks;
    bool removed_any = false;
    for (size_t start = 0; start < steps.size() && probes < max_probes;
         start += chunk_len) {
      std::vector<DynStep<D>> candidate;
      candidate.reserve(steps.size());
      for (size_t i = 0; i < steps.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(steps[i]);
      }
      if (candidate.empty()) continue;
      ++probes;
      if (ScheduleFails<D>(candidate, c, &why)) {
        steps = std::move(candidate);
        chunks = std::max<size_t>(2, chunks - 1);
        removed_any = true;
        break;
      }
    }
    if (!removed_any) {
      if (chunk_len == 1) break;  // 1-minimal
      chunks = std::min(steps.size(), chunks * 2);
    }
  }
  return steps;
}

template <typename D>
std::string DynReproducer(const std::vector<DynStep<D>>& minimal,
                          const DynCase& c) {
  std::string why;
  ScheduleFails<D>(minimal, c, &why);  // re-derive the failing step's story
  std::ostringstream os;
  os << D::Name() << " dynamic schedule disagrees with the set model.\n"
     << "case: " << FormatDynCase(c) << "\n"
     << "failure: " << why << "\n"
     << "shrunk to " << minimal.size() << " step(s):\n";
  const size_t show = std::min<size_t>(minimal.size(), 64);
  for (size_t i = 0; i < show; ++i) {
    const DynStep<D>& s = minimal[i];
    os << "  ";
    switch (s.what) {
      case DynStep<D>::kInsert:
        os << "insert {" << s.item.a << ", " << s.item.b << ", " << s.item.id
           << "}";
        break;
      case DynStep<D>::kDelete:
        os << "delete {" << s.item.a << ", " << s.item.b << ", " << s.item.id
           << "}";
        break;
      case DynStep<D>::kRebuild:
        os << "rebuild";
        break;
      case DynStep<D>::kQuery:
        os << "query " << D::FormatQuery(s.query);
        break;
    }
    os << "\n";
  }
  if (show < minimal.size()) {
    os << "  ... (" << (minimal.size() - show) << " more)\n";
  }
  return os.str();
}

/// Harness entry point: generate the schedule from the case, replay it, and
/// on a disagreement shrink + fail with the reproducer.
template <typename D>
void RunDynamicSchedule(const DynCase& c) {
  const std::vector<DynStep<D>> steps = GenSchedule<D>(c);
  std::string why;
  if (!ScheduleFails<D>(steps, c, &why)) return;
  auto minimal = ShrinkSchedule<D>(steps, c);
  FAIL() << DynReproducer<D>(minimal, c) << "first failure: " << why;
}

}  // namespace dyntest
}  // namespace difftest

// ---------------------------------------------------------------------------
// Network-protocol oracle (PR 9).  The wire-level fuzz and robustness tests
// need two things beyond the brute-force oracles above: a generator of
// random VALID wire requests against a served catalog, and a twin of the
// server's request-execution path run against an in-process QueryEngine —
// including the server's query mappings (diagonal-corner → two-sided with
// the corner on the diagonal, range → three-sided plus an exact y <= y_max
// filter).  A valid frame sent to the live server must produce bytes
// identical to EncodeResponse(EngineOracleResponse(twin_engine, request)).
// ---------------------------------------------------------------------------

namespace nettest {

/// What one served structure looks like to the fuzzers, by wire id.
struct NetStructure {
  QueryKind kind = QueryKind::kTwoSided;
  bool dynamic = false;
  int64_t coord_max = 100'000;  // coordinate range for generated traffic
};

/// One random, semantically valid request against the catalog: a ping, a
/// query of a type the addressed structure answers, or (when allowed and
/// the structure is dynamic) a small update group.  Every choice derives
/// from `rng`, so a seed reproduces the stream.
inline net::Request RandomValidRequest(Rng* rng,
                                       const std::vector<NetStructure>& catalog,
                                       uint64_t request_id,
                                       bool allow_updates) {
  net::Request req;
  req.request_id = request_id;
  if (catalog.empty() || rng->Uniform(16) == 0) {
    req.type = net::MsgType::kPing;
    return req;
  }
  const uint32_t sid = uint32_t(rng->Uniform(catalog.size()));
  const NetStructure& s = catalog[sid];
  req.structure_id = sid;
  const int64_t m = s.coord_max;
  if (allow_updates && s.dynamic && rng->Uniform(4) == 0) {
    req.type = net::MsgType::kUpdateGroup;
    const size_t n = 1 + rng->Uniform(4);
    for (size_t i = 0; i < n; ++i) {
      DynamicUpdate u;
      // Inserts dominate so delete-of-absent stays a rarity, not the norm.
      u.op = rng->Uniform(4) == 0 ? UpdateOp::kDelete : UpdateOp::kInsert;
      u.item = DynamicItem{rng->UniformRange(0, m), rng->UniformRange(0, m),
                           500'000 + rng->Uniform(1'000'000)};
      req.updates.push_back(u);
    }
    return req;
  }
  switch (s.kind) {
    case QueryKind::kTwoSided:
      if (rng->Bernoulli(0.3)) {
        req.type = net::MsgType::kQueryDiagonal;
        req.corner = rng->UniformRange(0, m);
      } else {
        req.type = net::MsgType::kQueryTwoSided;
        req.two_sided =
            TwoSidedQuery{rng->UniformRange(0, m), rng->UniformRange(0, m)};
      }
      break;
    case QueryKind::kThreeSided:
      if (rng->Bernoulli(0.3)) {
        const int64_t x = rng->UniformRange(0, m);
        const int64_t y = rng->UniformRange(0, m);
        req.type = net::MsgType::kQueryRange;
        req.range = RangeQuery{x, x + rng->UniformRange(0, m / 4), y,
                               y + rng->UniformRange(0, m / 4)};
      } else {
        const int64_t x = rng->UniformRange(0, m);
        req.type = net::MsgType::kQueryThreeSided;
        req.three_sided = ThreeSidedQuery{x, x + rng->UniformRange(0, m / 4),
                                          rng->UniformRange(0, m)};
      }
      break;
    case QueryKind::kStabbing:
      req.type = net::MsgType::kQueryStab;
      req.stab = rng->UniformRange(0, m);
      break;
  }
  return req;
}

/// Runs one semantically valid request through an in-process engine the
/// exact way NetServer does — same query mapping, same response shaping —
/// and returns the Response the server is expected to send.  Blocks until
/// the engine completes the request.
inline net::Response EngineOracleResponse(QueryEngine* engine,
                                          const net::Request& req) {
  net::Response resp;
  resp.request_id = req.request_id;
  if (req.type == net::MsgType::kPing) {
    resp.type = net::MsgType::kPong;
    return resp;
  }

  std::promise<QueryResult> done;
  auto fut = done.get_future();
  auto complete = [&done](QueryResult r) { done.set_value(std::move(r)); };

  if (req.type == net::MsgType::kUpdateGroup) {
    Status s = engine->SubmitUpdate(req.structure_id, req.updates, complete);
    EXPECT_TRUE(s.ok()) << s.ToString();
    QueryResult r = fut.get();
    if (!r.status.ok()) {
      resp.type = net::MsgType::kError;
      resp.code = r.status.code();
      resp.message = std::string(r.status.message());
    } else {
      resp.type = net::MsgType::kUpdateAck;
      resp.applied = uint32_t(req.updates.size());
    }
    return resp;
  }

  ServeQuery query;
  bool is_range = false;
  int64_t y_max = 0;
  switch (req.type) {
    case net::MsgType::kQueryTwoSided:
      query = ServeQuery::TwoSided(req.two_sided);
      break;
    case net::MsgType::kQueryDiagonal:
      query = ServeQuery::TwoSided(DiagonalCornerQuery{req.corner}.AsTwoSided());
      break;
    case net::MsgType::kQueryThreeSided:
      query = ServeQuery::ThreeSided(req.three_sided);
      break;
    case net::MsgType::kQueryRange:
      query = ServeQuery::ThreeSided(ThreeSidedQuery{
          req.range.x_min, req.range.x_max, req.range.y_min});
      is_range = true;
      y_max = req.range.y_max;
      break;
    case net::MsgType::kQueryStab:
      query = ServeQuery::Stab(req.stab);
      break;
    default:
      ADD_FAILURE() << "oracle fed a non-request type";
      return resp;
  }
  Status s = engine->Submit(req.structure_id, query, complete);
  EXPECT_TRUE(s.ok()) << s.ToString();
  QueryResult r = fut.get();
  if (!r.status.ok()) {
    resp.type = net::MsgType::kError;
    resp.code = r.status.code();
    resp.message = std::string(r.status.message());
    return resp;
  }
  if (engine->structure_kind(req.structure_id) == QueryKind::kStabbing) {
    resp.type = net::MsgType::kIntervals;
    resp.intervals = std::move(r.intervals);
  } else {
    resp.type = net::MsgType::kPoints;
    resp.points = std::move(r.points);
    if (is_range) {
      std::erase_if(resp.points,
                    [y_max](const Point& p) { return p.y > y_max; });
    }
  }
  return resp;
}

}  // namespace nettest

// ---------------------------------------------------------------------------
// Sharded differential harness (PR 10).  A ShardedStore + ShardRouter and an
// unsharded twin QueryEngine are built over the SAME records; every query
// must come back byte-identical from both (after putting the twin's answer
// into the router's canonical order), and the router's merged I/O must equal
// the sum of its per-shard slices.  Only shard_test instantiates these
// helpers; other oracle_common.h users never reference (and so never link)
// the shard library.
// ---------------------------------------------------------------------------

namespace shardtest {

/// Submits through any QueryService and blocks for the result.  A
/// synchronous rejection (full queue, tenant quota) comes back as the
/// result's status instead of a Status return, so callers have one rail.
inline QueryResult BlockingSubmit(QueryService* svc, uint32_t id,
                                  const ServeQuery& q,
                                  uint64_t deadline_micros = 0,
                                  uint32_t tenant = 0) {
  std::promise<QueryResult> done;
  auto fut = done.get_future();
  Status s = svc->Submit(
      id, q, [&done](QueryResult r) { done.set_value(std::move(r)); },
      deadline_micros, tenant);
  if (!s.ok()) {
    QueryResult r;
    r.status = std::move(s);
    return r;
  }
  return fut.get();
}

/// ShardRouter's canonical merge order, applied to the unsharded twin's
/// answer so the two compare byte-for-byte.
inline void Canonicalize(std::vector<Point>* pts) {
  std::sort(pts->begin(), pts->end(), [](const Point& a, const Point& b) {
    return std::tie(a.x, a.y, a.id) < std::tie(b.x, b.y, b.id);
  });
}
inline void Canonicalize(std::vector<Interval>* ivs) {
  std::sort(ivs->begin(), ivs->end(),
            [](const Interval& a, const Interval& b) {
              return std::tie(a.lo, a.hi, a.id) < std::tie(b.lo, b.hi, b.id);
            });
}

/// A sharded store + router and its unsharded twin engine over the same
/// records.  Add* registers on both sides (asserting the structure ids stay
/// aligned); Check() queries both and demands identical answers.
class ShardedTwin {
 public:
  explicit ShardedTwin(ShardedStoreOptions sopts = {},
                       ShardRouterOptions ropts = {})
      : store_(sopts),
        router_(&store_, ropts),
        twin_pool_(&twin_dev_, sopts.pool_pages_total),
        twin_engine_(&twin_pool_, TwinOptions(sopts)) {}

  Result<uint32_t> AddTwoSided(std::span<const Point> pts) {
    PC_ASSIGN_OR_RETURN(uint32_t sid, store_.AddTwoSided(pts));
    ExternalPst pst(&twin_pool_);
    PC_RETURN_IF_ERROR(pst.Build({pts.begin(), pts.end()}));
    return TwinRegister(sid, pst.Save());
  }

  Result<uint32_t> AddThreeSided(std::span<const Point> pts) {
    PC_ASSIGN_OR_RETURN(uint32_t sid, store_.AddThreeSided(pts));
    ThreeSidedPst pst(&twin_pool_);
    PC_RETURN_IF_ERROR(pst.Build({pts.begin(), pts.end()}));
    return TwinRegister(sid, pst.Save());
  }

  Result<uint32_t> AddStabbing(std::span<const Interval> ivs) {
    PC_ASSIGN_OR_RETURN(uint32_t sid, store_.AddStabbing(ivs));
    ExtSegmentTree st(&twin_pool_);
    PC_RETURN_IF_ERROR(st.Build({ivs.begin(), ivs.end()}));
    return TwinRegister(sid, st.Save());
  }

  Status Start() {
    PC_RETURN_IF_ERROR(store_.Start());
    return twin_engine_.Start();
  }

  void Stop() {
    store_.Stop();
    twin_engine_.Stop();
  }

  /// One differential probe: the routed answer must match the twin's
  /// (canonicalized), and the merged I/O must equal the slice sum.
  ::testing::AssertionResult Check(uint32_t id, const ServeQuery& q) {
    QueryResult sharded = BlockingSubmit(&router_, id, q);
    QueryResult flat = BlockingSubmit(&twin_engine_, id, q);
    if (!sharded.status.ok()) {
      return ::testing::AssertionFailure()
             << "routed query failed: " << sharded.status.ToString();
    }
    if (!flat.status.ok()) {
      return ::testing::AssertionFailure()
             << "twin query failed: " << flat.status.ToString();
    }
    Canonicalize(&flat.points);
    Canonicalize(&flat.intervals);
    if (sharded.points != flat.points) {
      return ::testing::AssertionFailure()
             << "points diverge: sharded " << sharded.points.size()
             << " vs twin " << flat.points.size();
    }
    if (sharded.intervals != flat.intervals) {
      return ::testing::AssertionFailure()
             << "intervals diverge: sharded " << sharded.intervals.size()
             << " vs twin " << flat.intervals.size();
    }
    IoStats sum;
    for (const ShardSlice& s : sharded.shards) {
      sum.reads += s.io.reads;
      sum.writes += s.io.writes;
      sum.batch_reads += s.io.batch_reads;
    }
    if (sum.reads != sharded.io.reads || sum.writes != sharded.io.writes ||
        sum.batch_reads != sharded.io.batch_reads) {
      return ::testing::AssertionFailure()
             << "merged IoStats do not equal the per-shard slice sum";
    }
    return ::testing::AssertionSuccess();
  }

  ShardedStore* store() { return &store_; }
  ShardRouter* router() { return &router_; }
  QueryEngine* twin_engine() { return &twin_engine_; }

 private:
  static QueryEngineOptions TwinOptions(const ShardedStoreOptions& sopts) {
    QueryEngineOptions eopts;
    eopts.num_workers = sopts.engine_workers;
    eopts.queue_capacity = sopts.queue_capacity;
    eopts.batch_size = sopts.batch_size;
    eopts.clock = sopts.clock;
    return eopts;
  }

  Result<uint32_t> TwinRegister(uint32_t sid, Result<PageId> manifest) {
    PC_RETURN_IF_ERROR(manifest.ToStatus());
    PC_ASSIGN_OR_RETURN(uint32_t tid,
                        twin_engine_.AddStructure(manifest.value()));
    if (tid != sid) {
      return Status::FailedPrecondition("twin structure ids diverged");
    }
    return sid;
  }

  ShardedStore store_;
  ShardRouter router_;
  MemPageDevice twin_dev_;
  SharedBufferPool twin_pool_;
  QueryEngine twin_engine_;
};

}  // namespace shardtest
}  // namespace pathcache

#endif  // PATHCACHE_TESTS_ORACLE_COMMON_H_
