// Unified property-based differential harness: every external structure is
// exercised against its in-core brute-force oracle over randomly generated
// record sets and randomly sampled queries, all derived deterministically
// from a case seed.
//
// The harness replaces the per-structure ad-hoc "MatchesBruteForce" sweeps
// the test suite grew one copy at a time.  What it adds over them:
//
//  * One shrinking engine.  On a disagreement the harness does not just
//    fail — it delta-debugs the record set down to a locally minimal set
//    that still reproduces the disagreement (rebuilding the structure from
//    scratch per candidate, so shrink results are trustworthy), then prints
//    a self-contained reproducer: the case parameters, the seed, the
//    surviving records, and the failing query.
//  * One place to add query-distribution coverage for all four structures.
//
// A structure plugs in via an Adapter type:
//
//   struct MyAdapter {
//     using Record = ...;              // Point or Interval
//     using Query = ...;
//     static const char* Name();
//     struct Instance {                // a built structure on a fresh device
//       Instance(const std::vector<Record>&, const DiffCase&);
//       Status init;                   // Build() outcome
//       Status Query(const Query&, std::vector<Record>* out) const;
//     };
//     static std::vector<Record> GenRecords(const DiffCase&);
//     static Query Sample(const std::vector<Record>&, Rng*, const DiffCase&,
//                         int ordinal);
//     static std::vector<Query> BoundaryQueries();
//     static std::vector<Record> Oracle(const std::vector<Record>&,
//                                       const Query&);
//     static std::string FormatQuery(const Query&);
//   };

#ifndef PATHCACHE_TESTS_ORACLE_COMMON_H_
#define PATHCACHE_TESTS_ORACLE_COMMON_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "util/geometry.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/oracle.h"

namespace pathcache {
namespace difftest {

/// One differential case: everything about it (records and queries) derives
/// from these values, so quoting the case IS the reproducer.
struct DiffCase {
  uint64_t n = 0;
  uint64_t seed = 0;
  uint32_t page_size = 4096;
  bool caching = true;
  const char* dist = "uniform";
  double x_frac = 0.2;  // 3-sided query width fraction; ignored elsewhere
};

inline std::string FormatCase(const DiffCase& c) {
  std::ostringstream os;
  os << "DiffCase{.n=" << c.n << ", .seed=" << c.seed
     << ", .page_size=" << c.page_size
     << ", .caching=" << (c.caching ? "true" : "false") << ", .dist=\""
     << c.dist << "\", .x_frac=" << c.x_frac << "}";
  return os.str();
}

inline std::string FormatRecord(const Point& p) {
  std::ostringstream os;
  os << "{" << p.x << ", " << p.y << ", " << p.id << "}";
  return os.str();
}

inline std::string FormatRecord(const Interval& iv) {
  std::ostringstream os;
  os << "{" << iv.lo << ", " << iv.hi << ", " << iv.id << "}";
  return os.str();
}

/// True iff a fresh instance built over `recs` disagrees with the oracle on
/// `q` (a Build or Query error also counts: the shrinker may legitimately
/// walk into one while minimizing, and an erroring input is just as much a
/// reproducer).
template <typename A>
bool Disagrees(const std::vector<typename A::Record>& recs,
               const typename A::Query& q, const DiffCase& c) {
  typename A::Instance inst(recs, c);
  if (!inst.init.ok()) return true;
  std::vector<typename A::Record> got;
  if (!inst.Query(q, &got).ok()) return true;
  return !SameResult(got, A::Oracle(recs, q));
}

/// ddmin-style minimizer: repeatedly tries deleting chunks of the record
/// set, keeping any deletion that still reproduces the disagreement, until
/// the set is 1-minimal (no single record can be removed) or the rebuild
/// budget runs out.  Each probe rebuilds the structure from scratch.
template <typename A>
std::vector<typename A::Record> ShrinkRecords(
    std::vector<typename A::Record> recs, const typename A::Query& q,
    const DiffCase& c, int max_probes = 600) {
  size_t chunks = 2;
  int probes = 0;
  while (recs.size() > 1 && chunks <= recs.size() && probes < max_probes) {
    const size_t chunk_len = (recs.size() + chunks - 1) / chunks;
    bool removed_any = false;
    for (size_t start = 0; start < recs.size() && probes < max_probes;
         start += chunk_len) {
      std::vector<typename A::Record> candidate;
      candidate.reserve(recs.size());
      for (size_t i = 0; i < recs.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(recs[i]);
      }
      if (candidate.empty()) continue;
      ++probes;
      if (Disagrees<A>(candidate, q, c)) {
        recs = std::move(candidate);
        chunks = std::max<size_t>(2, chunks - 1);
        removed_any = true;
        break;  // restart the chunk scan on the smaller set
      }
    }
    if (!removed_any) {
      if (chunk_len == 1) break;  // 1-minimal
      chunks = std::min(recs.size(), chunks * 2);
    }
  }
  return recs;
}

/// Self-contained failure report: enough to paste into a regression test.
template <typename A>
std::string Reproducer(const std::vector<typename A::Record>& minimal,
                       const typename A::Query& q, const DiffCase& c) {
  std::ostringstream os;
  os << A::Name() << " disagrees with its oracle.\n"
     << "case: " << FormatCase(c) << "\n"
     << "query: " << A::FormatQuery(q) << "\n"
     << "shrunk to " << minimal.size() << " record(s):\n";
  const size_t show = std::min<size_t>(minimal.size(), 64);
  for (size_t i = 0; i < show; ++i) {
    os << "  " << FormatRecord(minimal[i]) << ",\n";
  }
  if (show < minimal.size()) {
    os << "  ... (" << (minimal.size() - show) << " more)\n";
  }
  {
    typename A::Instance inst(minimal, c);
    if (!inst.init.ok()) {
      os << "Build on the shrunk set: " << inst.init.ToString() << "\n";
    } else {
      std::vector<typename A::Record> got;
      Status s = inst.Query(q, &got);
      if (!s.ok()) {
        os << "Query on the shrunk set: " << s.ToString() << "\n";
      } else {
        auto want = A::Oracle(minimal, q);
        os << "structure returned " << got.size() << " record(s), oracle "
           << want.size() << "\n";
      }
    }
  }
  return os.str();
}

/// The harness entry point: builds the structure once over the generated
/// records, then replays `num_queries` sampled queries plus the adapter's
/// fixed boundary queries against the oracle.  The first disagreement is
/// shrunk and reported; the test fails with the reproducer.
template <typename A>
void RunDifferential(const DiffCase& c, int num_queries) {
  const std::vector<typename A::Record> recs = A::GenRecords(c);
  typename A::Instance inst(recs, c);
  ASSERT_TRUE(inst.init.ok()) << A::Name() << " Build: "
                              << inst.init.ToString() << "\n"
                              << FormatCase(c);

  std::vector<typename A::Query> queries = A::BoundaryQueries();
  Rng rng(c.seed ^ 0x5EEDF00DULL);
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(A::Sample(recs, &rng, c, i));
  }

  for (const auto& q : queries) {
    std::vector<typename A::Record> got;
    Status s = inst.Query(q, &got);
    const bool ok = s.ok() && SameResult(got, A::Oracle(recs, q));
    if (ok) continue;
    auto minimal = ShrinkRecords<A>(recs, q, c);
    FAIL() << Reproducer<A>(minimal, q, c)
           << (s.ok() ? "" : "first failure status: " + s.ToString());
  }
}

}  // namespace difftest
}  // namespace pathcache

#endif  // PATHCACHE_TESTS_ORACLE_COMMON_H_
