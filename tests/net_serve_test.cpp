// End-to-end tests for the network serving front-end: queries over a real
// TCP socket must match the brute-force oracles, pipelined responses come
// back in request order, payload-level errors keep the connection while
// frame-level errors close it, engine overload surfaces as RETRY_AFTER
// (never a dropped connection), deadline budgets expire on the engine
// clock, update groups ack durably with read-your-writes, and the server's
// metrics export passes the Prometheus linter.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "dynamic/dynamic_store.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "net/client.h"
#include "net/net_metrics.h"
#include "net/wire.h"
#include "obs/promlint.h"
#include "serve/clock.h"
#include "serve/query_engine.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace net {
namespace {

struct SavedStore {
  MemPageDevice dev{4096};
  PageId pst_manifest = kInvalidPageId;
  PageId three_manifest = kInvalidPageId;
  PageId seg_manifest = kInvalidPageId;
  std::vector<Point> pts;
  std::vector<Interval> ivs;
};

void BuildStore(SavedStore* s, uint64_t n_pts = 3000, uint64_t n_ivs = 2000) {
  PointGenOptions po;
  po.n = n_pts;
  po.seed = 171;
  po.coord_max = 200000;
  s->pts = GenPointsUniform(po);

  IntervalGenOptions io;
  io.n = n_ivs;
  io.seed = 172;
  io.domain_max = 1'000'000;
  s->ivs = GenIntervalsUniform(io);
  MakeEndpointsDistinct(&s->ivs);

  {
    ExternalPst pst(&s->dev);
    ASSERT_TRUE(pst.Build(s->pts).ok());
    auto m = pst.Save();
    ASSERT_TRUE(m.ok());
    s->pst_manifest = m.value();
  }
  {
    ThreeSidedPst pst(&s->dev);
    ASSERT_TRUE(pst.Build(s->pts).ok());
    auto m = pst.Save();
    ASSERT_TRUE(m.ok());
    s->three_manifest = m.value();
  }
  {
    ExtSegmentTree st(&s->dev);
    ASSERT_TRUE(st.Build(s->ivs).ok());
    auto m = st.Save();
    ASSERT_TRUE(m.ok());
    s->seg_manifest = m.value();
  }
}

/// Engine + server over one saved store; ids 0 = two-sided, 1 =
/// three-sided, 2 = stabbing.
class NetServeTest : public ::testing::Test {
 protected:
  void StartServing(QueryEngineOptions opts = {}, NetServerOptions sopts = {}) {
    BuildStore(&store_);
    pool_ = std::make_unique<SharedBufferPool>(&store_.dev, 4096);
    engine_ = std::make_unique<QueryEngine>(pool_.get(), opts);
    ASSERT_TRUE(engine_->AddStructure(store_.pst_manifest).ok());
    ASSERT_TRUE(engine_->AddStructure(store_.three_manifest).ok());
    ASSERT_TRUE(engine_->AddStructure(store_.seg_manifest).ok());
    ASSERT_TRUE(engine_->Start().ok());
    server_ = std::make_unique<NetServer>(engine_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (engine_) engine_->Stop();
  }

  Status Connect(NetClient* c) {
    return c->Connect("127.0.0.1", server_->port());
  }

  SavedStore store_;
  std::unique_ptr<SharedBufferPool> pool_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(NetServeTest, AllFiveQueryKindsMatchBruteForce) {
  StartServing();
  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.Ping().ok());

  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const int64_t x = rng.UniformRange(0, 200000);
    const int64_t y = rng.UniformRange(0, 200000);
    const int64_t x2 = x + rng.UniformRange(0, 50000);
    const int64_t y2 = y + rng.UniformRange(0, 50000);

    std::vector<Point> got;
    TwoSidedQuery two{x, y};
    ASSERT_TRUE(client.QueryTwoSided(0, two, &got).ok());
    EXPECT_TRUE(SameResult(got, BruteTwoSided(store_.pts, two))) << i;

    ThreeSidedQuery three{x, x2, y};
    ASSERT_TRUE(client.QueryThreeSided(1, three, &got).ok());
    EXPECT_TRUE(SameResult(got, BruteThreeSided(store_.pts, three))) << i;

    RangeQuery range{x, x2, y, y2};
    ASSERT_TRUE(client.QueryRange(1, range, &got).ok());
    EXPECT_TRUE(SameResult(got, BruteRange(store_.pts, range))) << i;

    ASSERT_TRUE(client.QueryDiagonal(0, x, &got).ok());
    EXPECT_TRUE(
        SameResult(got, BruteTwoSided(store_.pts, TwoSidedQuery{x, x})))
        << i;

    std::vector<Interval> ivs;
    const int64_t q = rng.UniformRange(0, 1'000'000);
    ASSERT_TRUE(client.QueryStab(2, q, &ivs).ok());
    EXPECT_TRUE(SameResult(ivs, BruteStab(store_.ivs, q))) << i;
  }
  const NetServerStats stats = server_->stats();
  EXPECT_GE(stats.frames_in, 251u);  // ping + 250 queries
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.request_errors, 0u);
}

TEST_F(NetServeTest, PipelinedResponsesArriveInRequestOrder) {
  StartServing();
  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());

  constexpr int kDepth = 40;
  Rng rng(37);
  for (int i = 0; i < kDepth; ++i) {
    Request req;
    req.request_id = uint64_t(1000 + i);
    if (i % 3 == 0) {
      req.type = MsgType::kPing;
    } else if (i % 3 == 1) {
      req.type = MsgType::kQueryTwoSided;
      req.structure_id = 0;
      req.two_sided =
          TwoSidedQuery{rng.UniformRange(0, 200000), rng.UniformRange(0, 200000)};
    } else {
      req.type = MsgType::kQueryStab;
      req.structure_id = 2;
      req.stab = rng.UniformRange(0, 1'000'000);
    }
    ASSERT_TRUE(client.Send(req).ok()) << i;
  }
  for (int i = 0; i < kDepth; ++i) {
    Response resp;
    ASSERT_TRUE(client.Receive(&resp).ok()) << i;
    // In-order pipelining is the protocol guarantee under test.
    EXPECT_EQ(resp.request_id, uint64_t(1000 + i));
    EXPECT_TRUE(resp.type == MsgType::kPong || resp.type == MsgType::kPoints ||
                resp.type == MsgType::kIntervals);
  }
}

TEST_F(NetServeTest, PayloadErrorsKeepConnectionFrameErrorsCloseIt) {
  StartServing();
  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());

  // Unknown structure id: per-request error, connection survives.
  std::vector<Point> got;
  Status st = client.QueryTwoSided(17, TwoSidedQuery{0, 0}, &got);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();

  // Kind mismatch (stab against the two-sided structure): same tier.
  std::vector<Interval> ivs;
  st = client.QueryStab(0, 5, &ivs);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();

  // Well-framed but malformed payload (wrong size for the type): the frame
  // CRC is fine, so the server answers this exact request id with kError
  // and the connection lives on.
  {
    std::vector<uint8_t> frame;
    std::vector<uint8_t> junk(3, 0xAB);
    AppendFrame(MsgType::kQueryTwoSided, 424242, junk, &frame);
    ASSERT_TRUE(client.SendRaw(frame).ok());
    Response resp;
    ASSERT_TRUE(client.Receive(&resp).ok());
    EXPECT_EQ(resp.type, MsgType::kError);
    EXPECT_EQ(resp.request_id, 424242u);
    EXPECT_EQ(resp.code, StatusCode::kInvalidArgument);
  }
  st = client.Ping();
  EXPECT_TRUE(st.ok()) << "connection should have survived payload errors: "
                       << st.ToString();

  const NetServerStats mid = server_->stats();
  EXPECT_GE(mid.request_errors, 3u);
  EXPECT_EQ(mid.protocol_errors, 0u);
}

TEST_F(NetServeTest, CorruptFrameGetsProtocolErrorThenClose) {
  StartServing();
  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.Ping().ok());

  // Corrupt a valid frame's CRC by flipping a payload byte after encode.
  Request req;
  req.type = MsgType::kQueryTwoSided;
  req.request_id = 7;
  req.structure_id = 0;
  std::vector<uint8_t> frame;
  ASSERT_TRUE(EncodeRequest(req, &frame).ok());
  frame[kHeaderSize] ^= 0xFF;

  // NetClient exposes no raw write, so smuggle the bytes as two Sends is
  // impossible — drive the fd directly through a one-off connect.
  NetClient dying;
  ASSERT_TRUE(Connect(&dying).ok());
  ASSERT_TRUE(dying.SendRaw(frame).ok());
  Response resp;
  ASSERT_TRUE(dying.Receive(&resp).ok());
  EXPECT_EQ(resp.type, MsgType::kProtocolError);
  EXPECT_EQ(resp.request_id, 0u);  // corrupted headers are not echoed

  // After the protocol error the server closes: the next read sees EOF.
  Status dead = dying.Receive(&resp);
  EXPECT_FALSE(dead.ok());

  // A neighboring connection is unaffected.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetServeTest, OverloadAnswersRetryAfterAndKeepsConnection) {
  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.batch_size = 1;
  opts.queue_capacity = 2;
  NetServerOptions sopts;
  sopts.retry_after_micros = 777;
  StartServing(opts, sopts);

  // Park the only worker in-process so the queue state is deterministic.
  std::promise<void> parked, release;
  std::shared_future<void> release_f = release.get_future().share();
  ASSERT_TRUE(engine_
                  ->Submit(0, ServeQuery::TwoSided(TwoSidedQuery{INT64_MAX,
                                                                 INT64_MAX}),
                           [&](QueryResult) {
                             parked.set_value();
                             release_f.wait();
                           })
                  .ok());
  parked.get_future().wait();

  // Fill the queue from in-process submissions.
  for (size_t i = 0; i < opts.queue_capacity; ++i) {
    ASSERT_TRUE(engine_
                    ->Submit(0,
                             ServeQuery::TwoSided(
                                 TwoSidedQuery{INT64_MAX, INT64_MAX}),
                             nullptr)
                    .ok());
  }

  // The socket client now gets protocol-level backpressure, not a drop.
  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());
  Request req;
  req.type = MsgType::kQueryTwoSided;
  req.structure_id = 0;
  Response resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kRetryAfter);
  EXPECT_EQ(resp.retry_after_micros, 777u);

  release.set_value();
  engine_->Drain();

  // Same connection works once the queue drains — RETRY_AFTER is advisory.
  std::vector<Point> got;
  EXPECT_TRUE(client.QueryTwoSided(0, TwoSidedQuery{0, 0}, &got).ok());
  EXPECT_GE(server_->stats().retry_after, 1u);
  EXPECT_EQ(server_->stats().connections_closed, 0u);
}

TEST_F(NetServeTest, BudgetExpiresOnEngineClock) {
  FakeClock clock(1'000'000);
  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.batch_size = 1;
  opts.clock = &clock;
  StartServing(opts);

  std::promise<void> parked, release;
  std::shared_future<void> release_f = release.get_future().share();
  ASSERT_TRUE(engine_
                  ->Submit(0, ServeQuery::TwoSided(TwoSidedQuery{INT64_MAX,
                                                                 INT64_MAX}),
                           [&](QueryResult) {
                             parked.set_value();
                             release_f.wait();
                           })
                  .ok());
  parked.get_future().wait();

  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());
  Request req;
  req.type = MsgType::kQueryTwoSided;
  req.structure_id = 0;
  req.budget_micros = 500;  // deadline = now + 500us on the fake clock
  ASSERT_TRUE(client.Send(req).ok());

  // Wait until the server has submitted it (queue depth 1), then let the
  // budget lapse before the worker ever sees the request.
  while (engine_->stats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  clock.Advance(1'000);
  release.set_value();

  Response resp;
  ASSERT_TRUE(client.Receive(&resp).ok());
  EXPECT_EQ(resp.type, MsgType::kError);
  EXPECT_EQ(resp.code, StatusCode::kDeadlineExceeded);
}

TEST_F(NetServeTest, UpdateGroupsAckAndReadYourWrites) {
  BuildStore(&store_);
  pool_ = std::make_unique<SharedBufferPool>(&store_.dev, 4096);
  std::vector<DynamicItem> initial;
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    initial.push_back(DynamicItem{rng.UniformRange(0, 100000),
                                  rng.UniformRange(0, 100000), uint64_t(i)});
  }
  auto store = std::move(
      DynamicStore::Create(pool_.get(), DynamicStructure::kExternalPst, initial)
          .value());
  engine_ = std::make_unique<QueryEngine>(pool_.get());
  ASSERT_TRUE(engine_->AddStructure(store_.pst_manifest).ok());  // id 0: static
  auto dyn = engine_->AddDynamicStore(store.get());
  ASSERT_TRUE(dyn.ok());
  ASSERT_TRUE(engine_->Start().ok());
  server_ = std::make_unique<NetServer>(engine_.get());
  ASSERT_TRUE(server_->Start().ok());

  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());

  // Static structures reject updates at the front-end.
  std::vector<DynamicUpdate> ups = {
      DynamicUpdate{UpdateOp::kInsert, DynamicItem{500, 500, 999000}}};
  Status rejected = client.Update(0, ups);
  EXPECT_TRUE(rejected.IsInvalidArgument()) << rejected.ToString();

  // Acked inserts are immediately visible to the same client.
  for (uint64_t i = 0; i < 20; ++i) {
    std::vector<DynamicUpdate> group = {
        DynamicUpdate{UpdateOp::kInsert,
                      DynamicItem{int64_t(200000 + i), int64_t(200000 + i),
                                  999100 + i}}};
    ASSERT_TRUE(client.Update(dyn.value(), group).ok()) << i;
  }
  std::vector<Point> got;
  ASSERT_TRUE(
      client.QueryTwoSided(dyn.value(), TwoSidedQuery{200000, 200000}, &got)
          .ok());
  EXPECT_EQ(got.size(), 20u);

  server_->Stop();
  server_.reset();
  engine_->Stop();
  engine_.reset();
  ASSERT_TRUE(store->Destroy().ok());
}

TEST_F(NetServeTest, MetricsExportPassesPromLint) {
  StartServing();
  MetricsRegistry reg;
  ASSERT_TRUE(RegisterNetMetrics(&reg, "front", server_.get()).ok());

  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.Ping().ok());
  std::vector<Point> got;
  ASSERT_TRUE(client.QueryTwoSided(0, TwoSidedQuery{0, 0}, &got).ok());

  std::string text;
  reg.WritePrometheus(&text);
  Status lint = PrometheusLint(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
  const NetServerStats stats = server_->stats();
  EXPECT_NE(text.find("pathcache_net_frames_in_total{server=\"front\"} " +
                      std::to_string(stats.frames_in)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pathcache_net_open_connections{server=\"front\"} 1"),
            std::string::npos)
      << text;
}

TEST_F(NetServeTest, HalfCloseStillDeliversPipelinedResponses) {
  StartServing();
  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());
  constexpr int kN = 10;
  for (int i = 0; i < kN; ++i) {
    Request req;
    req.type = MsgType::kPing;
    req.request_id = uint64_t(i + 1);
    ASSERT_TRUE(client.Send(req).ok());
  }
  // Shut down the send side; the server must still answer everything
  // already pipelined, then close.
  client.ShutdownWrite();
  for (int i = 0; i < kN; ++i) {
    Response resp;
    ASSERT_TRUE(client.Receive(&resp).ok()) << i;
    EXPECT_EQ(resp.type, MsgType::kPong);
    EXPECT_EQ(resp.request_id, uint64_t(i + 1));
  }
  Response eof;
  EXPECT_FALSE(client.Receive(&eof).ok());
}

TEST(AcceptErrorClassificationTest, TransientBackoffAndFatalErrnosSplit) {
  // Aborted-in-backlog handshakes are non-events: keep accepting.
  EXPECT_EQ(ClassifyAcceptError(ECONNABORTED), AcceptErrorAction::kRetry);
  EXPECT_EQ(ClassifyAcceptError(EPROTO), AcceptErrorAction::kRetry);
  // Resource exhaustion would spin at 100% CPU if retried immediately (the
  // ready listener keeps waking epoll): park the listener instead.
  EXPECT_EQ(ClassifyAcceptError(EMFILE), AcceptErrorAction::kBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENFILE), AcceptErrorAction::kBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENOBUFS), AcceptErrorAction::kBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENOMEM), AcceptErrorAction::kBackoff);
  // Anything else (EBADF, EINVAL, ...) is a bug or teardown: bail out of
  // this accept pass without spinning.
  EXPECT_EQ(ClassifyAcceptError(EBADF), AcceptErrorAction::kFail);
  EXPECT_EQ(ClassifyAcceptError(EINVAL), AcceptErrorAction::kFail);
}

TEST_F(NetServeTest, AcceptErrorCounterIsExportedAndStartsAtZero) {
  StartServing();
  EXPECT_EQ(server_->stats().accept_errors, 0u);
  MetricsRegistry reg;
  ASSERT_TRUE(RegisterNetMetrics(&reg, "front", server_.get()).ok());
  std::string text;
  reg.WritePrometheus(&text);
  ASSERT_TRUE(PrometheusLint(text).ok()) << text;
  EXPECT_NE(
      text.find("pathcache_net_accept_errors_total{server=\"front\"} 0"),
      std::string::npos)
      << text;
}

TEST_F(NetServeTest, TenantQuotaBindsPerConnectionAndBouncesSaturator) {
  BuildStore(&store_);
  pool_ = std::make_unique<SharedBufferPool>(&store_.dev, 4096);
  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.batch_size = 1;
  opts.queue_capacity = 8;
  engine_ = std::make_unique<QueryEngine>(pool_.get(), opts);
  ASSERT_TRUE(engine_->AddStructure(store_.pst_manifest).ok());
  ASSERT_TRUE(engine_->SetTenantQuota(7, 2).ok());
  ASSERT_TRUE(engine_->Start().ok());
  NetServerOptions sopts;
  sopts.retry_after_micros = 321;
  server_ = std::make_unique<NetServer>(engine_.get(), sopts);
  ASSERT_TRUE(server_->Start().ok());

  // Park the only worker so admitted requests provably stay queued.
  std::promise<void> parked, release;
  std::shared_future<void> release_f = release.get_future().share();
  ASSERT_TRUE(engine_
                  ->Submit(0, ServeQuery::TwoSided(TwoSidedQuery{INT64_MAX,
                                                                 INT64_MAX}),
                           [&](QueryResult) {
                             parked.set_value();
                             release_f.wait();
                           })
                  .ok());
  parked.get_future().wait();

  // The saturating tenant binds its connection, then pipelines exactly its
  // two quota tokens' worth of queries.
  NetClient saturator;
  ASSERT_TRUE(Connect(&saturator).ok());
  ASSERT_TRUE(saturator.SetTenant(7).ok());
  Request q;
  q.type = MsgType::kQueryTwoSided;
  q.structure_id = 0;
  ASSERT_TRUE(saturator.Send(q).ok());
  ASSERT_TRUE(saturator.Send(q).ok());
  auto tenant_queued = [&] {
    for (const auto& t : engine_->stats().tenants) {
      if (t.tenant == 7) return t.queued;
    }
    return uint64_t{0};
  };
  while (tenant_queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A third request from the same tenant (fresh connection, same binding)
  // bounces with RETRY_AFTER even though the global queue has room.
  NetClient sat2;
  ASSERT_TRUE(Connect(&sat2).ok());
  ASSERT_TRUE(sat2.SetTenant(7).ok());
  Response resp;
  ASSERT_TRUE(sat2.Call(q, &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kRetryAfter);
  EXPECT_EQ(resp.retry_after_micros, 321u);

  // A quiet tenant (no binding = unlimited default) is still admitted.
  NetClient quiet;
  ASSERT_TRUE(Connect(&quiet).ok());
  ASSERT_TRUE(quiet.Send(q).ok());
  while (engine_->stats().queue_depth < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  release.set_value();
  engine_->Drain();
  for (int i = 0; i < 2; ++i) {
    Response r;
    ASSERT_TRUE(saturator.Receive(&r).ok()) << i;
    EXPECT_EQ(r.type, MsgType::kPoints) << i;
  }
  Response qr;
  ASSERT_TRUE(quiet.Receive(&qr).ok());
  EXPECT_EQ(qr.type, MsgType::kPoints);

  // The quota accounting is visible in ServeStats and the metrics export.
  ServeStats stats = engine_->stats();
  EXPECT_GE(stats.rejected_quota, 1u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].tenant, 7u);
  EXPECT_EQ(stats.tenants[0].quota, 2u);
  EXPECT_EQ(stats.tenants[0].queued, 0u);
  EXPECT_EQ(stats.tenants[0].admitted, 2u);
  EXPECT_GE(stats.tenants[0].rejected, 1u);
}

TEST_F(NetServeTest, SetTenantAcksAndSurvivesRebinding) {
  StartServing();
  NetClient client;
  ASSERT_TRUE(Connect(&client).ok());
  ASSERT_TRUE(client.SetTenant(42).ok());
  ASSERT_TRUE(client.SetTenant(0).ok());  // rebinding back to default works
  std::vector<Point> got;
  EXPECT_TRUE(client.QueryTwoSided(0, TwoSidedQuery{0, 0}, &got).ok());
}

}  // namespace
}  // namespace net
}  // namespace pathcache
