#include "util/mathutil.h"

#include <gtest/gtest.h>

namespace pathcache {
namespace {

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 3), 0u);
  EXPECT_EQ(CeilDiv(1, 3), 1u);
  EXPECT_EQ(CeilDiv(3, 3), 1u);
  EXPECT_EQ(CeilDiv(4, 3), 2u);
  EXPECT_EQ(CeilDiv(1000000, 256), 3907u);
}

TEST(MathTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(255), 7u);
  EXPECT_EQ(FloorLog2(256), 8u);
  EXPECT_EQ(FloorLog2(1ULL << 63), 63u);
}

TEST(MathTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(256), 8u);
  EXPECT_EQ(CeilLog2(257), 9u);
}

TEST(MathTest, LogBase) {
  EXPECT_EQ(FloorLogBase(1, 10), 0u);
  EXPECT_EQ(FloorLogBase(9, 10), 0u);
  EXPECT_EQ(FloorLogBase(10, 10), 1u);
  EXPECT_EQ(FloorLogBase(99, 10), 1u);
  EXPECT_EQ(FloorLogBase(1000000, 10), 6u);
  EXPECT_EQ(CeilLogBase(1, 10), 0u);
  EXPECT_EQ(CeilLogBase(10, 10), 1u);
  EXPECT_EQ(CeilLogBase(11, 10), 2u);
  // log_B n, the navigation bound: B=256, n=16M -> 3.
  EXPECT_EQ(CeilLogBase(16'777'216, 256), 3u);
}

TEST(MathTest, LogStar) {
  EXPECT_EQ(LogStar(1), 0u);
  EXPECT_EQ(LogStar(2), 1u);
  EXPECT_EQ(LogStar(4), 2u);
  EXPECT_EQ(LogStar(16), 3u);
  EXPECT_EQ(LogStar(65536), 4u);
  // With the floor-log definition: 2^63 -> 63 -> 5 -> 2 -> 1, four steps.
  EXPECT_EQ(LogStar(1ULL << 63), 4u);
}

TEST(MathTest, FloorLogLog2) {
  EXPECT_EQ(FloorLogLog2(2), 1u);
  EXPECT_EQ(FloorLogLog2(4), 1u);
  EXPECT_EQ(FloorLogLog2(16), 2u);
  EXPECT_EQ(FloorLogLog2(256), 3u);
  EXPECT_EQ(FloorLogLog2(1ULL << 32), 5u);
}

TEST(MathTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(256));
  EXPECT_FALSE(IsPowerOfTwo(255));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(256), 256u);
  EXPECT_EQ(NextPowerOfTwo(257), 512u);
}

class LogIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogIdentityTest, FloorCeilSandwich) {
  uint64_t x = GetParam();
  EXPECT_LE(FloorLog2(x), CeilLog2(x));
  EXPECT_LE(CeilLog2(x) - FloorLog2(x), 1u);
  EXPECT_LE(1ULL << FloorLog2(x), x);
  if (CeilLog2(x) < 64) {
    EXPECT_GE(1ULL << CeilLog2(x), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LogIdentityTest,
                         ::testing::Values(1, 2, 3, 5, 17, 100, 255, 256, 257,
                                           65535, 65536, 1ULL << 40));

}  // namespace
}  // namespace pathcache
