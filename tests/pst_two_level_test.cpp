#include "core/pst_two_level.h"

#include <gtest/gtest.h>

#include "core/pst_external.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed,
                              int64_t coord_max = 1'000'000) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = coord_max;
  return GenPointsUniform(o);
}

TEST(TwoLevelPstTest, EmptyAndSingle) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  ASSERT_TRUE(pst.Build({}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryTwoSided({0, 0}, &out).ok());
  EXPECT_TRUE(out.empty());

  TwoLevelPst pst2(&dev);
  ASSERT_TRUE(pst2.Build({{3, 4, 9}}).ok());
  ASSERT_TRUE(pst2.QueryTwoSided({3, 4}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 9u);
}

struct TlCase {
  uint64_t n;
  uint64_t seed;
  uint32_t page_size;
  uint32_t levels;
  const char* dist;
};

class TwoLevelSweep : public ::testing::TestWithParam<TlCase> {};

TEST_P(TwoLevelSweep, MatchesBruteForce) {
  const auto& c = GetParam();
  MemPageDevice dev(c.page_size);
  TwoLevelPstOptions opts;
  opts.levels = c.levels;
  TwoLevelPst pst(&dev, opts);

  PointGenOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.coord_max = 300000;
  std::vector<Point> pts;
  if (std::string(c.dist) == "uniform") {
    pts = GenPointsUniform(o);
  } else if (std::string(c.dist) == "clustered") {
    pts = GenPointsClustered(o, 5, 5000);
  } else {
    pts = GenPointsAntiCorrelated(o, 2000);
  }
  ASSERT_TRUE(pst.Build(pts).ok());

  Rng rng(c.seed ^ 0x7777);
  for (int i = 0; i < 25; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    QueryStats qs;
    ASSERT_TRUE(pst.QueryTwoSided(q, &got, &qs).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)))
        << "q=(" << q.x_min << "," << q.y_min << ") " << qs.ToString();
  }
  std::vector<Point> all;
  ASSERT_TRUE(pst.QueryTwoSided({INT64_MIN, INT64_MIN}, &all).ok());
  EXPECT_TRUE(SameResult(all, pts));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoLevelSweep,
    ::testing::Values(TlCase{100, 1, 4096, 2, "uniform"},
                      TlCase{5000, 2, 4096, 2, "uniform"},
                      TlCase{50000, 3, 4096, 2, "uniform"},
                      TlCase{20000, 4, 512, 2, "uniform"},
                      TlCase{20000, 5, 1024, 2, "clustered"},
                      TlCase{20000, 6, 4096, 2, "anti"},
                      TlCase{50000, 7, 4096, 3, "uniform"},
                      TlCase{20000, 8, 512, 3, "uniform"},
                      TlCase{30000, 9, 4096, 4, "uniform"}));

TEST(TwoLevelPstTest, DuplicateCoordinates) {
  MemPageDevice dev(512);
  TwoLevelPst pst(&dev);
  std::vector<Point> pts;
  for (uint64_t i = 0; i < 3000; ++i) {
    pts.push_back({static_cast<int64_t>(i % 5), static_cast<int64_t>(i % 9),
                   i});
  }
  ASSERT_TRUE(pst.Build(pts).ok());
  for (int64_t qx = -1; qx <= 5; ++qx) {
    for (int64_t qy = -1; qy <= 9; ++qy) {
      std::vector<Point> got;
      ASSERT_TRUE(pst.QueryTwoSided({qx, qy}, &got).ok());
      ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, {qx, qy})))
          << "q=(" << qx << "," << qy << ")";
    }
  }
}

// Theorem 4.3: optimal query I/O on the two-level structure.
TEST(TwoLevelPstTest, QueryIoIsOptimal) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  auto pts = UniformPts(300000, 13);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    dev.ResetStats();
    ASSERT_TRUE(pst.QueryTwoSided(q, &got).ok());
    uint64_t bound = 10 * logB_n + 4 * CeilDiv(got.size(), B) + 16;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size();
  }
}

// Lemmas 4.1 + 4.2: the two-level structure stores O((n/B) log log B)
// blocks and undercuts the basic scheme's O((n/B) log B).
TEST(TwoLevelPstTest, StorageBeatsBasicScheme) {
  const uint32_t page = 4096;
  const uint32_t B = RecordsPerPage<Point>(page);
  auto pts = UniformPts(400000, 23);

  MemPageDevice dev_basic(page);
  ExternalPst basic(&dev_basic);
  ASSERT_TRUE(basic.Build(pts).ok());

  MemPageDevice dev_two(page);
  TwoLevelPst two(&dev_two);
  ASSERT_TRUE(two.Build(pts).ok());

  EXPECT_LT(dev_two.live_pages(), dev_basic.live_pages());
  // Absolute form of the bound with a generous constant.
  const uint64_t loglogB = FloorLogLog2(B) + 1;
  EXPECT_LE(dev_two.live_pages(), 10 * CeilDiv(pts.size(), B) * loglogB + 16);
  EXPECT_EQ(dev_two.live_pages(), two.storage().total());
}

// Theorem 4.4 direction: more levels never increase the space (up to the
// additive slack the small sub-structures cost), and queries stay correct.
TEST(TwoLevelPstTest, MultilevelReducesTopLevelCacheCost) {
  const uint32_t page = 1024;  // small B makes the level effects visible
  auto pts = UniformPts(200000, 29);

  MemPageDevice dev2(page);
  TwoLevelPstOptions o2;
  o2.levels = 2;
  TwoLevelPst two(&dev2, o2);
  ASSERT_TRUE(two.Build(pts).ok());

  MemPageDevice dev3(page);
  TwoLevelPstOptions o3;
  o3.levels = 3;
  TwoLevelPst three(&dev3, o3);
  ASSERT_TRUE(three.Build(pts).ok());

  // The third level trades second-level cache blocks for another recursion;
  // its total must stay within a small factor of the two-level total.
  EXPECT_LE(dev3.live_pages(), dev2.live_pages() * 3 / 2);
}

TEST(TwoLevelPstTest, DestroyFreesEverythingIncludingSecondLevel) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(30000, 31)).ok());
  EXPECT_GT(dev.live_pages(), 0u);
  ASSERT_TRUE(pst.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(TwoLevelPstTest, IoErrorPropagates) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(30000, 37)).ok());
  dev.InjectFailureAfter(1);
  std::vector<Point> out;
  EXPECT_TRUE(pst.QueryTwoSided({0, 0}, &out).IsIoError());
  dev.InjectFailureAfter(-1);
}

TEST(TwoLevelPstTest, WastefulIoIsPaidFor) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  auto pts = UniformPts(200000, 41);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(43);
  for (int i = 0; i < 25; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    QueryStats qs;
    ASSERT_TRUE(pst.QueryTwoSided(q, &got, &qs).ok());
    EXPECT_LE(qs.wasteful, 2 * qs.useful + 10 * logB_n + 16) << qs.ToString();
  }
}

}  // namespace
}  // namespace pathcache
