#include "core/pst_dynamic.h"

#include <gtest/gtest.h>

#include <map>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed,
                              int64_t coord_max = 1'000'000) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = coord_max;
  return GenPointsUniform(o);
}

// An id-keyed oracle mirroring the dynamic structure.
class Oracle {
 public:
  void Insert(const Point& p) { pts_[p.id] = p; }
  void Erase(const Point& p) { pts_.erase(p.id); }
  std::vector<Point> Query(const TwoSidedQuery& q) const {
    std::vector<Point> out;
    for (const auto& [id, p] : pts_) {
      if (q.Contains(p)) out.push_back(p);
    }
    return out;
  }
  std::vector<Point> All() const {
    std::vector<Point> out;
    for (const auto& [id, p] : pts_) out.push_back(p);
    return out;
  }
  size_t size() const { return pts_.size(); }
  const std::map<uint64_t, Point>& map() const { return pts_; }

 private:
  std::map<uint64_t, Point> pts_;
};

TEST(DynamicPstTest, EmptyStructure) {
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  ASSERT_TRUE(pst.Build({}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryTwoSided({0, 0}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DynamicPstTest, InsertIntoEmptyThenQuery) {
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  ASSERT_TRUE(pst.Build({}).ok());
  ASSERT_TRUE(pst.Insert({5, 7, 1}).ok());
  ASSERT_TRUE(pst.Insert({3, 9, 2}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryTwoSided({0, 0}, &out).ok());
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  ASSERT_TRUE(pst.QueryTwoSided({4, 0}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
}

TEST(DynamicPstTest, EraseBuffered) {
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  auto pts = UniformPts(2000, 3);
  ASSERT_TRUE(pst.Build(pts).ok());
  // Delete a few points; they sit in the buffer, queries must hide them.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(pst.Erase(pts[i]).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryTwoSided({INT64_MIN, INT64_MIN}, &out).ok());
  std::vector<Point> want(pts.begin() + 10, pts.end());
  EXPECT_TRUE(SameResult(out, want));
}

struct DynCase {
  uint64_t n0;       // initial bulk size
  uint64_t ops;      // number of mixed updates
  uint64_t seed;
  uint32_t page_size;
  double insert_frac;
};

class DynamicPstSweep : public ::testing::TestWithParam<DynCase> {};

TEST_P(DynamicPstSweep, MixedWorkloadMatchesOracle) {
  const auto& c = GetParam();
  MemPageDevice dev(c.page_size);
  DynamicPst pst(&dev);
  Oracle oracle;

  auto pts = UniformPts(c.n0, c.seed, 500'000);
  ASSERT_TRUE(pst.Build(pts).ok());
  for (const auto& p : pts) oracle.Insert(p);

  Rng rng(c.seed ^ 0xD11A);
  uint64_t next_id = c.n0 + 1'000'000;
  for (uint64_t op = 0; op < c.ops; ++op) {
    if (oracle.size() == 0 || rng.Bernoulli(c.insert_frac)) {
      Point p{rng.UniformRange(0, 500'000), rng.UniformRange(0, 500'000),
              next_id++};
      ASSERT_TRUE(pst.Insert(p).ok());
      oracle.Insert(p);
    } else {
      auto it = oracle.map().begin();
      std::advance(it, rng.Uniform(oracle.size()));
      Point victim = it->second;
      ASSERT_TRUE(pst.Erase(victim).ok());
      oracle.Erase(victim);
    }
    EXPECT_EQ(pst.size(), oracle.size());

    if (op % 97 == 0 || op + 1 == c.ops) {
      TwoSidedQuery q{rng.UniformRange(0, 500'000),
                      rng.UniformRange(0, 500'000)};
      std::vector<Point> got;
      ASSERT_TRUE(pst.QueryTwoSided(q, &got).ok());
      ASSERT_TRUE(SameResult(got, oracle.Query(q)))
          << "op " << op << " q=(" << q.x_min << "," << q.y_min << ")";
    }
  }
  // Final full sweep.
  std::vector<Point> all;
  ASSERT_TRUE(pst.QueryTwoSided({INT64_MIN, INT64_MIN}, &all).ok());
  EXPECT_TRUE(SameResult(all, oracle.All()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicPstSweep,
    ::testing::Values(DynCase{0, 600, 1, 4096, 1.0},
                      DynCase{100, 500, 2, 4096, 0.5},
                      DynCase{5000, 2000, 3, 4096, 0.6},
                      DynCase{20000, 3000, 4, 4096, 0.5},
                      DynCase{5000, 2000, 5, 1024, 0.6},
                      DynCase{3000, 1500, 6, 512, 0.5},
                      DynCase{5000, 3000, 7, 4096, 0.2},
                      DynCase{10000, 1000, 8, 4096, 0.9}));

TEST(DynamicPstTest, DeleteThenReinsertSameId) {
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  ASSERT_TRUE(pst.Build({{1, 1, 42}}).ok());
  ASSERT_TRUE(pst.Erase({1, 1, 42}).ok());
  ASSERT_TRUE(pst.Insert({9, 9, 42}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryTwoSided({0, 0}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].x, 9);
}

// Theorem 5.1: amortized O(log_B n) I/Os per update.
TEST(DynamicPstTest, AmortizedUpdateIoIsLogarithmic) {
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  auto pts = UniformPts(100000, 11);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(13);
  dev.ResetStats();
  const uint64_t kOps = 4000;
  uint64_t next_id = 10'000'000;
  for (uint64_t i = 0; i < kOps; ++i) {
    if (rng.Bernoulli(0.7)) {
      ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 1'000'000),
                              rng.UniformRange(0, 1'000'000), next_id++})
                      .ok());
    } else {
      ASSERT_TRUE(pst.Erase(pts[rng.Uniform(pts.size())]).ok());
      // (Duplicate erases of the same point are no-ops on flush.)
    }
  }
  double per_op =
      static_cast<double>(dev.stats().total()) / static_cast<double>(kOps);
  // Constant 24 covers: 2 I/Os logging + amortized flush/rebuild work.
  EXPECT_LE(per_op, 24.0 * logB_n + 24.0) << "per_op=" << per_op;
}

// Query I/O stays optimal in the presence of buffered updates.
TEST(DynamicPstTest, QueryIoStaysOptimalUnderUpdates) {
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  auto pts = UniformPts(100000, 17);
  ASSERT_TRUE(pst.Build(pts).ok());
  Rng rng(19);
  uint64_t next_id = 20'000'000;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 1'000'000),
                            rng.UniformRange(0, 1'000'000), next_id++})
                    .ok());
  }
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pst.size(), B) + 1;
  for (int i = 0; i < 25; ++i) {
    TwoSidedQuery q{rng.UniformRange(0, 1'000'000),
                    rng.UniformRange(0, 1'000'000)};
    std::vector<Point> got;
    dev.ResetStats();
    ASSERT_TRUE(pst.QueryTwoSided(q, &got).ok());
    uint64_t bound = 14 * logB_n + 5 * CeilDiv(got.size(), B) + 24;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size();
  }
}

// Theorem 5.1 space: O((n/B) log log B) blocks.
TEST(DynamicPstTest, StorageStaysNearLinear) {
  const uint32_t page = 4096;
  const uint32_t B = RecordsPerPage<Point>(page);
  MemPageDevice dev(page);
  DynamicPst pst(&dev);
  auto pts = UniformPts(200000, 23);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint64_t loglogB = FloorLogLog2(B) + 1;
  EXPECT_LE(dev.live_pages(), 12 * CeilDiv(pts.size(), B) * loglogB + 32);
  EXPECT_EQ(dev.live_pages(), pst.storage().total());
}

TEST(DynamicPstTest, GlobalRebuildTriggers) {
  MemPageDevice dev(4096);
  DynamicPstOptions opts;
  opts.rebuild_fraction = 0.25;
  DynamicPst pst(&dev, opts);
  auto pts = UniformPts(4000, 29);
  ASSERT_TRUE(pst.Build(pts).ok());
  Rng rng(31);
  uint64_t next_id = 1'000'000;
  for (int i = 0; i < 2500; ++i) {
    ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 1'000'000),
                            rng.UniformRange(0, 1'000'000), next_id++})
                    .ok());
  }
  EXPECT_GE(pst.rebuilds(), 1u);
  std::vector<Point> all;
  Status qs = pst.QueryTwoSided({INT64_MIN, INT64_MIN}, &all);
  ASSERT_TRUE(qs.ok()) << qs.message();
  EXPECT_EQ(all.size(), 6500u);
}

TEST(DynamicPstTest, DestroyFreesEverything) {
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(20000, 37)).ok());
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 1'000'000),
                            rng.UniformRange(0, 1'000'000),
                            1'000'000ULL + i})
                    .ok());
  }
  EXPECT_GT(dev.live_pages(), 0u);
  ASSERT_TRUE(pst.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

}  // namespace
}  // namespace pathcache
