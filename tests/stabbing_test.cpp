#include "core/stabbing.h"

#include <gtest/gtest.h>

#include <map>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Interval> MakeIntervals(uint64_t n, uint64_t seed) {
  IntervalGenOptions o;
  o.n = n;
  o.seed = seed;
  o.domain_max = 1'000'000;
  o.mean_len_frac = 0.01;
  return GenIntervalsUniform(o);
}

TEST(StabbingTest, DualMappingRoundTrips) {
  Interval iv{10, 30, 7};
  Point p = IntervalToDual(iv);
  EXPECT_EQ(p.x, 30);
  EXPECT_EQ(p.y, -10);
  EXPECT_EQ(DualToInterval(p), iv);
}

TEST(StabbingTest, DualQuerySemantics) {
  // Stabbing [lo,hi] with q <=> hi >= q && lo <= q <=> dual 2-sided query.
  Interval iv{10, 30, 1};
  for (int64_t q : {9, 10, 20, 30, 31}) {
    auto dq = StabToDualQuery(q);
    EXPECT_EQ(dq.Contains(IntervalToDual(iv)), iv.Contains(q)) << q;
  }
}

TEST(StabbingTest, StaticMatchesBruteForce) {
  MemPageDevice dev(4096);
  StabbingIndex idx(&dev);
  auto ivs = MakeIntervals(20000, 3);
  ASSERT_TRUE(idx.Build(ivs).ok());
  EXPECT_EQ(idx.size(), ivs.size());

  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    int64_t q = rng.UniformRange(-10, 1'000'010);
    std::vector<Interval> got;
    ASSERT_TRUE(idx.Stab(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteStab(ivs, q))) << "q=" << q;
  }
}

// The paper's open problem, answered: dynamic interval management with
// optimal queries and O(log_B n) amortized updates.
TEST(StabbingTest, DynamicMatchesOracleUnderChurn) {
  MemPageDevice dev(4096);
  DynamicStabbingIndex idx(&dev);
  auto ivs = MakeIntervals(5000, 7);
  ASSERT_TRUE(idx.Build(ivs).ok());

  std::map<uint64_t, Interval> oracle;
  for (const auto& iv : ivs) oracle[iv.id] = iv;

  Rng rng(11);
  uint64_t next_id = 1'000'000;
  for (int op = 0; op < 1500; ++op) {
    if (oracle.empty() || rng.Bernoulli(0.55)) {
      int64_t lo = rng.UniformRange(0, 999'000);
      Interval iv{lo, lo + rng.UniformRange(1, 50'000), next_id++};
      ASSERT_TRUE(idx.Insert(iv).ok());
      oracle[iv.id] = iv;
    } else {
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(oracle.size()));
      ASSERT_TRUE(idx.Erase(it->second).ok());
      oracle.erase(it);
    }
    if (op % 73 == 0) {
      int64_t q = rng.UniformRange(0, 1'000'000);
      std::vector<Interval> got;
      ASSERT_TRUE(idx.Stab(q, &got).ok());
      std::vector<Interval> want;
      for (const auto& [id, iv] : oracle) {
        if (iv.Contains(q)) want.push_back(iv);
      }
      ASSERT_TRUE(SameResult(got, want)) << "op " << op << " q=" << q;
    }
  }
}

TEST(StabbingTest, StabIoIsOptimal) {
  MemPageDevice dev(4096);
  StabbingIndex idx(&dev);
  auto ivs = MakeIntervals(150000, 13);
  ASSERT_TRUE(idx.Build(ivs).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(ivs.size(), B) + 1;

  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    int64_t q = rng.UniformRange(0, 1'000'000);
    std::vector<Interval> got;
    dev.ResetStats();
    ASSERT_TRUE(idx.Stab(q, &got).ok());
    uint64_t bound = 10 * logB_n + 4 * CeilDiv(got.size(), B) + 16;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size();
  }
}

TEST(StabbingTest, DestroyFreesEverything) {
  MemPageDevice dev(4096);
  DynamicStabbingIndex idx(&dev);
  ASSERT_TRUE(idx.Build(MakeIntervals(5000, 19)).ok());
  ASSERT_TRUE(idx.Insert({1, 2, 999999}).ok());
  EXPECT_GT(dev.live_pages(), 0u);
  ASSERT_TRUE(idx.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

}  // namespace
}  // namespace pathcache
