#include "core/pst_external.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed,
                              int64_t coord_max = 1'000'000) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = coord_max;
  return GenPointsUniform(o);
}

TEST(ExternalPstTest, EmptyStructure) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build({}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryTwoSided({0, 0}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ExternalPstTest, SinglePoint) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build({{5, 7, 1}}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryTwoSided({5, 7}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
  out.clear();
  ASSERT_TRUE(pst.QueryTwoSided({6, 7}, &out).ok());
  EXPECT_TRUE(out.empty());
  out.clear();
  ASSERT_TRUE(pst.QueryTwoSided({5, 8}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ExternalPstTest, RebuildRejected) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build({{1, 1, 0}}).ok());
  EXPECT_EQ(pst.Build({{2, 2, 1}}).code(), StatusCode::kFailedPrecondition);
}

// The random-vs-oracle sweep lives in differential_test.cpp (shared
// shrinking harness, see tests/oracle_common.h); this file keeps the
// structure-specific and deterministic cases.

TEST(ExternalPstTest, DuplicateCoordinates) {
  MemPageDevice dev(512);
  ExternalPst pst(&dev);
  std::vector<Point> pts;
  for (uint64_t i = 0; i < 2000; ++i) {
    pts.push_back({static_cast<int64_t>(i % 7), static_cast<int64_t>(i % 11),
                   i});
  }
  ASSERT_TRUE(pst.Build(pts).ok());
  for (int64_t qx = -1; qx <= 7; ++qx) {
    for (int64_t qy = -1; qy <= 11; ++qy) {
      std::vector<Point> got;
      ASSERT_TRUE(pst.QueryTwoSided({qx, qy}, &got).ok());
      ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, {qx, qy})))
          << "q=(" << qx << "," << qy << ")";
    }
  }
}

// Theorem 3.2: with path caching, query I/O is O(log_B n + t/B).
TEST(ExternalPstTest, CachedQueryIoIsOptimal) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  auto pts = UniformPts(200000, 13);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    dev.ResetStats();
    ASSERT_TRUE(pst.QueryTwoSided(q, &got).ok());
    // Constants: 3 cache-ish reads per path segment (header + A + S tail)
    // plus the useful/wasteful pairing on the output term.
    uint64_t bound = 8 * logB_n + 4 * CeilDiv(got.size(), B) + 12;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size();
  }
}

// The [IKO] baseline pays ~log2(n/B) underfull reads on the same queries.
TEST(ExternalPstTest, UncachedBaselinePaysLog2) {
  MemPageDevice dev(4096);
  auto pts = UniformPts(200000, 13);

  ExternalPstOptions cached_opts;
  ExternalPst cached(&dev, cached_opts);
  ASSERT_TRUE(cached.Build(pts).ok());

  ExternalPstOptions iko_opts;
  iko_opts.enable_path_caching = false;
  ExternalPst iko(&dev, iko_opts);
  ASSERT_TRUE(iko.Build(pts).ok());

  // Low-selectivity queries (tiny t) expose the additive log term: take the
  // k-th largest x as the left edge and a high y threshold, so t <= k.
  std::vector<int64_t> xs, ys;
  for (const auto& p : pts) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end(), std::greater<>());
  std::sort(ys.begin(), ys.end(), std::greater<>());
  uint64_t cached_io = 0, iko_io = 0, queries = 0;
  for (uint64_t k = 20; k <= 400; k += 20) {
    TwoSidedQuery q{xs[k], ys[pts.size() / 2]};
    std::vector<Point> got;
    dev.ResetStats();
    ASSERT_TRUE(cached.QueryTwoSided(q, &got).ok());
    uint64_t c_io = dev.stats().reads;
    EXPECT_LE(got.size(), k + 1);
    got.clear();
    dev.ResetStats();
    ASSERT_TRUE(iko.QueryTwoSided(q, &got).ok());
    cached_io += c_io;
    iko_io += dev.stats().reads;
    ++queries;
  }
  ASSERT_GT(queries, 10u);
  // The baseline touches every path node + sibling: strictly more I/O.
  EXPECT_GT(iko_io, cached_io + queries);
}

// Theorem 3.2 space: O((n/B) log B) blocks; [IKO]: O(n/B).
TEST(ExternalPstTest, StorageBounds) {
  const uint32_t page = 4096;
  const uint32_t B = RecordsPerPage<Point>(page);
  auto pts = UniformPts(300000, 23);

  MemPageDevice dev_iko(page);
  ExternalPstOptions iko_opts;
  iko_opts.enable_path_caching = false;
  ExternalPst iko(&dev_iko, iko_opts);
  ASSERT_TRUE(iko.Build(pts).ok());
  EXPECT_LE(dev_iko.live_pages(), 8 * CeilDiv(pts.size(), B) + 8);

  MemPageDevice dev_c(page);
  ExternalPst cached(&dev_c);
  ASSERT_TRUE(cached.Build(pts).ok());
  const uint64_t logB = FloorLog2(B);
  EXPECT_LE(dev_c.live_pages(), 8 * CeilDiv(pts.size(), B) * logB + 8);
  // And caching really does cost more than the baseline.
  EXPECT_GT(dev_c.live_pages(), dev_iko.live_pages());
  EXPECT_EQ(dev_c.live_pages(), cached.storage().total());
}

TEST(ExternalPstTest, DestroyFreesEverything) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(5000, 29)).ok());
  EXPECT_GT(dev.live_pages(), 0u);
  ASSERT_TRUE(pst.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(ExternalPstTest, IoErrorPropagates) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(20000, 31)).ok());
  dev.InjectFailureAfter(2);
  std::vector<Point> out;
  EXPECT_TRUE(pst.QueryTwoSided({0, 0}, &out).IsIoError());
  dev.InjectFailureAfter(-1);
}

// The wasteful/useful accounting from Section 3: wasteful I/Os are bounded
// by the useful ones plus the O(log_B n) path overhead.
TEST(ExternalPstTest, WastefulIoIsPaidFor) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  auto pts = UniformPts(150000, 37);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(41);
  for (int i = 0; i < 30; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    QueryStats qs;
    ASSERT_TRUE(pst.QueryTwoSided(q, &got, &qs).ok());
    // Every useful (full) block pays for at most its two children's reads —
    // the paper's "for every k partially-cut blocks, at least k/2 lie fully
    // inside" constant — plus the O(log_B n) path/cache overhead.
    EXPECT_LE(qs.wasteful, 2 * qs.useful + 8 * logB_n + 12) << qs.ToString();
  }
}

TEST(ExternalPstTest, ReadaheadIsPureTransport) {
  // Batched readahead must not change results OR counted reads — only how
  // pages travel (single Read calls vs. vectored ReadBatch calls).
  auto pts = UniformPts(120000, 91);
  MemPageDevice dev_on(2048), dev_off(2048);
  ExternalPstOptions on, off;
  on.enable_readahead = true;
  off.enable_readahead = false;
  ExternalPst pst_on(&dev_on, on), pst_off(&dev_off, off);
  ASSERT_TRUE(pst_on.Build(pts).ok());
  ASSERT_TRUE(pst_off.Build(pts).ok());

  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    dev_on.ResetStats();
    dev_off.ResetStats();
    std::vector<Point> a, b;
    ASSERT_TRUE(pst_on.QueryTwoSided(q, &a).ok());
    ASSERT_TRUE(pst_off.QueryTwoSided(q, &b).ok());
    auto key = [](const Point& p) { return std::tie(p.x, p.y, p.id); };
    std::sort(a.begin(), a.end(),
              [&](const Point& l, const Point& r) { return key(l) < key(r); });
    std::sort(b.begin(), b.end(),
              [&](const Point& l, const Point& r) { return key(l) < key(r); });
    EXPECT_EQ(a, b);
    EXPECT_EQ(dev_on.stats().reads, dev_off.stats().reads)
        << "q=(" << q.x_min << "," << q.y_min << ")";
    EXPECT_EQ(dev_off.stats().batch_reads, 0u);
  }
  // The batched build/query path was actually exercised.
  dev_on.ResetStats();
  Rng rng2(7);
  for (int i = 0; i < 60; ++i) {
    std::vector<Point> a;
    ASSERT_TRUE(pst_on.QueryTwoSided(SampleTwoSidedQuery(pts, &rng2), &a).ok());
  }
  EXPECT_GT(dev_on.stats().batch_reads, 0u);
}

}  // namespace
}  // namespace pathcache
