// Tests for the observability layer (src/obs/): MetricsRegistry export
// correctness (Prometheus text + JSON), the PrometheusLint validator it is
// checked against, the lock-free Tracer and its Chrome trace output, the
// TracingPageDevice decorator, JsonWriter escaping, and LatencyHistogram
// edge cases.  The concurrent tests double as TSan probes for the
// record/export paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "obs/metrics.h"
#include "obs/promlint.h"
#include "obs/trace.h"
#include "obs/tracing_page_device.h"
#include "serve/latency_histogram.h"
#include "util/json_writer.h"

namespace pathcache {
namespace {

// --- A minimal JSON validator -----------------------------------------------
//
// Recursive-descent acceptor for RFC 8259 JSON, used to assert that every
// exported document parses.  Validation only: no tree is built.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        if (esc == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          for (int i = 2; i <= 5; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 6;
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
        pos_ += 2;
        continue;
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': {
        ++pos_;
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          SkipWs();
          if (!String()) return false;
          SkipWs();
          if (pos_ >= s_.size() || s_[pos_] != ':') return false;
          ++pos_;
          SkipWs();
          if (!Value()) return false;
          SkipWs();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++pos_;
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          SkipWs();
          if (!Value()) return false;
          SkipWs();
          if (pos_ < s_.size() && s_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return false;
        }
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, OwnedCounterExportsAndLints) {
  MetricsRegistry reg;
  auto c = reg.AddCounter("pathcache_test_events_total", "Events observed.",
                          {{"source", "unit_test"}});
  ASSERT_TRUE(c.ok());
  c.value()->Increment();
  c.value()->Increment(41);
  EXPECT_EQ(c.value()->value(), 42u);

  std::string text;
  reg.WritePrometheus(&text);
  EXPECT_TRUE(Contains(text, "# HELP pathcache_test_events_total Events"));
  EXPECT_TRUE(Contains(text, "# TYPE pathcache_test_events_total counter"));
  EXPECT_TRUE(Contains(
      text, "pathcache_test_events_total{source=\"unit_test\"} 42\n"));
  Status lint = PrometheusLint(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
}

TEST(MetricsRegistryTest, SampledGaugeAndSummaryExport) {
  MetricsRegistry reg;
  double gauge_value = 1.5;
  ASSERT_TRUE(reg.AddGaugeFn("pathcache_test_depth", "Current depth.", {},
                             [&] { return gauge_value; })
                  .ok());
  ASSERT_TRUE(reg.AddSummaryFn("pathcache_test_latency_micros", "Latency.",
                               {{"engine", "e0"}},
                               [] {
                                 MetricSummary s;
                                 s.count = 10;
                                 s.sum = 100;
                                 s.max = 31;
                                 s.p50 = 7;
                                 s.p95 = 15;
                                 s.p99 = 31;
                                 return s;
                               })
                  .ok());
  EXPECT_EQ(reg.num_series(), 2u);

  std::string text;
  reg.WritePrometheus(&text);
  EXPECT_TRUE(Contains(text, "pathcache_test_depth 1.5\n"));
  EXPECT_TRUE(Contains(
      text, "pathcache_test_latency_micros{engine=\"e0\",quantile=\"0.5\"} 7"));
  EXPECT_TRUE(Contains(
      text,
      "pathcache_test_latency_micros{engine=\"e0\",quantile=\"0.99\"} 31"));
  EXPECT_TRUE(
      Contains(text, "pathcache_test_latency_micros_sum{engine=\"e0\"} 100"));
  EXPECT_TRUE(
      Contains(text, "pathcache_test_latency_micros_count{engine=\"e0\"} 10"));
  Status lint = PrometheusLint(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
}

TEST(MetricsRegistryTest, RegistrationRejectsInvalidAndConflicting) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.AddCounter("9starts_with_digit", "bad").ok());
  EXPECT_FALSE(reg.AddCounter("has space", "bad").ok());
  EXPECT_FALSE(
      reg.AddCounter("pathcache_ok_total", "bad label", {{"__reserved", "x"}})
          .ok());
  EXPECT_FALSE(
      reg.AddCounter("pathcache_ok_total", "bad label", {{"0digit", "x"}})
          .ok());

  ASSERT_TRUE(reg.AddCounter("pathcache_dup_total", "a", {{"k", "v"}}).ok());
  // Same (name, labels) pair: rejected.
  EXPECT_FALSE(reg.AddCounter("pathcache_dup_total", "a", {{"k", "v"}}).ok());
  // Same name, different labels: a new series of the same family, fine.
  EXPECT_TRUE(reg.AddCounter("pathcache_dup_total", "a", {{"k", "w"}}).ok());
  // Same name, different kind: family kind conflict.
  EXPECT_FALSE(
      reg.AddGaugeFn("pathcache_dup_total", "a", {}, [] { return 0.0; }).ok());
  // Counter and sampled counter are the same family kind.
  EXPECT_TRUE(reg.AddCounterFn("pathcache_dup_total", "a", {{"k", "fn"}},
                               [] { return uint64_t{1}; })
                  .ok());
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  ASSERT_TRUE(reg.AddCounter("pathcache_escape_total", "Escaping.",
                             {{"path", "a\\b\"c\nd"}})
                  .ok());
  std::string text;
  reg.WritePrometheus(&text);
  EXPECT_TRUE(Contains(text, "{path=\"a\\\\b\\\"c\\nd\"}"));
  Status lint = PrometheusLint(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
}

TEST(MetricsRegistryTest, JsonExportIsValidJson) {
  MetricsRegistry reg;
  auto c = reg.AddCounter("pathcache_json_total", "With \"quotes\" and \\.",
                          {{"k", "v\n\"w\\"}});
  ASSERT_TRUE(c.ok());
  c.value()->Increment(7);
  ASSERT_TRUE(reg.AddGaugeFn("pathcache_json_gauge", "g", {},
                             [] { return 0.25; })
                  .ok());
  ASSERT_TRUE(reg.AddSummaryFn("pathcache_json_summary", "s", {},
                               [] { return MetricSummary{}; })
                  .ok());
  std::string json;
  reg.WriteJson(&json);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_TRUE(Contains(json, "\"pathcache_json_total\""));
  EXPECT_TRUE(Contains(json, "\"value\":7"));
}

TEST(MetricsRegistryTest, PoolAndQueryStatsAdaptersTrackTheSource) {
  MemPageDevice dev(4096);
  SharedBufferPool pool(&dev, /*capacity_pages=*/64);
  MetricsRegistry reg;
  ASSERT_TRUE(RegisterSharedBufferPoolMetrics(&reg, "main", &pool).ok());

  QueryStats qs;
  qs.navigation = 3;
  qs.corner = 1;
  qs.useful = 2;
  qs.wasteful = 2;
  qs.records_reported = 57;
  ASSERT_TRUE(
      RegisterQueryStatsMetrics(&reg, {{"structure", "pst"}},
                                [&qs] { return qs; })
          .ok());

  // Drive some traffic so the sampled values are nonzero.
  auto id = pool.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<std::byte> page(pool.page_size());
  ASSERT_TRUE(pool.Write(id.value(), page.data()).ok());
  ASSERT_TRUE(pool.Read(id.value(), page.data()).ok());  // hit
  ASSERT_TRUE(pool.Read(id.value(), page.data()).ok());  // hit

  std::string text;
  reg.WritePrometheus(&text);
  Status lint = PrometheusLint(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
  EXPECT_TRUE(Contains(text, "pathcache_pool_hits_total{pool=\"main\"} " +
                                 std::to_string(pool.hits())));
  EXPECT_TRUE(Contains(
      text,
      "pathcache_query_block_reads_total{structure=\"pst\",role="
      "\"navigation\"} 3"));
  EXPECT_TRUE(Contains(
      text,
      "pathcache_query_payoff_reads_total{structure=\"pst\",class="
      "\"wasteful\"} 2"));
  EXPECT_TRUE(Contains(
      text,
      "pathcache_query_records_reported_total{structure=\"pst\"} 57"));

  // The sampled callback sees later mutations.
  qs.records_reported = 58;
  std::string text2;
  reg.WritePrometheus(&text2);
  EXPECT_TRUE(Contains(
      text2,
      "pathcache_query_records_reported_total{structure=\"pst\"} 58"));
}

TEST(MetricsRegistryTest, ConcurrentIncrementAndExport) {
  MetricsRegistry reg;
  auto c = reg.AddCounter("pathcache_tsan_total", "Concurrency probe.");
  ASSERT_TRUE(c.ok());
  Counter* counter = c.value();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  // Export while increments are in flight: must stay well-formed.
  for (int i = 0; i < 50; ++i) {
    std::string text;
    reg.WritePrometheus(&text);
    ASSERT_TRUE(PrometheusLint(text).ok());
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), uint64_t(kThreads) * kPerThread);
}

// --- PrometheusLint ---------------------------------------------------------

TEST(PromLintTest, AcceptsWellFormedDocument) {
  const std::string doc =
      "# plain comment\n"
      "# HELP m_total Things counted, with \\\\ escapes.\n"
      "# TYPE m_total counter\n"
      "m_total{a=\"x\",b=\"y\\\"z\"} 12\n"
      "m_total{a=\"other\"} 3 1712000000\n"
      "# TYPE lat summary\n"
      "lat{quantile=\"0.5\"} 4\n"
      "lat_sum 100\n"
      "lat_count 25\n"
      "# TYPE g gauge\n"
      "g 1.5e-3\n"
      "# TYPE inf gauge\n"
      "inf +Inf\n";
  Status s = PrometheusLint(doc);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PromLintTest, RejectsMalformedDocuments) {
  // Sample with no preceding TYPE.
  EXPECT_FALSE(PrometheusLint("m_total 1\n").ok());
  // TYPE after the family's first sample.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm 1\n# TYPE m counter\n")
                   .ok());
  // Unknown type.
  EXPECT_FALSE(PrometheusLint("# TYPE m rate\nm 1\n").ok());
  // Duplicate HELP.
  EXPECT_FALSE(
      PrometheusLint("# HELP m a\n# HELP m b\n# TYPE m counter\nm 1\n").ok());
  // Unquoted label value.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm{a=1} 1\n").ok());
  // Unterminated label value.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm{a=\"x} 1\n").ok());
  // Invalid escape in a label value.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm{a=\"\\t\"} 1\n").ok());
  // Duplicate label name in one sample.
  EXPECT_FALSE(
      PrometheusLint("# TYPE m counter\nm{a=\"x\",a=\"y\"} 1\n").ok());
  // Duplicate series, even with reordered labels.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\n"
                              "m{a=\"x\",b=\"y\"} 1\n"
                              "m{b=\"y\",a=\"x\"} 2\n")
                   .ok());
  // Unparseable value.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm fast\n").ok());
  // Trailing garbage after the timestamp.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm 1 123 456\n").ok());
  // Metric name starting with a digit.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\n9m 1\n").ok());
  // _sum child of a *counter* family is not a child series.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm_sum 1\n").ok());
  // The error names the offending line.
  Status s = PrometheusLint("# TYPE m counter\nm 1\nbogus line\n");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(Contains(s.ToString(), "line 3")) << s.ToString();
}

// --- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer(64);
  EXPECT_FALSE(tracer.enabled());
  tracer.Begin("x");
  tracer.End("x");
  tracer.Instant("y");
  { TraceSpan span(&tracer, "z", 9); }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  // Null tracer spans are no-ops too.
  { TraceSpan span(nullptr, "w"); }
}

TEST(TracerTest, SpansAreBalancedAndOrdered) {
  Tracer tracer(256);
  tracer.Enable();
  {
    TraceSpan q(&tracer, "serve.query", 3);
    {
      TraceSpan r(&tracer, "io.read", 17);
    }
    { TraceSpan r(&tracer, "io.read", 18); }
  }
  tracer.Instant("marker", 1);
  tracer.Disable();

  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 7u);
  int depth = 0;
  int begins = 0, ends = 0, instants = 0;
  for (const TraceEvent& e : events) {
    ASSERT_NE(e.name, nullptr);
    if (e.phase == 'B') {
      ++depth;
      ++begins;
    } else if (e.phase == 'E') {
      --depth;
      ++ends;
    } else {
      EXPECT_EQ(e.phase, 'I');
      ++instants;
    }
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(begins, 3);
  EXPECT_EQ(ends, 3);
  EXPECT_EQ(instants, 1);
  // Single-threaded: timestamps are monotone after the stable sort.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_micros, events[i].ts_micros);
  }
  EXPECT_EQ(events[0].arg, 3u);
  EXPECT_STREQ(events[0].name, "serve.query");
}

TEST(TracerTest, RingWraparoundKeepsNewestAndCountsDropped) {
  Tracer tracer(8);  // rounds to capacity 8
  ASSERT_EQ(tracer.capacity(), 8u);
  tracer.Enable();
  for (uint64_t i = 0; i < 20; ++i) tracer.Instant("tick", i);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are exactly the newest 8, args 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 12 + i);
  }
  tracer.Reset();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, ChromeTraceJsonIsValidAndBalanced) {
  Tracer tracer(128);
  tracer.Enable();
  {
    TraceSpan q(&tracer, "serve.query", 1);
    TraceSpan r(&tracer, "io.read", 42);
  }
  tracer.Instant("note");
  std::string doc;
  tracer.WriteChromeTrace(&doc);
  EXPECT_TRUE(JsonChecker(doc).Valid()) << doc;
  EXPECT_TRUE(Contains(doc, "\"traceEvents\""));
  EXPECT_TRUE(Contains(doc, "\"ph\":\"B\""));
  EXPECT_TRUE(Contains(doc, "\"ph\":\"E\""));
  // Instant events carry thread scope, which Perfetto requires.
  EXPECT_TRUE(Contains(doc, "\"ph\":\"i\""));
  EXPECT_TRUE(Contains(doc, "\"s\":\"t\""));
  // Balanced begin/end counts in the serialized document too.
  size_t b = 0, e = 0, at = 0;
  while ((at = doc.find("\"ph\":\"B\"", at)) != std::string::npos) {
    ++b;
    ++at;
  }
  at = 0;
  while ((at = doc.find("\"ph\":\"E\"", at)) != std::string::npos) {
    ++e;
    ++at;
  }
  EXPECT_EQ(b, e);
}

TEST(TracerTest, ConcurrentRecordAndSnapshot) {
  Tracer tracer(1024);
  tracer.Enable();
  std::atomic<bool> stop{false};
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < 20000; ++i) {
        TraceSpan span(&tracer, "work", uint64_t(t));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceEvent& e : tracer.Snapshot()) {
        // Every surfaced event is well-formed even mid-storm.
        ASSERT_NE(e.name, nullptr);
        ASSERT_TRUE(e.phase == 'B' || e.phase == 'E' || e.phase == 'I');
      }
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(tracer.recorded(), uint64_t(kThreads) * 20000 * 2);
  EXPECT_EQ(tracer.Snapshot().size(), tracer.capacity());
}

// --- TracingPageDevice ------------------------------------------------------

TEST(TracingPageDeviceTest, EmitsSpansAndForwardsStats) {
  MemPageDevice dev(512);
  Tracer tracer(256);
  TracingPageDevice traced(&dev, &tracer);
  EXPECT_EQ(traced.page_size(), 512u);

  // Disabled: pure pass-through, nothing recorded.
  auto id = traced.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<std::byte> page(512);
  ASSERT_TRUE(traced.Write(id.value(), page.data()).ok());
  EXPECT_EQ(tracer.recorded(), 0u);

  tracer.Enable();
  ASSERT_TRUE(traced.Read(id.value(), page.data()).ok());
  const PageId ids[] = {id.value()};
  ASSERT_TRUE(traced.ReadBatch(ids, page.data()).ok());
  tracer.Disable();

  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // B/E for Read, B/E for ReadBatch
  EXPECT_STREQ(events[0].name, "io.read");
  EXPECT_EQ(events[0].arg, id.value());
  EXPECT_STREQ(events[2].name, "io.read_batch");
  EXPECT_EQ(events[2].arg, 1u);  // batch size, not page id

  // Stats are the inner device's: the tracing layer counts nothing.
  EXPECT_EQ(traced.stats().reads, dev.stats().reads);
  EXPECT_EQ(traced.stats().writes, dev.stats().writes);
  EXPECT_EQ(traced.live_pages(), dev.live_pages());
  traced.ResetStats();
  EXPECT_EQ(dev.stats().reads, 0u);
}

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriterTest, EscapesEverythingJsonRequires) {
  std::string out;
  {
    JsonWriter w(&out);
    w.BeginObject();
    w.Key("quote\"backslash\\").Str("newline\ntab\tcontrol\x01");
    w.Key("nums").BeginArray();
    w.Uint(UINT64_MAX);
    w.Int(-42);
    w.Double(0.5);
    w.Bool(true);
    w.EndArray();
    w.EndObject();
  }
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
  EXPECT_TRUE(Contains(out, "quote\\\"backslash\\\\"));
  EXPECT_TRUE(Contains(out, "newline\\ntab\\tcontrol\\u0001"));
  EXPECT_TRUE(Contains(out, "18446744073709551615"));
}

TEST(JsonWriterTest, FileAndStringSinksProduceIdenticalBytes) {
  std::string via_string;
  {
    JsonWriter w(&via_string);
    w.BeginObject();
    w.Key("k").Str("v\n");
    w.EndObject();
  }
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    JsonWriter w(tmp);
    w.BeginObject();
    w.Key("k").Str("v\n");
    w.EndObject();
  }
  std::fflush(tmp);
  std::rewind(tmp);
  std::string via_file(via_string.size() + 16, '\0');
  const size_t n = std::fread(via_file.data(), 1, via_file.size(), tmp);
  via_file.resize(n);
  std::fclose(tmp);
  EXPECT_EQ(via_file, via_string);
}

// --- LatencyHistogram edges -------------------------------------------------

TEST(LatencyHistogramEdgeTest, RecordZero) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(0);
  LatencyHistogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  // Zero has bit width 0: bucket 0's upper bound is 2^0 - 1 = 0.
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p99, 0u);
}

TEST(LatencyHistogramEdgeTest, RecordUint64Max) {
  LatencyHistogram h;
  h.Record(UINT64_MAX);
  LatencyHistogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, UINT64_MAX);
  EXPECT_EQ(s.max, UINT64_MAX);
  EXPECT_EQ(s.p50, UINT64_MAX);
  EXPECT_EQ(s.p99, UINT64_MAX);
}

TEST(LatencyHistogramEdgeTest, QuantilesResolveToExactBucketUpperBounds) {
  LatencyHistogram h;
  // Bit widths: 1 -> bucket 1 (bound 1), 2 and 3 -> bucket 2 (bound 3),
  // 4 -> bucket 3 (bound 7).
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(4);
  LatencyHistogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 10u);
  EXPECT_EQ(s.max, 4u);
  // Nearest-rank p50: the ceil(0.5 * 4) = 2nd smallest sample (value 2)
  // sits in the width-2 bucket, whose exact upper bound is 3.
  EXPECT_EQ(s.p50, 3u);
  // Nearest-rank p99: the ceil(0.99 * 4) = 4th smallest sample (value 4)
  // sits in the width-3 bucket, bound 2^3 - 1 = 7.
  EXPECT_EQ(s.p99, 7u);
  h.Record(5);
  h.Record(6);
  LatencyHistogram::Snapshot s2 = h.TakeSnapshot();
  EXPECT_EQ(s2.p99, 7u);  // ceil(0.99 * 6) = 6th sample -> still bound 7
}

TEST(LatencyHistogramEdgeTest, NearestRankBoundaries) {
  // count == 1: every quantile is the lone sample's bucket bound (the old
  // floor-rank formula agreed here, but only by accident of rank 0).
  {
    LatencyHistogram h;
    h.Record(5);  // width 3 -> bucket bound 7
    LatencyHistogram::Snapshot s = h.TakeSnapshot();
    EXPECT_EQ(s.p50, 7u);
    EXPECT_EQ(s.p95, 7u);
    EXPECT_EQ(s.p99, 7u);
  }
  // Exact bucket edges: 2^k - 1 and 2^k land in adjacent buckets, and a
  // 50/50 split resolves p50 to the LOWER bucket (the 1st of 2 samples is
  // the nearest rank) while p99 takes the upper one.
  {
    LatencyHistogram h;
    h.Record(7);  // bucket bound 7
    h.Record(8);  // bucket bound 15
    LatencyHistogram::Snapshot s = h.TakeSnapshot();
    EXPECT_EQ(s.p50, 7u);
    EXPECT_EQ(s.p99, 15u);
  }
  // The top bucket holds values with all 64 bits in play; its "upper bound"
  // must saturate to UINT64_MAX instead of overflowing 1 << 64.
  {
    LatencyHistogram h;
    h.Record(1);
    h.Record(UINT64_MAX - 1);
    h.Record(UINT64_MAX);
    LatencyHistogram::Snapshot s = h.TakeSnapshot();
    EXPECT_EQ(s.p99, UINT64_MAX);
  }
}

TEST(LatencyHistogramEdgeTest, ConcurrentRecordSnapshotReset) {
  LatencyHistogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h] {
      for (int i = 0; i < 30000; ++i) h.Record(uint64_t(i) % 1000);
    });
  }
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      LatencyHistogram::Snapshot s = h.TakeSnapshot();
      // Quantiles never exceed the bucket ceiling for the recorded range.
      EXPECT_LE(s.p50, 1023u);
      h.Reset();
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  sampler.join();
}

}  // namespace
}  // namespace pathcache
