// VerifyStore: full-store fsck over multi-structure devices — ownership
// coverage, leak/double-own detection, scrubbing on a checksummed stack.

#include "core/persist.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "core/three_sided.h"
#include "io/checksum_page_device.h"
#include "io/fault_page_device.h"
#include "io/mem_page_device.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

std::vector<Point> Pts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 400'000;
  return GenPointsUniform(o);
}

std::vector<Interval> Ivs(uint64_t n, uint64_t seed) {
  IntervalGenOptions o;
  o.n = n;
  o.domain_max = 400'000;
  o.seed = seed;
  return GenIntervalsUniform(o);
}

// First live (readable) page id at or after `from`; ids of freed pages are
// skipped so corruption targets always exist on the media.
PageId FindReadablePage(PageDevice* dev, PageId from) {
  std::vector<std::byte> buf(dev->page_size());
  for (PageId p = from; p < from + 10'000; ++p) {
    if (dev->Read(p, buf.data()).ok()) return p;
  }
  ADD_FAILURE() << "no readable page found";
  return from;
}

// Builds one of each structure on `dev` and saves it; `clustered` routes
// through SaveClustered for the structures that expose Cluster().
std::vector<PageId> BuildStore(PageDevice* dev, bool clustered) {
  std::vector<PageId> manifests;
  {
    ExternalPst s(dev);
    EXPECT_TRUE(s.Build(Pts(8000, 3)).ok());
    auto m = clustered ? SaveClustered(&s) : s.Save();
    EXPECT_TRUE(m.ok());
    manifests.push_back(m.value());
  }
  {
    TwoLevelPst s(dev);  // no Cluster(): regions already save contiguously
    EXPECT_TRUE(s.Build(Pts(12000, 5)).ok());
    auto m = s.Save();
    EXPECT_TRUE(m.ok());
    manifests.push_back(m.value());
  }
  {
    ThreeSidedPst s(dev);
    EXPECT_TRUE(s.Build(Pts(6000, 7)).ok());
    auto m = clustered ? SaveClustered(&s) : s.Save();
    EXPECT_TRUE(m.ok());
    manifests.push_back(m.value());
  }
  {
    ExtSegmentTree s(dev);
    EXPECT_TRUE(s.Build(Ivs(3000, 9)).ok());
    auto m = clustered ? SaveClustered(&s) : s.Save();
    EXPECT_TRUE(m.ok());
    manifests.push_back(m.value());
  }
  {
    ExtIntervalTree s(dev);
    EXPECT_TRUE(s.Build(Ivs(3000, 11)).ok());
    auto m = clustered ? SaveClustered(&s) : s.Save();
    EXPECT_TRUE(m.ok());
    manifests.push_back(m.value());
  }
  return manifests;
}

TEST(VerifyStoreTest, FreshMultiStructureStoreIsClean) {
  MemPageDevice dev(4096);
  auto manifests = BuildStore(&dev, /*clustered=*/false);
  VerifyStoreReport report;
  Status s = VerifyStore(&dev, manifests, {}, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(report.structures_checked, 5u);
  EXPECT_GE(report.manifests, 5u);  // two-level adds child manifests
  EXPECT_EQ(report.owned_pages, dev.live_pages());
  EXPECT_EQ(report.scrubbed_pages, report.owned_pages);
  EXPECT_EQ(report.leaked_pages, 0u);
}

TEST(VerifyStoreTest, ClusteredStoreIsClean) {
  MemPageDevice dev(4096);
  auto manifests = BuildStore(&dev, /*clustered=*/true);
  VerifyStoreReport report;
  Status s = VerifyStore(&dev, manifests, {}, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(report.structures_checked, 5u);
  EXPECT_EQ(report.owned_pages, dev.live_pages());
  EXPECT_EQ(report.leaked_pages, 0u);
}

TEST(VerifyStoreTest, DetectsLeakedPage) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(5000, 13)).ok());
  auto m = pst.Save();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(dev.Allocate().ok());  // orphan page no manifest owns

  const PageId manifests[] = {m.value()};
  Status s = VerifyStore(&dev, manifests);
  ASSERT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("leaked"), std::string_view::npos);

  VerifyStoreOptions tolerant;
  tolerant.expect_full_coverage = false;
  VerifyStoreReport report;
  ASSERT_TRUE(VerifyStore(&dev, manifests, tolerant, &report).ok());
  EXPECT_EQ(report.leaked_pages, 1u);
}

TEST(VerifyStoreTest, DetectsDoubleOwnership) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(5000, 17)).ok());
  auto m = pst.Save();
  ASSERT_TRUE(m.ok());

  const PageId manifests[] = {m.value(), m.value()};
  Status s = VerifyStore(&dev, manifests);
  ASSERT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("owned twice"), std::string_view::npos);
}

TEST(VerifyStoreTest, RejectsNonManifestPage) {
  MemPageDevice dev(4096);
  auto garbage = dev.Allocate();
  ASSERT_TRUE(garbage.ok());
  const PageId manifests[] = {garbage.value()};
  Status s = VerifyStore(&dev, manifests);
  ASSERT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("not a pathcache manifest"),
            std::string_view::npos);
}

TEST(VerifyStoreTest, ChecksummedScrubFindsLatentRot) {
  MemPageDevice mem(4096);
  FaultPageDevice fault(&mem);
  ChecksumPageDevice dev(&fault);
  TwoLevelPst pst(&dev);
  ASSERT_TRUE(pst.Build(Pts(10000, 19)).ok());
  auto m = pst.Save();
  ASSERT_TRUE(m.ok());

  const PageId manifests[] = {m.value()};
  ASSERT_TRUE(VerifyStore(&dev, manifests).ok());

  // Rot a bit on some owned page; whatever role the page plays, the verify
  // pass must surface Corruption (via header read, scrub, or structure
  // check) — never a clean bill of health.
  const PageId victim = FindReadablePage(&mem, mem.live_pages() / 2);
  ASSERT_TRUE(fault.CorruptStoredBit(victim, 12345).ok());
  Status s = VerifyStore(&dev, manifests);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(VerifyStoreTest, StructureDamageFailsTheDeepCheck) {
  MemPageDevice dev(4096);
  ExtSegmentTree tree(&dev);
  ASSERT_TRUE(tree.Build(Ivs(4000, 23)).ok());
  auto m = tree.Save();
  ASSERT_TRUE(m.ok());
  const PageId manifests[] = {m.value()};
  ASSERT_TRUE(VerifyStore(&dev, manifests).ok());

  // Smash a mid-store page with record garbage (scrub still reads it fine
  // on a plain device; only the structural pass can notice).
  std::vector<std::byte> buf(4096);
  const PageId victim = FindReadablePage(&dev, dev.live_pages() / 2);
  ASSERT_TRUE(dev.Read(victim, buf.data()).ok());
  for (size_t off = 16; off + 8 <= buf.size(); off += 8) {
    int64_t garbage = static_cast<int64_t>(off * 977);
    std::memcpy(buf.data() + off, &garbage, 8);
  }
  ASSERT_TRUE(dev.Write(victim, buf.data()).ok());
  VerifyStoreOptions opts;
  opts.scrub_pages = false;  // isolate the structural pass
  Status s = VerifyStore(&dev, manifests, opts);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace pathcache
