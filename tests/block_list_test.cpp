#include "io/block_list.h"

#include <gtest/gtest.h>

#include <cstring>

#include "io/mem_page_device.h"
#include "util/geometry.h"

namespace pathcache {
namespace {

std::vector<Point> MakePoints(size_t n) {
  std::vector<Point> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = Point{static_cast<int64_t>(i), static_cast<int64_t>(i * 2), i};
  }
  return pts;
}

TEST(BlockListTest, RecordsPerPageMath) {
  // 4096-byte page, 16-byte header, 24-byte Point records -> 170 per page.
  EXPECT_EQ(RecordsPerPage<Point>(4096), 170u);
  EXPECT_EQ(RecordsPerPage<Interval>(4096), 170u);
  EXPECT_EQ(RecordsPerPage<Point>(256), 10u);
}

TEST(BlockListTest, EmptyList) {
  MemPageDevice dev(256);
  auto info = BuildBlockList<Point>(&dev, {}).value();
  EXPECT_TRUE(info.ref.empty());
  EXPECT_EQ(info.ref.head, kInvalidPageId);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(BlockListTest, RoundTripAcrossPages) {
  MemPageDevice dev(256);  // 10 points per page
  auto pts = MakePoints(37);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.ref.count, 37u);
  EXPECT_EQ(info.pages.size(), 4u);  // ceil(37 / 10)

  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

TEST(BlockListTest, ExactMultipleOfPageCapacity) {
  MemPageDevice dev(256);
  auto pts = MakePoints(30);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.pages.size(), 3u);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

TEST(BlockListTest, CursorCountsBlockReads) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();

  BlockListCursor<Point> cur(&dev, info.ref);
  std::vector<Point> out;
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(cur.blocks_read(), 1u);
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 25u);
  EXPECT_TRUE(cur.done());
  // NextBlock after done is a no-op.
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 25u);
  EXPECT_EQ(cur.blocks_read(), 3u);
}

TEST(BlockListTest, CursorFromMidListPage) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  BlockListCursor<Point> cur(&dev, info.pages[1]);
  std::vector<Point> out;
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0], pts[10]);
}

TEST(BlockListTest, FreeReleasesEveryPage) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(dev.live_pages(), 3u);
  ASSERT_TRUE(FreeBlockList(&dev, info.ref).ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(BlockListTest, ReadErrorPropagates) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  dev.InjectFailureAfter(1);
  std::vector<Point> out;
  EXPECT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).IsIoError());
}

TEST(BlockListTest, ContigHeaderRecordsAdjacentRun) {
  MemPageDevice dev(256);
  auto pts = MakePoints(37);  // 4 pages, allocated consecutively
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  ASSERT_EQ(info.pages.size(), 4u);
  std::vector<std::byte> buf(256);
  for (size_t i = 0; i < info.pages.size(); ++i) {
    ASSERT_TRUE(dev.Read(info.pages[i], buf.data()).ok());
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    // Page i is followed by 3 - i id-adjacent chain successors.
    EXPECT_EQ(hdr.contig, info.pages.size() - 1 - i);
  }
}

TEST(BlockListTest, ContigIsZeroAcrossNonAdjacentPages) {
  MemPageDevice dev(256);
  // Recycle a low page id so the second list's pages are NOT id-adjacent:
  // it gets the recycled page followed by a fresh high one.
  PageId dummy = dev.Allocate().value();
  auto filler = MakePoints(25);
  auto f =
      BuildBlockList<Point>(&dev, std::span<const Point>(filler)).value();
  ASSERT_TRUE(dev.Free(dummy).ok());
  auto pts = MakePoints(15);  // 2 pages
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  ASSERT_EQ(info.pages.size(), 2u);
  ASSERT_NE(info.pages[1], info.pages[0] + 1);
  std::vector<std::byte> buf(256);
  ASSERT_TRUE(dev.Read(info.pages[0], buf.data()).ok());
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  EXPECT_EQ(hdr.contig, 0u);
  // The chain still reads back correctly (readahead finds nothing to batch).
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
  (void)f;
}

TEST(BlockListTest, ChainReadaheadKeepsCountedReadsIdentical) {
  MemPageDevice dev(256);
  auto pts = MakePoints(57);  // 6 pages
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();

  dev.ResetStats();
  std::vector<Point> plain;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &plain, 1).ok());
  const uint64_t plain_reads = dev.stats().reads;
  EXPECT_EQ(dev.stats().batch_reads, 0u);

  dev.ResetStats();
  std::vector<Point> batched;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &batched, 4).ok());
  EXPECT_EQ(batched, plain);
  EXPECT_EQ(dev.stats().reads, plain_reads);  // cost model unchanged
  EXPECT_GT(dev.stats().batch_reads, 0u);     // transport did batch
}

TEST(BlockListTest, DirectoryCursorBatchesExactPages) {
  MemPageDevice dev(256);
  auto pts = MakePoints(37);  // pages hold 10/10/10/7
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();

  // Scan only the first 3 pages via the directory — the exact-prefix shape
  // the structures use for tail-key-bounded cache scans.
  dev.ResetStats();
  BlockListCursor<Point> cur(
      &dev, std::span<const PageId>(info.pages.data(), 3), /*readahead=*/8);
  std::vector<Point> out;
  while (!cur.done()) ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(cur.blocks_read(), 3u);
  EXPECT_EQ(out.size(), 30u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], pts[i]);
  EXPECT_EQ(dev.stats().reads, 3u);       // one counted read per page
  EXPECT_EQ(dev.stats().batch_reads, 1u); // one vectored transfer
}

TEST(BlockListTest, DirectoryCursorWindowSmallerThanPrefix) {
  MemPageDevice dev(256);
  auto pts = MakePoints(57);  // 6 pages
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  dev.ResetStats();
  BlockListCursor<Point> cur(
      &dev, std::span<const PageId>(info.pages.data(), info.pages.size()),
      /*readahead=*/2);
  std::vector<Point> out;
  while (!cur.done()) ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out, pts);
  EXPECT_EQ(dev.stats().reads, 6u);
  EXPECT_EQ(dev.stats().batch_reads, 3u);  // three windows of two pages
}

TEST(BlockListTest, SinglePartialPage) {
  MemPageDevice dev(4096);
  auto pts = MakePoints(3);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.pages.size(), 1u);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

}  // namespace
}  // namespace pathcache
