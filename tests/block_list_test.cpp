#include "io/block_list.h"

#include <gtest/gtest.h>

#include "io/mem_page_device.h"
#include "util/geometry.h"

namespace pathcache {
namespace {

std::vector<Point> MakePoints(size_t n) {
  std::vector<Point> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = Point{static_cast<int64_t>(i), static_cast<int64_t>(i * 2), i};
  }
  return pts;
}

TEST(BlockListTest, RecordsPerPageMath) {
  // 4096-byte page, 16-byte header, 24-byte Point records -> 170 per page.
  EXPECT_EQ(RecordsPerPage<Point>(4096), 170u);
  EXPECT_EQ(RecordsPerPage<Interval>(4096), 170u);
  EXPECT_EQ(RecordsPerPage<Point>(256), 10u);
}

TEST(BlockListTest, EmptyList) {
  MemPageDevice dev(256);
  auto info = BuildBlockList<Point>(&dev, {}).value();
  EXPECT_TRUE(info.ref.empty());
  EXPECT_EQ(info.ref.head, kInvalidPageId);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(BlockListTest, RoundTripAcrossPages) {
  MemPageDevice dev(256);  // 10 points per page
  auto pts = MakePoints(37);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.ref.count, 37u);
  EXPECT_EQ(info.pages.size(), 4u);  // ceil(37 / 10)

  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

TEST(BlockListTest, ExactMultipleOfPageCapacity) {
  MemPageDevice dev(256);
  auto pts = MakePoints(30);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.pages.size(), 3u);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

TEST(BlockListTest, CursorCountsBlockReads) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();

  BlockListCursor<Point> cur(&dev, info.ref);
  std::vector<Point> out;
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(cur.blocks_read(), 1u);
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 25u);
  EXPECT_TRUE(cur.done());
  // NextBlock after done is a no-op.
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 25u);
  EXPECT_EQ(cur.blocks_read(), 3u);
}

TEST(BlockListTest, CursorFromMidListPage) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  BlockListCursor<Point> cur(&dev, info.pages[1]);
  std::vector<Point> out;
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0], pts[10]);
}

TEST(BlockListTest, FreeReleasesEveryPage) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(dev.live_pages(), 3u);
  ASSERT_TRUE(FreeBlockList(&dev, info.ref).ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(BlockListTest, ReadErrorPropagates) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  dev.InjectFailureAfter(1);
  std::vector<Point> out;
  EXPECT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).IsIoError());
}

TEST(BlockListTest, SinglePartialPage) {
  MemPageDevice dev(4096);
  auto pts = MakePoints(3);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.pages.size(), 1u);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

}  // namespace
}  // namespace pathcache
