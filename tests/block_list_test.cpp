#include "io/block_list.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>

#include "io/mem_page_device.h"
#include "util/geometry.h"

namespace pathcache {
namespace {

std::vector<Point> MakePoints(size_t n) {
  std::vector<Point> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = Point{static_cast<int64_t>(i), static_cast<int64_t>(i * 2), i};
  }
  return pts;
}

TEST(BlockListTest, RecordsPerPageMath) {
  // 4096-byte page, 16-byte header, 24-byte Point records -> 170 per page.
  EXPECT_EQ(RecordsPerPage<Point>(4096), 170u);
  EXPECT_EQ(RecordsPerPage<Interval>(4096), 170u);
  EXPECT_EQ(RecordsPerPage<Point>(256), 10u);
}

TEST(BlockListTest, EmptyList) {
  MemPageDevice dev(256);
  auto info = BuildBlockList<Point>(&dev, {}).value();
  EXPECT_TRUE(info.ref.empty());
  EXPECT_EQ(info.ref.head, kInvalidPageId);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(BlockListTest, RoundTripAcrossPages) {
  MemPageDevice dev(256);  // 10 points per page
  auto pts = MakePoints(37);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.ref.count, 37u);
  EXPECT_EQ(info.pages.size(), 4u);  // ceil(37 / 10)

  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

TEST(BlockListTest, ExactMultipleOfPageCapacity) {
  MemPageDevice dev(256);
  auto pts = MakePoints(30);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.pages.size(), 3u);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

TEST(BlockListTest, CursorCountsBlockReads) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();

  BlockListCursor<Point> cur(&dev, info.ref);
  std::vector<Point> out;
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(cur.blocks_read(), 1u);
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 25u);
  EXPECT_TRUE(cur.done());
  // NextBlock after done is a no-op.
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out.size(), 25u);
  EXPECT_EQ(cur.blocks_read(), 3u);
}

TEST(BlockListTest, CursorFromMidListPage) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  BlockListCursor<Point> cur(&dev, info.pages[1]);
  std::vector<Point> out;
  ASSERT_TRUE(cur.NextBlock(&out).ok());
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0], pts[10]);
}

TEST(BlockListTest, FreeReleasesEveryPage) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(dev.live_pages(), 3u);
  ASSERT_TRUE(FreeBlockList(&dev, info.ref).ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(BlockListTest, ReadErrorPropagates) {
  MemPageDevice dev(256);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  dev.InjectFailureAfter(1);
  std::vector<Point> out;
  EXPECT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).IsIoError());
}

TEST(BlockListTest, ContigHeaderRecordsAdjacentRun) {
  MemPageDevice dev(256);
  auto pts = MakePoints(37);  // 4 pages, allocated consecutively
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  ASSERT_EQ(info.pages.size(), 4u);
  std::vector<std::byte> buf(256);
  for (size_t i = 0; i < info.pages.size(); ++i) {
    ASSERT_TRUE(dev.Read(info.pages[i], buf.data()).ok());
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    // Page i is followed by 3 - i id-adjacent chain successors.
    EXPECT_EQ(hdr.contig, info.pages.size() - 1 - i);
  }
}

TEST(BlockListTest, ContigIsZeroAcrossNonAdjacentPages) {
  MemPageDevice dev(256);
  // Recycle a low page id so the second list's pages are NOT id-adjacent:
  // it gets the recycled page followed by a fresh high one.
  PageId dummy = dev.Allocate().value();
  auto filler = MakePoints(25);
  auto f =
      BuildBlockList<Point>(&dev, std::span<const Point>(filler)).value();
  ASSERT_TRUE(dev.Free(dummy).ok());
  auto pts = MakePoints(15);  // 2 pages
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  ASSERT_EQ(info.pages.size(), 2u);
  ASSERT_NE(info.pages[1], info.pages[0] + 1);
  std::vector<std::byte> buf(256);
  ASSERT_TRUE(dev.Read(info.pages[0], buf.data()).ok());
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  EXPECT_EQ(hdr.contig, 0u);
  // The chain still reads back correctly (readahead finds nothing to batch).
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
  (void)f;
}

TEST(BlockListTest, ChainReadaheadKeepsCountedReadsIdentical) {
  MemPageDevice dev(256);
  auto pts = MakePoints(57);  // 6 pages
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();

  dev.ResetStats();
  std::vector<Point> plain;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &plain, 1).ok());
  const uint64_t plain_reads = dev.stats().reads;
  EXPECT_EQ(dev.stats().batch_reads, 0u);

  dev.ResetStats();
  std::vector<Point> batched;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &batched, 4).ok());
  EXPECT_EQ(batched, plain);
  EXPECT_EQ(dev.stats().reads, plain_reads);  // cost model unchanged
  EXPECT_GT(dev.stats().batch_reads, 0u);     // transport did batch
}

TEST(BlockListTest, DirectoryCursorBatchesExactPages) {
  MemPageDevice dev(256);
  auto pts = MakePoints(37);  // pages hold 10/10/10/7
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();

  // Scan only the first 3 pages via the directory — the exact-prefix shape
  // the structures use for tail-key-bounded cache scans.
  dev.ResetStats();
  BlockListCursor<Point> cur(
      &dev, std::span<const PageId>(info.pages.data(), 3), /*readahead=*/8);
  std::vector<Point> out;
  while (!cur.done()) ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(cur.blocks_read(), 3u);
  EXPECT_EQ(out.size(), 30u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], pts[i]);
  EXPECT_EQ(dev.stats().reads, 3u);       // one counted read per page
  EXPECT_EQ(dev.stats().batch_reads, 1u); // one vectored transfer
}

TEST(BlockListTest, DirectoryCursorWindowSmallerThanPrefix) {
  MemPageDevice dev(256);
  auto pts = MakePoints(57);  // 6 pages
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  dev.ResetStats();
  BlockListCursor<Point> cur(
      &dev, std::span<const PageId>(info.pages.data(), info.pages.size()),
      /*readahead=*/2);
  std::vector<Point> out;
  while (!cur.done()) ASSERT_TRUE(cur.NextBlock(&out).ok());
  EXPECT_EQ(out, pts);
  EXPECT_EQ(dev.stats().reads, 6u);
  EXPECT_EQ(dev.stats().batch_reads, 3u);  // three windows of two pages
}

TEST(BlockListTest, SinglePartialPage) {
  MemPageDevice dev(4096);
  auto pts = MakePoints(3);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts)).value();
  EXPECT_EQ(info.pages.size(), 1u);
  std::vector<Point> out;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, info.ref, &out).ok());
  EXPECT_EQ(out, pts);
}

// --- Page format v3 (packed key layout, io/page_codec.h) ------------------

// RAII so a failing assertion cannot leak a codec override into later tests.
struct ForcedCodec {
  explicit ForcedCodec(int enabled) { codec::SetPackedPagesEnabled(enabled); }
  ~ForcedCodec() { codec::SetPackedPagesEnabled(-1); }
};

TEST(PageCodecTest, CountWordRoundTrip) {
  for (uint32_t count : {0u, 1u, 170u, codec::kCountMask}) {
    for (uint32_t key_off : {0u, 8u, 16u, 1008u}) {
      for (bool aligned : {false, true}) {
        const uint32_t w = codec::MakePackedCountWord(count, key_off, aligned);
        EXPECT_TRUE(codec::IsPacked(w));
        EXPECT_EQ(codec::Count(w), count);
        EXPECT_EQ(codec::KeyOffset(w), key_off);
        EXPECT_EQ(codec::PackedBase(w), aligned ? codec::kPackedBaseHi
                                                : codec::kPackedBaseLo);
      }
    }
  }
  // A v2 count word (== the count) never reads as packed.
  EXPECT_FALSE(codec::IsPacked(170u));
  EXPECT_EQ(codec::Count(170u), 170u);
}

TEST(PageCodecTest, EncodeDecodeRecordsRoundTrip) {
  // Every key position a Point/Interval-shaped record can extract from.
  auto pts = MakePoints(23);
  for (uint32_t key_off : {0u, 8u, 16u}) {
    std::vector<std::byte> img(23 * sizeof(Point));
    codec::EncodePackedRecords(img.data(), pts.data(), pts.size(),
                               sizeof(Point), key_off);
    // The extracted keys are densely packed at the front.
    for (size_t i = 0; i < pts.size(); ++i) {
      int64_t k = 0;
      std::memcpy(&k, img.data() + i * 8, 8);
      int64_t want = 0;
      std::memcpy(&want, reinterpret_cast<const char*>(&pts[i]) + key_off, 8);
      ASSERT_EQ(k, want) << "key_off " << key_off << " rec " << i;
    }
    std::vector<Point> back(pts.size());
    codec::DecodePackedRecords(img.data(), back.data(), pts.size(),
                               sizeof(Point), key_off);
    EXPECT_EQ(back, pts) << "key_off " << key_off;
  }
}

TEST(PageCodecTest, CapacityIsInvariantAcrossFormats) {
  // The codec's load-bearing invariant: a packed list occupies exactly the
  // pages an interleaved list would, for every page size and length — so
  // chain shapes and counted reads are bit-identical codec-on and codec-off.
  for (uint32_t page_size : {256u, 512u, 4096u}) {
    for (size_t n : {1u, 7u, 10u, 11u, 170u, 341u, 1000u}) {
      auto pts = MakePoints(n);
      MemPageDevice dev_v2(page_size);
      MemPageDevice dev_v3(page_size);
      BlockListInfo v2, v3;
      {
        ForcedCodec off(0);
        v2 = BuildBlockList<Point>(&dev_v2, std::span<const Point>(pts),
                                   offsetof(Point, x))
                 .value();
      }
      {
        ForcedCodec on(1);
        v3 = BuildBlockList<Point>(&dev_v3, std::span<const Point>(pts),
                                   offsetof(Point, x))
                 .value();
      }
      ASSERT_EQ(v2.pages.size(), v3.pages.size())
          << "page_size " << page_size << " n " << n;
      ASSERT_EQ(v2.ref.count, v3.ref.count);
      // Both decode to the same records through the format-agnostic reader.
      std::vector<Point> out2, out3;
      ASSERT_TRUE(ReadBlockList<Point>(&dev_v2, v2.ref, &out2).ok());
      ASSERT_TRUE(ReadBlockList<Point>(&dev_v3, v3.ref, &out3).ok());
      EXPECT_EQ(out2, pts);
      EXPECT_EQ(out3, pts);
    }
  }
}

TEST(PageCodecTest, PackedViewExposesKeysAndPayloadFields) {
  ForcedCodec on(1);
  MemPageDevice dev(4096);
  auto pts = MakePoints(50);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts),
                                    offsetof(Point, y))
                  .value();
  std::vector<std::byte> buf(dev.page_size());
  ASSERT_TRUE(dev.Read(info.pages[0], buf.data()).ok());
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  ASSERT_TRUE(codec::IsPacked(hdr.count));
  EXPECT_EQ(codec::KeyOffset(hdr.count), offsetof(Point, y));
  // A 50-record page leaves 4096 - 16 - 50*24 = 2880 spare bytes, so the
  // key array starts on the cache-line boundary.
  EXPECT_EQ(codec::PackedBase(hdr.count), codec::kPackedBaseHi);

  const auto v = PackedPageView<Point>::From(buf.data(), hdr);
  ASSERT_EQ(v.count, pts.size());
  for (size_t i = 0; i < v.count; ++i) {
    EXPECT_EQ(v.keys[i], pts[i].y);
    EXPECT_EQ(v.I64Field(i, offsetof(Point, x)), pts[i].x);
    EXPECT_EQ(v.U64Field(i, offsetof(Point, id)), pts[i].id);
  }
}

TEST(PageCodecTest, MixedFormatChainsCoexist) {
  // One store, two lists, opposite formats — readers must not care, because
  // every page self-describes via its count word.
  MemPageDevice dev(512);
  auto a = MakePoints(40);
  std::vector<Point> b = MakePoints(35);
  for (auto& p : b) p.id += 1000;
  BlockListInfo ia, ib;
  {
    ForcedCodec off(0);
    ia = BuildBlockList<Point>(&dev, std::span<const Point>(a),
                               offsetof(Point, x))
             .value();
  }
  {
    ForcedCodec on(1);
    ib = BuildBlockList<Point>(&dev, std::span<const Point>(b),
                               offsetof(Point, x))
             .value();
  }
  std::vector<Point> out_a, out_b;
  ASSERT_TRUE(ReadBlockList<Point>(&dev, ia.ref, &out_a).ok());
  ASSERT_TRUE(ReadBlockList<Point>(&dev, ib.ref, &out_b).ok());
  EXPECT_EQ(out_a, a);
  EXPECT_EQ(out_b, b);
  // And the cursor's raw interface sees one packed and one interleaved page.
  BlockPageHeader hdr;
  std::vector<std::byte> buf(dev.page_size());
  ASSERT_TRUE(dev.Read(ia.pages[0], buf.data()).ok());
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  EXPECT_FALSE(codec::IsPacked(hdr.count));
  ASSERT_TRUE(dev.Read(ib.pages[0], buf.data()).ok());
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  EXPECT_TRUE(codec::IsPacked(hdr.count));
}

TEST(PageCodecTest, CorruptFlagBitsAreRejected) {
  const uint32_t cap = RecordsPerPage<Point>(4096);  // 170

  // v2 word with a stray non-count bit (not the packed flag): garbage.
  BlockPageHeader hdr{};
  hdr.count = codec::kAlignedFlag | 5u;
  EXPECT_EQ(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).code(),
            StatusCode::kCorruption);

  // Packed key offset pointing past the record.
  hdr.count = codec::MakePackedCountWord(5, /*key_off=*/32, false);
  EXPECT_EQ(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).code(),
            StatusCode::kCorruption);

  // Aligned flag on a page too full for the 48-byte pad: 170 records fit at
  // base 16 exactly (16 + 170*24 = 4096) but not at base 64.
  hdr.count = codec::MakePackedCountWord(cap, offsetof(Point, x), true);
  EXPECT_EQ(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).code(),
            StatusCode::kCorruption);

  // Count beyond capacity is rejected in either format.
  hdr.count = cap + 1;
  EXPECT_EQ(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).code(),
            StatusCode::kCorruption);
  hdr.count = codec::MakePackedCountWord(cap + 1, offsetof(Point, x), false);
  EXPECT_EQ(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).code(),
            StatusCode::kCorruption);

  // The valid forms all pass.
  hdr.count = cap;
  EXPECT_TRUE(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).ok());
  hdr.count = codec::MakePackedCountWord(cap, offsetof(Point, x), false);
  EXPECT_TRUE(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).ok());
  hdr.count = codec::MakePackedCountWord(100, offsetof(Point, x), true);
  EXPECT_TRUE(CheckBlockPageHeader(hdr, cap, sizeof(Point), 4096).ok());
}

TEST(PageCodecTest, CorruptPackedPageSurfacesAsCorruptionEndToEnd) {
  ForcedCodec on(1);
  MemPageDevice dev(512);
  auto pts = MakePoints(40);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts),
                                    offsetof(Point, x))
                  .value();
  // Flip the key offset to point past the record and write the page back.
  std::vector<std::byte> buf(dev.page_size());
  ASSERT_TRUE(dev.Read(info.pages[1], buf.data()).ok());
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  ASSERT_TRUE(codec::IsPacked(hdr.count));
  hdr.count = codec::MakePackedCountWord(codec::Count(hdr.count),
                                         /*key_off=*/64, false);
  std::memcpy(buf.data(), &hdr, sizeof(hdr));
  ASSERT_TRUE(dev.Write(info.pages[1], buf.data()).ok());

  std::vector<Point> out;
  Status s = ReadBlockList<Point>(&dev, info.ref, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(PageCodecTest, DisableEnvOverrideProducesV2Pages) {
  ForcedCodec off(0);
  MemPageDevice dev(512);
  auto pts = MakePoints(25);
  auto info = BuildBlockList<Point>(&dev, std::span<const Point>(pts),
                                    offsetof(Point, x))
                  .value();
  std::vector<std::byte> buf(dev.page_size());
  for (PageId id : info.pages) {
    ASSERT_TRUE(dev.Read(id, buf.data()).ok());
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    EXPECT_FALSE(codec::IsPacked(hdr.count));
  }
}

}  // namespace
}  // namespace pathcache
