#include "core/ext_interval_tree.h"

#include <gtest/gtest.h>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Interval> MakeIntervals(uint64_t n, uint64_t seed,
                                    const char* dist = "uniform",
                                    double len_frac = 0.02) {
  IntervalGenOptions o;
  o.n = n;
  o.seed = seed;
  o.domain_max = 2'000'000;
  o.mean_len_frac = len_frac;
  std::vector<Interval> ivs;
  if (std::string(dist) == "uniform") {
    ivs = GenIntervalsUniform(o);
  } else if (std::string(dist) == "nested") {
    ivs = GenIntervalsNested(o);
  } else {
    ivs = GenIntervalsBursty(o, 9);
  }
  MakeEndpointsDistinct(&ivs);
  return ivs;
}

TEST(ExtIntervalTreeTest, EmptyAndSingle) {
  MemPageDevice dev(4096);
  ExtIntervalTree it(&dev);
  ASSERT_TRUE(it.Build({}).ok());
  std::vector<Interval> out;
  ASSERT_TRUE(it.Stab(5, &out).ok());
  EXPECT_TRUE(out.empty());

  ExtIntervalTree it2(&dev);
  ASSERT_TRUE(it2.Build({{10, 20, 1}}).ok());
  for (auto [q, want] : std::vector<std::pair<int64_t, size_t>>{
           {9, 0}, {10, 1}, {15, 1}, {20, 1}, {21, 0}}) {
    out.clear();
    ASSERT_TRUE(it2.Stab(q, &out).ok());
    EXPECT_EQ(out.size(), want) << "q=" << q;
  }
}

// The random-vs-oracle sweep lives in differential_test.cpp (shared
// shrinking harness, see tests/oracle_common.h); this file keeps the
// structure-specific and deterministic cases.

TEST(ExtIntervalTreeTest, DuplicateEndpointsStillCorrect) {
  MemPageDevice dev(512);
  ExtIntervalTree it(&dev);
  std::vector<Interval> ivs;
  Rng rng(11);
  for (uint64_t i = 0; i < 3000; ++i) {
    int64_t lo = rng.UniformRange(0, 50);
    ivs.push_back({lo, lo + rng.UniformRange(0, 20), i});
  }
  ASSERT_TRUE(it.Build(ivs).ok());
  for (int64_t q = -2; q <= 75; ++q) {
    std::vector<Interval> got;
    ASSERT_TRUE(it.Stab(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteStab(ivs, q))) << "q=" << q;
  }
}

// Theorem 3.5 query bound.
TEST(ExtIntervalTreeTest, CachedStabIoIsOptimal) {
  MemPageDevice dev(4096);
  ExtIntervalTree it(&dev);
  auto ivs = MakeIntervals(150000, 13);
  ASSERT_TRUE(it.Build(ivs).ok());
  const uint32_t B = RecordsPerPage<Interval>(4096);
  const uint64_t logB_n = CeilLogBase(ivs.size(), B) + 1;

  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    int64_t q = rng.UniformRange(0, 4'000'000);
    std::vector<Interval> got;
    dev.ResetStats();
    ASSERT_TRUE(it.Stab(q, &got).ok());
    uint64_t bound = 8 * logB_n + 3 * CeilDiv(got.size(), B) + 12;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size() << " q=" << q;
  }
}

// Theorem 3.5 space: O((n/B) log B) blocks; far below the segment tree's
// O((n/B) log n) because each interval is stored O(1) times.
TEST(ExtIntervalTreeTest, StorageWithinNLogBBound) {
  const uint32_t page = 4096;
  const uint32_t B = RecordsPerPage<Interval>(page);
  auto ivs = MakeIntervals(200000, 29);
  MemPageDevice dev(page);
  ExtIntervalTree it(&dev);
  ASSERT_TRUE(it.Build(ivs).ok());
  const uint64_t logB = FloorLog2(B) + 1;
  EXPECT_LE(dev.live_pages(), 8 * CeilDiv(ivs.size(), B) * logB + 16);
  EXPECT_EQ(dev.live_pages(), it.storage().total());
}

TEST(ExtIntervalTreeTest, CachingBeatsNaiveOnUnderfullPaths) {
  auto ivs = MakeIntervals(100000, 19, "uniform", 0.0005);

  MemPageDevice dev_c(4096);
  ExtIntervalTree cached(&dev_c);
  ASSERT_TRUE(cached.Build(ivs).ok());
  MemPageDevice dev_n(4096);
  ExtIntervalTreeOptions no;
  no.enable_path_caching = false;
  ExtIntervalTree naive(&dev_n, no);
  ASSERT_TRUE(naive.Build(ivs).ok());

  Rng rng(23);
  uint64_t io_c = 0, io_n = 0;
  for (int i = 0; i < 50; ++i) {
    int64_t q = rng.UniformRange(0, 4'000'000);
    std::vector<Interval> a, b;
    dev_c.ResetStats();
    ASSERT_TRUE(cached.Stab(q, &a).ok());
    io_c += dev_c.stats().reads;
    dev_n.ResetStats();
    ASSERT_TRUE(naive.Stab(q, &b).ok());
    io_n += dev_n.stats().reads;
    ASSERT_TRUE(SameResult(a, b));
  }
  EXPECT_LT(io_c, io_n);
}

TEST(ExtIntervalTreeTest, DestroyFreesEverything) {
  MemPageDevice dev(4096);
  ExtIntervalTree it(&dev);
  ASSERT_TRUE(it.Build(MakeIntervals(5000, 31)).ok());
  EXPECT_GT(dev.live_pages(), 0u);
  ASSERT_TRUE(it.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(ExtIntervalTreeTest, IoErrorPropagates) {
  MemPageDevice dev(4096);
  ExtIntervalTree it(&dev);
  ASSERT_TRUE(it.Build(MakeIntervals(20000, 37)).ok());
  dev.InjectFailureAfter(1);
  std::vector<Interval> out;
  EXPECT_TRUE(it.Stab(1'000'000, &out).IsIoError());
  dev.InjectFailureAfter(-1);
}

TEST(ExtIntervalTreeTest, ReadaheadIsPureTransport) {
  auto ivs = MakeIntervals(60000, 97, "uniform", 0.05);
  MemPageDevice dev_on(2048), dev_off(2048);
  ExtIntervalTreeOptions on, off;
  on.enable_readahead = true;
  off.enable_readahead = false;
  ExtIntervalTree it_on(&dev_on, on), it_off(&dev_off, off);
  ASSERT_TRUE(it_on.Build(ivs).ok());
  ASSERT_TRUE(it_off.Build(ivs).ok());

  Rng rng(31);
  uint64_t batches = 0;
  for (int i = 0; i < 50; ++i) {
    const auto& iv = ivs[rng.Uniform(ivs.size())];
    const int64_t q = (iv.lo + iv.hi) / 2;
    dev_on.ResetStats();
    dev_off.ResetStats();
    std::vector<Interval> a, b;
    ASSERT_TRUE(it_on.Stab(q, &a).ok());
    ASSERT_TRUE(it_off.Stab(q, &b).ok());
    EXPECT_TRUE(SameResult(a, b)) << "q=" << q;
    EXPECT_EQ(dev_on.stats().reads, dev_off.stats().reads) << "q=" << q;
    EXPECT_EQ(dev_off.stats().batch_reads, 0u);
    batches += dev_on.stats().batch_reads;
  }
  EXPECT_GT(batches, 0u);
}

}  // namespace
}  // namespace pathcache
