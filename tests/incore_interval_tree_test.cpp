#include "incore/interval_tree.h"

#include <gtest/gtest.h>

#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

TEST(InCoreIntervalTreeTest, Empty) {
  IntervalTree it;
  std::vector<Interval> out;
  it.Stab(5, &out);
  EXPECT_TRUE(out.empty());
}

TEST(InCoreIntervalTreeTest, EndpointsInclusive) {
  std::vector<Interval> ivs = {{10, 20, 1}, {15, 30, 2}, {25, 40, 3}};
  IntervalTree it(ivs);
  for (int64_t q : {9, 10, 15, 20, 21, 25, 30, 31, 40, 41}) {
    std::vector<Interval> got;
    it.Stab(q, &got);
    EXPECT_TRUE(SameResult(got, BruteStab(ivs, q))) << "q=" << q;
  }
}

TEST(InCoreIntervalTreeTest, IdenticalIntervals) {
  std::vector<Interval> ivs = {{5, 10, 1}, {5, 10, 2}, {5, 10, 3}};
  IntervalTree it(ivs);
  std::vector<Interval> got;
  it.Stab(7, &got);
  EXPECT_EQ(got.size(), 3u);
}

struct ItCase {
  uint64_t n;
  uint64_t seed;
  const char* dist;
};

class InCoreIntervalTreeRandomTest : public ::testing::TestWithParam<ItCase> {
};

TEST_P(InCoreIntervalTreeRandomTest, MatchesBruteForce) {
  const auto& tc = GetParam();
  IntervalGenOptions o;
  o.n = tc.n;
  o.seed = tc.seed;
  o.domain_max = 50000;
  o.mean_len_frac = 0.03;
  std::vector<Interval> ivs;
  if (std::string(tc.dist) == "uniform") {
    ivs = GenIntervalsUniform(o);
  } else if (std::string(tc.dist) == "nested") {
    ivs = GenIntervalsNested(o);
  } else {
    ivs = GenIntervalsBursty(o, 6);
  }

  IntervalTree it(ivs);
  Rng rng(tc.seed ^ 0x1717);
  for (int i = 0; i < 60; ++i) {
    int64_t q = rng.UniformRange(-10, 50010);
    std::vector<Interval> got;
    it.Stab(q, &got);
    EXPECT_TRUE(SameResult(got, BruteStab(ivs, q))) << "q=" << q;
  }
  for (int i = 0; i < 30; ++i) {
    const auto& iv = ivs[rng.Uniform(ivs.size())];
    for (int64_t q : {iv.lo, iv.hi, iv.lo - 1, iv.hi + 1}) {
      std::vector<Interval> got;
      it.Stab(q, &got);
      EXPECT_TRUE(SameResult(got, BruteStab(ivs, q))) << "q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InCoreIntervalTreeRandomTest,
    ::testing::Values(ItCase{10, 1, "uniform"}, ItCase{100, 2, "uniform"},
                      ItCase{2000, 3, "uniform"}, ItCase{2000, 4, "nested"},
                      ItCase{2000, 5, "bursty"}, ItCase{999, 6, "uniform"}));

}  // namespace
}  // namespace pathcache
