#include "core/region_tree.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace pathcache {
namespace {

TEST(RegionTreeTest, EmptyInput) {
  auto nodes = BuildRegionTree({}, 4);
  EXPECT_TRUE(nodes.empty());
  EXPECT_EQ(CheckRegionTree(nodes, 0, 4), "");
}

TEST(RegionTreeTest, SingleRegion) {
  std::vector<Point> pts = {{1, 5, 0}, {2, 3, 1}, {3, 9, 2}};
  auto nodes = BuildRegionTree(pts, 4);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_TRUE(nodes[0].is_leaf());
  EXPECT_EQ(nodes[0].pts.size(), 3u);
  // Sorted by descending y.
  EXPECT_EQ(nodes[0].pts[0].y, 9);
  EXPECT_EQ(nodes[0].pts[2].y, 3);
  EXPECT_EQ(nodes[0].y_min, 3);
  EXPECT_EQ(CheckRegionTree(nodes, 3, 4), "");
}

TEST(RegionTreeTest, RootHoldsGlobalTop) {
  PointGenOptions o;
  o.n = 1000;
  o.seed = 3;
  auto pts = GenPointsUniform(o);
  auto nodes = BuildRegionTree(pts, 16);
  ASSERT_FALSE(nodes.empty());
  // The root's 16 points are the global top-16 by y.
  std::vector<Point> sorted = pts;
  std::sort(sorted.begin(), sorted.end(), GreaterByY);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(nodes[0].pts[i].id, sorted[i].id);
  }
}

struct RtCase {
  uint64_t n;
  uint32_t region;
  uint64_t seed;
};

class RegionTreeSweep : public ::testing::TestWithParam<RtCase> {};

TEST_P(RegionTreeSweep, InvariantsHold) {
  const auto& c = GetParam();
  PointGenOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.coord_max = 1'000'000;
  auto pts = GenPointsUniform(o);
  auto nodes = BuildRegionTree(pts, c.region);
  EXPECT_EQ(CheckRegionTree(nodes, c.n, c.region), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegionTreeSweep,
    ::testing::Values(RtCase{1, 4, 1}, RtCase{4, 4, 2}, RtCase{5, 4, 3},
                      RtCase{100, 4, 4}, RtCase{1000, 16, 5},
                      RtCase{10000, 64, 6}, RtCase{5000, 170, 7},
                      RtCase{999, 7, 8}));

TEST(RegionTreeTest, DuplicateCoordinatesHandledByIdTieBreak) {
  std::vector<Point> pts;
  for (uint64_t i = 0; i < 200; ++i) {
    pts.push_back({static_cast<int64_t>(i % 3), static_cast<int64_t>(i % 2),
                   i});
  }
  auto nodes = BuildRegionTree(pts, 8);
  EXPECT_EQ(CheckRegionTree(nodes, 200, 8), "");
}

TEST(RegionTreeTest, NodeCountIsLinearInNOverB) {
  PointGenOptions o;
  o.n = 100000;
  o.seed = 9;
  auto pts = GenPointsUniform(o);
  auto nodes = BuildRegionTree(pts, 100);
  // ~n/region regions; the tree never exceeds ~2x that.
  EXPECT_LE(nodes.size(), 2 * (o.n / 100) + 2);
  EXPECT_GE(nodes.size(), o.n / 100);
}

}  // namespace
}  // namespace pathcache
