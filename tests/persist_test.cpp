// Persistence: Save()/Open() round trips, including across a process-style
// close-and-reopen of a FilePageDevice store.

#include "core/persist.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>

#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "core/three_sided.h"
#include "io/crc32c.h"
#include "io/file_page_device.h"
#include "io/mem_page_device.h"
#include "io/page_codec.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 300'000;
  return GenPointsUniform(o);
}

TEST(PersistTest, ExternalPstRoundTrip) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  auto pts = UniformPts(20000, 3);
  ASSERT_TRUE(pst.Build(pts).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  ExternalPst reopened(&dev);
  ASSERT_TRUE(reopened.Open(manifest.value()).ok());
  EXPECT_EQ(reopened.size(), pst.size());
  EXPECT_EQ(reopened.segment_len(), pst.segment_len());

  Rng rng(5);
  for (int i = 0; i < 15; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> a, b;
    ASSERT_TRUE(pst.QueryTwoSided(q, &a).ok());
    ASSERT_TRUE(reopened.QueryTwoSided(q, &b).ok());
    ASSERT_TRUE(SameResult(a, b));
  }
  // Destroy through the reopened handle reclaims every page.
  ASSERT_TRUE(reopened.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(PersistTest, TwoLevelPstRoundTripViaDispatcher) {
  MemPageDevice dev(4096);
  TwoLevelPst pst(&dev);
  auto pts = UniformPts(30000, 7);
  ASSERT_TRUE(pst.Build(pts).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  auto reopened = OpenTwoSidedIndex(&dev, manifest.value());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->size(), pts.size());

  Rng rng(9);
  for (int i = 0; i < 15; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    QueryStats qs;
    ASSERT_TRUE(reopened.value()->QueryTwoSided(q, &got, &qs).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
  }
  ASSERT_TRUE(reopened.value()->Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(PersistTest, OpenRejectsWrongTypeAndGarbage) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(1000, 11)).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  TwoLevelPst wrong(&dev);
  EXPECT_TRUE(wrong.Open(manifest.value()).IsInvalidArgument());

  PageId garbage = dev.Allocate().value();
  ExternalPst bad(&dev);
  EXPECT_TRUE(bad.Open(garbage).IsCorruption());

  ExternalPst busy(&dev);
  ASSERT_TRUE(busy.Build(UniformPts(100, 13)).ok());
  EXPECT_EQ(busy.Open(manifest.value()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PersistTest, SurvivesFileDeviceReopen) {
  const std::string path = ::testing::TempDir() + "/pc_persist.db";
  auto pts = UniformPts(15000, 17);
  PageId manifest;
  {
    auto r = FilePageDevice::Create(path, 4096);
    ASSERT_TRUE(r.ok());
    auto dev = std::move(r).value();
    TwoLevelPst pst(dev.get());
    ASSERT_TRUE(pst.Build(pts).ok());
    auto m = pst.Save();
    ASSERT_TRUE(m.ok());
    manifest = m.value();
    // Device closes when dev goes out of scope (process "exit").
  }
  {
    auto r = FilePageDevice::Open(path, 4096);
    ASSERT_TRUE(r.ok());
    auto dev = std::move(r).value();
    TwoLevelPst pst(dev.get());
    ASSERT_TRUE(pst.Open(manifest).ok());
    EXPECT_EQ(pst.size(), pts.size());
    Rng rng(19);
    for (int i = 0; i < 10; ++i) {
      auto q = SampleTwoSidedQuery(pts, &rng);
      std::vector<Point> got;
      ASSERT_TRUE(pst.QueryTwoSided(q, &got).ok());
      ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
    }
  }
}

TEST(PersistTest, FileDeviceOpenValidations) {
  EXPECT_FALSE(FilePageDevice::Open("/nonexistent/pc.db", 4096).ok());
  const std::string path = ::testing::TempDir() + "/pc_badsize.db";
  {
    auto r = FilePageDevice::Create(path, 512);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value()->Allocate().ok());
  }
  // Reopening with a mismatched page size that does not divide the file.
  auto bad = FilePageDevice::Open(path, 4096);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace pathcache

namespace pathcache {
namespace {

TEST(PersistTest, NestedMultilevelRoundTrip) {
  MemPageDevice dev(1024);  // small B so levels=3 really nests
  TwoLevelPstOptions opts;
  opts.levels = 3;
  TwoLevelPst pst(&dev, opts);
  auto pts = UniformPts(20000, 23);
  ASSERT_TRUE(pst.Build(pts).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  TwoLevelPst reopened(&dev);
  ASSERT_TRUE(reopened.Open(manifest.value()).ok());
  EXPECT_EQ(reopened.levels(), 3u);
  Rng rng(29);
  for (int i = 0; i < 10; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(reopened.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
  }
  ASSERT_TRUE(reopened.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(PersistTest, TruncatedOwnedListChainIsCorruption) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(20000, 37)).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  // Zero the first page of the owned-list chain: the header still promises
  // owned_count entries, so the reader must flag the truncation.
  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(dev.Read(manifest.value(), buf.data()).ok());
  PstManifestHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  ASSERT_NE(hdr.owned_head, kInvalidPageId);
  ASSERT_GT(hdr.owned_count, 0u);
  std::vector<std::byte> zeros(4096, std::byte{0});
  ASSERT_TRUE(dev.Write(hdr.owned_head, zeros.data()).ok());

  ExternalPst reopened(&dev);
  Status s = reopened.Open(manifest.value());
  ASSERT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(PersistTest, ScribbledMagicIsCorruption) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(2000, 41)).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(dev.Read(manifest.value(), buf.data()).ok());
  const uint64_t garbage = 0xDEADBEEFDEADBEEFull;
  std::memcpy(buf.data(), &garbage, sizeof(garbage));
  ASSERT_TRUE(dev.Write(manifest.value(), buf.data()).ok());

  ExternalPst reopened(&dev);
  Status s = reopened.Open(manifest.value());
  ASSERT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("not a pathcache manifest"),
            std::string_view::npos);
}

// Restamps a manifest header's CRC in place, the way a (possibly future)
// writer would — used to forge headers that must fail on semantic checks
// rather than on the checksum gate.
void RestampHeaderCrc(std::byte* page) {
  PstManifestHeader hdr;
  std::memcpy(&hdr, page, sizeof(hdr));
  hdr.header_crc = 0;
  std::memcpy(page, &hdr, sizeof(hdr));
  hdr.header_crc = Crc32c(page, sizeof(hdr));
  std::memcpy(page + offsetof(PstManifestHeader, header_crc), &hdr.header_crc,
              sizeof(hdr.header_crc));
}

TEST(PersistTest, FutureFormatVersionIsRejected) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(2000, 43)).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(dev.Read(manifest.value(), buf.data()).ok());
  const uint32_t future = kManifestFormatVersion + 7;
  std::memcpy(buf.data() + offsetof(PstManifestHeader, format_version),
              &future, sizeof(future));
  // A future writer stamps a valid CRC; forge one so the version check —
  // not the checksum gate — is what rejects the manifest.
  RestampHeaderCrc(buf.data());
  ASSERT_TRUE(dev.Write(manifest.value(), buf.data()).ok());

  ExternalPst reopened(&dev);
  Status s = reopened.Open(manifest.value());
  ASSERT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("newer"), std::string_view::npos);
}

// Every single-byte corruption anywhere in the header region must surface
// as Corruption (or InvalidArgument), never a crash and never a structure
// that silently opens with a skewed header — the header CRC's whole job.
// Swept over two structure families so both manifest writers are covered.
template <typename Structure, typename BuildInput>
void ByteFlipSweep(const BuildInput& input) {
  MemPageDevice dev(4096);
  Structure built(&dev);
  ASSERT_TRUE(built.Build(input).ok());
  auto manifest = built.Save();
  ASSERT_TRUE(manifest.ok());

  std::vector<std::byte> pristine(4096);
  ASSERT_TRUE(dev.Read(manifest.value(), pristine.data()).ok());
  std::vector<std::byte> buf = pristine;
  for (size_t off = 0; off < sizeof(PstManifestHeader); ++off) {
    buf[off] ^= std::byte{0xFF};
    ASSERT_TRUE(dev.Write(manifest.value(), buf.data()).ok());
    Structure reopened(&dev);
    Status s = reopened.Open(manifest.value());
    ASSERT_FALSE(s.ok()) << "byte " << off << " flip opened successfully";
    EXPECT_TRUE(s.IsCorruption() || s.IsInvalidArgument())
        << "byte " << off << ": " << s.ToString();
    buf[off] = pristine[off];
  }
  // The unflipped manifest still opens — the sweep always restored cleanly.
  ASSERT_TRUE(dev.Write(manifest.value(), pristine.data()).ok());
  Structure ok(&dev);
  EXPECT_TRUE(ok.Open(manifest.value()).ok());
}

TEST(PersistTest, HeaderByteFlipSweepExternalPst) {
  ByteFlipSweep<ExternalPst>(UniformPts(2000, 47));
}

TEST(PersistTest, HeaderByteFlipSweepThreeSidedPst) {
  ByteFlipSweep<ThreeSidedPst>(UniformPts(2000, 53));
}

TEST(PersistTest, SaveIsRepeatable) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(5000, 31)).ok());
  auto m1 = pst.Save();
  ASSERT_TRUE(m1.ok());
  auto m2 = pst.Save();
  ASSERT_TRUE(m2.ok());
  EXPECT_NE(m1.value(), m2.value());
  // Either manifest opens; the later one owns the earlier one's pages too.
  ExternalPst a(&dev);
  ASSERT_TRUE(a.Open(m2.value()).ok());
  std::vector<Point> out;
  ASSERT_TRUE(a.QueryTwoSided({0, 0}, &out).ok());
  EXPECT_EQ(out.size(), 5000u);
}

TEST(PersistTest, OldFormatStoreOpensUnderPackedWriters) {
  // A store written entirely with the packed codec off is byte-identical to
  // one a pre-v4 writer would produce (all pages interleaved).  Opening it
  // with the codec on must read clean, verify clean, and serve the same
  // answers: readers never consult the manifest version for page decoding,
  // every block page self-describes.
  MemPageDevice dev(4096);
  auto pts = UniformPts(15000, 41);
  codec::SetPackedPagesEnabled(0);
  ThreeSidedPst pst(&dev);
  Status built = pst.Build(pts);
  codec::SetPackedPagesEnabled(-1);
  ASSERT_TRUE(built.ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());

  codec::SetPackedPagesEnabled(1);
  ThreeSidedPst reopened(&dev);
  Status opened = reopened.Open(manifest.value());
  Status checked = opened.ok() ? reopened.CheckStructure() : opened;
  Status queried = Status::OK();
  if (opened.ok()) {
    Rng rng(7);
    for (int i = 0; i < 15 && queried.ok(); ++i) {
      auto q = SampleThreeSidedQuery(pts, 0.05, &rng);
      std::vector<Point> got;
      queried = reopened.QueryThreeSided(q, &got);
      if (queried.ok() && !SameResult(got, BruteThreeSided(pts, q))) {
        queried = Status::Corruption("wrong answer from old-format store");
      }
    }
  }
  codec::SetPackedPagesEnabled(-1);
  ASSERT_TRUE(opened.ok()) << opened.ToString();
  EXPECT_TRUE(checked.ok()) << checked.ToString();
  EXPECT_TRUE(queried.ok()) << queried.ToString();
}

TEST(PersistTest, ManifestStampsCurrentFormatVersion) {
  MemPageDevice dev(4096);
  ExternalPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(2000, 43)).ok());
  auto manifest = pst.Save();
  ASSERT_TRUE(manifest.ok());
  std::vector<std::byte> buf(dev.page_size());
  ASSERT_TRUE(dev.Read(manifest.value(), buf.data()).ok());
  PstManifestHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  EXPECT_EQ(hdr.format_version, kManifestFormatVersion);
  EXPECT_EQ(hdr.format_version, 4u);
}

}  // namespace
}  // namespace pathcache
