// Tests for sharded multi-store serving (src/shard/).
//
// The core property is differential: a ShardedStore + ShardRouter over
// {2, 4, 8} shards must answer every query shape byte-identically to an
// unsharded twin engine built over the same records (ShardedTwin in
// oracle_common.h), with the merged I/O equal to the per-shard slice sum.
// Partial failure is asserted deterministically, serve_test style: a
// blocker parks one shard's only worker while a FakeClock advances past the
// router's per-shard budget, or a FaultPageDevice under exactly one shard
// turns persistent-read-failure — either way the routed result carries a
// typed per-shard error while the healthy shards' records still match the
// oracle.  No sleeps on the failure paths.

#include "shard/shard_router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "io/fault_page_device.h"
#include "io/mem_page_device.h"
#include "net/client.h"
#include "net/server.h"
#include "oracle_common.h"
#include "serve/clock.h"
#include "shard/shard_map.h"
#include "shard/sharded_store.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

using shardtest::BlockingSubmit;
using shardtest::Canonicalize;
using shardtest::ShardedTwin;

TEST(ShardMapTest, RoutesKeysAndRanges) {
  ShardMap one;
  EXPECT_EQ(one.shards(), 1u);
  EXPECT_EQ(one.ShardOf(INT64_MIN), 0u);
  EXPECT_EQ(one.ShardOf(INT64_MAX), 0u);

  ShardMap m({10, 20});
  EXPECT_EQ(m.shards(), 3u);
  EXPECT_EQ(m.ShardOf(9), 0u);
  EXPECT_EQ(m.ShardOf(10), 1u);  // a cut is the next shard's inclusive floor
  EXPECT_EQ(m.ShardOf(19), 1u);
  EXPECT_EQ(m.ShardOf(20), 2u);
  EXPECT_EQ(m.Overlapping(5, 15), (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(m.Overlapping(10, 19), (std::pair<uint32_t, uint32_t>{1, 1}));
  EXPECT_EQ(m.Overlapping(INT64_MIN, INT64_MAX),
            (std::pair<uint32_t, uint32_t>{0, 2}));
}

TEST(ShardMapTest, FromKeysCollapsesDuplicateCuts) {
  ShardMap m = ShardMap::FromKeys({5, 5, 5, 5, 5, 5, 5, 5}, 4);
  EXPECT_EQ(m.shards(), 2u);  // every candidate cut is 5; duplicates collapse
  EXPECT_EQ(m.ShardOf(4), 0u);
  EXPECT_EQ(m.ShardOf(5), 1u);

  ShardMap balanced = ShardMap::FromKeys({1, 2, 3, 4, 5, 6, 7, 8}, 4);
  EXPECT_EQ(balanced.shards(), 4u);
  EXPECT_EQ(balanced.ShardOf(1), 0u);
  EXPECT_EQ(balanced.ShardOf(8), 3u);
}

// --- Differential: sharded answers must equal the unsharded twin's ---------

class ShardedDifferential : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Shards, ShardedDifferential,
                         ::testing::Values(2u, 4u, 8u));

TEST_P(ShardedDifferential, AllQueryShapesMatchUnshardedTwin) {
  const uint32_t shards = GetParam();
  ShardedStoreOptions sopts;
  sopts.shards = shards;
  sopts.pool_pages_total = 2048;
  ShardedTwin twin(sopts);

  PointGenOptions po;
  po.n = 2000;
  po.coord_max = 100'000;
  po.seed = 90 + shards;
  std::vector<Point> pts = GenPointsUniform(po);

  IntervalGenOptions io;
  io.n = 800;
  io.domain_max = 100'000;
  io.mean_len_frac = 0.02;
  io.seed = 91 + shards;
  std::vector<Interval> ivs = GenIntervalsUniform(io);
  MakeEndpointsDistinct(&ivs);

  auto two = twin.AddTwoSided(pts);
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  auto three = twin.AddThreeSided(pts);
  ASSERT_TRUE(three.ok()) << three.status().ToString();
  auto stab = twin.AddStabbing(ivs);
  ASSERT_TRUE(stab.ok()) << stab.status().ToString();
  ASSERT_TRUE(twin.Start().ok());

  // The five wire query shapes, after the server's mapping: two-sided,
  // diagonal-corner (-> two-sided), three-sided, range (-> three-sided),
  // stabbing.  Both sides get the identical mapped query, so shapes that
  // alias still exercise distinct routing footprints.
  Rng rng(7 * shards + 1);
  for (int i = 0; i < 25; ++i) {
    const TwoSidedQuery q2 = SampleTwoSidedQuery(pts, &rng);
    EXPECT_TRUE(twin.Check(two.value(), ServeQuery::TwoSided(q2)));

    const DiagonalCornerQuery dc{rng.UniformRange(0, 100'000)};
    EXPECT_TRUE(twin.Check(two.value(), ServeQuery::TwoSided(dc.AsTwoSided())));

    const ThreeSidedQuery q3 = SampleThreeSidedQuery(pts, 0.2, &rng);
    EXPECT_TRUE(twin.Check(three.value(), ServeQuery::ThreeSided(q3)));

    const int64_t x = rng.UniformRange(0, 100'000);
    const ThreeSidedQuery ranged{x, x + rng.UniformRange(0, 25'000),
                                 rng.UniformRange(0, 100'000)};
    EXPECT_TRUE(twin.Check(three.value(), ServeQuery::ThreeSided(ranged)));

    EXPECT_TRUE(
        twin.Check(stab.value(), ServeQuery::Stab(rng.UniformRange(0, 100'000))));
  }

  // Boundary probes: everything, nothing, and single-shard footprints.
  EXPECT_TRUE(twin.Check(two.value(),
                         ServeQuery::TwoSided(TwoSidedQuery{INT64_MIN,
                                                            INT64_MIN})));
  EXPECT_TRUE(twin.Check(two.value(),
                         ServeQuery::TwoSided(TwoSidedQuery{INT64_MAX,
                                                            INT64_MAX})));
  EXPECT_TRUE(twin.Check(
      three.value(),
      ServeQuery::ThreeSided(ThreeSidedQuery{0, 100'000, INT64_MIN})));
  EXPECT_TRUE(twin.Check(stab.value(), ServeQuery::Stab(pts[0].x)));
  EXPECT_TRUE(twin.Check(stab.value(), ServeQuery::Stab(-1)));

  // Per-shard I/O is really counted: a full sweep over every shard must
  // read pages on more than one of them.
  QueryResult swept = BlockingSubmit(
      twin.router(), two.value(),
      ServeQuery::TwoSided(TwoSidedQuery{INT64_MIN, INT64_MIN}));
  ASSERT_TRUE(swept.status.ok());
  ASSERT_EQ(swept.shards.size(), size_t{shards});
  uint32_t shards_reading = 0;
  for (const ShardSlice& s : swept.shards) {
    if (s.io.reads > 0) ++shards_reading;
  }
  EXPECT_GT(shards_reading, 1u);

  twin.Stop();
}

TEST(ShardRouterTest, EmptyTargetSetCompletesInlineWithEmptyOkResult) {
  ShardedStoreOptions sopts;
  sopts.shards = 2;
  ShardedTwin twin(sopts);
  PointGenOptions po;
  po.n = 200;
  po.coord_max = 10'000;
  po.seed = 5;
  std::vector<Point> pts = GenPointsUniform(po);
  auto three = twin.AddThreeSided(pts);
  ASSERT_TRUE(three.ok());
  ASSERT_TRUE(twin.Start().ok());

  // An inverted x-range intersects no shard at all.
  QueryResult r = BlockingSubmit(
      twin.router(), three.value(),
      ServeQuery::ThreeSided(ThreeSidedQuery{100, 50, 0}));
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.points.empty());
  EXPECT_TRUE(r.shards.empty());
  EXPECT_EQ(r.io.reads, 0u);

  Status bad = twin.router()->Submit(99, ServeQuery::Stab(0), nullptr);
  EXPECT_TRUE(bad.IsInvalidArgument());

  Status upd = twin.router()->SubmitUpdate(three.value(), {}, nullptr);
  EXPECT_TRUE(upd.code() == StatusCode::kNotSupported) << upd.ToString();

  twin.Stop();
}

TEST(ShardRouterTest, StabbingRoutesToExactlyOneShard) {
  // MakeEndpointsDistinct re-spaces the 2n endpoints onto even integers in
  // [0, 4n), so for n = 600 the live domain is [0, 2400) — cuts sit inside
  // that range.
  ShardedStoreOptions sopts;
  sopts.shards = 4;
  sopts.cuts = {600, 1'200, 1'800};
  ShardedTwin twin(sopts);
  IntervalGenOptions io;
  io.n = 600;
  io.domain_max = 100'000;
  io.seed = 33;
  std::vector<Interval> ivs = GenIntervalsUniform(io);
  MakeEndpointsDistinct(&ivs);
  auto stab = twin.AddStabbing(ivs);
  ASSERT_TRUE(stab.ok());
  ASSERT_TRUE(twin.Start().ok());

  for (int64_t q : {0L, 700L, 1'300L, 2'300L}) {
    QueryResult r =
        BlockingSubmit(twin.router(), stab.value(), ServeQuery::Stab(q));
    ASSERT_TRUE(r.status.ok());
    ASSERT_EQ(r.shards.size(), 1u) << "stab " << q;
    EXPECT_EQ(r.shards[0].shard, twin.store()->map().ShardOf(q));
    EXPECT_TRUE(twin.Check(stab.value(), ServeQuery::Stab(q)));
  }
  twin.Stop();
}

// --- Partial failure --------------------------------------------------------

// Parks a shard engine's only worker inside a completion callback
// (serve_test's WorkerBlocker idiom).
class WorkerBlocker {
 public:
  QueryDoneCallback Callback() {
    return [this](QueryResult) {
      started_.set_value();
      release_future_.wait();
    };
  }
  void AwaitWorkerParked() { started_.get_future().wait(); }
  void Release() { release_.set_value(); }

 private:
  std::promise<void> started_;
  std::promise<void> release_;
  std::shared_future<void> release_future_{release_.get_future().share()};
};

TEST(ShardRouterTest, SlowShardExpiresTypedWhileHealthyShardsAnswer) {
  FakeClock clock(1'000'000);
  ShardedStoreOptions sopts;
  sopts.shards = 2;
  sopts.cuts = {50'000};
  sopts.engine_workers = 1;
  sopts.batch_size = 1;
  sopts.clock = &clock;
  ShardedStore store(sopts);

  PointGenOptions po;
  po.n = 1000;
  po.coord_max = 100'000;
  po.seed = 55;
  std::vector<Point> pts = GenPointsUniform(po);
  auto id = store.AddTwoSided(pts);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Start().ok());

  const int32_t sub_id = store.info(id.value()).engine_id[1];
  ASSERT_GE(sub_id, 0);
  WorkerBlocker blocker;
  ASSERT_TRUE(store.engine(1)
                  ->Submit(uint32_t(sub_id),
                           ServeQuery::TwoSided(TwoSidedQuery{INT64_MAX,
                                                              INT64_MAX}),
                           blocker.Callback())
                  .ok());
  blocker.AwaitWorkerParked();  // shard 1's worker is now provably busy

  ShardRouterOptions ropts;
  ropts.per_shard_budget_micros = 1'000;
  ShardRouter router(&store, ropts);
  std::promise<QueryResult> done;
  auto fut = done.get_future();
  ASSERT_TRUE(router
                  .Submit(id.value(),
                          ServeQuery::TwoSided(TwoSidedQuery{INT64_MIN,
                                                             INT64_MIN}),
                          [&done](QueryResult r) {
                            done.set_value(std::move(r));
                          })
                  .ok());

  // Shard 0 is healthy: wait for it to finish its slice, then let the
  // per-shard budget lapse before shard 1's worker ever sees its sub-query.
  store.engine(0)->Drain();
  clock.Advance(2'000);
  blocker.Release();

  QueryResult r = fut.get();
  EXPECT_TRUE(r.status.IsDeadlineExceeded()) << r.status.ToString();
  EXPECT_NE(std::string(r.status.message()).find("shard 1"), std::string::npos)
      << r.status.ToString();
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_TRUE(r.shards[0].status.ok());
  EXPECT_TRUE(r.shards[1].status.IsDeadlineExceeded());
  EXPECT_EQ(r.shards[1].io.reads, 0u);  // expiry costs no I/O

  // The healthy shard's records still came back, byte-identical to a local
  // oracle over shard 0's slice of the data.
  std::vector<Point> expect;
  for (const Point& p : pts) {
    if (store.map().ShardOf(p.x) == 0) expect.push_back(p);
  }
  Canonicalize(&expect);
  EXPECT_EQ(r.points, expect);
  store.Stop();
}

TEST(ShardRouterTest, FaultedShardYieldsIoErrorWhileHealthyShardsAnswer) {
  MemPageDevice mem0(4096), mem1(4096);
  FaultPageDevice fault(&mem1);
  ShardedStoreOptions sopts;
  sopts.shards = 2;
  sopts.cuts = {50'000};
  sopts.devices = {&mem0, &fault};
  ShardedStore store(sopts);

  PointGenOptions po;
  po.n = 1500;
  po.coord_max = 100'000;
  po.seed = 56;
  std::vector<Point> pts = GenPointsUniform(po);
  auto id = store.AddTwoSided(pts);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Start().ok());

  // From here every read on shard 1's device fails; dropping the pool's
  // cached frames forces the next query to actually hit it.
  fault.FailReadAt(fault.reads_seen(), /*persistent=*/true);
  store.pool(1)->Clear();

  ShardRouter router(&store);
  QueryResult r = BlockingSubmit(
      &router, id.value(),
      ServeQuery::TwoSided(TwoSidedQuery{INT64_MIN, INT64_MIN}));
  EXPECT_TRUE(r.status.IsIoError()) << r.status.ToString();
  EXPECT_NE(std::string(r.status.message()).find("shard 1"), std::string::npos);
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_TRUE(r.shards[0].status.ok());
  EXPECT_TRUE(r.shards[1].status.IsIoError());

  std::vector<Point> expect;
  for (const Point& p : pts) {
    if (store.map().ShardOf(p.x) == 0) expect.push_back(p);
  }
  Canonicalize(&expect);
  EXPECT_EQ(r.points, expect);

  // The fault is shard-local: shard 0 keeps serving, and a stab-style
  // narrow query that only touches shard 0 is entirely unaffected.
  QueryResult healthy = BlockingSubmit(
      &router, id.value(),
      ServeQuery::TwoSided(TwoSidedQuery{INT64_MIN, INT64_MIN}));
  EXPECT_TRUE(healthy.shards[0].status.ok());
  store.Stop();
}

TEST(ShardRouterTest, QuotaBounceBecomesFailedSliceNotLostCallback) {
  ShardedStoreOptions sopts;
  sopts.shards = 2;
  sopts.cuts = {50'000};
  sopts.engine_workers = 1;
  sopts.batch_size = 1;
  ShardedStore store(sopts);
  PointGenOptions po;
  po.n = 600;
  po.coord_max = 100'000;
  po.seed = 57;
  std::vector<Point> pts = GenPointsUniform(po);
  auto id = store.AddTwoSided(pts);
  ASSERT_TRUE(id.ok());
  // Tenant 9 gets zero tokens on every shard: always bounced, synchronously.
  ASSERT_TRUE(store.SetTenantQuota(9, 0).ok());
  ASSERT_TRUE(store.Start().ok());

  ShardRouter router(&store);
  QueryResult r = BlockingSubmit(
      &router, id.value(),
      ServeQuery::TwoSided(TwoSidedQuery{INT64_MIN, INT64_MIN}),
      /*deadline_micros=*/0, /*tenant=*/9);
  EXPECT_TRUE(r.status.IsOverloaded()) << r.status.ToString();
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_TRUE(r.shards[0].status.IsOverloaded());
  EXPECT_TRUE(r.shards[1].status.IsOverloaded());
  EXPECT_TRUE(r.points.empty());

  // An unconfigured tenant sails through on the same router.
  QueryResult ok = BlockingSubmit(
      &router, id.value(),
      ServeQuery::TwoSided(TwoSidedQuery{INT64_MIN, INT64_MIN}));
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.points.size(), pts.size());
  store.Stop();
}

// --- NetServer over a router: sharding is transparent on the wire ----------

TEST(ShardedNetTest, NetServerServesShardedStructuresTransparently) {
  ShardedStoreOptions sopts;
  sopts.shards = 4;
  sopts.pool_pages_total = 2048;
  ShardedTwin twin(sopts);

  PointGenOptions po;
  po.n = 1200;
  po.coord_max = 100'000;
  po.seed = 58;
  std::vector<Point> pts = GenPointsUniform(po);
  IntervalGenOptions io;
  io.n = 500;
  io.domain_max = 100'000;
  io.seed = 59;
  std::vector<Interval> ivs = GenIntervalsUniform(io);
  MakeEndpointsDistinct(&ivs);

  auto two = twin.AddTwoSided(pts);
  auto three = twin.AddThreeSided(pts);
  auto stab = twin.AddStabbing(ivs);
  ASSERT_TRUE(two.ok() && three.ok() && stab.ok());
  ASSERT_TRUE(twin.Start().ok());

  net::NetServer server(twin.router());
  ASSERT_TRUE(server.Start().ok());
  net::NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  auto expect_points = [&](uint32_t id, const ServeQuery& q) {
    QueryResult r = BlockingSubmit(twin.twin_engine(), id, q);
    EXPECT_TRUE(r.status.ok());
    Canonicalize(&r.points);
    return r.points;
  };

  // All five wire query kinds against the sharded back-end.
  std::vector<Point> got;
  ASSERT_TRUE(client.QueryTwoSided(two.value(), TwoSidedQuery{40'000, 40'000},
                                   &got)
                  .ok());
  EXPECT_EQ(got, expect_points(two.value(),
                               ServeQuery::TwoSided(TwoSidedQuery{40'000,
                                                                  40'000})));

  ASSERT_TRUE(client.QueryDiagonal(two.value(), 60'000, &got).ok());
  EXPECT_EQ(got, expect_points(
                     two.value(),
                     ServeQuery::TwoSided(DiagonalCornerQuery{60'000}
                                              .AsTwoSided())));

  ASSERT_TRUE(client.QueryThreeSided(three.value(),
                                     ThreeSidedQuery{20'000, 70'000, 30'000},
                                     &got)
                  .ok());
  EXPECT_EQ(got, expect_points(three.value(),
                               ServeQuery::ThreeSided(
                                   ThreeSidedQuery{20'000, 70'000, 30'000})));

  ASSERT_TRUE(client.QueryRange(three.value(),
                                RangeQuery{10'000, 90'000, 10'000, 60'000},
                                &got)
                  .ok());
  std::vector<Point> want = expect_points(
      three.value(),
      ServeQuery::ThreeSided(ThreeSidedQuery{10'000, 90'000, 10'000}));
  std::erase_if(want, [](const Point& p) { return p.y > 60'000; });
  EXPECT_EQ(got, want);

  std::vector<Interval> stabs;
  ASSERT_TRUE(client.QueryStab(stab.value(), 50'000, &stabs).ok());
  QueryResult sr =
      BlockingSubmit(twin.twin_engine(), stab.value(), ServeQuery::Stab(50'000));
  ASSERT_TRUE(sr.status.ok());
  Canonicalize(&sr.intervals);
  EXPECT_EQ(stabs, sr.intervals);

  server.Stop();
  twin.Stop();
}

TEST(ShardedNetTest, TenantQuotaSurfacesAsRetryAfterOnTheWire) {
  ShardedStoreOptions sopts;
  sopts.shards = 2;
  ShardedTwin twin(sopts);
  PointGenOptions po;
  po.n = 400;
  po.coord_max = 100'000;
  po.seed = 60;
  std::vector<Point> pts = GenPointsUniform(po);
  auto two = twin.AddTwoSided(pts);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(twin.store()->SetTenantQuota(3, 0).ok());  // shut out tenant 3
  ASSERT_TRUE(twin.Start().ok());

  net::NetServerOptions nopts;
  nopts.retry_after_micros = 555;
  net::NetServer server(twin.router(), nopts);
  ASSERT_TRUE(server.Start().ok());

  net::NetClient starved;
  ASSERT_TRUE(starved.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(starved.SetTenant(3).ok());
  net::Request req;
  req.type = net::MsgType::kQueryTwoSided;
  req.structure_id = two.value();
  net::Response resp;
  ASSERT_TRUE(starved.Call(req, &resp).ok());
  EXPECT_EQ(resp.type, net::MsgType::kRetryAfter);
  EXPECT_EQ(resp.retry_after_micros, 555u);

  // A quiet tenant on its own connection is untouched.
  net::NetClient quiet;
  ASSERT_TRUE(quiet.Connect("127.0.0.1", server.port()).ok());
  std::vector<Point> got;
  EXPECT_TRUE(quiet.QueryTwoSided(two.value(), TwoSidedQuery{0, 0}, &got).ok());

  server.Stop();
  twin.Stop();
}

}  // namespace
}  // namespace pathcache
