#include "incore/dynamic_pst.h"

#include <gtest/gtest.h>

#include <map>

#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

TEST(DynamicInCorePstTest, EmptyAndSingle) {
  DynamicPrioritySearchTree pst;
  std::vector<Point> out;
  pst.QueryTwoSided(0, 0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(pst.CheckInvariants(), "");

  pst.Insert({5, 7, 1});
  EXPECT_EQ(pst.size(), 1u);
  pst.QueryTwoSided(5, 7, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(pst.CheckInvariants(), "");
  EXPECT_TRUE(pst.Erase({5, 7, 1}));
  EXPECT_EQ(pst.size(), 0u);
  EXPECT_FALSE(pst.Erase({5, 7, 1}));
  EXPECT_EQ(pst.CheckInvariants(), "");
}

TEST(DynamicInCorePstTest, BulkBuildMatchesBruteForce) {
  PointGenOptions o;
  o.n = 5000;
  o.seed = 3;
  o.coord_max = 100'000;
  auto pts = GenPointsUniform(o);
  DynamicPrioritySearchTree pst(pts);
  EXPECT_EQ(pst.CheckInvariants(), "");

  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.1 + 0.2 * (i % 4), &rng);
    std::vector<Point> got;
    pst.QueryThreeSided(q.x_min, q.x_max, q.y_min, &got);
    ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q)));
  }
}

TEST(DynamicInCorePstTest, ReplaceSameKeyUpdatesY) {
  DynamicPrioritySearchTree pst;
  pst.Insert({10, 5, 7});
  pst.Insert({10, 99, 7});  // same (x, id): replace
  EXPECT_EQ(pst.CheckInvariants(), "");
  std::vector<Point> out;
  pst.QueryTwoSided(10, 50, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].y, 99);
}

struct ChurnCase {
  uint64_t n0;
  uint64_t ops;
  uint64_t seed;
  double insert_frac;
};

class DynamicInCoreChurn : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(DynamicInCoreChurn, MatchesOracle) {
  const auto& c = GetParam();
  PointGenOptions o;
  o.n = c.n0;
  o.seed = c.seed;
  o.coord_max = 50'000;
  auto pts = GenPointsUniform(o);
  DynamicPrioritySearchTree pst(pts);
  std::map<uint64_t, Point> oracle;
  for (const auto& p : pts) oracle[p.id] = p;

  Rng rng(c.seed ^ 0xBEEF);
  uint64_t next_id = 1'000'000;
  for (uint64_t op = 0; op < c.ops; ++op) {
    if (oracle.empty() || rng.Bernoulli(c.insert_frac)) {
      Point p{rng.UniformRange(0, 50'000), rng.UniformRange(0, 50'000),
              next_id++};
      pst.Insert(p);
      oracle[p.id] = p;
    } else {
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(oracle.size()));
      ASSERT_TRUE(pst.Erase(it->second)) << "op " << op;
      oracle.erase(it);
    }
    ASSERT_EQ(pst.size(), oracle.size());
    if (op % 151 == 0) {
      ASSERT_EQ(pst.CheckInvariants(), "") << "op " << op;
      int64_t x1 = rng.UniformRange(0, 50'000);
      int64_t x2 = x1 + rng.UniformRange(0, 20'000);
      int64_t ym = rng.UniformRange(0, 50'000);
      std::vector<Point> got;
      pst.QueryThreeSided(x1, x2, ym, &got);
      std::vector<Point> want;
      for (const auto& [id, p] : oracle) {
        if (p.x >= x1 && p.x <= x2 && p.y >= ym) want.push_back(p);
      }
      ASSERT_TRUE(SameResult(got, want)) << "op " << op;
    }
  }
  EXPECT_EQ(pst.CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicInCoreChurn,
    ::testing::Values(ChurnCase{0, 2000, 1, 1.0},
                      ChurnCase{500, 3000, 2, 0.5},
                      ChurnCase{2000, 4000, 3, 0.3},
                      ChurnCase{1000, 3000, 4, 0.7},
                      ChurnCase{5000, 5000, 5, 0.02}));

TEST(DynamicInCorePstTest, DeleteEverything) {
  PointGenOptions o;
  o.n = 2000;
  o.seed = 7;
  auto pts = GenPointsUniform(o);
  DynamicPrioritySearchTree pst(pts);
  Rng rng(9);
  std::vector<Point> shuffled = pts;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  for (const auto& p : shuffled) ASSERT_TRUE(pst.Erase(p));
  EXPECT_EQ(pst.size(), 0u);
  EXPECT_EQ(pst.CheckInvariants(), "");
}

TEST(DynamicInCorePstTest, RebalancingKeepsDepthLogarithmic) {
  // Sorted insertion is the classic scapegoat stressor.
  DynamicPrioritySearchTree pst;
  for (int64_t i = 0; i < 20000; ++i) {
    pst.Insert({i, i * 7 % 1000, static_cast<uint64_t>(i)});
  }
  EXPECT_EQ(pst.CheckInvariants(), "");
  EXPECT_GT(pst.rebuilds(), 0u);
  // Query correctness after heavy rebalancing.
  std::vector<Point> got;
  pst.QueryThreeSided(5000, 6000, 500, &got);
  size_t want = 0;
  for (int64_t i = 5000; i <= 6000; ++i) {
    if (i * 7 % 1000 >= 500) ++want;
  }
  EXPECT_EQ(got.size(), want);
}

TEST(DynamicInCorePstTest, DuplicateYValues) {
  DynamicPrioritySearchTree pst;
  for (uint64_t i = 0; i < 1000; ++i) {
    pst.Insert({static_cast<int64_t>(i), 42, i});
  }
  EXPECT_EQ(pst.CheckInvariants(), "");
  std::vector<Point> got;
  pst.QueryThreeSided(100, 199, 42, &got);
  EXPECT_EQ(got.size(), 100u);
  got.clear();
  pst.QueryThreeSided(100, 199, 43, &got);
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace pathcache
