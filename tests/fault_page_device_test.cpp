// FaultPageDevice schedule semantics and RetryPageDevice recovery.

#include "io/fault_page_device.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "io/mem_page_device.h"
#include "io/retry_page_device.h"

namespace pathcache {
namespace {

std::vector<std::byte> Pattern(uint32_t page_size, uint8_t seed) {
  std::vector<std::byte> buf(page_size);
  for (uint32_t i = 0; i < page_size; ++i) {
    buf[i] = static_cast<std::byte>((seed + i * 13) & 0xff);
  }
  return buf;
}

TEST(FaultPageDeviceTest, TransparentWithoutSchedule) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 1);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());
  std::vector<std::byte> back(512);
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), 512), 0);
  EXPECT_EQ(dev.fault_stats().total(), 0u);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
}

TEST(FaultPageDeviceTest, TransientReadFailureHitsExactOrdinal) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 2);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  dev.FailReadAt(1);  // second read only
  std::vector<std::byte> buf(512);
  EXPECT_TRUE(dev.Read(id.value(), buf.data()).ok());
  Status s = dev.Read(id.value(), buf.data());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_TRUE(dev.Read(id.value(), buf.data()).ok());
  EXPECT_EQ(dev.fault_stats().read_errors, 1u);
}

TEST(FaultPageDeviceTest, PersistentWriteFailureStaysDown) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 3);
  dev.FailWriteAt(1, /*persistent=*/true);
  EXPECT_TRUE(dev.Write(id.value(), data.data()).ok());
  EXPECT_EQ(dev.Write(id.value(), data.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(dev.Write(id.value(), data.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(dev.fault_stats().write_errors, 2u);
}

TEST(FaultPageDeviceTest, BitFlipCorruptsReturnedBufferOnly) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 4);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  dev.FlipBitOnReadAt(0, /*bit=*/7 * 8 + 2);
  std::vector<std::byte> flipped(512), clean(512);
  ASSERT_TRUE(dev.Read(id.value(), flipped.data()).ok());
  ASSERT_TRUE(dev.Read(id.value(), clean.data()).ok());
  EXPECT_EQ(std::memcmp(clean.data(), data.data(), 512), 0);
  EXPECT_EQ(flipped[7], data[7] ^ std::byte{0x04});
  flipped[7] = data[7];
  EXPECT_EQ(std::memcmp(flipped.data(), data.data(), 512), 0);
  EXPECT_EQ(dev.fault_stats().bit_flips, 1u);
}

TEST(FaultPageDeviceTest, TornWriteKeepsOldTail) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto old_data = Pattern(512, 5);
  ASSERT_TRUE(dev.Write(id.value(), old_data.data()).ok());

  dev.TearWriteAt(1, /*keep_bytes=*/100);
  auto new_data = Pattern(512, 6);
  ASSERT_TRUE(dev.Write(id.value(), new_data.data()).ok());  // reports OK

  std::vector<std::byte> back(512);
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), new_data.data(), 100), 0);
  EXPECT_EQ(std::memcmp(back.data() + 100, old_data.data() + 100, 412), 0);
  EXPECT_EQ(dev.fault_stats().torn_writes, 1u);
}

TEST(FaultPageDeviceTest, CrashPointDropsEveryLaterWrite) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto a = dev.Allocate();
  auto b = dev.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto first = Pattern(512, 7);
  auto second = Pattern(512, 8);
  dev.CrashAtWrite(1);
  ASSERT_TRUE(dev.Write(a.value(), first.data()).ok());
  EXPECT_FALSE(dev.crashed());
  ASSERT_TRUE(dev.Write(b.value(), second.data()).ok());  // dropped
  EXPECT_TRUE(dev.crashed());
  ASSERT_TRUE(dev.Write(a.value(), second.data()).ok());  // dropped too

  std::vector<std::byte> back(512);
  ASSERT_TRUE(dev.Read(a.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), first.data(), 512), 0);
  ASSERT_TRUE(dev.Read(b.value(), back.data()).ok());
  for (uint32_t i = 0; i < 512; ++i) EXPECT_EQ(back[i], std::byte{0});
  EXPECT_EQ(dev.fault_stats().dropped_writes, 2u);
  // Dropped writes still count as logical writes the caller issued.
  EXPECT_EQ(dev.stats().writes, 3u);
}

TEST(FaultPageDeviceTest, CorruptStoredBitMutatesMedia) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 9);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());
  ASSERT_TRUE(dev.CorruptStoredBit(id.value(), 3).ok());

  std::vector<std::byte> back(512);
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  EXPECT_EQ(back[0], data[0] ^ std::byte{0x08});
  EXPECT_EQ(dev.fault_stats().bit_flips, 1u);
}

TEST(FaultPageDeviceTest, ClearFaultsRestartsOrdinals) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 10);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  dev.FailReadAt(0, /*persistent=*/true);
  std::vector<std::byte> buf(512);
  EXPECT_FALSE(dev.Read(id.value(), buf.data()).ok());
  dev.ClearFaults();
  EXPECT_TRUE(dev.Read(id.value(), buf.data()).ok());  // consumes ordinal 0
  EXPECT_EQ(dev.fault_stats().total(), 0u);

  // Ordinals restarted at zero with ClearFaults; the read above was ordinal
  // 0, so a fresh fault at ordinal 1 hits the next read.
  dev.FailReadAt(1);
  EXPECT_FALSE(dev.Read(id.value(), buf.data()).ok());
}

TEST(FaultPageDeviceTest, ReadBatchAppliesPerPageFaults) {
  MemPageDevice mem(512);
  FaultPageDevice dev(&mem);
  auto a = dev.Allocate();
  auto b = dev.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto data = Pattern(512, 11);
  ASSERT_TRUE(dev.Write(a.value(), data.data()).ok());
  ASSERT_TRUE(dev.Write(b.value(), data.data()).ok());

  dev.FailReadAt(1);  // second page of the batch
  std::vector<std::byte> bufs(2 * 512);
  const PageId ids[] = {a.value(), b.value()};
  EXPECT_EQ(dev.ReadBatch(std::span<const PageId>(ids, 2), bufs.data()).code(),
            StatusCode::kIoError);
}

TEST(RetryPageDeviceTest, RecoversFromTransientReadError) {
  MemPageDevice mem(512);
  FaultPageDevice fault(&mem);
  RetryPageDevice dev(&fault);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 12);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  fault.FailReadAt(0);  // first inner read fails, the retry succeeds
  std::vector<std::byte> back(512);
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), 512), 0);
  EXPECT_EQ(dev.retries(), 1u);
  EXPECT_EQ(dev.recovered(), 1u);
  EXPECT_EQ(dev.exhausted(), 0u);
}

TEST(RetryPageDeviceTest, ExhaustsOnPersistentError) {
  MemPageDevice mem(512);
  FaultPageDevice fault(&mem);
  RetryOptions opts;
  opts.max_attempts = 3;
  RetryPageDevice dev(&fault, opts);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 13);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  fault.FailReadAt(0, /*persistent=*/true);
  std::vector<std::byte> back(512);
  EXPECT_EQ(dev.Read(id.value(), back.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(dev.retries(), 2u);  // 3 attempts = first try + 2 retries
  EXPECT_EQ(dev.exhausted(), 1u);
  EXPECT_EQ(dev.recovered(), 0u);
}

// Regression: the backoff used to compute `base_backoff_us << attempt`
// directly, which is undefined behavior once `attempt` reaches the bit
// width of the operand (attempt 79 here).  The shift must saturate to
// max_backoff_us instead.  With max_backoff_us = 0 every sleep is zero, so
// the 80 attempts run instantly and UBSan sees the full attempt range.
TEST(RetryPageDeviceTest, HighAttemptCountBackoffDoesNotOverflowShift) {
  MemPageDevice mem(512);
  FaultPageDevice fault(&mem);
  RetryOptions opts;
  opts.max_attempts = 80;
  opts.base_backoff_us = 1;
  opts.max_backoff_us = 0;
  RetryPageDevice dev(&fault, opts);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 15);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  fault.FailReadAt(0, /*persistent=*/true);
  std::vector<std::byte> back(512);
  EXPECT_EQ(dev.Read(id.value(), back.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(dev.retries(), 79u);  // 80 attempts = first try + 79 retries
  EXPECT_EQ(dev.exhausted(), 1u);
  EXPECT_EQ(dev.recovered(), 0u);
  EXPECT_EQ(fault.reads_seen(), 80u);  // every attempt reached the device
}

// The telemetry counters are relaxed atomics: sampling them from another
// thread while operations run must be race-free (this is what the obs
// exporter does).  Run under TSan in CI.
TEST(RetryPageDeviceTest, CountersAreSafeToSampleConcurrently) {
  MemPageDevice mem(512);
  FaultPageDevice fault(&mem);
  RetryOptions opts;
  opts.max_attempts = 2;
  RetryPageDevice dev(&fault, opts);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 16);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());
  for (int i = 0; i < 400; i += 2) fault.FailReadAt(uint64_t(i));

  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t r = dev.retries();
      EXPECT_GE(r, last);  // monotone under concurrent sampling
      last = r;
      (void)dev.recovered();
      (void)dev.exhausted();
    }
  });
  std::vector<std::byte> back(512);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  sampler.join();
  EXPECT_EQ(dev.retries(), 200u);
  EXPECT_EQ(dev.recovered(), 200u);
}

TEST(RetryPageDeviceTest, RecoversTransientWriteDuringBurst) {
  MemPageDevice mem(512);
  FaultPageDevice fault(&mem);
  RetryPageDevice dev(&fault);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 14);
  fault.FailWriteAt(0);
  fault.FailWriteAt(2);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());
  EXPECT_EQ(dev.recovered(), 2u);
  std::vector<std::byte> back(512);
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), 512), 0);
}

}  // namespace
}  // namespace pathcache
