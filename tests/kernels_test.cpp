// Differential tests for the in-page search kernels: every dispatch tier
// the CPU can run is forced in turn and checked bit-identical against the
// std algorithms (sorted-bound family) or the naive early-exit loop
// (first-match family), over exhaustive small inputs and randomized large
// ones — including unsorted "corrupt page" inputs for the first-match
// family, whose results must stay tier-independent on any bytes.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "io/aligned.h"
#include "io/crc32c.h"
#include "io/mem_page_device.h"
#include "kernels/dispatch.h"
#include "kernels/search.h"

namespace pathcache {
namespace {

using kernels::Tier;

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers{Tier::kScalar};
  const Tier best = kernels::DetectedTier();
  if (best == Tier::kNeon) tiers.push_back(Tier::kNeon);
  if (best == Tier::kSse2 || best == Tier::kAvx2) tiers.push_back(Tier::kSse2);
  if (best == Tier::kAvx2) tiers.push_back(Tier::kAvx2);
  return tiers;
}

// RAII so a failing assertion cannot leak a forced tier into later tests.
struct ForcedTier {
  explicit ForcedTier(Tier t) { kernels::ForceTier(t); }
  ~ForcedTier() { kernels::ResetTier(); }
};

struct KV {
  int64_t key;
  uint64_t value;
};
static_assert(sizeof(KV) == 16);

bool KVLess(const KV& a, const KV& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

struct Rec24 {
  int64_t lo;
  int64_t hi;
  uint64_t id;
};
static_assert(sizeof(Rec24) == 24);

TEST(KernelsDispatch, TierPlumbing) {
  kernels::ResetTier();
  EXPECT_LE(static_cast<int>(Tier::kScalar),
            static_cast<int>(kernels::DetectedTier()));
  // Without a force, the active tier never exceeds what the CPU offers
  // (the environment may pull it down, e.g. PATHCACHE_DISABLE_SIMD in CI).
  EXPECT_LE(static_cast<int>(kernels::ActiveTier()),
            static_cast<int>(kernels::DetectedTier()));
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    EXPECT_EQ(kernels::ActiveTier(), t) << kernels::TierName(t);
  }
  kernels::ResetTier();
  EXPECT_STREQ(kernels::TierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(kernels::TierName(Tier::kAvx2), "avx2");
}

TEST(KernelsSearch, LowerUpperBoundI64Exhaustive) {
  // Every sorted array over a 4-value alphabet up to n = 64 would be huge;
  // instead: for each n <= 64, many random sorted arrays with heavy
  // duplicates, probing every distinct value, its neighbors, and extremes.
  std::mt19937_64 rng(7);
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    for (size_t n = 0; n <= 64; ++n) {
      for (int rep = 0; rep < 8; ++rep) {
        std::vector<int64_t> a(n);
        for (auto& v : a) v = static_cast<int64_t>(rng() % 16) - 8;
        std::sort(a.begin(), a.end());
        std::vector<int64_t> probes{INT64_MIN, INT64_MAX, 0};
        for (int64_t v = -9; v <= 9; ++v) probes.push_back(v);
        for (int64_t key : probes) {
          const size_t lb_ref =
              std::lower_bound(a.begin(), a.end(), key) - a.begin();
          const size_t ub_ref =
              std::upper_bound(a.begin(), a.end(), key) - a.begin();
          ASSERT_EQ(kernels::LowerBoundI64(a.data(), n, key), lb_ref)
              << kernels::TierName(t) << " n=" << n << " key=" << key;
          ASSERT_EQ(kernels::UpperBoundI64(a.data(), n, key), ub_ref)
              << kernels::TierName(t) << " n=" << n << " key=" << key;
        }
      }
    }
  }
}

TEST(KernelsSearch, LowerUpperBoundI64Randomized) {
  std::mt19937_64 rng(11);
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    for (size_t n : {65u, 127u, 128u, 255u, 256u, 1000u, 4096u}) {
      std::vector<int64_t> a(n);
      for (auto& v : a) v = static_cast<int64_t>(rng() % 1000);
      std::sort(a.begin(), a.end());
      for (int rep = 0; rep < 200; ++rep) {
        const int64_t key = static_cast<int64_t>(rng() % 1100) - 50;
        const size_t lb_ref =
            std::lower_bound(a.begin(), a.end(), key) - a.begin();
        const size_t ub_ref =
            std::upper_bound(a.begin(), a.end(), key) - a.begin();
        ASSERT_EQ(kernels::LowerBoundI64(a.data(), n, key), lb_ref)
            << kernels::TierName(t) << " n=" << n;
        ASSERT_EQ(kernels::UpperBoundI64(a.data(), n, key), ub_ref)
            << kernels::TierName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelsSearch, LowerUpperBoundKV) {
  std::mt19937_64 rng(13);
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    for (size_t n : {0u, 1u, 2u, 3u, 15u, 16u, 17u, 64u, 333u, 1024u}) {
      std::vector<KV> a(n);
      for (auto& r : a) {
        r.key = static_cast<int64_t>(rng() % 64) - 32;
        // Values spanning the full unsigned range, including the sign-flip
        // boundary the SIMD compare has to get right.
        r.value = (rng() % 4 == 0) ? (UINT64_MAX - rng() % 3) : rng() % 8;
      }
      std::sort(a.begin(), a.end(), KVLess);
      for (int rep = 0; rep < 300; ++rep) {
        KV probe{static_cast<int64_t>(rng() % 70) - 35, rng() % 8};
        switch (rep % 4) {
          case 0:
            probe.value = 0;
            break;
          case 1:
            probe.value = UINT64_MAX;
            break;
          case 2:
            if (n > 0) probe = a[rng() % n];  // exact-hit probes
            break;
          default:
            break;
        }
        const size_t lb_ref =
            std::lower_bound(a.begin(), a.end(), probe, KVLess) - a.begin();
        const size_t ub_ref =
            std::upper_bound(a.begin(), a.end(), probe, KVLess) - a.begin();
        ASSERT_EQ(kernels::LowerBoundKV(a.data(), n, probe.key, probe.value),
                  lb_ref)
            << kernels::TierName(t) << " n=" << n;
        ASSERT_EQ(kernels::UpperBoundKV(a.data(), n, probe.key, probe.value),
                  ub_ref)
            << kernels::TierName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelsDispatch, KvBoundsImplTierTable) {
  // The interleaved KV bounds deliberately run scalar code on the 128-bit
  // tiers: the lexicographic predicate synthesized from SSE2/NEON's
  // narrower compares measured slower than branchless scalar at every size.
  // Pin the table so a regression quietly re-enabling those paths fails.
  EXPECT_EQ(kernels::KvBoundsImplTier(Tier::kScalar), Tier::kScalar);
  EXPECT_EQ(kernels::KvBoundsImplTier(Tier::kSse2), Tier::kScalar);
  EXPECT_EQ(kernels::KvBoundsImplTier(Tier::kNeon), Tier::kScalar);
  EXPECT_EQ(kernels::KvBoundsImplTier(Tier::kAvx2), Tier::kAvx2);
  // The packed (deinterleaved) bounds reuse each tier's dense I64 key
  // kernels, so every tier runs its own code — including SSE2/NEON.
  for (Tier t :
       {Tier::kScalar, Tier::kSse2, Tier::kNeon, Tier::kAvx2}) {
    EXPECT_EQ(kernels::KvPackedBoundsImplTier(t), t)
        << kernels::TierName(t);
  }
}

TEST(KernelsSearch, LowerUpperBoundKVPacked) {
  // The packed variants must agree bit-for-bit with the interleaved ones
  // (and hence with std::lower/upper_bound) on the same logical records, at
  // every tier, across the same value-boundary probes.
  std::mt19937_64 rng(29);
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    for (size_t n : {0u, 1u, 2u, 3u, 15u, 16u, 17u, 64u, 333u, 1024u}) {
      std::vector<KV> a(n);
      for (auto& r : a) {
        r.key = static_cast<int64_t>(rng() % 64) - 32;
        r.value = (rng() % 4 == 0) ? (UINT64_MAX - rng() % 3) : rng() % 8;
      }
      std::sort(a.begin(), a.end(), KVLess);
      std::vector<int64_t> keys(n);
      std::vector<uint64_t> vals(n);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = a[i].key;
        vals[i] = a[i].value;
      }
      for (int rep = 0; rep < 300; ++rep) {
        KV probe{static_cast<int64_t>(rng() % 70) - 35, rng() % 8};
        switch (rep % 4) {
          case 0:
            probe.value = 0;
            break;
          case 1:
            probe.value = UINT64_MAX;
            break;
          case 2:
            if (n > 0) probe = a[rng() % n];
            break;
          default:
            break;
        }
        const size_t lb_ref =
            std::lower_bound(a.begin(), a.end(), probe, KVLess) - a.begin();
        const size_t ub_ref =
            std::upper_bound(a.begin(), a.end(), probe, KVLess) - a.begin();
        ASSERT_EQ(kernels::LowerBoundKVPacked(keys.data(), vals.data(), n,
                                              probe.key, probe.value),
                  lb_ref)
            << kernels::TierName(t) << " n=" << n;
        ASSERT_EQ(kernels::UpperBoundKVPacked(keys.data(), vals.data(), n,
                                              probe.key, probe.value),
                  ub_ref)
            << kernels::TierName(t) << " n=" << n;
      }
      // Degenerate key runs stress the tie-break window: every key equal,
      // values ascending.
      std::fill(keys.begin(), keys.end(), int64_t{7});
      std::sort(vals.begin(), vals.end());
      for (size_t i = 0; i < n; ++i) a[i] = KV{7, vals[i]};
      for (int rep = 0; rep < 50; ++rep) {
        const uint64_t v = rep % 2 == 0 ? rng() % 10
                                        : UINT64_MAX - rng() % 3;
        const KV probe{7, v};
        const size_t lb_ref =
            std::lower_bound(a.begin(), a.end(), probe, KVLess) - a.begin();
        const size_t ub_ref =
            std::upper_bound(a.begin(), a.end(), probe, KVLess) - a.begin();
        ASSERT_EQ(
            kernels::LowerBoundKVPacked(keys.data(), vals.data(), n, 7, v),
            lb_ref)
            << kernels::TierName(t) << " n=" << n;
        ASSERT_EQ(
            kernels::UpperBoundKVPacked(keys.data(), vals.data(), n, 7, v),
            ub_ref)
            << kernels::TierName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelsSearch, UpperBoundKVStrided) {
  std::mt19937_64 rng(17);
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    for (size_t n : {0u, 1u, 2u, 7u, 64u, 341u}) {
      std::vector<Rec24> a(n);
      for (auto& r : a) {
        r.lo = static_cast<int64_t>(rng() % 50);
        r.hi = rng() % 5;  // acts as the value half of the ordering pair
        r.id = rng();
      }
      std::sort(a.begin(), a.end(), [](const Rec24& x, const Rec24& y) {
        if (x.lo != y.lo) return x.lo < y.lo;
        return static_cast<uint64_t>(x.hi) < static_cast<uint64_t>(y.hi);
      });
      for (int rep = 0; rep < 100; ++rep) {
        const int64_t k = static_cast<int64_t>(rng() % 55) - 2;
        const uint64_t v = rng() % 6;
        size_t ref = 0;
        while (ref < n &&
               (a[ref].lo < k ||
                (a[ref].lo == k && static_cast<uint64_t>(a[ref].hi) <= v))) {
          ++ref;
        }
        ASSERT_EQ(kernels::UpperBoundKVStrided(a.data(), sizeof(Rec24), n, k,
                                               v),
                  ref)
            << kernels::TierName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelsSearch, FindFirstOnAnyInput) {
  // The first-match family must return the literal first crossing index on
  // ANY bytes — unsorted inputs model corrupt pages, where every tier must
  // agree so counted I/O stays tier-independent.
  std::mt19937_64 rng(19);
  std::vector<std::byte> buf;
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    for (size_t stride : {8u, 16u, 24u, 32u}) {
      for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 63u, 64u, 65u, 500u}) {
        buf.assign(stride * n + 8, std::byte{0});
        for (size_t rep = 0; rep < 40; ++rep) {
          for (size_t i = 0; i < n; ++i) {
            const int64_t v = static_cast<int64_t>(rng() % 41) - 20;
            std::memcpy(buf.data() + i * stride, &v, sizeof(v));
          }
          const int64_t bound = static_cast<int64_t>(rng() % 45) - 22;
          size_t below_ref = n, above_ref = n;
          for (size_t i = 0; i < n; ++i) {
            int64_t v;
            std::memcpy(&v, buf.data() + i * stride, sizeof(v));
            if (below_ref == n && v < bound) below_ref = i;
            if (above_ref == n && v > bound) above_ref = i;
          }
          ASSERT_EQ(
              kernels::FindFirstBelow(buf.data(), stride, n, bound),
              below_ref)
              << kernels::TierName(t) << " stride=" << stride << " n=" << n;
          ASSERT_EQ(
              kernels::FindFirstAbove(buf.data(), stride, n, bound),
              above_ref)
              << kernels::TierName(t) << " stride=" << stride << " n=" << n;
        }
      }
    }
  }
}

TEST(KernelsSearch, AllContain24) {
  std::mt19937_64 rng(23);
  for (Tier t : AvailableTiers()) {
    ForcedTier force(t);
    for (size_t n : {0u, 1u, 3u, 4u, 5u, 170u}) {
      for (int rep = 0; rep < 60; ++rep) {
        std::vector<Rec24> recs(n);
        const int64_t q = static_cast<int64_t>(rng() % 100);
        bool ref = true;
        for (auto& r : recs) {
          // Mostly-containing records with occasional violations, so both
          // branches and the early exit get exercised.
          r.lo = q - static_cast<int64_t>(rng() % 10);
          r.hi = q + static_cast<int64_t>(rng() % 10);
          if (rng() % 8 == 0) r.lo = q + 1 + static_cast<int64_t>(rng() % 5);
          if (rng() % 8 == 0) r.hi = q - 1 - static_cast<int64_t>(rng() % 5);
          if (r.lo > q || r.hi < q) ref = false;
        }
        ASSERT_EQ(kernels::AllContain24(recs.data(), n, q), ref)
            << kernels::TierName(t) << " n=" << n;
      }
    }
  }
}

TEST(KernelsCrc32c, HardwareMatchesSoftware) {
  if (!kernels::HwCrc32cActive()) {
    GTEST_SKIP() << "hardware CRC32C not active on this host";
  }
  std::mt19937_64 rng(29);
  for (size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 63u, 64u, 100u, 4096u, 4097u}) {
    std::vector<unsigned char> data(len + 7);
    for (auto& b : data) b = static_cast<unsigned char>(rng());
    for (size_t off = 0; off < 3; ++off) {  // unaligned starts too
      // Software reference: slice-by-8 runs whenever the scalar tier is
      // forced (HwCrc32cActive() is false there).
      uint32_t sw, hw;
      {
        ForcedTier force(Tier::kScalar);
        sw = Crc32cFinish(Crc32cUpdate(Crc32cInit(), data.data() + off, len));
      }
      hw = Crc32cFinish(Crc32cUpdate(Crc32cInit(), data.data() + off, len));
      EXPECT_EQ(sw, hw) << "len=" << len << " off=" << off;
      // Mixed-stream: start in hardware, finish in software (or vice
      // versa); the register state must be interchangeable mid-stream.
      const size_t half = len / 2;
      uint32_t mixed = Crc32cUpdate(Crc32cInit(), data.data() + off, half);
      {
        ForcedTier force(Tier::kScalar);
        mixed = Crc32cUpdate(mixed, data.data() + off + half, len - half);
      }
      EXPECT_EQ(Crc32cFinish(mixed), sw) << "len=" << len;
    }
  }
}

TEST(KernelsCrc32c, KnownVectorsWithHardware) {
  // "123456789" -> 0xE3069283 is the canonical CRC32C check value; it must
  // hold no matter which implementation computes it.
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
  ForcedTier force(Tier::kScalar);
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
}

TEST(AlignedFrames, AllocPageFrameContract) {
  static_assert(kPageFrameAlign == 64);
  for (size_t n : {64u, 4096u, 8192u}) {
    PageFrame f = AllocPageFrame(n);
    ASSERT_NE(f.get(), nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(f.get()) % kPageFrameAlign, 0u);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(f[i], std::byte{0}) << "frame not zero-filled at " << i;
    }
  }
}

TEST(AlignedFrames, MemPageDeviceFramesAligned) {
  MemPageDevice dev(4096);
  for (int i = 0; i < 8; ++i) {
    auto id = dev.Allocate();
    ASSERT_TRUE(id.ok());
    auto pin = dev.Pin(id.value());
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(pin.value()) % kPageFrameAlign, 0u);
  }
}

}  // namespace
}  // namespace pathcache
