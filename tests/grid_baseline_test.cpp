#include "core/grid_baseline.h"

#include <gtest/gtest.h>

#include "core/pst_two_level.h"
#include "io/mem_page_device.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

TEST(GridBaselineTest, EmptyAndSingle) {
  MemPageDevice dev(4096);
  GridBaseline g(&dev);
  ASSERT_TRUE(g.Build({}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(g.QueryTwoSided({0, 0}, &out).ok());
  EXPECT_TRUE(out.empty());

  GridBaseline g1(&dev);
  ASSERT_TRUE(g1.Build({{7, 7, 1}}).ok());
  ASSERT_TRUE(g1.QueryTwoSided({7, 7}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  out.clear();
  ASSERT_TRUE(g1.QueryTwoSided({8, 0}, &out).ok());
  EXPECT_TRUE(out.empty());
}

struct GbCase {
  const char* dist;
  uint64_t n;
  uint64_t seed;
};

class GridBaselineSweep : public ::testing::TestWithParam<GbCase> {};

TEST_P(GridBaselineSweep, MatchesBruteForce) {
  const auto& c = GetParam();
  PointGenOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.coord_max = 200'000;
  std::vector<Point> pts;
  if (std::string(c.dist) == "uniform") {
    pts = GenPointsUniform(o);
  } else if (std::string(c.dist) == "clustered") {
    pts = GenPointsClustered(o, 4, 1000);
  } else {
    pts = GenPointsDiagonal(o, 100);
  }
  MemPageDevice dev(4096);
  GridBaseline g(&dev);
  ASSERT_TRUE(g.Build(pts).ok());

  Rng rng(c.seed ^ 0x61D);
  for (int i = 0; i < 25; ++i) {
    auto q2 = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(g.QueryTwoSided(q2, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q2)));

    auto q3 = SampleThreeSidedQuery(pts, 0.2, &rng);
    got.clear();
    ASSERT_TRUE(g.QueryThreeSided(q3, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q3)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridBaselineSweep,
                         ::testing::Values(GbCase{"uniform", 20000, 1},
                                           GbCase{"clustered", 20000, 2},
                                           GbCase{"diagonal", 20000, 3},
                                           GbCase{"uniform", 313, 4}));

// The Section 1 claim: heuristics lose their edge off their design point.
// Diagonal data is the classic grid killer — the points occupy only ~k of
// the k^2 cells, so every occupied cell holds ~B*k points and a selective
// corner query must scan a whole dense cell for a handful of results.
TEST(GridBaselineTest, DegradesOnDiagonalDataWherePstDoesNot) {
  PointGenOptions o;
  o.n = 100'000;
  o.seed = 7;
  o.coord_max = 1'000'000'000;
  auto pts = GenPointsDiagonal(o, 50'000);

  // Selective queries: corners at high diagonal ranks, t <= ~400.
  std::vector<int64_t> xs, ys;
  for (const auto& p : pts) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end(), std::greater<>());
  std::sort(ys.begin(), ys.end(), std::greater<>());
  std::vector<TwoSidedQuery> queries;
  for (uint64_t k = 50; k <= 800; k += 50) {
    queries.push_back(TwoSidedQuery{xs[k], ys[k]});
  }

  MemPageDevice dev_g(4096);
  GridBaseline grid(&dev_g);
  ASSERT_TRUE(grid.Build(pts).ok());
  MemPageDevice dev_p(4096);
  TwoLevelPst pst(&dev_p);
  ASSERT_TRUE(pst.Build(pts).ok());

  uint64_t grid_reads = 0, pst_reads = 0;
  for (const auto& q : queries) {
    std::vector<Point> a, b;
    dev_g.ResetStats();
    ASSERT_TRUE(grid.QueryTwoSided(q, &a).ok());
    grid_reads += dev_g.stats().reads;
    dev_p.ResetStats();
    ASSERT_TRUE(pst.QueryTwoSided(q, &b).ok());
    pst_reads += dev_p.stats().reads;
    ASSERT_TRUE(SameResult(a, b));
    EXPECT_LT(a.size(), 1000u);
  }
  // The heuristic pays for the dense diagonal cells; the worst-case-optimal
  // structure does not (at this n the occupied cells hold ~25 blocks each,
  // giving a >2x gap; it widens with n as cells get denser).
  EXPECT_GT(grid_reads, 2 * pst_reads);
}

}  // namespace
}  // namespace pathcache
