// WriteAheadLog unit tests: append/replay round trips, group atomicity
// under crashes and torn writes, truncation, and page accounting.  The WAL
// is the durability root of the dynamic-update layer, so these tests pin
// its contract precisely: a group is durable iff AppendGroup returned OK
// before the crash, and recovery never resurrects a discarded record.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dynamic/wal.h"
#include "io/fault_page_device.h"
#include "io/mem_page_device.h"

namespace pathcache {
namespace {

constexpr uint32_t kPageSize = 256;  // (256 - 32) / 40 = 5 slots per page

DynamicUpdate Ins(int64_t a, int64_t b, uint64_t id) {
  return DynamicUpdate{UpdateOp::kInsert, DynamicItem{a, b, id}};
}

DynamicUpdate Del(int64_t a, int64_t b, uint64_t id) {
  return DynamicUpdate{UpdateOp::kDelete, DynamicItem{a, b, id}};
}

std::vector<WriteAheadLog::ReplayedRecord> Reopen(PageDevice* dev, PageId head,
                                                  uint64_t absorbed) {
  std::vector<WriteAheadLog::ReplayedRecord> out;
  auto wal = WriteAheadLog::Open(dev, head, absorbed, &out);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return out;
}

TEST(WalTest, AppendReplayRoundTrip) {
  MemPageDevice mem(kPageSize);
  auto made = WriteAheadLog::Create(&mem);
  ASSERT_TRUE(made.ok());
  auto wal = std::move(made).value();

  std::vector<DynamicUpdate> g1 = {Ins(1, 2, 10), Del(3, 4, 11)};
  std::vector<DynamicUpdate> g2 = {Ins(5, 6, 12)};
  auto c1 = wal->AppendGroup(g1);
  ASSERT_TRUE(c1.ok());
  auto c2 = wal->AppendGroup(g2);
  ASSERT_TRUE(c2.ok());
  EXPECT_GT(c2.value(), c1.value());
  EXPECT_EQ(wal->last_committed_lsn(), c2.value());

  auto replayed = Reopen(&mem, wal->head(), 0);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0].op, UpdateOp::kInsert);
  EXPECT_EQ(replayed[0].item, (DynamicItem{1, 2, 10}));
  EXPECT_EQ(replayed[1].op, UpdateOp::kDelete);
  EXPECT_EQ(replayed[1].item, (DynamicItem{3, 4, 11}));
  EXPECT_EQ(replayed[2].item, (DynamicItem{5, 6, 12}));
  // LSNs strictly increase in log order.
  EXPECT_LT(replayed[0].lsn, replayed[1].lsn);
  EXPECT_LT(replayed[1].lsn, replayed[2].lsn);
}

TEST(WalTest, EmptyGroupRejected) {
  MemPageDevice mem(kPageSize);
  auto wal = std::move(WriteAheadLog::Create(&mem).value());
  EXPECT_FALSE(wal->AppendGroup({}).ok());
}

TEST(WalTest, AbsorbedLsnFiltersReplay) {
  MemPageDevice mem(kPageSize);
  auto wal = std::move(WriteAheadLog::Create(&mem).value());
  auto c1 = wal->AppendGroup(std::vector<DynamicUpdate>{Ins(1, 1, 1)});
  ASSERT_TRUE(c1.ok());
  auto c2 = wal->AppendGroup(std::vector<DynamicUpdate>{Ins(2, 2, 2)});
  ASSERT_TRUE(c2.ok());

  auto replayed = Reopen(&mem, wal->head(), c1.value());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].item, (DynamicItem{2, 2, 2}));
}

TEST(WalTest, MultiPageGroupsRollTheTail) {
  MemPageDevice mem(kPageSize);
  auto wal = std::move(WriteAheadLog::Create(&mem).value());
  // 12 records + commit = 13 slots over 5-slot pages: the tail rolls twice
  // inside one append.
  std::vector<DynamicUpdate> big;
  for (int i = 0; i < 12; ++i) big.push_back(Ins(i, i, 100 + i));
  ASSERT_TRUE(wal->AppendGroup(big).ok());
  EXPECT_GE(wal->chain_pages(), 3u);
  EXPECT_GE(wal->stats().pages_sealed, 2u);

  auto replayed = Reopen(&mem, wal->head(), 0);
  ASSERT_EQ(replayed.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(replayed[i].item, (DynamicItem{i, i, 100u + i}));
  }
}

// Power loss with a volatile write-back cache: a group whose commit Sync
// was swallowed by the crash must vanish atomically, while every earlier
// synced group survives.
TEST(WalTest, CrashAtCommitSyncDropsWholeGroup) {
  MemPageDevice mem(kPageSize);
  FaultPageDevice fault(&mem);
  fault.SetVolatileWrites(true);

  auto wal = std::move(WriteAheadLog::Create(&fault).value());
  auto c1 = wal->AppendGroup(std::vector<DynamicUpdate>{Ins(1, 1, 1)});
  ASSERT_TRUE(c1.ok());

  // The next Sync (group 2's commit barrier) triggers the crash.
  fault.CrashAtSync(fault.syncs_seen());
  auto c2 = wal->AppendGroup(
      std::vector<DynamicUpdate>{Ins(2, 2, 2), Ins(3, 3, 3)});
  ASSERT_TRUE(c2.ok());  // the device lied — that is the point
  ASSERT_TRUE(fault.crashed());

  // "Reboot": reopen from the raw surviving media.
  auto replayed = Reopen(&mem, wal->head(), 0);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].item, (DynamicItem{1, 1, 1}));
}

// A torn final write that keeps the group's records but loses the commit
// marker discards the whole group, and the next append after recovery
// physically overwrites the discarded bytes so no later state can
// resurrect them.
TEST(WalTest, TornCommitDiscardsGroupAndRecoveryOverwrites) {
  MemPageDevice mem(kPageSize);
  PageId head;
  {
    FaultPageDevice fault(&mem);
    auto wal = std::move(WriteAheadLog::Create(&fault).value());
    head = wal->head();
    ASSERT_TRUE(
        wal->AppendGroup(std::vector<DynamicUpdate>{Ins(1, 1, 1)}).ok());
    // Group 2 rewrites the tail page once: tear that write so only the
    // record slot lands and the commit slot keeps its old (zero) bytes.
    const uint32_t keep =
        sizeof(WalPageHeader) + 3 * sizeof(WalRecordDisk);  // slots 0..2
    fault.TearWriteAt(fault.writes_seen(), keep);
    ASSERT_TRUE(
        wal->AppendGroup(std::vector<DynamicUpdate>{Ins(2, 2, 2)}).ok());
    ASSERT_EQ(fault.fault_stats().torn_writes, 1u);
  }

  // Recovery: the torn group is gone.
  std::vector<WriteAheadLog::ReplayedRecord> committed;
  auto wal = WriteAheadLog::Open(&mem, head, 0, &committed);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].item, (DynamicItem{1, 1, 1}));
  EXPECT_GE(wal.value()->stats().replay_discarded, 1u);

  // Post-recovery append overwrites the torn bytes; a second recovery sees
  // group 1 + group 3 and nothing of the torn group 2.
  ASSERT_TRUE(wal.value()
                  ->AppendGroup(std::vector<DynamicUpdate>{Ins(9, 9, 9)})
                  .ok());
  auto replayed = Reopen(&mem, head, 0);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].item, (DynamicItem{1, 1, 1}));
  EXPECT_EQ(replayed[1].item, (DynamicItem{9, 9, 9}));
}

TEST(WalTest, TruncateThroughFreesAbsorbedPrefix) {
  MemPageDevice mem(kPageSize);
  auto wal = std::move(WriteAheadLog::Create(&mem).value());
  uint64_t mid = 0;
  for (int g = 0; g < 8; ++g) {
    auto c = wal->AppendGroup(
        std::vector<DynamicUpdate>{Ins(g, g, 100 + g), Ins(g, g, 200 + g)});
    ASSERT_TRUE(c.ok());
    if (g == 3) mid = c.value();
  }
  const uint64_t chain_before = wal->chain_pages();
  ASSERT_GT(chain_before, 2u);

  const PageId preview = wal->TruncatePreview(mid);
  auto new_head = wal->TruncateThrough(mid);
  ASSERT_TRUE(new_head.ok());
  EXPECT_EQ(preview, new_head.value());
  EXPECT_EQ(wal->head(), new_head.value());
  EXPECT_LT(wal->chain_pages(), chain_before);
  EXPECT_GT(wal->stats().pages_truncated, 0u);

  // Replay from the truncated head with the same watermark: exactly the
  // groups past `mid` survive (records <= mid on the kept boundary page are
  // filtered by the LSN watermark).
  auto replayed = Reopen(&mem, new_head.value(), mid);
  ASSERT_EQ(replayed.size(), 8u);  // groups 4..7, two records each
  EXPECT_EQ(replayed.front().item, (DynamicItem{4, 4, 104}));
  EXPECT_EQ(replayed.back().item, (DynamicItem{7, 7, 207}));
}

TEST(WalTest, DestroyFreesEveryPage) {
  MemPageDevice mem(kPageSize);
  {
    auto wal = std::move(WriteAheadLog::Create(&mem).value());
    for (int g = 0; g < 6; ++g) {
      ASSERT_TRUE(
          wal->AppendGroup(std::vector<DynamicUpdate>{Ins(g, g, 1u + g)})
              .ok());
    }
    ASSERT_TRUE(wal->TruncateThrough(wal->last_committed_lsn()).ok());
    ASSERT_TRUE(wal->Destroy().ok());
  }
  EXPECT_EQ(mem.live_pages(), 0u);
}

// Crash mid-append before any sync: with the write-back cache, nothing of
// the in-flight group reaches media, so recovery replays only the durable
// prefix — and the accounting sees zero discarded records (the group never
// touched the media image).
TEST(WalTest, CrashBeforeFirstSyncLosesNothingDurable) {
  MemPageDevice mem(kPageSize);
  FaultPageDevice fault(&mem);
  fault.SetVolatileWrites(true);
  auto wal = std::move(WriteAheadLog::Create(&fault).value());
  ASSERT_TRUE(wal->AppendGroup(std::vector<DynamicUpdate>{Ins(1, 1, 1)}).ok());
  fault.CrashAtWrite(fault.writes_seen());  // first write of the next group
  ASSERT_TRUE(wal->AppendGroup(std::vector<DynamicUpdate>{Ins(2, 2, 2)}).ok());
  ASSERT_TRUE(fault.crashed());

  auto replayed = Reopen(&mem, wal->head(), 0);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].item, (DynamicItem{1, 1, 1}));
}

}  // namespace
}  // namespace pathcache
