#include "btree/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "util/random.h"

namespace pathcache {
namespace {

struct EntryCmp {
  bool operator()(const BTreeEntry& a, const BTreeEntry& b) const {
    return EntryLess(a, b);
  }
};
using OracleSet = std::set<BTreeEntry, EntryCmp>;

std::vector<BTreeEntry> SortedEntries(uint64_t n, uint64_t seed = 1,
                                      int64_t key_span = 1'000'000) {
  Rng rng(seed);
  OracleSet set;
  while (set.size() < n) {
    set.insert({rng.UniformRange(0, key_span), rng.Next()});
  }
  return {set.begin(), set.end()};
}

TEST(BTreeTest, EmptyTree) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1u);
  bool found = true;
  uint64_t v;
  ASSERT_TRUE(t.Get(5, &v, &found).ok());
  EXPECT_FALSE(found);
  ASSERT_TRUE(t.CheckInvariants().ok());
}

TEST(BTreeTest, BulkLoadAndGet) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  auto entries = SortedEntries(10000);
  ASSERT_TRUE(t.BulkLoad(entries).ok());
  EXPECT_EQ(t.size(), entries.size());
  ASSERT_TRUE(t.CheckInvariants().ok());

  for (size_t i = 0; i < entries.size(); i += 97) {
    bool found = false;
    uint64_t v = 0;
    ASSERT_TRUE(t.Get(entries[i].key, &v, &found).ok());
    EXPECT_TRUE(found) << "key " << entries[i].key;
  }
  bool found = true;
  uint64_t v;
  ASSERT_TRUE(t.Get(-12345, &v, &found).ok());
  EXPECT_FALSE(found);
}

TEST(BTreeTest, BulkLoadRejectsUnsorted) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  std::vector<BTreeEntry> bad = {{5, 0}, {3, 0}};
  EXPECT_TRUE(t.BulkLoad(bad).IsInvalidArgument());
}

TEST(BTreeTest, BulkLoadRejectsNonEmptyTree) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  std::vector<BTreeEntry> e = {{1, 1}};
  EXPECT_EQ(t.BulkLoad(e).code(), StatusCode::kFailedPrecondition);
}

TEST(BTreeTest, RangeScanMatchesOracle) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  auto entries = SortedEntries(5000, 3);
  ASSERT_TRUE(t.BulkLoad(entries).ok());

  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    int64_t a = rng.UniformRange(0, 1'000'000);
    int64_t b = rng.UniformRange(0, 1'000'000);
    if (a > b) std::swap(a, b);
    std::vector<BTreeEntry> got;
    ASSERT_TRUE(t.RangeScan(a, b, &got).ok());
    std::vector<BTreeEntry> want;
    for (const auto& e : entries) {
      if (e.key >= a && e.key <= b) want.push_back(e);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(BTreeTest, InsertThenGetAll) {
  MemPageDevice dev(512);  // small pages to force a deep tree
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  auto entries = SortedEntries(2000, 7);
  // Insert in shuffled order.
  std::vector<BTreeEntry> shuffled = entries;
  Rng rng(11);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  for (const auto& e : shuffled) ASSERT_TRUE(t.Insert(e).ok());
  EXPECT_EQ(t.size(), entries.size());
  ASSERT_TRUE(t.CheckInvariants().ok());
  EXPECT_GT(t.height(), 2u);

  std::vector<BTreeEntry> all;
  ASSERT_TRUE(t.RangeScan(INT64_MIN, INT64_MAX, &all).ok());
  EXPECT_EQ(all, entries);
}

TEST(BTreeTest, DuplicateInsertRejected) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  ASSERT_TRUE(t.Insert({1, 2}).ok());
  EXPECT_TRUE(t.Insert({1, 2}).IsInvalidArgument());
  ASSERT_TRUE(t.Insert({1, 3}).ok());  // same key, new value is fine
  EXPECT_EQ(t.size(), 2u);
}

TEST(BTreeTest, DeleteMissingIsNotFound) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  ASSERT_TRUE(t.Insert({1, 1}).ok());
  EXPECT_TRUE(t.Delete({2, 2}).IsNotFound());
}

TEST(BTreeTest, MixedInsertDeleteAgainstOracle) {
  MemPageDevice dev(512);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  OracleSet oracle;
  Rng rng(13);

  for (int op = 0; op < 8000; ++op) {
    if (oracle.empty() || rng.Bernoulli(0.6)) {
      BTreeEntry e{rng.UniformRange(0, 5000), rng.Uniform(1 << 20)};
      if (oracle.insert(e).second) {
        ASSERT_TRUE(t.Insert(e).ok());
      } else {
        EXPECT_TRUE(t.Insert(e).IsInvalidArgument());
      }
    } else {
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(oracle.size()));
      ASSERT_TRUE(t.Delete(*it).ok()) << "op " << op;
      oracle.erase(it);
    }
    if (op % 500 == 0) {
      ASSERT_TRUE(t.CheckInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(t.CheckInvariants().ok());
  std::vector<BTreeEntry> all;
  ASSERT_TRUE(t.RangeScan(INT64_MIN, INT64_MAX, &all).ok());
  std::vector<BTreeEntry> want(oracle.begin(), oracle.end());
  EXPECT_EQ(all, want);
}

TEST(BTreeTest, DeleteDownToEmpty) {
  MemPageDevice dev(512);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  auto entries = SortedEntries(1000, 17);
  for (const auto& e : entries) ASSERT_TRUE(t.Insert(e).ok());
  Rng rng(19);
  std::vector<BTreeEntry> shuffled = entries;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  for (const auto& e : shuffled) ASSERT_TRUE(t.Delete(e).ok());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1u);
  ASSERT_TRUE(t.CheckInvariants().ok());
}

TEST(BTreeTest, PointQueryIoIsLogarithmic) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  auto entries = SortedEntries(200000, 23, 100'000'000);
  ASSERT_TRUE(t.BulkLoad(entries).ok());

  // The paper's Section 1 claim: key lookups in O(log_B n) I/Os.
  dev.ResetStats();
  bool found;
  uint64_t v;
  ASSERT_TRUE(t.Get(entries[12345].key, &v, &found).ok());
  EXPECT_TRUE(found);
  // height should be ~ log_B n; allow the +1 leaf-peek.
  uint64_t bound = CeilLogBase(entries.size(), t.leaf_capacity()) + 2;
  EXPECT_LE(dev.stats().reads, bound);
}

TEST(BTreeTest, RangeScanIoIsOutputSensitive) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  auto entries = SortedEntries(100000, 29, 100'000'000);
  ASSERT_TRUE(t.BulkLoad(entries).ok());

  dev.ResetStats();
  std::vector<BTreeEntry> got;
  ASSERT_TRUE(t.RangeScan(0, 50'000'000, &got).ok());
  // O(log_B n + t/B): generous constant of 3 on the t/B term (fill factor
  // ~0.9 plus partial boundary leaves).
  uint64_t bound = t.height() + 3 * CeilDiv(got.size(), t.leaf_capacity()) + 2;
  EXPECT_LE(dev.stats().reads, bound);
  EXPECT_GT(got.size(), 10000u);
}

TEST(BTreeTest, UpdateIoIsLogarithmic) {
  MemPageDevice dev(4096);
  BPlusTree t(&dev);
  auto entries = SortedEntries(100000, 31, 100'000'000);
  ASSERT_TRUE(t.BulkLoad(entries).ok());

  dev.ResetStats();
  Rng rng(37);
  const int kOps = 200;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        t.Insert({rng.UniformRange(0, 100'000'000), 1ULL << 40 | i}).ok());
  }
  // Amortized I/O per insert stays within a small multiple of the height.
  double per_op = static_cast<double>(dev.stats().total()) / kOps;
  EXPECT_LE(per_op, 4.0 * t.height() + 4);
}

TEST(BTreeTest, FindFloorBasics) {
  MemPageDevice dev(512);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  bool found;
  BTreeEntry e;
  ASSERT_TRUE(t.FindFloor(10, &e, &found).ok());
  EXPECT_FALSE(found);  // empty tree

  for (int64_t k : {10, 20, 30, 40}) ASSERT_TRUE(t.Insert({k, 0}).ok());
  ASSERT_TRUE(t.FindFloor(5, &e, &found).ok());
  EXPECT_FALSE(found);  // below the minimum
  ASSERT_TRUE(t.FindFloor(10, &e, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(e.key, 10);
  ASSERT_TRUE(t.FindFloor(25, &e, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(e.key, 20);
  ASSERT_TRUE(t.FindFloor(99, &e, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(e.key, 40);
}

TEST(BTreeTest, FindFloorAcrossLeafBoundaries) {
  MemPageDevice dev(512);  // small pages force many leaves
  BPlusTree t(&dev);
  auto entries = SortedEntries(3000, 43);
  ASSERT_TRUE(t.BulkLoad(entries).ok());
  Rng rng(47);
  for (int i = 0; i < 200; ++i) {
    int64_t key = rng.UniformRange(-10, 1'000'010);
    bool found;
    BTreeEntry e;
    ASSERT_TRUE(t.FindFloor(key, &e, &found).ok());
    // Oracle: last entry with key <= target.
    const BTreeEntry* want = nullptr;
    for (const auto& ent : entries) {
      if (ent.key <= key) want = &ent;
    }
    if (want == nullptr) {
      EXPECT_FALSE(found) << key;
    } else {
      ASSERT_TRUE(found) << key;
      EXPECT_EQ(e, *want) << key;
    }
  }
}

TEST(BTreeTest, FindFloorWithDuplicateKeys) {
  MemPageDevice dev(512);
  BPlusTree t(&dev);
  ASSERT_TRUE(t.Init().ok());
  for (uint64_t v = 0; v < 300; ++v) ASSERT_TRUE(t.Insert({7, v}).ok());
  bool found;
  BTreeEntry e;
  ASSERT_TRUE(t.FindFloor(7, &e, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(e.key, 7);
  EXPECT_EQ(e.value, 299u);  // the maximal (key, value) pair at this key
}

class BTreePageSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreePageSizeTest, WorksAcrossPageSizes) {
  MemPageDevice dev(GetParam());
  BPlusTree t(&dev);
  auto entries = SortedEntries(3000, 41);
  ASSERT_TRUE(t.BulkLoad(entries).ok());
  ASSERT_TRUE(t.CheckInvariants().ok());
  std::vector<BTreeEntry> all;
  ASSERT_TRUE(t.RangeScan(INT64_MIN, INT64_MAX, &all).ok());
  EXPECT_EQ(all, entries);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BTreePageSizeTest,
                         ::testing::Values(256, 512, 1024, 4096, 16384));

}  // namespace
}  // namespace pathcache
