#include "io/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "io/mem_page_device.h"

namespace pathcache {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPage = 256;
  MemPageDevice dev_{kPage};

  PageId MakePage(uint8_t fill) {
    PageId id = dev_.Allocate().value();
    std::vector<std::byte> buf(kPage);
    std::memset(buf.data(), fill, kPage);
    EXPECT_TRUE(dev_.Write(id, buf.data()).ok());
    return id;
  }
};

TEST_F(BufferPoolTest, SecondReadIsAHit) {
  PageId id = MakePage(0xAA);
  BufferPool pool(&dev_, 4);
  dev_.ResetStats();

  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{0xAA});
  EXPECT_EQ(dev_.stats().reads, 1u);  // only the miss touched the device
  EXPECT_EQ(pool.stats().reads, 2u);  // both logical reads counted
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(BufferPoolTest, LruEvictsColdest) {
  PageId a = MakePage(1), b = MakePage(2), c = MakePage(3);
  BufferPool pool(&dev_, 2);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());
  ASSERT_TRUE(pool.Read(b, buf.data()).ok());
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());  // refresh a
  ASSERT_TRUE(pool.Read(c, buf.data()).ok());  // evicts b
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 0u);  // a still cached
  ASSERT_TRUE(pool.Read(b, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 1u);  // b was evicted
}

TEST_F(BufferPoolTest, WriteThroughKeepsDeviceCurrent) {
  PageId id = MakePage(0);
  BufferPool pool(&dev_, 2);
  std::vector<std::byte> buf(kPage);
  std::memset(buf.data(), 0x5C, kPage);
  ASSERT_TRUE(pool.Write(id, buf.data()).ok());

  // Read directly from the device, bypassing the pool.
  std::vector<std::byte> direct(kPage);
  ASSERT_TRUE(dev_.Read(id, direct.data()).ok());
  EXPECT_EQ(direct[0], std::byte{0x5C});

  // And the pool serves the new data from cache.
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{0x5C});
  EXPECT_EQ(dev_.stats().reads, 0u);
}

TEST_F(BufferPoolTest, ZeroCapacityPassesThrough) {
  PageId id = MakePage(0x77);
  BufferPool pool(&dev_, 0);
  std::vector<std::byte> buf(kPage);
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 2u);
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(BufferPoolTest, ClearDropsFrames) {
  PageId id = MakePage(0x10);
  BufferPool pool(&dev_, 4);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  pool.Clear();
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 1u);
}

TEST_F(BufferPoolTest, FreeInvalidatesFrame) {
  PageId id = MakePage(0x42);
  BufferPool pool(&dev_, 4);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  ASSERT_TRUE(pool.Free(id).ok());
  EXPECT_TRUE(pool.Read(id, buf.data()).IsCorruption());
}

TEST_F(BufferPoolTest, ErrorFromInnerPropagates) {
  PageId id = MakePage(0x01);
  BufferPool pool(&dev_, 4);
  std::vector<std::byte> buf(kPage);
  dev_.InjectFailureAfter(0);
  EXPECT_TRUE(pool.Read(id, buf.data()).IsIoError());
  dev_.InjectFailureAfter(-1);
  // Failure must not have poisoned the cache with garbage.
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{0x01});
}

TEST_F(BufferPoolTest, AllocateDelegates) {
  BufferPool pool(&dev_, 4);
  auto r = pool.Allocate();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(dev_.live_pages(), 1u);
  EXPECT_EQ(pool.page_size(), kPage);
}

TEST_F(BufferPoolTest, EvictionAtExactCapacityBoundary) {
  // Filling the pool to exactly its capacity must not evict anything; the
  // (capacity+1)-th distinct page evicts exactly one frame.
  PageId a = MakePage(1), b = MakePage(2), c = MakePage(3), d = MakePage(4);
  BufferPool pool(&dev_, 3);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());
  ASSERT_TRUE(pool.Read(b, buf.data()).ok());
  ASSERT_TRUE(pool.Read(c, buf.data()).ok());
  EXPECT_EQ(pool.cached_pages(), 3u);
  dev_.ResetStats();
  // All three still resident — no premature eviction at the boundary.
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());
  ASSERT_TRUE(pool.Read(b, buf.data()).ok());
  ASSERT_TRUE(pool.Read(c, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 0u);
  // One more distinct page: size stays pinned at capacity.
  ASSERT_TRUE(pool.Read(d, buf.data()).ok());
  EXPECT_EQ(pool.cached_pages(), 3u);
}

TEST_F(BufferPoolTest, ClearLeavesStatsUntouchedUntilResetStats) {
  PageId id = MakePage(0x21);
  BufferPool pool(&dev_, 4);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());  // miss
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());  // hit
  pool.Clear();
  // Contract: Clear drops frames but keeps every counter.
  EXPECT_EQ(pool.stats().reads, 2u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  // The re-read after Clear is a miss and counts as one.
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(pool.misses(), 2u);
  pool.ClearAndResetStats();
  EXPECT_EQ(pool.stats().reads, 0u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(BufferPoolTest, ReadBatchCountsMatchSingleReads) {
  // A batch through the pool must count exactly like the same sequence of
  // single reads: one logical read per page, hits for resident pages.
  PageId a = MakePage(1), b = MakePage(2), c = MakePage(3);
  BufferPool pool(&dev_, 4);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(b, buf.data()).ok());  // b resident
  dev_.ResetStats();
  pool.ResetStats();

  std::vector<PageId> batch{a, b, c};
  std::vector<std::byte> bufs(batch.size() * kPage);
  ASSERT_TRUE(pool.ReadBatch(batch, bufs.data()).ok());
  EXPECT_EQ(pool.stats().reads, 3u);
  EXPECT_EQ(pool.hits(), 1u);    // b
  EXPECT_EQ(pool.misses(), 2u);  // a, c
  EXPECT_EQ(dev_.stats().reads, 2u);  // only misses reach the device
  // Data is correct per slot.
  EXPECT_EQ(bufs[0], std::byte{1});
  EXPECT_EQ(bufs[kPage], std::byte{2});
  EXPECT_EQ(bufs[2 * kPage], std::byte{3});
  // And everything is now resident.
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());
  ASSERT_TRUE(pool.Read(c, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 0u);
}

TEST_F(BufferPoolTest, ReadBatchWithDuplicateIdsStaysCorrect) {
  PageId a = MakePage(0xA1), b = MakePage(0xB2);
  BufferPool pool(&dev_, 4);
  std::vector<PageId> batch{a, b, a};
  std::vector<std::byte> bufs(batch.size() * kPage);
  ASSERT_TRUE(pool.ReadBatch(batch, bufs.data()).ok());
  EXPECT_EQ(bufs[0], std::byte{0xA1});
  EXPECT_EQ(bufs[kPage], std::byte{0xB2});
  EXPECT_EQ(bufs[2 * kPage], std::byte{0xA1});
  EXPECT_EQ(pool.stats().reads, 3u);
}

TEST_F(BufferPoolTest, PinCountsLikeReadAndReturnsStableData) {
  PageId id = MakePage(0x3D);
  BufferPool pool(&dev_, 4);
  auto p = pool.Pin(id);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()[0], std::byte{0x3D});
  EXPECT_EQ(pool.stats().reads, 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.pinned_pages(), 1u);
  // A second pin on the resident frame is a hit on the same pointer.
  auto p2 = pool.Pin(id);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.value(), p.value());
  EXPECT_EQ(pool.hits(), 1u);
  pool.Unpin(id);
  EXPECT_EQ(pool.pinned_pages(), 1u);  // pins nest
  pool.Unpin(id);
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST_F(BufferPoolTest, PinnedFrameSurvivesEvictionPressureAndClear) {
  PageId a = MakePage(0xA0);
  BufferPool pool(&dev_, 2);
  auto p = pool.Pin(a);
  ASSERT_TRUE(p.ok());
  const std::byte* stable = p.value();

  // Churn far more distinct pages than the capacity through the pool; the
  // pinned frame must never be picked by the eviction scan.
  std::vector<std::byte> buf(kPage);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Read(MakePage(uint8_t(i + 1)), buf.data()).ok());
  }
  EXPECT_EQ(stable[0], std::byte{0xA0});
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 0u);  // still resident

  // Clear() drops everything except the pinned frame.
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 1u);
  EXPECT_EQ(stable[0], std::byte{0xA0});
  pool.Unpin(a);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(BufferPoolTest, FreeOfPinnedPageFails) {
  PageId id = MakePage(0x66);
  BufferPool pool(&dev_, 4);
  ASSERT_TRUE(pool.Pin(id).ok());
  EXPECT_EQ(pool.Free(id).code(), StatusCode::kFailedPrecondition);
  pool.Unpin(id);
  EXPECT_TRUE(pool.Free(id).ok());
}

TEST_F(BufferPoolTest, ZeroCapacityPinNotSupported) {
  PageId id = MakePage(0x01);
  BufferPool pool(&dev_, 0);
  EXPECT_EQ(pool.Pin(id).status().code(), StatusCode::kNotSupported);
}

TEST_F(BufferPoolTest, PagePinFallsBackOnNonPinningDevice) {
  // A zero-capacity pool refuses Pin; PagePin must transparently fall back
  // to a counted Read() and still expose the bytes.
  PageId id = MakePage(0x5A);
  BufferPool pool(&dev_, 0);
  dev_.ResetStats();
  PagePin pin;
  ASSERT_TRUE(pin.Load(&pool, id).ok());
  EXPECT_EQ(pin.data()[0], std::byte{0x5A});
  EXPECT_EQ(dev_.stats().reads, 1u);
  // Second load reuses the cached NotSupported verdict — still one read.
  PageId id2 = MakePage(0x5B);
  ASSERT_TRUE(pin.Load(&pool, id2).ok());
  EXPECT_EQ(pin.data()[0], std::byte{0x5B});
  EXPECT_EQ(dev_.stats().reads, 2u);
}

}  // namespace
}  // namespace pathcache
