// QueryEngine x DynamicStore integration: dynamic queries through the
// engine match the merge oracle, SubmitUpdate groups are durable and
// atomically visible, static structures reject updates, and — the
// acceptance-criteria test — concurrent readers racing background rebuilds
// and publishes always see answers a serial merge would have produced.
// serve_test's TSan CI job covers this binary too, so the concurrency test
// doubles as the data-race probe for the epoch pin / publish / reopen path.

#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "dynamic/dynamic_store.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "obs/promlint.h"
#include "serve/serve_metrics.h"
#include "util/random.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

DynamicItem PointItem(int64_t x, int64_t y, uint64_t id) {
  return DynamicItem{x, y, id};
}

std::vector<DynamicItem> GridPoints(int n, int64_t coord_max, uint64_t seed) {
  Rng rng(seed);
  std::vector<DynamicItem> items;
  items.reserve(n);
  for (int i = 0; i < n; ++i) {
    items.push_back(PointItem(rng.UniformRange(0, coord_max),
                              rng.UniformRange(0, coord_max), i));
  }
  return items;
}

std::vector<Point> ToPoints(const std::vector<DynamicItem>& items) {
  std::vector<Point> pts;
  pts.reserve(items.size());
  for (const auto& i : items) pts.push_back(i.ToPoint());
  return pts;
}

QueryResult SubmitAndWait(QueryEngine* engine, uint32_t id,
                          const ServeQuery& q) {
  std::promise<QueryResult> done;
  auto fut = done.get_future();
  Status s = engine->Submit(
      id, q, [&done](QueryResult r) { done.set_value(std::move(r)); });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return fut.get();
}

QueryResult SubmitUpdateAndWait(QueryEngine* engine, uint32_t id,
                                std::span<const DynamicUpdate> updates) {
  std::promise<QueryResult> done;
  auto fut = done.get_future();
  Status s = engine->SubmitUpdate(
      id, updates, [&done](QueryResult r) { done.set_value(std::move(r)); });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return fut.get();
}

TEST(DynamicServeTest, DynamicQueriesMatchMergeOracle) {
  MemPageDevice mem(4096);
  SharedBufferPool pool(&mem, 4096);
  const int64_t coord_max = 100'000;
  auto initial = GridPoints(3000, coord_max, 11);
  auto store = std::move(
      DynamicStore::Create(&pool, DynamicStructure::kExternalPst, initial)
          .value());
  // Leave some updates unabsorbed so the engine path exercises the overlay
  // merge, not just the base structure.
  std::vector<Point> model = ToPoints(initial);
  for (uint64_t i = 0; i < 40; ++i) {
    const DynamicItem extra =
        PointItem(int64_t(i) * 977 % coord_max, int64_t(i) * 643 % coord_max,
                  10'000 + i);
    ASSERT_TRUE(store->Insert(extra).ok());
    model.push_back(extra.ToPoint());
  }
  ASSERT_TRUE(store->Erase(initial[7]).ok());
  model.erase(model.begin() + 7);

  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 1024;
  QueryEngine engine(&pool, opts);
  auto id = engine.AddDynamicStore(store.get());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(engine.structure_dynamic(id.value()));
  EXPECT_EQ(engine.structure_kind(id.value()), QueryKind::kTwoSided);
  ASSERT_TRUE(engine.Start().ok());

  Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    const TwoSidedQuery q{rng.UniformRange(0, coord_max),
                          rng.UniformRange(0, coord_max)};
    QueryResult r = SubmitAndWait(&engine, id.value(), ServeQuery::TwoSided(q));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(SameResult(r.points, BruteTwoSided(model, q)));
  }
  engine.Stop();
  ASSERT_TRUE(store->Destroy().ok());
}

TEST(DynamicServeTest, UpdatesThroughEngineAreAppliedAndCounted) {
  MemPageDevice mem(4096);
  SharedBufferPool pool(&mem, 2048);
  auto store = std::move(
      DynamicStore::Create(&pool, DynamicStructure::kExternalPst,
                           GridPoints(500, 10'000, 3))
          .value());
  std::vector<Point> model = ToPoints(GridPoints(500, 10'000, 3));

  QueryEngine engine(&pool, {});
  auto id = engine.AddDynamicStore(store.get());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start().ok());

  // One group of three mutations, applied atomically.
  std::vector<DynamicUpdate> group = {
      {UpdateOp::kInsert, PointItem(1, 1, 9001)},
      {UpdateOp::kInsert, PointItem(2, 2, 9002)},
      {UpdateOp::kDelete, DynamicItem::From(model[0])},
  };
  QueryResult ur = SubmitUpdateAndWait(&engine, id.value(), group);
  ASSERT_TRUE(ur.status.ok()) << ur.status.ToString();
  model.push_back(Point{1, 1, 9001});
  model.push_back(Point{2, 2, 9002});
  model.erase(model.begin());

  const TwoSidedQuery q{0, 0};
  QueryResult r = SubmitAndWait(&engine, id.value(), ServeQuery::TwoSided(q));
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(SameResult(r.points, BruteTwoSided(model, q)));

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.update_groups, 1u);
  EXPECT_EQ(stats.updates_applied, 3u);
  EXPECT_EQ(stats.update_failures, 0u);

  // The metrics adapter exports the new counters and stays lint-clean.
  MetricsRegistry reg;
  ASSERT_TRUE(RegisterServeMetrics(&reg, "main", &engine).ok());
  std::string prom;
  reg.WritePrometheus(&prom);
  EXPECT_NE(prom.find("pathcache_serve_updates_applied_total"),
            std::string::npos);
  EXPECT_NE(prom.find("pathcache_serve_read_repins_total"), std::string::npos);
  EXPECT_TRUE(PrometheusLint(prom).ok());

  engine.Stop();
  ASSERT_TRUE(store->Destroy().ok());
}

TEST(DynamicServeTest, StaticStructuresRejectUpdates) {
  MemPageDevice mem(4096);
  SharedBufferPool pool(&mem, 1024);
  // A dynamic store used only to mint a static manifest for AddStructure.
  auto store = std::move(
      DynamicStore::Create(&pool, DynamicStructure::kExternalPst,
                           GridPoints(200, 10'000, 5))
          .value());
  GenerationRef ref = store->PinCurrent();
  QueryEngine engine(&pool, {});
  auto static_id = engine.AddStructure(ref.manifest);
  ASSERT_TRUE(static_id.ok()) << static_id.status().ToString();
  EXPECT_FALSE(engine.structure_dynamic(static_id.value()));
  ASSERT_TRUE(engine.Start().ok());

  DynamicUpdate u{UpdateOp::kInsert, PointItem(1, 1, 1)};
  Status s = engine.SubmitUpdate(static_id.value(), {&u, 1},
                                 [](QueryResult) {});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // Empty groups are rejected up front too.
  Status e = engine.SubmitUpdate(static_id.value(), {}, [](QueryResult) {});
  EXPECT_FALSE(e.ok());

  engine.Stop();
  store->Unpin(ref.version);
  ASSERT_TRUE(store->Destroy().ok());
}

// The acceptance-criteria race test: readers stream queries while a mutator
// applies insert-only groups (pairs) and forces publishes.  Every answer
// must be one a serial merge could have produced:
//   * sandwich — result superset of the initial model's answer and subset
//     of the final model's answer (insert-only workload, so visibility is
//     monotone);
//   * group atomicity — inserted pairs become visible together, never split
//     (an odd count of mutable-range points would mean a torn group or a
//     half-published generation).
// After the mutator finishes and the queue drains, answers must equal the
// final model exactly.
TEST(DynamicServeTest, ConcurrentReadersDuringRebuildsMatchSerialOracle) {
  MemPageDevice mem(4096);
  SharedBufferPool pool(&mem, 8192);
  const int64_t coord_max = 50'000;
  auto initial = GridPoints(2000, coord_max, 21);
  DynamicStoreOptions sopts;
  sopts.rebuild_threshold = 64;   // publishes keep happening mid-stream
  sopts.background_rebuild = true;
  auto store = std::move(DynamicStore::Create(&pool,
                                              DynamicStructure::kExternalPst,
                                              initial, sopts)
                             .value());

  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 8192;
  QueryEngine engine(&pool, opts);
  auto id_r = engine.AddDynamicStore(store.get());
  ASSERT_TRUE(id_r.ok());
  const uint32_t id = id_r.value();
  ASSERT_TRUE(engine.Start().ok());

  // Mutable records all live at ids >= kMutableBase, inserted in pairs.
  constexpr uint64_t kMutableBase = 1'000'000;
  constexpr int kPairs = 150;
  std::vector<Point> final_model = ToPoints(initial);
  std::vector<DynamicUpdate> all_groups;
  for (int p = 0; p < kPairs; ++p) {
    final_model.push_back(
        Point{(p * 613) % coord_max, (p * 401) % coord_max,
              kMutableBase + 2 * uint64_t(p)});
    final_model.push_back(
        Point{(p * 769) % coord_max, (p * 283) % coord_max,
              kMutableBase + 2 * uint64_t(p) + 1});
  }
  const std::vector<Point> initial_model = ToPoints(initial);

  std::atomic<bool> failed{false};
  std::mutex fail_mu;
  std::string first_failure;
  auto record_failure = [&](std::string why) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lk(fail_mu);
      first_failure = std::move(why);
    }
  };

  // Readers: full-range and random queries checked for the sandwich +
  // atomicity invariants inside the completion callback.
  std::atomic<uint64_t> checked{0};
  auto make_checker = [&](TwoSidedQuery q) {
    return [&, q](QueryResult r) {
      if (!r.status.ok()) {
        record_failure("query failed: " + r.status.ToString());
        return;
      }
      const std::vector<Point> lo = BruteTwoSided(initial_model, q);
      const std::vector<Point> hi = BruteTwoSided(final_model, q);
      if (r.points.size() < lo.size() || r.points.size() > hi.size()) {
        record_failure("answer size outside [initial, final] envelope");
        return;
      }
      uint64_t mutable_seen = 0;
      for (const Point& p : r.points) {
        if (p.id >= kMutableBase) ++mutable_seen;
      }
      if (q.x_min == 0 && q.y_min == 0 && mutable_seen % 2 != 0) {
        record_failure("odd mutable count: a group was half-visible");
        return;
      }
      checked.fetch_add(1, std::memory_order_relaxed);
    };
  };

  std::thread reader([&] {
    Rng rng(77);
    for (int i = 0; i < 600 && !failed.load(); ++i) {
      TwoSidedQuery q{0, 0};
      if (i % 3 != 0) {
        q = TwoSidedQuery{rng.UniformRange(0, coord_max),
                          rng.UniformRange(0, coord_max)};
      }
      Status s = engine.Submit(id, ServeQuery::TwoSided(q), make_checker(q));
      if (!s.ok()) record_failure("Submit: " + s.ToString());
    }
  });

  // Mutator: pairs through SubmitUpdate, explicit publishes sprinkled in.
  std::thread mutator([&] {
    for (int p = 0; p < kPairs && !failed.load(); ++p) {
      std::vector<DynamicUpdate> group = {
          {UpdateOp::kInsert,
           PointItem((p * 613) % coord_max, (p * 401) % coord_max,
                     kMutableBase + 2 * uint64_t(p))},
          {UpdateOp::kInsert,
           PointItem((p * 769) % coord_max, (p * 283) % coord_max,
                     kMutableBase + 2 * uint64_t(p) + 1)},
      };
      QueryResult r = SubmitUpdateAndWait(&engine, id, group);
      if (!r.status.ok()) {
        record_failure("update failed: " + r.status.ToString());
      }
      if (p % 40 == 17) {
        Status s = store->Rebuild();
        if (!s.ok()) record_failure("Rebuild: " + s.ToString());
      }
    }
  });

  reader.join();
  mutator.join();
  engine.Drain();
  ASSERT_TRUE(store->WaitForRebuild().ok());
  ASSERT_FALSE(failed.load()) << first_failure;
  EXPECT_GT(checked.load(), 0u);

  // Quiesced: the engine's answer is exactly the serial merge of every
  // applied update.
  const TwoSidedQuery all{0, 0};
  QueryResult r = SubmitAndWait(&engine, id, ServeQuery::TwoSided(all));
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(SameResult(r.points, BruteTwoSided(final_model, all)))
      << "got " << r.points.size() << " points, expected "
      << BruteTwoSided(final_model, all).size();

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.update_groups, uint64_t(kPairs));
  EXPECT_EQ(stats.updates_applied, uint64_t(2 * kPairs));
  EXPECT_EQ(stats.update_failures, 0u);

  engine.Stop();
  ASSERT_TRUE(store->Destroy().ok());
}

// Stabbing-kind stores ride the same engine paths.
TEST(DynamicServeTest, DynamicIntervalStoreThroughEngine) {
  MemPageDevice mem(4096);
  SharedBufferPool pool(&mem, 2048);
  std::vector<DynamicItem> initial;
  for (uint64_t i = 0; i < 300; ++i) {
    const int64_t lo = int64_t(i) * 3;
    initial.push_back(DynamicItem{lo, lo + 1 + int64_t(i % 50), i});
  }
  auto store = std::move(
      DynamicStore::Create(&pool, DynamicStructure::kExtIntervalTree, initial)
          .value());
  std::vector<Interval> model;
  for (const auto& i : initial) model.push_back(i.ToInterval());

  QueryEngine engine(&pool, {});
  auto id = engine.AddDynamicStore(store.get());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.structure_kind(id.value()), QueryKind::kStabbing);
  ASSERT_TRUE(engine.Start().ok());

  DynamicUpdate u{UpdateOp::kInsert, DynamicItem{2, 2000, 9000}};
  QueryResult ur = SubmitUpdateAndWait(&engine, id.value(), {&u, 1});
  ASSERT_TRUE(ur.status.ok());
  model.push_back(Interval{2, 2000, 9000});

  Rng rng(13);
  for (int i = 0; i < 32; ++i) {
    const int64_t q = rng.UniformRange(0, 1000);
    QueryResult r = SubmitAndWait(&engine, id.value(), ServeQuery::Stab(q));
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(SameResult(r.intervals, BruteStab(model, q)));
  }
  engine.Stop();
  ASSERT_TRUE(store->Destroy().ok());
}

}  // namespace
}  // namespace pathcache
