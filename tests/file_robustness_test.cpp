// FilePageDevice failure paths against a real filesystem: truncated stores,
// short reads, and the File -> Checksum / File -> Retry stacks.

#include "io/file_page_device.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "io/checksum_page_device.h"
#include "io/fault_page_device.h"
#include "io/retry_page_device.h"

namespace pathcache {
namespace {

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::byte> Pattern(uint32_t page_size, uint8_t seed) {
  std::vector<std::byte> buf(page_size);
  for (uint32_t i = 0; i < page_size; ++i) {
    buf[i] = static_cast<std::byte>((seed + i * 13) & 0xff);
  }
  return buf;
}

TEST(FileRobustnessTest, OpenRejectsTruncatedStore) {
  const std::string path = TmpPath("pc_truncated.db");
  {
    auto r = FilePageDevice::Create(path, 512);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value()->Allocate().ok());
    ASSERT_TRUE(r.value()->Allocate().ok());
  }
  ASSERT_EQ(::truncate(path.c_str(), 2 * 512 - 100), 0);
  auto bad = FilePageDevice::Open(path, 512);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_NE(bad.status().message().find("not a multiple"),
            std::string_view::npos);
}

TEST(FileRobustnessTest, ZeroLengthReadMidPageIsCorruption) {
  const std::string path = TmpPath("pc_shortread.db");
  auto r = FilePageDevice::Create(path, 512);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  ASSERT_TRUE(dev->Allocate().ok());
  ASSERT_TRUE(dev->Allocate().ok());
  auto data = Pattern(512, 1);
  ASSERT_TRUE(dev->Write(1, data.data()).ok());

  // Chop the file under the open device: page 1 now ends mid-page, so the
  // retried pread hits EOF and must surface Corruption, not a partial page.
  ASSERT_EQ(::truncate(path.c_str(), 512 + 100), 0);
  std::vector<std::byte> buf(512);
  Status s = dev->Read(1, buf.data());
  ASSERT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("short read"), std::string_view::npos);

  // Page 0 is still whole and must read fine.
  EXPECT_TRUE(dev->Read(0, buf.data()).ok());
}

TEST(FileRobustnessTest, RetryStackRecoversTransientFileFault) {
  const std::string path = TmpPath("pc_retry.db");
  auto r = FilePageDevice::Create(path, 512);
  ASSERT_TRUE(r.ok());
  FaultPageDevice fault(r.value().get());
  RetryPageDevice dev(&fault);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  auto data = Pattern(512, 2);
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  fault.FailReadAt(0);
  std::vector<std::byte> back(512);
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), 512), 0);
  EXPECT_EQ(dev.recovered(), 1u);
}

TEST(FileRobustnessTest, ChecksumStackDetectsTornWriteOnDisk) {
  const std::string path = TmpPath("pc_torn.db");
  auto r = FilePageDevice::Create(path, 512);
  ASSERT_TRUE(r.ok());
  FaultPageDevice fault(r.value().get());
  ChecksumPageDevice dev(&fault);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());

  std::vector<std::byte> v1(dev.page_size(), std::byte{0xaa});
  std::vector<std::byte> v2(dev.page_size(), std::byte{0x55});
  ASSERT_TRUE(dev.Write(id.value(), v1.data()).ok());
  fault.TearWriteAt(1, /*keep_bytes=*/64);
  ASSERT_TRUE(dev.Write(id.value(), v2.data()).ok());

  std::vector<std::byte> back(dev.page_size());
  EXPECT_EQ(dev.Read(id.value(), back.data()).code(),
            StatusCode::kCorruption);
}

TEST(FileRobustnessTest, ChecksumSurvivesFileReopen) {
  const std::string path = TmpPath("pc_sum_reopen.db");
  std::vector<std::byte> data;
  {
    auto r = FilePageDevice::Create(path, 512);
    ASSERT_TRUE(r.ok());
    ChecksumPageDevice dev(r.value().get());
    auto id = dev.Allocate();
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(id.value(), 0u);
    data = Pattern(dev.page_size(), 3);
    ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());
  }
  {
    auto r = FilePageDevice::Open(path, 512);
    ASSERT_TRUE(r.ok());
    ChecksumPageDevice dev(r.value().get());
    std::vector<std::byte> back(dev.page_size());
    ASSERT_TRUE(dev.Read(0, back.data()).ok());
    EXPECT_EQ(std::memcmp(back.data(), data.data(), back.size()), 0);
    EXPECT_EQ(dev.checksum_failures(), 0u);
  }
}

}  // namespace
}  // namespace pathcache
