#include "incore/priority_search_tree.h"

#include <gtest/gtest.h>

#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

TEST(InCorePstTest, EmptyTree) {
  PrioritySearchTree pst;
  std::vector<Point> out;
  pst.QueryTwoSided(0, 0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(pst.empty());
}

TEST(InCorePstTest, SinglePoint) {
  std::vector<Point> pts = {{5, 7, 1}};
  PrioritySearchTree pst(pts);
  std::vector<Point> out;
  pst.QueryTwoSided(5, 7, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
  out.clear();
  pst.QueryTwoSided(6, 0, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  pst.QueryTwoSided(0, 8, &out);
  EXPECT_TRUE(out.empty());
}

TEST(InCorePstTest, BoundaryInclusive) {
  std::vector<Point> pts = {{10, 10, 1}, {10, 20, 2}, {20, 10, 3}};
  PrioritySearchTree pst(pts);
  std::vector<Point> out;
  pst.QueryThreeSided(10, 20, 10, &out);
  EXPECT_EQ(out.size(), 3u);
  out.clear();
  pst.QueryThreeSided(10, 10, 10, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(InCorePstTest, DuplicateXValues) {
  std::vector<Point> pts;
  for (uint64_t i = 0; i < 100; ++i) {
    pts.push_back({static_cast<int64_t>(i % 5), static_cast<int64_t>(i), i});
  }
  PrioritySearchTree pst(pts);
  std::vector<Point> out;
  pst.QueryThreeSided(2, 3, 50, &out);
  EXPECT_TRUE(SameResult(out, BruteThreeSided(pts, {2, 3, 50})));
}

struct PstCase {
  uint64_t n;
  uint64_t seed;
  const char* dist;
};

class InCorePstRandomTest : public ::testing::TestWithParam<PstCase> {};

TEST_P(InCorePstRandomTest, MatchesBruteForce) {
  const auto& pc = GetParam();
  PointGenOptions o;
  o.n = pc.n;
  o.seed = pc.seed;
  o.coord_max = 100000;
  std::vector<Point> pts;
  if (std::string(pc.dist) == "uniform") {
    pts = GenPointsUniform(o);
  } else if (std::string(pc.dist) == "clustered") {
    pts = GenPointsClustered(o, 8, 2000);
  } else {
    pts = GenPointsDiagonal(o, 500);
  }

  PrioritySearchTree pst(pts);
  Rng rng(pc.seed ^ 0xABCD);
  for (int i = 0; i < 40; ++i) {
    auto q2 = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    pst.QueryTwoSided(q2.x_min, q2.y_min, &got);
    EXPECT_TRUE(SameResult(got, BruteTwoSided(pts, q2)))
        << "2-sided x=" << q2.x_min << " y=" << q2.y_min;

    auto q3 = SampleThreeSidedQuery(pts, 0.1, &rng);
    got.clear();
    pst.QueryThreeSided(q3.x_min, q3.x_max, q3.y_min, &got);
    EXPECT_TRUE(SameResult(got, BruteThreeSided(pts, q3)))
        << "3-sided [" << q3.x_min << "," << q3.x_max << "] y=" << q3.y_min;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InCorePstRandomTest,
    ::testing::Values(PstCase{10, 1, "uniform"}, PstCase{100, 2, "uniform"},
                      PstCase{1000, 3, "uniform"},
                      PstCase{5000, 4, "clustered"},
                      PstCase{5000, 5, "diagonal"},
                      PstCase{313, 6, "uniform"}));

TEST(InCorePstTest, QueryComplexityIsLogarithmicPlusOutput) {
  PointGenOptions o;
  o.n = 100000;
  o.seed = 77;
  auto pts = GenPointsUniform(o);
  PrioritySearchTree pst(pts);

  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> out;
    pst.QueryTwoSided(q.x_min, q.y_min, &out);
    // Visited nodes <= c1 * log2(n) + c2 * t (McCreight: O(log n + t)).
    uint64_t bound = 4 * FloorLog2(pts.size()) + 4 * out.size() + 8;
    EXPECT_LE(pst.last_nodes_visited(), bound) << "t=" << out.size();
  }
}

}  // namespace
}  // namespace pathcache
