#include "util/status.h"

#include <gtest/gtest.h>

namespace pathcache {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(Status::Overloaded("x").IsOverloaded());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, CopyPreservesMessage) {
  Status a = Status::Corruption("bad page");
  Status b = a;
  EXPECT_EQ(b.message(), "bad page");
  EXPECT_TRUE(b.IsCorruption());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOverloaded), "Overloaded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.ToStatus().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_TRUE(r.ToStatus().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsThrough() {
  PC_RETURN_IF_ERROR(Status::IoError("inner"));
  return Status::OK();
}

Status Succeeds() {
  PC_RETURN_IF_ERROR(Status::OK());
  return Status::InvalidArgument("reached end");
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThrough().IsIoError());
  EXPECT_TRUE(Succeeds().IsInvalidArgument());
}

Result<int> MakeValue(bool ok) {
  if (ok) return 41;
  return Status::NotFound("no value");
}

Status UseAssign(bool ok, int* out) {
  PC_ASSIGN_OR_RETURN(int v, MakeValue(ok));
  *out = v + 1;
  return Status::OK();
}

TEST(MacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssign(true, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseAssign(false, &out).IsNotFound());
}

}  // namespace
}  // namespace pathcache
