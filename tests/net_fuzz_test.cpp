// Wire-level fuzz / robustness suite against a LIVE server (satellite 2 of
// PR 9, and an acceptance criterion): across ≥ 24 seeds of hostile input —
// random byte soup, split-at-every-offset partial writes, interleaved
// valid/garbage frames, and mid-frame disconnects — the server must never
// crash, hang, or corrupt a neighboring connection, and every VALID frame
// must be answered byte-identically to an in-process QueryEngine twin
// (tests/oracle_common.h, nettest::EngineOracleResponse).
//
// The twin construction: two MemPageDevice-backed stores built from the
// same deterministic inputs, one behind the TCP server and one driven
// in-process.  For update-bearing streams the server engine runs one
// worker with batch_size 1, so its execution order is the FIFO order the
// serially-driven twin uses and the two dynamic stores evolve in lockstep.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "dynamic/dynamic_store.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "net/client.h"
#include "serve/query_engine.h"
#include "net/server.h"
#include "net/wire.h"
#include "oracle_common.h"
#include "workload/generators.h"

namespace pathcache {
namespace net {
namespace {

using nettest::EngineOracleResponse;
using nettest::NetStructure;
using nettest::RandomValidRequest;

constexpr int64_t kCoordMax = 100'000;

/// One engine-side of the twin: a device, a pool, the three static
/// structures and one dynamic store, all built from fixed seeds so two
/// Side instances are identical.
struct Side {
  MemPageDevice dev{4096};
  std::unique_ptr<SharedBufferPool> pool;
  std::unique_ptr<DynamicStore> store;
  std::unique_ptr<QueryEngine> engine;

  void Build(uint32_t num_workers) {
    pool = std::make_unique<SharedBufferPool>(&dev, 4096);

    PointGenOptions po;
    po.n = 1500;
    po.seed = 271;
    po.coord_max = kCoordMax;
    const std::vector<Point> pts = GenPointsUniform(po);

    IntervalGenOptions io;
    io.n = 1000;
    io.seed = 272;
    io.domain_max = kCoordMax;
    std::vector<Interval> ivs = GenIntervalsUniform(io);
    MakeEndpointsDistinct(&ivs);

    PageId pst_m, three_m, seg_m;
    {
      ExternalPst pst(&dev);
      ASSERT_TRUE(pst.Build(pts).ok());
      auto m = pst.Save();
      ASSERT_TRUE(m.ok());
      pst_m = m.value();
    }
    {
      ThreeSidedPst pst(&dev);
      ASSERT_TRUE(pst.Build(pts).ok());
      auto m = pst.Save();
      ASSERT_TRUE(m.ok());
      three_m = m.value();
    }
    {
      ExtSegmentTree st(&dev);
      ASSERT_TRUE(st.Build(ivs).ok());
      auto m = st.Save();
      ASSERT_TRUE(m.ok());
      seg_m = m.value();
    }
    std::vector<DynamicItem> initial;
    Rng rng(273);
    for (int i = 0; i < 400; ++i) {
      initial.push_back(DynamicItem{rng.UniformRange(0, kCoordMax),
                                    rng.UniformRange(0, kCoordMax),
                                    uint64_t(i)});
    }
    store = std::move(
        DynamicStore::Create(pool.get(), DynamicStructure::kExternalPst,
                             initial)
            .value());

    QueryEngineOptions opts;
    opts.num_workers = num_workers;
    opts.batch_size = num_workers == 1 ? 1 : 8;
    opts.queue_capacity = 4096;
    engine = std::make_unique<QueryEngine>(pool.get(), opts);
    ASSERT_TRUE(engine->AddStructure(pst_m).ok());    // id 0
    ASSERT_TRUE(engine->AddStructure(three_m).ok());  // id 1
    ASSERT_TRUE(engine->AddStructure(seg_m).ok());    // id 2
    ASSERT_TRUE(engine->AddDynamicStore(store.get()).ok());  // id 3
    ASSERT_TRUE(engine->Start().ok());
  }

  void Teardown() {
    if (engine) engine->Stop();
    engine.reset();
    if (store) EXPECT_TRUE(store->Destroy().ok());
    store.reset();
  }
};

std::vector<NetStructure> Catalog() {
  return {
      {QueryKind::kTwoSided, false, kCoordMax},
      {QueryKind::kThreeSided, false, kCoordMax},
      {QueryKind::kStabbing, false, kCoordMax},
      {QueryKind::kTwoSided, true, kCoordMax},
  };
}

class NetFuzzTest : public ::testing::Test {
 protected:
  /// num_workers applies to the SERVER side; the oracle side always runs
  /// one worker and is driven serially anyway.
  void StartTwins(uint32_t server_workers) {
    server_side_.Build(server_workers);
    oracle_side_.Build(1);
    if (HasFatalFailure()) return;
    server_ = std::make_unique<NetServer>(server_side_.engine.get());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    server_side_.Teardown();
    oracle_side_.Teardown();
  }

  Status Connect(NetClient* c) {
    return c->Connect("127.0.0.1", server_->port());
  }

  Side server_side_;
  Side oracle_side_;
  std::unique_ptr<NetServer> server_;
};

// 24 seeds x 32 requests of mixed valid traffic (queries + update groups),
// answered byte-for-byte like the in-process twin.  One worker, batch 1,
// so server-side update order is the stream order the twin replays.
TEST_F(NetFuzzTest, ValidStreamsAnswerByteIdenticalToOracle) {
  StartTwins(/*server_workers=*/1);
  const auto catalog = Catalog();
  uint64_t next_id = 1;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 7919);
    NetClient client;
    ASSERT_TRUE(Connect(&client).ok());
    for (int i = 0; i < 32; ++i) {
      const Request req =
          RandomValidRequest(&rng, catalog, next_id++, /*allow_updates=*/true);
      std::vector<uint8_t> wire;
      ASSERT_TRUE(EncodeRequest(req, &wire).ok());

      std::vector<uint8_t> expected;
      ASSERT_TRUE(EncodeResponse(
                      EngineOracleResponse(oracle_side_.engine.get(), req),
                      &expected)
                      .ok());

      ASSERT_TRUE(client.SendRaw(wire).ok());
      std::vector<uint8_t> got;
      ASSERT_TRUE(client.ReceiveRawFrame(&got).ok())
          << "seed " << seed << " req " << i;
      ASSERT_EQ(got, expected) << "seed " << seed << " req " << i << " type "
                               << MsgTypeName(req.type);
    }
  }
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

// A pipelined stream of valid query frames cut at EVERY byte offset and
// delivered in two writes must produce exactly the same response bytes as
// the uncut stream.  Queries only (no updates), so the server can run the
// full 4-worker engine — in-order response delivery is what's under test.
TEST_F(NetFuzzTest, SplitAtEveryOffsetPartialWritesAreSeamless) {
  StartTwins(/*server_workers=*/4);
  // Static structures only: updates would need FIFO, and the point here is
  // framing, not state.
  const std::vector<NetStructure> catalog = {
      {QueryKind::kTwoSided, false, kCoordMax},
      {QueryKind::kThreeSided, false, kCoordMax},
      {QueryKind::kStabbing, false, kCoordMax},
  };
  Rng rng(4242);
  std::vector<uint8_t> stream;
  std::vector<uint8_t> expected;
  constexpr int kFrames = 6;
  for (int i = 0; i < kFrames; ++i) {
    const Request req =
        RandomValidRequest(&rng, catalog, uint64_t(i + 1), false);
    ASSERT_TRUE(EncodeRequest(req, &stream).ok());
    ASSERT_TRUE(EncodeResponse(
                    EngineOracleResponse(oracle_side_.engine.get(), req),
                    &expected)
                    .ok());
  }

  for (size_t cut = 0; cut <= stream.size(); cut += 1) {
    NetClient client;
    ASSERT_TRUE(Connect(&client).ok());
    ASSERT_TRUE(client.SendRaw({stream.data(), cut}).ok());
    // Give the loop a chance to observe the torn prefix before the rest.
    if (cut % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(
        client.SendRaw({stream.data() + cut, stream.size() - cut}).ok());
    std::vector<uint8_t> got;
    for (int i = 0; i < kFrames; ++i) {
      std::vector<uint8_t> frame;
      ASSERT_TRUE(client.ReceiveRawFrame(&frame).ok())
          << "cut " << cut << " frame " << i;
      got.insert(got.end(), frame.begin(), frame.end());
    }
    ASSERT_EQ(got, expected) << "cut at offset " << cut;
  }
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

// Valid frames followed by garbage: the valid prefix is answered
// byte-identically, then one PROTOCOL_ERROR frame, then the connection is
// closed — and a healthy neighboring connection never notices.
TEST_F(NetFuzzTest, InterleavedValidAndGarbageFrames) {
  StartTwins(/*server_workers=*/4);
  const std::vector<NetStructure> catalog = {
      {QueryKind::kTwoSided, false, kCoordMax},
      {QueryKind::kThreeSided, false, kCoordMax},
      {QueryKind::kStabbing, false, kCoordMax},
  };
  NetClient healthy;
  ASSERT_TRUE(Connect(&healthy).ok());

  uint64_t next_id = 1;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 104729);
    NetClient client;
    ASSERT_TRUE(Connect(&client).ok());

    const int n_valid = 1 + int(rng.Uniform(4));
    std::vector<uint8_t> stream;
    std::vector<std::vector<uint8_t>> expected;
    for (int i = 0; i < n_valid; ++i) {
      const Request req = RandomValidRequest(&rng, catalog, next_id++, false);
      ASSERT_TRUE(EncodeRequest(req, &stream).ok());
      std::vector<uint8_t> exp;
      ASSERT_TRUE(EncodeResponse(
                      EngineOracleResponse(oracle_side_.engine.get(), req),
                      &exp)
                      .ok());
      expected.push_back(std::move(exp));
    }
    // Garbage tail: either byte soup or a bit-flipped valid frame.
    if (rng.Bernoulli(0.5)) {
      const size_t n = 1 + rng.Uniform(64);
      for (size_t i = 0; i < n; ++i) stream.push_back(uint8_t(rng.Next()));
      // Byte soup may decode as kNeedMore forever (looks like a truncated
      // frame); terminate it with a definitely-bad magic so the server
      // reaches a verdict with the bytes it has.
      for (int i = 0; i < int(kHeaderSize); ++i) stream.push_back(0x00);
    } else {
      std::vector<uint8_t> frame;
      const Request req = RandomValidRequest(&rng, catalog, next_id++, false);
      ASSERT_TRUE(EncodeRequest(req, &frame).ok());
      frame[rng.Uniform(frame.size())] ^= uint8_t(1 + rng.Uniform(255));
      stream.insert(stream.end(), frame.begin(), frame.end());
    }

    ASSERT_TRUE(client.SendRaw(stream).ok());
    // Half-close so a garbage tail the server reads as a truncated frame
    // (kNeedMore) resolves to EOF instead of waiting forever.
    client.ShutdownWrite();
    for (int i = 0; i < n_valid; ++i) {
      std::vector<uint8_t> got;
      ASSERT_TRUE(client.ReceiveRawFrame(&got).ok())
          << "seed " << seed << " frame " << i;
      ASSERT_EQ(got, expected[size_t(i)]) << "seed " << seed << " frame " << i;
    }
    // The garbage tail must yield exactly one protocol-error response (the
    // flipped-frame case can also surface as kNeedMore + EOF-close when the
    // flip grew the declared length; both are clean rejections).
    Response resp;
    Status tail = client.Receive(&resp);
    if (tail.ok()) {
      EXPECT_EQ(resp.type, MsgType::kProtocolError) << "seed " << seed;
      Status dead = client.Receive(&resp);
      EXPECT_FALSE(dead.ok()) << "seed " << seed;
    }
    // Either way the neighboring connection is untouched.
    ASSERT_TRUE(healthy.Ping().ok()) << "seed " << seed;
  }
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

// Mid-frame disconnects: a client that vanishes partway through a frame —
// or right after pipelining real work — must never wedge a worker or leak
// the connection.  24 seeds, then the server still serves.
TEST_F(NetFuzzTest, MidFrameDisconnectsLeaveServerHealthy) {
  StartTwins(/*server_workers=*/4);
  const auto catalog = Catalog();
  uint64_t next_id = 1;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 31337);
    NetClient client;
    ASSERT_TRUE(Connect(&client).ok());

    std::vector<uint8_t> stream;
    const int n = 1 + int(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      const Request req = RandomValidRequest(&rng, catalog, next_id++, true);
      ASSERT_TRUE(EncodeRequest(req, &stream).ok());
    }
    // Cut inside the last frame (or anywhere in the stream).
    const size_t cut = 1 + rng.Uniform(stream.size() - 1);
    ASSERT_TRUE(client.SendRaw({stream.data(), cut}).ok());
    if (seed % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    client.Close();  // abrupt: no shutdown handshake, responses unread
  }

  // The engine must drain every request the torn streams did deliver, and
  // fresh connections must work.  Drain() hanging here IS the regression.
  server_side_.engine->Drain();
  NetClient after;
  ASSERT_TRUE(Connect(&after).ok());
  EXPECT_TRUE(after.Ping().ok());
  // Every torn connection must eventually close server-side.
  for (int spin = 0; spin < 500; ++spin) {
    if (server_->stats().open_connections <= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_LE(server_->stats().open_connections, 1u);
}

// Pure random byte soup from 24 seeds: the server must reject or ignore
// every stream without crashing — this is the "seeded random byte streams"
// clause, run under the sanitizer CI jobs.
TEST_F(NetFuzzTest, RandomByteStreamsNeverCrashOrWedge) {
  StartTwins(/*server_workers=*/4);
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 65537);
    NetClient client;
    ASSERT_TRUE(Connect(&client).ok());
    std::vector<uint8_t> soup(1 + rng.Uniform(2048));
    for (auto& b : soup) b = uint8_t(rng.Next());
    ASSERT_TRUE(client.SendRaw(soup).ok());
    client.ShutdownWrite();
    // Whatever comes back (usually one PROTOCOL_ERROR, possibly nothing if
    // the soup looked like a truncated frame), the stream must end.
    for (;;) {
      Response resp;
      if (!client.Receive(&resp).ok()) break;
    }
  }
  NetClient after;
  ASSERT_TRUE(Connect(&after).ok());
  EXPECT_TRUE(after.Ping().ok());
}

}  // namespace
}  // namespace net
}  // namespace pathcache
