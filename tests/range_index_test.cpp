#include "core/range_index.h"

#include <gtest/gtest.h>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 100'000;
  return GenPointsUniform(o);
}

TEST(RangeIndexTest, EmptyAndDegenerate) {
  MemPageDevice dev(4096);
  RangeIndex idx(&dev);
  ASSERT_TRUE(idx.Build({}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(idx.QueryRange({0, 10, 0, 10}, &out).ok());
  EXPECT_TRUE(out.empty());

  RangeIndex idx2(&dev);
  ASSERT_TRUE(idx2.Build({{5, 5, 1}}).ok());
  ASSERT_TRUE(idx2.QueryRange({10, 0, 0, 10}, &out).ok());  // inverted x
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(idx2.QueryRange({0, 10, 10, 0}, &out).ok());  // inverted y
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(idx2.QueryRange({5, 5, 5, 5}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

struct RiCase {
  uint64_t n;
  uint64_t seed;
  uint32_t page_size;
};

class RangeIndexSweep : public ::testing::TestWithParam<RiCase> {};

TEST_P(RangeIndexSweep, MatchesBruteForce) {
  const auto& c = GetParam();
  MemPageDevice dev(c.page_size);
  RangeIndex idx(&dev);
  auto pts = UniformPts(c.n, c.seed);
  ASSERT_TRUE(idx.Build(pts).ok());

  Rng rng(c.seed ^ 0x4444);
  for (int i = 0; i < 30; ++i) {
    int64_t x1 = rng.UniformRange(0, 100'000);
    int64_t y1 = rng.UniformRange(0, 100'000);
    RangeQuery q{x1, x1 + rng.UniformRange(0, 30'000), y1,
                 y1 + rng.UniformRange(0, 30'000)};
    std::vector<Point> got;
    ASSERT_TRUE(idx.QueryRange(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteRange(pts, q)))
        << "q=[" << q.x_min << "," << q.x_max << "]x[" << q.y_min << ","
        << q.y_max << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RangeIndexSweep,
                         ::testing::Values(RiCase{100, 1, 4096},
                                           RiCase{10000, 2, 4096},
                                           RiCase{30000, 3, 4096},
                                           RiCase{8000, 4, 512}));

TEST(RangeIndexTest, TopOpenQueryIsOptimal) {
  // With y_max above all data the clip is free and the 3-sided bound holds.
  MemPageDevice dev(4096);
  RangeIndex idx(&dev);
  auto pts = UniformPts(100000, 7);
  ASSERT_TRUE(idx.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    int64_t x1 = rng.UniformRange(0, 80'000);
    RangeQuery q{x1, x1 + 10'000, rng.UniformRange(80'000, 100'000),
                 INT64_MAX};
    std::vector<Point> got;
    dev.ResetStats();
    ASSERT_TRUE(idx.QueryRange(q, &got).ok());
    uint64_t bound = 16 * logB_n + 4 * CeilDiv(got.size(), B) + 24;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size();
  }
}

TEST(RangeIndexTest, DestroyFreesEverything) {
  MemPageDevice dev(4096);
  RangeIndex idx(&dev);
  ASSERT_TRUE(idx.Build(UniformPts(20000, 11)).ok());
  EXPECT_GT(dev.live_pages(), 0u);
  ASSERT_TRUE(idx.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

}  // namespace
}  // namespace pathcache
