#include "core/three_sided.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed,
                              int64_t coord_max = 1'000'000) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = coord_max;
  return GenPointsUniform(o);
}

TEST(ThreeSidedPstTest, EmptyAndDegenerate) {
  MemPageDevice dev(4096);
  ThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build({}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryThreeSided({0, 10, 0}, &out).ok());
  EXPECT_TRUE(out.empty());

  ThreeSidedPst pst2(&dev);
  ASSERT_TRUE(pst2.Build({{5, 5, 1}}).ok());
  // Inverted x-range reports nothing.
  ASSERT_TRUE(pst2.QueryThreeSided({10, 0, 0}, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(pst2.QueryThreeSided({5, 5, 5}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

// The random-vs-oracle sweep lives in differential_test.cpp (shared
// shrinking harness, see tests/oracle_common.h); this file keeps the
// structure-specific and deterministic cases.

TEST(ThreeSidedPstTest, NarrowSlits) {
  // x_min == x_max stresses the fork logic (both paths nearly identical).
  MemPageDevice dev(512);
  ThreeSidedPst pst(&dev);
  auto pts = UniformPts(5000, 13, 5000);  // dense; duplicates in x likely
  ASSERT_TRUE(pst.Build(pts).ok());
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const Point& p = pts[rng.Uniform(pts.size())];
    ThreeSidedQuery q{p.x, p.x, p.y / 2};
    std::vector<Point> got;
    ASSERT_TRUE(pst.QueryThreeSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q))) << "x=" << p.x;
  }
}

TEST(ThreeSidedPstTest, DuplicateCoordinates) {
  MemPageDevice dev(512);
  ThreeSidedPst pst(&dev);
  std::vector<Point> pts;
  for (uint64_t i = 0; i < 2000; ++i) {
    pts.push_back({static_cast<int64_t>(i % 6), static_cast<int64_t>(i % 8),
                   i});
  }
  ASSERT_TRUE(pst.Build(pts).ok());
  for (int64_t x1 = -1; x1 <= 6; ++x1) {
    for (int64_t x2 = x1; x2 <= 6; ++x2) {
      for (int64_t qy = -1; qy <= 8; qy += 3) {
        ThreeSidedQuery q{x1, x2, qy};
        std::vector<Point> got;
        ASSERT_TRUE(pst.QueryThreeSided(q, &got).ok());
        ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q)))
            << "q=[" << x1 << "," << x2 << "]x[" << qy << ",inf)";
      }
    }
  }
}

// Theorem 3.3: optimal query I/O.
TEST(ThreeSidedPstTest, QueryIoIsOptimal) {
  MemPageDevice dev(4096);
  ThreeSidedPst pst(&dev);
  auto pts = UniformPts(200000, 19);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.05 + 0.02 * (i % 10), &rng);
    std::vector<Point> got;
    dev.ResetStats();
    ASSERT_TRUE(pst.QueryThreeSided(q, &got).ok());
    // Two paths, each with header+A+S-index+S reads per segment.
    uint64_t bound = 16 * logB_n + 4 * CeilDiv(got.size(), B) + 24;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size();
  }
}

// Theorem 3.3 space: O((n/B) log^2 B) blocks.
TEST(ThreeSidedPstTest, StorageWithinLogSquaredBound) {
  const uint32_t page = 4096;
  const uint32_t B = RecordsPerPage<Point>(page);
  auto pts = UniformPts(200000, 29);

  MemPageDevice dev(page);
  ThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint64_t logB = FloorLog2(B) + 1;
  EXPECT_LE(dev.live_pages(), 6 * CeilDiv(pts.size(), B) * logB * logB + 16);

  // The uncached baseline sits at optimal linear space.
  MemPageDevice dev_u(page);
  ThreeSidedPstOptions uo;
  uo.enable_path_caching = false;
  ThreeSidedPst unc(&dev_u, uo);
  ASSERT_TRUE(unc.Build(pts).ok());
  EXPECT_LE(dev_u.live_pages(), 8 * CeilDiv(pts.size(), B) + 8);
  EXPECT_GT(dev.live_pages(), dev_u.live_pages());
}

TEST(ThreeSidedPstTest, DestroyFreesEverything) {
  MemPageDevice dev(4096);
  ThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(20000, 31)).ok());
  EXPECT_GT(dev.live_pages(), 0u);
  ASSERT_TRUE(pst.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

TEST(ThreeSidedPstTest, IoErrorPropagates) {
  MemPageDevice dev(4096);
  ThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(20000, 37)).ok());
  dev.InjectFailureAfter(3);
  std::vector<Point> out;
  EXPECT_TRUE(pst.QueryThreeSided({0, 1000000, 0}, &out).IsIoError());
  dev.InjectFailureAfter(-1);
}

TEST(ThreeSidedPstTest, WastefulIoIsPaidFor) {
  MemPageDevice dev(4096);
  ThreeSidedPst pst(&dev);
  auto pts = UniformPts(150000, 41);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;

  Rng rng(43);
  for (int i = 0; i < 25; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.1, &rng);
    std::vector<Point> got;
    QueryStats qs;
    ASSERT_TRUE(pst.QueryThreeSided(q, &got, &qs).ok());
    EXPECT_LE(qs.wasteful, 2 * qs.useful + 16 * logB_n + 24) << qs.ToString();
  }
}

TEST(ThreeSidedPstTest, ReadaheadIsPureTransport) {
  auto pts = UniformPts(120000, 93);
  MemPageDevice dev_on(2048), dev_off(2048);
  ThreeSidedPstOptions on, off;
  on.enable_readahead = true;
  off.enable_readahead = false;
  ThreeSidedPst pst_on(&dev_on, on), pst_off(&dev_off, off);
  ASSERT_TRUE(pst_on.Build(pts).ok());
  ASSERT_TRUE(pst_off.Build(pts).ok());

  Rng rng(17);
  uint64_t batches = 0;
  for (int i = 0; i < 50; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.05 + 0.03 * (i % 8), &rng);
    dev_on.ResetStats();
    dev_off.ResetStats();
    std::vector<Point> a, b;
    ASSERT_TRUE(pst_on.QueryThreeSided(q, &a).ok());
    ASSERT_TRUE(pst_off.QueryThreeSided(q, &b).ok());
    auto key = [](const Point& p) { return std::tie(p.x, p.y, p.id); };
    std::sort(a.begin(), a.end(),
              [&](const Point& l, const Point& r) { return key(l) < key(r); });
    std::sort(b.begin(), b.end(),
              [&](const Point& l, const Point& r) { return key(l) < key(r); });
    EXPECT_EQ(a, b);
    EXPECT_EQ(dev_on.stats().reads, dev_off.stats().reads)
        << "q=(" << q.x_min << "," << q.x_max << "," << q.y_min << ")";
    EXPECT_EQ(dev_off.stats().batch_reads, 0u);
    batches += dev_on.stats().batch_reads;
  }
  EXPECT_GT(batches, 0u);  // the vectored path was actually exercised
}

}  // namespace
}  // namespace pathcache
