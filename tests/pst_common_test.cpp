#include "core/pst_common.h"

#include <gtest/gtest.h>

#include "core/query_stats.h"

#include "io/mem_page_device.h"
#include "util/mathutil.h"

namespace pathcache {
namespace {

TEST(SrcPointTest, RoundTrip) {
  Point p{-5, 17, 99};
  SrcPoint sp = SrcPoint::From(p, 3);
  EXPECT_EQ(sp.ToPoint(), p);
  EXPECT_EQ(sp.src, 3u);
}

TEST(CacheHeaderTest, EmptyCacheRoundTrips) {
  MemPageDevice dev(4096);
  PageId page = dev.Allocate().value();
  NodeCache in;
  ASSERT_TRUE(WriteCacheHeader(&dev, page, in).ok());
  NodeCache out;
  ASSERT_TRUE(ReadCacheHeader(&dev, page, &out).ok());
  EXPECT_TRUE(out.a_pages.empty());
  EXPECT_TRUE(out.s_pages.empty());
  EXPECT_TRUE(out.ancs.empty());
  EXPECT_TRUE(out.sibs.empty());
  EXPECT_EQ(out.a_count, 0u);
}

TEST(CacheHeaderTest, FullShapeRoundTrips) {
  MemPageDevice dev(4096);
  PageId page = dev.Allocate().value();
  NodeCache in;
  for (uint64_t i = 0; i < 9; ++i) in.a_pages.push_back(100 + i);
  for (uint64_t i = 0; i < 7; ++i) in.s_pages.push_back(200 + i);
  for (uint32_t i = 0; i < 8; ++i) {
    in.ancs.push_back(AncInfo{300 + i, 10 * i, 20 * i});
  }
  for (uint32_t i = 0; i < 6; ++i) {
    in.sibs.push_back(SibInfo{NodeRef{400 + i, i, 0}, NodeRef{500 + i, i, 0},
                              600 + i, i, 2 * i});
  }
  in.a_count = 1234;
  in.s_count = 777;
  ASSERT_TRUE(WriteCacheHeader(&dev, page, in).ok());

  NodeCache out;
  ASSERT_TRUE(ReadCacheHeader(&dev, page, &out).ok());
  EXPECT_EQ(out.a_pages, in.a_pages);
  EXPECT_EQ(out.s_pages, in.s_pages);
  ASSERT_EQ(out.ancs.size(), in.ancs.size());
  for (size_t i = 0; i < in.ancs.size(); ++i) {
    EXPECT_EQ(out.ancs[i].x_next, in.ancs[i].x_next);
    EXPECT_EQ(out.ancs[i].contributed, in.ancs[i].contributed);
    EXPECT_EQ(out.ancs[i].total, in.ancs[i].total);
  }
  ASSERT_EQ(out.sibs.size(), in.sibs.size());
  for (size_t i = 0; i < in.sibs.size(); ++i) {
    EXPECT_EQ(out.sibs[i].left, in.sibs[i].left);
    EXPECT_EQ(out.sibs[i].right, in.sibs[i].right);
    EXPECT_EQ(out.sibs[i].y_next, in.sibs[i].y_next);
    EXPECT_EQ(out.sibs[i].total, in.sibs[i].total);
  }
  EXPECT_EQ(out.a_count, 1234u);
  EXPECT_EQ(out.s_count, 777u);
}

TEST(CacheHeaderTest, OverflowRejected) {
  MemPageDevice dev(256);
  PageId page = dev.Allocate().value();
  NodeCache in;
  for (uint64_t i = 0; i < 100; ++i) in.a_pages.push_back(i);
  EXPECT_TRUE(WriteCacheHeader(&dev, page, in).IsInvalidArgument());
}

TEST(FitSegmentLenTest, ShrinksUntilItFits) {
  // At 4096 bytes the default log B segment fits comfortably.
  const uint32_t B = RecordsPerPage<Point>(4096);
  uint32_t want = FloorLog2(B);
  EXPECT_EQ(FitSegmentLen(4096, want, B), want);
  // A tiny page forces shorter segments (never below 1).
  EXPECT_GE(FitSegmentLen(256, want, RecordsPerPage<Point>(256)), 1u);
  EXPECT_LE(FitSegmentLen(256, want, RecordsPerPage<Point>(256)), want);
}

TEST(FitSegmentLenTest, ResultAlwaysFits) {
  for (uint32_t page : {256u, 512u, 1024u, 4096u, 16384u}) {
    const uint32_t B = RecordsPerPage<Point>(page);
    const uint32_t s = FitSegmentLen(page, FloorLog2(B), B);
    const uint32_t src_cap = RecordsPerPage<SrcPoint>(page);
    const uint64_t a_pg = CeilDiv(static_cast<uint64_t>(s + 1) * B, src_cap);
    const uint64_t s_pg = CeilDiv(static_cast<uint64_t>(s) * B, src_cap);
    EXPECT_LE(CacheHeaderBytes(static_cast<uint32_t>(a_pg),
                               static_cast<uint32_t>(s_pg), s + 1, s),
              page)
        << "page " << page;
  }
}

TEST(StorageBreakdownTest, TotalSums) {
  StorageBreakdown s;
  s.skeletal = 1;
  s.points = 2;
  s.cache_headers = 3;
  s.cache_blocks = 4;
  s.second_level = 5;
  EXPECT_EQ(s.total(), 15u);
}

}  // namespace
}  // namespace pathcache

namespace pathcache {
namespace {

TEST(QueryStatsTest, AccumulateAndPrint) {
  QueryStats a;
  a.navigation = 2;
  a.cache = 3;
  a.corner = 1;
  a.ancestor = 4;
  a.sibling = 5;
  a.descendant = 6;
  a.buffer = 7;
  a.useful = 8;
  a.wasteful = 9;
  a.records_reported = 100;
  EXPECT_EQ(a.total_reads(), 2u + 3 + 1 + 4 + 5 + 6 + 7);

  QueryStats b = a;
  b += a;
  EXPECT_EQ(b.navigation, 4u);
  EXPECT_EQ(b.records_reported, 200u);

  std::string s = a.ToString();
  EXPECT_NE(s.find("nav=2"), std::string::npos);
  EXPECT_NE(s.find("useful=8"), std::string::npos);
  EXPECT_NE(s.find("t=100"), std::string::npos);

  a.Reset();
  EXPECT_EQ(a.total_reads(), 0u);
  EXPECT_EQ(a.records_reported, 0u);
}

}  // namespace
}  // namespace pathcache
