#include "core/skeletal.h"

#include <gtest/gtest.h>

#include "io/mem_page_device.h"
#include "util/mathutil.h"

namespace pathcache {
namespace {

struct TestRec {
  int64_t key = 0;
  NodeRef left;
  NodeRef right;
  int64_t payload = 0;
};
static_assert(sizeof(TestRec) == 48);

// Builds a complete binary search tree over keys 0..n-1 (array heap order).
struct TreeSpec {
  std::vector<TestRec> recs;
  std::vector<int32_t> left, right;
};

TreeSpec CompleteBst(int32_t n) {
  TreeSpec t;
  t.recs.resize(n);
  t.left.assign(n, -1);
  t.right.assign(n, -1);
  // In-order index assignment via recursion on the heap shape.
  struct R {
    TreeSpec& t;
    int64_t next_key = 0;
    void Visit(int32_t i) {
      int32_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < static_cast<int32_t>(t.recs.size())) {
        t.left[i] = l;
        Visit(l);
      }
      t.recs[i].key = next_key++;
      t.recs[i].payload = t.recs[i].key * 10;
      if (r < static_cast<int32_t>(t.recs.size())) {
        t.right[i] = r;
        Visit(r);
      }
    }
  } rec{t};
  if (n > 0) rec.Visit(0);
  return t;
}

TEST(SkeletalTest, EmptyTree) {
  MemPageDevice dev(4096);
  auto r = WriteSkeletalTree<TestRec>(&dev, {}, {}, {}, -1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().root.valid());
  EXPECT_EQ(r.value().pages, 0u);
}

TEST(SkeletalTest, SingleNode) {
  MemPageDevice dev(4096);
  auto t = CompleteBst(1);
  auto r = WriteSkeletalTree<TestRec>(&dev, t.recs, t.left, t.right, 0);
  ASSERT_TRUE(r.ok());
  SkeletalTreeReader<TestRec> reader(&dev);
  TestRec rec;
  ASSERT_TRUE(reader.Read(r.value().root, &rec).ok());
  EXPECT_EQ(rec.key, 0);
  EXPECT_FALSE(rec.left.valid());
  EXPECT_FALSE(rec.right.valid());
}

TEST(SkeletalTest, SearchFindsEveryKey) {
  MemPageDevice dev(512);
  const int32_t n = 1023;  // complete tree of height 10
  auto t = CompleteBst(n);
  auto r = WriteSkeletalTree<TestRec>(&dev, t.recs, t.left, t.right, 0);
  ASSERT_TRUE(r.ok());

  SkeletalTreeReader<TestRec> reader(&dev);
  for (int64_t key = 0; key < n; key += 13) {
    NodeRef cur = r.value().root;
    TestRec rec;
    bool found = false;
    while (cur.valid()) {
      ASSERT_TRUE(reader.Read(cur, &rec).ok());
      if (rec.key == key) {
        found = true;
        break;
      }
      cur = key < rec.key ? rec.left : rec.right;
    }
    EXPECT_TRUE(found) << "key " << key;
    EXPECT_EQ(rec.payload, key * 10);
  }
}

TEST(SkeletalTest, DescentCostsOneReadPerChunkLevel) {
  MemPageDevice dev(4096);  // 85 recs/page -> chunk height 6
  const int32_t n = (1 << 14) - 1;  // height 14
  auto t = CompleteBst(n);
  auto r = WriteSkeletalTree<TestRec>(&dev, t.recs, t.left, t.right, 0);
  ASSERT_TRUE(r.ok());

  const uint32_t cap = SkeletalNodesPerPage<TestRec>(4096);
  const uint32_t chunk_h = FloorLog2(cap + 1);
  const uint64_t expected_pages = CeilDiv(14, chunk_h);

  SkeletalTreeReader<TestRec> reader(&dev);
  // Descend to the leftmost leaf.
  NodeRef cur = r.value().root;
  TestRec rec;
  uint32_t depth = 0;
  while (cur.valid()) {
    ASSERT_TRUE(reader.Read(cur, &rec).ok());
    cur = rec.left;
    ++depth;
  }
  EXPECT_EQ(depth, 14u);
  EXPECT_LE(reader.pages_read(), expected_pages + 1);
  EXPECT_GE(reader.pages_read(), expected_pages);
}

TEST(SkeletalTest, PageCountIsLinear) {
  MemPageDevice dev(4096);
  const int32_t n = 100000;
  auto t = CompleteBst(n);
  auto r = WriteSkeletalTree<TestRec>(&dev, t.recs, t.left, t.right, 0);
  ASSERT_TRUE(r.ok());
  const uint32_t cap = SkeletalNodesPerPage<TestRec>(4096);
  // Chunking wastes at most a constant factor over n/cap.
  EXPECT_LE(r.value().pages, 4ULL * n / cap + 4);
}

TEST(SkeletalTest, UnbalancedTreeStillWorks) {
  MemPageDevice dev(256);
  // A left spine of 100 nodes.
  const int32_t n = 100;
  std::vector<TestRec> recs(n);
  std::vector<int32_t> left(n, -1), right(n, -1);
  for (int32_t i = 0; i < n; ++i) {
    recs[i].key = n - i;
    if (i + 1 < n) left[i] = i + 1;
  }
  auto r = WriteSkeletalTree<TestRec>(&dev, recs, left, right, 0);
  ASSERT_TRUE(r.ok());
  SkeletalTreeReader<TestRec> reader(&dev);
  NodeRef cur = r.value().root;
  int32_t seen = 0;
  TestRec rec;
  while (cur.valid()) {
    ASSERT_TRUE(reader.Read(cur, &rec).ok());
    EXPECT_EQ(rec.key, n - seen);
    ++seen;
    cur = rec.left;
  }
  EXPECT_EQ(seen, n);
}

TEST(SkeletalTest, ReaderDetectsBadSlot) {
  MemPageDevice dev(4096);
  auto t = CompleteBst(3);
  auto r = WriteSkeletalTree<TestRec>(&dev, t.recs, t.left, t.right, 0);
  ASSERT_TRUE(r.ok());
  SkeletalTreeReader<TestRec> reader(&dev);
  TestRec rec;
  NodeRef bad{r.value().root.page, 999, 0};
  EXPECT_TRUE(reader.Read(bad, &rec).IsCorruption());
  EXPECT_TRUE(reader.Read(kNullNodeRef, &rec).IsInvalidArgument());
}

TEST(SkeletalTest, InvalidateCacheForcesReread) {
  MemPageDevice dev(4096);
  auto t = CompleteBst(7);
  auto r = WriteSkeletalTree<TestRec>(&dev, t.recs, t.left, t.right, 0);
  ASSERT_TRUE(r.ok());
  SkeletalTreeReader<TestRec> reader(&dev);
  TestRec rec;
  ASSERT_TRUE(reader.Read(r.value().root, &rec).ok());
  ASSERT_TRUE(reader.Read(r.value().root, &rec).ok());
  EXPECT_EQ(reader.pages_read(), 1u);
  reader.InvalidateCache();
  ASSERT_TRUE(reader.Read(r.value().root, &rec).ok());
  EXPECT_EQ(reader.pages_read(), 2u);
}

}  // namespace
}  // namespace pathcache
