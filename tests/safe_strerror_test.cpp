// SafeStrError must be thread-safe (unlike strerror) and always produce a
// non-empty, meaningful message regardless of which strerror_r flavor the
// libc provides.

#include "util/safe_strerror.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace pathcache {
namespace {

TEST(SafeStrErrorTest, KnownErrnosMatchStrerror) {
  // Single-threaded here, so plain strerror is a safe reference.
  for (int err : {EINTR, EAGAIN, ENOENT, ECONNABORTED, EMFILE, ENFILE}) {
    EXPECT_EQ(SafeStrError(err), std::string(strerror(err))) << err;
  }
}

TEST(SafeStrErrorTest, UnknownErrnoIsNonEmptyAndMentionsTheNumber) {
  const std::string msg = SafeStrError(123456);
  EXPECT_FALSE(msg.empty());
  EXPECT_NE(msg.find("123456"), std::string::npos) << msg;
}

TEST(SafeStrErrorTest, ZeroAndNegativeDoNotCrash) {
  EXPECT_FALSE(SafeStrError(0).empty());
  EXPECT_FALSE(SafeStrError(-1).empty());
}

TEST(SafeStrErrorTest, ConcurrentCallsStayCoherent) {
  // strerror's shared static buffer is exactly what this helper exists to
  // avoid; N threads hammering different errnos must each read back their
  // own message intact.
  const std::vector<int> errs = {EINTR, EAGAIN, ENOENT, ECONNABORTED, EMFILE};
  std::vector<std::string> want;
  for (int e : errs) want.push_back(SafeStrError(e));

  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < errs.size(); ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if (SafeStrError(errs[t]) != want[t]) {
          ok = false;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace pathcache
