// Randomized crash-recovery: build a structure on a device that silently
// drops every write from a random crash point onward, then reopen from the
// surviving media.  The contract is "fail cleanly or answer correctly":
// Open() either returns a descriptive error, or the reopened structure
// passes CheckStructure() and answers queries identically to the brute
// oracle.  A wrong answer is never acceptable.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/pst_two_level.h"
#include "core/three_sided.h"
#include "io/fault_page_device.h"
#include "io/mem_page_device.h"
#include "util/random.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

constexpr uint32_t kPageSize = 1024;
constexpr uint64_t kSeeds = 24;

std::vector<Point> Pts(uint64_t seed) {
  PointGenOptions o;
  o.n = 3000;
  o.seed = seed;
  o.coord_max = 200'000;
  return GenPointsUniform(o);
}

std::vector<Interval> Ivs(uint64_t seed) {
  IntervalGenOptions o;
  o.n = 1500;
  o.domain_max = 200'000;
  o.seed = seed;
  return GenIntervalsUniform(o);
}

// Builds `S` over `data` through `dev` and saves it; returns the manifest
// via `*manifest`.  Any step may fail once a crash schedule is armed.
template <typename S, typename D>
Status BuildAndSave(PageDevice* dev, const D& data, PageId* manifest) {
  S s(dev);
  PC_RETURN_IF_ERROR(s.Build(data));
  auto m = s.Save();
  if (!m.ok()) return m.status();
  *manifest = m.value();
  return Status::OK();
}

// Reopens `S` from post-crash media and enforces the fail-cleanly-or-
// answer-correctly contract.  `query` runs only if CheckStructure() passes.
template <typename S, typename QueryFn>
void ExpectCleanOrCorrect(PageDevice* media, PageId manifest, uint64_t seed,
                          bool* answered, const QueryFn& query) {
  S reopened(media);
  Status open = reopened.Open(manifest);
  if (!open.ok()) return;  // clean, descriptive failure is acceptable
  Status chk = reopened.CheckStructure();
  if (!chk.ok()) return;  // detected corruption is acceptable
  // The structure claims to be fully intact: it must answer correctly.
  *answered = true;
  query(reopened, seed);
}

// One crash-point trial: count the writes of a clean build, then rebuild on
// fresh media with a crash armed at a seed-derived ordinal.
template <typename S, typename D, typename QueryFn>
void CrashTrial(const D& data, uint64_t seed, bool* answered,
                const QueryFn& query) {
  uint64_t total_writes = 0;
  {
    MemPageDevice mem(kPageSize);
    FaultPageDevice fault(&mem);
    PageId manifest = kInvalidPageId;
    ASSERT_TRUE(BuildAndSave<S>(&fault, data, &manifest).ok())
        << "seed " << seed << ": clean build failed";
    total_writes = fault.writes_seen();
    ASSERT_GT(total_writes, 0u);
  }

  MemPageDevice mem(kPageSize);
  FaultPageDevice fault(&mem);
  const uint64_t crash_at = 1 + (seed * 2654435761ULL) % total_writes;
  fault.CrashAtWrite(crash_at);
  PageId manifest = kInvalidPageId;
  Status built = BuildAndSave<S>(&fault, data, &manifest);
  if (!built.ok() || manifest == kInvalidPageId) return;  // crash surfaced
  // The build "succeeded" against a device that dropped writes >= crash_at.
  // Reopen from the raw surviving media.
  ExpectCleanOrCorrect<S>(&mem, manifest, seed, answered, query);
}

TEST(CrashRecoveryTest, NeverAWrongAnswerAcrossSeeds) {
  uint64_t answered_runs = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    bool answered = false;
    switch (seed % 4) {
      case 0: {
        auto pts = Pts(seed);
        CrashTrial<TwoLevelPst>(
            pts, seed, &answered, [&pts](TwoLevelPst& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                auto q = SampleTwoSidedQuery(pts, &rng);
                std::vector<Point> got;
                ASSERT_TRUE(s.QueryTwoSided(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)))
                    << "seed " << sd << ": wrong two-sided answer";
              }
            });
        break;
      }
      case 1: {
        auto pts = Pts(seed);
        CrashTrial<ThreeSidedPst>(
            pts, seed, &answered, [&pts](ThreeSidedPst& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                auto q = SampleThreeSidedQuery(pts, 0.1, &rng);
                std::vector<Point> got;
                ASSERT_TRUE(s.QueryThreeSided(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q)))
                    << "seed " << sd << ": wrong three-sided answer";
              }
            });
        break;
      }
      case 2: {
        auto ivs = Ivs(seed);
        CrashTrial<ExtSegmentTree>(
            ivs, seed, &answered, [&ivs](ExtSegmentTree& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                const int64_t q = rng.UniformRange(0, 200'000);
                std::vector<Interval> got;
                ASSERT_TRUE(s.Stab(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteStab(ivs, q)))
                    << "seed " << sd << ": wrong stab answer";
              }
            });
        break;
      }
      default: {
        auto ivs = Ivs(seed);
        CrashTrial<ExtIntervalTree>(
            ivs, seed, &answered, [&ivs](ExtIntervalTree& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                const int64_t q = rng.UniformRange(0, 200'000);
                std::vector<Interval> got;
                ASSERT_TRUE(s.Stab(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteStab(ivs, q)))
                    << "seed " << sd << ": wrong stab answer";
              }
            });
        break;
      }
    }
    if (answered) ++answered_runs;
  }
  // Crash points land all over the build; most trials should detect the
  // crash rather than silently answer.  (All 24 answering would mean the
  // crash device did nothing.)
  RecordProperty("answered_runs", static_cast<int>(answered_runs));
  EXPECT_LT(answered_runs, kSeeds);
}

// A crash after the final write is indistinguishable from a clean shutdown:
// the reopened structure must verify and answer.
TEST(CrashRecoveryTest, CrashAfterLastWriteIsCleanShutdown) {
  auto pts = Pts(99);
  MemPageDevice mem(kPageSize);
  FaultPageDevice fault(&mem);
  fault.CrashAtWrite(1'000'000'000);  // never reached
  PageId manifest = kInvalidPageId;
  ASSERT_TRUE(BuildAndSave<TwoLevelPst>(&fault, pts, &manifest).ok());
  EXPECT_FALSE(fault.crashed());

  TwoLevelPst reopened(&mem);
  ASSERT_TRUE(reopened.Open(manifest).ok());
  ASSERT_TRUE(reopened.CheckStructure().ok());
  Rng rng(101);
  for (int i = 0; i < 8; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(reopened.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
  }
}

}  // namespace
}  // namespace pathcache
