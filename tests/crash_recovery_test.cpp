// Randomized crash-recovery: build a structure on a device that silently
// drops every write from a random crash point onward, then reopen from the
// surviving media.  The contract is "fail cleanly or answer correctly":
// Open() either returns a descriptive error, or the reopened structure
// passes CheckStructure() and answers queries identically to the brute
// oracle.  A wrong answer is never acceptable.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/persist.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "core/three_sided.h"
#include "dynamic/dynamic_fsck.h"
#include "dynamic/dynamic_store.h"
#include "io/fault_page_device.h"
#include "io/mem_page_device.h"
#include "util/random.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

constexpr uint32_t kPageSize = 1024;
constexpr uint64_t kSeeds = 24;

std::vector<Point> Pts(uint64_t seed) {
  PointGenOptions o;
  o.n = 3000;
  o.seed = seed;
  o.coord_max = 200'000;
  return GenPointsUniform(o);
}

std::vector<Interval> Ivs(uint64_t seed) {
  IntervalGenOptions o;
  o.n = 1500;
  o.domain_max = 200'000;
  o.seed = seed;
  return GenIntervalsUniform(o);
}

// Builds `S` over `data` through `dev` and saves it; returns the manifest
// via `*manifest`.  Any step may fail once a crash schedule is armed.
template <typename S, typename D>
Status BuildAndSave(PageDevice* dev, const D& data, PageId* manifest) {
  S s(dev);
  PC_RETURN_IF_ERROR(s.Build(data));
  auto m = s.Save();
  if (!m.ok()) return m.status();
  *manifest = m.value();
  return Status::OK();
}

// Reopens `S` from post-crash media and enforces the fail-cleanly-or-
// answer-correctly contract.  `query` runs only if CheckStructure() passes.
template <typename S, typename QueryFn>
void ExpectCleanOrCorrect(PageDevice* media, PageId manifest, uint64_t seed,
                          bool* answered, const QueryFn& query) {
  S reopened(media);
  Status open = reopened.Open(manifest);
  if (!open.ok()) return;  // clean, descriptive failure is acceptable
  Status chk = reopened.CheckStructure();
  if (!chk.ok()) return;  // detected corruption is acceptable
  // The structure claims to be fully intact: it must answer correctly.
  *answered = true;
  query(reopened, seed);
}

// One crash-point trial: count the writes of a clean build, then rebuild on
// fresh media with a crash armed at a seed-derived ordinal.
template <typename S, typename D, typename QueryFn>
void CrashTrial(const D& data, uint64_t seed, bool* answered,
                const QueryFn& query) {
  uint64_t total_writes = 0;
  {
    MemPageDevice mem(kPageSize);
    FaultPageDevice fault(&mem);
    PageId manifest = kInvalidPageId;
    ASSERT_TRUE(BuildAndSave<S>(&fault, data, &manifest).ok())
        << "seed " << seed << ": clean build failed";
    total_writes = fault.writes_seen();
    ASSERT_GT(total_writes, 0u);
  }

  MemPageDevice mem(kPageSize);
  FaultPageDevice fault(&mem);
  const uint64_t crash_at = 1 + (seed * 2654435761ULL) % total_writes;
  fault.CrashAtWrite(crash_at);
  PageId manifest = kInvalidPageId;
  Status built = BuildAndSave<S>(&fault, data, &manifest);
  if (!built.ok() || manifest == kInvalidPageId) return;  // crash surfaced
  // The build "succeeded" against a device that dropped writes >= crash_at.
  // Reopen from the raw surviving media.
  ExpectCleanOrCorrect<S>(&mem, manifest, seed, answered, query);
}

TEST(CrashRecoveryTest, NeverAWrongAnswerAcrossSeeds) {
  uint64_t answered_runs = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    bool answered = false;
    switch (seed % 4) {
      case 0: {
        auto pts = Pts(seed);
        CrashTrial<TwoLevelPst>(
            pts, seed, &answered, [&pts](TwoLevelPst& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                auto q = SampleTwoSidedQuery(pts, &rng);
                std::vector<Point> got;
                ASSERT_TRUE(s.QueryTwoSided(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)))
                    << "seed " << sd << ": wrong two-sided answer";
              }
            });
        break;
      }
      case 1: {
        auto pts = Pts(seed);
        CrashTrial<ThreeSidedPst>(
            pts, seed, &answered, [&pts](ThreeSidedPst& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                auto q = SampleThreeSidedQuery(pts, 0.1, &rng);
                std::vector<Point> got;
                ASSERT_TRUE(s.QueryThreeSided(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q)))
                    << "seed " << sd << ": wrong three-sided answer";
              }
            });
        break;
      }
      case 2: {
        auto ivs = Ivs(seed);
        CrashTrial<ExtSegmentTree>(
            ivs, seed, &answered, [&ivs](ExtSegmentTree& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                const int64_t q = rng.UniformRange(0, 200'000);
                std::vector<Interval> got;
                ASSERT_TRUE(s.Stab(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteStab(ivs, q)))
                    << "seed " << sd << ": wrong stab answer";
              }
            });
        break;
      }
      default: {
        auto ivs = Ivs(seed);
        CrashTrial<ExtIntervalTree>(
            ivs, seed, &answered, [&ivs](ExtIntervalTree& s, uint64_t sd) {
              Rng rng(sd);
              for (int i = 0; i < 8; ++i) {
                const int64_t q = rng.UniformRange(0, 200'000);
                std::vector<Interval> got;
                ASSERT_TRUE(s.Stab(q, &got).ok());
                ASSERT_TRUE(SameResult(got, BruteStab(ivs, q)))
                    << "seed " << sd << ": wrong stab answer";
              }
            });
        break;
      }
    }
    if (answered) ++answered_runs;
  }
  // Crash points land all over the build; most trials should detect the
  // crash rather than silently answer.  (All 24 answering would mean the
  // crash device did nothing.)
  RecordProperty("answered_runs", static_cast<int>(answered_runs));
  EXPECT_LT(answered_runs, kSeeds);
}

// A crash after the final write is indistinguishable from a clean shutdown:
// the reopened structure must verify and answer.
TEST(CrashRecoveryTest, CrashAfterLastWriteIsCleanShutdown) {
  auto pts = Pts(99);
  MemPageDevice mem(kPageSize);
  FaultPageDevice fault(&mem);
  fault.CrashAtWrite(1'000'000'000);  // never reached
  PageId manifest = kInvalidPageId;
  ASSERT_TRUE(BuildAndSave<TwoLevelPst>(&fault, pts, &manifest).ok());
  EXPECT_FALSE(fault.crashed());

  TwoLevelPst reopened(&mem);
  ASSERT_TRUE(reopened.Open(manifest).ok());
  ASSERT_TRUE(reopened.CheckStructure().ok());
  Rng rng(101);
  for (int i = 0; i < 8; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(reopened.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
  }
}

// --- fsync audit regression (persist.h SaveDurable) ------------------------
//
// Power loss with a volatile write-back cache: a plain Save() whose pages
// never hit media must fail cleanly on reopen (never answer wrong), while
// SaveDurable()'s barrier makes the identical build survive the same crash.
TEST(CrashRecoveryTest, SaveDurableSurvivesPowerLossWherePlainSaveIsLost) {
  auto pts = Pts(55);
  {
    // Plain Save(), then the power goes: nothing was flushed.
    MemPageDevice mem(kPageSize);
    FaultPageDevice fault(&mem);
    fault.SetVolatileWrites(true);
    ExternalPst pst(&fault);
    ASSERT_TRUE(pst.Build(pts).ok());
    auto m = pst.Save();
    ASSERT_TRUE(m.ok());
    fault.CrashNow();  // unflushed shadow discarded — nothing reached media

    ExternalPst reopened(&mem);
    Status open = reopened.Open(m.value());
    if (open.ok()) {
      // If the empty media somehow opens, deep validation must catch it.
      EXPECT_FALSE(reopened.CheckStructure().ok());
    }
  }
  {
    // SaveDurable(): Save() + Sync() barrier before the id is returned.
    MemPageDevice mem(kPageSize);
    FaultPageDevice fault(&mem);
    fault.SetVolatileWrites(true);
    ExternalPst pst(&fault);
    ASSERT_TRUE(pst.Build(pts).ok());
    auto m = SaveDurable(&pst, &fault);
    ASSERT_TRUE(m.ok());
    fault.CrashNow();

    ExternalPst reopened(&mem);
    ASSERT_TRUE(reopened.Open(m.value()).ok());
    ASSERT_TRUE(reopened.CheckStructure().ok());
    Rng rng(56);
    for (int i = 0; i < 8; ++i) {
      auto q = SampleTwoSidedQuery(pts, &rng);
      std::vector<Point> got;
      ASSERT_TRUE(reopened.QueryTwoSided(q, &got).ok());
      ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
    }
  }
}

// --- Dynamic-store kill-point matrix ---------------------------------------
//
// A deterministic update schedule (groups of 1-3 mutations, periodic
// rebuild/publish) runs on a volatile write-back cache with a crash armed at
// a seed-derived write or sync ordinal, so kill points land in WAL appends,
// group-commit fsyncs, mid-rebuild page writes, the publish slot write/sync
// and post-publish truncation.  Recovery from the surviving media must
// reconstruct exactly the state after some durable PREFIX of the groups —
// at least every group acknowledged before the crash (zero lost acked
// updates), never a record outside an applied group (zero phantoms), never
// a partial group (atomicity), and random queries against that state must
// match the brute oracle (zero wrong answers).  The crashed media must also
// pass the dynamic fsck, and gc must reclaim debris without touching the
// recovered store.

struct DynGroup {
  std::vector<DynamicUpdate> ops;
};

std::vector<DynGroup> MakeDynGroups(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  std::vector<DynGroup> groups;
  std::vector<DynamicItem> inserted;
  uint64_t next_id = 0;
  for (int g = 0; g < 30; ++g) {
    DynGroup grp;
    const uint64_t n = 1 + rng.Uniform(3);
    for (uint64_t k = 0; k < n; ++k) {
      if (!inserted.empty() && rng.Bernoulli(0.25)) {
        grp.ops.push_back({UpdateOp::kDelete,
                           inserted[rng.Uniform(inserted.size())]});
      } else {
        const DynamicItem it{int64_t(rng.Uniform(100'000)),
                             int64_t(rng.Uniform(100'000)), next_id++};
        grp.ops.push_back({UpdateOp::kInsert, it});
        inserted.push_back(it);
      }
    }
    groups.push_back(std::move(grp));
  }
  return groups;
}

std::vector<Point> PointsAfter(const std::vector<DynGroup>& groups, size_t p) {
  std::map<DynamicItem, bool, DynamicItemLess> model;
  for (size_t i = 0; i < p; ++i) {
    for (const DynamicUpdate& u : groups[i].ops) {
      if (u.op == UpdateOp::kInsert) {
        model[u.item] = true;
      } else {
        model.erase(u.item);
      }
    }
  }
  std::vector<Point> pts;
  pts.reserve(model.size());
  for (const auto& [item, present] : model) {
    if (present) pts.push_back(item.ToPoint());
  }
  return pts;
}

void DynamicKillPointTrial(uint64_t seed, bool kill_at_sync) {
  const std::vector<DynGroup> groups = MakeDynGroups(seed);
  auto rebuild_here = [](size_t g) { return g == 10 || g == 20; };

  // Calibration pass: count the schedule's writes and syncs so the kill
  // ordinal always lands inside it.
  uint64_t total_writes = 0;
  uint64_t total_syncs = 0;
  {
    MemPageDevice mem(kPageSize);
    FaultPageDevice fault(&mem);
    auto made = DynamicStore::Create(&fault, DynamicStructure::kExternalPst);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    auto store = std::move(made).value();
    for (size_t g = 0; g < groups.size(); ++g) {
      ASSERT_TRUE(store->Apply(groups[g].ops).ok());
      if (rebuild_here(g)) ASSERT_TRUE(store->Rebuild().ok());
    }
    total_writes = fault.writes_seen();
    total_syncs = fault.syncs_seen();
  }

  // Crash pass: same schedule, volatile cache, seed-derived kill point
  // armed after Create (Create's durability has its own tests).
  MemPageDevice mem(kPageSize);
  FaultPageDevice fault(&mem);
  fault.SetVolatileWrites(true);
  auto made = DynamicStore::Create(&fault, DynamicStructure::kExternalPst);
  ASSERT_TRUE(made.ok());
  auto store = std::move(made).value();
  const PageId root = store->root();
  const uint64_t h = seed * 2654435761ULL;
  if (kill_at_sync) {
    const uint64_t s0 = fault.syncs_seen();
    ASSERT_GT(total_syncs, s0);
    fault.CrashAtSync(s0 + h % (total_syncs - s0));
  } else {
    const uint64_t w0 = fault.writes_seen();
    ASSERT_GT(total_writes, w0);
    fault.CrashAtWrite(w0 + h % (total_writes - w0));
  }

  size_t acked = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    Status st = store->Apply(groups[g].ops);
    if (!fault.crashed()) {
      ASSERT_TRUE(st.ok()) << "seed " << seed << " group " << g << ": "
                           << st.ToString();
      acked = g + 1;  // durable before the crash: must survive
    }
    if (rebuild_here(g)) {
      Status rs = store->Rebuild();
      if (!fault.crashed()) ASSERT_TRUE(rs.ok());
    }
  }
  ASSERT_TRUE(fault.crashed()) << "kill point missed the schedule";
  store.reset();  // the process dies; pages stay as the media has them

  // Recovery must succeed and land on exactly one durable prefix >= acked.
  auto reopened_r = DynamicStore::Open(&mem, root);
  ASSERT_TRUE(reopened_r.ok())
      << "seed " << seed << ": recovery failed: "
      << reopened_r.status().ToString();
  auto reopened = std::move(reopened_r).value();
  std::vector<Point> got;
  ASSERT_TRUE(reopened->QueryTwoSided(TwoSidedQuery{0, 0}, &got).ok());
  size_t prefix = groups.size() + 1;
  for (size_t p = acked; p <= groups.size(); ++p) {
    if (SameResult(got, PointsAfter(groups, p))) {
      prefix = p;
      break;
    }
  }
  ASSERT_LE(prefix, groups.size())
      << "seed " << seed << " (kill_at_sync=" << kill_at_sync << ", acked "
      << acked << "/" << groups.size() << "): recovered state matches no "
      << "durable prefix — lost acked updates, phantoms or a torn group";

  // Zero wrong answers against the recovered prefix.
  const std::vector<Point> state = PointsAfter(groups, prefix);
  Rng qrng(seed ^ 0xABCD17ULL);
  for (int i = 0; i < 4; ++i) {
    const TwoSidedQuery q{qrng.UniformRange(0, 100'000),
                          qrng.UniformRange(0, 100'000)};
    std::vector<Point> ans;
    ASSERT_TRUE(reopened->QueryTwoSided(q, &ans).ok());
    ASSERT_TRUE(SameResult(ans, BruteTwoSided(state, q)))
        << "seed " << seed << ": wrong answer after recovery";
  }
  reopened.reset();

  // The crashed media passes fsck (orphans/dangling are classified, not
  // corruption), gc reclaims the debris, and the re-check is fully covered.
  const PageId roots[] = {root};
  DynamicFsckReport rep;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, {}, &rep).ok())
      << "seed " << seed << ": fsck rejected crashed-but-recovered media";
  DynamicFsckOptions gc_opts;
  gc_opts.gc = true;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, gc_opts, nullptr).ok());
  DynamicFsckReport clean;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, {}, &clean).ok());
  EXPECT_EQ(clean.orphaned_generations, 0u);
  EXPECT_EQ(clean.dangling_wal_pages, 0u);
  EXPECT_EQ(clean.unreachable_pages, 0u);

  // gc freed only debris: the store reopens onto the same state.
  auto again = DynamicStore::Open(&mem, root);
  ASSERT_TRUE(again.ok()) << "seed " << seed << ": reopen after gc failed";
  std::vector<Point> got2;
  ASSERT_TRUE(again.value()->QueryTwoSided(TwoSidedQuery{0, 0}, &got2).ok());
  EXPECT_TRUE(SameResult(got2, state))
      << "seed " << seed << ": gc changed the recovered state";
}

TEST(CrashRecoveryTest, DynamicStoreKillPointMatrixAtWrites) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ASSERT_NO_FATAL_FAILURE(DynamicKillPointTrial(seed, false));
  }
}

TEST(CrashRecoveryTest, DynamicStoreKillPointMatrixAtSyncs) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ASSERT_NO_FATAL_FAILURE(DynamicKillPointTrial(seed, true));
  }
}

}  // namespace
}  // namespace pathcache
