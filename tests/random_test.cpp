#include "util/random.h"

#include <gtest/gtest.h>

#include <map>

namespace pathcache {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(ZipfTest, RanksWithinBound) {
  Zipf z(100, 0.99, 5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 100u);
}

TEST(ZipfTest, LowRanksDominate) {
  Zipf z(1000, 0.99, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.Next()];
  // Rank 0 should be drawn far more often than rank 500.
  EXPECT_GT(counts[0], counts[500] * 5 + 10);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Zipf z(10, 0.0, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.Next()];
  for (const auto& [rank, c] : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

}  // namespace
}  // namespace pathcache
