#include "core/three_sided_dynamic.h"

#include <gtest/gtest.h>

#include <map>

#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 500'000;
  return GenPointsUniform(o);
}

TEST(DynamicThreeSidedTest, InsertIntoEmpty) {
  MemPageDevice dev(4096);
  DynamicThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build({}).ok());
  ASSERT_TRUE(pst.Insert({5, 5, 1}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(pst.QueryThreeSided({0, 10, 0}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

TEST(DynamicThreeSidedTest, MixedWorkloadMatchesOracle) {
  MemPageDevice dev(4096);
  DynamicThreeSidedPst pst(&dev);
  auto pts = UniformPts(8000, 3);
  ASSERT_TRUE(pst.Build(pts).ok());
  std::map<uint64_t, Point> oracle;
  for (const auto& p : pts) oracle[p.id] = p;

  Rng rng(5);
  uint64_t next_id = 1'000'000;
  for (int op = 0; op < 2000; ++op) {
    if (oracle.empty() || rng.Bernoulli(0.6)) {
      Point p{rng.UniformRange(0, 500'000), rng.UniformRange(0, 500'000),
              next_id++};
      ASSERT_TRUE(pst.Insert(p).ok());
      oracle[p.id] = p;
    } else {
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(oracle.size()));
      ASSERT_TRUE(pst.Erase(it->second).ok());
      oracle.erase(it);
    }
    if (op % 83 == 0) {
      int64_t x1 = rng.UniformRange(0, 500'000);
      ThreeSidedQuery q{x1, x1 + rng.UniformRange(0, 100'000),
                        rng.UniformRange(0, 500'000)};
      std::vector<Point> got;
      ASSERT_TRUE(pst.QueryThreeSided(q, &got).ok());
      std::vector<Point> want;
      for (const auto& [id, p] : oracle) {
        if (q.Contains(p)) want.push_back(p);
      }
      ASSERT_TRUE(SameResult(got, want)) << "op " << op;
    }
  }
  EXPECT_GE(pst.rebuilds(), 1u);
}

// Theorem 5.2: amortized update cost O(log_B n log^2 B).
TEST(DynamicThreeSidedTest, AmortizedUpdateIoWithinBound) {
  MemPageDevice dev(4096);
  DynamicThreeSidedPst pst(&dev);
  auto pts = UniformPts(50000, 7);
  ASSERT_TRUE(pst.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pts.size(), B) + 1;
  const uint64_t logB = FloorLog2(B) + 1;

  Rng rng(9);
  dev.ResetStats();
  const uint64_t kOps = 3000;
  uint64_t next_id = 10'000'000;
  for (uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 500'000),
                            rng.UniformRange(0, 500'000), next_id++})
                    .ok());
  }
  double per_op =
      static_cast<double>(dev.stats().total()) / static_cast<double>(kOps);
  EXPECT_LE(per_op, 8.0 * static_cast<double>(logB_n * logB * logB) + 16.0)
      << "per_op=" << per_op;
}

TEST(DynamicThreeSidedTest, QueryIoStaysOptimal) {
  MemPageDevice dev(4096);
  DynamicThreeSidedPst pst(&dev);
  auto pts = UniformPts(100000, 11);
  ASSERT_TRUE(pst.Build(pts).ok());
  Rng rng(13);
  uint64_t next_id = 10'000'000;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 500'000),
                            rng.UniformRange(0, 500'000), next_id++})
                    .ok());
  }
  const uint32_t B = RecordsPerPage<Point>(4096);
  const uint64_t logB_n = CeilLogBase(pst.size(), B) + 1;
  for (int i = 0; i < 20; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.1, &rng);
    std::vector<Point> got;
    dev.ResetStats();
    ASSERT_TRUE(pst.QueryThreeSided(q, &got).ok());
    uint64_t bound = 20 * logB_n + 4 * CeilDiv(got.size(), B) + 24;
    EXPECT_LE(dev.stats().reads, bound) << "t=" << got.size();
  }
}

TEST(DynamicThreeSidedTest, DestroyFreesEverything) {
  MemPageDevice dev(4096);
  DynamicThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build(UniformPts(10000, 17)).ok());
  ASSERT_TRUE(pst.Insert({1, 1, 999999}).ok());
  ASSERT_TRUE(pst.Destroy().ok());
  EXPECT_EQ(dev.live_pages(), 0u);
}

}  // namespace
}  // namespace pathcache
