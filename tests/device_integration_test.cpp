// Integration tests: the structures running over the other PageDevice
// implementations — a real file (FilePageDevice) and an LRU BufferPool —
// exercising the full stack end to end.

#include <gtest/gtest.h>

#include "core/pathcache.h"
#include "io/checksum_page_device.h"
#include "io/counting_page_device.h"
#include "io/shared_buffer_pool.h"
#include "io/uring_reader.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 200'000;
  return GenPointsUniform(o);
}

TEST(DeviceIntegrationTest, TwoLevelPstOnRealFile) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_pst.db", 4096);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();

  TwoLevelPst pst(dev.get());
  auto pts = UniformPts(20000, 3);
  ASSERT_TRUE(pst.Build(pts).ok());

  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(pst.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
  }
  ASSERT_TRUE(pst.Destroy().ok());
  EXPECT_EQ(dev->live_pages(), 0u);
}

TEST(DeviceIntegrationTest, DynamicPstOnRealFile) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_dyn.db", 4096);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();

  DynamicPst pst(dev.get());
  auto pts = UniformPts(5000, 7);
  ASSERT_TRUE(pst.Build(pts).ok());
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 200'000),
                            rng.UniformRange(0, 200'000),
                            1'000'000ULL + i})
                    .ok());
  }
  std::vector<Point> all;
  ASSERT_TRUE(pst.QueryTwoSided({INT64_MIN, INT64_MIN}, &all).ok());
  EXPECT_EQ(all.size(), 5500u);
}

TEST(DeviceIntegrationTest, StructureBehindBufferPool) {
  MemPageDevice inner(4096);
  BufferPool pool(&inner, 256);

  TwoLevelPst pst(&pool);
  auto pts = UniformPts(50000, 11);
  ASSERT_TRUE(pst.Build(pts).ok());

  Rng rng(13);
  // Warm queries: repeat touches of the skeletal top and hot caches hit.
  TwoSidedQuery q = SampleTwoSidedQuery(pts, &rng);
  std::vector<Point> first;
  ASSERT_TRUE(pst.QueryTwoSided(q, &first).ok());
  inner.ResetStats();
  pool.ResetStats();
  std::vector<Point> second;
  ASSERT_TRUE(pst.QueryTwoSided(q, &second).ok());
  ASSERT_TRUE(SameResult(first, second));
  // The identical repeat query should be served mostly from the pool.
  EXPECT_LT(inner.stats().reads, pool.stats().reads);
  EXPECT_GT(pool.hits(), 0u);

  // And correctness is unaffected across fresh queries.
  for (int i = 0; i < 10; ++i) {
    auto q2 = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(pst.QueryTwoSided(q2, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q2)));
  }
}

TEST(DeviceIntegrationTest, StabbingOnRealFileWithPool) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_stab.db", 4096);
  ASSERT_TRUE(r.ok());
  auto file = std::move(r).value();
  BufferPool pool(file.get(), 128);

  StabbingIndex idx(&pool);
  IntervalGenOptions o;
  o.n = 10000;
  o.seed = 17;
  o.domain_max = 1'000'000;
  auto ivs = GenIntervalsUniform(o);
  ASSERT_TRUE(idx.Build(ivs).ok());

  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    int64_t q = rng.UniformRange(0, 1'000'000);
    std::vector<Interval> got;
    ASSERT_TRUE(idx.Stab(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteStab(ivs, q)));
  }
}

TEST(DeviceIntegrationTest, AsyncBatchThroughFullDecoratorStack) {
  // File -> Checksum -> SharedBufferPool -> CountingPageDevice: the serving
  // stack.  SubmitBatch/AwaitBatch through all four layers must deliver the
  // same bytes and the same per-layer counts as ReadBatch on the same ids.
  if (!UringReader::SystemSupported()) {
    GTEST_SKIP() << "io_uring unavailable; the stack then reports "
                    "NotSupported and AsyncBatchReader covers the fallback";
  }
  constexpr uint32_t kPhysPage = 512;
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_async_stack.db",
                                  kPhysPage);
  ASSERT_TRUE(r.ok());
  auto file = std::move(r).value();
  if (file->read_backend() != FilePageDevice::ReadBackend::kIoUring) {
    GTEST_SKIP() << "uring backend disabled in this environment";
  }
  ChecksumPageDevice check(file.get());
  const uint32_t payload = check.page_size();

  std::vector<PageId> ids;
  std::vector<std::byte> page(payload);
  for (int i = 0; i < 24; ++i) {
    PageId id = check.Allocate().value();
    for (uint32_t j = 0; j < payload; ++j) {
      page[j] = static_cast<std::byte>((id * 37u + j) & 0xFF);
    }
    ASSERT_TRUE(check.Write(id, page.data()).ok());
    ids.push_back(id);
  }

  SharedBufferPool pool(&check, 8, 4);  // small: most of the batch misses
  CountingPageDevice counter(&pool);
  std::vector<PageId> batch{ids[0], ids[5], ids[6], ids[7], ids[20], ids[13]};

  std::vector<std::byte> via_sync(batch.size() * payload);
  ASSERT_TRUE(counter.ReadBatch(batch, via_sync.data()).ok());
  const uint64_t sync_reads = counter.stats().reads;
  const uint64_t sync_hits = pool.hits();
  const uint64_t sync_misses = pool.misses();

  pool.ClearAndResetStats();
  counter.ResetStats();
  std::vector<std::byte> via_async(batch.size() * payload, std::byte{0xEE});
  auto t = counter.SubmitBatch(batch, via_async.data());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(counter.AwaitBatch(t.value()).ok());

  EXPECT_EQ(
      std::memcmp(via_sync.data(), via_async.data(), via_sync.size()), 0);
  EXPECT_EQ(counter.stats().reads, sync_reads);
  EXPECT_EQ(counter.stats().batch_reads, 1u);
  EXPECT_EQ(pool.hits(), sync_hits);
  EXPECT_EQ(pool.misses(), sync_misses);

  // Warm repeat: every page was admitted at await, so the async batch is
  // all hits and completes at submit without touching the file.
  file->ResetStats();
  auto t2 = counter.SubmitBatch(batch, via_async.data());
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  ASSERT_TRUE(counter.AwaitBatch(t2.value()).ok());
  EXPECT_EQ(file->stats().reads, 0u);
  EXPECT_EQ(
      std::memcmp(via_sync.data(), via_async.data(), via_sync.size()), 0);
}

}  // namespace
}  // namespace pathcache
