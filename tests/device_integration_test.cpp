// Integration tests: the structures running over the other PageDevice
// implementations — a real file (FilePageDevice) and an LRU BufferPool —
// exercising the full stack end to end.

#include <gtest/gtest.h>

#include "core/pathcache.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 200'000;
  return GenPointsUniform(o);
}

TEST(DeviceIntegrationTest, TwoLevelPstOnRealFile) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_pst.db", 4096);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();

  TwoLevelPst pst(dev.get());
  auto pts = UniformPts(20000, 3);
  ASSERT_TRUE(pst.Build(pts).ok());

  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(pst.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q)));
  }
  ASSERT_TRUE(pst.Destroy().ok());
  EXPECT_EQ(dev->live_pages(), 0u);
}

TEST(DeviceIntegrationTest, DynamicPstOnRealFile) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_dyn.db", 4096);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();

  DynamicPst pst(dev.get());
  auto pts = UniformPts(5000, 7);
  ASSERT_TRUE(pst.Build(pts).ok());
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pst.Insert({rng.UniformRange(0, 200'000),
                            rng.UniformRange(0, 200'000),
                            1'000'000ULL + i})
                    .ok());
  }
  std::vector<Point> all;
  ASSERT_TRUE(pst.QueryTwoSided({INT64_MIN, INT64_MIN}, &all).ok());
  EXPECT_EQ(all.size(), 5500u);
}

TEST(DeviceIntegrationTest, StructureBehindBufferPool) {
  MemPageDevice inner(4096);
  BufferPool pool(&inner, 256);

  TwoLevelPst pst(&pool);
  auto pts = UniformPts(50000, 11);
  ASSERT_TRUE(pst.Build(pts).ok());

  Rng rng(13);
  // Warm queries: repeat touches of the skeletal top and hot caches hit.
  TwoSidedQuery q = SampleTwoSidedQuery(pts, &rng);
  std::vector<Point> first;
  ASSERT_TRUE(pst.QueryTwoSided(q, &first).ok());
  inner.ResetStats();
  pool.ResetStats();
  std::vector<Point> second;
  ASSERT_TRUE(pst.QueryTwoSided(q, &second).ok());
  ASSERT_TRUE(SameResult(first, second));
  // The identical repeat query should be served mostly from the pool.
  EXPECT_LT(inner.stats().reads, pool.stats().reads);
  EXPECT_GT(pool.hits(), 0u);

  // And correctness is unaffected across fresh queries.
  for (int i = 0; i < 10; ++i) {
    auto q2 = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(pst.QueryTwoSided(q2, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q2)));
  }
}

TEST(DeviceIntegrationTest, StabbingOnRealFileWithPool) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_stab.db", 4096);
  ASSERT_TRUE(r.ok());
  auto file = std::move(r).value();
  BufferPool pool(file.get(), 128);

  StabbingIndex idx(&pool);
  IntervalGenOptions o;
  o.n = 10000;
  o.seed = 17;
  o.domain_max = 1'000'000;
  auto ivs = GenIntervalsUniform(o);
  ASSERT_TRUE(idx.Build(ivs).ok());

  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    int64_t q = rng.UniformRange(0, 1'000'000);
    std::vector<Interval> got;
    ASSERT_TRUE(idx.Stab(q, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteStab(ivs, q)));
  }
}

}  // namespace
}  // namespace pathcache
