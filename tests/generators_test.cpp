#include "workload/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/oracle.h"

namespace pathcache {
namespace {

TEST(GeneratorsTest, UniformDeterministicAndInRange) {
  PointGenOptions o;
  o.n = 1000;
  o.seed = 5;
  o.coord_min = -100;
  o.coord_max = 100;
  auto a = GenPointsUniform(o);
  auto b = GenPointsUniform(o);
  EXPECT_EQ(a, b);
  for (const auto& p : a) {
    EXPECT_GE(p.x, -100);
    EXPECT_LE(p.x, 100);
    EXPECT_GE(p.y, -100);
    EXPECT_LE(p.y, 100);
  }
}

TEST(GeneratorsTest, IdsAreSequential) {
  PointGenOptions o;
  o.n = 100;
  auto pts = GenPointsUniform(o);
  for (uint64_t i = 0; i < o.n; ++i) EXPECT_EQ(pts[i].id, i);
}

TEST(GeneratorsTest, ClusteredIsMoreConcentratedThanUniform) {
  PointGenOptions o;
  o.n = 5000;
  o.coord_max = 1'000'000;
  auto uni = GenPointsUniform(o);
  auto clu = GenPointsClustered(o, 4, 10'000);
  // Compare mean nearest-cluster spread via a crude proxy: the variance of
  // x mod nothing is overkill; instead check many points share small
  // neighborhoods: count distinct 100k-wide buckets hit.
  auto buckets = [](const std::vector<Point>& pts) {
    std::set<int64_t> s;
    for (const auto& p : pts) s.insert(p.x / 100'000);
    return s.size();
  };
  EXPECT_LT(buckets(clu), buckets(uni));
}

TEST(GeneratorsTest, DiagonalStaysNearDiagonal) {
  PointGenOptions o;
  o.n = 2000;
  o.coord_max = 1'000'000;
  auto pts = GenPointsDiagonal(o, 100);
  for (const auto& p : pts) {
    if (p.y > 100 && p.y < 999'900) {  // away from clamping
      EXPECT_LE(std::abs(p.x - p.y), 100);
    }
  }
}

TEST(GeneratorsTest, AntiCorrelatedStaysNearAntiDiagonal) {
  PointGenOptions o;
  o.n = 2000;
  o.coord_max = 1'000'000;
  auto pts = GenPointsAntiCorrelated(o, 100);
  for (const auto& p : pts) {
    if (p.y > 100 && p.y < 999'900) {
      EXPECT_LE(std::abs(p.x + p.y - 1'000'000), 100);
    }
  }
}

TEST(GeneratorsTest, ZipfXSkewsLow) {
  PointGenOptions o;
  o.n = 20000;
  o.coord_max = 1'000'000;
  auto pts = GenPointsZipfX(o, 0.99);
  uint64_t low = 0;
  for (const auto& p : pts) {
    if (p.x < 100'000) ++low;
  }
  // Far more than 10% of the mass lands in the lowest decile.
  EXPECT_GT(low, o.n / 4);
}

TEST(GeneratorsTest, IntervalsWellFormed) {
  IntervalGenOptions o;
  o.n = 3000;
  for (auto gen : {0, 1, 2}) {
    std::vector<Interval> ivs;
    if (gen == 0) {
      ivs = GenIntervalsUniform(o);
    } else if (gen == 1) {
      ivs = GenIntervalsNested(o);
    } else {
      ivs = GenIntervalsBursty(o, 7);
    }
    ASSERT_EQ(ivs.size(), o.n);
    for (const auto& iv : ivs) {
      EXPECT_LT(iv.lo, iv.hi);
      EXPECT_GE(iv.lo, o.domain_min);
      EXPECT_LE(iv.hi, o.domain_max);
    }
  }
}

TEST(GeneratorsTest, NestedContainsDeepChains) {
  IntervalGenOptions o;
  o.n = 1000;
  o.domain_max = 1'000'000'000;
  auto ivs = GenIntervalsNested(o);
  // Stab the domain midpoint: nesting should yield a deep stack of results.
  auto hits = BruteStab(ivs, o.domain_max / 2);
  EXPECT_GT(hits.size(), 20u);
}

TEST(GeneratorsTest, MakeCoordinatesDistinctPreservesOrder) {
  PointGenOptions o;
  o.n = 5000;
  o.coord_max = 100;  // force many collisions
  auto pts = GenPointsUniform(o);
  auto orig = pts;
  MakeCoordinatesDistinct(&pts);

  std::set<int64_t> xs, ys;
  for (const auto& p : pts) {
    EXPECT_TRUE(xs.insert(p.x).second) << "duplicate x " << p.x;
    EXPECT_TRUE(ys.insert(p.y).second) << "duplicate y " << p.y;
  }
  // Strict order relations are preserved.
  for (size_t i = 0; i < 200; ++i) {
    size_t a = (i * 37) % pts.size();
    size_t b = (i * 101 + 13) % pts.size();
    if (orig[a].x < orig[b].x) {
      EXPECT_LT(pts[a].x, pts[b].x);
    }
    if (orig[a].y < orig[b].y) {
      EXPECT_LT(pts[a].y, pts[b].y);
    }
  }
}

TEST(GeneratorsTest, MakeEndpointsDistinctPreservesStabbing) {
  IntervalGenOptions o;
  o.n = 500;
  o.domain_max = 200;  // force endpoint collisions
  o.mean_len_frac = 0.2;
  auto ivs = GenIntervalsUniform(o);
  auto orig = ivs;
  MakeEndpointsDistinct(&ivs);

  std::set<int64_t> ends;
  for (const auto& iv : ivs) {
    EXPECT_TRUE(ends.insert(iv.lo).second);
    EXPECT_TRUE(ends.insert(iv.hi).second);
    EXPECT_LT(iv.lo, iv.hi);
  }
  // Pairwise overlap relations are preserved.
  for (size_t i = 0; i < 100; ++i) {
    size_t a = (i * 31) % ivs.size();
    size_t b = (i * 97 + 7) % ivs.size();
    bool was = orig[a].lo <= orig[b].hi && orig[b].lo <= orig[a].hi;
    bool is = ivs[a].lo <= ivs[b].hi && ivs[b].lo <= ivs[a].hi;
    EXPECT_EQ(was, is) << "pair " << a << "," << b;
  }
}

TEST(GeneratorsTest, QuerySamplersProduceValidShapes) {
  PointGenOptions o;
  o.n = 1000;
  auto pts = GenPointsUniform(o);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    auto q3 = SampleThreeSidedQuery(pts, 0.2, &rng);
    EXPECT_LE(q3.x_min, q3.x_max);
  }
}

}  // namespace
}  // namespace pathcache
