#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>

#include "io/file_page_device.h"
#include "io/mem_page_device.h"

namespace pathcache {
namespace {

std::vector<std::byte> Pattern(uint32_t size, uint8_t fill) {
  std::vector<std::byte> buf(size);
  std::memset(buf.data(), fill, size);
  return buf;
}

TEST(MemPageDeviceTest, AllocateReadWriteRoundTrip) {
  MemPageDevice dev(512);
  auto r = dev.Allocate();
  ASSERT_TRUE(r.ok());
  PageId id = r.value();

  auto w = Pattern(512, 0xAB);
  ASSERT_TRUE(dev.Write(id, w.data()).ok());
  std::vector<std::byte> rd(512);
  ASSERT_TRUE(dev.Read(id, rd.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), rd.data(), 512), 0);
}

TEST(MemPageDeviceTest, FreshPageIsZeroed) {
  MemPageDevice dev(256);
  PageId id = dev.Allocate().value();
  std::vector<std::byte> rd(256);
  ASSERT_TRUE(dev.Read(id, rd.data()).ok());
  for (auto b : rd) EXPECT_EQ(b, std::byte{0});
}

TEST(MemPageDeviceTest, CountsExactly) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  PageId b = dev.Allocate().value();
  auto buf = Pattern(256, 1);
  ASSERT_TRUE(dev.Write(a, buf.data()).ok());
  ASSERT_TRUE(dev.Write(b, buf.data()).ok());
  ASSERT_TRUE(dev.Read(a, buf.data()).ok());
  EXPECT_EQ(dev.stats().allocs, 2u);
  EXPECT_EQ(dev.stats().writes, 2u);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().total(), 3u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().total(), 0u);
}

TEST(MemPageDeviceTest, LivePagesTracksFree) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  PageId b = dev.Allocate().value();
  (void)b;
  EXPECT_EQ(dev.live_pages(), 2u);
  ASSERT_TRUE(dev.Free(a).ok());
  EXPECT_EQ(dev.live_pages(), 1u);
}

TEST(MemPageDeviceTest, UseAfterFreeIsCorruption) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  ASSERT_TRUE(dev.Free(a).ok());
  std::vector<std::byte> buf(256);
  EXPECT_TRUE(dev.Read(a, buf.data()).IsCorruption());
  EXPECT_TRUE(dev.Write(a, buf.data()).IsCorruption());
  EXPECT_TRUE(dev.Free(a).IsCorruption());
}

TEST(MemPageDeviceTest, FreedPageIsRecycledZeroed) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  auto buf = Pattern(256, 0xFF);
  ASSERT_TRUE(dev.Write(a, buf.data()).ok());
  ASSERT_TRUE(dev.Free(a).ok());
  PageId b = dev.Allocate().value();
  EXPECT_EQ(a, b);  // recycled
  std::vector<std::byte> rd(256);
  ASSERT_TRUE(dev.Read(b, rd.data()).ok());
  for (auto byte : rd) EXPECT_EQ(byte, std::byte{0});
}

TEST(MemPageDeviceTest, OutOfRangeIdRejected) {
  MemPageDevice dev(256);
  std::vector<std::byte> buf(256);
  EXPECT_TRUE(dev.Read(99, buf.data()).IsInvalidArgument());
}

TEST(MemPageDeviceTest, InjectedFailureFiresAfterBudget) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  std::vector<std::byte> buf(256);
  dev.InjectFailureAfter(2);
  EXPECT_TRUE(dev.Read(a, buf.data()).ok());
  EXPECT_TRUE(dev.Read(a, buf.data()).ok());
  EXPECT_TRUE(dev.Read(a, buf.data()).IsIoError());
  EXPECT_TRUE(dev.Write(a, buf.data()).IsIoError());
  dev.InjectFailureAfter(-1);
  EXPECT_TRUE(dev.Read(a, buf.data()).ok());
}

TEST(MemPageDeviceTest, ReadBatchMatchesReadLoopAndCountsPerPage) {
  MemPageDevice dev(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) {
    PageId id = dev.Allocate().value();
    auto buf = Pattern(256, static_cast<uint8_t>(0x10 + i));
    ASSERT_TRUE(dev.Write(id, buf.data()).ok());
    ids.push_back(id);
  }
  // Batch in a scrambled order: each slot must receive its own page.
  std::vector<PageId> batch{ids[3], ids[0], ids[4], ids[1]};
  dev.ResetStats();
  std::vector<std::byte> bufs(batch.size() * 256);
  ASSERT_TRUE(dev.ReadBatch(batch, bufs.data()).ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<std::byte> single(256);
    ASSERT_TRUE(dev.Read(batch[i], single.data()).ok());
    EXPECT_EQ(std::memcmp(bufs.data() + i * 256, single.data(), 256), 0);
  }
  // Counted reads are one per page (cost model), batch_reads ticked once.
  EXPECT_EQ(dev.stats().reads, batch.size() + batch.size());  // batch + checks
  EXPECT_EQ(dev.stats().batch_reads, 1u);
}

TEST(MemPageDeviceTest, EmptyReadBatchIsFree) {
  MemPageDevice dev(256);
  std::byte dummy;
  ASSERT_TRUE(dev.ReadBatch({}, &dummy).ok());
  EXPECT_EQ(dev.stats().reads, 0u);
  EXPECT_EQ(dev.stats().batch_reads, 0u);
}

TEST(MemPageDeviceTest, ReadBatchConsumesFaultBudgetInOrder) {
  MemPageDevice dev(256);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(dev.Allocate().value());
  dev.InjectFailureAfter(2);  // third page of the batch fails
  std::vector<std::byte> bufs(ids.size() * 256);
  EXPECT_TRUE(dev.ReadBatch(ids, bufs.data()).IsIoError());
  // Exactly the two pages before the fault were counted.
  EXPECT_EQ(dev.stats().reads, 2u);
}

TEST(MemPageDeviceTest, ReadBatchRejectsBadIdMidBatch) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  std::vector<PageId> ids{a, 999};
  std::vector<std::byte> bufs(ids.size() * 256);
  EXPECT_TRUE(dev.ReadBatch(ids, bufs.data()).IsInvalidArgument());
}

TEST(FilePageDeviceTest, RoundTripThroughRealFile) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_test.bin",
                                  512);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  PageId a = dev->Allocate().value();
  PageId b = dev->Allocate().value();
  auto pa = Pattern(512, 0x11);
  auto pb = Pattern(512, 0x22);
  ASSERT_TRUE(dev->Write(a, pa.data()).ok());
  ASSERT_TRUE(dev->Write(b, pb.data()).ok());
  std::vector<std::byte> rd(512);
  ASSERT_TRUE(dev->Read(a, rd.data()).ok());
  EXPECT_EQ(std::memcmp(rd.data(), pa.data(), 512), 0);
  ASSERT_TRUE(dev->Read(b, rd.data()).ok());
  EXPECT_EQ(std::memcmp(rd.data(), pb.data(), 512), 0);
  EXPECT_EQ(dev->live_pages(), 2u);
}

TEST(FilePageDeviceTest, FreeAndRecycle) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_test2.bin",
                                  256);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  PageId a = dev->Allocate().value();
  ASSERT_TRUE(dev->Free(a).ok());
  std::vector<std::byte> buf(256);
  EXPECT_TRUE(dev->Read(a, buf.data()).IsCorruption());
  PageId b = dev->Allocate().value();
  EXPECT_EQ(a, b);
}

TEST(FilePageDeviceTest, ReadBatchCoalescesAdjacentPages) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_batch.bin",
                                  256);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    PageId id = dev->Allocate().value();
    auto buf = Pattern(256, static_cast<uint8_t>(0x40 + i));
    ASSERT_TRUE(dev->Write(id, buf.data()).ok());
    ids.push_back(id);
  }
  // Request pages out of order with one gap: {5, 2, 0, 1, 6} coalesces into
  // runs [0,1,2] and [5,6] — two preadv calls for five counted reads.
  std::vector<PageId> batch{ids[5], ids[2], ids[0], ids[1], ids[6]};
  dev->ResetStats();
  std::vector<std::byte> bufs(batch.size() * 256);
  ASSERT_TRUE(dev->ReadBatch(batch, bufs.data()).ok());
  EXPECT_EQ(dev->stats().reads, 5u);
  EXPECT_EQ(dev->stats().batch_reads, 1u);
  EXPECT_EQ(dev->read_syscalls(), 2u);
  // Each caller slot holds the page for the id requested in that slot, not
  // the sorted order used for coalescing.
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<std::byte> single(256);
    ASSERT_TRUE(dev->Read(batch[i], single.data()).ok());
    EXPECT_EQ(std::memcmp(bufs.data() + i * 256, single.data(), 256), 0);
  }
}

TEST(FilePageDeviceTest, ReadBatchWithDuplicatesFillsEverySlot) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_dup.bin",
                                  256);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  PageId a = dev->Allocate().value();
  PageId b = dev->Allocate().value();
  auto pa = Pattern(256, 0xAA);
  auto pb = Pattern(256, 0xBB);
  ASSERT_TRUE(dev->Write(a, pa.data()).ok());
  ASSERT_TRUE(dev->Write(b, pb.data()).ok());
  std::vector<PageId> batch{b, a, b};
  std::vector<std::byte> bufs(batch.size() * 256);
  ASSERT_TRUE(dev->ReadBatch(batch, bufs.data()).ok());
  EXPECT_EQ(std::memcmp(bufs.data(), pb.data(), 256), 0);
  EXPECT_EQ(std::memcmp(bufs.data() + 256, pa.data(), 256), 0);
  EXPECT_EQ(std::memcmp(bufs.data() + 512, pb.data(), 256), 0);
  EXPECT_EQ(dev->stats().reads, 3u);
}

TEST(FilePageDeviceTest, ReadPastEndOfFileIsCorruptionWithOffset) {
  const std::string path = ::testing::TempDir() + "/pc_fdev_short.bin";
  auto r = FilePageDevice::Create(path, 256);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  PageId a = dev->Allocate().value();
  auto buf = Pattern(256, 0x77);
  ASSERT_TRUE(dev->Write(a, buf.data()).ok());
  // Truncate the file under the device: the next read hits a short transfer.
  ASSERT_EQ(::truncate(path.c_str(), 100), 0);
  std::vector<std::byte> rd(256);
  Status s = dev->Read(a, rd.data());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.ToString().find("offset"), std::string::npos);
}

TEST(FilePageDeviceTest, ReadBatchFaultBudgetRespected) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_fault.bin",
                                  256);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    PageId id = dev->Allocate().value();
    auto buf = Pattern(256, 0x01);
    ASSERT_TRUE(dev->Write(id, buf.data()).ok());
    ids.push_back(id);
  }
  std::vector<PageId> bad{ids[0], 999, ids[2]};
  std::vector<std::byte> bufs(bad.size() * 256);
  EXPECT_TRUE(dev->ReadBatch(bad, bufs.data()).IsInvalidArgument());
}

TEST(FilePageDeviceTest, SortedBatchTakesSortFreeFastPath) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_sorted.bin",
                                  256);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    PageId id = dev->Allocate().value();
    auto buf = Pattern(256, static_cast<uint8_t>(0x60 + i));
    ASSERT_TRUE(dev->Write(id, buf.data()).ok());
    ids.push_back(id);
  }
  dev->ResetStats();

  // Monotone non-contiguous batch: sort-free, but still two coalesced runs.
  std::vector<PageId> sorted{ids[0], ids[1], ids[2], ids[4], ids[5]};
  std::vector<std::byte> bufs(sorted.size() * 256);
  ASSERT_TRUE(dev->ReadBatch(sorted, bufs.data()).ok());
  EXPECT_EQ(dev->sorted_batches(), 1u);
  EXPECT_EQ(dev->read_syscalls(), 2u);  // runs [0,1,2] and [4,5]
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(bufs[i * 256],
              static_cast<std::byte>(0x60 + (i < 3 ? i : i + 1)));
  }

  // Fully contiguous sorted batch: one syscall for the whole run.
  std::vector<PageId> contig{ids[1], ids[2], ids[3], ids[4]};
  dev->ResetStats();
  ASSERT_TRUE(dev->ReadBatch(contig, bufs.data()).ok());
  EXPECT_EQ(dev->sorted_batches(), 1u);
  EXPECT_EQ(dev->read_syscalls(), 1u);
  EXPECT_EQ(dev->stats().reads, 4u);

  // An unsorted batch skips the fast path but returns identical data.
  std::vector<PageId> unsorted{ids[4], ids[1], ids[3], ids[2]};
  dev->ResetStats();
  std::vector<std::byte> ub(unsorted.size() * 256);
  ASSERT_TRUE(dev->ReadBatch(unsorted, ub.data()).ok());
  EXPECT_EQ(dev->sorted_batches(), 0u);
  EXPECT_EQ(dev->read_syscalls(), 1u);  // still coalesces to run [1..4]
  for (size_t i = 0; i < unsorted.size(); ++i) {
    EXPECT_EQ(ub[i * 256], static_cast<std::byte>(0x60 + unsorted[i]));
  }
}

TEST(MemPageDeviceTest, PinReturnsStableCountedView) {
  MemPageDevice dev(256);
  PageId id = dev.Allocate().value();
  auto pat = Pattern(256, 0x9C);
  ASSERT_TRUE(dev.Write(id, pat.data()).ok());
  dev.ResetStats();

  auto p = dev.Pin(id);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(dev.stats().reads, 1u);  // counted exactly like Read()
  EXPECT_EQ(std::memcmp(p.value(), pat.data(), 256), 0);
  dev.Unpin(id);

  // PagePin prefers the zero-copy path on a pinning device.
  PagePin pin;
  ASSERT_TRUE(pin.Load(&dev, id).ok());
  EXPECT_EQ(dev.stats().reads, 2u);
  EXPECT_EQ(std::memcmp(pin.data(), pat.data(), 256), 0);
}

TEST(MemPageDeviceTest, PinOfFreedPageIsCorruption) {
  MemPageDevice dev(256);
  PageId id = dev.Allocate().value();
  ASSERT_TRUE(dev.Free(id).ok());
  EXPECT_TRUE(dev.Pin(id).status().IsCorruption());
}

}  // namespace
}  // namespace pathcache
