#include <gtest/gtest.h>

#include <cstring>

#include "io/file_page_device.h"
#include "io/mem_page_device.h"

namespace pathcache {
namespace {

std::vector<std::byte> Pattern(uint32_t size, uint8_t fill) {
  std::vector<std::byte> buf(size);
  std::memset(buf.data(), fill, size);
  return buf;
}

TEST(MemPageDeviceTest, AllocateReadWriteRoundTrip) {
  MemPageDevice dev(512);
  auto r = dev.Allocate();
  ASSERT_TRUE(r.ok());
  PageId id = r.value();

  auto w = Pattern(512, 0xAB);
  ASSERT_TRUE(dev.Write(id, w.data()).ok());
  std::vector<std::byte> rd(512);
  ASSERT_TRUE(dev.Read(id, rd.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), rd.data(), 512), 0);
}

TEST(MemPageDeviceTest, FreshPageIsZeroed) {
  MemPageDevice dev(256);
  PageId id = dev.Allocate().value();
  std::vector<std::byte> rd(256);
  ASSERT_TRUE(dev.Read(id, rd.data()).ok());
  for (auto b : rd) EXPECT_EQ(b, std::byte{0});
}

TEST(MemPageDeviceTest, CountsExactly) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  PageId b = dev.Allocate().value();
  auto buf = Pattern(256, 1);
  ASSERT_TRUE(dev.Write(a, buf.data()).ok());
  ASSERT_TRUE(dev.Write(b, buf.data()).ok());
  ASSERT_TRUE(dev.Read(a, buf.data()).ok());
  EXPECT_EQ(dev.stats().allocs, 2u);
  EXPECT_EQ(dev.stats().writes, 2u);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().total(), 3u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().total(), 0u);
}

TEST(MemPageDeviceTest, LivePagesTracksFree) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  PageId b = dev.Allocate().value();
  (void)b;
  EXPECT_EQ(dev.live_pages(), 2u);
  ASSERT_TRUE(dev.Free(a).ok());
  EXPECT_EQ(dev.live_pages(), 1u);
}

TEST(MemPageDeviceTest, UseAfterFreeIsCorruption) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  ASSERT_TRUE(dev.Free(a).ok());
  std::vector<std::byte> buf(256);
  EXPECT_TRUE(dev.Read(a, buf.data()).IsCorruption());
  EXPECT_TRUE(dev.Write(a, buf.data()).IsCorruption());
  EXPECT_TRUE(dev.Free(a).IsCorruption());
}

TEST(MemPageDeviceTest, FreedPageIsRecycledZeroed) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  auto buf = Pattern(256, 0xFF);
  ASSERT_TRUE(dev.Write(a, buf.data()).ok());
  ASSERT_TRUE(dev.Free(a).ok());
  PageId b = dev.Allocate().value();
  EXPECT_EQ(a, b);  // recycled
  std::vector<std::byte> rd(256);
  ASSERT_TRUE(dev.Read(b, rd.data()).ok());
  for (auto byte : rd) EXPECT_EQ(byte, std::byte{0});
}

TEST(MemPageDeviceTest, OutOfRangeIdRejected) {
  MemPageDevice dev(256);
  std::vector<std::byte> buf(256);
  EXPECT_TRUE(dev.Read(99, buf.data()).IsInvalidArgument());
}

TEST(MemPageDeviceTest, InjectedFailureFiresAfterBudget) {
  MemPageDevice dev(256);
  PageId a = dev.Allocate().value();
  std::vector<std::byte> buf(256);
  dev.InjectFailureAfter(2);
  EXPECT_TRUE(dev.Read(a, buf.data()).ok());
  EXPECT_TRUE(dev.Read(a, buf.data()).ok());
  EXPECT_TRUE(dev.Read(a, buf.data()).IsIoError());
  EXPECT_TRUE(dev.Write(a, buf.data()).IsIoError());
  dev.InjectFailureAfter(-1);
  EXPECT_TRUE(dev.Read(a, buf.data()).ok());
}

TEST(FilePageDeviceTest, RoundTripThroughRealFile) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_test.bin",
                                  512);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  PageId a = dev->Allocate().value();
  PageId b = dev->Allocate().value();
  auto pa = Pattern(512, 0x11);
  auto pb = Pattern(512, 0x22);
  ASSERT_TRUE(dev->Write(a, pa.data()).ok());
  ASSERT_TRUE(dev->Write(b, pb.data()).ok());
  std::vector<std::byte> rd(512);
  ASSERT_TRUE(dev->Read(a, rd.data()).ok());
  EXPECT_EQ(std::memcmp(rd.data(), pa.data(), 512), 0);
  ASSERT_TRUE(dev->Read(b, rd.data()).ok());
  EXPECT_EQ(std::memcmp(rd.data(), pb.data(), 512), 0);
  EXPECT_EQ(dev->live_pages(), 2u);
}

TEST(FilePageDeviceTest, FreeAndRecycle) {
  auto r = FilePageDevice::Create(::testing::TempDir() + "/pc_fdev_test2.bin",
                                  256);
  ASSERT_TRUE(r.ok());
  auto dev = std::move(r).value();
  PageId a = dev->Allocate().value();
  ASSERT_TRUE(dev->Free(a).ok());
  std::vector<std::byte> buf(256);
  EXPECT_TRUE(dev->Read(a, buf.data()).IsCorruption());
  PageId b = dev->Allocate().value();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pathcache
