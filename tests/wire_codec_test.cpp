// Wire-codec property tests: encode→decode→parse is the identity for every
// request/response type across seeds, every single-byte mutation of a valid
// frame is rejected at frame level (never decoded, never UB — this binary
// runs in the ASan+UBSan CI job), every truncation asks for more bytes, and
// every payload-level malformation comes back as a clean InvalidArgument.
//
// The mutation sweep leans on the design fact that the CRC32C trailer
// covers all header+payload bytes: flipping any covered byte breaks the
// CRC, flipping a trailer byte breaks the comparison, and growing the
// declared length just makes the decoder wait for bytes that never pass
// the CRC — so no single-byte corruption can smuggle a frame through.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/wire.h"
#include "util/random.h"

namespace pathcache {
namespace net {
namespace {

constexpr MsgType kRequestTypes[] = {
    MsgType::kPing,        MsgType::kQueryTwoSided, MsgType::kQueryThreeSided,
    MsgType::kQueryStab,   MsgType::kQueryDiagonal, MsgType::kQueryRange,
    MsgType::kUpdateGroup, MsgType::kSetTenant,
};

constexpr MsgType kResponseTypes[] = {
    MsgType::kPong,   MsgType::kPoints,     MsgType::kIntervals,
    MsgType::kUpdateAck, MsgType::kError,   MsgType::kRetryAfter,
    MsgType::kProtocolError, MsgType::kTenantAck,
};

Request RandomRequest(MsgType t, Rng* rng) {
  Request req;
  req.type = t;
  req.request_id = rng->Next() | 1;  // nonzero: 0 means "stamp me"
  req.structure_id = uint32_t(rng->Uniform(8));
  req.budget_micros = uint32_t(rng->Uniform(1 << 20));
  switch (t) {
    case MsgType::kQueryTwoSided:
      req.two_sided = TwoSidedQuery{int64_t(rng->Next()), int64_t(rng->Next())};
      break;
    case MsgType::kQueryThreeSided:
      req.three_sided = ThreeSidedQuery{int64_t(rng->Next()),
                                        int64_t(rng->Next()),
                                        int64_t(rng->Next())};
      break;
    case MsgType::kQueryStab:
      req.stab = int64_t(rng->Next());
      break;
    case MsgType::kQueryDiagonal:
      req.corner = int64_t(rng->Next());
      break;
    case MsgType::kQueryRange:
      req.range = RangeQuery{int64_t(rng->Next()), int64_t(rng->Next()),
                             int64_t(rng->Next()), int64_t(rng->Next())};
      break;
    case MsgType::kUpdateGroup: {
      const size_t n = 1 + rng->Uniform(16);
      for (size_t i = 0; i < n; ++i) {
        DynamicUpdate u;
        u.op = rng->Bernoulli(0.5) ? UpdateOp::kInsert : UpdateOp::kDelete;
        u.item = DynamicItem{int64_t(rng->Next()), int64_t(rng->Next()),
                             rng->Next()};
        req.updates.push_back(u);
      }
      break;
    }
    case MsgType::kSetTenant:
      req.tenant = uint32_t(rng->Next());
      break;
    default:
      break;  // kPing: structure_id/budget are ignored but harmless
  }
  if (t == MsgType::kPing || t == MsgType::kSetTenant) {
    req.structure_id = 0;
    req.budget_micros = 0;
  }
  return req;
}

Response RandomResponse(MsgType t, Rng* rng) {
  Response resp;
  resp.type = t;
  resp.request_id = rng->Next() | 1;
  switch (t) {
    case MsgType::kPoints: {
      const size_t n = rng->Uniform(32);
      for (size_t i = 0; i < n; ++i) {
        resp.points.push_back(
            Point{int64_t(rng->Next()), int64_t(rng->Next()), rng->Next()});
      }
      break;
    }
    case MsgType::kIntervals: {
      const size_t n = rng->Uniform(32);
      for (size_t i = 0; i < n; ++i) {
        resp.intervals.push_back(
            Interval{int64_t(rng->Next()), int64_t(rng->Next()), rng->Next()});
      }
      break;
    }
    case MsgType::kUpdateAck:
      resp.applied = uint32_t(rng->Uniform(4096));
      break;
    case MsgType::kError:
    case MsgType::kProtocolError:
      resp.code = StatusCode{int(1 + rng->Uniform(9))};
      resp.message = std::string(rng->Uniform(64), 'e');
      break;
    case MsgType::kRetryAfter:
      resp.retry_after_micros = rng->Next();
      break;
    case MsgType::kTenantAck:
      resp.tenant = uint32_t(rng->Next());
      break;
    default:
      break;
  }
  return resp;
}

TEST(WireCodec, RequestRoundTripIsIdentityAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed);
    for (MsgType t : kRequestTypes) {
      const Request req = RandomRequest(t, &rng);
      std::vector<uint8_t> buf;
      ASSERT_TRUE(EncodeRequest(req, &buf).ok());

      DecodeResult r = DecodeFrame(buf.data(), buf.size());
      ASSERT_EQ(r.verdict, DecodeVerdict::kFrame) << MsgTypeName(t);
      EXPECT_EQ(r.consumed, buf.size());
      EXPECT_EQ(r.frame.type, t);
      EXPECT_EQ(r.frame.request_id, req.request_id);
      EXPECT_EQ(r.frame.version, kWireVersion);

      Request back;
      Status parsed = ParseRequest(r.frame, {r.payload, r.frame.payload_len},
                                   &back);
      ASSERT_TRUE(parsed.ok()) << parsed.ToString();
      EXPECT_EQ(back, req) << "round trip changed a " << MsgTypeName(t);
    }
  }
}

TEST(WireCodec, ResponseRoundTripIsIdentityAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    for (MsgType t : kResponseTypes) {
      const Response resp = RandomResponse(t, &rng);
      std::vector<uint8_t> buf;
      ASSERT_TRUE(EncodeResponse(resp, &buf).ok());

      DecodeResult r = DecodeFrame(buf.data(), buf.size());
      ASSERT_EQ(r.verdict, DecodeVerdict::kFrame) << MsgTypeName(t);
      EXPECT_EQ(r.consumed, buf.size());

      Response back;
      Status parsed = ParseResponse(r.frame, {r.payload, r.frame.payload_len},
                                    &back);
      ASSERT_TRUE(parsed.ok()) << parsed.ToString();
      EXPECT_EQ(back, resp) << "round trip changed a " << MsgTypeName(t);
    }
  }
}

TEST(WireCodec, ConcatenatedFramesDecodeInSequence) {
  Rng rng(7);
  std::vector<Request> reqs;
  std::vector<uint8_t> stream;
  for (int i = 0; i < 20; ++i) {
    MsgType t = kRequestTypes[rng.Uniform(std::size(kRequestTypes))];
    reqs.push_back(RandomRequest(t, &rng));
    ASSERT_TRUE(EncodeRequest(reqs.back(), &stream).ok());
  }
  size_t off = 0;
  for (const Request& want : reqs) {
    DecodeResult r = DecodeFrame(stream.data() + off, stream.size() - off);
    ASSERT_EQ(r.verdict, DecodeVerdict::kFrame);
    Request back;
    ASSERT_TRUE(
        ParseRequest(r.frame, {r.payload, r.frame.payload_len}, &back).ok());
    EXPECT_EQ(back, want);
    off += r.consumed;
  }
  EXPECT_EQ(off, stream.size());
}

// Every single-byte mutation of a valid frame must be rejected at frame
// level — kBadFrame, or kNeedMore when the mutation grew the declared
// length — and must never produce kFrame or undefined behavior.  Three
// mutation patterns per offset cover flip-all, flip-one-bit, and zeroing.
TEST(WireCodec, SingleByteMutationSweepNeverDecodes) {
  Rng rng(11);
  for (MsgType t : kRequestTypes) {
    const Request req = RandomRequest(t, &rng);
    std::vector<uint8_t> base;
    ASSERT_TRUE(EncodeRequest(req, &base).ok());
    for (size_t off = 0; off < base.size(); ++off) {
      for (uint8_t pattern : {uint8_t(0xFF), uint8_t(0x01), uint8_t(0x80)}) {
        std::vector<uint8_t> buf = base;
        const uint8_t mutated = uint8_t(buf[off] ^ pattern);
        if (mutated == base[off]) continue;
        buf[off] = mutated;
        DecodeResult r = DecodeFrame(buf.data(), buf.size());
        EXPECT_NE(r.verdict, DecodeVerdict::kFrame)
            << MsgTypeName(t) << " offset " << off << " pattern "
            << int(pattern);
        if (r.verdict == DecodeVerdict::kBadFrame) {
          EXPECT_FALSE(r.error.ok());
        }
      }
    }
  }
}

// A zeroed single byte in the byte-sweep above can also hit the "declared
// length grew" path; feeding the stream back with MORE bytes after the
// mutated frame must still never decode the corrupt frame as valid.
TEST(WireCodec, MutatedLengthWithTrailingBytesStillRejected) {
  Rng rng(13);
  const Request req = RandomRequest(MsgType::kQueryRange, &rng);
  std::vector<uint8_t> base;
  ASSERT_TRUE(EncodeRequest(req, &base).ok());
  // Append a second valid frame so grown-length mutations have real bytes
  // to mis-span, then corrupt each byte of the first frame's length field.
  std::vector<uint8_t> two = base;
  ASSERT_TRUE(EncodeRequest(RandomRequest(MsgType::kPing, &rng), &two).ok());
  for (size_t off = 16; off < 20; ++off) {
    for (int delta = 1; delta <= 255; delta += 37) {
      std::vector<uint8_t> buf = two;
      buf[off] = uint8_t(buf[off] + delta);
      DecodeResult r = DecodeFrame(buf.data(), buf.size());
      // The CRC no longer matches any framing the mutated length implies.
      EXPECT_NE(r.verdict, DecodeVerdict::kFrame) << off << "+" << delta;
    }
  }
}

TEST(WireCodec, TruncationAlwaysAsksForMore) {
  Rng rng(17);
  const Request req = RandomRequest(MsgType::kUpdateGroup, &rng);
  std::vector<uint8_t> base;
  ASSERT_TRUE(EncodeRequest(req, &base).ok());
  for (size_t len = 0; len < base.size(); ++len) {
    DecodeResult r = DecodeFrame(base.data(), len);
    ASSERT_EQ(r.verdict, DecodeVerdict::kNeedMore) << "prefix " << len;
    EXPECT_GT(r.need, len);
    EXPECT_LE(r.need, base.size());
  }
}

TEST(WireCodec, OversizedDeclaredLengthRejectedBeforeBuffering) {
  Request req;
  req.type = MsgType::kPing;
  req.request_id = 1;
  std::vector<uint8_t> buf;
  ASSERT_TRUE(EncodeRequest(req, &buf).ok());
  // Patch the length field to just past the cap; the decoder must reject
  // from the 20 header bytes alone instead of asking for 4 GiB.
  const uint32_t huge = uint32_t(kMaxPayload) + 1;
  buf[16] = uint8_t(huge);
  buf[17] = uint8_t(huge >> 8);
  buf[18] = uint8_t(huge >> 16);
  buf[19] = uint8_t(huge >> 24);
  DecodeResult r = DecodeFrame(buf.data(), kHeaderSize);
  EXPECT_EQ(r.verdict, DecodeVerdict::kBadFrame);
}

TEST(WireCodec, EncodeRequestRejectsProtocolViolations) {
  Request req;
  req.type = MsgType::kUpdateGroup;
  req.request_id = 1;
  std::vector<uint8_t> buf;
  EXPECT_TRUE(EncodeRequest(req, &buf).IsInvalidArgument())
      << "empty update group";

  req.updates.resize(kMaxUpdatesPerGroup + 1);
  EXPECT_TRUE(EncodeRequest(req, &buf).IsInvalidArgument())
      << "oversized update group";

  Request bad;
  bad.type = MsgType::kPong;  // response type through the request encoder
  EXPECT_TRUE(EncodeRequest(bad, &buf).IsInvalidArgument());
}

TEST(WireCodec, EncodeResponseRejectsProtocolViolations) {
  std::vector<uint8_t> buf;
  Response err;
  err.type = MsgType::kError;
  err.code = StatusCode::kOk;  // error responses need a real code
  EXPECT_TRUE(EncodeResponse(err, &buf).IsInvalidArgument());

  Response big;
  big.type = MsgType::kPoints;
  big.points.resize(kMaxPayload / 24 + 1);
  Status st = EncodeResponse(big, &buf);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);

  Response bad;
  bad.type = MsgType::kPing;  // request type through the response encoder
  EXPECT_TRUE(EncodeResponse(bad, &buf).IsInvalidArgument());
}

// Builds a syntactically perfect frame (good CRC) around a broken payload;
// these must fail at ParseRequest with InvalidArgument — the tier that
// keeps the connection alive — not at DecodeFrame.
void ExpectPayloadError(MsgType t, std::span<const uint8_t> payload) {
  std::vector<uint8_t> buf;
  AppendFrame(t, 99, payload, &buf);
  DecodeResult r = DecodeFrame(buf.data(), buf.size());
  ASSERT_EQ(r.verdict, DecodeVerdict::kFrame) << MsgTypeName(t);
  Request out;
  Status st = ParseRequest(r.frame, {r.payload, r.frame.payload_len}, &out);
  EXPECT_TRUE(st.IsInvalidArgument())
      << MsgTypeName(t) << ": " << st.ToString();
}

TEST(WireCodec, PayloadMalformationsAreConnectionSurvivable) {
  // Wrong sizes for fixed-size types.
  ExpectPayloadError(MsgType::kPing, std::vector<uint8_t>(1));
  ExpectPayloadError(MsgType::kQueryTwoSided, std::vector<uint8_t>(23));
  ExpectPayloadError(MsgType::kQueryThreeSided, std::vector<uint8_t>(33));
  ExpectPayloadError(MsgType::kQueryStab, std::vector<uint8_t>(8));
  ExpectPayloadError(MsgType::kQueryDiagonal, std::vector<uint8_t>(24));
  ExpectPayloadError(MsgType::kQueryRange, std::vector<uint8_t>(39));

  // Update group: truncated header, zero count, reserved word set, count
  // disagreeing with size, invalid op.
  ExpectPayloadError(MsgType::kUpdateGroup, std::vector<uint8_t>(15));
  ExpectPayloadError(MsgType::kUpdateGroup, std::vector<uint8_t>(16));
  {
    std::vector<uint8_t> p(16 + 32, 0);
    p[8] = 1;   // count = 1
    p[12] = 1;  // reserved word nonzero
    ExpectPayloadError(MsgType::kUpdateGroup, p);
  }
  {
    std::vector<uint8_t> p(16 + 32, 0);
    p[8] = 2;  // count says 2, payload holds 1
    ExpectPayloadError(MsgType::kUpdateGroup, p);
  }
  {
    std::vector<uint8_t> p(16 + 32, 0);
    p[8] = 1;
    p[16] = 3;  // op = 3: neither insert nor delete
    ExpectPayloadError(MsgType::kUpdateGroup, p);
  }

  // SetTenant: wrong size and reserved word set.
  ExpectPayloadError(MsgType::kSetTenant, std::vector<uint8_t>(7));
  {
    std::vector<uint8_t> p(8, 0);
    p[4] = 1;  // reserved word nonzero
    ExpectPayloadError(MsgType::kSetTenant, p);
  }

  // Unknown / non-request types in the type byte.
  ExpectPayloadError(MsgType{0x20}, {});
  ExpectPayloadError(MsgType::kPong, {});
}

TEST(WireCodec, ResponsePayloadMalformationsRejected) {
  auto expect_bad = [](MsgType t, std::span<const uint8_t> payload) {
    std::vector<uint8_t> buf;
    AppendFrame(t, 7, payload, &buf);
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    ASSERT_EQ(r.verdict, DecodeVerdict::kFrame);
    Response out;
    EXPECT_TRUE(ParseResponse(r.frame, {r.payload, r.frame.payload_len}, &out)
                    .IsInvalidArgument())
        << MsgTypeName(t);
  };
  expect_bad(MsgType::kPong, std::vector<uint8_t>(4));
  expect_bad(MsgType::kPoints, std::vector<uint8_t>(7));
  {
    std::vector<uint8_t> p(8 + 24, 0);
    p[0] = 2;  // count says 2, payload holds 1 record
    expect_bad(MsgType::kPoints, p);
  }
  {
    std::vector<uint8_t> p(8, 0);
    p[4] = 1;  // reserved word set
    expect_bad(MsgType::kIntervals, p);
  }
  expect_bad(MsgType::kUpdateAck, std::vector<uint8_t>(7));
  {
    std::vector<uint8_t> p(8, 0);  // error with code 0
    expect_bad(MsgType::kError, p);
  }
  {
    std::vector<uint8_t> p(8, 0);
    p[0] = 10;  // past kDeadlineExceeded
    expect_bad(MsgType::kError, p);
  }
  {
    std::vector<uint8_t> p(8, 0);
    p[0] = 1;
    p[4] = 5;  // msg_len = 5 but no message bytes
    expect_bad(MsgType::kProtocolError, p);
  }
  expect_bad(MsgType::kRetryAfter, std::vector<uint8_t>(7));
  expect_bad(MsgType::kTenantAck, std::vector<uint8_t>(7));
  {
    std::vector<uint8_t> p(8, 0);
    p[4] = 1;  // reserved word nonzero
    expect_bad(MsgType::kTenantAck, p);
  }
  expect_bad(MsgType::kPing, {});  // request type through the response parser
}

// Random byte soup must never decode as a frame (the magic + CRC gate) and,
// more importantly for the sanitizer job, must never read out of bounds.
TEST(WireCodec, RandomBytesNeverDecode) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> buf(rng.Uniform(256));
    for (auto& b : buf) b = uint8_t(rng.Next());
    DecodeResult r = DecodeFrame(buf.data(), buf.size());
    if (r.verdict == DecodeVerdict::kFrame) {
      // Astronomically unlikely (needs magic + CRC to line up); if it ever
      // happens the bytes must at least form a self-consistent frame.
      EXPECT_LE(r.consumed, buf.size());
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace pathcache
