// Socket-level concurrency test (satellite 3 of PR 9, in the TSan CI job):
// N client threads pipeline mixed queries + update groups over TCP while
// the dynamic store runs background rebuilds, and every answer must satisfy
// the same serial-merge-oracle invariants dynamic_serve_test pins for the
// in-process path:
//
//   * sandwich — with insert-only mutations, every answer lies between the
//     initial model's answer and the final model's answer;
//   * group atomicity — mutations land in pairs, so a full-range query must
//     never see an odd number of mutable records;
//   * read-your-writes — a client that received an UPDATE_ACK sees those
//     records in every later answer on the same connection.
//
// Everything flows through one NetServer, so this doubles as the data-race
// probe for the event loop's pipeline slots, waker, and stats counters.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "dynamic/dynamic_store.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "net/client.h"
#include "serve/query_engine.h"
#include "net/server.h"
#include "net/wire.h"
#include "util/random.h"
#include "workload/oracle.h"

namespace pathcache {
namespace net {
namespace {

std::vector<DynamicItem> GridPoints(int n, int64_t coord_max, uint64_t seed) {
  Rng rng(seed);
  std::vector<DynamicItem> items;
  items.reserve(n);
  for (int i = 0; i < n; ++i) {
    items.push_back(DynamicItem{rng.UniformRange(0, coord_max),
                                rng.UniformRange(0, coord_max), uint64_t(i)});
  }
  return items;
}

std::vector<Point> ToPoints(const std::vector<DynamicItem>& items) {
  std::vector<Point> pts;
  pts.reserve(items.size());
  for (const auto& i : items) pts.push_back(i.ToPoint());
  return pts;
}

TEST(NetConcurrencyTest, PipeliningClientsDuringRebuildsMatchSerialOracle) {
  MemPageDevice mem(4096);
  SharedBufferPool pool(&mem, 8192);
  const int64_t coord_max = 50'000;
  auto initial = GridPoints(1500, coord_max, 91);
  DynamicStoreOptions sopts;
  sopts.rebuild_threshold = 64;  // publishes keep happening mid-stream
  sopts.background_rebuild = true;
  auto store = std::move(
      DynamicStore::Create(&pool, DynamicStructure::kExternalPst, initial,
                           sopts)
          .value());

  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 8192;
  QueryEngine engine(&pool, opts);
  auto id_r = engine.AddDynamicStore(store.get());
  ASSERT_TRUE(id_r.ok());
  const uint32_t id = id_r.value();
  ASSERT_TRUE(engine.Start().ok());

  NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr int kClients = 4;
  constexpr int kPairsPerClient = 30;
  constexpr uint64_t kMutableBase = 1'000'000;
  constexpr uint64_t kClientIdStride = 10'000;

  const std::vector<Point> initial_model = ToPoints(initial);
  std::vector<Point> final_model = initial_model;
  for (int c = 0; c < kClients; ++c) {
    for (int p = 0; p < kPairsPerClient; ++p) {
      const uint64_t base = kMutableBase + uint64_t(c) * kClientIdStride +
                            2 * uint64_t(p);
      final_model.push_back(Point{(c * 997 + p * 613) % coord_max,
                                  (c * 131 + p * 401) % coord_max, base});
      final_model.push_back(Point{(c * 757 + p * 769) % coord_max,
                                  (c * 373 + p * 283) % coord_max, base + 1});
    }
  }

  std::atomic<bool> failed{false};
  std::mutex fail_mu;
  std::string first_failure;
  auto record_failure = [&](std::string why) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lk(fail_mu);
      first_failure = std::move(why);
    }
  };

  auto client_thread = [&](int cidx) {
    NetClient client;
    Status conn = client.Connect("127.0.0.1", port);
    if (!conn.ok()) {
      record_failure("connect: " + conn.ToString());
      return;
    }
    Rng rng(1000 + uint64_t(cidx));
    std::vector<Point> my_acked;  // read-your-writes floor for this client

    for (int p = 0; p < kPairsPerClient && !failed.load(); ++p) {
      const uint64_t base = kMutableBase + uint64_t(cidx) * kClientIdStride +
                            2 * uint64_t(p);
      const Point a{(cidx * 997 + p * 613) % coord_max,
                    (cidx * 131 + p * 401) % coord_max, base};
      const Point b{(cidx * 757 + p * 769) % coord_max,
                    (cidx * 373 + p * 283) % coord_max, base + 1};
      std::vector<DynamicUpdate> group = {
          {UpdateOp::kInsert, DynamicItem::From(a)},
          {UpdateOp::kInsert, DynamicItem::From(b)},
      };
      Status up = client.Update(id, group);
      if (!up.ok()) {
        record_failure("update: " + up.ToString());
        return;
      }
      my_acked.push_back(a);
      my_acked.push_back(b);

      // Pipeline a burst of queries, then collect: full-range (invariant
      // probes) mixed with random corners (sandwich probes).
      constexpr int kBurst = 4;
      std::vector<TwoSidedQuery> burst;
      for (int i = 0; i < kBurst; ++i) {
        if (i == 0) {
          burst.push_back(TwoSidedQuery{0, 0});
        } else {
          burst.push_back(TwoSidedQuery{rng.UniformRange(0, coord_max),
                                        rng.UniformRange(0, coord_max)});
        }
        Request req;
        req.type = MsgType::kQueryTwoSided;
        req.request_id = uint64_t(cidx + 1) * 1'000'000 +
                         uint64_t(p) * 100 + uint64_t(i) + 1;
        req.structure_id = id;
        req.two_sided = burst.back();
        Status s = client.Send(req);
        if (!s.ok()) {
          record_failure("send: " + s.ToString());
          return;
        }
      }
      for (int i = 0; i < kBurst; ++i) {
        Response resp;
        Status s = client.Receive(&resp);
        if (!s.ok()) {
          record_failure("receive: " + s.ToString());
          return;
        }
        if (resp.type != MsgType::kPoints) {
          record_failure("unexpected response type");
          return;
        }
        const TwoSidedQuery q = burst[size_t(i)];
        const std::vector<Point> lo = BruteTwoSided(initial_model, q);
        const std::vector<Point> hi = BruteTwoSided(final_model, q);
        if (resp.points.size() < lo.size() || resp.points.size() > hi.size()) {
          record_failure("answer size outside [initial, final] envelope");
          return;
        }
        if (q.x_min == 0 && q.y_min == 0) {
          uint64_t mutable_seen = 0;
          for (const Point& pt : resp.points) {
            if (pt.id >= kMutableBase) ++mutable_seen;
          }
          if (mutable_seen % 2 != 0) {
            record_failure("odd mutable count: a group was half-visible");
            return;
          }
          // Read-your-writes: everything this client saw acked must be in
          // a full-range answer.
          uint64_t mine = 0;
          for (const Point& pt : resp.points) {
            if (pt.id >= kMutableBase + uint64_t(cidx) * kClientIdStride &&
                pt.id < kMutableBase + uint64_t(cidx + 1) * kClientIdStride) {
              ++mine;
            }
          }
          if (mine < my_acked.size()) {
            record_failure("read-your-writes violated: saw " +
                           std::to_string(mine) + " of " +
                           std::to_string(my_acked.size()));
            return;
          }
        }
      }
    }
  };

  std::atomic<bool> stop_rebuilds{false};
  std::thread rebuilder([&] {
    while (!stop_rebuilds.load() && !failed.load()) {
      Status s = store->Rebuild();
      if (!s.ok()) {
        record_failure("Rebuild: " + s.ToString());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client_thread, c);
  for (auto& t : clients) t.join();
  stop_rebuilds.store(true);
  rebuilder.join();
  ASSERT_TRUE(store->WaitForRebuild().ok());

  EXPECT_FALSE(failed.load()) << first_failure;

  // Quiescent end state: one serial query sees exactly the final model.
  NetClient checker;
  ASSERT_TRUE(checker.Connect("127.0.0.1", port).ok());
  std::vector<Point> got;
  ASSERT_TRUE(checker.QueryTwoSided(id, TwoSidedQuery{0, 0}, &got).ok());
  EXPECT_TRUE(SameResult(got, final_model));

  const NetServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.request_errors, 0u);

  server.Stop();
  engine.Stop();
  ASSERT_TRUE(store->Destroy().ok());
}

}  // namespace
}  // namespace net
}  // namespace pathcache
