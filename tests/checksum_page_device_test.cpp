// CRC32C and ChecksumPageDevice: round trips, zero-page semantics, and
// guaranteed detection of injected bit flips and torn writes.

#include "io/checksum_page_device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "io/crc32c.h"
#include "io/fault_page_device.h"
#include "io/mem_page_device.h"
#include "util/random.h"

namespace pathcache {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string msg = "path caching: optimal external searching";
  uint32_t crc = Crc32cInit();
  crc = Crc32cUpdate(crc, msg.data(), 10);
  crc = Crc32cUpdate(crc, msg.data() + 10, msg.size() - 10);
  EXPECT_EQ(Crc32cFinish(crc), Crc32c(msg.data(), msg.size()));
}

TEST(ChecksumPageDeviceTest, RoundTripAndPayloadSize) {
  MemPageDevice mem(4096);
  ChecksumPageDevice dev(&mem);
  EXPECT_EQ(dev.page_size(), 4096u - kPageTrailerBytes);

  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<std::byte> data(dev.page_size());
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());
  std::vector<std::byte> back(dev.page_size());
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  EXPECT_EQ(dev.checksum_failures(), 0u);
}

TEST(ChecksumPageDeviceTest, FreshPageReadsAsZeroPayload) {
  MemPageDevice mem(1024);
  ChecksumPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<std::byte> back(dev.page_size(), std::byte{0xff});
  ASSERT_TRUE(dev.Read(id.value(), back.data()).ok());
  for (std::byte b : back) EXPECT_EQ(b, std::byte{0});
}

TEST(ChecksumPageDeviceTest, EveryBitFlipIsDetected) {
  // >= 20 seeds; each seed flips one random stored bit of a written page
  // (payload or trailer) and requires the read to come back Corruption.
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    MemPageDevice mem(1024);
    FaultPageDevice fault(&mem);
    ChecksumPageDevice dev(&fault);
    auto id = dev.Allocate();
    ASSERT_TRUE(id.ok());

    Rng rng(seed);
    std::vector<std::byte> data(dev.page_size());
    for (auto& b : data) {
      b = static_cast<std::byte>(rng.Uniform(256));
    }
    ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

    const uint64_t bit = rng.Uniform(1024 * 8);
    ASSERT_TRUE(fault.CorruptStoredBit(id.value(), bit).ok());

    std::vector<std::byte> back(dev.page_size());
    Status s = dev.Read(id.value(), back.data());
    ASSERT_EQ(s.code(), StatusCode::kCorruption)
        << "seed " << seed << " bit " << bit << ": " << s.ToString();
    EXPECT_NE(s.message().find(std::to_string(id.value())),
              std::string::npos);
    EXPECT_EQ(dev.checksum_failures(), 1u);

    // Scrub sees the same verdict without delivering a payload.
    EXPECT_EQ(dev.Scrub(id.value()).code(), StatusCode::kCorruption);
  }
}

TEST(ChecksumPageDeviceTest, TornWriteIsDetected) {
  MemPageDevice mem(1024);
  FaultPageDevice fault(&mem);
  ChecksumPageDevice dev(&fault);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());

  std::vector<std::byte> v1(dev.page_size(), std::byte{0xaa});
  std::vector<std::byte> v2(dev.page_size(), std::byte{0x55});
  ASSERT_TRUE(dev.Write(id.value(), v1.data()).ok());
  fault.TearWriteAt(1, /*keep_bytes=*/300);  // second physical write tears
  ASSERT_TRUE(dev.Write(id.value(), v2.data()).ok());

  std::vector<std::byte> back(dev.page_size());
  EXPECT_EQ(dev.Read(id.value(), back.data()).code(),
            StatusCode::kCorruption);
}

TEST(ChecksumPageDeviceTest, MisdirectedPageIsDetected) {
  // The CRC covers the page id, so a page written as A but surfacing under
  // id B (a misdirected write, emulated by copying frames in the inner
  // store) fails verification even though its bytes are internally intact.
  MemPageDevice mem(1024);
  ChecksumPageDevice dev(&mem);
  auto a = dev.Allocate();
  auto b = dev.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<std::byte> data(dev.page_size(), std::byte{0x42});
  ASSERT_TRUE(dev.Write(a.value(), data.data()).ok());

  std::vector<std::byte> raw(1024);
  ASSERT_TRUE(mem.Read(a.value(), raw.data()).ok());
  ASSERT_TRUE(mem.Write(b.value(), raw.data()).ok());

  std::vector<std::byte> back(dev.page_size());
  EXPECT_TRUE(dev.Read(a.value(), back.data()).ok());
  EXPECT_EQ(dev.Read(b.value(), back.data()).code(),
            StatusCode::kCorruption);
}

TEST(ChecksumPageDeviceTest, ReadBatchVerifiesEveryPage) {
  MemPageDevice mem(1024);
  FaultPageDevice fault(&mem);
  ChecksumPageDevice dev(&fault);
  auto a = dev.Allocate();
  auto b = dev.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<std::byte> data(dev.page_size(), std::byte{0x17});
  ASSERT_TRUE(dev.Write(a.value(), data.data()).ok());
  ASSERT_TRUE(dev.Write(b.value(), data.data()).ok());
  ASSERT_TRUE(fault.CorruptStoredBit(b.value(), 999).ok());

  std::vector<std::byte> bufs(2 * dev.page_size());
  const PageId ids[] = {a.value(), b.value()};
  EXPECT_EQ(
      dev.ReadBatch(std::span<const PageId>(ids, 2), bufs.data()).code(),
      StatusCode::kCorruption);
}

TEST(ChecksumPageDeviceTest, PinVerifiesFrame) {
  MemPageDevice mem(1024);
  ChecksumPageDevice dev(&mem);
  auto id = dev.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<std::byte> data(dev.page_size(), std::byte{0x33});
  ASSERT_TRUE(dev.Write(id.value(), data.data()).ok());

  auto frame = dev.Pin(id.value());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(std::memcmp(frame.value(), data.data(), dev.page_size()), 0);
  dev.Unpin(id.value());

  std::vector<std::byte> raw(1024);
  ASSERT_TRUE(mem.Read(id.value(), raw.data()).ok());
  raw[5] ^= std::byte{0x01};
  ASSERT_TRUE(mem.Write(id.value(), raw.data()).ok());
  EXPECT_EQ(dev.Pin(id.value()).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace pathcache
