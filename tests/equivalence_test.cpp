// Cross-structure property tests: every index answering the same query
// class must return identical result sets on identical inputs, across
// distributions — including adversarial ones (all-equal coordinates,
// collinear points, heavy duplication).  Any divergence pinpoints a bug in
// exactly one structure, which unit suites can then localize.

#include <gtest/gtest.h>

#include "core/pathcache.h"
#include "incore/dynamic_pst.h"
#include "incore/interval_tree.h"
#include "incore/priority_search_tree.h"
#include "incore/segment_tree.h"
#include "io/mem_page_device.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> MakePoints(const std::string& dist, uint64_t n,
                              uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 100'000;
  if (dist == "uniform") return GenPointsUniform(o);
  if (dist == "clustered") return GenPointsClustered(o, 5, 2'000);
  if (dist == "diagonal") return GenPointsDiagonal(o, 500);
  if (dist == "anti") return GenPointsAntiCorrelated(o, 500);
  if (dist == "zipf") return GenPointsZipfX(o, 0.99);
  std::vector<Point> pts;
  if (dist == "same_x") {
    for (uint64_t i = 0; i < n; ++i) {
      pts.push_back({42, static_cast<int64_t>(i * 3 % 1000), i});
    }
  } else if (dist == "same_y") {
    for (uint64_t i = 0; i < n; ++i) {
      pts.push_back({static_cast<int64_t>(i * 7 % 1000), 42, i});
    }
  } else if (dist == "same_xy") {
    for (uint64_t i = 0; i < n; ++i) pts.push_back({7, 7, i});
  } else if (dist == "grid") {
    for (uint64_t i = 0; i < n; ++i) {
      pts.push_back({static_cast<int64_t>(i % 50),
                     static_cast<int64_t>(i / 50), i});
    }
  }
  return pts;
}

struct EqCase {
  const char* dist;
  uint64_t n;
  uint64_t seed;
  uint32_t page_size;
};

class TwoSidedEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(TwoSidedEquivalence, AllStructuresAgree) {
  const auto& c = GetParam();
  auto pts = MakePoints(c.dist, c.n, c.seed);
  MemPageDevice dev(c.page_size);

  ExternalPstOptions iko_opts;
  iko_opts.enable_path_caching = false;
  ExternalPst iko(&dev, iko_opts);
  ExternalPst basic(&dev);
  TwoLevelPst two(&dev);
  TwoLevelPstOptions m3;
  m3.levels = 3;
  TwoLevelPst multi(&dev, m3);
  DynamicPst dyn(&dev);
  XSortedBaseline scan(&dev);
  PrioritySearchTree incore(pts);

  ASSERT_TRUE(iko.Build(pts).ok());
  ASSERT_TRUE(basic.Build(pts).ok());
  ASSERT_TRUE(two.Build(pts).ok());
  ASSERT_TRUE(multi.Build(pts).ok());
  ASSERT_TRUE(dyn.Build(pts).ok());
  ASSERT_TRUE(scan.Build(pts).ok());

  Rng rng(c.seed ^ 0xEE);
  for (int i = 0; i < 20; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    auto want = BruteTwoSided(pts, q);

    std::vector<Point> got;
    ASSERT_TRUE(iko.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "iko " << c.dist;
    got.clear();
    ASSERT_TRUE(basic.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "basic " << c.dist;
    got.clear();
    ASSERT_TRUE(two.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "two-level " << c.dist;
    got.clear();
    ASSERT_TRUE(multi.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "multilevel " << c.dist;
    got.clear();
    ASSERT_TRUE(dyn.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "dynamic " << c.dist;
    got.clear();
    ASSERT_TRUE(scan.QueryTwoSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "baseline " << c.dist;
    got.clear();
    incore.QueryTwoSided(q.x_min, q.y_min, &got);
    ASSERT_TRUE(SameResult(got, want)) << "incore " << c.dist;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoSidedEquivalence,
    ::testing::Values(EqCase{"uniform", 8000, 1, 4096},
                      EqCase{"clustered", 8000, 2, 4096},
                      EqCase{"diagonal", 8000, 3, 4096},
                      EqCase{"anti", 8000, 4, 1024},
                      EqCase{"zipf", 8000, 5, 4096},
                      EqCase{"same_x", 3000, 6, 512},
                      EqCase{"same_y", 3000, 7, 512},
                      EqCase{"same_xy", 2000, 8, 512},
                      EqCase{"grid", 2500, 9, 1024}));

class ThreeSidedEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(ThreeSidedEquivalence, AllStructuresAgree) {
  const auto& c = GetParam();
  auto pts = MakePoints(c.dist, c.n, c.seed);
  MemPageDevice dev(c.page_size);

  ThreeSidedPst cached(&dev);
  ThreeSidedPstOptions un;
  un.enable_path_caching = false;
  ThreeSidedPst uncached(&dev, un);
  DynamicThreeSidedPst dyn(&dev);
  XSortedBaseline scan(&dev);
  PrioritySearchTree incore(pts);
  DynamicPrioritySearchTree incore_dyn(pts);

  ASSERT_TRUE(cached.Build(pts).ok());
  ASSERT_TRUE(uncached.Build(pts).ok());
  ASSERT_TRUE(dyn.Build(pts).ok());
  ASSERT_TRUE(scan.Build(pts).ok());

  Rng rng(c.seed ^ 0xFF);
  for (int i = 0; i < 20; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.05 + 0.1 * (i % 5), &rng);
    auto want = BruteThreeSided(pts, q);

    std::vector<Point> got;
    ASSERT_TRUE(cached.QueryThreeSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "cached " << c.dist;
    got.clear();
    ASSERT_TRUE(uncached.QueryThreeSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "uncached " << c.dist;
    got.clear();
    ASSERT_TRUE(dyn.QueryThreeSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "dynamic " << c.dist;
    got.clear();
    ASSERT_TRUE(scan.QueryThreeSided(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "baseline " << c.dist;
    got.clear();
    incore.QueryThreeSided(q.x_min, q.x_max, q.y_min, &got);
    ASSERT_TRUE(SameResult(got, want)) << "incore " << c.dist;
    got.clear();
    incore_dyn.QueryThreeSided(q.x_min, q.x_max, q.y_min, &got);
    ASSERT_TRUE(SameResult(got, want)) << "incore-dyn " << c.dist;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreeSidedEquivalence,
    ::testing::Values(EqCase{"uniform", 8000, 11, 4096},
                      EqCase{"clustered", 8000, 12, 4096},
                      EqCase{"diagonal", 8000, 13, 1024},
                      EqCase{"same_x", 3000, 14, 512},
                      EqCase{"same_y", 3000, 15, 512},
                      EqCase{"grid", 2500, 16, 1024}));

// Stabbing equivalence: external segment tree, interval tree, in-core
// versions, and the [KRV]-reduction index all agree.
struct StabCase {
  const char* dist;
  uint64_t n;
  uint64_t seed;
  uint32_t page_size;
};

class StabbingEquivalence : public ::testing::TestWithParam<StabCase> {};

TEST_P(StabbingEquivalence, AllStructuresAgree) {
  const auto& c = GetParam();
  IntervalGenOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.domain_max = 200'000;
  o.mean_len_frac = 0.01;
  std::vector<Interval> ivs;
  if (std::string(c.dist) == "uniform") {
    ivs = GenIntervalsUniform(o);
  } else if (std::string(c.dist) == "nested") {
    ivs = GenIntervalsNested(o);
  } else {
    ivs = GenIntervalsBursty(o, 11);
  }

  MemPageDevice dev(c.page_size);
  ExtSegmentTree seg(&dev);
  ExtIntervalTree itree(&dev);
  StabbingIndex stab(&dev);
  SegmentTree incore_seg(ivs);
  IntervalTree incore_int(ivs);

  ASSERT_TRUE(seg.Build(ivs).ok());
  ASSERT_TRUE(itree.Build(ivs).ok());
  ASSERT_TRUE(stab.Build(ivs).ok());

  Rng rng(c.seed ^ 0xAB);
  for (int i = 0; i < 30; ++i) {
    int64_t q = rng.UniformRange(-10, 200'010);
    auto want = BruteStab(ivs, q);
    std::vector<Interval> got;
    ASSERT_TRUE(seg.Stab(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "segtree q=" << q;
    got.clear();
    ASSERT_TRUE(itree.Stab(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "inttree q=" << q;
    got.clear();
    ASSERT_TRUE(stab.Stab(q, &got).ok());
    ASSERT_TRUE(SameResult(got, want)) << "krv q=" << q;
    got.clear();
    incore_seg.Stab(q, &got);
    ASSERT_TRUE(SameResult(got, want)) << "incore-seg q=" << q;
    got.clear();
    incore_int.Stab(q, &got);
    ASSERT_TRUE(SameResult(got, want)) << "incore-int q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StabbingEquivalence,
    ::testing::Values(StabCase{"uniform", 6000, 21, 4096},
                      StabCase{"nested", 6000, 22, 4096},
                      StabCase{"bursty", 6000, 23, 1024},
                      StabCase{"uniform", 4000, 24, 512}));

}  // namespace
}  // namespace pathcache
