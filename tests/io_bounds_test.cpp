// Cross-page-size property sweep: every optimal structure's measured query
// I/O must satisfy  reads <= c1*log_B n + c2*ceil(t/B) + c3  for fixed
// constants, at every page size — the bounds are about B, so they must
// hold as B changes, not just at the default 4096.

#include <gtest/gtest.h>

#include "core/pathcache.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

struct BoundCase {
  uint32_t page_size;
  uint64_t n;
};

std::vector<Point> Pts(uint64_t n) {
  PointGenOptions o;
  o.n = n;
  o.seed = 77;
  o.coord_max = 1'000'000;
  return GenPointsUniform(o);
}

class TwoSidedBoundSweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(TwoSidedBoundSweep, CachedStructuresMeetTheBound) {
  const auto& c = GetParam();
  MemPageDevice dev(c.page_size);
  const uint32_t B = RecordsPerPage<Point>(c.page_size);
  const uint64_t logB_n = CeilLogBase(c.n, std::max(B, 2u)) + 1;
  auto pts = Pts(c.n);

  ExternalPst basic(&dev);
  ASSERT_TRUE(basic.Build(pts).ok());
  TwoLevelPst two(&dev);
  ASSERT_TRUE(two.Build(pts).ok());

  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    auto q = SampleTwoSidedQuery(pts, &rng);
    for (int which = 0; which < 2; ++which) {
      std::vector<Point> out;
      dev.ResetStats();
      if (which == 0) {
        ASSERT_TRUE(basic.QueryTwoSided(q, &out).ok());
      } else {
        ASSERT_TRUE(two.QueryTwoSided(q, &out).ok());
      }
      uint64_t bound = 12 * logB_n + 5 * CeilDiv(out.size(), B) + 20;
      EXPECT_LE(dev.stats().reads, bound)
          << "which=" << which << " page=" << c.page_size
          << " t=" << out.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoSidedBoundSweep,
                         ::testing::Values(BoundCase{512, 30'000},
                                           BoundCase{1024, 60'000},
                                           BoundCase{4096, 120'000},
                                           BoundCase{16384, 200'000}));

class StabBoundSweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(StabBoundSweep, IntervalStructuresMeetTheBound) {
  const auto& c = GetParam();
  const uint32_t B = RecordsPerPage<Interval>(c.page_size);
  const uint64_t logB_n = CeilLogBase(c.n, std::max(B, 2u)) + 1;

  IntervalGenOptions o;
  o.n = c.n;
  o.seed = 13;
  o.domain_max = 4'000'000;
  o.mean_len_frac = 0.003;
  auto ivs = GenIntervalsUniform(o);
  MakeEndpointsDistinct(&ivs);

  MemPageDevice dev_s(c.page_size), dev_i(c.page_size);
  ExtSegmentTree seg(&dev_s);
  ASSERT_TRUE(seg.Build(ivs).ok());
  ExtIntervalTree itree(&dev_i);
  ASSERT_TRUE(itree.Build(ivs).ok());

  Rng rng(17);
  const int64_t domain = static_cast<int64_t>(ivs.size()) * 4;
  for (int i = 0; i < 25; ++i) {
    int64_t q = rng.UniformRange(0, domain);
    std::vector<Interval> out;
    dev_s.ResetStats();
    ASSERT_TRUE(seg.Stab(q, &out).ok());
    uint64_t bound = 10 * logB_n + 4 * CeilDiv(out.size(), B) + 16;
    EXPECT_LE(dev_s.stats().reads, bound)
        << "segtree page=" << c.page_size << " t=" << out.size();

    out.clear();
    dev_i.ResetStats();
    ASSERT_TRUE(itree.Stab(q, &out).ok());
    EXPECT_LE(dev_i.stats().reads, bound)
        << "inttree page=" << c.page_size << " t=" << out.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StabBoundSweep,
                         ::testing::Values(BoundCase{512, 30'000},
                                           BoundCase{1024, 60'000},
                                           BoundCase{4096, 120'000}));

class ThreeSidedBoundSweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ThreeSidedBoundSweep, MeetsTheBound) {
  const auto& c = GetParam();
  MemPageDevice dev(c.page_size);
  const uint32_t B = RecordsPerPage<Point>(c.page_size);
  const uint64_t logB_n = CeilLogBase(c.n, std::max(B, 2u)) + 1;
  auto pts = Pts(c.n);
  ThreeSidedPst pst(&dev);
  ASSERT_TRUE(pst.Build(pts).ok());

  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    auto q = SampleThreeSidedQuery(pts, 0.02 + 0.05 * (i % 4), &rng);
    std::vector<Point> out;
    dev.ResetStats();
    ASSERT_TRUE(pst.QueryThreeSided(q, &out).ok());
    uint64_t bound = 20 * logB_n + 5 * CeilDiv(out.size(), B) + 28;
    EXPECT_LE(dev.stats().reads, bound)
        << "page=" << c.page_size << " t=" << out.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreeSidedBoundSweep,
                         ::testing::Values(BoundCase{512, 30'000},
                                           BoundCase{1024, 60'000},
                                           BoundCase{4096, 120'000}));

}  // namespace
}  // namespace pathcache
