// Differential tests: all four external structures vs their in-core
// oracles, through the shared property-based harness in oracle_common.h.
// These subsume the per-structure MatchesBruteForce sweeps that previously
// lived in pst_external_test.cpp, three_sided_test.cpp,
// ext_segment_tree_test.cpp and ext_interval_tree_test.cpp.

#include "oracle_common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "io/mem_page_device.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace difftest {
namespace {

std::vector<Point> GenPointsFor(const DiffCase& c, int64_t coord_max) {
  PointGenOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.coord_max = coord_max;
  const std::string dist = c.dist;
  if (dist == "clustered") return GenPointsClustered(o, 6, 4000);
  if (dist == "anti") return GenPointsAntiCorrelated(o, 3000);
  if (dist == "diagonal") return GenPointsDiagonal(o, 1500);
  return GenPointsUniform(o);
}

std::vector<Interval> GenIntervalsFor(const DiffCase& c) {
  IntervalGenOptions o;
  o.n = c.n;
  o.seed = c.seed;
  o.domain_max = 2'000'000;
  o.mean_len_frac = 0.02;
  const std::string dist = c.dist;
  std::vector<Interval> ivs;
  if (dist == "nested") {
    ivs = GenIntervalsNested(o);
  } else if (dist == "bursty") {
    ivs = GenIntervalsBursty(o, 9);
  } else {
    ivs = GenIntervalsUniform(o);
  }
  MakeEndpointsDistinct(&ivs);
  return ivs;
}

/// Stab queries probe interval endpoints and their one-off neighbors (the
/// off-by-one hot spots), the midpoint, and a uniform position — cycled by
/// the query ordinal so a fixed query count covers every flavor.
int64_t SampleStab(const std::vector<Interval>& ivs, Rng* rng, int ordinal) {
  if (ivs.empty()) return rng->UniformRange(-5, 4'100'000);
  const Interval& iv = ivs[rng->Uniform(ivs.size())];
  switch (ordinal % 6) {
    case 0: return iv.lo;
    case 1: return iv.hi;
    case 2: return iv.lo - 1;
    case 3: return iv.hi + 1;
    case 4: return (iv.lo + iv.hi) / 2;
    default: return rng->UniformRange(-5, 4'100'000);
  }
}

struct ExternalPstAdapter {
  using Record = Point;
  using Query = TwoSidedQuery;
  static const char* Name() { return "ExternalPst"; }

  struct Instance {
    MemPageDevice dev;
    ExternalPst pst;
    Status init;
    Instance(const std::vector<Point>& recs, const DiffCase& c)
        : dev(c.page_size),
          pst(&dev, ExternalPstOptions{.enable_path_caching = c.caching}) {
      init = pst.Build(recs);
    }
    Status Query(const TwoSidedQuery& q, std::vector<Point>* out) const {
      return pst.QueryTwoSided(q, out);
    }
  };

  static std::vector<Point> GenRecords(const DiffCase& c) {
    return GenPointsFor(c, 200000);
  }
  static TwoSidedQuery Sample(const std::vector<Point>& recs, Rng* rng,
                              const DiffCase&, int) {
    return SampleTwoSidedQuery(recs, rng);
  }
  static std::vector<TwoSidedQuery> BoundaryQueries() {
    return {{INT64_MIN, INT64_MIN}, {INT64_MAX, INT64_MAX}};
  }
  static std::vector<Point> Oracle(const std::vector<Point>& recs,
                                   const TwoSidedQuery& q) {
    return BruteTwoSided(recs, q);
  }
  static std::string FormatQuery(const TwoSidedQuery& q) {
    return "TwoSidedQuery{" + std::to_string(q.x_min) + ", " +
           std::to_string(q.y_min) + "}";
  }
};

struct ThreeSidedAdapter {
  using Record = Point;
  using Query = ThreeSidedQuery;
  static const char* Name() { return "ThreeSidedPst"; }

  struct Instance {
    MemPageDevice dev;
    ThreeSidedPst pst;
    Status init;
    Instance(const std::vector<Point>& recs, const DiffCase& c)
        : dev(c.page_size),
          pst(&dev, ThreeSidedPstOptions{.enable_path_caching = c.caching}) {
      init = pst.Build(recs);
    }
    Status Query(const ThreeSidedQuery& q, std::vector<Point>* out) const {
      return pst.QueryThreeSided(q, out);
    }
  };

  static std::vector<Point> GenRecords(const DiffCase& c) {
    return GenPointsFor(c, 250000);
  }
  static ThreeSidedQuery Sample(const std::vector<Point>& recs, Rng* rng,
                                const DiffCase& c, int) {
    return SampleThreeSidedQuery(recs, c.x_frac, rng);
  }
  static std::vector<ThreeSidedQuery> BoundaryQueries() {
    // Whole plane (must report everything), inverted x-range (nothing).
    return {{INT64_MIN, INT64_MAX, INT64_MIN}, {10, 0, INT64_MIN}};
  }
  static std::vector<Point> Oracle(const std::vector<Point>& recs,
                                   const ThreeSidedQuery& q) {
    return BruteThreeSided(recs, q);
  }
  static std::string FormatQuery(const ThreeSidedQuery& q) {
    return "ThreeSidedQuery{" + std::to_string(q.x_min) + ", " +
           std::to_string(q.x_max) + ", " + std::to_string(q.y_min) + "}";
  }
};

struct SegTreeAdapter {
  using Record = Interval;
  using Query = int64_t;
  static const char* Name() { return "ExtSegmentTree"; }

  struct Instance {
    MemPageDevice dev;
    ExtSegmentTree tree;
    Status init;
    Instance(const std::vector<Interval>& recs, const DiffCase& c)
        : dev(c.page_size),
          tree(&dev,
               ExtSegmentTreeOptions{.enable_path_caching = c.caching}) {
      init = tree.Build(recs);
    }
    Status Query(int64_t q, std::vector<Interval>* out) const {
      return tree.Stab(q, out);
    }
  };

  static std::vector<Interval> GenRecords(const DiffCase& c) {
    return GenIntervalsFor(c);
  }
  static int64_t Sample(const std::vector<Interval>& recs, Rng* rng,
                        const DiffCase&, int ordinal) {
    return SampleStab(recs, rng, ordinal);
  }
  static std::vector<int64_t> BoundaryQueries() {
    return {INT64_MIN, -1, 0, INT64_MAX};
  }
  static std::vector<Interval> Oracle(const std::vector<Interval>& recs,
                                      int64_t q) {
    return BruteStab(recs, q);
  }
  static std::string FormatQuery(int64_t q) {
    return "Stab(" + std::to_string(q) + ")";
  }
};

struct IntervalTreeAdapter {
  using Record = Interval;
  using Query = int64_t;
  static const char* Name() { return "ExtIntervalTree"; }

  struct Instance {
    MemPageDevice dev;
    ExtIntervalTree tree;
    Status init;
    Instance(const std::vector<Interval>& recs, const DiffCase& c)
        : dev(c.page_size),
          tree(&dev,
               ExtIntervalTreeOptions{.enable_path_caching = c.caching}) {
      init = tree.Build(recs);
    }
    Status Query(int64_t q, std::vector<Interval>* out) const {
      return tree.Stab(q, out);
    }
  };

  static std::vector<Interval> GenRecords(const DiffCase& c) {
    return GenIntervalsFor(c);
  }
  static int64_t Sample(const std::vector<Interval>& recs, Rng* rng,
                        const DiffCase&, int ordinal) {
    return SampleStab(recs, rng, ordinal);
  }
  static std::vector<int64_t> BoundaryQueries() {
    return {INT64_MIN, -1, 0, INT64_MAX};
  }
  static std::vector<Interval> Oracle(const std::vector<Interval>& recs,
                                      int64_t q) {
    return BruteStab(recs, q);
  }
  static std::string FormatQuery(int64_t q) {
    return "Stab(" + std::to_string(q) + ")";
  }
};

class TwoSidedDifferential : public ::testing::TestWithParam<DiffCase> {};
TEST_P(TwoSidedDifferential, MatchesOracle) {
  RunDifferential<ExternalPstAdapter>(GetParam(), 30);
}
INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoSidedDifferential,
    ::testing::Values(DiffCase{.n = 1, .seed = 1},
                      DiffCase{.n = 50, .seed = 2},
                      DiffCase{.n = 1000, .seed = 3},
                      DiffCase{.n = 20000, .seed = 4},
                      DiffCase{.n = 20000, .seed = 5, .caching = false},
                      DiffCase{.n = 5000, .seed = 6, .page_size = 512},
                      DiffCase{.n = 5000, .seed = 7, .page_size = 512,
                               .caching = false},
                      DiffCase{.n = 5000, .seed = 8, .page_size = 256},
                      DiffCase{.n = 10000, .seed = 9, .dist = "clustered"},
                      DiffCase{.n = 10000, .seed = 10, .dist = "anti"},
                      DiffCase{.n = 10000, .seed = 11, .dist = "diagonal"},
                      DiffCase{.n = 10000, .seed = 12, .page_size = 1024,
                               .caching = false, .dist = "clustered"}));

class ThreeSidedDifferential : public ::testing::TestWithParam<DiffCase> {};
TEST_P(ThreeSidedDifferential, MatchesOracle) {
  RunDifferential<ThreeSidedAdapter>(GetParam(), 30);
}
INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreeSidedDifferential,
    ::testing::Values(DiffCase{.n = 50, .seed = 1, .x_frac = 0.3},
                      DiffCase{.n = 1000, .seed = 2, .x_frac = 0.2},
                      DiffCase{.n = 20000, .seed = 3, .x_frac = 0.1},
                      DiffCase{.n = 20000, .seed = 4, .x_frac = 0.01},
                      DiffCase{.n = 20000, .seed = 5, .caching = false,
                               .x_frac = 0.1},
                      DiffCase{.n = 8000, .seed = 6, .page_size = 512},
                      DiffCase{.n = 8000, .seed = 7, .page_size = 512,
                               .caching = false},
                      DiffCase{.n = 8000, .seed = 8, .page_size = 256,
                               .x_frac = 0.3},
                      DiffCase{.n = 15000, .seed = 9, .dist = "clustered",
                               .x_frac = 0.15},
                      DiffCase{.n = 15000, .seed = 10, .dist = "diagonal",
                               .x_frac = 0.15},
                      DiffCase{.n = 15000, .seed = 11, .page_size = 1024,
                               .x_frac = 0.5},
                      DiffCase{.n = 15000, .seed = 12, .page_size = 1024,
                               .x_frac = 0.9}));

class SegTreeDifferential : public ::testing::TestWithParam<DiffCase> {};
TEST_P(SegTreeDifferential, MatchesOracle) {
  RunDifferential<SegTreeAdapter>(GetParam(), 240);
}
INSTANTIATE_TEST_SUITE_P(
    Sweep, SegTreeDifferential,
    ::testing::Values(DiffCase{.n = 10, .seed = 1},
                      DiffCase{.n = 500, .seed = 2},
                      DiffCase{.n = 10000, .seed = 3},
                      DiffCase{.n = 10000, .seed = 4, .caching = false},
                      DiffCase{.n = 5000, .seed = 5, .page_size = 512},
                      DiffCase{.n = 5000, .seed = 6, .page_size = 512,
                               .caching = false},
                      DiffCase{.n = 8000, .seed = 7, .dist = "nested"},
                      DiffCase{.n = 8000, .seed = 8, .dist = "bursty"},
                      DiffCase{.n = 4000, .seed = 9, .page_size = 256}));

class IntervalTreeDifferential : public ::testing::TestWithParam<DiffCase> {};
TEST_P(IntervalTreeDifferential, MatchesOracle) {
  RunDifferential<IntervalTreeAdapter>(GetParam(), 240);
}
INSTANTIATE_TEST_SUITE_P(
    Sweep, IntervalTreeDifferential,
    ::testing::Values(DiffCase{.n = 10, .seed = 1},
                      DiffCase{.n = 500, .seed = 2},
                      DiffCase{.n = 10000, .seed = 3},
                      DiffCase{.n = 10000, .seed = 4, .caching = false},
                      DiffCase{.n = 5000, .seed = 5, .page_size = 512},
                      DiffCase{.n = 5000, .seed = 6, .page_size = 512,
                               .caching = false},
                      DiffCase{.n = 8000, .seed = 7, .dist = "nested"},
                      DiffCase{.n = 8000, .seed = 8, .dist = "bursty"},
                      DiffCase{.n = 4000, .seed = 9, .page_size = 256},
                      DiffCase{.n = 20000, .seed = 10, .page_size = 1024}));

/// The shrinker itself is load-bearing test infrastructure; pin its
/// behavior with a deliberately broken "structure" whose only bug is
/// dropping the record with the largest id from every answer.  The minimal
/// reproducer must shrink to exactly one record.
struct BuggyAdapter {
  using Record = Interval;
  using Query = int64_t;
  static const char* Name() { return "BuggyOracleDropper"; }

  struct Instance {
    std::vector<Interval> recs;
    Status init = Status::OK();
    Instance(const std::vector<Interval>& r, const DiffCase&) : recs(r) {}
    Status Query(int64_t q, std::vector<Interval>* out) const {
      *out = BruteStab(recs, q);
      if (!out->empty()) {
        auto worst = out->begin();
        for (auto it = out->begin(); it != out->end(); ++it) {
          if (it->id > worst->id) worst = it;
        }
        out->erase(worst);
      }
      return Status::OK();
    }
  };

  static std::vector<Interval> GenRecords(const DiffCase& c) {
    return GenIntervalsFor(c);
  }
  static int64_t Sample(const std::vector<Interval>& recs, Rng* rng,
                        const DiffCase&, int ordinal) {
    return SampleStab(recs, rng, ordinal);
  }
  static std::vector<int64_t> BoundaryQueries() { return {}; }
  static std::vector<Interval> Oracle(const std::vector<Interval>& recs,
                                      int64_t q) {
    return BruteStab(recs, q);
  }
  static std::string FormatQuery(int64_t q) {
    return "Stab(" + std::to_string(q) + ")";
  }
};

TEST(ShrinkerTest, MinimizesToSingleCulprit) {
  const DiffCase c{.n = 2000, .seed = 77};
  const auto recs = GenIntervalsFor(c);
  // Find a query the buggy structure answers wrongly (any non-empty stab).
  Rng rng(c.seed);
  int64_t q = 0;
  bool found = false;
  for (int i = 0; i < 200 && !found; ++i) {
    q = SampleStab(recs, &rng, i);
    found = !BruteStab(recs, q).empty();
  }
  ASSERT_TRUE(found);
  ASSERT_TRUE(Disagrees<BuggyAdapter>(recs, q, c));
  auto minimal = ShrinkRecords<BuggyAdapter>(recs, q, c);
  // One stabbed interval suffices to expose a dropped record.
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_TRUE(minimal[0].Contains(q));
}

TEST(ShrinkerTest, PassingCaseDoesNotDisagree) {
  const DiffCase c{.n = 300, .seed = 5};
  const auto recs = GenIntervalsFor(c);
  EXPECT_FALSE(Disagrees<SegTreeAdapter>(recs, recs[0].lo, c));
}

}  // namespace
}  // namespace difftest
}  // namespace pathcache
