#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/pst_two_level.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

std::vector<Point> UniformPts(uint64_t n, uint64_t seed) {
  PointGenOptions o;
  o.n = n;
  o.seed = seed;
  o.coord_max = 1'000'000;
  return GenPointsUniform(o);
}

TEST(XSortedBaselineTest, Empty) {
  MemPageDevice dev(4096);
  XSortedBaseline base(&dev);
  ASSERT_TRUE(base.Build({}).ok());
  std::vector<Point> out;
  ASSERT_TRUE(base.QueryTwoSided({0, 0}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(XSortedBaselineTest, MatchesBruteForce) {
  MemPageDevice dev(4096);
  XSortedBaseline base(&dev);
  auto pts = UniformPts(20000, 3);
  ASSERT_TRUE(base.Build(pts).ok());

  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    auto q2 = SampleTwoSidedQuery(pts, &rng);
    std::vector<Point> got;
    ASSERT_TRUE(base.QueryTwoSided(q2, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, q2)));

    auto q3 = SampleThreeSidedQuery(pts, 0.1, &rng);
    got.clear();
    ASSERT_TRUE(base.QueryThreeSided(q3, &got).ok());
    ASSERT_TRUE(SameResult(got, BruteThreeSided(pts, q3)));
  }
}

TEST(XSortedBaselineTest, DuplicateXValues) {
  MemPageDevice dev(512);
  XSortedBaseline base(&dev);
  std::vector<Point> pts;
  for (uint64_t i = 0; i < 3000; ++i) {
    pts.push_back({static_cast<int64_t>(i % 4), static_cast<int64_t>(i % 7),
                   i});
  }
  ASSERT_TRUE(base.Build(pts).ok());
  for (int64_t qx = -1; qx <= 4; ++qx) {
    for (int64_t qy = -1; qy <= 7; ++qy) {
      std::vector<Point> got;
      ASSERT_TRUE(base.QueryTwoSided({qx, qy}, &got).ok());
      ASSERT_TRUE(SameResult(got, BruteTwoSided(pts, {qx, qy})));
    }
  }
}

// The Section 1 claim that motivates the paper: on y-selective queries the
// 1-D baseline scans t_x >> t records while the path-cached structure pays
// only for its output.
TEST(XSortedBaselineTest, LosesToPathCachingOnYSelectiveQueries) {
  const uint32_t page = 4096;
  auto pts = UniformPts(200000, 7);

  MemPageDevice dev_b(page);
  XSortedBaseline base(&dev_b);
  ASSERT_TRUE(base.Build(pts).ok());

  MemPageDevice dev_p(page);
  TwoLevelPst pst(&dev_p);
  ASSERT_TRUE(pst.Build(pts).ok());

  // Low x_min (huge x-range), high y_min (tiny output).
  std::vector<int64_t> ys;
  for (const auto& p : pts) ys.push_back(p.y);
  std::sort(ys.begin(), ys.end(), std::greater<>());
  TwoSidedQuery q{10'000, ys[200]};  // t <= 201, t_x ~ 0.99 n

  std::vector<Point> a, b;
  dev_b.ResetStats();
  ASSERT_TRUE(base.QueryTwoSided(q, &a).ok());
  uint64_t io_base = dev_b.stats().reads;
  dev_p.ResetStats();
  ASSERT_TRUE(pst.QueryTwoSided(q, &b).ok());
  uint64_t io_pst = dev_p.stats().reads;
  ASSERT_TRUE(SameResult(a, b));
  EXPECT_LT(a.size(), 202u);
  // The baseline reads ~n/B pages; path caching reads ~log_B n + t/B.
  EXPECT_GT(io_base, 50 * io_pst);
}

TEST(XSortedBaselineTest, IoIsProportionalToXSelectivity) {
  MemPageDevice dev(4096);
  XSortedBaseline base(&dev);
  auto pts = UniformPts(100000, 9);
  ASSERT_TRUE(base.Build(pts).ok());
  const uint32_t B = RecordsPerPage<Point>(4096);

  // x >= 0: full scan.
  std::vector<Point> out;
  dev.ResetStats();
  ASSERT_TRUE(base.QueryTwoSided({0, INT64_MAX / 2}, &out).ok());
  uint64_t full = dev.stats().reads;
  EXPECT_GE(full, CeilDiv(pts.size(), B));

  // Narrow x band: few pages.
  out.clear();
  dev.ResetStats();
  ASSERT_TRUE(base.QueryThreeSided({500'000, 500'900, 0}, &out).ok());
  EXPECT_LE(dev.stats().reads, full / 10);
}

}  // namespace
}  // namespace pathcache
