// DynamicStore tests: merged queries vs. the set model, rebuild/publish,
// WAL replay on reopen, epoch pins across publishes, page accounting, the
// interleaved update/query/rebuild schedule harness (with ddmin shrinking)
// for every wrapped structure kind, the multi-generation fsck, and the
// metrics adapter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "dynamic/dynamic_fsck.h"
#include "dynamic/dynamic_metrics.h"
#include "dynamic/dynamic_store.h"
#include "core/persist.h"
#include "core/pst_external.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "obs/metrics.h"
#include "oracle_common.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

using difftest::dyntest::DynCase;
using difftest::dyntest::RunDynamicSchedule;

// Records are fully determined by their id: same id always means the same
// record (so the by-id oracle comparison is unambiguous), and interval
// endpoints of distinct ids never collide (endpoints are id mod id_max in
// each stride block), which keeps the schedule inside the distinct-endpoint
// regime the interval structures are specified for.
int64_t HashCoord(uint64_t id, uint64_t salt, int64_t coord_max) {
  const uint64_t h = (id + salt) * 0x9E3779B97F4A7C15ULL;
  return static_cast<int64_t>(h % static_cast<uint64_t>(coord_max + 1));
}

DynamicItem PointItemFor(uint64_t id, const DynCase& c) {
  return DynamicItem{HashCoord(id, 1, c.coord_max), HashCoord(id, 2, c.coord_max),
                     id};
}

DynamicItem IntervalItemFor(uint64_t id, const DynCase& c) {
  const uint64_t h = id * 0x9E3779B97F4A7C15ULL;
  const int64_t stride = static_cast<int64_t>(c.id_max);
  const int64_t u = static_cast<int64_t>(h % 8);
  const int64_t v = u + 1 + static_cast<int64_t>((h >> 8) % 8);
  return DynamicItem{static_cast<int64_t>(id) + u * stride,
                     static_cast<int64_t>(id) + v * stride, id};
}

struct TwoSidedDyn {
  using Record = Point;
  using Query = TwoSidedQuery;
  static const char* Name() { return "DynamicStore<ExternalPst>"; }
  static DynamicStructure Kind() { return DynamicStructure::kExternalPst; }
  static Point ToRecord(const DynamicItem& i) { return i.ToPoint(); }
  static DynamicItem MakeItem(Rng* rng, const DynCase& c) {
    return PointItemFor(rng->Uniform(c.id_max), c);
  }
  static Query SampleQuery(Rng* rng, const DynCase& c) {
    return TwoSidedQuery{rng->UniformRange(0, c.coord_max),
                         rng->UniformRange(0, c.coord_max)};
  }
  static Status RunQuery(DynamicStore* s, const Query& q,
                         std::vector<Point>* out) {
    return s->QueryTwoSided(q, out);
  }
  static std::vector<Point> Oracle(const std::vector<Point>& pts,
                                   const Query& q) {
    return BruteTwoSided(pts, q);
  }
  static std::string FormatQuery(const Query& q) {
    return "(x>=" + std::to_string(q.x_min) +
           ", y>=" + std::to_string(q.y_min) + ")";
  }
};

struct TwoLevelDyn : TwoSidedDyn {
  static const char* Name() { return "DynamicStore<TwoLevelPst>"; }
  static DynamicStructure Kind() { return DynamicStructure::kTwoLevelPst; }
};

struct ThreeSidedDyn {
  using Record = Point;
  using Query = ThreeSidedQuery;
  static const char* Name() { return "DynamicStore<ThreeSidedPst>"; }
  static DynamicStructure Kind() { return DynamicStructure::kThreeSidedPst; }
  static Point ToRecord(const DynamicItem& i) { return i.ToPoint(); }
  static DynamicItem MakeItem(Rng* rng, const DynCase& c) {
    return PointItemFor(rng->Uniform(c.id_max), c);
  }
  static Query SampleQuery(Rng* rng, const DynCase& c) {
    int64_t a = rng->UniformRange(0, c.coord_max);
    int64_t b = rng->UniformRange(0, c.coord_max);
    if (a > b) std::swap(a, b);
    return ThreeSidedQuery{a, b, rng->UniformRange(0, c.coord_max)};
  }
  static Status RunQuery(DynamicStore* s, const Query& q,
                         std::vector<Point>* out) {
    return s->QueryThreeSided(q, out);
  }
  static std::vector<Point> Oracle(const std::vector<Point>& pts,
                                   const Query& q) {
    return BruteThreeSided(pts, q);
  }
  static std::string FormatQuery(const Query& q) {
    return "(x in [" + std::to_string(q.x_min) + ", " +
           std::to_string(q.x_max) + "], y>=" + std::to_string(q.y_min) + ")";
  }
};

template <DynamicStructure K>
struct StabDyn {
  using Record = Interval;
  using Query = int64_t;
  static const char* Name() {
    return K == DynamicStructure::kExtSegmentTree
               ? "DynamicStore<ExtSegmentTree>"
               : "DynamicStore<ExtIntervalTree>";
  }
  static DynamicStructure Kind() { return K; }
  static Interval ToRecord(const DynamicItem& i) { return i.ToInterval(); }
  static DynamicItem MakeItem(Rng* rng, const DynCase& c) {
    return IntervalItemFor(rng->Uniform(c.id_max), c);
  }
  static Query SampleQuery(Rng* rng, const DynCase& c) {
    // Interval endpoints live in [0, 17 * id_max); sample stabs across it.
    return rng->UniformRange(0, static_cast<int64_t>(c.id_max) * 17);
  }
  static Status RunQuery(DynamicStore* s, const Query& q,
                         std::vector<Interval>* out) {
    return s->Stab(q, out);
  }
  static std::vector<Interval> Oracle(const std::vector<Interval>& ivs,
                                      const Query& q) {
    return BruteStab(ivs, q);
  }
  static std::string FormatQuery(const Query& q) { return std::to_string(q); }
};

using SegTreeDyn = StabDyn<DynamicStructure::kExtSegmentTree>;
using IntTreeDyn = StabDyn<DynamicStructure::kExtIntervalTree>;

std::vector<DynamicItem> SomePoints(int n, const DynCase& c) {
  std::vector<DynamicItem> items;
  for (int i = 0; i < n; ++i) items.push_back(PointItemFor(i, c));
  return items;
}

// --- Basic lifecycle -------------------------------------------------------

TEST(DynamicStoreTest, CreateWithInitialRecordsAnswersQueries) {
  DynCase c;
  c.coord_max = 10'000;
  c.id_max = 500;
  MemPageDevice mem(1024);
  auto initial = SomePoints(400, c);
  auto made = DynamicStore::Create(&mem, DynamicStructure::kExternalPst,
                                   initial);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto store = std::move(made).value();

  std::vector<Point> base;
  for (const auto& i : initial) base.push_back(i.ToPoint());
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    const TwoSidedQuery q{rng.UniformRange(0, c.coord_max),
                          rng.UniformRange(0, c.coord_max)};
    std::vector<Point> got;
    ASSERT_TRUE(store->QueryTwoSided(q, &got).ok());
    EXPECT_TRUE(SameResult(got, BruteTwoSided(base, q)));
  }
  ASSERT_TRUE(store->Destroy().ok());
  EXPECT_EQ(mem.live_pages(), 0u);
}

TEST(DynamicStoreTest, UpdatesMergeWithoutRebuild) {
  DynCase c;
  MemPageDevice mem(1024);
  auto initial = SomePoints(100, c);
  auto store = std::move(
      DynamicStore::Create(&mem, DynamicStructure::kExternalPst, initial)
          .value());

  // Delete an existing record, insert a new one, re-insert an existing one.
  std::vector<Point> model;
  for (const auto& i : initial) model.push_back(i.ToPoint());
  ASSERT_TRUE(store->Erase(initial[3]).ok());
  model.erase(std::remove_if(model.begin(), model.end(),
                             [&](const Point& p) {
                               return DynamicItem::From(p) == initial[3];
                             }),
              model.end());
  const DynamicItem fresh = PointItemFor(c.id_max + 7, c);
  ASSERT_TRUE(store->Insert(fresh).ok());
  model.push_back(fresh.ToPoint());
  ASSERT_TRUE(store->Insert(initial[5]).ok());  // re-insert: must collapse

  const TwoSidedQuery q{0, 0};  // everything
  std::vector<Point> got;
  ASSERT_TRUE(store->QueryTwoSided(q, &got).ok());
  EXPECT_TRUE(SameResult(got, BruteTwoSided(model, q)));

  // Rebuild publishes a fresh generation; the merged answer is unchanged
  // and the overlay is fully absorbed.
  ASSERT_TRUE(store->Rebuild().ok());
  EXPECT_EQ(store->stats().rebuilds, 1u);
  EXPECT_EQ(store->stats().delta_entries, 0u);
  EXPECT_GE(store->stats().generation_version, 2u);
  got.clear();
  ASSERT_TRUE(store->QueryTwoSided(q, &got).ok());
  EXPECT_TRUE(SameResult(got, BruteTwoSided(model, q)));

  ASSERT_TRUE(store->Destroy().ok());
  EXPECT_EQ(mem.live_pages(), 0u);
}

TEST(DynamicStoreTest, ReopenReplaysCommittedWal) {
  DynCase c;
  MemPageDevice mem(1024);
  PageId root;
  std::vector<Point> model;
  {
    auto initial = SomePoints(60, c);
    for (const auto& i : initial) model.push_back(i.ToPoint());
    auto store = std::move(
        DynamicStore::Create(&mem, DynamicStructure::kExternalPst, initial)
            .value());
    root = store->root();
    const DynamicItem extra = PointItemFor(c.id_max + 1, c);
    ASSERT_TRUE(store->Insert(extra).ok());
    model.push_back(extra.ToPoint());
    ASSERT_TRUE(store->Erase(initial[0]).ok());
    model.erase(model.begin());
    // No Rebuild, no Destroy: the store object goes away, the pages stay.
  }

  auto reopened = DynamicStore::Open(&mem, root);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->stats().replayed_records, 2u);
  const TwoSidedQuery q{0, 0};
  std::vector<Point> got;
  ASSERT_TRUE(reopened.value()->QueryTwoSided(q, &got).ok());
  EXPECT_TRUE(SameResult(got, BruteTwoSided(model, q)));
  ASSERT_TRUE(reopened.value()->Destroy().ok());
  EXPECT_EQ(mem.live_pages(), 0u);
}

TEST(DynamicStoreTest, EmptyStoreAcceptsUpdates) {
  MemPageDevice mem(1024);
  auto store = std::move(
      DynamicStore::Create(&mem, DynamicStructure::kExtIntervalTree, {})
          .value());
  std::vector<Interval> got;
  ASSERT_TRUE(store->Stab(5, &got).ok());
  EXPECT_TRUE(got.empty());

  ASSERT_TRUE(store->Insert(DynamicItem{0, 10, 1}).ok());
  ASSERT_TRUE(store->Stab(5, &got).ok());
  ASSERT_EQ(got.size(), 1u);
  ASSERT_TRUE(store->Rebuild().ok());
  got.clear();
  ASSERT_TRUE(store->Stab(5, &got).ok());
  EXPECT_EQ(got.size(), 1u);
  ASSERT_TRUE(store->Destroy().ok());
  EXPECT_EQ(mem.live_pages(), 0u);
}

TEST(DynamicStoreTest, WrongVerbForKindIsRejected) {
  MemPageDevice mem(1024);
  auto store = std::move(
      DynamicStore::Create(&mem, DynamicStructure::kExternalPst, {}).value());
  std::vector<Interval> ivs;
  EXPECT_FALSE(store->Stab(1, &ivs).ok());
  std::vector<Point> pts;
  EXPECT_FALSE(store->QueryThreeSided({0, 1, 0}, &pts).ok());
  ASSERT_TRUE(store->Destroy().ok());
}

// --- Epoch pins across publishes ------------------------------------------

TEST(DynamicStoreTest, PinnedGenerationSurvivesPublish) {
  DynCase c;
  MemPageDevice mem(1024);
  auto initial = SomePoints(120, c);
  auto store = std::move(
      DynamicStore::Create(&mem, DynamicStructure::kExternalPst, initial)
          .value());

  GenerationRef pinned = store->PinCurrent();
  ASSERT_NE(pinned.manifest, kInvalidPageId);

  ASSERT_TRUE(store->Insert(PointItemFor(c.id_max + 9, c)).ok());
  ASSERT_TRUE(store->Rebuild().ok());
  EXPECT_GT(store->current_version(), pinned.version);
  // The publish pruned the overlay, so the overlay no longer pairs with the
  // pinned base: the version-checked merge must refuse.
  std::vector<Point> out;
  EXPECT_FALSE(store->OverlayTwoSided(pinned.version, TwoSidedQuery{0, 0},
                                      &out));

  // The pinned generation's pages are still readable: a fresh handle over
  // its manifest answers exactly the old base.
  DynamicReadHandle h;
  ASSERT_TRUE(h.Open(&mem, store->structure(), pinned.manifest,
                     pinned.version)
                  .ok());
  std::vector<Point> base_got;
  ASSERT_TRUE(h.QueryTwoSided(TwoSidedQuery{0, 0}, &base_got, nullptr).ok());
  std::vector<Point> base_want;
  for (const auto& i : initial) base_want.push_back(i.ToPoint());
  EXPECT_TRUE(SameResult(base_got, base_want));
  h.Reset();

  // Last unpin reclaims the retired generation.
  const uint64_t live_before = mem.live_pages();
  store->Unpin(pinned.version);
  EXPECT_GE(store->stats().generations_reclaimed, 1u);
  EXPECT_LT(mem.live_pages(), live_before);

  ASSERT_TRUE(store->Destroy().ok());
  EXPECT_EQ(mem.live_pages(), 0u);
}

TEST(DynamicStoreTest, ThresholdTriggersAutomaticRebuild) {
  MemPageDevice mem(1024);
  DynamicStoreOptions opts;
  opts.rebuild_threshold = 4;
  DynCase c;
  auto store = std::move(DynamicStore::Create(&mem,
                                              DynamicStructure::kExternalPst,
                                              SomePoints(50, c), opts)
                             .value());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(store->Insert(PointItemFor(c.id_max + i, c)).ok());
  }
  EXPECT_GE(store->stats().rebuilds, 1u);
  EXPECT_LT(store->stats().delta_entries, 5u);
  ASSERT_TRUE(store->Destroy().ok());
}

TEST(DynamicStoreTest, BackgroundRebuildPublishes) {
  MemPageDevice mem(1024);
  SharedBufferPool pool(&mem, 4096);
  DynamicStoreOptions opts;
  opts.rebuild_threshold = 8;
  opts.background_rebuild = true;
  DynCase c;
  auto store = std::move(DynamicStore::Create(&pool,
                                              DynamicStructure::kExternalPst,
                                              SomePoints(80, c), opts)
                             .value());
  for (uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(store->Insert(PointItemFor(2 * c.id_max + i, c)).ok());
  }
  ASSERT_TRUE(store->WaitForRebuild().ok());
  EXPECT_GE(store->stats().rebuilds, 1u);

  std::vector<Point> model;
  for (const auto& i : SomePoints(80, c)) model.push_back(i.ToPoint());
  for (uint64_t i = 0; i < 32; ++i) {
    model.push_back(PointItemFor(2 * c.id_max + i, c).ToPoint());
  }
  std::vector<Point> got;
  ASSERT_TRUE(store->QueryTwoSided(TwoSidedQuery{0, 0}, &got).ok());
  EXPECT_TRUE(SameResult(got, BruteTwoSided(model, TwoSidedQuery{0, 0})));
  ASSERT_TRUE(store->Destroy().ok());
}

// --- Interleaved schedules, every structure kind ---------------------------

TEST(DynamicScheduleTest, TwoSidedSchedules) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    DynCase c;
    c.steps = 300;
    c.seed = seed;
    RunDynamicSchedule<TwoSidedDyn>(c);
  }
}

TEST(DynamicScheduleTest, TwoSidedSchedulesWithAutoRebuild) {
  DynCase c;
  c.steps = 400;
  c.seed = 42;
  c.rebuild_threshold = 16;
  RunDynamicSchedule<TwoSidedDyn>(c);
}

TEST(DynamicScheduleTest, TwoLevelSchedules) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DynCase c;
    c.steps = 250;
    c.seed = 10 + seed;
    RunDynamicSchedule<TwoLevelDyn>(c);
  }
}

TEST(DynamicScheduleTest, ThreeSidedSchedules) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DynCase c;
    c.steps = 250;
    c.seed = 20 + seed;
    RunDynamicSchedule<ThreeSidedDyn>(c);
  }
}

TEST(DynamicScheduleTest, SegmentTreeSchedules) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DynCase c;
    c.steps = 220;
    c.seed = 30 + seed;
    c.id_max = 128;
    RunDynamicSchedule<SegTreeDyn>(c);
  }
}

TEST(DynamicScheduleTest, IntervalTreeSchedules) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DynCase c;
    c.steps = 220;
    c.seed = 40 + seed;
    c.id_max = 128;
    RunDynamicSchedule<IntTreeDyn>(c);
  }
}

// --- Multi-generation fsck -------------------------------------------------

TEST(DynamicFsckTest, HealthyStoreHasFullCoverage) {
  DynCase c;
  MemPageDevice mem(1024);
  auto store = std::move(DynamicStore::Create(&mem,
                                              DynamicStructure::kExternalPst,
                                              SomePoints(150, c))
                             .value());
  ASSERT_TRUE(store->Insert(PointItemFor(c.id_max + 1, c)).ok());
  ASSERT_TRUE(store->Rebuild().ok());

  EXPECT_TRUE(IsDynamicRoot(&mem, store->root()));
  const PageId roots[] = {store->root()};
  DynamicFsckReport report;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, {}, &report).ok());
  EXPECT_EQ(report.stores, 1u);
  EXPECT_EQ(report.orphaned_generations, 0u);
  EXPECT_EQ(report.dangling_wal_pages, 0u);
  EXPECT_EQ(report.unreachable_pages, 0u);
  EXPECT_GT(report.generation_pages, 0u);
  EXPECT_GT(report.wal_pages, 0u);
  EXPECT_GT(report.structures_checked, 0u);
  ASSERT_TRUE(store->Destroy().ok());
}

TEST(DynamicFsckTest, ClassifiesOrphansDanglingAndDebrisThenGcs) {
  DynCase c;
  MemPageDevice mem(1024);
  auto store = std::move(DynamicStore::Create(&mem,
                                              DynamicStructure::kExternalPst,
                                              SomePoints(100, c))
                             .value());

  // An orphaned generation: a complete structure nothing references (what a
  // crash between build and publish leaves behind).
  {
    ExternalPst orphan(&mem);
    std::vector<Point> pts;
    for (int i = 0; i < 50; ++i) pts.push_back(PointItemFor(i, c).ToPoint());
    ASSERT_TRUE(orphan.Build(pts).ok());
    ASSERT_TRUE(SaveClustered(&orphan).ok());
  }
  // A dangling WAL page (truncated head moved past it, Free was lost).
  {
    auto p = mem.Allocate();
    ASSERT_TRUE(p.ok());
    std::vector<std::byte> buf(mem.page_size());
    WalPageHeader h;
    h.next = kInvalidPageId;
    std::memcpy(buf.data(), &h, sizeof(h));
    ASSERT_TRUE(mem.Write(p.value(), buf.data()).ok());
  }
  // Unrecognizable debris.
  {
    auto p = mem.Allocate();
    ASSERT_TRUE(p.ok());
    std::vector<std::byte> buf(mem.page_size(), std::byte{0x5A});
    ASSERT_TRUE(mem.Write(p.value(), buf.data()).ok());
  }

  const PageId roots[] = {store->root()};
  DynamicFsckReport report;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, {}, &report).ok());
  EXPECT_EQ(report.orphaned_generations, 1u);
  EXPECT_GT(report.orphaned_generation_pages, 0u);
  EXPECT_EQ(report.dangling_wal_pages, 1u);
  EXPECT_EQ(report.unreachable_pages, 1u);
  EXPECT_EQ(report.freed_pages, 0u);  // report-only by default

  DynamicFsckOptions gc;
  gc.gc = true;
  DynamicFsckReport after_gc;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, gc, &after_gc).ok());
  EXPECT_EQ(after_gc.freed_pages, after_gc.orphaned_generation_pages +
                                      after_gc.dangling_wal_pages +
                                      after_gc.unreachable_pages);

  // After gc the device is fully covered again.
  DynamicFsckReport clean;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, {}, &clean).ok());
  EXPECT_EQ(clean.orphaned_generations, 0u);
  EXPECT_EQ(clean.dangling_wal_pages, 0u);
  EXPECT_EQ(clean.unreachable_pages, 0u);

  ASSERT_TRUE(store->Destroy().ok());
  EXPECT_EQ(mem.live_pages(), 0u);
}

TEST(DynamicFsckTest, StaticCoTenantsAreOwnedNotOrphaned) {
  DynCase c;
  MemPageDevice mem(1024);
  auto store = std::move(DynamicStore::Create(&mem,
                                              DynamicStructure::kExternalPst,
                                              SomePoints(80, c))
                             .value());
  PageId static_manifest;
  {
    ExternalPst neighbor(&mem);
    std::vector<Point> pts;
    for (int i = 0; i < 40; ++i) pts.push_back(PointItemFor(i, c).ToPoint());
    ASSERT_TRUE(neighbor.Build(pts).ok());
    auto m = SaveClustered(&neighbor);
    ASSERT_TRUE(m.ok());
    static_manifest = m.value();
  }
  EXPECT_FALSE(IsDynamicRoot(&mem, static_manifest));

  const PageId roots[] = {store->root()};
  DynamicFsckOptions opts;
  opts.static_manifests = {static_manifest};
  DynamicFsckReport report;
  ASSERT_TRUE(VerifyDynamicStores(&mem, roots, opts, &report).ok());
  EXPECT_EQ(report.orphaned_generations, 0u);
  EXPECT_EQ(report.unreachable_pages, 0u);
  EXPECT_GT(report.static_pages, 0u);
  ASSERT_TRUE(store->Destroy().ok());
}

// --- Metrics adapter -------------------------------------------------------

TEST(DynamicStoreTest, MetricsRegistryExportsStoreCounters) {
  DynCase c;
  MemPageDevice mem(1024);
  auto store = std::move(DynamicStore::Create(&mem,
                                              DynamicStructure::kExternalPst,
                                              SomePoints(30, c))
                             .value());
  ASSERT_TRUE(store->Insert(PointItemFor(c.id_max + 1, c)).ok());
  ASSERT_TRUE(store->Rebuild().ok());

  MetricsRegistry reg;
  ASSERT_TRUE(RegisterDynamicStoreMetrics(&reg, "test", store.get()).ok());
  std::string prom;
  reg.WritePrometheus(&prom);
  EXPECT_NE(prom.find("pathcache_dynamic_updates_applied_total"),
            std::string::npos);
  EXPECT_NE(prom.find("pathcache_dynamic_rebuilds_total"), std::string::npos);
  EXPECT_NE(prom.find("pathcache_dynamic_generation_version"),
            std::string::npos);
  EXPECT_NE(prom.find("store=\"test\""), std::string::npos);
  ASSERT_TRUE(store->Destroy().ok());
}

}  // namespace
}  // namespace pathcache
