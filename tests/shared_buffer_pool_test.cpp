#include "io/shared_buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "io/mem_page_device.h"

namespace pathcache {
namespace {

class SharedBufferPoolTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPage = 256;
  MemPageDevice dev_{kPage};

  PageId MakePage(uint8_t fill) {
    PageId id = dev_.Allocate().value();
    std::vector<std::byte> buf(kPage);
    std::memset(buf.data(), fill, kPage);
    EXPECT_TRUE(dev_.Write(id, buf.data()).ok());
    return id;
  }
};

TEST_F(SharedBufferPoolTest, SecondReadIsAHit) {
  PageId id = MakePage(0xAA);
  SharedBufferPool pool(&dev_, 16, 4);
  dev_.ResetStats();
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{0xAA});
  EXPECT_EQ(dev_.stats().reads, 1u);
  EXPECT_EQ(pool.stats().reads, 2u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(SharedBufferPoolTest, EveryShardGetsAtLeastOneFrame) {
  // Capacity smaller than the shard count must still cache something in
  // every shard rather than rounding some shard down to zero frames.
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(MakePage(static_cast<uint8_t>(i)));
  SharedBufferPool pool(&dev_, 4, 8);
  EXPECT_EQ(pool.shard_count(), 8u);
  std::vector<std::byte> buf(kPage);
  for (PageId id : ids) ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  dev_.ResetStats();
  for (PageId id : ids) ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  // Ids 0..7 over 8 shards: one page per shard, all resident.
  EXPECT_EQ(dev_.stats().reads, 0u);
  EXPECT_EQ(pool.cached_pages(), 8u);
}

TEST_F(SharedBufferPoolTest, ZeroCapacityPassesThrough) {
  PageId id = MakePage(0x77);
  SharedBufferPool pool(&dev_, 0, 4);
  std::vector<std::byte> buf(kPage);
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 2u);
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(SharedBufferPoolTest, WriteThroughAndFreeInvalidate) {
  PageId id = MakePage(0x01);
  SharedBufferPool pool(&dev_, 16, 4);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  std::memset(buf.data(), 0x5C, kPage);
  ASSERT_TRUE(pool.Write(id, buf.data()).ok());
  std::vector<std::byte> direct(kPage);
  ASSERT_TRUE(dev_.Read(id, direct.data()).ok());
  EXPECT_EQ(direct[0], std::byte{0x5C});
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(buf[0], std::byte{0x5C});
  EXPECT_EQ(dev_.stats().reads, 0u);  // updated frame served from cache

  ASSERT_TRUE(pool.Free(id).ok());
  EXPECT_TRUE(pool.Read(id, buf.data()).IsCorruption());
}

TEST_F(SharedBufferPoolTest, ClearKeepsCountersResetStatsDropsThem) {
  PageId id = MakePage(0x21);
  SharedBufferPool pool(&dev_, 16, 4);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  pool.Clear();
  EXPECT_EQ(pool.stats().reads, 2u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.cached_pages(), 0u);
  ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  EXPECT_EQ(pool.misses(), 2u);
  pool.ClearAndResetStats();
  EXPECT_EQ(pool.stats().reads, 0u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST_F(SharedBufferPoolTest, ReadBatchCountsAndFillsSlots) {
  PageId a = MakePage(1), b = MakePage(2), c = MakePage(3);
  SharedBufferPool pool(&dev_, 16, 4);
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(pool.Read(b, buf.data()).ok());
  dev_.ResetStats();
  pool.ResetStats();
  std::vector<PageId> batch{a, b, c};
  std::vector<std::byte> bufs(batch.size() * kPage);
  ASSERT_TRUE(pool.ReadBatch(batch, bufs.data()).ok());
  EXPECT_EQ(pool.stats().reads, 3u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(dev_.stats().reads, 2u);
  EXPECT_EQ(bufs[0], std::byte{1});
  EXPECT_EQ(bufs[kPage], std::byte{2});
  EXPECT_EQ(bufs[2 * kPage], std::byte{3});
}

TEST_F(SharedBufferPoolTest, ReadBatchWithDuplicateIds) {
  PageId a = MakePage(0xA1), b = MakePage(0xB2);
  SharedBufferPool pool(&dev_, 16, 4);
  std::vector<PageId> batch{a, b, a};
  std::vector<std::byte> bufs(batch.size() * kPage);
  ASSERT_TRUE(pool.ReadBatch(batch, bufs.data()).ok());
  EXPECT_EQ(bufs[0], std::byte{0xA1});
  EXPECT_EQ(bufs[kPage], std::byte{0xB2});
  EXPECT_EQ(bufs[2 * kPage], std::byte{0xA1});
  EXPECT_EQ(pool.stats().reads, 3u);
}

// The TSan target for the CI concurrency job: many readers over one pool,
// mixed single and batched reads, including cold misses that race to insert
// the same pages.  Any locking mistake in SharedBufferPool shows up here
// under -fsanitize=thread.
TEST_F(SharedBufferPoolTest, ConcurrentReadersSeeConsistentPages) {
  constexpr int kPages = 64;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    ids.push_back(MakePage(static_cast<uint8_t>(i + 1)));
  }
  // Capacity below the working set so eviction and re-fetch race too.
  SharedBufferPool pool(&dev_, kPages / 2, 8);

  std::atomic<bool> failed{false};
  auto reader = [&](uint32_t seed) {
    uint64_t state = seed;
    auto next = [&state] {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return static_cast<uint32_t>(state >> 33);
    };
    std::vector<std::byte> one(kPage);
    std::vector<std::byte> many(4 * kPage);
    for (int it = 0; it < kItersPerThread && !failed.load(); ++it) {
      if (it % 4 == 0) {
        PageId batch[4];
        for (auto& id : batch) id = ids[next() % kPages];
        if (!pool.ReadBatch({batch, 4}, many.data()).ok()) {
          failed.store(true);
          return;
        }
        for (int s = 0; s < 4; ++s) {
          if (many[static_cast<size_t>(s) * kPage] !=
              static_cast<std::byte>(batch[s] + 1)) {
            failed.store(true);
            return;
          }
        }
      } else {
        PageId id = ids[next() % kPages];
        if (!pool.Read(id, one.data()).ok() ||
            one[0] != static_cast<std::byte>(id + 1)) {
          failed.store(true);
          return;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(reader, static_cast<uint32_t>(t + 1));
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  // Counters add up: every logical read is a hit or a miss, and each thread
  // issued 4 reads per batched iteration and 1 per single iteration.
  EXPECT_EQ(pool.hits() + pool.misses(), pool.stats().reads);
  constexpr uint64_t kReadsPerThread =
      (kItersPerThread / 4) * 4 + (kItersPerThread - kItersPerThread / 4);
  EXPECT_EQ(pool.stats().reads, kThreads * kReadsPerThread);
}

TEST_F(SharedBufferPoolTest, PinnedFrameSurvivesChurnAndBlocksFree) {
  PageId a = MakePage(0xA0);
  SharedBufferPool pool(&dev_, 4, 2);
  auto p = pool.Pin(a);
  ASSERT_TRUE(p.ok());
  const std::byte* stable = p.value();
  EXPECT_EQ(pool.pinned_pages(), 1u);

  std::vector<std::byte> buf(kPage);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.Read(MakePage(uint8_t(i + 1)), buf.data()).ok());
  }
  EXPECT_EQ(stable[0], std::byte{0xA0});
  dev_.ResetStats();
  ASSERT_TRUE(pool.Read(a, buf.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 0u);  // never evicted while pinned

  EXPECT_EQ(pool.Free(a).code(), StatusCode::kFailedPrecondition);
  pool.Unpin(a);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  EXPECT_TRUE(pool.Free(a).ok());
}

TEST_F(SharedBufferPoolTest, ConcurrentPinnedReadsStayCoherent) {
  // TSan coverage for the pin path: readers hold pins across shard-lock
  // releases while other threads churn the same shards; the pinned bytes
  // must stay valid and unchanged throughout.
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr int kPages = 32;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    ids.push_back(MakePage(static_cast<uint8_t>(i + 1)));
  }
  SharedBufferPool pool(&dev_, 8, 4);  // tight: constant eviction pressure
  std::atomic<bool> failed{false};

  auto worker = [&](uint32_t seed) {
    uint64_t x = seed;
    auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    std::vector<std::byte> one(kPage);
    for (int i = 0; i < kIters && !failed.load(); ++i) {
      const PageId id = ids[next() % kPages];
      if (next() % 2 == 0) {
        auto p = pool.Pin(id);
        if (!p.ok()) {
          failed.store(true);
          return;
        }
        // Touch other pages while holding the pin — eviction pressure on
        // this frame's shard must skip the pinned frame.
        for (int j = 0; j < 3; ++j) {
          (void)pool.Read(ids[next() % kPages], one.data());
        }
        if (p.value()[0] != static_cast<std::byte>(id + 1) ||
            p.value()[kPage - 1] != static_cast<std::byte>(id + 1)) {
          failed.store(true);
        }
        pool.Unpin(id);
      } else {
        if (!pool.Read(id, one.data()).ok() ||
            one[0] != static_cast<std::byte>(id + 1)) {
          failed.store(true);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker, static_cast<uint32_t>(t + 1));
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(pool.pinned_pages(), 0u);
  EXPECT_EQ(pool.hits() + pool.misses(), pool.stats().reads);
}

// --- SubmitBatch/AwaitBatch through the pool ------------------------------

TEST_F(SharedBufferPoolTest, AsyncBatchFallsBackWhenInnerIsSyncOnly) {
  // MemPageDevice has no async engine.  The FIRST pool SubmitBatch discovers
  // that mid-batch (counters already moved), finishes with a blocking inner
  // read, and memoizes; later submits refuse before counting so the
  // ReadBatch fallback counts the batch exactly once.
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(MakePage(static_cast<uint8_t>(i)));
  SharedBufferPool pool(&dev_, 16, 4);
  std::vector<std::byte> warm(kPage);
  ASSERT_TRUE(pool.Read(ids[1], warm.data()).ok());  // one future hit

  std::vector<std::byte> bufs(ids.size() * kPage);
  auto t = pool.SubmitBatch(ids, bufs.data());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(pool.AwaitBatch(t.value()).ok());
  for (size_t k = 0; k < ids.size(); ++k) {
    EXPECT_EQ(bufs[k * kPage], static_cast<std::byte>(k)) << "slot " << k;
  }
  EXPECT_EQ(pool.stats().reads, 1u + ids.size());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), ids.size());
  // All pages were admitted at await: a second async attempt now refuses
  // up front (memoized sync-only inner) and ReadBatch serves pure hits.
  EXPECT_EQ(pool.SubmitBatch(ids, bufs.data()).status().code(),
            StatusCode::kNotSupported);
  dev_.ResetStats();
  ASSERT_TRUE(pool.ReadBatch(ids, bufs.data()).ok());
  EXPECT_EQ(dev_.stats().reads, 0u);
}

TEST_F(SharedBufferPoolTest, AsyncBatchRefusesDuplicateIdsBeforeCounting) {
  PageId a = MakePage(0x11);
  PageId b = MakePage(0x22);
  SharedBufferPool pool(&dev_, 16, 4);
  std::vector<PageId> dup{a, b, a};
  std::vector<std::byte> bufs(dup.size() * kPage);
  EXPECT_EQ(pool.SubmitBatch(dup, bufs.data()).status().code(),
            StatusCode::kNotSupported);
  // Nothing counted: the ReadBatch fallback owns the whole batch.
  EXPECT_EQ(pool.stats().reads, 0u);
  EXPECT_EQ(pool.hits() + pool.misses(), 0u);
  ASSERT_TRUE(pool.ReadBatch(dup, bufs.data()).ok());
  EXPECT_EQ(pool.stats().reads, dup.size());
  EXPECT_EQ(bufs[0], std::byte{0x11});
  EXPECT_EQ(bufs[kPage], std::byte{0x22});
  EXPECT_EQ(bufs[2 * kPage], std::byte{0x11});
}

// --- Pin alignment (the packed-kernel performance contract) ---------------

TEST_F(SharedBufferPoolTest, PinnedFramesAreCacheLineAligned) {
  // io/aligned.h promises every pool frame starts on a 64-byte boundary so
  // the SIMD kernels' loads never straddle a cache line.  Exercise the full
  // frame lifecycle: first admission, hit re-pin, eviction + re-admission,
  // and survival through Clear().
  auto aligned = [](const std::byte* p) {
    return reinterpret_cast<uintptr_t>(p) % kPageFrameAlign == 0;
  };
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(MakePage(static_cast<uint8_t>(i + 1)));
  }
  SharedBufferPool pool(&dev_, 4, 1);  // one tiny shard: real eviction churn

  // Miss-path admission.
  auto p0 = pool.Pin(ids[0]);
  ASSERT_TRUE(p0.ok()) << p0.status().ToString();
  EXPECT_TRUE(aligned(p0.value()));
  pool.Unpin(ids[0]);

  // Hit-path re-pin returns the same resident, aligned frame.
  auto p0again = pool.Pin(ids[0]);
  ASSERT_TRUE(p0again.ok());
  EXPECT_EQ(p0again.value(), p0.value());
  EXPECT_TRUE(aligned(p0again.value()));
  pool.Unpin(ids[0]);

  // Evict it (capacity 4, read 12 distinct pages), then re-admit: the fresh
  // frame must be aligned too.
  std::vector<std::byte> buf(kPage);
  for (PageId id : ids) ASSERT_TRUE(pool.Read(id, buf.data()).ok());
  for (PageId id : ids) {
    auto p = pool.Pin(id);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_TRUE(aligned(p.value())) << "page " << id;
    EXPECT_EQ(p.value()[0], static_cast<std::byte>(id + 1));
    pool.Unpin(id);
  }

  // A frame pinned across Clear() keeps its (aligned) identity; pages
  // re-admitted after the Clear get fresh aligned frames.
  auto held = pool.Pin(ids[3]);
  ASSERT_TRUE(held.ok());
  const std::byte* held_ptr = held.value();
  pool.Clear();
  EXPECT_TRUE(aligned(held_ptr));
  EXPECT_EQ(held_ptr[0], static_cast<std::byte>(ids[3] + 1));
  auto readmitted = pool.Pin(ids[5]);
  ASSERT_TRUE(readmitted.ok());
  EXPECT_TRUE(aligned(readmitted.value()));
  pool.Unpin(ids[5]);
  pool.Unpin(ids[3]);
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

}  // namespace
}  // namespace pathcache
