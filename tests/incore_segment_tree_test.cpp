#include "incore/segment_tree.h"

#include <gtest/gtest.h>

#include "util/mathutil.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

TEST(InCoreSegTreeTest, Empty) {
  SegmentTree st;
  std::vector<Interval> out;
  st.Stab(5, &out);
  EXPECT_TRUE(out.empty());
}

TEST(InCoreSegTreeTest, SingleInterval) {
  std::vector<Interval> ivs = {{10, 20, 1}};
  SegmentTree st(ivs);
  std::vector<Interval> out;
  st.Stab(10, &out);
  EXPECT_EQ(out.size(), 1u);  // lo is inclusive
  out.clear();
  st.Stab(20, &out);
  EXPECT_EQ(out.size(), 1u);  // hi is inclusive
  out.clear();
  st.Stab(21, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  st.Stab(9, &out);
  EXPECT_TRUE(out.empty());
}

TEST(InCoreSegTreeTest, PointInterval) {
  std::vector<Interval> ivs = {{5, 5, 1}, {0, 10, 2}};
  SegmentTree st(ivs);
  std::vector<Interval> out;
  st.Stab(5, &out);
  EXPECT_TRUE(SameResult(out, BruteStab(ivs, 5)));
}

struct SegCase {
  uint64_t n;
  uint64_t seed;
  const char* dist;
};

class InCoreSegTreeRandomTest : public ::testing::TestWithParam<SegCase> {};

TEST_P(InCoreSegTreeRandomTest, MatchesBruteForce) {
  const auto& sc = GetParam();
  IntervalGenOptions o;
  o.n = sc.n;
  o.seed = sc.seed;
  o.domain_max = 100000;
  o.mean_len_frac = 0.05;
  std::vector<Interval> ivs;
  if (std::string(sc.dist) == "uniform") {
    ivs = GenIntervalsUniform(o);
  } else if (std::string(sc.dist) == "nested") {
    ivs = GenIntervalsNested(o);
  } else {
    ivs = GenIntervalsBursty(o, 10);
  }

  SegmentTree st(ivs);
  Rng rng(sc.seed ^ 0x5151);
  for (int i = 0; i < 60; ++i) {
    int64_t q = rng.UniformRange(-10, 100010);
    std::vector<Interval> got;
    st.Stab(q, &got);
    EXPECT_TRUE(SameResult(got, BruteStab(ivs, q))) << "q=" << q;
  }
  // Also stab exactly at endpoints, where off-by-ones live.
  for (int i = 0; i < 30; ++i) {
    const auto& iv = ivs[rng.Uniform(ivs.size())];
    for (int64_t q : {iv.lo, iv.hi, iv.lo - 1, iv.hi + 1}) {
      std::vector<Interval> got;
      st.Stab(q, &got);
      EXPECT_TRUE(SameResult(got, BruteStab(ivs, q))) << "q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InCoreSegTreeRandomTest,
    ::testing::Values(SegCase{10, 1, "uniform"}, SegCase{100, 2, "uniform"},
                      SegCase{2000, 3, "uniform"}, SegCase{2000, 4, "nested"},
                      SegCase{2000, 5, "bursty"}, SegCase{777, 6, "uniform"}));

TEST(InCoreSegTreeTest, StorageIsNLogN) {
  IntervalGenOptions o;
  o.n = 10000;
  o.seed = 9;
  auto ivs = GenIntervalsUniform(o);
  SegmentTree st(ivs);
  // Each interval sits in at most ~2 log(2n) cover lists.
  uint64_t bound = 2ULL * o.n * (CeilLog2(2 * o.n) + 1);
  EXPECT_LE(st.stored_copies(), bound);
  EXPECT_GE(st.stored_copies(), o.n);  // every interval stored somewhere
}

}  // namespace
}  // namespace pathcache
