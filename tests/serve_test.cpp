// Tests for the concurrent query-serving engine (src/serve/).
//
// Correctness: N worker threads x M queries per structure must return
// byte-identical results to single-threaded execution over the same saved
// structures.  Run under TSan in CI, this is also the data-race probe for
// the whole serving stack (SharedBufferPool, CountingPageDevice, the
// engine's queue and counters).
//
// Admission control and deadlines are asserted deterministically: a blocker
// request parks the only worker inside its completion callback, the test
// fills the queue / advances a FakeClock while the engine is provably
// quiescent, and only then releases the worker.  No sleeps, no timing
// assumptions.

#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <cstring>
#include <mutex>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "obs/promlint.h"
#include "obs/trace.h"
#include "serve/clock.h"
#include "serve/latency_histogram.h"
#include "serve/serve_metrics.h"
#include "workload/generators.h"
#include "workload/oracle.h"

namespace pathcache {
namespace {

struct SavedStore {
  MemPageDevice dev{4096};
  PageId pst_manifest = kInvalidPageId;
  PageId three_manifest = kInvalidPageId;
  PageId seg_manifest = kInvalidPageId;
  PageId int_manifest = kInvalidPageId;
  std::vector<Point> pts;
  std::vector<Interval> ivs;
};

// Builds and Save()s one structure of each kind on a fresh device.
void BuildStore(SavedStore* s, uint64_t n_pts = 4000,
                uint64_t n_ivs = 3000) {
  PointGenOptions po;
  po.n = n_pts;
  po.seed = 71;
  po.coord_max = 300000;
  s->pts = GenPointsUniform(po);

  IntervalGenOptions io;
  io.n = n_ivs;
  io.seed = 72;
  io.domain_max = 2'000'000;
  s->ivs = GenIntervalsUniform(io);
  MakeEndpointsDistinct(&s->ivs);

  {
    ExternalPst pst(&s->dev);
    ASSERT_TRUE(pst.Build(s->pts).ok());
    auto m = pst.Save();
    ASSERT_TRUE(m.ok());
    s->pst_manifest = m.value();
  }
  {
    ThreeSidedPst pst(&s->dev);
    ASSERT_TRUE(pst.Build(s->pts).ok());
    auto m = pst.Save();
    ASSERT_TRUE(m.ok());
    s->three_manifest = m.value();
  }
  {
    ExtSegmentTree st(&s->dev);
    ASSERT_TRUE(st.Build(s->ivs).ok());
    auto m = st.Save();
    ASSERT_TRUE(m.ok());
    s->seg_manifest = m.value();
  }
  {
    ExtIntervalTree it(&s->dev);
    ASSERT_TRUE(it.Build(s->ivs).ok());
    auto m = it.Save();
    ASSERT_TRUE(m.ok());
    s->int_manifest = m.value();
  }
}

TEST(QueryEngineTest, ConcurrentResultsMatchSingleThreaded) {
  SavedStore store;
  BuildStore(&store);
  SharedBufferPool pool(&store.dev, /*capacity_pages=*/4096);

  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 4096;
  opts.batch_size = 8;
  QueryEngine engine(&pool, opts);
  auto pst_id = engine.AddStructure(store.pst_manifest);
  auto three_id = engine.AddStructure(store.three_manifest);
  auto seg_id = engine.AddStructure(store.seg_manifest);
  auto int_id = engine.AddStructure(store.int_manifest);
  ASSERT_TRUE(pst_id.ok() && three_id.ok() && seg_id.ok() && int_id.ok());
  EXPECT_EQ(engine.structure_kind(pst_id.value()), QueryKind::kTwoSided);
  EXPECT_EQ(engine.structure_kind(three_id.value()), QueryKind::kThreeSided);
  EXPECT_EQ(engine.structure_kind(seg_id.value()), QueryKind::kStabbing);
  ASSERT_TRUE(engine.Start().ok());

  // Query mix: M of each kind, deterministic from the seed.
  constexpr int kPerKind = 40;
  struct Planned {
    uint32_t structure;
    ServeQuery query;
    QueryKind kind;
  };
  std::vector<Planned> plan;
  Rng rng(1234);
  for (int i = 0; i < kPerKind; ++i) {
    plan.push_back({pst_id.value(),
                    ServeQuery::TwoSided(SampleTwoSidedQuery(store.pts, &rng)),
                    QueryKind::kTwoSided});
    plan.push_back(
        {three_id.value(),
         ServeQuery::ThreeSided(SampleThreeSidedQuery(store.pts, 0.15, &rng)),
         QueryKind::kThreeSided});
    const Interval& iv = store.ivs[rng.Uniform(store.ivs.size())];
    plan.push_back({seg_id.value(), ServeQuery::Stab(iv.lo),
                    QueryKind::kStabbing});
    plan.push_back({int_id.value(),
                    ServeQuery::Stab((iv.lo + iv.hi) / 2),
                    QueryKind::kStabbing});
  }

  // Single-threaded ground truth from freshly Open()d handles over the bare
  // device — the serial execution the engine must match byte for byte.
  std::vector<QueryResult> want(plan.size());
  {
    ExternalPst pst(&store.dev);
    ASSERT_TRUE(pst.Open(store.pst_manifest).ok());
    ThreeSidedPst three(&store.dev);
    ASSERT_TRUE(three.Open(store.three_manifest).ok());
    ExtSegmentTree seg(&store.dev);
    ASSERT_TRUE(seg.Open(store.seg_manifest).ok());
    ExtIntervalTree itree(&store.dev);
    ASSERT_TRUE(itree.Open(store.int_manifest).ok());
    for (size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].kind == QueryKind::kTwoSided) {
        ASSERT_TRUE(
            pst.QueryTwoSided(plan[i].query.two_sided, &want[i].points)
                .ok());
      } else if (plan[i].kind == QueryKind::kThreeSided) {
        ASSERT_TRUE(three
                        .QueryThreeSided(plan[i].query.three_sided,
                                         &want[i].points)
                        .ok());
      } else if (plan[i].structure == seg_id.value()) {
        ASSERT_TRUE(seg.Stab(plan[i].query.stab, &want[i].intervals).ok());
      } else {
        ASSERT_TRUE(itree.Stab(plan[i].query.stab, &want[i].intervals).ok());
      }
    }
  }

  // Fan the plan out from several submitter threads; each result lands in
  // its own slot (no two callbacks share one).
  std::vector<QueryResult> got(plan.size());
  std::atomic<size_t> next{0};
  auto submitter = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= plan.size()) return;
      Status s = engine.Submit(
          plan[i].structure, plan[i].query,
          [&got, i](QueryResult r) { got[i] = std::move(r); });
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  };
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) submitters.emplace_back(submitter);
  for (auto& t : submitters) t.join();
  engine.Drain();

  for (size_t i = 0; i < plan.size(); ++i) {
    ASSERT_TRUE(got[i].status.ok()) << i << ": " << got[i].status.ToString();
    // Byte-identical: same records in the same order, not just same set.
    EXPECT_EQ(got[i].points, want[i].points) << "request " << i;
    EXPECT_EQ(got[i].intervals, want[i].intervals) << "request " << i;
    // Every executed query descends the skeletal tree: its isolated
    // per-request delta must show at least one logical read.
    EXPECT_GT(got[i].io.reads, 0u) << "request " << i;
    EXPECT_EQ(got[i].io.writes, 0u) << "request " << i;
  }

  ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, plan.size());
  EXPECT_EQ(stats.completed, plan.size());
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.latency.count, plan.size());
  uint64_t delta_sum = 0;
  for (const auto& r : got) delta_sum += r.io.reads;
  EXPECT_EQ(stats.io.reads, delta_sum);
  engine.Stop();
}

// Parks the engine's only worker inside a completion callback and hands
// control back to the test: with batch_size=1 the worker holds exactly one
// request, so everything submitted afterwards stays queued until Release().
class WorkerBlocker {
 public:
  // Must be submitted with a cheap query.  Blocks the worker until
  // Release().
  QueryDoneCallback Callback() {
    return [this](QueryResult) {
      started_.set_value();
      release_future_.wait();
    };
  }
  void AwaitWorkerParked() { started_.get_future().wait(); }
  void Release() { release_.set_value(); }

 private:
  std::promise<void> started_;
  std::promise<void> release_;
  std::shared_future<void> release_future_{release_.get_future().share()};
};

TEST(QueryEngineTest, QueueOverflowRejectsDeterministically) {
  SavedStore store;
  BuildStore(&store, /*n_pts=*/500, /*n_ivs=*/200);
  SharedBufferPool pool(&store.dev, 1024);

  FakeClock clock(1'000'000);
  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.batch_size = 1;
  opts.queue_capacity = 4;
  opts.clock = &clock;
  QueryEngine engine(&pool, opts);
  auto id = engine.AddStructure(store.pst_manifest);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start().ok());

  WorkerBlocker blocker;
  const ServeQuery cheap =
      ServeQuery::TwoSided(TwoSidedQuery{INT64_MAX, INT64_MAX});
  ASSERT_TRUE(engine.Submit(id.value(), cheap, blocker.Callback()).ok());
  blocker.AwaitWorkerParked();  // worker busy, queue provably empty

  std::atomic<int> completed{0};
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    .Submit(id.value(), cheap,
                            [&completed](QueryResult r) {
                              ASSERT_TRUE(r.status.ok());
                              ++completed;
                            })
                    .ok())
        << "submission " << i << " of " << opts.queue_capacity;
  }
  // The queue now holds exactly queue_capacity requests: the next one must
  // bounce, every time.
  Status overflow = engine.Submit(id.value(), cheap, nullptr);
  EXPECT_TRUE(overflow.IsOverloaded()) << overflow.ToString();

  ServeStats mid = engine.stats();
  EXPECT_EQ(mid.queue_depth, 4u);
  EXPECT_EQ(mid.max_queue_depth, 4u);
  EXPECT_EQ(mid.rejected_overload, 1u);

  blocker.Release();
  engine.Drain();
  EXPECT_EQ(completed.load(), 4);
  ServeStats done = engine.stats();
  EXPECT_EQ(done.completed, 5u);  // blocker + 4 queued
  EXPECT_EQ(done.rejected_overload, 1u);
  engine.Stop();
}

TEST(QueryEngineTest, DeadlineExpiryIsDeterministicAndCostsNoIo) {
  SavedStore store;
  BuildStore(&store, 500, 200);
  SharedBufferPool pool(&store.dev, 1024);

  FakeClock clock(1'000'000);
  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.batch_size = 1;
  opts.queue_capacity = 16;
  opts.clock = &clock;
  QueryEngine engine(&pool, opts);
  auto id = engine.AddStructure(store.seg_manifest);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start().ok());

  WorkerBlocker blocker;
  ASSERT_TRUE(
      engine.Submit(id.value(), ServeQuery::Stab(-1), blocker.Callback())
          .ok());
  blocker.AwaitWorkerParked();

  // Queued behind the blocker: one request due to expire, one with no
  // deadline, one with a still-distant deadline.
  std::promise<QueryResult> expired_p, no_deadline_p, future_p;
  ASSERT_TRUE(engine
                  .Submit(id.value(), ServeQuery::Stab(store.ivs[0].lo),
                          [&](QueryResult r) { expired_p.set_value(r); },
                          /*deadline_micros=*/clock.NowMicros() + 1'000)
                  .ok());
  ASSERT_TRUE(engine
                  .Submit(id.value(), ServeQuery::Stab(store.ivs[0].lo),
                          [&](QueryResult r) { no_deadline_p.set_value(r); })
                  .ok());
  ASSERT_TRUE(engine
                  .Submit(id.value(), ServeQuery::Stab(store.ivs[0].lo),
                          [&](QueryResult r) { future_p.set_value(r); },
                          clock.NowMicros() + 60'000'000)
                  .ok());

  // The worker is parked, so nothing has been dispatched: advancing the
  // clock past the first deadline expires it deterministically.
  clock.Advance(10'000);
  blocker.Release();
  engine.Drain();

  QueryResult expired = expired_p.get_future().get();
  EXPECT_TRUE(expired.status.IsDeadlineExceeded())
      << expired.status.ToString();
  EXPECT_TRUE(expired.intervals.empty());
  // Dropped before dispatch: not one page was read for it.
  EXPECT_EQ(expired.io.reads, 0u);
  EXPECT_EQ(expired.io.total(), 0u);

  QueryResult no_deadline = no_deadline_p.get_future().get();
  EXPECT_TRUE(no_deadline.status.ok());
  EXPECT_EQ(no_deadline.intervals,
            BruteStab(store.ivs, store.ivs[0].lo));

  QueryResult future = future_p.get_future().get();
  EXPECT_TRUE(future.status.ok());

  ServeStats stats = engine.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 4u);
  // Expired requests don't pollute the latency histogram.
  EXPECT_EQ(stats.latency.count, 3u);
  engine.Stop();
}

TEST(QueryEngineTest, LifecycleAndArgumentErrors) {
  SavedStore store;
  BuildStore(&store, 300, 100);
  SharedBufferPool pool(&store.dev, 256);
  QueryEngineOptions lifecycle_opts;
  lifecycle_opts.num_workers = 2;
  QueryEngine engine(&pool, lifecycle_opts);

  // Submitting before Start is refused (nothing would serve it).
  auto id = engine.AddStructure(store.int_manifest);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(engine.Submit(id.value(), ServeQuery::Stab(1), nullptr)
                  .IsFailedPrecondition());
  // Unknown structure ids are rejected outright.
  EXPECT_TRUE(engine.Submit(99, ServeQuery::Stab(1), nullptr)
                  .IsInvalidArgument());
  // A non-manifest page cannot be registered.
  auto bogus = pool.Allocate();
  ASSERT_TRUE(bogus.ok());
  std::vector<std::byte> zero(pool.page_size());
  ASSERT_TRUE(pool.Write(bogus.value(), zero.data()).ok());
  EXPECT_FALSE(engine.AddStructure(bogus.value()).ok());

  ASSERT_TRUE(engine.Start().ok());
  // The registration window closes at Start().
  EXPECT_TRUE(
      engine.AddStructure(store.pst_manifest).status().IsFailedPrecondition());
  EXPECT_TRUE(engine.Start().IsFailedPrecondition());

  // Stop drains what was accepted and is idempotent.
  std::atomic<int> done_count{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine
                    .Submit(id.value(), ServeQuery::Stab(i),
                            [&done_count](QueryResult) { ++done_count; })
                    .ok());
  }
  engine.Stop();
  EXPECT_EQ(done_count.load(), 8);
  engine.Stop();  // no-op
  EXPECT_TRUE(engine.Submit(id.value(), ServeQuery::Stab(1), nullptr)
                  .IsFailedPrecondition());
}

TEST(QueryEngineTest, TenantQuotaBoundsQueueResidencyDeterministically) {
  SavedStore store;
  BuildStore(&store, /*n_pts=*/500, /*n_ivs=*/200);
  SharedBufferPool pool(&store.dev, 1024);

  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.batch_size = 1;
  opts.queue_capacity = 8;
  QueryEngine engine(&pool, opts);
  auto id = engine.AddStructure(store.pst_manifest);
  ASSERT_TRUE(id.ok());

  // Setup-phase validation: tokens can't exceed the queue, and the window
  // closes at Start().
  EXPECT_TRUE(engine.SetTenantQuota(7, 9).IsInvalidArgument());
  ASSERT_TRUE(engine.SetTenantQuota(7, 2).ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_TRUE(engine.SetTenantQuota(8, 1).IsFailedPrecondition());

  WorkerBlocker blocker;
  const ServeQuery cheap =
      ServeQuery::TwoSided(TwoSidedQuery{INT64_MAX, INT64_MAX});
  ASSERT_TRUE(engine.Submit(id.value(), cheap, blocker.Callback()).ok());
  blocker.AwaitWorkerParked();  // worker busy, queue provably empty

  // The saturating tenant fills exactly its two tokens...
  std::atomic<int> tenant_done{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine
                    .Submit(id.value(), cheap,
                            [&tenant_done](QueryResult r) {
                              EXPECT_TRUE(r.status.ok());
                              ++tenant_done;
                            },
                            /*deadline_micros=*/0, /*tenant=*/7)
                    .ok())
        << i;
  }
  // ...and the third bounces kOverloaded even though the global queue
  // (capacity 8, depth 2) has plenty of room.
  Status third = engine.Submit(id.value(), cheap, nullptr,
                               /*deadline_micros=*/0, /*tenant=*/7);
  EXPECT_TRUE(third.IsOverloaded()) << third.ToString();

  // A quiet tenant with no configured quota is untouched by the saturator.
  std::atomic<int> quiet_done{0};
  ASSERT_TRUE(engine
                  .Submit(id.value(), cheap,
                          [&quiet_done](QueryResult r) {
                            EXPECT_TRUE(r.status.ok());
                            ++quiet_done;
                          })
                  .ok());

  ServeStats mid = engine.stats();
  EXPECT_EQ(mid.rejected_quota, 1u);
  ASSERT_EQ(mid.tenants.size(), 1u);
  EXPECT_EQ(mid.tenants[0].tenant, 7u);
  EXPECT_EQ(mid.tenants[0].quota, 2u);
  EXPECT_EQ(mid.tenants[0].queued, 2u);
  EXPECT_EQ(mid.tenants[0].admitted, 2u);
  EXPECT_EQ(mid.tenants[0].rejected, 1u);

  // Tokens are released at dequeue: once drained the tenant can submit
  // again, and everything admitted completed.
  blocker.Release();
  engine.Drain();
  EXPECT_EQ(tenant_done.load(), 2);
  EXPECT_EQ(quiet_done.load(), 1);
  std::promise<QueryResult> again;
  auto again_fut = again.get_future();
  ASSERT_TRUE(engine
                  .Submit(id.value(), cheap,
                          [&again](QueryResult r) {
                            again.set_value(std::move(r));
                          },
                          /*deadline_micros=*/0, /*tenant=*/7)
                  .ok());
  EXPECT_TRUE(again_fut.get().status.ok());
  ServeStats done = engine.stats();
  EXPECT_EQ(done.tenants[0].queued, 0u);
  EXPECT_EQ(done.tenants[0].admitted, 3u);

  // A zero-token quota would have shut the tenant out entirely; verified on
  // a fresh engine since quotas are setup-phase.
  QueryEngine shut(&pool, opts);
  auto id2 = shut.AddStructure(store.pst_manifest);
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(shut.SetTenantQuota(3, 0).ok());
  ASSERT_TRUE(shut.Start().ok());
  EXPECT_TRUE(shut.Submit(id2.value(), cheap, nullptr, 0, 3).IsOverloaded());
  shut.Stop();
  engine.Stop();
}

TEST(QueryEngineTest, SlowQueryLogMatchesPerRequestAccountingExactly) {
  SavedStore store;
  BuildStore(&store, /*n_pts=*/2000, /*n_ivs=*/500);
  SharedBufferPool pool(&store.dev, 2048);

  QueryEngineOptions opts;
  opts.num_workers = 1;
  opts.batch_size = 1;
  // reads_threshold = 1: every executed query trips the log, so each
  // completion has a log entry to compare against.
  opts.slow_query_log.reads_threshold = 1;
  std::mutex log_mu;
  std::vector<SlowQueryLogEntry> entries;
  opts.slow_query_log.sink = [&](const SlowQueryLogEntry& e) {
    std::lock_guard<std::mutex> lk(log_mu);
    entries.push_back(e);
  };
  QueryEngine engine(&pool, opts);
  auto id = engine.AddStructure(store.pst_manifest);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start().ok());

  // One at a time with a Drain() between: entries arrive in submit order.
  Rng rng(99);
  std::vector<ServeQuery> queries;
  std::vector<QueryResult> results;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(
        ServeQuery::TwoSided(SampleTwoSidedQuery(store.pts, &rng)));
    ASSERT_TRUE(engine
                    .Submit(id.value(), queries.back(),
                            [&results](QueryResult r) {
                              results.push_back(std::move(r));
                            })
                    .ok());
    engine.Drain();
  }

  ASSERT_EQ(results.size(), queries.size());
  ASSERT_EQ(entries.size(), queries.size());
  EXPECT_EQ(engine.stats().slow_queries, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    const SlowQueryLogEntry& e = entries[i];
    EXPECT_EQ(e.structure_id, id.value());
    EXPECT_EQ(e.kind, QueryKind::kTwoSided);
    EXPECT_EQ(e.latency_micros, results[i].latency_micros);
    // The log entry carries the request's accounting byte for byte.
    EXPECT_EQ(std::memcmp(&e.stats, &results[i].stats, sizeof(QueryStats)),
              0)
        << "entry " << i;
    EXPECT_EQ(std::memcmp(&e.io, &results[i].io, sizeof(IoStats)), 0)
        << "entry " << i;

    // And both equal a direct serial query's QueryStats over the bare
    // device: the engine adds no phantom reads to the classification.
    ExternalPst pst(&store.dev);
    ASSERT_TRUE(pst.Open(store.pst_manifest).ok());
    std::vector<Point> pts;
    QueryStats direct;
    ASSERT_TRUE(
        pst.QueryTwoSided(queries[i].two_sided, &pts, &direct).ok());
    EXPECT_EQ(std::memcmp(&e.stats, &direct, sizeof(QueryStats)), 0)
        << "entry " << i;
    EXPECT_EQ(e.stats.total_reads(), results[i].io.reads) << "entry " << i;
    // The rendered entry mentions the headline numbers.
    const std::string text = e.ToString();
    EXPECT_NE(text.find("latency_us=" + std::to_string(e.latency_micros)),
              std::string::npos);
    EXPECT_NE(text.find("structure=" + std::to_string(e.structure_id)),
              std::string::npos);
  }
  engine.Stop();
}

TEST(QueryEngineTest, SlowQueryLogLatencyThresholdAndDisable) {
  SavedStore store;
  BuildStore(&store, 500, 200);
  SharedBufferPool pool(&store.dev, 1024);

  // Disabled (both thresholds 0): nothing is ever captured.
  {
    QueryEngineOptions opts;
    opts.num_workers = 1;
    std::atomic<int> captured{0};
    opts.slow_query_log.sink = [&](const SlowQueryLogEntry&) { ++captured; };
    QueryEngine engine(&pool, opts);
    auto id = engine.AddStructure(store.seg_manifest);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine.Start().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          engine.Submit(id.value(), ServeQuery::Stab(store.ivs[0].lo), nullptr)
              .ok());
    }
    engine.Drain();
    EXPECT_EQ(captured.load(), 0);
    EXPECT_EQ(engine.stats().slow_queries, 0u);
    engine.Stop();
  }

  // Latency trigger, deterministic via FakeClock: park the worker, advance
  // the clock past the threshold for one queued request, then release.
  {
    FakeClock clock(1'000'000);
    QueryEngineOptions opts;
    opts.num_workers = 1;
    opts.batch_size = 1;
    opts.clock = &clock;
    opts.slow_query_log.latency_threshold_micros = 5'000;
    std::mutex log_mu;
    std::vector<SlowQueryLogEntry> entries;
    opts.slow_query_log.sink = [&](const SlowQueryLogEntry& e) {
      std::lock_guard<std::mutex> lk(log_mu);
      entries.push_back(e);
    };
    QueryEngine engine(&pool, opts);
    auto id = engine.AddStructure(store.seg_manifest);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine.Start().ok());

    WorkerBlocker blocker;
    ASSERT_TRUE(
        engine.Submit(id.value(), ServeQuery::Stab(-1), blocker.Callback())
            .ok());
    blocker.AwaitWorkerParked();
    // Queued while the worker is parked; its latency will include the 10ms
    // the clock advances below.
    ASSERT_TRUE(
        engine.Submit(id.value(), ServeQuery::Stab(store.ivs[0].lo), nullptr)
            .ok());
    clock.Advance(10'000);
    blocker.Release();
    engine.Drain();

    // The blocker ran before the clock advanced (latency 0); only the
    // queued request crossed the threshold.
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_GE(entries[0].latency_micros, 10'000u);
    EXPECT_EQ(entries[0].kind, QueryKind::kStabbing);
    EXPECT_EQ(engine.stats().slow_queries, 1u);
    engine.Stop();
  }
}

TEST(QueryEngineTest, TracerRecordsServeAndIoSpans) {
  SavedStore store;
  BuildStore(&store, 500, 200);
  SharedBufferPool pool(&store.dev, 1024);

  Tracer tracer(1 << 12);
  QueryEngineOptions opts;
  opts.num_workers = 2;
  opts.tracer = &tracer;
  QueryEngine engine(&pool, opts);
  auto id = engine.AddStructure(store.pst_manifest);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Start().ok());

  // Tracer off: serving records nothing.
  Rng rng(7);
  ASSERT_TRUE(engine
                  .Submit(id.value(),
                          ServeQuery::TwoSided(
                              SampleTwoSidedQuery(store.pts, &rng)),
                          nullptr)
                  .ok());
  engine.Drain();
  EXPECT_EQ(tracer.recorded(), 0u);

  tracer.Enable();
  constexpr int kQueries = 16;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(engine
                    .Submit(id.value(),
                            ServeQuery::TwoSided(
                                SampleTwoSidedQuery(store.pts, &rng)),
                            nullptr)
                    .ok());
  }
  engine.Drain();
  tracer.Disable();
  engine.Stop();

  std::vector<TraceEvent> events = tracer.Snapshot();
  int query_begins = 0, batch_begins = 0, io_begins = 0;
  for (const TraceEvent& e : events) {
    if (e.phase != 'B') continue;
    const std::string_view name = e.name;
    if (name == "serve.query") {
      ++query_begins;
      EXPECT_EQ(e.arg, id.value());
    } else if (name == "serve.batch") {
      ++batch_begins;
    } else if (name.substr(0, 3) == "io.") {
      ++io_begins;
    }
  }
  EXPECT_EQ(query_begins, kQueries);
  EXPECT_GE(batch_begins, 1);
  // Every query descends the tree, so device spans dominate query spans.
  EXPECT_GT(io_begins, query_begins);
  // The dump is loadable Chrome trace JSON.
  std::string doc;
  tracer.WriteChromeTrace(&doc);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("serve.query"), std::string::npos);
  EXPECT_NE(doc.find("io.read"), std::string::npos);
}

TEST(QueryEngineTest, ServeMetricsExportIsLintCleanAndTracksStats) {
  SavedStore store;
  BuildStore(&store, 500, 200);
  SharedBufferPool pool(&store.dev, 1024);

  QueryEngineOptions opts;
  opts.num_workers = 2;
  QueryEngine engine(&pool, opts);
  auto id = engine.AddStructure(store.int_manifest);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.SetTenantQuota(5, 4).ok());

  MetricsRegistry reg;
  ASSERT_TRUE(RegisterServeMetrics(&reg, "main", &engine).ok());
  // Distinct label: the pool's IoStats series must not collide with the
  // engine's (both families are pathcache_io_*).
  ASSERT_TRUE(RegisterSharedBufferPoolMetrics(&reg, "pool0", &pool).ok());

  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        engine.Submit(id.value(), ServeQuery::Stab(store.ivs[i].lo), nullptr)
            .ok());
  }
  // Two of those again as tenant 5, so the per-tenant series have data.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine
                    .Submit(id.value(), ServeQuery::Stab(store.ivs[i].lo),
                            nullptr, /*deadline_micros=*/0, /*tenant=*/5)
                    .ok());
  }
  engine.Drain();

  std::string text;
  reg.WritePrometheus(&text);
  Status lint = PrometheusLint(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << text;
  const ServeStats stats = engine.stats();
  EXPECT_NE(
      text.find("pathcache_serve_submitted_total{engine=\"main\"} " +
                std::to_string(stats.submitted)),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("pathcache_serve_latency_micros_count{engine=\"main\"} " +
                std::to_string(stats.latency.count)),
      std::string::npos);
  // The engine's aggregate worker IoStats export under device="main".
  EXPECT_NE(text.find("pathcache_io_reads_total{device=\"main\"} " +
                      std::to_string(stats.io.reads)),
            std::string::npos);
  // Per-tenant admission series carry an extra tenant label.
  EXPECT_NE(
      text.find("pathcache_serve_tenant_admitted_total{engine=\"main\","
                "tenant=\"5\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("pathcache_serve_tenant_queued{engine=\"main\",tenant=\"5\"} "
                "0"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("pathcache_serve_rejected_quota_total{engine=\"main\"} "
                      "0"),
            std::string::npos)
      << text;

  std::string json;
  reg.WriteJson(&json);
  EXPECT_NE(json.find("\"pathcache_serve_completed_total\""),
            std::string::npos);
  engine.Stop();
}

TEST(LatencyHistogramTest, QuantilesAndCounters) {
  LatencyHistogram h;
  LatencyHistogram::Snapshot empty = h.TakeSnapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0u);

  for (int i = 0; i < 98; ++i) h.Record(1);
  h.Record(1000);
  h.Record(1000);
  LatencyHistogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 98u + 2000u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_EQ(s.p50, 1u);
  EXPECT_EQ(s.p95, 1u);
  // The outliers sit in the [512, 1024) bucket; p99 reports its upper bound.
  EXPECT_EQ(s.p99, 1023u);

  h.Reset();
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAreAllCounted) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(uint64_t(t) * 100 + (i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.TakeSnapshot().count, uint64_t(kThreads) * kPerThread);
}

}  // namespace
}  // namespace pathcache
