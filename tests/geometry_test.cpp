#include "util/geometry.h"

#include <gtest/gtest.h>

namespace pathcache {
namespace {

TEST(GeometryTest, PointOrderings) {
  Point a{1, 9, 0}, b{2, 3, 1}, c{1, 9, 2};
  EXPECT_TRUE(LessByX(a, b));
  EXPECT_FALSE(LessByX(b, a));
  EXPECT_TRUE(LessByX(a, c));  // tie on x broken by id
  EXPECT_TRUE(LessByY(b, a));
  EXPECT_TRUE(LessByY(a, c));  // tie on y broken by id
  EXPECT_TRUE(GreaterByX(b, a));
  EXPECT_TRUE(GreaterByY(a, b));
}

TEST(GeometryTest, IntervalContains) {
  Interval iv{3, 7, 0};
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(8));
  Interval pt{4, 4, 1};
  EXPECT_TRUE(pt.Contains(4));
  EXPECT_FALSE(pt.Contains(3));
}

TEST(GeometryTest, QueryShapes) {
  Point p{10, 20, 0};
  EXPECT_TRUE((TwoSidedQuery{10, 20}).Contains(p));
  EXPECT_FALSE((TwoSidedQuery{11, 20}).Contains(p));
  EXPECT_FALSE((TwoSidedQuery{10, 21}).Contains(p));

  EXPECT_TRUE((ThreeSidedQuery{10, 10, 20}).Contains(p));
  EXPECT_FALSE((ThreeSidedQuery{11, 12, 0}).Contains(p));
  EXPECT_FALSE((ThreeSidedQuery{0, 9, 0}).Contains(p));
  EXPECT_FALSE((ThreeSidedQuery{0, 20, 21}).Contains(p));

  EXPECT_TRUE((RangeQuery{10, 10, 20, 20}).Contains(p));
  EXPECT_FALSE((RangeQuery{0, 9, 0, 100}).Contains(p));
  EXPECT_FALSE((RangeQuery{0, 100, 0, 19}).Contains(p));
}

TEST(GeometryTest, DiagonalCornerIsTwoSidedSpecialCase) {
  DiagonalCornerQuery dc{5};
  auto ts = dc.AsTwoSided();
  EXPECT_EQ(ts.x_min, 5);
  EXPECT_EQ(ts.y_min, 5);
  EXPECT_TRUE(ts.Contains({5, 5, 0}));
  EXPECT_FALSE(ts.Contains({4, 9, 0}));
}

TEST(GeometryTest, RecordSizesAreDiskStable) {
  // The on-disk formats depend on these sizes; a change is a format break.
  EXPECT_EQ(sizeof(Point), 24u);
  EXPECT_EQ(sizeof(Interval), 24u);
}

}  // namespace
}  // namespace pathcache
