// Record and mutation types shared by the dynamic-update layer (src/dynamic).
//
// Every external structure in this library stores 24-byte records of the
// same shape — Point{x, y, id} or Interval{lo, hi, id} — so the dynamic
// layer handles both through one layout-compatible DynamicItem and lets the
// store's kind decide how queries interpret the two coordinates.

#ifndef PATHCACHE_DYNAMIC_UPDATE_H_
#define PATHCACHE_DYNAMIC_UPDATE_H_

#include <cstdint>
#include <tuple>

#include "util/geometry.h"

namespace pathcache {

/// One stored record, kind-agnostic: (a, b) is (x, y) for point structures
/// and (lo, hi) for interval structures; `id` is the caller's identifier.
struct DynamicItem {
  int64_t a = 0;
  int64_t b = 0;
  uint64_t id = 0;

  Point ToPoint() const { return Point{a, b, id}; }
  Interval ToInterval() const { return Interval{a, b, id}; }
  static DynamicItem From(const Point& p) { return DynamicItem{p.x, p.y, p.id}; }
  static DynamicItem From(const Interval& iv) {
    return DynamicItem{iv.lo, iv.hi, iv.id};
  }

  friend bool operator==(const DynamicItem&, const DynamicItem&) = default;
};
static_assert(sizeof(DynamicItem) == 24);

/// Total order used by the delta index and the merge paths.
struct DynamicItemLess {
  bool operator()(const DynamicItem& x, const DynamicItem& y) const {
    return std::tie(x.a, x.b, x.id) < std::tie(y.a, y.b, y.id);
  }
};

enum class UpdateOp : uint8_t {
  kInsert = 1,  // add one copy of the item
  kDelete = 2,  // remove one copy if any copy is present, else a no-op
};

/// One acknowledged mutation.  Groups of these are the unit of atomicity:
/// a group is durable (and acknowledged) only after its WAL commit record
/// is synced, and recovery replays whole groups or nothing.
struct DynamicUpdate {
  UpdateOp op = UpdateOp::kInsert;
  DynamicItem item;

  friend bool operator==(const DynamicUpdate&, const DynamicUpdate&) = default;
};

}  // namespace pathcache

#endif  // PATHCACHE_DYNAMIC_UPDATE_H_
