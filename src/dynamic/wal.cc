#include "dynamic/wal.h"

#include <cstring>
#include <utility>

#include "io/crc32c.h"

namespace pathcache {

namespace {

// CRC over everything after the crc field: op, pad, lsn, item.
uint32_t RecordCrc(const WalRecordDisk& r) {
  const std::byte* base = reinterpret_cast<const std::byte*>(&r);
  return Crc32c(base + sizeof(uint32_t), sizeof(WalRecordDisk) - sizeof(uint32_t));
}

WalRecordDisk MakeRecord(WalOp op, uint64_t lsn, const DynamicItem& item) {
  WalRecordDisk r;
  r.op = static_cast<uint8_t>(op);
  r.lsn = lsn;
  r.item = item;
  r.crc = RecordCrc(r);
  return r;
}

size_t SlotOffset(uint32_t slot) {
  return sizeof(WalPageHeader) + static_cast<size_t>(slot) * sizeof(WalRecordDisk);
}

}  // namespace

WriteAheadLog::WriteAheadLog(PageDevice* dev)
    : dev_(dev),
      page_size_(dev->page_size()),
      slots_per_page_(SlotsPerPage(dev->page_size())) {}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(PageDevice* dev) {
  if (SlotsPerPage(dev->page_size()) == 0) {
    return Status::InvalidArgument("page size too small for WAL records");
  }
  auto log = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(dev));
  PC_ASSIGN_OR_RETURN(PageId head, dev->Allocate());
  PC_ASSIGN_OR_RETURN(log->spare_, dev->Allocate());
  log->pages_.push_back(head);
  log->page_max_lsn_.push_back(0);
  log->tail_image_.assign(log->page_size_, std::byte{0});
  WalPageHeader hdr;
  hdr.seq = 0;
  hdr.next = log->spare_;
  std::memcpy(log->tail_image_.data(), &hdr, sizeof(hdr));
  PC_RETURN_IF_ERROR(dev->Write(head, log->tail_image_.data()));
  return log;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    PageDevice* dev, PageId head, uint64_t absorbed_lsn,
    std::vector<ReplayedRecord>* committed) {
  if (SlotsPerPage(dev->page_size()) == 0) {
    return Status::InvalidArgument("page size too small for WAL records");
  }
  auto log = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(dev));

  std::vector<std::byte> page(log->page_size_);
  std::vector<ReplayedRecord> pending;  // records since the last commit
  // Where the last *committed* record landed; everything after it is the
  // discarded tail that the next append must physically overwrite.
  size_t committed_page_index = 0;
  uint32_t committed_slots = 0;

  uint64_t last_lsn = 0;
  PageId cursor = head;
  const uint64_t live_bound = dev->live_pages() + 2;  // cycle guard
  bool stop = false;
  while (!stop) {
    if (log->pages_.size() > live_bound) {
      return Status::Corruption("WAL chain cycle");
    }
    Status rs = dev->Read(cursor, page.data());
    if (!rs.ok()) {
      if (log->pages_.empty()) return rs;  // unreadable head
      break;  // chain ran past the last durable page
    }
    WalPageHeader hdr;
    std::memcpy(&hdr, page.data(), sizeof(hdr));
    if (hdr.magic != kWalPageMagic) {
      if (log->pages_.empty()) {
        return Status::Corruption("WAL head is not a WAL page");
      }
      break;  // pre-allocated successor that was never written
    }
    log->pages_.push_back(cursor);
    log->page_max_lsn_.push_back(0);

    uint32_t slot = 0;
    for (; slot < log->slots_per_page_; ++slot) {
      WalRecordDisk rec;
      std::memcpy(&rec, page.data() + SlotOffset(slot), sizeof(rec));
      if (rec.op == 0) break;  // end of used slots
      if (rec.crc != RecordCrc(rec) || rec.lsn <= last_lsn) {
        stop = true;  // torn or stale bytes: end of log
        break;
      }
      last_lsn = rec.lsn;
      log->page_max_lsn_.back() = rec.lsn;
      switch (static_cast<WalOp>(rec.op)) {
        case WalOp::kInsert:
        case WalOp::kDelete:
          pending.push_back(ReplayedRecord{
              rec.lsn,
              rec.op == static_cast<uint8_t>(WalOp::kInsert) ? UpdateOp::kInsert
                                                             : UpdateOp::kDelete,
              rec.item});
          break;
        case WalOp::kCommit:
          for (ReplayedRecord& r : pending) {
            ++log->stats_.replay_records;
            if (r.lsn > absorbed_lsn && committed != nullptr) {
              committed->push_back(r);
            }
          }
          pending.clear();
          log->last_committed_lsn_ = rec.lsn;
          committed_page_index = log->pages_.size() - 1;
          committed_slots = slot + 1;
          break;
        default:
          stop = true;  // unknown op: treat as torn tail
          break;
      }
      if (stop) break;
    }
    if (stop) break;
    if (slot < log->slots_per_page_) break;  // page not full: it is the tail
    if (hdr.next == kInvalidPageId) break;
    cursor = hdr.next;
  }

  log->stats_.replay_discarded = pending.size();
  log->next_lsn_ = last_lsn + 1;

  // Torn-tail truncation: drop chain pages past the last committed record,
  // re-read the page it lives on as the tail image, and zero every slot
  // after it.  The dropped pages stay allocated — they are overwritten (via
  // the tail's pre-recorded `next` chain) as appends refill the log, and
  // until then fsck classifies them as WAL pages of this chain.
  if (log->pages_.empty()) return Status::Corruption("empty WAL chain");
  const size_t keep = committed_page_index + 1;
  // Pages past the tail keep their ids but leave the logical chain; the
  // tail's on-media `next` still points at the first of them, which is
  // exactly the pre-allocated-successor invariant AppendGroup relies on.
  log->junk_.assign(log->pages_.begin() + keep, log->pages_.end());
  log->pages_.resize(keep);
  log->page_max_lsn_.resize(keep);
  PC_RETURN_IF_ERROR(dev->Read(log->pages_.back(), page.data()));
  WalPageHeader tail_hdr;
  std::memcpy(&tail_hdr, page.data(), sizeof(tail_hdr));
  log->tail_seq_ = tail_hdr.seq;
  log->tail_image_.assign(page.begin(), page.end());
  std::memset(log->tail_image_.data() + SlotOffset(committed_slots), 0,
              log->page_size_ - SlotOffset(committed_slots));
  log->tail_slots_used_ = committed_slots;
  log->page_max_lsn_.back() = 0;
  for (uint32_t s = 0; s < committed_slots; ++s) {
    WalRecordDisk rec;
    std::memcpy(&rec, log->tail_image_.data() + SlotOffset(s), sizeof(rec));
    log->page_max_lsn_.back() = rec.lsn;
  }
  // The tail's on-media successor is the spare going forward; when the
  // torn tail spanned several pages that successor is junk_[0], and the
  // junk list shifts up so RollTail reuses the old chain in media order.
  log->spare_ = tail_hdr.next;
  if (!log->junk_.empty()) {
    log->spare_ = log->junk_.front();
    log->junk_.erase(log->junk_.begin());
  }
  if (log->spare_ == kInvalidPageId) {
    // Legacy/defensive: a tail without a successor gets one now; it is
    // persisted with the next page write.
    PC_ASSIGN_OR_RETURN(log->spare_, dev->Allocate());
    WalPageHeader* h = reinterpret_cast<WalPageHeader*>(log->tail_image_.data());
    h->next = log->spare_;
  }
  return log;
}

Status WriteAheadLog::WritePage(size_t chain_index) {
  return dev_->Write(pages_[chain_index], tail_image_.data());
}

Status WriteAheadLog::RollTail(std::vector<size_t>* dirty) {
  // Seal the current tail: its image is full and already has `next` set to
  // the spare.  Write it out as part of this group.
  dirty->push_back(pages_.size() - 1);
  PC_RETURN_IF_ERROR(WritePage(pages_.size() - 1));
  ++stats_.pages_sealed;

  // The spare becomes the new tail; pre-allocate its successor so the
  // header never changes after this first write.  Junk pages left behind
  // by torn-tail truncation are recycled first.
  PageId fresh = kInvalidPageId;
  if (!junk_.empty()) {
    fresh = junk_.front();
    junk_.erase(junk_.begin());
  } else {
    PC_ASSIGN_OR_RETURN(fresh, dev_->Allocate());
  }
  pages_.push_back(spare_);
  page_max_lsn_.push_back(0);
  spare_ = fresh;
  ++tail_seq_;
  tail_image_.assign(page_size_, std::byte{0});
  WalPageHeader hdr;
  hdr.seq = tail_seq_;
  hdr.next = spare_;
  std::memcpy(tail_image_.data(), &hdr, sizeof(hdr));
  tail_slots_used_ = 0;
  return Status::OK();
}

Status WriteAheadLog::PlaceRecord(WalOp op, const DynamicItem& item,
                                  std::vector<size_t>* dirty) {
  if (tail_slots_used_ == slots_per_page_) {
    PC_RETURN_IF_ERROR(RollTail(dirty));
  }
  const WalRecordDisk rec = MakeRecord(op, next_lsn_, item);
  if (tail_slots_used_ == 0) {
    WalPageHeader* h = reinterpret_cast<WalPageHeader*>(tail_image_.data());
    h->first_lsn = rec.lsn;
  }
  std::memcpy(tail_image_.data() + SlotOffset(tail_slots_used_), &rec,
              sizeof(rec));
  ++tail_slots_used_;
  page_max_lsn_.back() = rec.lsn;
  ++next_lsn_;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::AppendGroup(
    std::span<const DynamicUpdate> updates) {
  if (updates.empty()) {
    return Status::InvalidArgument("empty WAL group");
  }
  std::vector<size_t> dirty;  // sealed pages already written by RollTail
  for (const DynamicUpdate& u : updates) {
    PC_RETURN_IF_ERROR(PlaceRecord(
        u.op == UpdateOp::kInsert ? WalOp::kInsert : WalOp::kDelete, u.item,
        &dirty));
  }
  const uint64_t commit_lsn = next_lsn_;
  PC_RETURN_IF_ERROR(PlaceRecord(WalOp::kCommit, DynamicItem{}, &dirty));
  PC_RETURN_IF_ERROR(WritePage(pages_.size() - 1));
  PC_RETURN_IF_ERROR(dev_->Sync());
  last_committed_lsn_ = commit_lsn;
  stats_.records_appended += updates.size();
  ++stats_.group_commits;
  return commit_lsn;
}

size_t WriteAheadLog::TruncateDropCount(uint64_t absorbed_lsn) const {
  size_t drop = 0;
  while (drop + 1 < pages_.size() && page_max_lsn_[drop] <= absorbed_lsn &&
         page_max_lsn_[drop] != 0) {
    ++drop;
  }
  return drop;
}

PageId WriteAheadLog::TruncatePreview(uint64_t absorbed_lsn) const {
  return pages_[TruncateDropCount(absorbed_lsn)];
}

Result<PageId> WriteAheadLog::TruncateThrough(uint64_t absorbed_lsn) {
  const size_t drop = TruncateDropCount(absorbed_lsn);
  for (size_t i = 0; i < drop; ++i) {
    PC_RETURN_IF_ERROR(dev_->Free(pages_[i]));
    ++stats_.pages_truncated;
  }
  pages_.erase(pages_.begin(), pages_.begin() + drop);
  page_max_lsn_.erase(page_max_lsn_.begin(), page_max_lsn_.begin() + drop);
  return pages_.front();
}

Status WriteAheadLog::Destroy() {
  for (PageId id : pages_) PC_RETURN_IF_ERROR(dev_->Free(id));
  for (PageId id : junk_) PC_RETURN_IF_ERROR(dev_->Free(id));
  pages_.clear();
  junk_.clear();
  page_max_lsn_.clear();
  if (spare_ != kInvalidPageId) {
    PC_RETURN_IF_ERROR(dev_->Free(spare_));
    spare_ = kInvalidPageId;
  }
  return Status::OK();
}

std::vector<PageId> WriteAheadLog::OwnedPages() const {
  std::vector<PageId> out = pages_;
  out.insert(out.end(), junk_.begin(), junk_.end());
  if (spare_ != kInvalidPageId) out.push_back(spare_);
  return out;
}

}  // namespace pathcache
