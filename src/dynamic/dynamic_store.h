// DynamicStore: crash-safe online updates over any of the library's saved
// external structures (Section 5 of the paper, engineered for durability).
//
// Layered view of one store:
//
//   root page (immutable)           — names the two publish slots + kind
//   publish slots A/B (ping-pong)   — versioned, checksummed pointers to
//                                     the current GENERATION: the saved
//                                     structure's manifest, an items
//                                     snapshot (BlockList of DynamicItem),
//                                     the WAL head and the absorbed LSN
//   generation (immutable pages)    — a normal Save()d structure + items
//   write-ahead log (wal.h)         — committed mutations since absorption
//   delta overlay (delta.h)         — in-memory image of the WAL tail
//
// Mutations: Apply() appends the group to the WAL, group-commits with one
// Sync(), and only then folds the group into the in-memory overlay and
// acknowledges.  Queries merge the base generation with the overlay
// (delta.h documents why the merge is exact).
//
// Rebuild + publish: when the overlay passes a threshold (or on demand), a
// rebuild freezes the overlay at LSN L, bulk-builds a brand-new generation
// into fresh pages (old pages are never modified), Sync()s, and publishes
// by writing the *non-current* slot with version+1 and Sync()ing again —
// the dual-slot ping-pong makes the swap atomic: recovery picks the valid
// slot with the highest version, so a torn slot write simply loses the
// publish, never the store.  Only after the new slot is durable is the WAL
// truncated and the old generation retired.
//
// Epochs: readers pin the current generation (PinCurrent/Unpin); a publish
// retires the old generation but frees its pages only when its pin count
// drains to zero, so in-flight readers finish on the old generation
// without blocking the swap.
//
// Crash safety: a crash at ANY point recovers to exactly the acknowledged
// prefix — the winning slot names a complete generation, the WAL replays
// committed groups past the slot's absorbed LSN, and unacknowledged
// groups vanish atomically (wal.h).  Pages a crash orphans (a half-built
// generation, WAL pages past a truncation) are unreferenced, never
// corrupting; dynamic_fsck.h finds and reclaims them.
//
// Thread-safety: all public methods are safe to call concurrently.  The
// device must itself be thread-safe (e.g. SharedBufferPool) whenever
// background rebuilds or multi-threaded callers are in play; the overlay
// and WAL are guarded by one internal mutex.

#ifndef PATHCACHE_DYNAMIC_DYNAMIC_STORE_H_
#define PATHCACHE_DYNAMIC_DYNAMIC_STORE_H_

#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/three_sided.h"
#include "core/two_sided_index.h"
#include "dynamic/delta.h"
#include "dynamic/update.h"
#include "dynamic/wal.h"
#include "io/block_list.h"
#include "io/page_device.h"
#include "obs/trace.h"
#include "util/geometry.h"

namespace pathcache {

inline constexpr uint64_t kDynamicRootMagic = 0x544F4F5243414E59ULL;  // "YNACROOT"
inline constexpr uint64_t kDynamicSlotMagic = 0x544F4C5343414E59ULL;  // "YNACSLOT"
inline constexpr uint32_t kDynamicFormatVersion = 1;

/// Which saved structure a store wraps; decides both the rebuild builder
/// and which query verbs are valid (points: TwoSided for the 2-sided
/// indexes, ThreeSided for the PST; intervals: Stab for the two trees).
enum class DynamicStructure : uint32_t {
  kExternalPst = 1,
  kTwoLevelPst = 2,
  kThreeSidedPst = 3,
  kExtSegmentTree = 4,
  kExtIntervalTree = 5,
};

inline bool IsPointStructure(DynamicStructure k) {
  return k == DynamicStructure::kExternalPst ||
         k == DynamicStructure::kTwoLevelPst ||
         k == DynamicStructure::kThreeSidedPst;
}

struct DynamicRootHeader {
  uint64_t magic = kDynamicRootMagic;
  uint32_t format_version = kDynamicFormatVersion;
  uint32_t kind = 0;  // DynamicStructure
  PageId slot[2] = {kInvalidPageId, kInvalidPageId};
  uint32_t pad = 0;
  uint32_t header_crc = 0;  // CRC32C of the header with this field zeroed
};
static_assert(sizeof(DynamicRootHeader) == 40);

struct DynamicSlotHeader {
  uint64_t magic = kDynamicSlotMagic;
  uint64_t version = 0;  // publish counter; recovery picks the valid max
  PageId inner_manifest = kInvalidPageId;  // invalid = empty generation
  PageId items_head = kInvalidPageId;      // BlockList<DynamicItem> snapshot
  uint64_t items_count = 0;
  PageId wal_head = kInvalidPageId;
  uint64_t absorbed_lsn = 0;  // WAL records <= this are in the generation
  uint64_t reserved = 0;
  uint32_t pad = 0;
  uint32_t header_crc = 0;  // CRC32C of the header with this field zeroed
};
static_assert(sizeof(DynamicSlotHeader) == 72);

/// A per-device read handle over one generation's saved structure: the
/// store uses one internally, and each QueryEngine worker opens its own
/// over its private counting device so per-request I/O stays exact.
struct DynamicReadHandle {
  uint64_t version = 0;
  bool ready = false;  // false = empty generation (no structure)
  std::unique_ptr<TwoSidedIndex> two_sided;
  std::unique_ptr<ThreeSidedPst> three_sided;
  std::unique_ptr<ExtSegmentTree> seg_tree;
  std::unique_ptr<ExtIntervalTree> interval_tree;

  Status Open(PageDevice* dev, DynamicStructure kind, PageId manifest,
              uint64_t version);
  void Reset();
  Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                       QueryStats* stats) const;
  Status QueryThreeSided(const ThreeSidedQuery& q, std::vector<Point>* out,
                         QueryStats* stats) const;
  Status Stab(int64_t q, std::vector<Interval>* out, QueryStats* stats) const;
};

struct DynamicStoreOptions {
  /// Overlay size (entries) that triggers an automatic rebuild after an
  /// Apply(); 0 = rebuild only on explicit Rebuild() calls.
  uint64_t rebuild_threshold = 0;
  /// Run threshold-triggered rebuilds on a background thread instead of
  /// inline in Apply().  Requires a thread-safe device.
  bool background_rebuild = false;
  Tracer* tracer = nullptr;
};

struct DynamicStoreStats {
  uint64_t updates_applied = 0;
  uint64_t groups_committed = 0;
  uint64_t rebuilds = 0;
  uint64_t rebuild_failures = 0;
  uint64_t generations_reclaimed = 0;
  uint64_t replayed_records = 0;  // committed records re-applied at Open
  uint64_t delta_entries = 0;     // gauge: current overlay size
  uint64_t generation_items = 0;  // gauge: records in the base generation
  uint64_t generation_version = 0;
  uint64_t wal_chain_pages = 0;
  WriteAheadLog::WalStats wal;
};

/// An epoch pin on one generation (see PinCurrent).
struct GenerationRef {
  uint64_t version = 0;
  PageId manifest = kInvalidPageId;  // invalid = empty generation
  uint64_t items = 0;
};

class DynamicStore {
 public:
  /// Creates a new store (initial records are deduplicated), durable when
  /// the call returns; the caller persists root() wherever it keeps
  /// manifest ids.
  static Result<std::unique_ptr<DynamicStore>> Create(
      PageDevice* dev, DynamicStructure kind,
      std::span<const DynamicItem> initial = {}, DynamicStoreOptions opts = {});

  /// Recovers a store from its root page: picks the winning publish slot,
  /// replays the WAL's committed tail into the overlay, discards torn or
  /// unacknowledged records.
  static Result<std::unique_ptr<DynamicStore>> Open(
      PageDevice* dev, PageId root, DynamicStoreOptions opts = {});

  ~DynamicStore();

  PageId root() const { return root_; }
  DynamicStructure structure() const { return kind_; }

  /// Durably applies one group of mutations: WAL append + group-commit
  /// Sync, then the overlay.  When it returns OK the whole group survives
  /// any crash; on error (or a crash mid-call) the whole group is absent
  /// after recovery.
  Status Apply(std::span<const DynamicUpdate> updates);
  Status Insert(const DynamicItem& item) {
    DynamicUpdate u{UpdateOp::kInsert, item};
    return Apply({&u, 1});
  }
  Status Erase(const DynamicItem& item) {
    DynamicUpdate u{UpdateOp::kDelete, item};
    return Apply({&u, 1});
  }

  /// Merged queries (base generation + overlay).  Each verb is valid only
  /// for the matching structure kind.  Results carry no particular order.
  Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                       QueryStats* stats = nullptr);
  Status QueryThreeSided(const ThreeSidedQuery& q, std::vector<Point>* out,
                         QueryStats* stats = nullptr);
  Status Stab(int64_t q, std::vector<Interval>* out,
              QueryStats* stats = nullptr);

  /// Synchronously rebuilds + publishes a new generation and truncates the
  /// WAL.  Cheap no-op when the overlay is empty.
  Status Rebuild();

  /// Joins an in-flight background rebuild and returns its status (OK when
  /// none ran since the last call).
  Status WaitForRebuild();

  /// Epoch pins for external readers: the pinned generation's pages stay
  /// allocated until Unpin, even across publishes.  Every PinCurrent must
  /// be matched by exactly one Unpin with the returned version.
  GenerationRef PinCurrent();
  void Unpin(uint64_t version);
  /// The currently published version — cheap staleness probe for cached
  /// read handles (no lock).
  uint64_t current_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Overlay-side merge for external read handles: drops overridden
  /// records from `out` and appends matching present overrides.  Call with
  /// the base results of the pinned generation's structure and the pinned
  /// version; returns false (leaving `out` untouched) when a publish
  /// absorbed overlay entries since the pin — the overlay no longer pairs
  /// with that base, so the caller must re-pin and re-run the base query.
  bool OverlayTwoSided(uint64_t version, const TwoSidedQuery& q,
                       std::vector<Point>* out);
  bool OverlayThreeSided(uint64_t version, const ThreeSidedQuery& q,
                         std::vector<Point>* out);
  bool OverlayStab(uint64_t version, int64_t q, std::vector<Interval>* out);

  /// Frees retired generations whose pin counts drained to zero.  Runs
  /// automatically at publish and at the last Unpin of a retired
  /// generation.
  Status ReclaimRetired();

  /// Frees every page the store owns (current + retired generations, WAL,
  /// root and slots).  The store is unusable afterwards.
  Status Destroy();

  DynamicStoreStats stats() const;

 private:
  struct Generation {
    uint64_t version = 0;
    PageId manifest = kInvalidPageId;
    BlockListRef items;
    uint64_t pins = 0;  // guarded by mu_
    bool retired = false;
  };

  explicit DynamicStore(PageDevice* dev, DynamicStoreOptions opts);

  Status WriteRoot();
  Status WriteSlotLocked(uint32_t idx, const DynamicSlotHeader& h);
  // Builds a fresh generation (structure + items snapshot) from `items`;
  // pure page allocation + writes, no sync, no publish.
  Result<std::shared_ptr<Generation>> BuildGeneration(
      std::vector<DynamicItem> items);
  // Frees a generation's pages (structure via its own Destroy, items via
  // FreeBlockList).
  Status FreeGeneration(const Generation& g);
  Status ReclaimRetiredLocked();
  // The full rebuild pipeline; `locked_hint` is the overlay size observed
  // by the caller (metrics only).
  Status RunRebuild();
  void LaunchBackgroundRebuild();

  PageDevice* dev_;
  DynamicStoreOptions opts_;
  DynamicStructure kind_ = DynamicStructure::kExternalPst;
  PageId root_ = kInvalidPageId;
  PageId slot_page_[2] = {kInvalidPageId, kInvalidPageId};

  mutable std::mutex mu_;
  /// Serializes entire rebuild pipelines (freeze → build → publish); always
  /// acquired before mu_, never while holding it.  See RunRebuild.
  std::mutex rebuild_mu_;
  uint32_t current_slot_ = 0;  // index of the slot holding current_->version
  std::shared_ptr<Generation> current_;
  std::vector<std::shared_ptr<Generation>> retired_;
  std::unique_ptr<WriteAheadLog> wal_;
  DeltaIndex delta_;
  DynamicReadHandle handle_;  // the store's own read handle on dev_
  DynamicStoreStats stats_;
  std::atomic<uint64_t> version_{0};
  /// Equal to the published version while the delta is empty, 0 otherwise.
  /// Written only under mu_; lets OverlayX answer the idle common case (no
  /// pending updates) with one acquire load instead of taking mu_.
  std::atomic<uint64_t> idle_version_{0};

  // Background rebuild bookkeeping (guarded by mu_ except the thread).
  std::thread rebuild_thread_;
  bool rebuild_inflight_ = false;
  Status last_rebuild_status_;
};

}  // namespace pathcache

#endif  // PATHCACHE_DYNAMIC_DYNAMIC_STORE_H_
