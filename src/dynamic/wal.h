// Write-ahead log for the dynamic-update layer: a page-chained, checksummed,
// append-only record log over an arbitrary PageDevice.
//
// On-disk layout.  The log is a singly linked chain of pages.  Each page
// starts with a WalPageHeader followed by fixed-size 40-byte record slots.
// A record slot holds a CRC32C (over everything after the crc field), the
// op, an LSN and the 24-byte item payload.  An all-zero op byte marks the
// end of the used slots in a page.
//
// Torn-write safety.  Every mutation of an existing page is a pure record
// append: the header — including the `next` pointer, which is assigned when
// the page is FIRST written (its successor page is pre-allocated at that
// moment) — and all previously written slots are rewritten with identical
// bytes.  A torn write (arbitrary prefix of the new image, suffix from the
// old image) therefore can only garble slots belonging to the in-flight,
// not-yet-acknowledged group: acknowledged bytes are the same in both
// images.  Replay validates each slot's CRC and requires LSNs to be
// strictly increasing, so a torn tail parses as end-of-log.
//
// Group atomicity.  AppendGroup writes the group's records followed by one
// kCommit record, then issues a single PageDevice::Sync() and only then
// reports the group durable.  Replay buffers records until it sees their
// commit record; a missing or torn commit discards the whole group
// ("torn-tail truncation"), and the first append after recovery physically
// overwrites the discarded bytes so they can never be resurrected by a
// later commit record.
//
// The log itself never persists its own head pointer — the owner (the
// dynamic store's publish slot) records `head()` and the LSN watermark it
// has absorbed into a rebuilt generation, and passes both back to Open().

#ifndef PATHCACHE_DYNAMIC_WAL_H_
#define PATHCACHE_DYNAMIC_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dynamic/update.h"
#include "io/page_device.h"
#include "util/status.h"

namespace pathcache {

inline constexpr uint64_t kWalPageMagic = 0x484341'43'504C4157ULL;  // "WALPCACH"

struct WalPageHeader {
  uint64_t magic = kWalPageMagic;
  uint64_t seq = 0;      // position of this page in the chain, for debugging
  PageId next = kInvalidPageId;  // successor page, assigned at first write
  uint64_t first_lsn = 0;        // LSN of the first record slot, 0 if none yet
};
static_assert(sizeof(WalPageHeader) == 32);

enum class WalOp : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kCommit = 3,  // group commit marker; payload unused
};

/// One fixed-size record slot as stored on a WAL page.
struct WalRecordDisk {
  uint32_t crc = 0;  // CRC32C over the 36 bytes after this field
  uint8_t op = 0;    // 0 = unused slot (end of page)
  uint8_t pad[3] = {0, 0, 0};
  uint64_t lsn = 0;
  DynamicItem item;  // zero for kCommit
};
static_assert(sizeof(WalRecordDisk) == 40);

class WriteAheadLog {
 public:
  /// A committed record surfaced by replay (commit markers are consumed,
  /// not surfaced).
  struct ReplayedRecord {
    uint64_t lsn = 0;
    UpdateOp op = UpdateOp::kInsert;
    DynamicItem item;
  };

  struct WalStats {
    uint64_t records_appended = 0;
    uint64_t group_commits = 0;
    uint64_t pages_sealed = 0;
    uint64_t pages_truncated = 0;
    uint64_t replay_records = 0;
    uint64_t replay_discarded = 0;  // torn / uncommitted tail records dropped
  };

  /// Creates an empty log: writes the head page (with a pre-allocated
  /// successor) but does NOT sync — the owner's publish step provides the
  /// barrier that makes the new log reachable and durable atomically.
  static Result<std::unique_ptr<WriteAheadLog>> Create(PageDevice* dev);

  /// Opens an existing log from `head`, replaying every committed record
  /// with LSN > `absorbed_lsn` into `committed` (in log order).  Torn or
  /// uncommitted tail records are discarded, and the in-memory append
  /// cursor is positioned so the next AppendGroup physically overwrites
  /// them.  Never writes to the device.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      PageDevice* dev, PageId head, uint64_t absorbed_lsn,
      std::vector<ReplayedRecord>* committed);

  /// Appends the group followed by a commit marker, writes every dirty
  /// page, then syncs.  Returns the commit record's LSN; when it returns
  /// OK the whole group is durable, otherwise none of it is (after a
  /// crash-and-reopen).  Empty groups are rejected.
  Result<uint64_t> AppendGroup(std::span<const DynamicUpdate> updates);

  /// The head TruncateThrough(absorbed_lsn) would leave, without mutating
  /// anything.  Publish writes this preview into the slot BEFORE the
  /// truncation frees pages, so the durable head never points at a freed
  /// page.
  PageId TruncatePreview(uint64_t absorbed_lsn) const;

  /// Frees chain pages whose records are all committed at LSN <=
  /// `absorbed_lsn`, keeping at least the tail page.  Returns the new head.
  /// The caller must durably record the new head BEFORE calling this (a
  /// crash in between leaves dangling-but-unreferenced WAL pages for fsck,
  /// never a dangling head pointer).
  Result<PageId> TruncateThrough(uint64_t absorbed_lsn);

  /// Frees every page of the log, including the pre-allocated spare.
  Status Destroy();

  /// All pages the log owns on the device: the chain plus the
  /// pre-allocated successor of the tail page.
  std::vector<PageId> OwnedPages() const;

  PageId head() const { return pages_.front(); }
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t last_committed_lsn() const { return last_committed_lsn_; }
  uint64_t chain_pages() const { return pages_.size(); }
  const WalStats& stats() const { return stats_; }

  /// Record slots per page for this device's page size.
  static uint32_t SlotsPerPage(uint32_t page_size) {
    return (page_size - static_cast<uint32_t>(sizeof(WalPageHeader))) /
           static_cast<uint32_t>(sizeof(WalRecordDisk));
  }

 private:
  explicit WriteAheadLog(PageDevice* dev);

  // Seals the tail (it is full), making the pre-allocated spare the new
  // tail and allocating a fresh spare for it.  Records the sealed page in
  // `dirty` so AppendGroup writes it out.
  Status RollTail(std::vector<size_t>* dirty);
  size_t TruncateDropCount(uint64_t absorbed_lsn) const;
  // Places one record into the tail image, rolling first if full.
  Status PlaceRecord(WalOp op, const DynamicItem& item,
                     std::vector<size_t>* dirty);
  Status WritePage(size_t chain_index);

  PageDevice* dev_;
  uint32_t page_size_;
  uint32_t slots_per_page_;

  std::vector<PageId> pages_;         // the chain, head first
  std::vector<uint64_t> page_max_lsn_;  // max record LSN per chain page
  PageId spare_ = kInvalidPageId;       // tail's pre-allocated successor
  // Pages that left the logical chain during torn-tail truncation but are
  // still allocated (and still linked from the media tail's `next` chain).
  // RollTail drains them as replacement spares before allocating fresh
  // pages, so recovery never has to Free() anything.
  std::vector<PageId> junk_;

  std::vector<std::byte> tail_image_;  // full image of the tail page
  uint32_t tail_slots_used_ = 0;
  uint64_t tail_seq_ = 0;

  uint64_t next_lsn_ = 1;
  uint64_t last_committed_lsn_ = 0;
  WalStats stats_;
};

}  // namespace pathcache

#endif  // PATHCACHE_DYNAMIC_WAL_H_
