#include "dynamic/dynamic_fsck.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "core/pst_common.h"
#include "dynamic/wal.h"
#include "io/block_list.h"
#include "io/crc32c.h"

namespace pathcache {

namespace {

uint32_t RootCrc(DynamicRootHeader h) {
  h.header_crc = 0;
  return Crc32c(&h, sizeof(h));
}

uint32_t SlotCrc(DynamicSlotHeader h) {
  h.header_crc = 0;
  return Crc32c(&h, sizeof(h));
}

bool IsStructureMagic(uint64_t magic) {
  return magic == kExternalPstMagic || magic == kTwoLevelPstMagic ||
         magic == kThreeSidedPstMagic || magic == kExtSegTreeMagic ||
         magic == kExtIntTreeMagic;
}

struct Claimer {
  std::unordered_set<PageId> owned;
  Status Claim(PageId p) {
    if (!owned.insert(p).second) {
      return Status::Corruption("page " + std::to_string(p) +
                                " is owned twice across the dynamic store");
    }
    return Status::OK();
  }
};

// Claims the WAL chain reachable from `head`: WAL-magic pages linked by
// their `next` pointers, plus the trailing pre-allocated (never-written,
// zeroed) successor.  Junk pages past a torn tail are WAL-magic pages on
// the same chain, so they are claimed too — they belong to the log and get
// recycled by future appends.
Status ClaimWalChain(PageDevice* dev, PageId head, Claimer* c,
                     uint64_t* wal_pages) {
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t bound = dev->live_pages() + 2;
  uint64_t walked = 0;
  PageId cursor = head;
  bool first = true;
  while (cursor != kInvalidPageId) {
    if (++walked > bound) return Status::Corruption("WAL chain cycle");
    if (!dev->Read(cursor, buf.data()).ok()) {
      if (first) return Status::Corruption("WAL head is unreadable");
      break;  // ran off the durable end of the chain
    }
    WalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    if (hdr.magic != kWalPageMagic) {
      if (first) return Status::Corruption("WAL head is not a WAL page");
      // The tail's pre-allocated successor: allocated, zeroed, owned.
      PC_RETURN_IF_ERROR(c->Claim(cursor));
      ++*wal_pages;
      break;
    }
    PC_RETURN_IF_ERROR(c->Claim(cursor));
    ++*wal_pages;
    cursor = hdr.next;
    first = false;
  }
  return Status::OK();
}

Status ClaimItemsChain(PageDevice* dev, PageId head, uint64_t expect_count,
                       Claimer* c, uint64_t* items_pages) {
  const uint32_t cap = RecordsPerPage<DynamicItem>(dev->page_size());
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t bound = dev->live_pages() + 2;
  uint64_t walked = 0;
  uint64_t records = 0;
  for (PageId id = head; id != kInvalidPageId;) {
    if (++walked > bound) return Status::Corruption("items chain cycle");
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(CheckBlockPageHeader(hdr, cap, sizeof(DynamicItem),
                                            dev->page_size()));
    PC_RETURN_IF_ERROR(c->Claim(id));
    ++*items_pages;
    records += codec::Count(hdr.count);
    id = hdr.next;
  }
  if (records != expect_count) {
    return Status::Corruption("items snapshot holds " +
                              std::to_string(records) + " records, slot says " +
                              std::to_string(expect_count));
  }
  return Status::OK();
}

}  // namespace

bool IsDynamicRoot(PageDevice* dev, PageId id) {
  std::vector<std::byte> buf(dev->page_size());
  if (!dev->Read(id, buf.data()).ok()) return false;
  DynamicRootHeader h;
  std::memcpy(&h, buf.data(), sizeof(h));
  return h.magic == kDynamicRootMagic && h.header_crc == RootCrc(h);
}

std::string DynamicFsckReport::ToString() const {
  std::string s;
  s += "dynamic fsck: stores=" + std::to_string(stores);
  s += " meta_pages=" + std::to_string(meta_pages);
  s += " generation_pages=" + std::to_string(generation_pages);
  s += " items_pages=" + std::to_string(items_pages);
  s += " wal_pages=" + std::to_string(wal_pages);
  if (static_pages != 0) s += " static_pages=" + std::to_string(static_pages);
  s += " structures_checked=" + std::to_string(structures_checked);
  s += "\n  orphaned_generations=" + std::to_string(orphaned_generations);
  s += " (" + std::to_string(orphaned_generation_pages) + " pages)";
  s += " dangling_wal_pages=" + std::to_string(dangling_wal_pages);
  s += " unreachable_pages=" + std::to_string(unreachable_pages);
  if (freed_pages != 0) s += " freed_pages=" + std::to_string(freed_pages);
  if (classification_skipped) s += " (classification skipped: no page list)";
  return s;
}

Status VerifyDynamicStores(PageDevice* dev, std::span<const PageId> roots,
                           const DynamicFsckOptions& opts,
                           DynamicFsckReport* report) {
  DynamicFsckReport local;
  Claimer c;
  std::vector<std::byte> buf(dev->page_size());

  for (PageId root : roots) {
    PC_RETURN_IF_ERROR(dev->Read(root, buf.data()));
    DynamicRootHeader rh;
    std::memcpy(&rh, buf.data(), sizeof(rh));
    if (rh.magic != kDynamicRootMagic) {
      return Status::Corruption("page " + std::to_string(root) +
                                " is not a dynamic store root");
    }
    if (rh.header_crc != RootCrc(rh)) {
      return Status::Corruption("dynamic root checksum mismatch");
    }
    PC_RETURN_IF_ERROR(c.Claim(root));
    ++local.meta_pages;

    // Winner slot: valid header, highest version.
    DynamicSlotHeader winner;
    bool have_winner = false;
    for (int i = 0; i < 2; ++i) {
      PC_RETURN_IF_ERROR(dev->Read(rh.slot[i], buf.data()));
      DynamicSlotHeader h;
      std::memcpy(&h, buf.data(), sizeof(h));
      PC_RETURN_IF_ERROR(c.Claim(rh.slot[i]));
      ++local.meta_pages;
      if (h.magic == kDynamicSlotMagic && h.header_crc == SlotCrc(h) &&
          h.version > 0 && (!have_winner || h.version > winner.version)) {
        winner = h;
        have_winner = true;
      }
    }
    if (!have_winner) {
      return Status::Corruption("dynamic store has no valid publish slot");
    }

    PC_RETURN_IF_ERROR(ClaimWalChain(dev, winner.wal_head, &c,
                                     &local.wal_pages));
    if (winner.items_head != kInvalidPageId) {
      PC_RETURN_IF_ERROR(ClaimItemsChain(dev, winner.items_head,
                                         winner.items_count, &c,
                                         &local.items_pages));
    } else if (winner.items_count != 0) {
      return Status::Corruption("slot names items but no items chain");
    }

    if (winner.inner_manifest != kInvalidPageId) {
      VerifyStoreOptions vs;
      vs.scrub_pages = opts.scrub_pages;
      vs.check_structures = opts.check_structures;
      vs.expect_full_coverage = false;
      vs.collect_claimed = true;
      VerifyStoreReport vr;
      PageId manifest = winner.inner_manifest;
      PC_RETURN_IF_ERROR(VerifyStore(dev, {&manifest, 1}, vs, &vr));
      for (PageId p : vr.claimed_pages) PC_RETURN_IF_ERROR(c.Claim(p));
      local.generation_pages += vr.owned_pages;
      local.structures_checked += vr.structures_checked;
    }
    ++local.stores;
  }

  // Static co-tenants: walk their manifest graphs with the same deep checks
  // and claim their pages, so the classification below never mistakes a
  // healthy static store for an orphaned generation.
  for (PageId m : opts.static_manifests) {
    VerifyStoreOptions vs;
    vs.scrub_pages = opts.scrub_pages;
    vs.check_structures = opts.check_structures;
    vs.expect_full_coverage = false;
    vs.collect_claimed = true;
    VerifyStoreReport vr;
    PC_RETURN_IF_ERROR(VerifyStore(dev, {&m, 1}, vs, &vr));
    for (PageId p : vr.claimed_pages) PC_RETURN_IF_ERROR(c.Claim(p));
    local.static_pages += vr.owned_pages;
    local.structures_checked += vr.structures_checked;
  }

  // Coverage pass: classify every live page the stores do not own.
  std::vector<PageId> live;
  Status ls = dev->ListLivePages(&live);
  if (!ls.ok()) {
    if (ls.code() == StatusCode::kNotSupported) {
      local.classification_skipped = true;
      if (report != nullptr) *report = local;
      return Status::OK();
    }
    return ls;
  }

  std::vector<PageId> unclaimed;
  for (PageId p : live) {
    if (c.owned.count(p) == 0) unclaimed.push_back(p);
  }

  // Pass 1: find orphaned generations — unclaimed pages that parse as
  // complete, walkable manifests.  A two-level structure's child manifests
  // also parse, so an orphan counts as a generation only if no OTHER
  // candidate's walk claims it (i.e. it is a top-level root).
  struct OrphanCandidate {
    PageId manifest;
    std::vector<PageId> claimed;
  };
  std::vector<OrphanCandidate> candidates;
  for (PageId p : unclaimed) {
    if (!dev->Read(p, buf.data()).ok()) continue;
    uint64_t magic = 0;
    std::memcpy(&magic, buf.data(), sizeof(magic));
    if (!IsStructureMagic(magic)) continue;
    VerifyStoreOptions vs;
    vs.scrub_pages = false;
    vs.check_structures = false;
    vs.expect_full_coverage = false;
    vs.collect_claimed = true;
    VerifyStoreReport vr;
    if (VerifyStore(dev, {&p, 1}, vs, &vr).ok()) {
      candidates.push_back(OrphanCandidate{p, std::move(vr.claimed_pages)});
    }
  }
  std::unordered_set<PageId> child_manifests;
  for (const OrphanCandidate& cand : candidates) {
    for (PageId q : cand.claimed) {
      if (q != cand.manifest) child_manifests.insert(q);
    }
  }
  std::unordered_set<PageId> orphan_owned;
  for (const OrphanCandidate& cand : candidates) {
    if (child_manifests.count(cand.manifest) != 0) continue;  // nested
    ++local.orphaned_generations;
    for (PageId q : cand.claimed) {
      if (c.owned.count(q) == 0) orphan_owned.insert(q);
    }
  }
  local.orphaned_generation_pages = orphan_owned.size();

  // Pass 2: classify what remains.
  std::vector<PageId> reclaimable(orphan_owned.begin(), orphan_owned.end());
  for (PageId p : unclaimed) {
    if (orphan_owned.count(p) != 0) continue;
    reclaimable.push_back(p);
    uint64_t magic = 0;
    if (dev->Read(p, buf.data()).ok()) {
      std::memcpy(&magic, buf.data(), sizeof(magic));
    }
    if (magic == kWalPageMagic) {
      ++local.dangling_wal_pages;
    } else {
      // Half-built debris, orphaned items chains, torn manifests.
      ++local.unreachable_pages;
    }
  }

  if (opts.gc) {
    for (PageId p : reclaimable) {
      PC_RETURN_IF_ERROR(dev->Free(p));
      ++local.freed_pages;
    }
  }

  if (report != nullptr) *report = local;
  return Status::OK();
}

}  // namespace pathcache
