#include "dynamic/dynamic_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/persist.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "io/crc32c.h"

namespace pathcache {

namespace {

uint32_t RootCrc(DynamicRootHeader h) {
  h.header_crc = 0;
  return Crc32c(&h, sizeof(h));
}

uint32_t SlotCrc(DynamicSlotHeader h) {
  h.header_crc = 0;
  return Crc32c(&h, sizeof(h));
}

bool ValidSlot(const DynamicSlotHeader& h) {
  return h.magic == kDynamicSlotMagic && h.header_crc == SlotCrc(h) &&
         h.version > 0;
}

std::vector<Point> ToPoints(const std::vector<DynamicItem>& items) {
  std::vector<Point> out;
  out.reserve(items.size());
  for (const DynamicItem& i : items) out.push_back(i.ToPoint());
  return out;
}

std::vector<Interval> ToIntervals(const std::vector<DynamicItem>& items) {
  std::vector<Interval> out;
  out.reserve(items.size());
  for (const DynamicItem& i : items) out.push_back(i.ToInterval());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// DynamicReadHandle

Status DynamicReadHandle::Open(PageDevice* dev, DynamicStructure kind,
                               PageId manifest, uint64_t version_in) {
  Reset();
  version = version_in;
  if (manifest == kInvalidPageId) return Status::OK();  // empty generation
  switch (kind) {
    case DynamicStructure::kExternalPst:
    case DynamicStructure::kTwoLevelPst: {
      PC_ASSIGN_OR_RETURN(two_sided, OpenTwoSidedIndex(dev, manifest));
      break;
    }
    case DynamicStructure::kThreeSidedPst: {
      three_sided = std::make_unique<ThreeSidedPst>(dev);
      PC_RETURN_IF_ERROR(three_sided->Open(manifest));
      break;
    }
    case DynamicStructure::kExtSegmentTree: {
      seg_tree = std::make_unique<ExtSegmentTree>(dev);
      PC_RETURN_IF_ERROR(seg_tree->Open(manifest));
      break;
    }
    case DynamicStructure::kExtIntervalTree: {
      interval_tree = std::make_unique<ExtIntervalTree>(dev);
      PC_RETURN_IF_ERROR(interval_tree->Open(manifest));
      break;
    }
    default:
      return Status::InvalidArgument("unknown dynamic structure kind");
  }
  ready = true;
  return Status::OK();
}

void DynamicReadHandle::Reset() {
  version = 0;
  ready = false;
  two_sided.reset();
  three_sided.reset();
  seg_tree.reset();
  interval_tree.reset();
}

Status DynamicReadHandle::QueryTwoSided(const TwoSidedQuery& q,
                                        std::vector<Point>* out,
                                        QueryStats* stats) const {
  if (!ready) return Status::OK();
  if (two_sided == nullptr) {
    return Status::FailedPrecondition("not a 2-sided structure");
  }
  return two_sided->QueryTwoSided(q, out, stats);
}

Status DynamicReadHandle::QueryThreeSided(const ThreeSidedQuery& q,
                                          std::vector<Point>* out,
                                          QueryStats* stats) const {
  if (!ready) return Status::OK();
  if (three_sided == nullptr) {
    return Status::FailedPrecondition("not a 3-sided structure");
  }
  return three_sided->QueryThreeSided(q, out, stats);
}

Status DynamicReadHandle::Stab(int64_t q, std::vector<Interval>* out,
                               QueryStats* stats) const {
  if (!ready) return Status::OK();
  if (seg_tree != nullptr) return seg_tree->Stab(q, out, stats);
  if (interval_tree != nullptr) return interval_tree->Stab(q, out, stats);
  return Status::FailedPrecondition("not a stabbing structure");
}

// ---------------------------------------------------------------------------
// DynamicStore

DynamicStore::DynamicStore(PageDevice* dev, DynamicStoreOptions opts)
    : dev_(dev), opts_(opts) {}

DynamicStore::~DynamicStore() {
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
}

Status DynamicStore::WriteRoot() {
  DynamicRootHeader h;
  h.kind = static_cast<uint32_t>(kind_);
  h.slot[0] = slot_page_[0];
  h.slot[1] = slot_page_[1];
  h.header_crc = RootCrc(h);
  std::vector<std::byte> page(dev_->page_size(), std::byte{0});
  std::memcpy(page.data(), &h, sizeof(h));
  return dev_->Write(root_, page.data());
}

Status DynamicStore::WriteSlotLocked(uint32_t idx, const DynamicSlotHeader& in) {
  DynamicSlotHeader h = in;
  h.magic = kDynamicSlotMagic;
  h.header_crc = SlotCrc(h);
  std::vector<std::byte> page(dev_->page_size(), std::byte{0});
  std::memcpy(page.data(), &h, sizeof(h));
  PC_RETURN_IF_ERROR(dev_->Write(slot_page_[idx], page.data()));
  return dev_->Sync();
}

Result<std::shared_ptr<DynamicStore::Generation>> DynamicStore::BuildGeneration(
    std::vector<DynamicItem> items) {
  auto g = std::make_shared<Generation>();
  if (items.empty()) return g;

  switch (kind_) {
    case DynamicStructure::kExternalPst: {
      ExternalPst s(dev_);
      PC_RETURN_IF_ERROR(s.Build(ToPoints(items)));
      PC_ASSIGN_OR_RETURN(g->manifest, SaveClustered(&s));
      break;
    }
    case DynamicStructure::kTwoLevelPst: {
      TwoLevelPst s(dev_);
      PC_RETURN_IF_ERROR(s.Build(ToPoints(items)));
      PC_ASSIGN_OR_RETURN(g->manifest, s.Save());
      break;
    }
    case DynamicStructure::kThreeSidedPst: {
      ThreeSidedPst s(dev_);
      PC_RETURN_IF_ERROR(s.Build(ToPoints(items)));
      PC_ASSIGN_OR_RETURN(g->manifest, SaveClustered(&s));
      break;
    }
    case DynamicStructure::kExtSegmentTree: {
      ExtSegmentTree s(dev_);
      PC_RETURN_IF_ERROR(s.Build(ToIntervals(items)));
      PC_ASSIGN_OR_RETURN(g->manifest, SaveClustered(&s));
      break;
    }
    case DynamicStructure::kExtIntervalTree: {
      ExtIntervalTree s(dev_);
      PC_RETURN_IF_ERROR(s.Build(ToIntervals(items)));
      PC_ASSIGN_OR_RETURN(g->manifest, SaveClustered(&s));
      break;
    }
  }
  PC_ASSIGN_OR_RETURN(
      BlockListInfo info,
      BuildBlockList<DynamicItem>(dev_, {items.data(), items.size()}));
  g->items = info.ref;
  return g;
}

Status DynamicStore::FreeGeneration(const Generation& g) {
  if (g.manifest != kInvalidPageId) {
    DynamicReadHandle h;
    PC_RETURN_IF_ERROR(h.Open(dev_, kind_, g.manifest, g.version));
    if (h.two_sided != nullptr) PC_RETURN_IF_ERROR(h.two_sided->Destroy());
    if (h.three_sided != nullptr) PC_RETURN_IF_ERROR(h.three_sided->Destroy());
    if (h.seg_tree != nullptr) PC_RETURN_IF_ERROR(h.seg_tree->Destroy());
    if (h.interval_tree != nullptr) {
      PC_RETURN_IF_ERROR(h.interval_tree->Destroy());
    }
  }
  if (!g.items.empty()) PC_RETURN_IF_ERROR(FreeBlockList(dev_, g.items));
  return Status::OK();
}

Result<std::unique_ptr<DynamicStore>> DynamicStore::Create(
    PageDevice* dev, DynamicStructure kind, std::span<const DynamicItem> initial,
    DynamicStoreOptions opts) {
  if (static_cast<uint32_t>(kind) < 1 || static_cast<uint32_t>(kind) > 5) {
    return Status::InvalidArgument("unknown dynamic structure kind");
  }
  auto store = std::unique_ptr<DynamicStore>(new DynamicStore(dev, opts));
  store->kind_ = kind;
  PC_ASSIGN_OR_RETURN(store->root_, dev->Allocate());
  PC_ASSIGN_OR_RETURN(store->slot_page_[0], dev->Allocate());
  PC_ASSIGN_OR_RETURN(store->slot_page_[1], dev->Allocate());
  PC_ASSIGN_OR_RETURN(store->wal_, WriteAheadLog::Create(dev));

  std::vector<DynamicItem> items(initial.begin(), initial.end());
  std::sort(items.begin(), items.end(), DynamicItemLess{});
  items.erase(std::unique(items.begin(), items.end()), items.end());
  PC_ASSIGN_OR_RETURN(store->current_, store->BuildGeneration(std::move(items)));
  store->current_->version = 1;

  DynamicSlotHeader slot;
  slot.version = 1;
  slot.inner_manifest = store->current_->manifest;
  slot.items_head = store->current_->items.head;
  slot.items_count = store->current_->items.count;
  slot.wal_head = store->wal_->head();
  slot.absorbed_lsn = 0;
  PC_RETURN_IF_ERROR(store->WriteSlotLocked(0, slot));
  PC_RETURN_IF_ERROR(store->WriteRoot());
  PC_RETURN_IF_ERROR(dev->Sync());

  PC_RETURN_IF_ERROR(store->handle_.Open(dev, kind, store->current_->manifest,
                                         /*version=*/1));
  store->current_slot_ = 0;
  store->version_.store(1, std::memory_order_release);
  store->idle_version_.store(1, std::memory_order_release);
  return store;
}

Result<std::unique_ptr<DynamicStore>> DynamicStore::Open(
    PageDevice* dev, PageId root, DynamicStoreOptions opts) {
  auto store = std::unique_ptr<DynamicStore>(new DynamicStore(dev, opts));
  TraceSpan span(opts.tracer, "dynamic.recover");

  std::vector<std::byte> page(dev->page_size());
  PC_RETURN_IF_ERROR(dev->Read(root, page.data()));
  DynamicRootHeader rh;
  std::memcpy(&rh, page.data(), sizeof(rh));
  if (rh.magic != kDynamicRootMagic) {
    return Status::Corruption("not a dynamic store root");
  }
  if (rh.header_crc != RootCrc(rh)) {
    return Status::Corruption("dynamic root header checksum mismatch");
  }
  if (rh.format_version != kDynamicFormatVersion) {
    return Status::InvalidArgument("unsupported dynamic format version " +
                                   std::to_string(rh.format_version));
  }
  store->root_ = root;
  store->kind_ = static_cast<DynamicStructure>(rh.kind);
  store->slot_page_[0] = rh.slot[0];
  store->slot_page_[1] = rh.slot[1];

  // Pick the winning publish slot: valid header, highest version.  A slot
  // torn by a crashed publish fails its CRC and simply loses.
  DynamicSlotHeader winner;
  int winner_idx = -1;
  for (int i = 0; i < 2; ++i) {
    DynamicSlotHeader h;
    PC_RETURN_IF_ERROR(dev->Read(rh.slot[i], page.data()));
    std::memcpy(&h, page.data(), sizeof(h));
    if (ValidSlot(h) && (winner_idx < 0 || h.version > winner.version)) {
      winner = h;
      winner_idx = i;
    }
  }
  if (winner_idx < 0) {
    return Status::Corruption("dynamic store has no valid publish slot");
  }

  store->current_ = std::make_shared<Generation>();
  store->current_->version = winner.version;
  store->current_->manifest = winner.inner_manifest;
  store->current_->items.head = winner.items_head;
  store->current_->items.count = winner.items_count;

  std::vector<WriteAheadLog::ReplayedRecord> replayed;
  PC_ASSIGN_OR_RETURN(store->wal_,
                      WriteAheadLog::Open(dev, winner.wal_head,
                                          winner.absorbed_lsn, &replayed));
  for (const auto& r : replayed) {
    store->delta_.Apply(DynamicUpdate{r.op, r.item}, r.lsn);
  }
  store->stats_.replayed_records = replayed.size();

  PC_RETURN_IF_ERROR(store->handle_.Open(dev, store->kind_,
                                         winner.inner_manifest, winner.version));
  store->current_slot_ = static_cast<uint32_t>(winner_idx);
  store->version_.store(winner.version, std::memory_order_release);
  store->idle_version_.store(store->delta_.empty() ? winner.version : 0,
                             std::memory_order_release);
  return store;
}

Status DynamicStore::Apply(std::span<const DynamicUpdate> updates) {
  if (updates.empty()) return Status::OK();
  TraceSpan span(opts_.tracer, "dynamic.apply", updates.size());
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    PC_ASSIGN_OR_RETURN(uint64_t commit_lsn, wal_->AppendGroup(updates));
    for (const DynamicUpdate& u : updates) delta_.Apply(u, commit_lsn);
    idle_version_.store(0, std::memory_order_release);
    stats_.updates_applied += updates.size();
    ++stats_.groups_committed;
    if (opts_.rebuild_threshold > 0 &&
        delta_.size() >= opts_.rebuild_threshold && !rebuild_inflight_) {
      trigger = true;
      if (opts_.background_rebuild) rebuild_inflight_ = true;
    }
  }
  if (trigger) {
    if (opts_.background_rebuild) {
      LaunchBackgroundRebuild();
    } else {
      return RunRebuild();
    }
  }
  return Status::OK();
}

void DynamicStore::LaunchBackgroundRebuild() {
  // The previous thread (if any) has finished: rebuild_inflight_ was false
  // when the caller set it, and the flag is cleared only as the thread's
  // last action.
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  rebuild_thread_ = std::thread([this] {
    Status s = RunRebuild();
    std::lock_guard<std::mutex> lk(mu_);
    last_rebuild_status_ = s;
    if (!s.ok()) ++stats_.rebuild_failures;
    rebuild_inflight_ = false;
  });
}

Status DynamicStore::WaitForRebuild() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // No thread launched at all: nothing to wait for.
    if (!rebuild_thread_.joinable() && !rebuild_inflight_) {
      return std::exchange(last_rebuild_status_, Status::OK());
    }
  }
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  return std::exchange(last_rebuild_status_, Status::OK());
}

Status DynamicStore::Rebuild() { return RunRebuild(); }

Status DynamicStore::RunRebuild() {
  // One rebuild at a time, start to publish.  Without this, an explicit
  // Rebuild() racing a background one can freeze the SAME base at an older
  // LSN and publish it after the newer generation: the newer publish has
  // already pruned the overlay and truncated the WAL past the older freeze
  // point, so every record between the two freeze LSNs would be lost from
  // base and overlay alike.
  std::lock_guard<std::mutex> rebuild_lk(rebuild_mu_);
  TraceSpan span(opts_.tracer, "dynamic.rebuild");

  // Freeze: pin the base generation and copy the overlay at LSN L.
  std::shared_ptr<Generation> base;
  DeltaIndex frozen;
  uint64_t absorb_lsn = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (delta_.empty()) return Status::OK();
    base = current_;
    ++base->pins;
    for (const auto& [item, e] : delta_.entries()) {
      frozen.Apply(DynamicUpdate{e.present ? UpdateOp::kInsert
                                           : UpdateOp::kDelete,
                                 item},
                   e.lsn);
    }
    absorb_lsn = wal_->last_committed_lsn();
  }
  auto unpin_base = [&] {
    std::lock_guard<std::mutex> lk(mu_);
    --base->pins;
  };

  // Merge base snapshot + frozen overlay, build the next generation into
  // fresh pages, and make its pages durable before anything references it.
  std::vector<DynamicItem> items;
  if (!base->items.empty()) {
    Status rs = ReadBlockChain<DynamicItem>(dev_, base->items.head, &items);
    if (!rs.ok()) {
      unpin_base();
      return rs;
    }
  }
  Result<std::shared_ptr<Generation>> built =
      BuildGeneration(frozen.MergeIntoBase(std::move(items)));
  if (!built.ok()) {
    unpin_base();
    return built.status();
  }
  std::shared_ptr<Generation> next = built.value();
  Status sync = dev_->Sync();
  if (!sync.ok()) {
    unpin_base();
    return sync;
  }

  // Publish: write the non-current slot with version+1, then sync.  The
  // slot's wal_head already accounts for the truncation that follows, so a
  // crash in between never strands the durable head behind freed pages.
  {
    std::lock_guard<std::mutex> lk(mu_);
    --base->pins;
    const uint64_t v = current_->version + 1;
    const uint32_t idx = current_slot_ ^ 1u;
    next->version = v;
    DynamicSlotHeader slot;
    slot.version = v;
    slot.inner_manifest = next->manifest;
    slot.items_head = next->items.head;
    slot.items_count = next->items.count;
    slot.wal_head = wal_->TruncatePreview(absorb_lsn);
    slot.absorbed_lsn = absorb_lsn;
    PC_RETURN_IF_ERROR(WriteSlotLocked(idx, slot));
    TraceSpan publish(opts_.tracer, "dynamic.publish", v);

    current_->retired = true;
    retired_.push_back(current_);
    current_ = next;
    current_slot_ = idx;
    version_.store(v, std::memory_order_release);
    PC_RETURN_IF_ERROR(
        handle_.Open(dev_, kind_, current_->manifest, current_->version));
    delta_.PruneAbsorbed(absorb_lsn);
    idle_version_.store(delta_.empty() ? v : 0, std::memory_order_release);
    PC_RETURN_IF_ERROR(wal_->TruncateThrough(absorb_lsn).ToStatus());
    ++stats_.rebuilds;
    PC_RETURN_IF_ERROR(ReclaimRetiredLocked());
  }
  return Status::OK();
}

GenerationRef DynamicStore::PinCurrent() {
  std::lock_guard<std::mutex> lk(mu_);
  ++current_->pins;
  return GenerationRef{current_->version, current_->manifest,
                       current_->items.count};
}

void DynamicStore::Unpin(uint64_t version) {
  std::lock_guard<std::mutex> lk(mu_);
  if (current_->version == version) {
    --current_->pins;
    return;
  }
  for (auto& g : retired_) {
    if (g->version == version) {
      --g->pins;
      break;
    }
  }
  // Last reader off a retired generation reclaims it (and any other
  // drained generation) right here.
  (void)ReclaimRetiredLocked();
}

Status DynamicStore::ReclaimRetired() {
  std::lock_guard<std::mutex> lk(mu_);
  return ReclaimRetiredLocked();
}

Status DynamicStore::ReclaimRetiredLocked() {
  for (auto it = retired_.begin(); it != retired_.end();) {
    if ((*it)->pins == 0) {
      PC_RETURN_IF_ERROR(FreeGeneration(**it));
      ++stats_.generations_reclaimed;
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status DynamicStore::QueryTwoSided(const TwoSidedQuery& q,
                                   std::vector<Point>* out, QueryStats* stats) {
  // Guard the verb by kind here, not in the handle: an empty generation has
  // no structure to reject it for us.
  if (kind_ != DynamicStructure::kExternalPst &&
      kind_ != DynamicStructure::kTwoLevelPst) {
    return Status::InvalidArgument(
        "QueryTwoSided on a dynamic store of a different kind");
  }
  out->clear();
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(handle_.QueryTwoSided(q, out, stats));
  delta_.FilterOverridden(out);
  delta_.CollectPresent([&](const Point& p) { return q.Contains(p); },
                        [](const DynamicItem& i) { return i.ToPoint(); }, out);
  return Status::OK();
}

Status DynamicStore::QueryThreeSided(const ThreeSidedQuery& q,
                                     std::vector<Point>* out,
                                     QueryStats* stats) {
  if (kind_ != DynamicStructure::kThreeSidedPst) {
    return Status::InvalidArgument(
        "QueryThreeSided on a dynamic store of a different kind");
  }
  out->clear();
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(handle_.QueryThreeSided(q, out, stats));
  delta_.FilterOverridden(out);
  delta_.CollectPresent([&](const Point& p) { return q.Contains(p); },
                        [](const DynamicItem& i) { return i.ToPoint(); }, out);
  return Status::OK();
}

Status DynamicStore::Stab(int64_t q, std::vector<Interval>* out,
                          QueryStats* stats) {
  if (IsPointStructure(kind_)) {
    return Status::InvalidArgument(
        "Stab on a dynamic store of a point kind");
  }
  out->clear();
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(handle_.Stab(q, out, stats));
  delta_.FilterOverridden(out);
  delta_.CollectPresent([&](const Interval& iv) { return iv.Contains(q); },
                        [](const DynamicItem& i) { return i.ToInterval(); },
                        out);
  return Status::OK();
}

bool DynamicStore::OverlayTwoSided(uint64_t version, const TwoSidedQuery& q,
                                   std::vector<Point>* out) {
  // Idle fast path: one acquire load proving "generation `version` is still
  // published and the delta is empty" — at that instant the base result IS
  // the merged result, no lock needed.  Versions start at 1, so 0 never
  // matches.
  if (idle_version_.load(std::memory_order_acquire) == version) return true;
  std::lock_guard<std::mutex> lk(mu_);
  if (current_->version != version) return false;
  delta_.FilterOverridden(out);
  delta_.CollectPresent([&](const Point& p) { return q.Contains(p); },
                        [](const DynamicItem& i) { return i.ToPoint(); }, out);
  return true;
}

bool DynamicStore::OverlayThreeSided(uint64_t version, const ThreeSidedQuery& q,
                                     std::vector<Point>* out) {
  if (idle_version_.load(std::memory_order_acquire) == version) return true;
  std::lock_guard<std::mutex> lk(mu_);
  if (current_->version != version) return false;
  delta_.FilterOverridden(out);
  delta_.CollectPresent([&](const Point& p) { return q.Contains(p); },
                        [](const DynamicItem& i) { return i.ToPoint(); }, out);
  return true;
}

bool DynamicStore::OverlayStab(uint64_t version, int64_t q,
                               std::vector<Interval>* out) {
  if (idle_version_.load(std::memory_order_acquire) == version) return true;
  std::lock_guard<std::mutex> lk(mu_);
  if (current_->version != version) return false;
  delta_.FilterOverridden(out);
  delta_.CollectPresent([&](const Interval& iv) { return iv.Contains(q); },
                        [](const DynamicItem& i) { return i.ToInterval(); },
                        out);
  return true;
}

Status DynamicStore::Destroy() {
  (void)WaitForRebuild();
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(ReclaimRetiredLocked());
  if (!retired_.empty()) {
    return Status::FailedPrecondition("retired generations still pinned");
  }
  if (current_ != nullptr) {
    PC_RETURN_IF_ERROR(FreeGeneration(*current_));
    current_.reset();
  }
  handle_.Reset();
  if (wal_ != nullptr) PC_RETURN_IF_ERROR(wal_->Destroy());
  for (PageId& p : slot_page_) {
    if (p != kInvalidPageId) {
      PC_RETURN_IF_ERROR(dev_->Free(p));
      p = kInvalidPageId;
    }
  }
  if (root_ != kInvalidPageId) {
    PC_RETURN_IF_ERROR(dev_->Free(root_));
    root_ = kInvalidPageId;
  }
  delta_.clear();
  return Status::OK();
}

DynamicStoreStats DynamicStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  DynamicStoreStats s = stats_;
  s.delta_entries = delta_.size();
  s.generation_items = current_ != nullptr ? current_->items.count : 0;
  s.generation_version = current_ != nullptr ? current_->version : 0;
  if (wal_ != nullptr) {
    s.wal = wal_->stats();
    s.wal_chain_pages = wal_->chain_pages();
  }
  return s;
}

}  // namespace pathcache
