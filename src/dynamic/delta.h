// DeltaIndex: the in-memory overlay of committed-but-not-yet-rebuilt
// mutations sitting on top of a static base generation.
//
// Semantics are last-writer-wins presence overrides, keyed by the full
// record (a, b, id): an insert marks the record present, a delete marks it
// absent (a tombstone), regardless of what the base generation holds.  The
// merged view of any query is then
//
//   result(Q) = { r in base(Q) : no override for r }
//             ∪ { r in overlay : r present and r matches Q }
//
// — overridden records are dropped from the base answer first and present
// overrides added exactly once, so the merge needs no membership probe
// into the base structure and is correct whether or not an inserted record
// already existed (re-inserts collapse: the library stores sets of 24-byte
// records, not multisets).  Tombstones for records the base never held
// suppress nothing and are harmless.
//
// Every entry carries the WAL commit LSN that produced it.  A background
// rebuild freezes the overlay at LSN L, folds it into a new generation,
// and then discards exactly the entries with lsn <= L — an entry written
// after the freeze (lsn > L) survives and, being an override, remains
// correct against the new base without rewriting.
//
// The container is a std::map ordered by (a, b, id); query-time overlay
// scans are O(overlay size), which the rebuild threshold keeps small.
// Thread safety is the owner's job (DynamicStore holds its mutex across
// every call).

#ifndef PATHCACHE_DYNAMIC_DELTA_H_
#define PATHCACHE_DYNAMIC_DELTA_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "dynamic/update.h"

namespace pathcache {

class DeltaIndex {
 public:
  struct Entry {
    bool present = false;  // false = tombstone
    uint64_t lsn = 0;      // commit LSN of the group that wrote this
  };
  using Map = std::map<DynamicItem, Entry, DynamicItemLess>;

  /// Records one committed mutation (call only after its WAL group commit
  /// is durable).
  void Apply(const DynamicUpdate& u, uint64_t commit_lsn) {
    map_[u.item] = Entry{u.op == UpdateOp::kInsert, commit_lsn};
  }

  bool Overrides(const DynamicItem& item) const {
    return map_.find(item) != map_.end();
  }

  /// Drops base-query results that have an override (their authoritative
  /// state comes from the overlay side of the merge).
  template <typename Rec>
  void FilterOverridden(std::vector<Rec>* recs) const {
    if (map_.empty()) return;
    recs->erase(std::remove_if(recs->begin(), recs->end(),
                               [&](const Rec& r) {
                                 return Overrides(DynamicItem::From(r));
                               }),
                recs->end());
  }

  /// Appends every present override whose record satisfies `pred`.
  template <typename Pred, typename Rec, typename Conv>
  void CollectPresent(const Pred& pred, Conv conv, std::vector<Rec>* out) const {
    for (const auto& [item, e] : map_) {
      if (!e.present) continue;
      Rec r = conv(item);
      if (pred(r)) out->push_back(r);
    }
  }

  /// Folds the overlay into a base snapshot: removes overridden records,
  /// appends present overrides, returns the result sorted by (a, b, id).
  /// This is the record set a rebuild persists as the next generation.
  std::vector<DynamicItem> MergeIntoBase(std::vector<DynamicItem> base) const {
    base.erase(std::remove_if(base.begin(), base.end(),
                              [&](const DynamicItem& i) { return Overrides(i); }),
               base.end());
    for (const auto& [item, e] : map_) {
      if (e.present) base.push_back(item);
    }
    std::sort(base.begin(), base.end(), DynamicItemLess{});
    return base;
  }

  /// Discards entries already folded into a published generation.
  void PruneAbsorbed(uint64_t absorbed_lsn) {
    for (auto it = map_.begin(); it != map_.end();) {
      it = it->second.lsn <= absorbed_lsn ? map_.erase(it) : std::next(it);
    }
  }

  const Map& entries() const { return map_; }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

 private:
  Map map_;
};

}  // namespace pathcache

#endif  // PATHCACHE_DYNAMIC_DELTA_H_
