// RegisterDynamicStoreMetrics: publishes a DynamicStore's update / rebuild
// / WAL accounting through a MetricsRegistry.  Header-only and in dynamic/
// (not obs/) so the dependency arrow stays obs <- dynamic: the registry
// knows nothing about the store.
//
// Every sample callback goes through DynamicStore::stats(), which takes the
// store's mutex, so exports may run concurrently with updates, queries and
// background rebuilds.

#ifndef PATHCACHE_DYNAMIC_DYNAMIC_METRICS_H_
#define PATHCACHE_DYNAMIC_DYNAMIC_METRICS_H_

#include <string>

#include "dynamic/dynamic_store.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace pathcache {

/// Registers the store's counters (updates / commits / rebuilds / replays /
/// WAL activity) and gauges (overlay size, generation size and version, WAL
/// chain length) labeled {store="<store_label>"}.  `store` must outlive the
/// registry's exports.
inline Status RegisterDynamicStoreMetrics(MetricsRegistry* reg,
                                          const std::string& store_label,
                                          const DynamicStore* store) {
  const MetricLabels labels = {{"store", store_label}};
  struct Row {
    const char* name;
    const char* help;
    uint64_t (*get)(const DynamicStoreStats&);
  };
  static constexpr Row kCounters[] = {
      {"pathcache_dynamic_updates_applied_total",
       "Mutations durably committed through Apply()",
       [](const DynamicStoreStats& s) { return s.updates_applied; }},
      {"pathcache_dynamic_groups_committed_total",
       "Update groups committed (one WAL Sync each)",
       [](const DynamicStoreStats& s) { return s.groups_committed; }},
      {"pathcache_dynamic_rebuilds_total",
       "Generations built and published",
       [](const DynamicStoreStats& s) { return s.rebuilds; }},
      {"pathcache_dynamic_rebuild_failures_total",
       "Rebuild attempts that returned non-OK",
       [](const DynamicStoreStats& s) { return s.rebuild_failures; }},
      {"pathcache_dynamic_generations_reclaimed_total",
       "Retired generations whose pages were freed",
       [](const DynamicStoreStats& s) { return s.generations_reclaimed; }},
      {"pathcache_dynamic_wal_replayed_records_total",
       "Committed WAL records re-applied at Open()",
       [](const DynamicStoreStats& s) { return s.replayed_records; }},
      {"pathcache_dynamic_wal_records_appended_total",
       "WAL record slots written (commit markers included)",
       [](const DynamicStoreStats& s) { return s.wal.records_appended; }},
      {"pathcache_dynamic_wal_pages_sealed_total",
       "WAL tail pages filled and rolled",
       [](const DynamicStoreStats& s) { return s.wal.pages_sealed; }},
      {"pathcache_dynamic_wal_pages_truncated_total",
       "WAL pages freed by post-publish truncation",
       [](const DynamicStoreStats& s) { return s.wal.pages_truncated; }},
  };
  for (const Row& row : kCounters) {
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        row.name, row.help, labels,
        [store, get = row.get] { return get(store->stats()); }));
  }
  PC_RETURN_IF_ERROR(reg->AddGaugeFn(
      "pathcache_dynamic_delta_entries", "Overlay entries awaiting a rebuild",
      labels, [store] { return double(store->stats().delta_entries); }));
  PC_RETURN_IF_ERROR(reg->AddGaugeFn(
      "pathcache_dynamic_generation_items",
      "Records in the published base generation", labels,
      [store] { return double(store->stats().generation_items); }));
  PC_RETURN_IF_ERROR(reg->AddGaugeFn(
      "pathcache_dynamic_generation_version",
      "Version of the published generation", labels,
      [store] { return double(store->stats().generation_version); }));
  return reg->AddGaugeFn(
      "pathcache_dynamic_wal_chain_pages",
      "Pages in the live WAL chain (spares excluded)", labels,
      [store] { return double(store->stats().wal_chain_pages); });
}

}  // namespace pathcache

#endif  // PATHCACHE_DYNAMIC_DYNAMIC_METRICS_H_
