// Offline fsck for dynamic stores: extends core VerifyStore coverage to
// the multi-generation world the crash-safe update layer creates.
//
// A healthy dynamic store owns: its root page, two publish slots, the
// winning generation (structure manifest graph + items snapshot chain) and
// the WAL chain (including the tail's pre-allocated successor).  A crash,
// however, legitimately strands pages that are NOT corruption:
//
//   * orphaned generations — a rebuild crashed after building the next
//     generation but before publishing it (or after publishing, before the
//     old generation was reclaimed): complete, valid structures reachable
//     from no slot;
//   * dangling WAL pages — a publish truncated the durable head past them
//     before the crash dropped their Free();
//   * unreachable pages — debris with no recognizable header (a half-built
//     structure, an orphaned generation's items chain).
//
// VerifyDynamicStores classifies every live page into owned / orphaned /
// dangling / unreachable, runs the core VerifyStore deep checks on each
// winning generation, and — with `gc` set — frees everything unowned so a
// re-run reports a fully covered device.  Orphans and dangling pages are
// reported distinctly and never fail the check; Corruption is reserved for
// real damage (bad checksums, double-owned pages, broken chains).

#ifndef PATHCACHE_DYNAMIC_DYNAMIC_FSCK_H_
#define PATHCACHE_DYNAMIC_DYNAMIC_FSCK_H_

#include <span>
#include <string>
#include <vector>

#include "core/persist.h"
#include "dynamic/dynamic_store.h"
#include "io/page_device.h"

namespace pathcache {

struct DynamicFsckOptions {
  /// Run CheckStructure() on each winning generation's structure.
  bool check_structures = true;
  /// Read every owned page once (CRC scrub on a checksummed stack).
  bool scrub_pages = true;
  /// Free orphaned generations, dangling WAL pages and unreachable pages.
  bool gc = false;
  /// Plain (non-dynamic) top-level manifests that share the device.  Their
  /// page graphs are walked with the core VerifyStore checks and counted as
  /// owned, so a mixed device classifies (and gc's) only what nobody —
  /// dynamic or static — claims.
  std::vector<PageId> static_manifests;
};

struct DynamicFsckReport {
  uint64_t stores = 0;           // roots verified
  uint64_t meta_pages = 0;       // roots + slots
  uint64_t wal_pages = 0;        // reachable WAL chains (incl. spares)
  uint64_t items_pages = 0;      // items snapshot chains
  uint64_t generation_pages = 0; // pages claimed by winning generations
  uint64_t static_pages = 0;     // pages claimed by opts.static_manifests
  uint64_t structures_checked = 0;

  uint64_t orphaned_generations = 0;
  uint64_t orphaned_generation_pages = 0;
  uint64_t dangling_wal_pages = 0;
  uint64_t unreachable_pages = 0;

  uint64_t freed_pages = 0;  // gc mode only
  /// True when the device cannot enumerate live pages (ListLivePages is
  /// NotSupported): orphan classification and gc were skipped.
  bool classification_skipped = false;

  std::string ToString() const;
};

/// Verifies every dynamic store rooted at `roots` plus full-device page
/// coverage.  All dynamic roots on the device must be listed — a root that
/// is not would itself be classified unreachable.
Status VerifyDynamicStores(PageDevice* dev, std::span<const PageId> roots,
                           const DynamicFsckOptions& opts = {},
                           DynamicFsckReport* report = nullptr);

/// True when the page at `id` carries a dynamic-store root header with a
/// valid checksum (used by tools to distinguish dynamic roots from plain
/// structure manifests).
bool IsDynamicRoot(PageDevice* dev, PageId id);

}  // namespace pathcache

#endif  // PATHCACHE_DYNAMIC_DYNAMIC_FSCK_H_
