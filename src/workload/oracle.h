// Brute-force reference implementations every external structure is tested
// against.  O(n) per query; used only in tests and for result validation in
// benchmarks.

#ifndef PATHCACHE_WORKLOAD_ORACLE_H_
#define PATHCACHE_WORKLOAD_ORACLE_H_

#include <vector>

#include "util/geometry.h"

namespace pathcache {

std::vector<Point> BruteTwoSided(const std::vector<Point>& pts,
                                 const TwoSidedQuery& q);
std::vector<Point> BruteThreeSided(const std::vector<Point>& pts,
                                   const ThreeSidedQuery& q);
std::vector<Point> BruteRange(const std::vector<Point>& pts,
                              const RangeQuery& q);
std::vector<Interval> BruteStab(const std::vector<Interval>& ivs, int64_t q);

/// Sorts by id (all our record sets have unique ids) for order-insensitive
/// comparison of query results.
void SortById(std::vector<Point>* pts);
void SortById(std::vector<Interval>* ivs);

/// True iff the two results contain the same records, ignoring order.
bool SameResult(std::vector<Point> a, std::vector<Point> b);
bool SameResult(std::vector<Interval> a, std::vector<Interval> b);

}  // namespace pathcache

#endif  // PATHCACHE_WORKLOAD_ORACLE_H_
