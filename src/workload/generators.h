// Synthetic workload generators for the experiments.
//
// Each generator is deterministic in its seed.  Distributions cover the
// regimes the paper's motivation cares about: uniform spatial data,
// clustered (object extents), diagonal (short intervals mapped to points via
// the [KRV] stabbing reduction land near the x = -y diagonal), and
// anti-correlated (worst-ish case for one-dimensional filtering baselines).

#ifndef PATHCACHE_WORKLOAD_GENERATORS_H_
#define PATHCACHE_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "util/geometry.h"
#include "util/random.h"

namespace pathcache {

struct PointGenOptions {
  uint64_t n = 0;
  int64_t coord_min = 0;
  int64_t coord_max = 1'000'000'000;
  uint64_t seed = 42;
};

/// Uniform i.i.d. points in the square.
std::vector<Point> GenPointsUniform(const PointGenOptions& opts);

/// Gaussian-ish clusters: `clusters` centers, points scattered `spread` wide.
std::vector<Point> GenPointsClustered(const PointGenOptions& opts,
                                      uint32_t clusters, int64_t spread);

/// Points near the main diagonal y ~= x with +-noise.
std::vector<Point> GenPointsDiagonal(const PointGenOptions& opts,
                                     int64_t noise);

/// Points near the anti-diagonal x + y ~= coord_max with +-noise; a 2-sided
/// query's corner slides along this band, which defeats 1-D filtering.
std::vector<Point> GenPointsAntiCorrelated(const PointGenOptions& opts,
                                           int64_t noise);

/// Zipf-skewed x (rank-mapped onto the domain), uniform y.
std::vector<Point> GenPointsZipfX(const PointGenOptions& opts, double theta);

struct IntervalGenOptions {
  uint64_t n = 0;
  int64_t domain_min = 0;
  int64_t domain_max = 1'000'000'000;
  /// Mean interval length as a fraction of the domain.
  double mean_len_frac = 0.01;
  uint64_t seed = 42;
};

/// Uniform starts, exponential-ish lengths.
std::vector<Interval> GenIntervalsUniform(const IntervalGenOptions& opts);

/// Heavily nested intervals (telescoping), stressing deep cover-lists.
std::vector<Interval> GenIntervalsNested(const IntervalGenOptions& opts);

/// Temporal-log style: starts clustered into bursts, short durations.
std::vector<Interval> GenIntervalsBursty(const IntervalGenOptions& opts,
                                         uint32_t bursts);

/// Draws a 2-sided query whose corner is the position of a random input
/// point nudged by `rng`; guarantees non-degenerate selectivity spread.
TwoSidedQuery SampleTwoSidedQuery(const std::vector<Point>& pts, Rng* rng);

/// Draws a 3-sided query spanning roughly `x_frac` of the x-extent.
ThreeSidedQuery SampleThreeSidedQuery(const std::vector<Point>& pts,
                                      double x_frac, Rng* rng);

/// Ensures all x, all y, and all interval endpoints are pairwise distinct by
/// stable-sorting and re-spacing coordinates; preserves order relations.
/// The paper assumes distinct coordinates; generators may collide.
void MakeCoordinatesDistinct(std::vector<Point>* pts);
void MakeEndpointsDistinct(std::vector<Interval>* ivs);

}  // namespace pathcache

#endif  // PATHCACHE_WORKLOAD_GENERATORS_H_
