#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace pathcache {

namespace {
int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}
}  // namespace

std::vector<Point> GenPointsUniform(const PointGenOptions& opts) {
  Rng rng(opts.seed);
  std::vector<Point> pts(opts.n);
  for (uint64_t i = 0; i < opts.n; ++i) {
    pts[i] = Point{rng.UniformRange(opts.coord_min, opts.coord_max),
                   rng.UniformRange(opts.coord_min, opts.coord_max), i};
  }
  return pts;
}

std::vector<Point> GenPointsClustered(const PointGenOptions& opts,
                                      uint32_t clusters, int64_t spread) {
  Rng rng(opts.seed);
  std::vector<Point> centers;
  for (uint32_t c = 0; c < clusters; ++c) {
    centers.push_back(Point{rng.UniformRange(opts.coord_min, opts.coord_max),
                            rng.UniformRange(opts.coord_min, opts.coord_max),
                            c});
  }
  std::vector<Point> pts(opts.n);
  for (uint64_t i = 0; i < opts.n; ++i) {
    const Point& c = centers[rng.Uniform(clusters)];
    // Sum of three uniforms approximates a Gaussian well enough here.
    auto jitter = [&]() {
      return (rng.UniformRange(-spread, spread) +
              rng.UniformRange(-spread, spread) +
              rng.UniformRange(-spread, spread)) /
             3;
    };
    pts[i] = Point{Clamp(c.x + jitter(), opts.coord_min, opts.coord_max),
                   Clamp(c.y + jitter(), opts.coord_min, opts.coord_max), i};
  }
  return pts;
}

std::vector<Point> GenPointsDiagonal(const PointGenOptions& opts,
                                     int64_t noise) {
  Rng rng(opts.seed);
  std::vector<Point> pts(opts.n);
  for (uint64_t i = 0; i < opts.n; ++i) {
    int64_t x = rng.UniformRange(opts.coord_min, opts.coord_max);
    int64_t y = Clamp(x + rng.UniformRange(-noise, noise), opts.coord_min,
                      opts.coord_max);
    pts[i] = Point{x, y, i};
  }
  return pts;
}

std::vector<Point> GenPointsAntiCorrelated(const PointGenOptions& opts,
                                           int64_t noise) {
  Rng rng(opts.seed);
  std::vector<Point> pts(opts.n);
  for (uint64_t i = 0; i < opts.n; ++i) {
    int64_t x = rng.UniformRange(opts.coord_min, opts.coord_max);
    int64_t y = Clamp(opts.coord_max - (x - opts.coord_min) +
                          rng.UniformRange(-noise, noise),
                      opts.coord_min, opts.coord_max);
    pts[i] = Point{x, y, i};
  }
  return pts;
}

std::vector<Point> GenPointsZipfX(const PointGenOptions& opts, double theta) {
  Rng rng(opts.seed);
  const uint64_t buckets = 1024;
  Zipf zipf(buckets, theta, opts.seed ^ 0x5A17ULL);
  std::vector<Point> pts(opts.n);
  const int64_t span = opts.coord_max - opts.coord_min;
  for (uint64_t i = 0; i < opts.n; ++i) {
    uint64_t rank = zipf.Next();
    int64_t lo = opts.coord_min + static_cast<int64_t>(
                                      span * (static_cast<double>(rank) /
                                              static_cast<double>(buckets)));
    int64_t hi = opts.coord_min + static_cast<int64_t>(
                                      span * (static_cast<double>(rank + 1) /
                                              static_cast<double>(buckets)));
    pts[i] = Point{rng.UniformRange(lo, std::max(lo, hi - 1)),
                   rng.UniformRange(opts.coord_min, opts.coord_max), i};
  }
  return pts;
}

std::vector<Interval> GenIntervalsUniform(const IntervalGenOptions& opts) {
  Rng rng(opts.seed);
  std::vector<Interval> ivs(opts.n);
  const double domain =
      static_cast<double>(opts.domain_max - opts.domain_min);
  const double mean_len = std::max(1.0, domain * opts.mean_len_frac);
  for (uint64_t i = 0; i < opts.n; ++i) {
    int64_t lo = rng.UniformRange(opts.domain_min, opts.domain_max - 1);
    // Exponential length with the requested mean.
    double u = std::max(1e-12, rng.NextDouble());
    int64_t len = std::max<int64_t>(1, static_cast<int64_t>(-mean_len *
                                                            std::log(u)));
    ivs[i] = Interval{lo, Clamp(lo + len, lo + 1, opts.domain_max), i};
  }
  return ivs;
}

std::vector<Interval> GenIntervalsNested(const IntervalGenOptions& opts) {
  Rng rng(opts.seed);
  std::vector<Interval> ivs;
  ivs.reserve(opts.n);
  int64_t lo = opts.domain_min;
  int64_t hi = opts.domain_max;
  for (uint64_t i = 0; i < opts.n; ++i) {
    ivs.push_back(Interval{lo, hi, i});
    // Shrink towards a random interior point; restart when too narrow.
    if (hi - lo < 4) {
      lo = opts.domain_min + rng.UniformRange(0, (opts.domain_max -
                                                  opts.domain_min) /
                                                     2);
      hi = opts.domain_max - rng.UniformRange(0, (opts.domain_max - lo) / 2);
      if (hi - lo < 4) {
        lo = opts.domain_min;
        hi = opts.domain_max;
      }
      continue;
    }
    int64_t shrink_lo = rng.UniformRange(1, std::max<int64_t>(1, (hi - lo) / 8));
    int64_t shrink_hi = rng.UniformRange(1, std::max<int64_t>(1, (hi - lo) / 8));
    lo += shrink_lo;
    hi -= shrink_hi;
    if (lo >= hi) {
      lo = opts.domain_min;
      hi = opts.domain_max;
    }
  }
  return ivs;
}

std::vector<Interval> GenIntervalsBursty(const IntervalGenOptions& opts,
                                         uint32_t bursts) {
  Rng rng(opts.seed);
  std::vector<int64_t> centers;
  for (uint32_t b = 0; b < bursts; ++b) {
    centers.push_back(rng.UniformRange(opts.domain_min, opts.domain_max));
  }
  const double domain =
      static_cast<double>(opts.domain_max - opts.domain_min);
  const int64_t burst_spread = std::max<int64_t>(1, static_cast<int64_t>(
                                                        domain / bursts / 4));
  const double mean_len = std::max(1.0, domain * opts.mean_len_frac);
  std::vector<Interval> ivs(opts.n);
  for (uint64_t i = 0; i < opts.n; ++i) {
    int64_t c = centers[rng.Uniform(bursts)];
    int64_t lo = Clamp(c + rng.UniformRange(-burst_spread, burst_spread),
                       opts.domain_min, opts.domain_max - 1);
    double u = std::max(1e-12, rng.NextDouble());
    int64_t len = std::max<int64_t>(
        1, static_cast<int64_t>(-mean_len * std::log(u) / 4));
    ivs[i] = Interval{lo, Clamp(lo + len, lo + 1, opts.domain_max), i};
  }
  return ivs;
}

TwoSidedQuery SampleTwoSidedQuery(const std::vector<Point>& pts, Rng* rng) {
  const Point& p = pts[rng->Uniform(pts.size())];
  const Point& q = pts[rng->Uniform(pts.size())];
  return TwoSidedQuery{std::min(p.x, q.x), std::min(p.y, q.y)};
}

ThreeSidedQuery SampleThreeSidedQuery(const std::vector<Point>& pts,
                                      double x_frac, Rng* rng) {
  const Point& p = pts[rng->Uniform(pts.size())];
  int64_t min_x = INT64_MAX, max_x = INT64_MIN;
  for (const auto& pt : pts) {
    min_x = std::min(min_x, pt.x);
    max_x = std::max(max_x, pt.x);
  }
  int64_t width = static_cast<int64_t>(
      static_cast<double>(max_x - min_x) * x_frac);
  return ThreeSidedQuery{p.x - width / 2, p.x + width / 2, p.y};
}

void MakeCoordinatesDistinct(std::vector<Point>* pts) {
  std::vector<size_t> order(pts->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto respace = [&](auto key_of, auto set_key) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      auto ka = key_of((*pts)[a]);
      auto kb = key_of((*pts)[b]);
      if (ka != kb) return ka < kb;
      return (*pts)[a].id < (*pts)[b].id;
    });
    // Multiply by a stride so order is preserved with room between values.
    for (size_t r = 0; r < order.size(); ++r) {
      set_key(&(*pts)[order[r]], static_cast<int64_t>(r) * 2);
    }
  };
  respace([](const Point& p) { return p.x; },
          [](Point* p, int64_t v) { p->x = v; });
  respace([](const Point& p) { return p.y; },
          [](Point* p, int64_t v) { p->y = v; });
}

void MakeEndpointsDistinct(std::vector<Interval>* ivs) {
  // Collect all 2n endpoints, rank them, and re-space onto even integers so
  // every endpoint is unique while containment relations are preserved.
  struct End {
    int64_t v;
    uint64_t idx;  // position in *ivs, not the caller-visible id
    bool is_hi;
  };
  std::vector<End> ends;
  ends.reserve(ivs->size() * 2);
  for (size_t i = 0; i < ivs->size(); ++i) {
    ends.push_back({(*ivs)[i].lo, i, false});
    ends.push_back({(*ivs)[i].hi, i, true});
  }
  std::sort(ends.begin(), ends.end(), [](const End& a, const End& b) {
    if (a.v != b.v) return a.v < b.v;
    // At equal values, put starts before ends: an interval starting where
    // another ends keeps overlapping it after re-spacing.
    if (a.is_hi != b.is_hi) return !a.is_hi;
    return a.idx < b.idx;
  });
  std::vector<int64_t> new_lo(ivs->size()), new_hi(ivs->size());
  for (size_t r = 0; r < ends.size(); ++r) {
    if (ends[r].is_hi) {
      new_hi[ends[r].idx] = static_cast<int64_t>(r) * 2;
    } else {
      new_lo[ends[r].idx] = static_cast<int64_t>(r) * 2;
    }
  }
  for (size_t i = 0; i < ivs->size(); ++i) {
    (*ivs)[i].lo = new_lo[i];
    (*ivs)[i].hi = new_hi[i];
    if ((*ivs)[i].hi <= (*ivs)[i].lo) (*ivs)[i].hi = (*ivs)[i].lo + 1;
  }
}

}  // namespace pathcache
