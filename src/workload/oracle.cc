#include "workload/oracle.h"

#include <algorithm>

namespace pathcache {

std::vector<Point> BruteTwoSided(const std::vector<Point>& pts,
                                 const TwoSidedQuery& q) {
  std::vector<Point> out;
  for (const auto& p : pts) {
    if (q.Contains(p)) out.push_back(p);
  }
  return out;
}

std::vector<Point> BruteThreeSided(const std::vector<Point>& pts,
                                   const ThreeSidedQuery& q) {
  std::vector<Point> out;
  for (const auto& p : pts) {
    if (q.Contains(p)) out.push_back(p);
  }
  return out;
}

std::vector<Point> BruteRange(const std::vector<Point>& pts,
                              const RangeQuery& q) {
  std::vector<Point> out;
  for (const auto& p : pts) {
    if (q.Contains(p)) out.push_back(p);
  }
  return out;
}

std::vector<Interval> BruteStab(const std::vector<Interval>& ivs, int64_t q) {
  std::vector<Interval> out;
  for (const auto& iv : ivs) {
    if (iv.Contains(q)) out.push_back(iv);
  }
  return out;
}

void SortById(std::vector<Point>* pts) {
  std::sort(pts->begin(), pts->end(),
            [](const Point& a, const Point& b) { return a.id < b.id; });
}

void SortById(std::vector<Interval>* ivs) {
  std::sort(ivs->begin(), ivs->end(),
            [](const Interval& a, const Interval& b) { return a.id < b.id; });
}

bool SameResult(std::vector<Point> a, std::vector<Point> b) {
  SortById(&a);
  SortById(&b);
  return a == b;
}

bool SameResult(std::vector<Interval> a, std::vector<Interval> b) {
  SortById(&a);
  SortById(&b);
  return a == b;
}

}  // namespace pathcache
