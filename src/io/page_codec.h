// Versioned on-page record codec for BlockList pages — page format v3.
//
// v2 pages (every store written before the manifest v4 bump) interleave
// fixed-size records after the 16-byte BlockPageHeader:
//
//   [BlockPageHeader][rec 0][rec 1]...[rec k-1]
//
// A bounds probe over such a page strides sizeof(T) bytes per step, touching
// one cache line per record visited.  v3 deinterleaves the 8-byte search key
// out of each record so the keys form one densely packed array (8 keys per
// cache line) followed by the key-less payloads in the same order:
//
//   [BlockPageHeader][pad?][key 0..k-1][payload 0..payload k-1]
//
// The pad grows the key array's start from byte 16 to byte 64 — a full cache
// line boundary on the 64-byte-aligned frames every in-memory page lives on
// (io/aligned.h) — but only when the page has 48 spare bytes; a full page
// keeps base 16 so v3 NEVER changes how many records fit a page.  That is
// the codec's load-bearing invariant: RecordsPerPage is identical across
// formats, so chain shapes, counted reads and every theorem-bound quantity
// are bit-identical codec-on and codec-off.
//
// Pages are self-describing via the header's count word, so v3 and v2 pages
// coexist in one store and old stores open unchanged:
//
//   bit  31     packed flag (0 = v2 interleaved, count word IS the count)
//   bits 30-24  key byte-offset within the logical record, divided by 8
//   bit  23     aligned flag (key array starts at byte 64, not 16)
//   bits 22-0   record count
//
// A v2 writer can never set bit 31: the count word equals the record count,
// bounded by RecordsPerPage < 2^23 for any supported page size.  Layout
// clustering (io/layout.h) rewrites only `contig` and `next`, so the flag
// bits survive relocation untouched.

#ifndef PATHCACHE_IO_PAGE_CODEC_H_
#define PATHCACHE_IO_PAGE_CODEC_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace pathcache {
namespace codec {

inline constexpr uint32_t kPackedFlag = 0x8000'0000u;
inline constexpr uint32_t kAlignedFlag = 0x0080'0000u;
inline constexpr uint32_t kKeyOffShift = 24;
inline constexpr uint32_t kKeyOffMask = 0x7Fu;
inline constexpr uint32_t kCountMask = 0x007F'FFFFu;

/// Byte offset of the packed key array within the page.
inline constexpr uint32_t kPackedBaseLo = 16;  // == sizeof(BlockPageHeader)
inline constexpr uint32_t kPackedBaseHi = 64;  // cache-line aligned start

inline bool IsPacked(uint32_t count_word) {
  return (count_word & kPackedFlag) != 0;
}

/// Record count for either format.  v2 count words never reach 2^23, so the
/// mask is a no-op on them.
inline uint32_t Count(uint32_t count_word) { return count_word & kCountMask; }

/// Key field's byte offset within the logical record (packed pages only).
inline uint32_t KeyOffset(uint32_t count_word) {
  return ((count_word >> kKeyOffShift) & kKeyOffMask) * 8u;
}

/// Page offset of the packed key array (packed pages only).
inline uint32_t PackedBase(uint32_t count_word) {
  return (count_word & kAlignedFlag) != 0 ? kPackedBaseHi : kPackedBaseLo;
}

inline uint32_t MakePackedCountWord(uint32_t count, uint32_t key_off,
                                    bool aligned) {
  return kPackedFlag | (aligned ? kAlignedFlag : 0u) |
         ((key_off / 8u) << kKeyOffShift) | (count & kCountMask);
}

/// Byte offset of a logical-record field within the key-less payload.
/// Precondition: the field does not overlap the extracted key.
inline constexpr uint32_t PayloadFieldOffset(uint32_t key_off,
                                             uint32_t field_off) {
  return field_off < key_off ? field_off : field_off - 8u;
}

/// Writes `n` records of `rec_size` bytes in packed form at `dst` (the page
/// offset given by PackedBase): keys first, then the key-less payloads.
inline void EncodePackedRecords(std::byte* dst, const void* recs, size_t n,
                                uint32_t rec_size, uint32_t key_off) {
  const uint32_t pay_size = rec_size - 8;
  const char* src = static_cast<const char*>(recs);
  std::byte* keys = dst;
  std::byte* pays = dst + n * 8;
  for (size_t i = 0; i < n; ++i) {
    const char* r = src + i * rec_size;
    std::memcpy(keys + i * 8, r + key_off, 8);
    std::byte* p = pays + i * pay_size;
    std::memcpy(p, r, key_off);
    std::memcpy(p + key_off, r + key_off + 8, rec_size - key_off - 8);
  }
}

/// Reconstructs `n` interleaved records from a packed image at `src`.
inline void DecodePackedRecords(const std::byte* src, void* out, size_t n,
                                uint32_t rec_size, uint32_t key_off) {
  const uint32_t pay_size = rec_size - 8;
  char* dst = static_cast<char*>(out);
  const std::byte* keys = src;
  const std::byte* pays = src + n * 8;
  for (size_t i = 0; i < n; ++i) {
    char* r = dst + i * rec_size;
    const std::byte* p = pays + i * pay_size;
    std::memcpy(r, p, key_off);
    std::memcpy(r + key_off, keys + i * 8, 8);
    std::memcpy(r + key_off + 8, p + key_off, rec_size - key_off - 8);
  }
}

namespace internal {
// -1 = follow the environment, 0 = forced off, 1 = forced on.
inline std::atomic<int> g_packed_override{-1};
}  // namespace internal

/// True when builders should write v3 packed pages.  Defaults on; the
/// PATHCACHE_DISABLE_V3 environment variable (any non-empty value) turns it
/// off — readers are unaffected, pages self-describe.
inline bool PackedPagesEnabled() {
  const int ov = internal::g_packed_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool env_disabled = [] {
    const char* v = std::getenv("PATHCACHE_DISABLE_V3");
    return v != nullptr && v[0] != '\0';
  }();
  return !env_disabled;
}

/// Test/bench override; pass -1 to restore environment-driven behavior.
inline void SetPackedPagesEnabled(int enabled) {
  internal::g_packed_override.store(enabled, std::memory_order_relaxed);
}

}  // namespace codec
}  // namespace pathcache

#endif  // PATHCACHE_IO_PAGE_CODEC_H_
