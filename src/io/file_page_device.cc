#include "io/file_page_device.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>

namespace pathcache {

namespace {

// Longest run of adjacent pages handed to one preadv; well under any
// realistic IOV_MAX (POSIX guarantees >= 16, Linux has 1024).
constexpr size_t kMaxCoalescedPages = 256;

// pread until `n` bytes arrived, retrying short transfers and EINTR.  A
// zero-length read mid-page means the file is truncated relative to the
// page table — corruption, not a transient error.
Status ReadFully(int fd, std::byte* buf, size_t n, off_t off,
                 uint64_t* syscalls) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, buf + done, n - done, off + done);
    if (syscalls != nullptr) ++*syscalls;
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread at offset " + std::to_string(off + done) +
                             ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::Corruption("short read at offset " +
                                std::to_string(off + done) +
                                ": unexpected end of file");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

// pwrite until `n` bytes landed, retrying short transfers and EINTR.
Status WriteFully(int fd, const std::byte* buf, size_t n, off_t off) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pwrite at offset " + std::to_string(off + done) +
                             ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("pwrite at offset " +
                             std::to_string(off + done) +
                             ": zero-length transfer");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

// preadv over `iov`, retrying short transfers and EINTR until every vector
// is filled.
Status PreadvFully(int fd, struct iovec* iov, size_t iovcnt, off_t off,
                   uint64_t* syscalls) {
  size_t idx = 0;
  while (idx < iovcnt) {
    ssize_t r = ::preadv(fd, iov + idx, static_cast<int>(iovcnt - idx), off);
    if (syscalls != nullptr) ++*syscalls;
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("preadv at offset " + std::to_string(off) + ": " +
                             std::strerror(errno));
    }
    if (r == 0) {
      return Status::Corruption("short read at offset " + std::to_string(off) +
                                ": unexpected end of file");
    }
    off += r;
    size_t got = static_cast<size_t>(r);
    while (got > 0 && idx < iovcnt) {
      if (got >= iov[idx].iov_len) {
        got -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<std::byte*>(iov[idx].iov_base) + got;
        iov[idx].iov_len -= got;
        got = 0;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Create(
    const std::string& path, uint32_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<FilePageDevice>(new FilePageDevice(fd, page_size));
}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Open(
    const std::string& path, uint32_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek: " + std::string(std::strerror(errno)));
  }
  if (size % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size is not a multiple of the page size");
  }
  auto dev = std::unique_ptr<FilePageDevice>(
      new FilePageDevice(fd, page_size));
  dev->page_count_ = static_cast<uint64_t>(size) / page_size;
  dev->live_ = dev->page_count_;
  dev->freed_.assign(dev->page_count_, false);
  return dev;
}

FilePageDevice::~FilePageDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePageDevice::CheckId(PageId id) const {
  if (id >= page_count_) {
    return Status::InvalidArgument("page id out of range: " +
                                   std::to_string(id));
  }
  if (freed_[id]) {
    return Status::Corruption("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Result<PageId> FilePageDevice::Allocate() {
  ++stats_.allocs;
  ++live_;
  std::string zeros(page_size_, '\0');
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    PC_RETURN_IF_ERROR(
        WriteFully(fd_, reinterpret_cast<const std::byte*>(zeros.data()),
                   page_size_, static_cast<off_t>(id) * page_size_));
    return id;
  }
  PageId id = page_count_++;
  freed_.push_back(false);
  PC_RETURN_IF_ERROR(
      WriteFully(fd_, reinterpret_cast<const std::byte*>(zeros.data()),
                 page_size_, static_cast<off_t>(id) * page_size_));
  return id;
}

Status FilePageDevice::Free(PageId id) {
  PC_RETURN_IF_ERROR(CheckId(id));
  ++stats_.frees;
  --live_;
  freed_[id] = true;
  free_list_.push_back(id);
  return Status::OK();
}

Status FilePageDevice::Read(PageId id, std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  PC_RETURN_IF_ERROR(ReadFully(fd_, buf, page_size_,
                               static_cast<off_t>(id) * page_size_,
                               &read_syscalls_));
  ++stats_.reads;
  return Status::OK();
}

Status FilePageDevice::ReadBatch(std::span<const PageId> ids,
                                 std::byte* bufs) {
  if (ids.empty()) return Status::OK();
  for (PageId id : ids) PC_RETURN_IF_ERROR(CheckId(id));

  // Visit the requests in disk order so runs of adjacent pages — block
  // lists allocate their pages consecutively, and the clustering pass in
  // io/layout.h relocates whole structures that way — collapse into single
  // preadv calls; each iovec still targets the caller's original slot.
  // Batches that arrive already in disk order (the common case once a
  // structure is clustered) skip building the sort permutation: slot k of
  // the batch IS disk-order position k.
  const bool already_sorted = std::is_sorted(ids.begin(), ids.end());
  std::vector<uint32_t> order;
  if (already_sorted) {
    ++sorted_batches_;
  } else {
    order.resize(ids.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&ids](uint32_t a, uint32_t b) { return ids[a] < ids[b]; });
  }
  auto slot = [&](size_t k) -> size_t {
    return already_sorted ? k : order[k];
  };

  std::vector<struct iovec> iov;
  size_t i = 0;
  while (i < ids.size()) {
    size_t j = i + 1;
    while (j < ids.size() && j - i < kMaxCoalescedPages &&
           ids[slot(j)] == ids[slot(j - 1)] + 1) {
      ++j;
    }
    iov.clear();
    for (size_t k = i; k < j; ++k) {
      iov.push_back({bufs + slot(k) * page_size_, page_size_});
    }
    PC_RETURN_IF_ERROR(PreadvFully(
        fd_, iov.data(), iov.size(),
        static_cast<off_t>(ids[slot(i)]) * page_size_, &read_syscalls_));
    i = j;
  }
  stats_.reads += ids.size();
  ++stats_.batch_reads;
  return Status::OK();
}

Status FilePageDevice::Write(PageId id, const std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  PC_RETURN_IF_ERROR(WriteFully(fd_, buf, page_size_,
                                static_cast<off_t>(id) * page_size_));
  ++stats_.writes;
  return Status::OK();
}

}  // namespace pathcache
