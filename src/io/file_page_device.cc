#include "io/file_page_device.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>

namespace pathcache {

namespace {

// Longest run of adjacent pages handed to one preadv; well under any
// realistic IOV_MAX (POSIX guarantees >= 16, Linux has 1024).
constexpr size_t kMaxCoalescedPages = 256;

// pread until `n` bytes arrived, retrying short transfers and EINTR.  A
// zero-length read mid-page means the file is truncated relative to the
// page table — corruption, not a transient error.
Status ReadFully(int fd, std::byte* buf, size_t n, off_t off,
                 uint64_t* syscalls) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, buf + done, n - done, off + done);
    if (syscalls != nullptr) ++*syscalls;
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread at offset " + std::to_string(off + done) +
                             ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::Corruption("short read at offset " +
                                std::to_string(off + done) +
                                ": unexpected end of file");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

// pwrite until `n` bytes landed, retrying short transfers and EINTR.
Status WriteFully(int fd, const std::byte* buf, size_t n, off_t off) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pwrite at offset " + std::to_string(off + done) +
                             ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("pwrite at offset " +
                             std::to_string(off + done) +
                             ": zero-length transfer");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

// preadv over `iov`, retrying short transfers and EINTR until every vector
// is filled.
Status PreadvFully(int fd, struct iovec* iov, size_t iovcnt, off_t off,
                   uint64_t* syscalls) {
  size_t idx = 0;
  while (idx < iovcnt) {
    ssize_t r = ::preadv(fd, iov + idx, static_cast<int>(iovcnt - idx), off);
    if (syscalls != nullptr) ++*syscalls;
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("preadv at offset " + std::to_string(off) + ": " +
                             std::strerror(errno));
    }
    if (r == 0) {
      return Status::Corruption("short read at offset " + std::to_string(off) +
                                ": unexpected end of file");
    }
    off += r;
    size_t got = static_cast<size_t>(r);
    while (got > 0 && idx < iovcnt) {
      if (got >= iov[idx].iov_len) {
        got -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<std::byte*>(iov[idx].iov_base) + got;
        iov[idx].iov_len -= got;
        got = 0;
      }
    }
  }
  return Status::OK();
}

// io_uring is the default transport wherever the kernel offers it; the env
// switch exists so CI can force the preadv fallback through the full suite.
bool UringDisabledByEnv() {
  const char* v = std::getenv("PATHCACHE_DISABLE_IOURING");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

FilePageDevice::FilePageDevice(int fd, uint32_t page_size)
    : fd_(fd), page_size_(page_size) {
  if (!UringDisabledByEnv() && UringReader::SystemSupported()) {
    backend_ = ReadBackend::kIoUring;
  }
}

Status FilePageDevice::SetReadBackend(ReadBackend backend) {
  if (backend == ReadBackend::kIoUring) {
    if (uring_failed_ || !UringReader::SystemSupported()) {
      return Status::NotSupported("io_uring is unavailable on this system");
    }
  }
  backend_ = backend;
  return Status::OK();
}

bool FilePageDevice::EnsureUring() {
  if (uring_ != nullptr) return true;
  if (uring_failed_) return false;
  auto ring = UringReader::Create();
  if (!ring.ok()) {
    // The setup probe passed but ring creation failed (e.g. a locked-memory
    // limit): run on preadv from here on rather than failing reads.
    uring_failed_ = true;
    backend_ = ReadBackend::kPreadv;
    return false;
  }
  uring_ = std::move(ring).value();
  return true;
}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Create(
    const std::string& path, uint32_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  // Make the file's DIRECTORY ENTRY durable before anything is stored in
  // it: without this, a crash after a fully Sync()ed save can still lose
  // the whole store because the name itself never reached disk.
  PC_RETURN_IF_ERROR(SyncParentDir(path));
  return std::unique_ptr<FilePageDevice>(new FilePageDevice(fd, page_size));
}

Status FilePageDevice::SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = (slash == std::string::npos)
                              ? std::string(".")
                              : path.substr(0, std::max<size_t>(slash, 1));
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::IoError("open(" + dir + "): " + std::strerror(errno));
  }
  Status s = Status::OK();
  if (::fsync(dfd) != 0) {
    s = Status::IoError("fsync(" + dir + "): " + std::strerror(errno));
  }
  ::close(dfd);
  return s;
}

Status FilePageDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  ++stats_.syncs;
  return Status::OK();
}

Status FilePageDevice::ListLivePages(std::vector<PageId>* out) {
  for (PageId id = 0; id < page_count_; ++id) {
    if (id >= freed_.size() || !freed_[id]) out->push_back(id);
  }
  return Status::OK();
}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Open(
    const std::string& path, uint32_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek: " + std::string(std::strerror(errno)));
  }
  if (size % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size is not a multiple of the page size");
  }
  auto dev = std::unique_ptr<FilePageDevice>(
      new FilePageDevice(fd, page_size));
  dev->page_count_ = static_cast<uint64_t>(size) / page_size;
  dev->live_ = dev->page_count_;
  dev->freed_.assign(dev->page_count_, false);
  return dev;
}

FilePageDevice::~FilePageDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePageDevice::CheckId(PageId id) const {
  if (id >= page_count_) {
    return Status::InvalidArgument("page id out of range: " +
                                   std::to_string(id));
  }
  if (freed_[id]) {
    return Status::Corruption("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Result<PageId> FilePageDevice::Allocate() {
  ++stats_.allocs;
  ++live_;
  std::string zeros(page_size_, '\0');
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    PC_RETURN_IF_ERROR(
        WriteFully(fd_, reinterpret_cast<const std::byte*>(zeros.data()),
                   page_size_, static_cast<off_t>(id) * page_size_));
    return id;
  }
  PageId id = page_count_++;
  freed_.push_back(false);
  PC_RETURN_IF_ERROR(
      WriteFully(fd_, reinterpret_cast<const std::byte*>(zeros.data()),
                 page_size_, static_cast<off_t>(id) * page_size_));
  return id;
}

Status FilePageDevice::Free(PageId id) {
  PC_RETURN_IF_ERROR(CheckId(id));
  ++stats_.frees;
  --live_;
  freed_[id] = true;
  free_list_.push_back(id);
  return Status::OK();
}

Status FilePageDevice::Read(PageId id, std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  PC_RETURN_IF_ERROR(ReadFully(fd_, buf, page_size_,
                               static_cast<off_t>(id) * page_size_,
                               &read_syscalls_));
  ++stats_.reads;
  return Status::OK();
}

Status FilePageDevice::ReadBatch(std::span<const PageId> ids,
                                 std::byte* bufs) {
  if (ids.empty()) return Status::OK();
  for (PageId id : ids) PC_RETURN_IF_ERROR(CheckId(id));

  // Visit the requests in disk order so runs of adjacent pages — block
  // lists allocate their pages consecutively, and the clustering pass in
  // io/layout.h relocates whole structures that way — collapse into single
  // preadv calls; each iovec still targets the caller's original slot.
  // Batches that arrive already in disk order (the common case once a
  // structure is clustered) skip building the sort permutation: slot k of
  // the batch IS disk-order position k.
  const bool already_sorted = std::is_sorted(ids.begin(), ids.end());
  std::vector<uint32_t> order;
  if (already_sorted) {
    ++sorted_batches_;
  } else {
    order.resize(ids.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&ids](uint32_t a, uint32_t b) { return ids[a] < ids[b]; });
  }
  auto slot = [&](size_t k) -> size_t {
    return already_sorted ? k : order[k];
  };

  // Split the batch into runs of disk-adjacent pages.
  std::vector<std::pair<size_t, size_t>> run_bounds;  // [begin, end) in slots
  size_t i = 0;
  while (i < ids.size()) {
    size_t j = i + 1;
    while (j < ids.size() && j - i < kMaxCoalescedPages &&
           ids[slot(j)] == ids[slot(j - 1)] + 1) {
      ++j;
    }
    run_bounds.emplace_back(i, j);
    i = j;
  }

  // A batch with several runs is where async submission pays: every run
  // goes to the kernel in one io_uring_enter instead of one blocking preadv
  // each.  Single-run batches stay on preadv — one syscall either way.
  if (backend_ == ReadBackend::kIoUring && run_bounds.size() >= 2 &&
      EnsureUring()) {
    std::vector<struct iovec> all_iov;
    all_iov.reserve(ids.size());
    for (size_t k = 0; k < ids.size(); ++k) {
      all_iov.push_back({bufs + slot(k) * page_size_, page_size_});
    }
    std::vector<UringReader::Run> runs;
    runs.reserve(run_bounds.size());
    for (const auto& [begin, end] : run_bounds) {
      runs.push_back({static_cast<off_t>(ids[slot(begin)]) * page_size_,
                      all_iov.data() + begin, end - begin});
    }
    PC_RETURN_IF_ERROR(uring_->ReadRuns(fd_, runs, &read_syscalls_));
    ++uring_batches_;
  } else {
    std::vector<struct iovec> iov;
    for (const auto& [begin, end] : run_bounds) {
      iov.clear();
      for (size_t k = begin; k < end; ++k) {
        iov.push_back({bufs + slot(k) * page_size_, page_size_});
      }
      PC_RETURN_IF_ERROR(PreadvFully(
          fd_, iov.data(), iov.size(),
          static_cast<off_t>(ids[slot(begin)]) * page_size_,
          &read_syscalls_));
    }
  }
  stats_.reads += ids.size();
  ++stats_.batch_reads;
  return Status::OK();
}

Result<uint64_t> FilePageDevice::SubmitBatch(std::span<const PageId> ids,
                                             std::byte* bufs) {
  // The async split only exists on the ring transport; preadv has no way to
  // start a read without finishing it.  NotSupported routes callers to the
  // blocking ReadBatch fallback.
  if (backend_ != ReadBackend::kIoUring || !EnsureUring()) {
    return Status::NotSupported("async batches need the io_uring backend");
  }
  if (inflight_.size() >= kMaxInflightBatches) {
    return Status::InvalidArgument("too many in-flight batches");
  }
  for (PageId id : ids) PC_RETURN_IF_ERROR(CheckId(id));

  const uint64_t ticket = next_ticket_++;
  if (ids.empty()) {
    inflight_.emplace(ticket, InflightBatch{0, 0, false});
    return ticket;
  }

  // Identical ordering/coalescing to ReadBatch, so the op counts (and the
  // bytes each run moves) match the synchronous path exactly.
  const bool already_sorted = std::is_sorted(ids.begin(), ids.end());
  std::vector<uint32_t> order;
  if (already_sorted) {
    ++sorted_batches_;
  } else {
    order.resize(ids.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&ids](uint32_t a, uint32_t b) { return ids[a] < ids[b]; });
  }
  auto slot = [&](size_t k) -> size_t {
    return already_sorted ? k : order[k];
  };

  std::vector<std::pair<size_t, size_t>> run_bounds;  // [begin, end) in slots
  size_t i = 0;
  while (i < ids.size()) {
    size_t j = i + 1;
    while (j < ids.size() && j - i < kMaxCoalescedPages &&
           ids[slot(j)] == ids[slot(j - 1)] + 1) {
      ++j;
    }
    run_bounds.emplace_back(i, j);
    i = j;
  }

  // The iovecs move into the ring (BeginBatch contract): short-completion
  // adjustment must never race a caller-owned vector.  `bufs` itself stays
  // caller-owned until AwaitBatch.
  std::vector<struct iovec> all_iov;
  all_iov.reserve(ids.size());
  for (size_t k = 0; k < ids.size(); ++k) {
    all_iov.push_back({bufs + slot(k) * page_size_, page_size_});
  }
  std::vector<UringReader::Run> runs;
  runs.reserve(run_bounds.size());
  for (const auto& [begin, end] : run_bounds) {
    runs.push_back({static_cast<off_t>(ids[slot(begin)]) * page_size_,
                    all_iov.data() + begin, end - begin});
  }
  Result<uint64_t> token = uring_->BeginBatch(fd_, std::move(all_iov),
                                              std::move(runs),
                                              &read_syscalls_);
  if (!token.ok()) return token.status();
  inflight_.emplace(ticket, InflightBatch{token.value(), ids.size(), true});
  return ticket;
}

Status FilePageDevice::AwaitBatch(uint64_t ticket) {
  auto it = inflight_.find(ticket);
  if (it == inflight_.end()) {
    return Status::InvalidArgument("unknown async batch ticket");
  }
  const InflightBatch b = it->second;
  inflight_.erase(it);
  if (!b.submitted) return Status::OK();  // the empty batch
  PC_RETURN_IF_ERROR(uring_->WaitBatch(b.token));
  stats_.reads += b.n;
  ++stats_.batch_reads;
  ++uring_batches_;
  return Status::OK();
}

Status FilePageDevice::Write(PageId id, const std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  PC_RETURN_IF_ERROR(WriteFully(fd_, buf, page_size_,
                                static_cast<off_t>(id) * page_size_));
  ++stats_.writes;
  return Status::OK();
}

}  // namespace pathcache
