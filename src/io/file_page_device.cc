#include "io/file_page_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>

namespace pathcache {

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Create(
    const std::string& path, uint32_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<FilePageDevice>(new FilePageDevice(fd, page_size));
}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Open(
    const std::string& path, uint32_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek: " + std::string(std::strerror(errno)));
  }
  if (size % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size is not a multiple of the page size");
  }
  auto dev = std::unique_ptr<FilePageDevice>(
      new FilePageDevice(fd, page_size));
  dev->page_count_ = static_cast<uint64_t>(size) / page_size;
  dev->live_ = dev->page_count_;
  dev->freed_.assign(dev->page_count_, false);
  return dev;
}

FilePageDevice::~FilePageDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePageDevice::CheckId(PageId id) const {
  if (id >= page_count_) {
    return Status::InvalidArgument("page id out of range: " +
                                   std::to_string(id));
  }
  if (freed_[id]) {
    return Status::Corruption("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Result<PageId> FilePageDevice::Allocate() {
  ++stats_.allocs;
  ++live_;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    std::string zeros(page_size_, '\0');
    if (::pwrite(fd_, zeros.data(), page_size_,
                 static_cast<off_t>(id) * page_size_) !=
        static_cast<ssize_t>(page_size_)) {
      return Status::IoError("pwrite: " + std::string(std::strerror(errno)));
    }
    return id;
  }
  PageId id = page_count_++;
  freed_.push_back(false);
  std::string zeros(page_size_, '\0');
  if (::pwrite(fd_, zeros.data(), page_size_,
               static_cast<off_t>(id) * page_size_) !=
      static_cast<ssize_t>(page_size_)) {
    return Status::IoError("pwrite: " + std::string(std::strerror(errno)));
  }
  return id;
}

Status FilePageDevice::Free(PageId id) {
  PC_RETURN_IF_ERROR(CheckId(id));
  ++stats_.frees;
  --live_;
  freed_[id] = true;
  free_list_.push_back(id);
  return Status::OK();
}

Status FilePageDevice::Read(PageId id, std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  ssize_t r = ::pread(fd_, buf, page_size_, static_cast<off_t>(id) * page_size_);
  if (r != static_cast<ssize_t>(page_size_)) {
    return Status::IoError("pread: " + std::string(std::strerror(errno)));
  }
  ++stats_.reads;
  return Status::OK();
}

Status FilePageDevice::Write(PageId id, const std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  ssize_t r =
      ::pwrite(fd_, buf, page_size_, static_cast<off_t>(id) * page_size_);
  if (r != static_cast<ssize_t>(page_size_)) {
    return Status::IoError("pwrite: " + std::string(std::strerror(errno)));
  }
  ++stats_.writes;
  return Status::OK();
}

}  // namespace pathcache
