// ChecksumPageDevice: end-to-end page integrity via a CRC32C trailer.
//
// Wraps any PageDevice and reserves the last kPageTrailerBytes of every
// physical page for a trailer { magic, crc }:
//
//   * page_size() shrinks by kPageTrailerBytes — callers see only the
//     payload, so structures built on a checksummed device automatically
//     fit their records to the smaller page;
//   * Write() stamps the trailer; Read()/ReadBatch()/Pin() verify it and
//     surface any mismatch as Status::Corruption naming the page id and the
//     byte offset of the first differing trailer byte;
//   * the CRC covers payload bytes plus the page id, so a page written to
//     (or read from) the wrong location — a misdirected I/O — fails
//     verification even though its bytes are internally consistent;
//   * an all-zero physical page verifies as a valid zero payload: freshly
//     Allocate()d pages are readable without a priming write, matching the
//     plain-device contract.
//
// Stacking order (see README "Integrity & fault tolerance"): the checksum
// layer goes directly above the physical device and below any cache, so
// every page entering the cache was verified once and cached hits pay no
// re-verification:  File -> Checksum -> [Retry] -> BufferPool.

#ifndef PATHCACHE_IO_CHECKSUM_PAGE_DEVICE_H_
#define PATHCACHE_IO_CHECKSUM_PAGE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "io/page_device.h"

namespace pathcache {

/// Bytes reserved at the end of each physical page.
inline constexpr uint32_t kPageTrailerBytes = 8;

/// Trailer magic ("PCk1"); distinguishes a stamped page from a never-written
/// (all-zero) one and versions the trailer layout itself.
inline constexpr uint32_t kPageTrailerMagic = 0x316B4350u;

class ChecksumPageDevice final : public PageDevice {
 public:
  /// Does not own `inner`.  inner->page_size() must exceed
  /// kPageTrailerBytes; payload page_size() is the difference.
  explicit ChecksumPageDevice(PageDevice* inner);

  /// Reads and verifies the page without copying the payload out: the cheap
  /// primitive VerifyStore's scrub pass is built on.
  Status Scrub(PageId id);

  /// Pages that passed / failed verification since construction.  Relaxed
  /// atomics: safe to sample from any thread while operations run (the
  /// observability exporter does); everything else on this device follows
  /// the usual single-caller decorator contract.
  uint64_t pages_verified() const {
    return pages_verified_.load(std::memory_order_relaxed);
  }
  uint64_t checksum_failures() const {
    return checksum_failures_.load(std::memory_order_relaxed);
  }

  // --- PageDevice ---------------------------------------------------------

  uint32_t page_size() const override { return payload_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;

  /// Async ReadBatch: the physical pages stream into a staging buffer via
  /// the inner device's SubmitBatch; verification and the payload copy-out
  /// happen at AwaitBatch, after the transfer lands.  Counting and error
  /// mapping match ReadBatch on the same ids.
  Result<uint64_t> SubmitBatch(std::span<const PageId> ids,
                               std::byte* bufs) override;
  Status AwaitBatch(uint64_t ticket) override;

  Status Write(PageId id, const std::byte* buf) override;
  /// Pins the inner frame, verifies it, and returns a pointer to its payload
  /// prefix (page_size() bytes).  Verification happens on every Pin — cache
  /// above this device, not below, if that matters.
  Result<const std::byte*> Pin(PageId id) override;
  void Unpin(PageId id) override { inner_->Unpin(id); }
  Status Sync() override {
    Status s = inner_->Sync();
    if (s.ok()) ++stats_.syncs;
    return s;
  }
  Status ListLivePages(std::vector<PageId>* out) override {
    return inner_->ListLivePages(out);
  }
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }
  uint64_t live_pages() const override { return inner_->live_pages(); }

 private:
  /// Checks the trailer of physical page image `phys` (inner page_size()
  /// bytes) against its payload and `id`.
  Status Verify(PageId id, const std::byte* phys);

  PageDevice* inner_;
  uint32_t payload_size_;
  IoStats stats_;
  std::atomic<uint64_t> pages_verified_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::vector<std::byte> scratch_;  // one physical page, reused across ops

  // One outstanding SubmitBatch: physical staging plus where the verified
  // payloads go at AwaitBatch.
  struct AsyncBatch {
    uint64_t inner_ticket = 0;
    std::vector<PageId> ids;
    std::vector<std::byte> staging;
    std::byte* bufs = nullptr;
  };
  std::map<uint64_t, AsyncBatch> async_batches_;
  uint64_t next_async_ticket_ = 1;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_CHECKSUM_PAGE_DEVICE_H_
