// PageDevice: the abstract block device every external structure is built on.
//
// The paper's cost model charges one unit per page transferred; a PageDevice
// counts exactly that.  Implementations: MemPageDevice (simulated, counted),
// FilePageDevice (a real file, for demos), BufferPool (an LRU cache that is
// itself a PageDevice decorating another).

#ifndef PATHCACHE_IO_PAGE_DEVICE_H_
#define PATHCACHE_IO_PAGE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "io/io_types.h"
#include "util/status.h"

namespace pathcache {

class PageDevice {
 public:
  virtual ~PageDevice() = default;

  /// Page size in bytes; fixed for the lifetime of the device.
  virtual uint32_t page_size() const = 0;

  /// Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Returns a page to the device.  Reading a freed page is Corruption.
  virtual Status Free(PageId id) = 0;

  /// Copies the page into `buf`, which must hold page_size() bytes.
  virtual Status Read(PageId id, std::byte* buf) = 0;

  /// Reads `ids.size()` pages into `bufs` (ids[k]'s page lands at
  /// bufs + k * page_size()).  Counted exactly like ids.size() calls to
  /// Read() — batching is a transport optimization, never a cost-model one —
  /// so callers may only batch pages they would have read anyway.
  /// Implementations may reorder or coalesce the physical transfers; on
  /// error the contents of `bufs` are unspecified.
  virtual Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) {
    for (size_t i = 0; i < ids.size(); ++i) {
      PC_RETURN_IF_ERROR(Read(ids[i], bufs + i * page_size()));
    }
    return Status::OK();
  }

  /// Overwrites the page from `buf`, which must hold page_size() bytes.
  virtual Status Write(PageId id, const std::byte* buf) = 0;

  /// Cumulative counters since construction or the last ResetStats().
  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Number of live (allocated, not freed) pages — the "disk blocks of
  /// storage" quantity in the paper's space bounds.
  virtual uint64_t live_pages() const = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_PAGE_DEVICE_H_
