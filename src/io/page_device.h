// PageDevice: the abstract block device every external structure is built on.
//
// The paper's cost model charges one unit per page transferred; a PageDevice
// counts exactly that.  Implementations: MemPageDevice (simulated, counted),
// FilePageDevice (a real file, for demos), BufferPool (an LRU cache that is
// itself a PageDevice decorating another).

#ifndef PATHCACHE_IO_PAGE_DEVICE_H_
#define PATHCACHE_IO_PAGE_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "io/io_types.h"
#include "util/status.h"

namespace pathcache {

class PageDevice {
 public:
  virtual ~PageDevice() = default;

  /// Page size in bytes; fixed for the lifetime of the device.
  virtual uint32_t page_size() const = 0;

  /// Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Returns a page to the device.  Reading a freed page is Corruption.
  virtual Status Free(PageId id) = 0;

  /// Copies the page into `buf`, which must hold page_size() bytes.
  virtual Status Read(PageId id, std::byte* buf) = 0;

  /// Reads `ids.size()` pages into `bufs` (ids[k]'s page lands at
  /// bufs + k * page_size()).  Counted exactly like ids.size() calls to
  /// Read() — batching is a transport optimization, never a cost-model one —
  /// so callers may only batch pages they would have read anyway.
  /// Implementations may reorder or coalesce the physical transfers; on
  /// error the contents of `bufs` are unspecified.
  virtual Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) {
    for (size_t i = 0; i < ids.size(); ++i) {
      PC_RETURN_IF_ERROR(Read(ids[i], bufs + i * page_size()));
    }
    return Status::OK();
  }

  /// Asynchronous ReadBatch, split into submit and await so the transfer
  /// can complete under the caller's compute.  SubmitBatch() starts reading
  /// `ids` into `bufs` (same placement contract as ReadBatch) and returns a
  /// ticket; `ids` may be discarded after the call returns but `bufs` must
  /// stay alive and untouched until the matching AwaitBatch(ticket), which
  /// blocks until every page has landed and returns the batch's status.
  ///
  /// Counting happens at AwaitBatch, with totals identical to the same ids
  /// through ReadBatch — splitting the call is a transport optimization,
  /// never a cost-model one.  Error semantics are also identical: on a
  /// failed await the contents of `bufs` are unspecified.  Devices without
  /// an async engine return NotSupported from SubmitBatch and callers fall
  /// back to the blocking ReadBatch — AsyncBatchReader (below) packages
  /// that fallback.  At most kMaxInflightBatches tickets may be outstanding
  /// per device; every successful SubmitBatch MUST be awaited exactly once.
  virtual Result<uint64_t> SubmitBatch(std::span<const PageId> /*ids*/,
                                       std::byte* /*bufs*/) {
    return Status::NotSupported("device has no async read engine");
  }
  virtual Status AwaitBatch(uint64_t /*ticket*/) {
    return Status::NotSupported("device has no async read engine");
  }

  /// Ceiling on concurrently outstanding SubmitBatch tickets per device.
  static constexpr uint32_t kMaxInflightBatches = 64;

  /// Overwrites the page from `buf`, which must hold page_size() bytes.
  virtual Status Write(PageId id, const std::byte* buf) = 0;

  /// Durability barrier: blocks until every Write() acknowledged before this
  /// call has reached stable storage.  A write is only guaranteed to survive
  /// a crash once a later Sync() has returned OK — the write-ahead-log and
  /// manifest-publish protocols are built on exactly this contract.  The
  /// default is a no-op because the in-memory devices are trivially durable;
  /// FilePageDevice issues fdatasync, decorators forward, and
  /// FaultPageDevice models power loss by discarding unsynced writes.
  virtual Status Sync() { return Status::OK(); }

  /// Appends the id of every live (allocated, not freed) page to `out`, in
  /// unspecified order.  Offline passes (fsck orphan classification, --gc
  /// repair) need the actual id set, not just the live_pages() count.
  /// Devices that cannot enumerate return NotSupported and those passes
  /// degrade to count-only reporting.
  virtual Status ListLivePages(std::vector<PageId>* /*out*/) {
    return Status::NotSupported("device cannot enumerate live pages");
  }

  /// Pins the page in the device's own storage and returns a stable pointer
  /// to its page_size() bytes, valid until the matching Unpin(id).  Counted
  /// exactly like Read() — pinning is a transport optimization (it skips the
  /// copy into a caller buffer), never a cost-model one.  Pins nest: each
  /// successful Pin() must be paired with one Unpin().
  ///
  /// A pinned frame is read-only and stays resident: caching devices must
  /// not evict it, and callers must not Write() or Free() the page while it
  /// is pinned.  Devices without stable frames return NotSupported and
  /// callers fall back to Read() into their own buffer — PagePin (below)
  /// packages that fallback.
  virtual Result<const std::byte*> Pin(PageId /*id*/) {
    return Status::NotSupported("device has no pinnable frames");
  }

  /// Releases one pin on `id`.  Calling without a matching Pin() is a
  /// caller bug; implementations may assert.
  virtual void Unpin(PageId /*id*/) {}

  /// Cumulative counters since construction or the last ResetStats().
  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Number of live (allocated, not freed) pages — the "disk blocks of
  /// storage" quantity in the paper's space bounds.
  virtual uint64_t live_pages() const = 0;
};

/// RAII view of one page: a zero-copy pinned frame when the device supports
/// Pin(), otherwise a read into an owned buffer.  Either path costs exactly
/// one counted logical read, so scan code can use PagePin unconditionally
/// without perturbing the paper's I/O accounting.
class PagePin {
 public:
  PagePin() = default;
  ~PagePin() { Release(); }
  PagePin(const PagePin&) = delete;
  PagePin& operator=(const PagePin&) = delete;
  PagePin(PagePin&& o) noexcept { *this = std::move(o); }
  PagePin& operator=(PagePin&& o) noexcept {
    if (this != &o) {
      Release();
      dev_ = o.dev_;
      id_ = o.id_;
      pinned_ = o.pinned_;
      data_ = o.data_;
      no_pin_dev_ = o.no_pin_dev_;
      fallback_ = std::move(o.fallback_);
      if (!pinned_ && data_ != nullptr) data_ = fallback_.data();
      o.dev_ = nullptr;
      o.id_ = kInvalidPageId;
      o.pinned_ = false;
      o.data_ = nullptr;
    }
    return *this;
  }

  /// Loads `id`, releasing any previously held page first.
  Status Load(PageDevice* dev, PageId id) {
    Release();
    // Remember a NotSupported verdict per device so steady-state loads on a
    // non-pinning device skip straight to the Read() fallback.
    if (dev != no_pin_dev_) {
      Result<const std::byte*> pin = dev->Pin(id);
      if (pin.ok()) {
        dev_ = dev;
        id_ = id;
        pinned_ = true;
        data_ = pin.value();
        return Status::OK();
      }
      if (pin.status().code() != StatusCode::kNotSupported) {
        return pin.status();
      }
      no_pin_dev_ = dev;
    }
    fallback_.resize(dev->page_size());
    PC_RETURN_IF_ERROR(dev->Read(id, fallback_.data()));
    dev_ = dev;
    id_ = id;
    data_ = fallback_.data();
    return Status::OK();
  }

  /// Valid only after a successful Load(); page_size() bytes.
  const std::byte* data() const { return data_; }
  bool holds_page() const { return data_ != nullptr; }
  PageId page() const { return id_; }

  void Release() {
    if (pinned_) dev_->Unpin(id_);
    dev_ = nullptr;
    id_ = kInvalidPageId;
    pinned_ = false;
    data_ = nullptr;
  }

 private:
  PageDevice* dev_ = nullptr;
  PageId id_ = kInvalidPageId;
  bool pinned_ = false;
  const std::byte* data_ = nullptr;
  PageDevice* no_pin_dev_ = nullptr;  // last device that said NotSupported
  std::vector<std::byte> fallback_;   // kept across Loads to reuse capacity
};

/// RAII wrapper for one in-flight SubmitBatch/AwaitBatch pair with a
/// blocking fallback: Start() submits when the device has an async engine
/// and otherwise runs the plain ReadBatch immediately, so callers write one
/// overlap-friendly code path and devices without rings stay correct with
/// identical counted I/O.  Wait() is idempotent; an un-waited in-flight
/// batch is awaited (status dropped) on destruction so `bufs` can never be
/// released while a transfer is landing into it.
class AsyncBatchReader {
 public:
  AsyncBatchReader() = default;
  ~AsyncBatchReader() { (void)Wait(); }
  AsyncBatchReader(const AsyncBatchReader&) = delete;
  AsyncBatchReader& operator=(const AsyncBatchReader&) = delete;

  /// Begins reading `ids` into `bufs` (ReadBatch placement).  At most one
  /// batch per reader may be outstanding; Wait() first when reusing.
  /// After a successful Start, `bufs` must stay alive until Wait() returns.
  Status Start(PageDevice* dev, std::span<const PageId> ids,
               std::byte* bufs) {
    PC_RETURN_IF_ERROR(Wait());
    // Remember a NotSupported verdict per device so steady-state batches on
    // a sync-only device skip straight to the ReadBatch fallback.
    if (dev != no_async_dev_) {
      Result<uint64_t> t = dev->SubmitBatch(ids, bufs);
      if (t.ok()) {
        dev_ = dev;
        ticket_ = t.value();
        in_flight_ = true;
        return Status::OK();
      }
      if (t.status().code() != StatusCode::kNotSupported) {
        return t.status();
      }
      no_async_dev_ = dev;
    }
    return dev->ReadBatch(ids, bufs);
  }

  /// Blocks until the in-flight batch (if any) has fully landed.
  Status Wait() {
    if (!in_flight_) return Status::OK();
    in_flight_ = false;
    return dev_->AwaitBatch(ticket_);
  }

  bool in_flight() const { return in_flight_; }

 private:
  PageDevice* dev_ = nullptr;
  uint64_t ticket_ = 0;
  bool in_flight_ = false;
  PageDevice* no_async_dev_ = nullptr;  // last device that said NotSupported
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_PAGE_DEVICE_H_
