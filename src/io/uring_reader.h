// UringReader: an io_uring submission path for batched page reads.
//
// FilePageDevice::ReadBatch coalesces a batch into runs of disk-adjacent
// pages; the preadv backend issues one blocking syscall per run.  This
// reader instead queues one IORING_OP_READV submission per run and lets the
// kernel service every run of the batch concurrently under a single
// io_uring_enter — the async win the paper's batched path-cache probes
// (many runs per query) are shaped for.
//
// Semantics are identical to the preadv path by construction: short
// completions are resubmitted for the remainder, -EINTR/-EAGAIN retry, a
// zero-length completion mid-run maps to the same Corruption("short read at
// offset N: unexpected end of file") the synchronous helpers produce, and
// `*ops` counts submitted read operations (retries included) exactly as the
// preadv backend counts syscalls — so FilePageDevice::read_syscalls() is
// backend-independent on healthy files (tests/uring_test.cpp asserts this).
//
// Built on raw syscalls (io_uring_setup / io_uring_enter + mmap'd rings);
// no liburing dependency.  SystemSupported() probes once per process and
// callers fall back to preadv when the kernel (or a seccomp policy) says no.

#ifndef PATHCACHE_IO_URING_READER_H_
#define PATHCACHE_IO_URING_READER_H_

#include <sys/types.h>
#include <sys/uio.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/status.h"

namespace pathcache {

class UringReader {
 public:
  /// One coalesced run: fill `iov[0..iovcnt)` from the file starting at
  /// `offset`.  The iovecs are adjusted in place as completions land (same
  /// contract as the synchronous PreadvFully helper).
  struct Run {
    off_t offset = 0;
    struct iovec* iov = nullptr;
    size_t iovcnt = 0;
  };

  /// True when this kernel accepts io_uring_setup (probed once per process).
  static bool SystemSupported();

  /// Creates a reader with a ring of `entries` submission slots (rounded up
  /// by the kernel).  Fails with NotSupported/IoError when the kernel
  /// refuses the ring; callers then use the preadv path.
  static Result<std::unique_ptr<UringReader>> Create(unsigned entries = 64);

  ~UringReader();
  UringReader(const UringReader&) = delete;
  UringReader& operator=(const UringReader&) = delete;

  /// Reads every run from `fd`, blocking until all complete.  On error the
  /// first failure is returned, but only after every in-flight submission
  /// has drained — the kernel writes into caller-owned buffers, so no
  /// completion may outlive this call.  `*ops` (optional) is incremented
  /// once per submitted read operation, retries included.
  Status ReadRuns(int fd, std::span<Run> runs, uint64_t* ops);

  /// Truly-asynchronous batch API, the submit half.  Queues every run for
  /// reading from `fd`, submits as many as the ring accepts WITHOUT waiting
  /// for completions, and returns a token for WaitBatch.  The kernel reads
  /// under the caller's subsequent compute — that overlap is the entire
  /// point of the split.
  ///
  /// `runs[i].iov` must point into `iov`; both vectors move into the reader
  /// and live until WaitBatch returns, so the in-place iovec adjustment on
  /// short completions never touches caller memory.  The target buffers the
  /// iovecs address ARE caller-owned and must stay alive until WaitBatch.
  ///
  /// Thread-safe: any number of batches may be in flight concurrently,
  /// submitted and awaited from different threads.  Submission-queue access
  /// serializes behind one internal mutex and each completion routes back
  /// to its batch via the io_uring user_data field (token | run index).
  ///
  /// `*ops` is bumped once per submitted read operation (retries included),
  /// under the internal mutex, with the same totals ReadRuns would count;
  /// the pointee must outlive WaitBatch.
  Result<uint64_t> BeginBatch(int fd, std::vector<struct iovec> iov,
                              std::vector<Run> runs, uint64_t* ops);

  /// Drives the ring until the batch behind `token` has fully completed
  /// (or errored AND fully drained — the kernel writes into caller buffers,
  /// so no completion may outlive this call), then returns the batch's
  /// status: first error wins, short completions resubmit, -EINTR/-EAGAIN
  /// retry, zero-length completions map to the same Corruption as the
  /// synchronous path.  Each token must be awaited exactly once.
  Status WaitBatch(uint64_t token);

 private:
  struct Rings;  // mmap'd SQ/CQ state, defined in the .cc
  struct Batch;  // one in-flight BeginBatch, defined in the .cc

  explicit UringReader(std::unique_ptr<Rings> rings);

  /// Caller holds mu_.  Tops up the SQ from every live batch's pending
  /// runs, enters the kernel (waiting for >= 1 completion iff `wait`), and
  /// drains + routes every available completion.  Returns the status of the
  /// enter machinery itself; per-run outcomes land in their batches.
  Status PumpLocked(bool wait);

  std::unique_ptr<Rings> rings_;
  std::mutex mu_;
  // Ordered so the oldest batch tops up the SQ first; unique_ptr keeps
  // Batch an incomplete type here.
  std::map<uint64_t, std::unique_ptr<Batch>> batches_;
  uint64_t next_token_ = 1;
  uint64_t ring_inflight_ = 0;  // SQEs handed to the kernel, not yet completed
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_URING_READER_H_
