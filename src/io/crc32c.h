// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// persisted page.
//
// Chosen over CRC32 (IEEE) for its strictly better Hamming-distance profile
// at 4 KiB block lengths: it detects all 1- and 2-bit errors and all burst
// errors up to 32 bits at the page sizes this library uses, which is exactly
// the fault model ChecksumPageDevice defends against.  The portable
// implementation is software slice-by-8 (~1 GB/s); when the CPU has the
// CRC32C instruction (SSE4.2 / ARMv8+crc) and SIMD kernels are not disabled
// (kernels::HwCrc32cActive()), updates run on the hardware instruction
// instead — same polynomial, same register state, byte-identical checksums.

#ifndef PATHCACHE_IO_CRC32C_H_
#define PATHCACHE_IO_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace pathcache {

/// Incremental interface: `state = Crc32cInit()`, fold bytes with
/// `Crc32cUpdate`, then `Crc32cFinish(state)` yields the checksum.  The
/// intermediate state is the un-inverted CRC register, not a valid checksum.
uint32_t Crc32cInit();
uint32_t Crc32cUpdate(uint32_t state, const void* data, size_t n);
uint32_t Crc32cFinish(uint32_t state);

/// One-shot convenience over the incremental interface.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cFinish(Crc32cUpdate(Crc32cInit(), data, n));
}

}  // namespace pathcache

#endif  // PATHCACHE_IO_CRC32C_H_
