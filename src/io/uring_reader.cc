#include "io/uring_reader.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>

// Headers can lag the kernel; the syscall numbers are ABI-stable.
#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif

#define PATHCACHE_HAVE_URING 1
#endif

namespace pathcache {

#if defined(PATHCACHE_HAVE_URING)

namespace {

int SysUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

inline unsigned LoadAcquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_acquire);
}
inline unsigned LoadRelaxed(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_relaxed);
}
inline void StoreRelease(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

// The three kernel-shared mappings (SQ ring, CQ ring, SQE array) plus the
// raw pointers into them.  Offsets come from io_uring_params at setup time.
struct UringReader::Rings {
  int fd = -1;
  unsigned sq_entries = 0;

  void* sq_ptr = nullptr;
  size_t sq_len = 0;
  void* cq_ptr = nullptr;  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
  size_t cq_len = 0;
  struct io_uring_sqe* sqes = nullptr;
  size_t sqes_len = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  struct io_uring_cqe* cqes = nullptr;

  ~Rings() {
    if (sqes != nullptr) ::munmap(sqes, sqes_len);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_len);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_len);
    if (fd >= 0) ::close(fd);
  }
};

bool UringReader::SystemSupported() {
  static const bool supported = [] {
    struct io_uring_params p {};
    int fd = SysUringSetup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

UringReader::UringReader(std::unique_ptr<Rings> rings)
    : rings_(std::move(rings)) {}

UringReader::~UringReader() = default;

Result<std::unique_ptr<UringReader>> UringReader::Create(unsigned entries) {
  struct io_uring_params p {};
  int ring_fd = SysUringSetup(entries, &p);
  if (ring_fd < 0) {
    return Status::NotSupported(std::string("io_uring_setup: ") +
                                std::strerror(errno));
  }
  auto r = std::make_unique<Rings>();
  r->fd = ring_fd;
  r->sq_entries = p.sq_entries;

  r->sq_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  r->cq_len = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    r->sq_len = r->cq_len = std::max(r->sq_len, r->cq_len);
  }

  r->sq_ptr = ::mmap(nullptr, r->sq_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
  if (r->sq_ptr == MAP_FAILED) {
    r->sq_ptr = nullptr;
    return Status::IoError(std::string("mmap(sq ring): ") +
                           std::strerror(errno));
  }
  if (single_mmap) {
    r->cq_ptr = r->sq_ptr;
  } else {
    r->cq_ptr = ::mmap(nullptr, r->cq_len, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
    if (r->cq_ptr == MAP_FAILED) {
      r->cq_ptr = nullptr;
      return Status::IoError(std::string("mmap(cq ring): ") +
                             std::strerror(errno));
    }
  }
  r->sqes_len = p.sq_entries * sizeof(struct io_uring_sqe);
  void* sqes = ::mmap(nullptr, r->sqes_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    return Status::IoError(std::string("mmap(sqes): ") + std::strerror(errno));
  }
  r->sqes = static_cast<struct io_uring_sqe*>(sqes);

  char* sq = static_cast<char*>(r->sq_ptr);
  r->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  r->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  r->sq_mask = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  r->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  char* cq = static_cast<char*>(r->cq_ptr);
  r->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  r->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  r->cq_mask = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  r->cqes = reinterpret_cast<struct io_uring_cqe*>(cq + p.cq_off.cqes);

  return std::unique_ptr<UringReader>(new UringReader(std::move(r)));
}

Status UringReader::ReadRuns(int fd, std::span<Run> runs, uint64_t* ops) {
  if (runs.empty()) return Status::OK();
  Rings& rg = *rings_;

  // Runs awaiting (re)submission, popped back-to-front so they submit in
  // ascending disk order.
  std::vector<uint32_t> pending;
  pending.reserve(runs.size());
  for (size_t i = runs.size(); i > 0; --i) {
    pending.push_back(static_cast<uint32_t>(i - 1));
  }

  size_t inflight = 0;
  size_t done = 0;
  int enter_failures = 0;
  Status first_error = Status::OK();

  // On error we stop submitting but keep draining: the kernel writes into
  // caller-owned buffers, so no completion may outlive this call.
  while (done < runs.size()) {
    unsigned to_submit = 0;
    if (first_error.ok()) {
      unsigned tail = LoadRelaxed(rg.sq_tail);
      while (!pending.empty() &&
             tail - LoadAcquire(rg.sq_head) < rg.sq_entries) {
        const uint32_t ri = pending.back();
        pending.pop_back();
        Run& run = runs[ri];
        const unsigned idx = tail & *rg.sq_mask;
        struct io_uring_sqe* sqe = &rg.sqes[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = IORING_OP_READV;
        sqe->fd = fd;
        sqe->addr = reinterpret_cast<uint64_t>(run.iov);
        sqe->len = static_cast<uint32_t>(run.iovcnt);
        sqe->off = static_cast<uint64_t>(run.offset);
        sqe->user_data = ri;
        rg.sq_array[idx] = idx;
        ++tail;
        ++to_submit;
        if (ops != nullptr) ++*ops;
      }
      StoreRelease(rg.sq_tail, tail);
    } else if (inflight == 0) {
      break;  // error recorded, nothing left in flight: abandon the rest
    }

    // Submit whatever is queued and wait for at least one completion.  The
    // submit count is recomputed from the ring so an EINTR retry never
    // double-counts entries the kernel already consumed.
    const unsigned unconsumed =
        LoadRelaxed(rg.sq_tail) - LoadAcquire(rg.sq_head);
    const int ret = SysUringEnter(rg.fd, unconsumed,
                                  (to_submit + inflight) > 0 ? 1 : 0,
                                  IORING_ENTER_GETEVENTS);
    if (ret < 0) {
      if (errno == EINTR) continue;
      if (first_error.ok()) {
        first_error = Status::IoError(std::string("io_uring_enter: ") +
                                      std::strerror(errno));
      }
      // A persistently failing enter with submissions in flight would spin
      // forever; give the kernel a bounded number of chances to hand back
      // the completions before bailing out.
      if (++enter_failures > 100 || inflight == 0) return first_error;
      continue;
    }
    inflight += static_cast<size_t>(ret);

    // Drain every available completion.
    unsigned chead = LoadRelaxed(rg.cq_head);
    const unsigned ctail = LoadAcquire(rg.cq_tail);
    while (chead != ctail) {
      const struct io_uring_cqe& cqe = rg.cqes[chead & *rg.cq_mask];
      const auto ri = static_cast<uint32_t>(cqe.user_data);
      const int res = cqe.res;
      ++chead;
      --inflight;
      Run& run = runs[ri];
      if (res < 0) {
        if ((res == -EINTR || res == -EAGAIN) && first_error.ok()) {
          pending.push_back(ri);
          continue;
        }
        if (first_error.ok()) {
          first_error = Status::IoError(
              "io_uring read at offset " + std::to_string(run.offset) + ": " +
              std::strerror(-res));
        }
        ++done;
        continue;
      }
      if (res == 0) {
        // Same mapping as the synchronous helpers: EOF mid-run means the
        // file is truncated relative to the page table.
        if (first_error.ok()) {
          first_error = Status::Corruption(
              "short read at offset " + std::to_string(run.offset) +
              ": unexpected end of file");
        }
        ++done;
        continue;
      }
      size_t got = static_cast<size_t>(res);
      run.offset += res;
      while (got > 0 && run.iovcnt > 0) {
        if (got >= run.iov[0].iov_len) {
          got -= run.iov[0].iov_len;
          ++run.iov;
          --run.iovcnt;
        } else {
          run.iov[0].iov_base =
              static_cast<char*>(run.iov[0].iov_base) + got;
          run.iov[0].iov_len -= got;
          got = 0;
        }
      }
      if (run.iovcnt == 0) {
        ++done;
      } else if (first_error.ok()) {
        pending.push_back(ri);  // short completion: resubmit the remainder
      } else {
        ++done;
      }
    }
    StoreRelease(rg.cq_head, chead);

    if (!first_error.ok() && !pending.empty()) {
      // Stop-the-batch: never-submitted runs are abandoned, not retried.
      done += pending.size();
      pending.clear();
    }
  }
  return first_error;
}

// One in-flight BeginBatch.  The iovecs live here (not in the caller) so
// short-completion adjustment and resubmission never race caller memory;
// the buffers they point AT stay caller-owned until WaitBatch returns.
struct UringReader::Batch {
  int fd = -1;
  std::vector<struct iovec> iov;
  std::vector<Run> runs;
  std::vector<uint32_t> pending;  // run indices awaiting (re)submission
  size_t inflight = 0;            // this batch's SQEs inside the kernel
  size_t done = 0;
  uint64_t* ops = nullptr;
  Status first_error;
};

namespace {

// user_data packs (batch token << 24 | run index); 2^24 runs per batch is
// far above kMaxInflightBatches * any real batch size.
constexpr uint64_t kRunBits = 24;
constexpr uint64_t kRunMask = (uint64_t{1} << kRunBits) - 1;

}  // namespace

Result<uint64_t> UringReader::BeginBatch(int fd, std::vector<struct iovec> iov,
                                         std::vector<Run> runs,
                                         uint64_t* ops) {
  if (runs.size() > kRunMask) {
    return Status::InvalidArgument("batch has too many runs");
  }
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t token = next_token_++;
  auto b = std::make_unique<Batch>();
  b->fd = fd;
  b->iov = std::move(iov);
  b->runs = std::move(runs);
  b->ops = ops;
  b->pending.reserve(b->runs.size());
  for (size_t i = b->runs.size(); i > 0; --i) {
    b->pending.push_back(static_cast<uint32_t>(i - 1));
  }
  batches_.emplace(token, std::move(b));
  // Hand the kernel as much of the batch as the ring accepts right now; the
  // enter must NOT wait — the caller's compute happens between here and
  // WaitBatch.  A failed enter is not fatal yet: WaitBatch retries.
  (void)PumpLocked(/*wait=*/false);
  return token;
}

Status UringReader::PumpLocked(bool wait) {
  Rings& rg = *rings_;
  // Top up the SQ: oldest batch first, stop when full.  The bound counts
  // completions the kernel still owes us (ring_inflight_) on top of the
  // unconsumed SQEs, so total outstanding work never exceeds the SQ size —
  // which keeps the CQ ring (>= SQ size) from overflowing even though many
  // batches share it.
  unsigned tail = LoadRelaxed(rg.sq_tail);
  for (auto& [token, bp] : batches_) {
    Batch& b = *bp;
    if (!b.first_error.ok()) continue;
    while (!b.pending.empty() &&
           ring_inflight_ + (tail - LoadAcquire(rg.sq_head)) < rg.sq_entries) {
      const uint32_t ri = b.pending.back();
      b.pending.pop_back();
      Run& run = b.runs[ri];
      const unsigned idx = tail & *rg.sq_mask;
      struct io_uring_sqe* sqe = &rg.sqes[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READV;
      sqe->fd = b.fd;
      sqe->addr = reinterpret_cast<uint64_t>(run.iov);
      sqe->len = static_cast<uint32_t>(run.iovcnt);
      sqe->off = static_cast<uint64_t>(run.offset);
      sqe->user_data = (token << kRunBits) | ri;
      rg.sq_array[idx] = idx;
      ++tail;
      ++b.inflight;
      if (b.ops != nullptr) ++*b.ops;
    }
  }
  StoreRelease(rg.sq_tail, tail);

  // Recomputed from the ring so an EINTR retry never double-counts entries
  // the kernel already consumed.
  const unsigned unconsumed = LoadRelaxed(rg.sq_tail) - LoadAcquire(rg.sq_head);
  const unsigned min_complete = wait && ring_inflight_ + unconsumed > 0 ? 1 : 0;
  const int ret = SysUringEnter(rg.fd, unconsumed, min_complete,
                                IORING_ENTER_GETEVENTS);
  if (ret < 0) {
    // EBUSY = completion-queue backpressure: drain below and retry later.
    if (errno != EINTR && errno != EBUSY) {
      return Status::IoError(std::string("io_uring_enter: ") +
                             std::strerror(errno));
    }
  } else {
    ring_inflight_ += static_cast<uint64_t>(ret);
  }

  // Drain every available completion and route it home by token.
  unsigned chead = LoadRelaxed(rg.cq_head);
  const unsigned ctail = LoadAcquire(rg.cq_tail);
  while (chead != ctail) {
    const struct io_uring_cqe& cqe = rg.cqes[chead & *rg.cq_mask];
    const uint64_t token = cqe.user_data >> kRunBits;
    const auto ri = static_cast<uint32_t>(cqe.user_data & kRunMask);
    const int res = cqe.res;
    ++chead;
    --ring_inflight_;
    auto it = batches_.find(token);
    if (it == batches_.end()) continue;  // defensive; tokens await their CQEs
    Batch& b = *it->second;
    --b.inflight;
    Run& run = b.runs[ri];
    if (res < 0) {
      if ((res == -EINTR || res == -EAGAIN) && b.first_error.ok()) {
        b.pending.push_back(ri);
        continue;
      }
      if (b.first_error.ok()) {
        b.first_error = Status::IoError(
            "io_uring read at offset " + std::to_string(run.offset) + ": " +
            std::strerror(-res));
      }
      ++b.done;
      continue;
    }
    if (res == 0) {
      // Same mapping as the synchronous helpers: EOF mid-run means the
      // file is truncated relative to the page table.
      if (b.first_error.ok()) {
        b.first_error = Status::Corruption(
            "short read at offset " + std::to_string(run.offset) +
            ": unexpected end of file");
      }
      ++b.done;
      continue;
    }
    size_t got = static_cast<size_t>(res);
    run.offset += res;
    while (got > 0 && run.iovcnt > 0) {
      if (got >= run.iov[0].iov_len) {
        got -= run.iov[0].iov_len;
        ++run.iov;
        --run.iovcnt;
      } else {
        run.iov[0].iov_base = static_cast<char*>(run.iov[0].iov_base) + got;
        run.iov[0].iov_len -= got;
        got = 0;
      }
    }
    if (run.iovcnt == 0) {
      ++b.done;
    } else if (b.first_error.ok()) {
      b.pending.push_back(ri);  // short completion: resubmit the remainder
    } else {
      ++b.done;
    }
  }
  StoreRelease(rg.cq_head, chead);

  // Stop-the-batch per batch: once a batch errors, its never-submitted runs
  // are abandoned (other batches are untouched).
  for (auto& [token, bp] : batches_) {
    Batch& b = *bp;
    if (!b.first_error.ok() && !b.pending.empty()) {
      b.done += b.pending.size();
      b.pending.clear();
    }
  }
  return Status::OK();
}

Status UringReader::WaitBatch(uint64_t token) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = batches_.find(token);
  if (it == batches_.end()) {
    return Status::InvalidArgument("unknown io_uring batch token");
  }
  Batch& b = *it->second;
  int enter_failures = 0;
  // done == runs.size() implies none of this batch's SQEs remain in the
  // kernel (each run is completed, resubmitted-then-completed, or abandoned
  // before submission), so erasing the batch below never frees iovecs the
  // kernel could still write through.
  while (b.done < b.runs.size()) {
    Status s = PumpLocked(/*wait=*/true);
    if (!s.ok()) {
      // A persistently failing enter with submissions in flight would spin
      // forever; give the kernel a bounded number of chances.
      if (++enter_failures > 100) {
        if (b.first_error.ok()) b.first_error = s;
        if (b.inflight == 0) break;  // nothing of ours in the kernel: safe
        // Poisoned ring with our SQEs still inside: leak the batch rather
        // than hand the kernel dangling iovecs.
        Status out = b.first_error;
        (void)batches_.extract(it).mapped().release();
        return out;
      }
    }
  }
  Status out = b.first_error;
  batches_.erase(it);
  return out;
}

#else  // !PATHCACHE_HAVE_URING

struct UringReader::Rings {};
struct UringReader::Batch {};

bool UringReader::SystemSupported() { return false; }

UringReader::UringReader(std::unique_ptr<Rings> rings)
    : rings_(std::move(rings)) {}

UringReader::~UringReader() = default;

Result<std::unique_ptr<UringReader>> UringReader::Create(unsigned /*entries*/) {
  return Status::NotSupported("io_uring unavailable on this platform");
}

Status UringReader::ReadRuns(int /*fd*/, std::span<Run> /*runs*/,
                             uint64_t* /*ops*/) {
  return Status::NotSupported("io_uring unavailable on this platform");
}

Result<uint64_t> UringReader::BeginBatch(int /*fd*/,
                                         std::vector<struct iovec> /*iov*/,
                                         std::vector<Run> /*runs*/,
                                         uint64_t* /*ops*/) {
  return Status::NotSupported("io_uring unavailable on this platform");
}

Status UringReader::WaitBatch(uint64_t /*token*/) {
  return Status::NotSupported("io_uring unavailable on this platform");
}

Status UringReader::PumpLocked(bool /*wait*/) {
  return Status::NotSupported("io_uring unavailable on this platform");
}

#endif  // PATHCACHE_HAVE_URING

}  // namespace pathcache
