#include "io/fault_page_device.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace pathcache {
namespace {

std::string Ordinal(const char* kind, uint64_t nth) {
  return std::string(kind) + " #" + std::to_string(nth);
}

}  // namespace

void FaultPageDevice::FailReadAt(uint64_t nth, bool persistent) {
  read_fails_.push_back({nth, persistent});
}

void FaultPageDevice::FailWriteAt(uint64_t nth, bool persistent) {
  write_fails_.push_back({nth, persistent});
}

void FaultPageDevice::FlipBitOnReadAt(uint64_t nth, uint64_t bit) {
  read_flips_.emplace_back(nth, bit);
}

void FaultPageDevice::TearWriteAt(uint64_t nth, uint32_t keep_bytes) {
  tears_.emplace_back(nth, keep_bytes);
}

void FaultPageDevice::CrashAtWrite(uint64_t nth) { crash_at_ = nth; }

void FaultPageDevice::CrashAtSync(uint64_t nth) { crash_at_sync_ = nth; }

void FaultPageDevice::CrashNow() { TriggerCrash(); }

void FaultPageDevice::TriggerCrash() {
  crashed_ = true;
  // Power loss with a volatile write-back cache: everything unsynced is
  // gone.  (Without volatile mode the shadow is empty and this is a no-op —
  // the legacy model where pre-trigger writes persist unsynced.)
  shadow_.clear();
}

void FaultPageDevice::SetVolatileWrites(bool on) {
  if (!on && !crashed_) {
    // Orderly disable: flush, like a clean shutdown.
    for (const auto& [id, bytes] : shadow_) {
      (void)inner_->Write(id, bytes.data());
    }
  }
  if (!on) shadow_.clear();
  volatile_writes_ = on;
}

bool FaultPageDevice::crashed() const { return crashed_; }

void FaultPageDevice::ClearFaults() {
  read_fails_.clear();
  write_fails_.clear();
  read_flips_.clear();
  tears_.clear();
  crash_at_.reset();
  crash_at_sync_.reset();
  crashed_ = false;
  fault_stats_ = FaultStats{};
  reads_seen_ = 0;
  writes_seen_ = 0;
  syncs_seen_ = 0;
}

Status FaultPageDevice::CorruptStoredBit(PageId id, uint64_t bit) {
  const uint32_t psz = inner_->page_size();
  if (bit >= 8ULL * psz) {
    return Status::InvalidArgument("bit index beyond page");
  }
  if (auto it = shadow_.find(id); it != shadow_.end()) {
    it->second[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    ++fault_stats_.bit_flips;
    return Status::OK();
  }
  std::vector<std::byte> tmp(psz);
  PC_RETURN_IF_ERROR(inner_->Read(id, tmp.data()));
  tmp[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  PC_RETURN_IF_ERROR(inner_->Write(id, tmp.data()));
  ++fault_stats_.bit_flips;
  return Status::OK();
}

Result<PageId> FaultPageDevice::Allocate() {
  PC_ASSIGN_OR_RETURN(PageId id, inner_->Allocate());
  ++stats_.allocs;
  return id;
}

Status FaultPageDevice::Free(PageId id) {
  if (crashed_) {
    // The deallocation metadata update is a write like any other: dropped
    // after the crash point, so post-crash GC leaves its pages live for
    // recovery (and fsck) to find.
    ++fault_stats_.dropped_frees;
    ++stats_.frees;
    return Status::OK();
  }
  shadow_.erase(id);
  PC_RETURN_IF_ERROR(inner_->Free(id));
  ++stats_.frees;
  return Status::OK();
}

Status FaultPageDevice::ReadImpl(PageId id, std::byte* buf) {
  const uint64_t nth = reads_seen_++;
  for (const OrdinalFault& f : read_fails_) {
    if (nth == f.at || (f.persistent && nth > f.at)) {
      ++fault_stats_.read_errors;
      return Status::IoError("injected fault: " + Ordinal("read", nth) +
                             (f.persistent ? " (persistent)" : " (transient)"));
    }
  }
  // Unsynced shadow pages are what the "disk" currently answers with.
  if (auto it = shadow_.find(id); it != shadow_.end()) {
    std::memcpy(buf, it->second.data(), page_size());
  } else {
    PC_RETURN_IF_ERROR(inner_->Read(id, buf));
  }
  for (const auto& [at, bit] : read_flips_) {
    if (nth == at && bit < 8ULL * page_size()) {
      buf[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      ++fault_stats_.bit_flips;
    }
  }
  ++stats_.reads;
  return Status::OK();
}

Status FaultPageDevice::Read(PageId id, std::byte* buf) {
  return ReadImpl(id, buf);
}

Status FaultPageDevice::ReadBatch(std::span<const PageId> ids,
                                  std::byte* bufs) {
  // Per-page so ordinal faults land on individual pages of the batch; the
  // cost model already counts a batch as ids.size() reads.
  for (size_t i = 0; i < ids.size(); ++i) {
    PC_RETURN_IF_ERROR(ReadImpl(ids[i], bufs + i * page_size()));
  }
  if (!ids.empty()) ++stats_.batch_reads;
  return Status::OK();
}

Status FaultPageDevice::Write(PageId id, const std::byte* buf) {
  const uint64_t nth = writes_seen_++;
  for (const OrdinalFault& f : write_fails_) {
    if (nth == f.at || (f.persistent && nth > f.at)) {
      ++fault_stats_.write_errors;
      return Status::IoError("injected fault: " + Ordinal("write", nth) +
                             (f.persistent ? " (persistent)" : " (transient)"));
    }
  }
  if (crashed_ || (crash_at_ && nth >= *crash_at_)) {
    TriggerCrash();
    ++fault_stats_.dropped_writes;
    ++stats_.writes;  // the caller believes this write happened
    return Status::OK();
  }
  for (const auto& [at, keep] : tears_) {
    if (nth == at) {
      const uint32_t psz = page_size();
      std::vector<std::byte> torn(psz);
      // Tear against the currently visible content (shadow included).
      if (auto it = shadow_.find(id); it != shadow_.end()) {
        std::memcpy(torn.data(), it->second.data(), psz);
      } else {
        PC_RETURN_IF_ERROR(inner_->Read(id, torn.data()));
      }
      std::memcpy(torn.data(), buf, std::min<uint64_t>(keep, psz));
      if (volatile_writes_) {
        shadow_[id] = std::move(torn);
      } else {
        PC_RETURN_IF_ERROR(inner_->Write(id, torn.data()));
      }
      ++fault_stats_.torn_writes;
      ++stats_.writes;
      return Status::OK();
    }
  }
  if (volatile_writes_) {
    auto& slot = shadow_[id];
    slot.assign(buf, buf + page_size());
  } else {
    PC_RETURN_IF_ERROR(inner_->Write(id, buf));
  }
  ++stats_.writes;
  return Status::OK();
}

Status FaultPageDevice::Sync() {
  const uint64_t nth = syncs_seen_++;
  if (crashed_ || (crash_at_sync_ && nth >= *crash_at_sync_)) {
    // The barrier "succeeds" but nothing becomes durable — and everything
    // volatile is lost.  This is the kill point between a WAL append and
    // its group-commit acknowledgement.
    TriggerCrash();
    ++fault_stats_.dropped_syncs;
    ++stats_.syncs;
    return Status::OK();
  }
  for (const auto& [id, bytes] : shadow_) {
    PC_RETURN_IF_ERROR(inner_->Write(id, bytes.data()));
  }
  shadow_.clear();
  PC_RETURN_IF_ERROR(inner_->Sync());
  ++stats_.syncs;
  return Status::OK();
}

}  // namespace pathcache
