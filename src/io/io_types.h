// Core identifiers and counters for the simulated block device.

#ifndef PATHCACHE_IO_IO_TYPES_H_
#define PATHCACHE_IO_IO_TYPES_H_

#include <cstdint>

namespace pathcache {

/// Identifier of a disk page (block).  Dense, allocated by the device.
using PageId = uint64_t;

inline constexpr PageId kInvalidPageId = ~0ULL;

/// Default simulated page size in bytes.  With 24-byte point records this
/// gives B ~= 170 records per page; benchmarks sweep this.
inline constexpr uint32_t kDefaultPageSize = 4096;

/// I/O counters.  `reads`/`writes` are the quantities every theorem in the
/// paper bounds; everything is measured in whole pages.  `batch_reads`
/// counts ReadBatch invocations (each moving >= 1 page): batching never
/// changes `reads` — the paper's cost model — only how pages reach the
/// device, so `reads / batch_reads` measures coalescing, not cost.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t batch_reads = 0;
  /// Durability barriers (PageDevice::Sync) issued.  Like batch_reads this
  /// is a transport/durability count, not a paper cost-model quantity.
  uint64_t syncs = 0;

  uint64_t total() const { return reads + writes; }

  IoStats operator-(const IoStats& o) const {
    return IoStats{reads - o.reads,   writes - o.writes,
                   allocs - o.allocs, frees - o.frees,
                   batch_reads - o.batch_reads, syncs - o.syncs};
  }
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_IO_TYPES_H_
