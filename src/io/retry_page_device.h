// RetryPageDevice: bounded retries with exponential backoff on transient
// IOError.
//
// Real block devices fail transiently (EINTR-class hiccups, fabric resets);
// the structures above should not have to know.  This decorator re-issues
// any operation that fails with StatusCode::kIoError up to max_attempts
// total tries, sleeping base_backoff_us * 2^k between tries (capped at
// max_backoff_us; 0 disables sleeping so tests run at full speed).
//
// Only IOError is retried: Corruption, InvalidArgument etc. are
// deterministic verdicts about the bytes or the call, and retrying them
// would just repeat the answer — notably, a checksum failure from a
// ChecksumPageDevice below is *not* retried (the stored page is bad; the
// read did not fail).  Counters expose how often retries happened and
// whether they recovered, so tests can assert the backoff path actually
// ran.
//
// Thread-safety: like the other decorators, operations (Read/Write/...)
// and stats()/ResetStats() follow the single-caller contract — one thread
// (or externally serialized callers) drives the device; `stats_` is plain
// state.  The retry telemetry counters retries()/recovered()/exhausted()
// are the exception: they are relaxed atomics, safe to sample from any
// thread at any time, because the observability layer (obs/metrics.h
// RegisterRetryMetrics) exports them while operations are in flight.

#ifndef PATHCACHE_IO_RETRY_PAGE_DEVICE_H_
#define PATHCACHE_IO_RETRY_PAGE_DEVICE_H_

#include <atomic>
#include <cstdint>

#include "io/page_device.h"

namespace pathcache {

struct RetryOptions {
  /// Total tries per operation (1 = no retrying).
  uint32_t max_attempts = 4;
  /// Sleep before retry k (0-based) is base_backoff_us << k microseconds;
  /// 0 disables sleeping entirely.
  uint32_t base_backoff_us = 0;
  uint32_t max_backoff_us = 100'000;
};

class RetryPageDevice final : public PageDevice {
 public:
  /// Does not own `inner`.
  explicit RetryPageDevice(PageDevice* inner, RetryOptions opts = {})
      : inner_(inner), opts_(opts) {}

  /// Re-issued tries (beyond each operation's first).  Safe to call from
  /// any thread (relaxed atomic), including while operations run.
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  /// Operations that eventually succeeded after >= 1 retry.
  uint64_t recovered() const {
    return recovered_.load(std::memory_order_relaxed);
  }
  /// Operations that failed all max_attempts tries.
  uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  // --- PageDevice ---------------------------------------------------------

  uint32_t page_size() const override { return inner_->page_size(); }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;
  Status Write(PageId id, const std::byte* buf) override;
  Result<const std::byte*> Pin(PageId id) override;
  void Unpin(PageId id) override { inner_->Unpin(id); }
  /// Sync retries like reads/writes: a transient IoError barrier is retried,
  /// anything else surfaces unchanged.
  Status Sync() override;
  Status ListLivePages(std::vector<PageId>* out) override {
    return inner_->ListLivePages(out);
  }
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }
  uint64_t live_pages() const override { return inner_->live_pages(); }

 private:
  /// Runs `op` up to max_attempts times, backing off between IoError tries.
  template <typename Op>
  Status RetryLoop(const Op& op);

  void Backoff(uint32_t attempt) const;

  PageDevice* inner_;
  RetryOptions opts_;
  IoStats stats_;  // single-caller, like every decorator's IoStats
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> recovered_{0};
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_RETRY_PAGE_DEVICE_H_
