// CountingPageDevice: a thin forwarding decorator that keeps its own private
// IoStats while delegating every call to a (possibly shared, thread-safe)
// inner device.
//
// Purpose: per-thread sharding of I/O accounting.  A SharedBufferPool's
// counters aggregate across every concurrent reader, so "how many pages did
// THIS query read" is unanswerable from the pool once queries overlap.  The
// serving layer gives each worker thread its own CountingPageDevice over the
// shared pool; the wrapper is touched by exactly one thread, so its counters
// need no atomics and a per-query delta is just stats() before/after.  The
// counting semantics mirror the pool's: Pin() counts as a read, ReadBatch()
// counts ids.size() reads plus one batch_read.
//
// The wrapper is NOT thread-safe itself — one instance per thread is the
// whole point.

#ifndef PATHCACHE_IO_COUNTING_PAGE_DEVICE_H_
#define PATHCACHE_IO_COUNTING_PAGE_DEVICE_H_

#include <map>

#include "io/page_device.h"

namespace pathcache {

class CountingPageDevice final : public PageDevice {
 public:
  explicit CountingPageDevice(PageDevice* inner) : inner_(inner) {}

  uint32_t page_size() const override { return inner_->page_size(); }

  Result<PageId> Allocate() override {
    Result<PageId> r = inner_->Allocate();
    if (r.ok()) ++stats_.allocs;
    return r;
  }

  Status Free(PageId id) override {
    Status s = inner_->Free(id);
    if (s.ok()) ++stats_.frees;
    return s;
  }

  Status Read(PageId id, std::byte* buf) override {
    ++stats_.reads;
    return inner_->Read(id, buf);
  }

  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override {
    stats_.reads += ids.size();
    if (!ids.empty()) ++stats_.batch_reads;
    return inner_->ReadBatch(ids, bufs);
  }

  // The async pair forwards the inner ticket unchanged; the per-thread
  // counters move at AwaitBatch (when the read cost is actually paid), with
  // the same totals ReadBatch would record.
  Result<uint64_t> SubmitBatch(std::span<const PageId> ids,
                               std::byte* bufs) override {
    Result<uint64_t> t = inner_->SubmitBatch(ids, bufs);
    if (t.ok()) async_sizes_[t.value()] = ids.size();
    return t;
  }

  Status AwaitBatch(uint64_t ticket) override {
    Status s = inner_->AwaitBatch(ticket);
    auto it = async_sizes_.find(ticket);
    if (it != async_sizes_.end()) {
      // Unconditional, mirroring ReadBatch (which counts before delegating):
      // a failed batch still counts the pages it attempted.
      stats_.reads += it->second;
      if (it->second > 0) ++stats_.batch_reads;
      async_sizes_.erase(it);
    }
    return s;
  }

  Status Write(PageId id, const std::byte* buf) override {
    ++stats_.writes;
    return inner_->Write(id, buf);
  }

  Result<const std::byte*> Pin(PageId id) override {
    Result<const std::byte*> r = inner_->Pin(id);
    // A NotSupported verdict costs nothing; the caller falls back to Read(),
    // which counts there.  Mirrors the pool: a successful Pin is one read.
    if (r.ok()) ++stats_.reads;
    return r;
  }

  void Unpin(PageId id) override { inner_->Unpin(id); }

  Status Sync() override {
    Status s = inner_->Sync();
    if (s.ok()) ++stats_.syncs;
    return s;
  }

  Status ListLivePages(std::vector<PageId>* out) override {
    return inner_->ListLivePages(out);
  }

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }
  uint64_t live_pages() const override { return inner_->live_pages(); }

 private:
  PageDevice* inner_;
  IoStats stats_;
  std::map<uint64_t, size_t> async_sizes_;  // inner ticket -> batch size
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_COUNTING_PAGE_DEVICE_H_
