#include "io/layout.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_set>

#include "io/block_list.h"

namespace pathcache {

void LayoutPlan::AddChain(std::span<const PageId> pages) {
  if (pages.empty()) return;
  ChainSpan span;
  span.first = static_cast<uint32_t>(order.size());
  span.count = static_cast<uint32_t>(pages.size());
  chains.push_back(span);
  for (PageId id : pages) {
    order.push_back(id);
    AddRef(id, offsetof(BlockPageHeader, next));
  }
}

Result<PageRemap> ComputeRemap(const LayoutPlan& plan) {
  PageRemap remap;
  if (plan.order.empty()) return remap;

  std::vector<PageId> sorted = plan.order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i] == sorted[i + 1]) {
      return Status::InvalidArgument("layout plan lists page " +
                                     std::to_string(sorted[i]) + " twice");
    }
  }
  if (sorted.back() == kInvalidPageId) {
    return Status::InvalidArgument("layout plan lists an invalid page id");
  }

  remap.map_.reserve(plan.order.size());
  for (size_t i = 0; i < plan.order.size(); ++i) {
    remap.map_.emplace(plan.order[i], sorted[i]);
  }

  for (const auto& [page, slots] : plan.ref_slots) {
    (void)slots;
    if (remap.map_.find(page) == remap.map_.end()) {
      return Status::InvalidArgument(
          "layout plan holds reference slots on page " + std::to_string(page) +
          " which is not in the plan's order");
    }
  }
  return remap;
}

namespace {

// Everything ApplyLayout must change inside one page as it moves.
struct PagePatch {
  const std::vector<uint32_t>* slots = nullptr;  // PageId slots to remap
  bool in_chain = false;
  uint32_t new_contig = 0;  // chain members: contig under the new geometry
};

Status RewritePage(std::byte* buf, uint32_t page_size, const PagePatch& patch,
                   const PageRemap& remap) {
  if (patch.slots != nullptr) {
    for (uint32_t off : *patch.slots) {
      if (off + sizeof(PageId) > page_size) {
        return Status::InvalidArgument("reference slot at offset " +
                                       std::to_string(off) +
                                       " exceeds the page");
      }
      PageId ref;
      std::memcpy(&ref, buf + off, sizeof(ref));
      const PageId mapped = remap.Of(ref);
      if (mapped != ref) std::memcpy(buf + off, &mapped, sizeof(mapped));
    }
  }
  if (patch.in_chain) {
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf, sizeof(hdr));
    hdr.contig = patch.new_contig;
    std::memcpy(buf, &hdr, sizeof(hdr));
  }
  return Status::OK();
}

}  // namespace

Status ApplyLayout(PageDevice* dev, const LayoutPlan& plan,
                   const PageRemap& remap) {
  const uint32_t psz = dev->page_size();

  // Per-page patch table, keyed by OLD page id.
  std::unordered_map<PageId, PagePatch> patches;
  patches.reserve(plan.ref_slots.size());
  for (const auto& [page, slots] : plan.ref_slots) {
    patches[page].slots = &slots;
  }
  for (const LayoutPlan::ChainSpan& span : plan.chains) {
    if (static_cast<uint64_t>(span.first) + span.count > plan.order.size()) {
      return Status::InvalidArgument("chain span exceeds the plan's order");
    }
    // contig[k] = length of the run of id-adjacent successors of chain
    // position k under the NEW ids — same recurrence BuildBlockList uses.
    uint32_t contig = 0;
    PageId succ_new = kInvalidPageId;
    for (uint32_t k = span.count; k-- > 0;) {
      const PageId old_id = plan.order[span.first + k];
      const PageId new_id = remap.Of(old_id);
      contig = (succ_new != kInvalidPageId && succ_new == new_id + 1)
                   ? contig + 1
                   : 0;
      PagePatch& p = patches[old_id];
      p.in_chain = true;
      p.new_contig = contig;
      succ_new = new_id;
    }
  }

  // Relocate along permutation cycles: two page buffers, every page read
  // once and written once (plus one extra read closing each cycle).
  std::vector<std::byte> carry(psz), scratch(psz);
  std::unordered_set<PageId> moved;
  moved.reserve(plan.order.size());
  static const PagePatch kNoPatch;
  const auto patch_of = [&patches](PageId id) -> const PagePatch& {
    auto it = patches.find(id);
    return it == patches.end() ? kNoPatch : it->second;
  };

  for (const PageId start : plan.order) {
    if (moved.count(start) > 0) continue;
    if (remap.Of(start) == start) {
      // Fixed point: contents stay put, references inside may still move.
      PC_RETURN_IF_ERROR(dev->Read(start, carry.data()));
      PC_RETURN_IF_ERROR(RewritePage(carry.data(), psz, patch_of(start),
                                     remap));
      PC_RETURN_IF_ERROR(dev->Write(start, carry.data()));
      moved.insert(start);
      continue;
    }
    PageId cur = start;
    PC_RETURN_IF_ERROR(dev->Read(cur, carry.data()));
    do {
      const PageId dst = remap.Of(cur);
      if (dst != start) {
        PC_RETURN_IF_ERROR(dev->Read(dst, scratch.data()));
      }
      PC_RETURN_IF_ERROR(RewritePage(carry.data(), psz, patch_of(cur),
                                     remap));
      PC_RETURN_IF_ERROR(dev->Write(dst, carry.data()));
      carry.swap(scratch);
      moved.insert(cur);
      cur = dst;
    } while (cur != start);
  }
  return Status::OK();
}

namespace {

// Emits the subtree rooted at `v`, truncated to `h` levels, in van Emde
// Boas order; nodes exactly `h` levels below `v` land in `frontier` as the
// roots of the next recursion.
void VebEmit(const std::vector<PageTreeNode>& nodes, uint32_t v, uint32_t h,
             std::vector<uint32_t>* out, std::vector<uint32_t>* frontier) {
  if (h == 1) {
    out->push_back(v);
    for (uint32_t c : nodes[v].children) frontier->push_back(c);
    return;
  }
  const uint32_t top_h = h / 2;
  std::vector<uint32_t> mid;
  VebEmit(nodes, v, top_h, out, &mid);
  for (uint32_t w : mid) {
    VebEmit(nodes, w, h - top_h, out, frontier);
  }
}

}  // namespace

std::vector<uint32_t> VanEmdeBoasOrder(const std::vector<PageTreeNode>& nodes,
                                       uint32_t root) {
  std::vector<uint32_t> out;
  if (root >= nodes.size()) return out;

  // Subtree height via iterative post-order (page trees are shallow, but
  // nothing here should assume that).
  std::vector<uint32_t> height(nodes.size(), 0);
  std::vector<std::pair<uint32_t, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [v, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      uint32_t h = 1;
      for (uint32_t c : nodes[v].children) {
        h = std::max(h, height[c] + 1);
      }
      height[v] = h;
    } else {
      stack.push_back({v, true});
      for (uint32_t c : nodes[v].children) stack.push_back({c, false});
    }
  }

  out.reserve(nodes.size());
  std::vector<uint32_t> frontier;
  VebEmit(nodes, root, height[root], &out, &frontier);
  // Every reachable node sits strictly above its subtree's height limit, so
  // the final frontier is empty.
  return out;
}

}  // namespace pathcache
