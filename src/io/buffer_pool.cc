#include "io/buffer_pool.h"

#include <cstring>

namespace pathcache {

BufferPool::BufferPool(PageDevice* inner, uint64_t capacity_pages)
    : inner_(inner), capacity_(capacity_pages) {}

void BufferPool::Clear() {
  frames_.clear();
  lru_.clear();
}

void BufferPool::Touch(Frame& f, PageId id) {
  lru_.erase(f.lru_it);
  lru_.push_front(id);
  f.lru_it = lru_.begin();
}

void BufferPool::EvictIfNeeded() {
  while (frames_.size() > capacity_ && !lru_.empty()) {
    PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
  }
}

void BufferPool::InsertFrame(PageId id, const std::byte* buf) {
  if (capacity_ == 0) return;
  auto data = std::make_unique<std::byte[]>(page_size());
  std::memcpy(data.get(), buf, page_size());
  lru_.push_front(id);
  frames_[id] = Frame{std::move(data), lru_.begin()};
  EvictIfNeeded();
}

Status BufferPool::Free(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    lru_.erase(it->second.lru_it);
    frames_.erase(it);
  }
  return inner_->Free(id);
}

Status BufferPool::Read(PageId id, std::byte* buf) {
  ++stats_.reads;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    Touch(it->second, id);
    std::memcpy(buf, it->second.data.get(), page_size());
    return Status::OK();
  }
  ++misses_;
  PC_RETURN_IF_ERROR(inner_->Read(id, buf));
  InsertFrame(id, buf);
  return Status::OK();
}

Status BufferPool::Write(PageId id, const std::byte* buf) {
  ++stats_.writes;
  PC_RETURN_IF_ERROR(inner_->Write(id, buf));
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Touch(it->second, id);
    std::memcpy(it->second.data.get(), buf, page_size());
  } else {
    InsertFrame(id, buf);
  }
  return Status::OK();
}

}  // namespace pathcache
