#include "io/buffer_pool.h"

#include <cstring>
#include <string>
#include <vector>

namespace pathcache {

BufferPool::BufferPool(PageDevice* inner, uint64_t capacity_pages)
    : inner_(inner), capacity_(capacity_pages) {}

void BufferPool::Clear() {
  // Pinned frames must survive: a caller is reading them in place.
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pins > 0) {
      ++it;
    } else {
      lru_.erase(it->second.lru_it);
      it = frames_.erase(it);
    }
  }
}

void BufferPool::Touch(Frame& f, PageId id) {
  lru_.erase(f.lru_it);
  lru_.push_front(id);
  f.lru_it = lru_.begin();
}

void BufferPool::EvictIfNeeded() {
  // Scan from the cold end, skipping pinned frames.  If every frame is
  // pinned the pool temporarily exceeds capacity rather than evicting a
  // frame someone holds a pointer into.
  auto victim = lru_.end();
  while (frames_.size() - pinned_pages_ > 0 && frames_.size() > capacity_) {
    if (victim == lru_.begin()) break;
    --victim;
    auto it = frames_.find(*victim);
    if (it->second.pins > 0) continue;
    victim = lru_.erase(victim);
    frames_.erase(it);
    ++evictions_;
  }
}

void BufferPool::InsertFrame(PageId id, const std::byte* buf) {
  if (capacity_ == 0) return;
  auto data = AllocPageFrame(page_size());
  std::memcpy(data.get(), buf, page_size());
  lru_.push_front(id);
  frames_[id] = Frame{std::move(data), lru_.begin()};
  EvictIfNeeded();
}

Status BufferPool::Free(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (it->second.pins > 0) {
      return Status::FailedPrecondition("Free of pinned page " +
                                        std::to_string(id));
    }
    lru_.erase(it->second.lru_it);
    frames_.erase(it);
  }
  return inner_->Free(id);
}

Result<const std::byte*> BufferPool::Pin(PageId id) {
  if (capacity_ == 0) {
    return Status::NotSupported("pass-through pool has no frames to pin");
  }
  ++stats_.reads;
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    ++misses_;
    // The frame is born pinned so the eviction scan below cannot pick it.
    auto data = AllocPageFrame(page_size());
    PC_RETURN_IF_ERROR(inner_->Read(id, data.get()));
    lru_.push_front(id);
    it = frames_.emplace(id, Frame{std::move(data), lru_.begin(), 1}).first;
    ++pinned_pages_;
    EvictIfNeeded();
  } else {
    ++hits_;
    Touch(it->second, id);
    if (it->second.pins++ == 0) ++pinned_pages_;
  }
  // Frame.data lives in its own heap block: map rehashes move the
  // unique_ptr header, never the bytes, so the pointer is stable.
  return static_cast<const std::byte*>(it->second.data.get());
}

void BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end() || it->second.pins == 0) return;  // caller bug
  if (--it->second.pins == 0) {
    --pinned_pages_;
    EvictIfNeeded();  // the pool may have been held over capacity by pins
  }
}

Status BufferPool::Read(PageId id, std::byte* buf) {
  ++stats_.reads;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    Touch(it->second, id);
    std::memcpy(buf, it->second.data.get(), page_size());
    return Status::OK();
  }
  ++misses_;
  PC_RETURN_IF_ERROR(inner_->Read(id, buf));
  InsertFrame(id, buf);
  return Status::OK();
}

Status BufferPool::ReadBatch(std::span<const PageId> ids, std::byte* bufs) {
  // Counting must be indistinguishable from ids.size() sequential Read()
  // calls: hits stay hits, and only genuine misses reach the inner device —
  // in one batch, so a FilePageDevice underneath still coalesces them.
  // With duplicate ids the hit/miss sequence depends on insertion order, so
  // fall back to the literal loop; batch callers pass distinct pages.
  for (size_t i = 1; i < ids.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (ids[i] == ids[j]) {
        return PageDevice::ReadBatch(ids, bufs);
      }
    }
  }

  stats_.reads += ids.size();
  std::vector<size_t> miss_slots;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto it = frames_.find(ids[i]);
    if (it != frames_.end()) {
      ++hits_;
      Touch(it->second, ids[i]);
      std::memcpy(bufs + i * page_size(), it->second.data.get(), page_size());
    } else {
      ++misses_;
      miss_slots.push_back(i);
    }
  }
  if (miss_slots.empty()) return Status::OK();

  std::vector<PageId> miss_ids(miss_slots.size());
  for (size_t k = 0; k < miss_slots.size(); ++k) {
    miss_ids[k] = ids[miss_slots[k]];
  }
  std::vector<std::byte> fetched(miss_ids.size() * page_size());
  PC_RETURN_IF_ERROR(inner_->ReadBatch(miss_ids, fetched.data()));
  for (size_t k = 0; k < miss_slots.size(); ++k) {
    const std::byte* page = fetched.data() + k * page_size();
    std::memcpy(bufs + miss_slots[k] * page_size(), page, page_size());
    InsertFrame(miss_ids[k], page);
  }
  return Status::OK();
}

Status BufferPool::Write(PageId id, const std::byte* buf) {
  ++stats_.writes;
  PC_RETURN_IF_ERROR(inner_->Write(id, buf));
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Touch(it->second, id);
    std::memcpy(it->second.data.get(), buf, page_size());
  } else {
    InsertFrame(id, buf);
  }
  return Status::OK();
}

}  // namespace pathcache
