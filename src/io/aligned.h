// Aligned page-frame allocation.  Every in-memory page frame — MemPageDevice
// backing frames, buffer-pool slots, shared-pool slots — is allocated on a
// 64-byte (cache line) boundary so the SIMD kernels' vector loads never
// straddle a line and the frame start never shares a line with allocator
// metadata.  Alignment is a performance contract only: the kernels use
// alignment-free loads and are correct on any pointer (record payloads
// inside a block page start at byte 16 — sizeof(BlockPageHeader) — so they
// are 16-byte aligned, not 64; changing that would change the on-disk
// format).  tests/kernels_test.cpp pins the frame guarantee.

#ifndef PATHCACHE_IO_ALIGNED_H_
#define PATHCACHE_IO_ALIGNED_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>

namespace pathcache {

inline constexpr std::size_t kPageFrameAlign = 64;

namespace internal {
struct PageFrameDeleter {
  void operator()(std::byte* p) const noexcept {
    ::operator delete[](p, std::align_val_t{kPageFrameAlign});
  }
};
}  // namespace internal

/// Owning pointer to a 64-byte-aligned, zero-initialized page frame.
using PageFrame = std::unique_ptr<std::byte[], internal::PageFrameDeleter>;

/// Allocates a frame of `n` bytes aligned to kPageFrameAlign, zero-filled
/// (MemPageDevice hands freshly allocated pages to callers as all-zero).
inline PageFrame AllocPageFrame(std::size_t n) {
  auto* p = static_cast<std::byte*>(
      ::operator new[](n, std::align_val_t{kPageFrameAlign}));
  std::memset(p, 0, n);
  return PageFrame(p);
}

}  // namespace pathcache

#endif  // PATHCACHE_IO_ALIGNED_H_
