#include "io/checksum_page_device.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>

#include "io/crc32c.h"

namespace pathcache {
namespace {

struct Trailer {
  uint32_t magic;
  uint32_t crc;
};
static_assert(sizeof(Trailer) == kPageTrailerBytes);

uint32_t PageCrc(const std::byte* payload, uint32_t payload_size, PageId id) {
  uint32_t st = Crc32cInit();
  st = Crc32cUpdate(st, payload, payload_size);
  st = Crc32cUpdate(st, &id, sizeof(id));
  return Crc32cFinish(st);
}

bool AllZero(const std::byte* p, size_t n) {
  return std::all_of(p, p + n, [](std::byte b) { return b == std::byte{0}; });
}

std::string Hex32(uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

}  // namespace

ChecksumPageDevice::ChecksumPageDevice(PageDevice* inner)
    : inner_(inner), payload_size_(inner->page_size() - kPageTrailerBytes) {
  assert(inner->page_size() > kPageTrailerBytes);
  scratch_.resize(inner->page_size());
}

Status ChecksumPageDevice::Verify(PageId id, const std::byte* phys) {
  Trailer t;
  std::memcpy(&t, phys + payload_size_, sizeof(t));
  if (t.magic != kPageTrailerMagic) {
    if (AllZero(phys, payload_size_ + kPageTrailerBytes)) {
      // Never written since Allocate(); a zero payload is the valid content.
      pages_verified_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption(
        "page " + std::to_string(id) + ": bad checksum trailer magic at byte " +
        std::to_string(payload_size_) + " (page unstamped or trailer damaged)");
  }
  const uint32_t want = PageCrc(phys, payload_size_, id);
  if (t.crc != want) {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption(
        "page " + std::to_string(id) + ": checksum mismatch at byte " +
        std::to_string(payload_size_ + offsetof(Trailer, crc)) + " (stored " +
        Hex32(t.crc) + ", computed " + Hex32(want) + ")");
  }
  pages_verified_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ChecksumPageDevice::Scrub(PageId id) {
  PC_RETURN_IF_ERROR(inner_->Read(id, scratch_.data()));
  ++stats_.reads;
  return Verify(id, scratch_.data());
}

Result<PageId> ChecksumPageDevice::Allocate() {
  PC_ASSIGN_OR_RETURN(PageId id, inner_->Allocate());
  ++stats_.allocs;
  return id;
}

Status ChecksumPageDevice::Free(PageId id) {
  PC_RETURN_IF_ERROR(inner_->Free(id));
  ++stats_.frees;
  return Status::OK();
}

Status ChecksumPageDevice::Read(PageId id, std::byte* buf) {
  PC_RETURN_IF_ERROR(inner_->Read(id, scratch_.data()));
  ++stats_.reads;
  PC_RETURN_IF_ERROR(Verify(id, scratch_.data()));
  std::memcpy(buf, scratch_.data(), payload_size_);
  return Status::OK();
}

Status ChecksumPageDevice::ReadBatch(std::span<const PageId> ids,
                                     std::byte* bufs) {
  if (ids.empty()) return Status::OK();
  const uint32_t phys = inner_->page_size();
  std::vector<std::byte> batch(ids.size() * size_t{phys});
  PC_RETURN_IF_ERROR(inner_->ReadBatch(ids, batch.data()));
  stats_.reads += ids.size();
  ++stats_.batch_reads;
  for (size_t i = 0; i < ids.size(); ++i) {
    const std::byte* p = batch.data() + i * phys;
    PC_RETURN_IF_ERROR(Verify(ids[i], p));
    std::memcpy(bufs + i * payload_size_, p, payload_size_);
  }
  return Status::OK();
}

Result<uint64_t> ChecksumPageDevice::SubmitBatch(std::span<const PageId> ids,
                                                 std::byte* bufs) {
  if (async_batches_.size() >= kMaxInflightBatches) {
    return Status::InvalidArgument("too many in-flight batches");
  }
  AsyncBatch b;
  b.ids.assign(ids.begin(), ids.end());
  b.staging.resize(ids.size() * size_t{inner_->page_size()});
  b.bufs = bufs;
  // Propagates the inner NotSupported verbatim: a checksum layer over a
  // sync-only device is itself sync-only.
  PC_ASSIGN_OR_RETURN(b.inner_ticket,
                      inner_->SubmitBatch(b.ids, b.staging.data()));
  const uint64_t ticket = next_async_ticket_++;
  async_batches_.emplace(ticket, std::move(b));
  return ticket;
}

Status ChecksumPageDevice::AwaitBatch(uint64_t ticket) {
  auto it = async_batches_.find(ticket);
  if (it == async_batches_.end()) {
    return Status::InvalidArgument("unknown async batch ticket");
  }
  AsyncBatch b = std::move(it->second);
  async_batches_.erase(it);
  PC_RETURN_IF_ERROR(inner_->AwaitBatch(b.inner_ticket));
  if (b.ids.empty()) return Status::OK();
  stats_.reads += b.ids.size();
  ++stats_.batch_reads;
  const uint32_t phys = inner_->page_size();
  for (size_t i = 0; i < b.ids.size(); ++i) {
    const std::byte* p = b.staging.data() + i * phys;
    PC_RETURN_IF_ERROR(Verify(b.ids[i], p));
    std::memcpy(b.bufs + i * payload_size_, p, payload_size_);
  }
  return Status::OK();
}

Status ChecksumPageDevice::Write(PageId id, const std::byte* buf) {
  std::memcpy(scratch_.data(), buf, payload_size_);
  Trailer t{kPageTrailerMagic, PageCrc(buf, payload_size_, id)};
  std::memcpy(scratch_.data() + payload_size_, &t, sizeof(t));
  PC_RETURN_IF_ERROR(inner_->Write(id, scratch_.data()));
  ++stats_.writes;
  return Status::OK();
}

Result<const std::byte*> ChecksumPageDevice::Pin(PageId id) {
  PC_ASSIGN_OR_RETURN(const std::byte* frame, inner_->Pin(id));
  ++stats_.reads;
  Status s = Verify(id, frame);
  if (!s.ok()) {
    inner_->Unpin(id);
    return s;
  }
  return frame;  // payload is the page_size() prefix of the physical frame
}

}  // namespace pathcache
