// Build-time disk-layout clustering: relocate a finished structure's pages
// so that what a query reads together sits together on disk.
//
// The paper's bounds count page transfers, so WHERE pages land in the file
// is invisible to the cost model — but it decides how well the preadv
// coalescing in FilePageDevice::ReadBatch works.  Structures are built
// bottom-up (points first, caches next, skeletal pages last), so allocation
// order scatters each node's working set across the file.  This pass fixes
// that after the fact:
//
//   1. The structure describes its page-reference graph as a LayoutPlan:
//      every page it owns in the order it wants them on disk, which spans of
//      that order are BlockList chains (whose `contig` run-length headers
//      must match the new geometry), and where inside each page PageIds are
//      stored (so they can be rewritten).
//   2. ComputeRemap turns the plan into a permutation of the structure's own
//      id set: the i-th page of the desired order moves to the i-th smallest
//      owned id.  Permuting within the owned set means other structures
//      sharing the device are untouched, and a freshly built structure
//      (dense id range) comes out perfectly contiguous.
//   3. ApplyLayout walks the permutation cycles with two page buffers,
//      rewriting every registered reference slot and chain header as pages
//      move.  Counted logical I/O of later queries is bit-identical before
//      and after — only physical adjacency changes.
//
// VanEmdeBoasOrder is the ordering helper for the skeletal pages: recursive
// top-half-then-subtrees layout, so any root-to-leaf page path touches
// O(log_B n / log_B M) cache-line/disk neighborhoods regardless of which
// level granularity the transfer unit sits at (Demaine–Iacono–Langerman).

#ifndef PATHCACHE_IO_LAYOUT_H_
#define PATHCACHE_IO_LAYOUT_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "io/page_device.h"
#include "util/status.h"

namespace pathcache {

/// A structure's page-reference graph, in the page order it wants on disk.
struct LayoutPlan {
  /// Every page the structure owns, exactly once, in desired disk order.
  std::vector<PageId> order;

  /// Spans of `order` that are BlockList chains in chain order; ApplyLayout
  /// recomputes their BlockPageHeader::contig fields for the new geometry.
  struct ChainSpan {
    uint32_t first = 0;  // index into `order`
    uint32_t count = 0;
  };
  std::vector<ChainSpan> chains;

  /// Byte offsets, per page, of the PageId slots stored inside that page.
  /// Every slot is remapped in place as the page is relocated; slots holding
  /// kInvalidPageId pass through unchanged.
  std::unordered_map<PageId, std::vector<uint32_t>> ref_slots;

  /// Appends one page to the order.
  void Add(PageId id) { order.push_back(id); }

  /// Appends a whole BlockList chain (in chain order) and registers both the
  /// span and each page's `next` pointer slot.
  void AddChain(std::span<const PageId> pages);

  /// Registers a PageId slot at `byte_offset` inside `page`.
  void AddRef(PageId page, uint32_t byte_offset) {
    ref_slots[page].push_back(byte_offset);
  }

  uint64_t page_count() const { return order.size(); }
};

/// The permutation produced by ComputeRemap: old page id -> new page id.
class PageRemap {
 public:
  /// Identity for kInvalidPageId and for pages outside the plan.
  PageId Of(PageId id) const {
    if (id == kInvalidPageId) return id;
    auto it = map_.find(id);
    return it == map_.end() ? id : it->second;
  }

  bool empty() const { return map_.empty(); }
  uint64_t size() const { return map_.size(); }

 private:
  friend Result<PageRemap> ComputeRemap(const LayoutPlan& plan);
  std::unordered_map<PageId, PageId> map_;
};

/// Builds the permutation sending plan.order[i] to the i-th smallest owned
/// id.  Fails with InvalidArgument if the plan lists a page twice or hangs a
/// reference slot on a page outside the plan (such a slot would silently
/// never be rewritten).
Result<PageRemap> ComputeRemap(const LayoutPlan& plan);

/// Physically relocates the pages and rewrites their internal references
/// and chain headers.  O(1) extra memory in pages (two page buffers); every
/// page in the plan is read and rewritten once (cycle walking), which is
/// build-time I/O on the structure's own device — reset stats afterwards if
/// a measurement follows.
Status ApplyLayout(PageDevice* dev, const LayoutPlan& plan,
                   const PageRemap& remap);

/// A node of a page-level tree (e.g. the skeletal pages, where an edge means
/// "a node stored in page u has a child stored in page v").
struct PageTreeNode {
  PageId id = kInvalidPageId;
  std::vector<uint32_t> children;  // indices into the owning vector
};

/// Returns the indices of `nodes` reachable from `root` in van Emde Boas
/// order: the top half of the tree's height first, then each bottom subtree
/// recursively.  Works on unbalanced trees and arbitrary fan-out.
std::vector<uint32_t> VanEmdeBoasOrder(const std::vector<PageTreeNode>& nodes,
                                       uint32_t root);

}  // namespace pathcache

#endif  // PATHCACHE_IO_LAYOUT_H_
