// BufferPool: an LRU page cache that is itself a PageDevice decorating an
// inner device.  Reads served from the pool cost nothing on the inner
// device's counters, so `inner->stats()` measures cache-miss I/Os — the
// quantity the paper's model charges for — while `pool.stats()` measures
// logical accesses.  Writes are write-through.

#ifndef PATHCACHE_IO_BUFFER_POOL_H_
#define PATHCACHE_IO_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>

#include "io/aligned.h"
#include "io/page_device.h"

namespace pathcache {

class BufferPool final : public PageDevice {
 public:
  /// `capacity_pages == 0` makes the pool a pure pass-through.
  BufferPool(PageDevice* inner, uint64_t capacity_pages);

  uint32_t page_size() const override { return inner_->page_size(); }
  Result<PageId> Allocate() override { return inner_->Allocate(); }
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;
  Status Write(PageId id, const std::byte* buf) override;

  /// Pins the page's frame (faulting it in on a miss) and returns its stable
  /// data pointer.  Counted exactly like Read() (one logical read, one
  /// hit-or-miss tick).  Pinned frames are exempt from eviction and from
  /// Clear(); the caller must not Write() or Free() the page while pinned.
  /// A zero-capacity (pass-through) pool has no frames to pin and returns
  /// NotSupported.
  Result<const std::byte*> Pin(PageId id) override;
  void Unpin(PageId id) override;

  /// The pool is write-through, so a barrier is just the inner device's.
  Status Sync() override {
    Status s = inner_->Sync();
    if (s.ok()) ++stats_.syncs;
    return s;
  }

  Status ListLivePages(std::vector<PageId>* out) override {
    return inner_->ListLivePages(out);
  }

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_ = IoStats{};
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }
  uint64_t live_pages() const override { return inner_->live_pages(); }

  /// Drops every cached frame but — by contract — leaves `stats()`, `hits()`
  /// and `misses()` untouched: Clear() models invalidating the cache
  /// contents mid-measurement, not starting a new measurement.  A cold-cache
  /// experiment that clears between phases without also resetting counters
  /// would blend warm-phase hits into its numbers; use ClearAndResetStats()
  /// for that (the benches do).
  void Clear();

  /// Clear() plus ResetStats(): an empty pool with zeroed counters, the
  /// canonical starting state for a cold-cache measurement.
  void ClearAndResetStats() {
    Clear();
    ResetStats();
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Frames dropped by the capacity eviction scan; Clear()/Free() drops are
  /// not evictions.
  uint64_t evictions() const { return evictions_; }
  uint64_t cached_pages() const { return frames_.size(); }
  uint64_t pinned_pages() const { return pinned_pages_; }

 private:
  struct Frame {
    PageFrame data;
    std::list<PageId>::iterator lru_it;
    uint32_t pins = 0;
  };

  void Touch(Frame& f, PageId id);
  void InsertFrame(PageId id, const std::byte* buf);
  void EvictIfNeeded();

  PageDevice* inner_;
  uint64_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent
  IoStats stats_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t pinned_pages_ = 0;  // frames with pins > 0
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_BUFFER_POOL_H_
