// FaultPageDevice: a PageDevice decorator with a scriptable fault schedule.
//
// Robustness work needs deterministic disks that misbehave on cue.  This
// decorator sits anywhere in a device stack and injects, at exact operation
// ordinals:
//
//   * read/write failures   — transient (that one operation) or persistent
//     (that operation and every later one) IOError;
//   * bit flips             — corrupt one bit of the buffer returned by the
//     scheduled Read, modeling a media or bus error;
//   * torn writes           — persist only the first K bytes of the
//     scheduled Write (the page keeps its old tail), reporting success;
//   * crash point           — from the Nth write onward, silently drop
//     every Write while still reporting success, modeling power loss with
//     a volatile write-back cache.
//
// Ordinals are 0-based and counted per operation kind from construction (or
// the last ClearFaults()).  Everything injected is tallied in FaultStats so
// tests can assert the schedule actually fired.
//
// Pin() is NotSupported by design: a pinned frame would bypass the fault
// path, so callers are forced through Read() where faults apply (PagePin
// falls back automatically).  IoStats counts logical operations the caller
// believes happened — a dropped or torn write still counts as a write.

#ifndef PATHCACHE_IO_FAULT_PAGE_DEVICE_H_
#define PATHCACHE_IO_FAULT_PAGE_DEVICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "io/page_device.h"

namespace pathcache {

/// Tally of injected faults; every schedule entry that fires bumps exactly
/// one counter.
struct FaultStats {
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
  uint64_t dropped_writes = 0;
  uint64_t dropped_syncs = 0;  // post-crash durability barriers swallowed
  uint64_t dropped_frees = 0;  // post-crash deallocations swallowed

  uint64_t total() const {
    return read_errors + write_errors + bit_flips + torn_writes +
           dropped_writes + dropped_syncs + dropped_frees;
  }
};

class FaultPageDevice final : public PageDevice {
 public:
  /// Does not own `inner`.  With no schedule armed the decorator is a
  /// transparent pass-through (plus its own operation counters).
  explicit FaultPageDevice(PageDevice* inner) : inner_(inner) {}

  // --- Fault schedule -----------------------------------------------------

  /// Fails the read with ordinal `nth` (and, when `persistent`, every read
  /// after it) with IOError.
  void FailReadAt(uint64_t nth, bool persistent = false);

  /// Fails the write with ordinal `nth` (and, when `persistent`, every
  /// write after it) with IOError.  A failed write does not reach `inner`.
  void FailWriteAt(uint64_t nth, bool persistent = false);

  /// Flips bit `bit` (0 <= bit < 8 * page_size()) of the buffer returned by
  /// the read with ordinal `nth`.  The stored page is untouched.  May be
  /// called repeatedly to schedule several flips.
  void FlipBitOnReadAt(uint64_t nth, uint64_t bit);

  /// The write with ordinal `nth` persists only its first `keep_bytes`
  /// bytes; the rest of the page keeps its previous contents.  Reported as
  /// success to the caller.
  void TearWriteAt(uint64_t nth, uint32_t keep_bytes);

  /// From write ordinal `nth` onward every Write is silently dropped
  /// (reported as success, nothing persisted), modeling a crash: all state
  /// the caller believed durable after the trigger is gone on "reboot".
  void CrashAtWrite(uint64_t nth);

  /// Volatile write-back cache: with this on, Write() lands in a shadow
  /// cache (reads see it; `inner` does not) and only Sync() flushes the
  /// shadow down.  When a crash triggers — CrashAtWrite / CrashAtSync /
  /// CrashNow — the unflushed shadow is DISCARDED, so every write since the
  /// last Sync() is gone on "reboot", exactly the power-loss-with-a-
  /// write-back-cache model WAL group commits must survive.  Turning the
  /// cache off flushes it (unless already crashed).
  void SetVolatileWrites(bool on);

  /// The sync with ordinal `nth` (0-based, counted like reads/writes)
  /// triggers the crash INSTEAD of flushing: it reports success but drops
  /// the shadow cache, and every later write and sync is dropped too.
  void CrashAtSync(uint64_t nth);

  /// Triggers the crash immediately: the unflushed shadow (if any) is
  /// discarded and every later Write/Sync is silently dropped.
  void CrashNow();

  /// True once the crash point has triggered (some write was dropped).
  bool crashed() const;

  /// Flips one bit of the page as stored in `inner`, modeling at-rest media
  /// decay.  Takes effect immediately; not counted in IoStats (the physical
  /// Read+Write used to patch the page bypass this decorator's counters)
  /// but tallied as a bit flip in fault_stats().
  Status CorruptStoredBit(PageId id, uint64_t bit);

  /// Clears the entire schedule and fault tally; operation ordinals restart
  /// at zero.  IoStats is left alone (see ResetStats()).
  void ClearFaults();

  const FaultStats& fault_stats() const { return fault_stats_; }
  uint64_t reads_seen() const { return reads_seen_; }
  uint64_t writes_seen() const { return writes_seen_; }
  uint64_t syncs_seen() const { return syncs_seen_; }

  // --- PageDevice ---------------------------------------------------------

  uint32_t page_size() const override { return inner_->page_size(); }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;
  Status Write(PageId id, const std::byte* buf) override;
  Status Sync() override;
  Status ListLivePages(std::vector<PageId>* out) override {
    return inner_->ListLivePages(out);
  }
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }
  uint64_t live_pages() const override { return inner_->live_pages(); }

 private:
  struct OrdinalFault {
    uint64_t at = 0;
    bool persistent = false;
  };

  Status ReadImpl(PageId id, std::byte* buf);
  /// Marks the crash as triggered and discards the unflushed shadow cache.
  void TriggerCrash();

  PageDevice* inner_;
  IoStats stats_;
  FaultStats fault_stats_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t syncs_seen_ = 0;

  std::vector<OrdinalFault> read_fails_;
  std::vector<OrdinalFault> write_fails_;
  std::vector<std::pair<uint64_t, uint64_t>> read_flips_;  // (ordinal, bit)
  std::vector<std::pair<uint64_t, uint32_t>> tears_;  // (ordinal, keep_bytes)
  std::optional<uint64_t> crash_at_;
  std::optional<uint64_t> crash_at_sync_;
  bool crashed_ = false;

  // Volatile write-back mode: pages written since the last Sync().
  bool volatile_writes_ = false;
  std::map<PageId, std::vector<std::byte>> shadow_;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_FAULT_PAGE_DEVICE_H_
