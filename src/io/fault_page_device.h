// FaultPageDevice: a PageDevice decorator with a scriptable fault schedule.
//
// Robustness work needs deterministic disks that misbehave on cue.  This
// decorator sits anywhere in a device stack and injects, at exact operation
// ordinals:
//
//   * read/write failures   — transient (that one operation) or persistent
//     (that operation and every later one) IOError;
//   * bit flips             — corrupt one bit of the buffer returned by the
//     scheduled Read, modeling a media or bus error;
//   * torn writes           — persist only the first K bytes of the
//     scheduled Write (the page keeps its old tail), reporting success;
//   * crash point           — from the Nth write onward, silently drop
//     every Write while still reporting success, modeling power loss with
//     a volatile write-back cache.
//
// Ordinals are 0-based and counted per operation kind from construction (or
// the last ClearFaults()).  Everything injected is tallied in FaultStats so
// tests can assert the schedule actually fired.
//
// Pin() is NotSupported by design: a pinned frame would bypass the fault
// path, so callers are forced through Read() where faults apply (PagePin
// falls back automatically).  IoStats counts logical operations the caller
// believes happened — a dropped or torn write still counts as a write.

#ifndef PATHCACHE_IO_FAULT_PAGE_DEVICE_H_
#define PATHCACHE_IO_FAULT_PAGE_DEVICE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "io/page_device.h"

namespace pathcache {

/// Tally of injected faults; every schedule entry that fires bumps exactly
/// one counter.
struct FaultStats {
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
  uint64_t dropped_writes = 0;

  uint64_t total() const {
    return read_errors + write_errors + bit_flips + torn_writes +
           dropped_writes;
  }
};

class FaultPageDevice final : public PageDevice {
 public:
  /// Does not own `inner`.  With no schedule armed the decorator is a
  /// transparent pass-through (plus its own operation counters).
  explicit FaultPageDevice(PageDevice* inner) : inner_(inner) {}

  // --- Fault schedule -----------------------------------------------------

  /// Fails the read with ordinal `nth` (and, when `persistent`, every read
  /// after it) with IOError.
  void FailReadAt(uint64_t nth, bool persistent = false);

  /// Fails the write with ordinal `nth` (and, when `persistent`, every
  /// write after it) with IOError.  A failed write does not reach `inner`.
  void FailWriteAt(uint64_t nth, bool persistent = false);

  /// Flips bit `bit` (0 <= bit < 8 * page_size()) of the buffer returned by
  /// the read with ordinal `nth`.  The stored page is untouched.  May be
  /// called repeatedly to schedule several flips.
  void FlipBitOnReadAt(uint64_t nth, uint64_t bit);

  /// The write with ordinal `nth` persists only its first `keep_bytes`
  /// bytes; the rest of the page keeps its previous contents.  Reported as
  /// success to the caller.
  void TearWriteAt(uint64_t nth, uint32_t keep_bytes);

  /// From write ordinal `nth` onward every Write is silently dropped
  /// (reported as success, nothing persisted), modeling a crash: all state
  /// the caller believed durable after the trigger is gone on "reboot".
  void CrashAtWrite(uint64_t nth);

  /// True once the crash point has triggered (some write was dropped).
  bool crashed() const;

  /// Flips one bit of the page as stored in `inner`, modeling at-rest media
  /// decay.  Takes effect immediately; not counted in IoStats (the physical
  /// Read+Write used to patch the page bypass this decorator's counters)
  /// but tallied as a bit flip in fault_stats().
  Status CorruptStoredBit(PageId id, uint64_t bit);

  /// Clears the entire schedule and fault tally; operation ordinals restart
  /// at zero.  IoStats is left alone (see ResetStats()).
  void ClearFaults();

  const FaultStats& fault_stats() const { return fault_stats_; }
  uint64_t reads_seen() const { return reads_seen_; }
  uint64_t writes_seen() const { return writes_seen_; }

  // --- PageDevice ---------------------------------------------------------

  uint32_t page_size() const override { return inner_->page_size(); }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;
  Status Write(PageId id, const std::byte* buf) override;
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }
  uint64_t live_pages() const override { return inner_->live_pages(); }

 private:
  struct OrdinalFault {
    uint64_t at = 0;
    bool persistent = false;
  };

  Status ReadImpl(PageId id, std::byte* buf);

  PageDevice* inner_;
  IoStats stats_;
  FaultStats fault_stats_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;

  std::vector<OrdinalFault> read_fails_;
  std::vector<OrdinalFault> write_fails_;
  std::vector<std::pair<uint64_t, uint64_t>> read_flips_;  // (ordinal, bit)
  std::vector<std::pair<uint64_t, uint32_t>> tears_;  // (ordinal, keep_bytes)
  std::optional<uint64_t> crash_at_;
  bool crashed_ = false;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_FAULT_PAGE_DEVICE_H_
