#include "io/shared_buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace pathcache {

SharedBufferPool::SharedBufferPool(PageDevice* inner, uint64_t capacity_pages,
                                   uint32_t shards)
    : inner_(inner), page_size_(inner->page_size()) {
  uint32_t n = std::max<uint32_t>(1, shards);
  shards_.reserve(n);
  uint64_t base = capacity_pages / n;
  uint64_t extra = capacity_pages % n;
  for (uint32_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->capacity = base + (i < extra ? 1 : 0);
    // A nonzero total capacity must cache something in every shard, or
    // pages landing in a zero-capacity shard would never hit.
    if (capacity_pages > 0 && s->capacity == 0) s->capacity = 1;
    shards_.push_back(std::move(s));
  }
}

void SharedBufferPool::Touch(Shard& s, Frame& f, PageId id) {
  s.lru.erase(f.lru_it);
  s.lru.push_front(id);
  f.lru_it = s.lru.begin();
}

namespace {

// Evicts cold unpinned frames until the shard is back under capacity.
// Caller holds s.mu.  If every frame is pinned the shard temporarily runs
// over capacity rather than invalidating a pointer someone holds.
template <typename ShardT>
void EvictShardIfNeeded(ShardT& s) {
  auto victim = s.lru.end();
  while (s.frames.size() - s.pinned > 0 && s.frames.size() > s.capacity) {
    if (victim == s.lru.begin()) break;
    --victim;
    auto it = s.frames.find(*victim);
    if (it->second.pins > 0) continue;
    victim = s.lru.erase(victim);
    s.frames.erase(it);
    ++s.evictions;
  }
}

}  // namespace

void SharedBufferPool::InsertFrame(Shard& s, PageId id, const std::byte* buf) {
  if (s.capacity == 0) return;
  auto data = AllocPageFrame(page_size_);
  std::memcpy(data.get(), buf, page_size_);
  s.lru.push_front(id);
  s.frames[id] = Frame{std::move(data), s.lru.begin()};
  EvictShardIfNeeded(s);
}

Result<PageId> SharedBufferPool::Allocate() {
  std::lock_guard<std::mutex> lk(inner_mu_);
  return inner_->Allocate();
}

Status SharedBufferPool::Free(PageId id) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> slk(s.mu);
  auto it = s.frames.find(id);
  if (it != s.frames.end()) {
    if (it->second.pins > 0) {
      return Status::FailedPrecondition("Free of pinned page " +
                                        std::to_string(id));
    }
    s.lru.erase(it->second.lru_it);
    s.frames.erase(it);
  }
  std::lock_guard<std::mutex> ilk(inner_mu_);
  return inner_->Free(id);
}

Result<const std::byte*> SharedBufferPool::Pin(PageId id) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> slk(s.mu);
  if (s.capacity == 0) {
    return Status::NotSupported("pass-through pool has no frames to pin");
  }
  ++s.stats.reads;
  auto it = s.frames.find(id);
  if (it == s.frames.end()) {
    ++s.misses;
    // The frame is born pinned so the eviction scan cannot pick it.
    auto data = AllocPageFrame(page_size_);
    {
      std::lock_guard<std::mutex> ilk(inner_mu_);
      PC_RETURN_IF_ERROR(inner_->Read(id, data.get()));
    }
    s.lru.push_front(id);
    it = s.frames.emplace(id, Frame{std::move(data), s.lru.begin(), 1}).first;
    ++s.pinned;
    EvictShardIfNeeded(s);
  } else {
    ++s.hits;
    Touch(s, it->second, id);
    if (it->second.pins++ == 0) ++s.pinned;
  }
  return static_cast<const std::byte*>(it->second.data.get());
}

void SharedBufferPool::Unpin(PageId id) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> slk(s.mu);
  auto it = s.frames.find(id);
  if (it == s.frames.end() || it->second.pins == 0) return;  // caller bug
  if (--it->second.pins == 0) {
    --s.pinned;
    EvictShardIfNeeded(s);  // the shard may have been held over capacity
  }
}

Status SharedBufferPool::Read(PageId id, std::byte* buf) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> slk(s.mu);
  ++s.stats.reads;
  auto it = s.frames.find(id);
  if (it != s.frames.end()) {
    ++s.hits;
    Touch(s, it->second, id);
    std::memcpy(buf, it->second.data.get(), page_size_);
    return Status::OK();
  }
  ++s.misses;
  {
    std::lock_guard<std::mutex> ilk(inner_mu_);
    PC_RETURN_IF_ERROR(inner_->Read(id, buf));
  }
  InsertFrame(s, id, buf);
  return Status::OK();
}

Status SharedBufferPool::ReadBatch(std::span<const PageId> ids,
                                   std::byte* bufs) {
  // Per-page reads through the shards keep counting identical to sequential
  // Read() calls; misses are then fetched from the inner device in one
  // batch so a FilePageDevice underneath still coalesces them.  Duplicate
  // ids fall out naturally: the second lookup of a page just misses (or
  // hits) again, same as sequential reads would.
  std::vector<size_t> miss_slots;
  for (size_t i = 0; i < ids.size(); ++i) {
    PageId id = ids[i];
    Shard& s = ShardFor(id);
    std::lock_guard<std::mutex> slk(s.mu);
    ++s.stats.reads;
    auto it = s.frames.find(id);
    if (it != s.frames.end()) {
      ++s.hits;
      Touch(s, it->second, id);
      std::memcpy(bufs + i * page_size_, it->second.data.get(), page_size_);
    } else {
      ++s.misses;
      miss_slots.push_back(i);
    }
  }
  if (miss_slots.empty()) return Status::OK();

  // Duplicate missed ids would race InsertFrame against each other in the
  // batch path and double-read on the device; fetch them one by one.
  std::vector<PageId> miss_ids(miss_slots.size());
  for (size_t k = 0; k < miss_slots.size(); ++k) {
    miss_ids[k] = ids[miss_slots[k]];
  }
  std::vector<PageId> sorted = miss_ids;
  std::sort(sorted.begin(), sorted.end());
  bool distinct =
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();

  std::vector<std::byte> fetched(miss_ids.size() * page_size_);
  {
    std::lock_guard<std::mutex> ilk(inner_mu_);
    if (distinct) {
      PC_RETURN_IF_ERROR(inner_->ReadBatch(miss_ids, fetched.data()));
    } else {
      for (size_t k = 0; k < miss_ids.size(); ++k) {
        PC_RETURN_IF_ERROR(
            inner_->Read(miss_ids[k], fetched.data() + k * page_size_));
      }
    }
  }
  for (size_t k = 0; k < miss_slots.size(); ++k) {
    const std::byte* page = fetched.data() + k * page_size_;
    std::memcpy(bufs + miss_slots[k] * page_size_, page, page_size_);
    Shard& s = ShardFor(miss_ids[k]);
    std::lock_guard<std::mutex> slk(s.mu);
    // Another thread may have inserted the page while we were reading it;
    // keep the existing frame, the contents are identical (read-only use).
    if (s.frames.find(miss_ids[k]) == s.frames.end()) {
      InsertFrame(s, miss_ids[k], page);
    }
  }
  return Status::OK();
}

Result<uint64_t> SharedBufferPool::SubmitBatch(std::span<const PageId> ids,
                                               std::byte* bufs) {
  // Both refusals come BEFORE any shard counter moves, so the caller's
  // ReadBatch fallback counts the batch exactly once.
  {
    std::lock_guard<std::mutex> alk(async_mu_);
    if (inner_async_unsupported_) {
      return Status::NotSupported("inner device has no async read engine");
    }
    if (async_batches_.size() >= kMaxInflightBatches) {
      return Status::InvalidArgument("too many in-flight batches");
    }
  }
  {
    std::vector<PageId> sorted(ids.begin(), ids.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::NotSupported("async batches require distinct ids");
    }
  }

  // Same per-page probe as ReadBatch: hits are copied (and counted) now —
  // they need no I/O to overlap — misses queue for the inner device.
  AsyncBatch b;
  b.bufs = bufs;
  for (size_t i = 0; i < ids.size(); ++i) {
    PageId id = ids[i];
    Shard& s = ShardFor(id);
    std::lock_guard<std::mutex> slk(s.mu);
    ++s.stats.reads;
    auto it = s.frames.find(id);
    if (it != s.frames.end()) {
      ++s.hits;
      Touch(s, it->second, id);
      std::memcpy(bufs + i * page_size_, it->second.data.get(), page_size_);
    } else {
      ++s.misses;
      b.miss_slots.push_back(i);
    }
  }

  if (!b.miss_slots.empty()) {
    b.miss_ids.resize(b.miss_slots.size());
    for (size_t k = 0; k < b.miss_slots.size(); ++k) {
      b.miss_ids[k] = ids[b.miss_slots[k]];
    }
    b.fetched.resize(b.miss_ids.size() * page_size_);
    std::lock_guard<std::mutex> ilk(inner_mu_);
    Result<uint64_t> t = inner_->SubmitBatch(b.miss_ids, b.fetched.data());
    if (t.ok()) {
      b.inner_ticket = t.value();
      b.inner_async = true;
    } else if (t.status().code() == StatusCode::kNotSupported) {
      // Discovered mid-batch: the shard counters have already moved, so
      // finish THIS batch with a blocking read (counting is identical) and
      // memoize so future submits refuse before counting.
      {
        std::lock_guard<std::mutex> alk(async_mu_);
        inner_async_unsupported_ = true;
      }
      PC_RETURN_IF_ERROR(inner_->ReadBatch(b.miss_ids, b.fetched.data()));
    } else {
      return t.status();
    }
  }

  std::lock_guard<std::mutex> alk(async_mu_);
  const uint64_t ticket = next_async_ticket_++;
  async_batches_.emplace(ticket, std::move(b));
  return ticket;
}

Status SharedBufferPool::AwaitBatch(uint64_t ticket) {
  AsyncBatch b;
  {
    std::lock_guard<std::mutex> alk(async_mu_);
    auto it = async_batches_.find(ticket);
    if (it == async_batches_.end()) {
      return Status::InvalidArgument("unknown async batch ticket");
    }
    b = std::move(it->second);
    async_batches_.erase(it);
  }
  if (b.inner_async) {
    std::lock_guard<std::mutex> ilk(inner_mu_);
    PC_RETURN_IF_ERROR(inner_->AwaitBatch(b.inner_ticket));
  }
  for (size_t k = 0; k < b.miss_slots.size(); ++k) {
    const std::byte* page = b.fetched.data() + k * page_size_;
    std::memcpy(b.bufs + b.miss_slots[k] * page_size_, page, page_size_);
    Shard& s = ShardFor(b.miss_ids[k]);
    std::lock_guard<std::mutex> slk(s.mu);
    // Another thread may have inserted the page while it was in flight;
    // keep the existing frame, the contents are identical (read-only use).
    if (s.frames.find(b.miss_ids[k]) == s.frames.end()) {
      InsertFrame(s, b.miss_ids[k], page);
    }
  }
  return Status::OK();
}

Status SharedBufferPool::Sync() {
  Shard& s = ShardFor(0);
  std::lock_guard<std::mutex> slk(s.mu);
  {
    std::lock_guard<std::mutex> ilk(inner_mu_);
    PC_RETURN_IF_ERROR(inner_->Sync());
  }
  ++s.stats.syncs;
  return Status::OK();
}

Status SharedBufferPool::ListLivePages(std::vector<PageId>* out) {
  std::lock_guard<std::mutex> ilk(inner_mu_);
  return inner_->ListLivePages(out);
}

Status SharedBufferPool::Write(PageId id, const std::byte* buf) {
  Shard& s = ShardFor(id);
  std::lock_guard<std::mutex> slk(s.mu);
  ++s.stats.writes;
  {
    std::lock_guard<std::mutex> ilk(inner_mu_);
    PC_RETURN_IF_ERROR(inner_->Write(id, buf));
  }
  auto it = s.frames.find(id);
  if (it != s.frames.end()) {
    Touch(s, it->second, id);
    std::memcpy(it->second.data.get(), buf, page_size_);
  } else {
    InsertFrame(s, id, buf);
  }
  return Status::OK();
}

IoStats SharedBufferPool::StatsSnapshot() const {
  IoStats agg;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    agg.reads += s->stats.reads;
    agg.writes += s->stats.writes;
    agg.batch_reads += s->stats.batch_reads;
  }
  {
    std::lock_guard<std::mutex> lk(inner_mu_);
    const IoStats& in = inner_->stats();
    agg.allocs = in.allocs;
    agg.frees = in.frees;
  }
  return agg;
}

const IoStats& SharedBufferPool::stats() const {
  IoStats agg = StatsSnapshot();
  std::lock_guard<std::mutex> lk(snapshot_mu_);
  stats_snapshot_ = agg;
  return stats_snapshot_;
}

void SharedBufferPool::ResetStats() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    s->stats = IoStats{};
    s->hits = 0;
    s->misses = 0;
    s->evictions = 0;
  }
}

uint64_t SharedBufferPool::live_pages() const {
  std::lock_guard<std::mutex> lk(inner_mu_);
  return inner_->live_pages();
}

void SharedBufferPool::Clear() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    // Pinned frames must survive: a caller is reading them in place.
    for (auto it = s->frames.begin(); it != s->frames.end();) {
      if (it->second.pins > 0) {
        ++it;
      } else {
        s->lru.erase(it->second.lru_it);
        it = s->frames.erase(it);
      }
    }
  }
}

uint64_t SharedBufferPool::hits() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    n += s->hits;
  }
  return n;
}

uint64_t SharedBufferPool::misses() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    n += s->misses;
  }
  return n;
}

uint64_t SharedBufferPool::evictions() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    n += s->evictions;
  }
  return n;
}

uint64_t SharedBufferPool::cached_pages() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    n += s->frames.size();
  }
  return n;
}

uint64_t SharedBufferPool::pinned_pages() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    n += s->pinned;
  }
  return n;
}

}  // namespace pathcache
