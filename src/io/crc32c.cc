#include "io/crc32c.h"

#include <array>
#include <cstring>

#include "kernels/dispatch.h"

namespace pathcache {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

struct Tables {
  // t[0] is the classic byte-at-a-time table; t[1..7] extend it so eight
  // input bytes fold into the register with eight table lookups (slice-by-8).
  uint32_t t[8][256];
};

constexpr Tables MakeTables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tb.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tb.t[0][i];
    for (int s = 1; s < 8; ++s) {
      crc = tb.t[0][crc & 0xFF] ^ (crc >> 8);
      tb.t[s][i] = crc;
    }
  }
  return tb;
}

constexpr Tables kTables = MakeTables();

}  // namespace

uint32_t Crc32cInit() { return 0xFFFFFFFFu; }

uint32_t Crc32cFinish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32cUpdate(uint32_t state, const void* data, size_t n) {
  // The CRC32C instruction folds bytes into the register exactly as the
  // slice-by-8 tables below do, so hardware and software states are
  // interchangeable mid-stream and persisted checksums stay byte-identical
  // whichever path ran (tests/crc32c_test.cpp cross-checks both).
  if (kernels::HwCrc32cActive()) {
    return kernels::Crc32cUpdateHw(state, data, n);
  }
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = state;
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
          kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFF] ^ kTables.t[2][(hi >> 8) & 0xFF] ^
          kTables.t[1][(hi >> 16) & 0xFF] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace pathcache
