// BlockList: a list of fixed-size records packed B-to-a-page on a
// PageDevice, scanned a block at a time.
//
// This is the storage shape the paper's accounting argument lives on: a list
// is read front-to-back, every full block read is a "useful" I/O (returns B
// records) and only the final partial block can be "wasteful".  Cover-lists,
// X/Y-lists and the A/S caches are all BlockLists.
//
// On-page layout:  [BlockPageHeader][record 0][record 1]...[record k-1]
// Pages are chained via `next`; builders also return the page-id vector so
// callers that need random block access can keep a directory.

#ifndef PATHCACHE_IO_BLOCK_LIST_H_
#define PATHCACHE_IO_BLOCK_LIST_H_

#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "io/page_device.h"
#include "util/mathutil.h"

namespace pathcache {

struct BlockPageHeader {
  uint32_t count = 0;   // records in this page
  uint32_t contig = 0;  // id-contiguous successors: the next `contig` pages
                        // of the chain are this page's id + 1, + 2, ...
  PageId next = kInvalidPageId;
};
static_assert(sizeof(BlockPageHeader) == 16);

/// Default prefetch window (pages per batch) for readahead cursors.
constexpr uint32_t kDefaultReadahead = 8;

/// Handle to a stored BlockList.
struct BlockListRef {
  PageId head = kInvalidPageId;
  uint64_t count = 0;  // total records

  bool empty() const { return count == 0; }
};

/// Records per page for record type T on a device with the given page size.
template <typename T>
constexpr uint32_t RecordsPerPage(uint32_t page_size) {
  static_assert(std::is_trivially_copyable_v<T>);
  return (page_size - sizeof(BlockPageHeader)) / sizeof(T);
}

/// Validates a block page header read from untrusted storage: the record
/// count must fit the page.  (A `next` pointer cannot be validated locally —
/// chain walkers bound their step count by the device's live pages instead,
/// so a corrupt pointer that forms a cycle degrades to Corruption rather
/// than an infinite loop.)
inline Status CheckBlockPageHeader(const BlockPageHeader& hdr,
                                   uint32_t records_per_page) {
  if (hdr.count > records_per_page) {
    return Status::Corruption(
        "block page record count " + std::to_string(hdr.count) +
        " exceeds page capacity " + std::to_string(records_per_page));
  }
  return Status::OK();
}

/// Returns Corruption once a chain walk has consumed more pages than the
/// device held when the walk started — the only way that happens is a
/// corrupt `next` pointer forming a cycle.  Capture `device_live_pages`
/// before the walk (it may shrink mid-walk if the walker frees pages).
inline Status CheckChainStep(uint64_t pages_walked,
                             uint64_t device_live_pages) {
  if (pages_walked >= device_live_pages) {
    return Status::Corruption(
        "block chain longer than the device's " +
        std::to_string(device_live_pages) + " live pages (corrupt next "
        "pointer forming a cycle)");
  }
  return Status::OK();
}

/// Result of building a list: the scan handle plus the page directory.
struct BlockListInfo {
  BlockListRef ref;
  std::vector<PageId> pages;
};

/// Writes `records` as a chained BlockList.  One device write per page.
template <typename T>
Result<BlockListInfo> BuildBlockList(PageDevice* dev,
                                     std::span<const T> records) {
  BlockListInfo info;
  info.ref.count = records.size();
  if (records.empty()) return info;

  const uint32_t per_page = RecordsPerPage<T>(dev->page_size());
  const uint64_t num_pages = CeilDiv(records.size(), per_page);
  info.pages.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    auto r = dev->Allocate();
    if (!r.ok()) return r.status();
    info.pages.push_back(r.value());
  }
  info.ref.head = info.pages[0];

  // contig[i] = length of the id-contiguous run following page i, so a
  // scanner that knows it will consume the rest of the chain can fetch the
  // run in one batch without a persisted directory.
  std::vector<uint32_t> contig(num_pages, 0);
  for (uint64_t i = num_pages - 1; i-- > 0;) {
    if (info.pages[i + 1] == info.pages[i] + 1) contig[i] = contig[i + 1] + 1;
  }

  std::vector<std::byte> buf(dev->page_size());
  uint64_t off = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    const uint32_t here = static_cast<uint32_t>(
        std::min<uint64_t>(per_page, records.size() - off));
    BlockPageHeader hdr;
    hdr.count = here;
    hdr.contig = contig[i];
    hdr.next = (i + 1 < num_pages) ? info.pages[i + 1] : kInvalidPageId;
    std::memset(buf.data(), 0, buf.size());
    std::memcpy(buf.data(), &hdr, sizeof(hdr));
    std::memcpy(buf.data() + sizeof(hdr), records.data() + off,
                here * sizeof(T));
    PC_RETURN_IF_ERROR(dev->Write(info.pages[i], buf.data()));
    off += here;
  }
  return info;
}

/// Collects the page ids of a chain starting at `head` by following the
/// `next` pointers.  One read per page; used by layout passes that need a
/// chain's directory without a persisted one.
inline Status CollectChainPages(PageDevice* dev, PageId head,
                                std::vector<PageId>* out) {
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t limit = dev->live_pages();
  uint64_t walked = 0;
  for (PageId id = head; id != kInvalidPageId;) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, limit));
    out->push_back(id);
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    id = hdr.next;
  }
  return Status::OK();
}

/// Reads every record of the chain starting at `head` with the full set of
/// corruption guards (bounded walk, per-page header validation), appending
/// to `out`.  `second_page`, when non-null, receives the id of the chain's
/// second page (kInvalidPageId for chains of <= 1 page) — the continuation
/// pointer the cache builders persist.  Verification passes use this where
/// query paths use BlockListCursor.
template <typename T>
Status ReadBlockChain(PageDevice* dev, PageId head, std::vector<T>* out,
                      PageId* second_page = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (second_page != nullptr) *second_page = kInvalidPageId;
  const uint32_t cap = RecordsPerPage<T>(dev->page_size());
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t limit = dev->live_pages();
  uint64_t walked = 0;
  for (PageId id = head; id != kInvalidPageId;) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, limit));
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(CheckBlockPageHeader(hdr, cap));
    const size_t old = out->size();
    out->resize(old + hdr.count);
    if (hdr.count != 0) {  // empty vector data() is null; memcpy forbids it
      std::memcpy(out->data() + old, buf.data() + sizeof(hdr),
                  hdr.count * sizeof(T));
    }
    if (walked == 1 && second_page != nullptr) *second_page = hdr.next;
    id = hdr.next;
  }
  return Status::OK();
}

/// Frees every page of a list built by BuildBlockList.
inline Status FreeBlockList(PageDevice* dev, const BlockListRef& ref) {
  PageId id = ref.head;
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t limit = dev->live_pages();
  uint64_t walked = 0;
  while (id != kInvalidPageId) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, limit));
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(dev->Free(id));
    id = hdr.next;
  }
  return Status::OK();
}

/// Zero-copy view of one BlockList page: the page is pinned in the device's
/// own storage when the device supports Pin(), otherwise read into an
/// internal buffer (see PagePin).  Either way exactly one counted read, so
/// scan paths can iterate records in place without touching the paper's
/// accounting.
template <typename T>
class BlockPageView {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  /// Loads `id`, replacing any previously viewed page.  Rejects a page
  /// whose header claims more records than fit, so records() can never span
  /// past the frame.
  Status Load(PageDevice* dev, PageId id) {
    PC_RETURN_IF_ERROR(pin_.Load(dev, id));
    std::memcpy(&hdr_, pin_.data(), sizeof(hdr_));
    return CheckBlockPageHeader(hdr_, RecordsPerPage<T>(dev->page_size()));
  }

  const BlockPageHeader& header() const { return hdr_; }
  PageId next() const { return hdr_.next; }

  /// The page's records, in place.  Valid until the next Load() or until the
  /// view is destroyed.  (Records are written with memcpy and the frame is
  /// new[]-aligned, so reading them through a T* is well-formed for the
  /// trivially copyable record types block lists hold.)
  std::span<const T> records() const {
    return {reinterpret_cast<const T*>(pin_.data() + sizeof(BlockPageHeader)),
            hdr_.count};
  }

 private:
  PagePin pin_;
  BlockPageHeader hdr_;
};

/// Forward scanner over a BlockList.  Every page is read exactly once and
/// counted exactly once on the device, so the paper's I/O accounting is
/// independent of the transport mode:
///
///  - Plain chain mode (default): one device Read per NextBlock().
///  - Chain readahead (EnableChainReadahead): when a page's header says the
///    next `contig` pages are id-adjacent, the cursor fetches up to
///    window-1 of them in one ReadBatch.  ONLY correct when the caller will
///    consume the whole remainder of the list — an early-stopping scan
///    would pay for pages it never looks at.
///  - Directory mode: the caller hands the exact pages the scan will
///    consume (e.g. a tail-key-computed prefix of a cache list) and the
///    cursor batches through them window pages at a time.
template <typename T>
class BlockListCursor {
 public:
  BlockListCursor(PageDevice* dev, const BlockListRef& ref)
      : dev_(dev), next_(ref.head), buf_(dev->page_size()) {}

  /// Starts mid-list at a known page (from a BlockListInfo directory).
  BlockListCursor(PageDevice* dev, PageId start_page)
      : dev_(dev), next_(start_page), buf_(dev->page_size()) {}

  /// Directory mode over exactly `pages` (copied), batching `readahead`
  /// pages per device call.  The caller asserts it will consume every page
  /// listed; `next` chaining in the page headers is ignored for traversal.
  BlockListCursor(PageDevice* dev, std::span<const PageId> pages,
                  uint32_t readahead = kDefaultReadahead)
      : dev_(dev),
        next_(pages.empty() ? kInvalidPageId : pages.front()),
        buf_(dev->page_size()),
        dir_(pages.begin(), pages.end()),
        readahead_(readahead == 0 ? 1 : readahead) {}

  /// Switches chain traversal to batched readahead with the given window.
  /// Call only when the whole remainder of the list will be consumed.
  void EnableChainReadahead(uint32_t window = kDefaultReadahead) {
    readahead_ = window == 0 ? 1 : window;
  }

  bool done() const {
    if (!dir_.empty()) return dir_pos_ >= dir_.size() && batch_pos_ >= batch_cnt_;
    return batch_pos_ >= batch_cnt_ && next_ == kInvalidPageId;
  }

  /// Appends the next page's records to `out`; no-op once done().
  Status NextBlock(std::vector<T>* out) {
    if (done()) return Status::OK();
    // In chain mode a corrupt `next` pointer can form a cycle; no walk can
    // legitimately visit more pages than the device holds.
    if (dir_.empty()) {
      PC_RETURN_IF_ERROR(CheckChainStep(blocks_read_, dev_->live_pages()));
    }
    const std::byte* page = nullptr;
    const uint32_t psz = dev_->page_size();
    if (batch_pos_ < batch_cnt_) {
      page = batch_buf_.data() + static_cast<size_t>(batch_pos_) * psz;
      ++batch_pos_;
    } else if (!dir_.empty()) {
      const size_t n =
          std::min<size_t>(readahead_, dir_.size() - dir_pos_);
      PC_RETURN_IF_ERROR(FetchBatch(
          std::span<const PageId>(dir_.data() + dir_pos_, n)));
      dir_pos_ += n;
      page = batch_buf_.data();
      batch_pos_ = 1;
    } else {
      PC_RETURN_IF_ERROR(dev_->Read(next_, buf_.data()));
      page = buf_.data();
      if (readahead_ > 1) {
        BlockPageHeader hdr;
        std::memcpy(&hdr, buf_.data(), sizeof(hdr));
        if (hdr.contig > 0) {
          const uint32_t n = std::min(hdr.contig, readahead_ - 1);
          std::vector<PageId> run(n);
          for (uint32_t k = 0; k < n; ++k) run[k] = next_ + 1 + k;
          PC_RETURN_IF_ERROR(FetchBatch(run));
          batch_pos_ = 0;  // current page came from buf_, batch is all pending
        }
      }
    }
    ++blocks_read_;
    BlockPageHeader hdr;
    std::memcpy(&hdr, page, sizeof(hdr));
    PC_RETURN_IF_ERROR(CheckBlockPageHeader(hdr, RecordsPerPage<T>(psz)));
    const size_t old = out->size();
    out->resize(old + hdr.count);
    if (hdr.count != 0) {  // empty vector data() is null; memcpy forbids it
      std::memcpy(out->data() + old, page + sizeof(hdr),
                  hdr.count * sizeof(T));
    }
    next_ = hdr.next;
    return Status::OK();
  }

  uint64_t blocks_read() const { return blocks_read_; }

 private:
  Status FetchBatch(std::span<const PageId> ids) {
    batch_buf_.resize(ids.size() * static_cast<size_t>(dev_->page_size()));
    if (ids.size() == 1) {
      // A single page gains nothing from the batch path; keep the device's
      // batch_reads counter meaningful (one tick == one multi-page batch).
      PC_RETURN_IF_ERROR(dev_->Read(ids[0], batch_buf_.data()));
    } else {
      PC_RETURN_IF_ERROR(dev_->ReadBatch(ids, batch_buf_.data()));
    }
    batch_pos_ = 0;
    batch_cnt_ = ids.size();
    return Status::OK();
  }

  PageDevice* dev_;
  PageId next_;
  std::vector<std::byte> buf_;
  std::vector<PageId> dir_;  // directory mode: the exact pages to read
  size_t dir_pos_ = 0;
  uint32_t readahead_ = 1;
  std::vector<std::byte> batch_buf_;
  size_t batch_pos_ = 0;
  size_t batch_cnt_ = 0;
  uint64_t blocks_read_ = 0;
};

/// Reads an entire list into memory (used by rebuild paths and tests).
/// Always a full scan, so chain readahead is exact here.
template <typename T>
Status ReadBlockList(PageDevice* dev, const BlockListRef& ref,
                     std::vector<T>* out,
                     uint32_t readahead = kDefaultReadahead) {
  BlockListCursor<T> cur(dev, ref);
  cur.EnableChainReadahead(readahead);
  while (!cur.done()) PC_RETURN_IF_ERROR(cur.NextBlock(out));
  return Status::OK();
}

}  // namespace pathcache

#endif  // PATHCACHE_IO_BLOCK_LIST_H_
