// BlockList: a list of fixed-size records packed B-to-a-page on a
// PageDevice, scanned a block at a time.
//
// This is the storage shape the paper's accounting argument lives on: a list
// is read front-to-back, every full block read is a "useful" I/O (returns B
// records) and only the final partial block can be "wasteful".  Cover-lists,
// X/Y-lists and the A/S caches are all BlockLists.
//
// On-page layout (v2):  [BlockPageHeader][record 0][record 1]...[record k-1]
// Builders may instead write the page-format v3 packed layout — the 8-byte
// search key of every record deinterleaved into one dense array ahead of the
// key-less payloads (see io/page_codec.h for the byte layout and the count
// word's flag bits).  Both formats hold the same record count per page, and
// every reader here decodes either transparently.  Pages are chained via
// `next`; builders also return the page-id vector so callers that need
// random block access can keep a directory.

#ifndef PATHCACHE_IO_BLOCK_LIST_H_
#define PATHCACHE_IO_BLOCK_LIST_H_

#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "io/page_codec.h"
#include "io/page_device.h"
#include "util/mathutil.h"

namespace pathcache {

struct BlockPageHeader {
  uint32_t count = 0;   // count word: record count plus the v3 codec flag
                        // bits (io/page_codec.h); codec::Count() masks them
  uint32_t contig = 0;  // id-contiguous successors: the next `contig` pages
                        // of the chain are this page's id + 1, + 2, ...
  PageId next = kInvalidPageId;
};
static_assert(sizeof(BlockPageHeader) == 16);
static_assert(sizeof(BlockPageHeader) == codec::kPackedBaseLo);

/// Default prefetch window (pages per batch) for readahead cursors.
constexpr uint32_t kDefaultReadahead = 8;

/// Handle to a stored BlockList.
struct BlockListRef {
  PageId head = kInvalidPageId;
  uint64_t count = 0;  // total records

  bool empty() const { return count == 0; }
};

/// Records per page for record type T on a device with the given page size.
template <typename T>
constexpr uint32_t RecordsPerPage(uint32_t page_size) {
  static_assert(std::is_trivially_copyable_v<T>);
  return (page_size - sizeof(BlockPageHeader)) / sizeof(T);
}

/// Validates a block page header read from untrusted storage: the record
/// count must fit the page, and a v3 packed page's flag bits must be
/// self-consistent — `rec_size`/`page_size`, when nonzero, additionally
/// bound the key offset and the aligned-flag pad against the actual page.
/// (A `next` pointer cannot be validated locally — chain walkers bound
/// their step count by the device's live pages instead, so a corrupt
/// pointer that forms a cycle degrades to Corruption rather than an
/// infinite loop.)
inline Status CheckBlockPageHeader(const BlockPageHeader& hdr,
                                   uint32_t records_per_page,
                                   uint32_t rec_size = 0,
                                   uint32_t page_size = 0) {
  const uint32_t count = codec::Count(hdr.count);
  if (count > records_per_page) {
    return Status::Corruption(
        "block page record count " + std::to_string(count) +
        " exceeds page capacity " + std::to_string(records_per_page));
  }
  if (codec::IsPacked(hdr.count)) {
    if (rec_size != 0 && codec::KeyOffset(hdr.count) + 8 > rec_size) {
      return Status::Corruption(
          "packed block page key offset " +
          std::to_string(codec::KeyOffset(hdr.count)) +
          " exceeds record size " + std::to_string(rec_size));
    }
    // The aligned form spends 48 pad bytes; the arrays starting at byte 64
    // must still fit the page (the builder's exact condition), else a
    // corrupt aligned flag would let readers run off the frame.
    if (rec_size != 0 && page_size != 0 &&
        codec::PackedBase(hdr.count) == codec::kPackedBaseHi &&
        codec::kPackedBaseHi + static_cast<uint64_t>(count) * rec_size >
            page_size) {
      return Status::Corruption(
          "packed block page aligned flag set but " + std::to_string(count) +
          " records leave no room for the alignment pad");
    }
  } else if (hdr.count > records_per_page) {
    return Status::Corruption("block page count word has unknown flag bits");
  }
  return Status::OK();
}

/// Returns Corruption once a chain walk has consumed more pages than the
/// device held when the walk started — the only way that happens is a
/// corrupt `next` pointer forming a cycle.  Capture `device_live_pages`
/// before the walk (it may shrink mid-walk if the walker frees pages).
inline Status CheckChainStep(uint64_t pages_walked,
                             uint64_t device_live_pages) {
  if (pages_walked >= device_live_pages) {
    return Status::Corruption(
        "block chain longer than the device's " +
        std::to_string(device_live_pages) + " live pages (corrupt next "
        "pointer forming a cycle)");
  }
  return Status::OK();
}

/// Result of building a list: the scan handle plus the page directory.
struct BlockListInfo {
  BlockListRef ref;
  std::vector<PageId> pages;
};

/// Writes `records` as a chained BlockList.  One device write per page.
/// `key_off`, when >= 0, names the byte offset of the record's 8-byte search
/// key; pages are then written in the v3 packed layout (keys deinterleaved,
/// io/page_codec.h) unless the codec is disabled.  Packing never changes
/// page count, chain shape or counted I/O — only the in-page byte order.
template <typename T>
Result<BlockListInfo> BuildBlockList(PageDevice* dev,
                                     std::span<const T> records,
                                     int key_off = -1) {
  BlockListInfo info;
  info.ref.count = records.size();
  if (records.empty()) return info;

  const bool pack = key_off >= 0 && codec::PackedPagesEnabled();
  const uint32_t per_page = RecordsPerPage<T>(dev->page_size());
  const uint64_t num_pages = CeilDiv(records.size(), per_page);
  info.pages.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    auto r = dev->Allocate();
    if (!r.ok()) return r.status();
    info.pages.push_back(r.value());
  }
  info.ref.head = info.pages[0];

  // contig[i] = length of the id-contiguous run following page i, so a
  // scanner that knows it will consume the rest of the chain can fetch the
  // run in one batch without a persisted directory.
  std::vector<uint32_t> contig(num_pages, 0);
  for (uint64_t i = num_pages - 1; i-- > 0;) {
    if (info.pages[i + 1] == info.pages[i] + 1) contig[i] = contig[i + 1] + 1;
  }

  std::vector<std::byte> buf(dev->page_size());
  uint64_t off = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    const uint32_t here = static_cast<uint32_t>(
        std::min<uint64_t>(per_page, records.size() - off));
    BlockPageHeader hdr;
    hdr.contig = contig[i];
    hdr.next = (i + 1 < num_pages) ? info.pages[i + 1] : kInvalidPageId;
    std::memset(buf.data(), 0, buf.size());
    if (pack) {
      const bool aligned = codec::kPackedBaseHi +
                               static_cast<uint64_t>(here) * sizeof(T) <=
                           dev->page_size();
      hdr.count = codec::MakePackedCountWord(
          here, static_cast<uint32_t>(key_off), aligned);
      codec::EncodePackedRecords(buf.data() + codec::PackedBase(hdr.count),
                                 records.data() + off, here, sizeof(T),
                                 static_cast<uint32_t>(key_off));
    } else {
      hdr.count = here;
      std::memcpy(buf.data() + sizeof(hdr), records.data() + off,
                  here * sizeof(T));
    }
    std::memcpy(buf.data(), &hdr, sizeof(hdr));
    PC_RETURN_IF_ERROR(dev->Write(info.pages[i], buf.data()));
    off += here;
  }
  return info;
}

/// Appends the records of one already-validated block page to `out`,
/// decoding either page format.  The fixed decode point every reader
/// funnels through: v2 pages are one memcpy, v3 packed pages reconstruct
/// the interleaved records from the key and payload arrays.
template <typename T>
void AppendBlockRecords(const std::byte* page, const BlockPageHeader& hdr,
                        std::vector<T>* out) {
  const uint32_t count = codec::Count(hdr.count);
  const size_t old = out->size();
  out->resize(old + count);
  if (count == 0) return;  // empty vector data() is null; memcpy forbids it
  if (codec::IsPacked(hdr.count)) {
    codec::DecodePackedRecords(page + codec::PackedBase(hdr.count),
                               out->data() + old, count, sizeof(T),
                               codec::KeyOffset(hdr.count));
  } else {
    std::memcpy(out->data() + old, page + sizeof(BlockPageHeader),
                count * sizeof(T));
  }
}

/// Zero-copy accessor over one v3 packed page: the dense key array plus
/// record-order payloads.  Field offsets are given in LOGICAL record
/// coordinates (offsetof(T, field)) and translated past the extracted key,
/// so scan code reads fields by the same offsets in either format.
template <typename T>
struct PackedPageView {
  const int64_t* keys = nullptr;
  const std::byte* pays = nullptr;
  uint32_t key_off = 0;
  uint32_t count = 0;
  static constexpr uint32_t kPayStride = sizeof(T) - 8;

  /// Precondition: codec::IsPacked(hdr.count); header already validated.
  static PackedPageView From(const std::byte* page,
                             const BlockPageHeader& hdr) {
    PackedPageView v;
    v.count = codec::Count(hdr.count);
    v.key_off = codec::KeyOffset(hdr.count);
    const uint32_t base = codec::PackedBase(hdr.count);
    v.keys = reinterpret_cast<const int64_t*>(page + base);
    v.pays = page + base + static_cast<size_t>(v.count) * 8;
    return v;
  }

  int64_t I64Field(size_t i, uint32_t field_off) const {
    int64_t v;
    std::memcpy(&v,
                pays + i * kPayStride +
                    codec::PayloadFieldOffset(key_off, field_off),
                8);
    return v;
  }
  uint64_t U64Field(size_t i, uint32_t field_off) const {
    uint64_t v;
    std::memcpy(&v,
                pays + i * kPayStride +
                    codec::PayloadFieldOffset(key_off, field_off),
                8);
    return v;
  }
  uint32_t U32Field(size_t i, uint32_t field_off) const {
    uint32_t v;
    std::memcpy(&v,
                pays + i * kPayStride +
                    codec::PayloadFieldOffset(key_off, field_off),
                4);
    return v;
  }
};

/// Collects the page ids of a chain starting at `head` by following the
/// `next` pointers.  One read per page; used by layout passes that need a
/// chain's directory without a persisted one.
inline Status CollectChainPages(PageDevice* dev, PageId head,
                                std::vector<PageId>* out) {
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t limit = dev->live_pages();
  uint64_t walked = 0;
  for (PageId id = head; id != kInvalidPageId;) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, limit));
    out->push_back(id);
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    id = hdr.next;
  }
  return Status::OK();
}

/// Reads every record of the chain starting at `head` with the full set of
/// corruption guards (bounded walk, per-page header validation), appending
/// to `out`.  `second_page`, when non-null, receives the id of the chain's
/// second page (kInvalidPageId for chains of <= 1 page) — the continuation
/// pointer the cache builders persist.  Verification passes use this where
/// query paths use BlockListCursor.
template <typename T>
Status ReadBlockChain(PageDevice* dev, PageId head, std::vector<T>* out,
                      PageId* second_page = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (second_page != nullptr) *second_page = kInvalidPageId;
  const uint32_t cap = RecordsPerPage<T>(dev->page_size());
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t limit = dev->live_pages();
  uint64_t walked = 0;
  for (PageId id = head; id != kInvalidPageId;) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, limit));
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(
        CheckBlockPageHeader(hdr, cap, sizeof(T), dev->page_size()));
    AppendBlockRecords(buf.data(), hdr, out);
    if (walked == 1 && second_page != nullptr) *second_page = hdr.next;
    id = hdr.next;
  }
  return Status::OK();
}

/// Frees every page of a list built by BuildBlockList.
inline Status FreeBlockList(PageDevice* dev, const BlockListRef& ref) {
  PageId id = ref.head;
  std::vector<std::byte> buf(dev->page_size());
  const uint64_t limit = dev->live_pages();
  uint64_t walked = 0;
  while (id != kInvalidPageId) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, limit));
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(dev->Free(id));
    id = hdr.next;
  }
  return Status::OK();
}

/// Zero-copy view of one BlockList page: the page is pinned in the device's
/// own storage when the device supports Pin(), otherwise read into an
/// internal buffer (see PagePin).  Either way exactly one counted read, so
/// scan paths can iterate records in place without touching the paper's
/// accounting.
template <typename T>
class BlockPageView {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  /// Loads `id`, replacing any previously viewed page.  Rejects a page
  /// whose header claims more records than fit, so records() can never span
  /// past the frame.
  Status Load(PageDevice* dev, PageId id) {
    PC_RETURN_IF_ERROR(pin_.Load(dev, id));
    std::memcpy(&hdr_, pin_.data(), sizeof(hdr_));
    decoded_ = false;
    return CheckBlockPageHeader(hdr_, RecordsPerPage<T>(dev->page_size()),
                                sizeof(T), dev->page_size());
  }

  const BlockPageHeader& header() const { return hdr_; }
  PageId next() const { return hdr_.next; }
  uint32_t count() const { return codec::Count(hdr_.count); }
  bool is_packed() const { return codec::IsPacked(hdr_.count); }

  /// Packed fast-path accessors (valid only when is_packed()): the dense
  /// key array, the record-order payload array and its stride, and the
  /// key's byte offset within the logical record.  Scans that only need
  /// the keys plus a field or two stay zero-copy on packed pages.
  const int64_t* keys() const {
    return reinterpret_cast<const int64_t*>(pin_.data() +
                                            codec::PackedBase(hdr_.count));
  }
  const std::byte* payloads() const {
    return pin_.data() + codec::PackedBase(hdr_.count) +
           static_cast<size_t>(count()) * 8;
  }
  static constexpr uint32_t payload_stride() { return sizeof(T) - 8; }
  uint32_t key_offset() const { return codec::KeyOffset(hdr_.count); }
  PackedPageView<T> packed() const {
    return PackedPageView<T>::From(pin_.data(), hdr_);
  }

  /// The page's records.  For v2 pages this is the zero-copy in-place view;
  /// a v3 packed page is decoded (once per Load) into an internal scratch
  /// buffer.  Valid until the next Load() or until the view is destroyed.
  /// (Records are written with memcpy and the frame is new[]-aligned, so
  /// reading them through a T* is well-formed for the trivially copyable
  /// record types block lists hold.)
  std::span<const T> records() const {
    if (!is_packed()) {
      return {
          reinterpret_cast<const T*>(pin_.data() + sizeof(BlockPageHeader)),
          count()};
    }
    if (!decoded_) {
      scratch_.clear();
      AppendBlockRecords(pin_.data(), hdr_, &scratch_);
      decoded_ = true;
    }
    return {scratch_.data(), scratch_.size()};
  }

 private:
  PagePin pin_;
  BlockPageHeader hdr_;
  mutable std::vector<T> scratch_;
  mutable bool decoded_ = false;
};

/// Forward scanner over a BlockList.  Every page is read exactly once and
/// counted exactly once on the device, so the paper's I/O accounting is
/// independent of the transport mode:
///
///  - Plain chain mode (default): one device Read per NextBlock().
///  - Chain readahead (EnableChainReadahead): when a page's header says the
///    next `contig` pages are id-adjacent, the cursor fetches up to
///    window-1 of them in one batch.  ONLY correct when the caller will
///    consume the whole remainder of the list — an early-stopping scan
///    would pay for pages it never looks at.
///  - Directory mode: the caller hands the exact pages the scan will
///    consume (e.g. a tail-key-computed prefix of a cache list) and the
///    cursor batches through them window pages at a time.
///
/// Multi-page fetches are pipelined: the cursor submits each batch through
/// the device's async engine (AsyncBatchReader) and only awaits it when the
/// caller asks for the batch's first page, so on an async-capable device the
/// transfer lands underneath the caller's in-page compute.  In directory
/// mode the NEXT window is submitted as soon as the current one is awaited.
/// Devices without an async engine degrade to the blocking ReadBatch at
/// submit time — same pages, same counted reads, no overlap.
template <typename T>
class BlockListCursor {
 public:
  BlockListCursor(PageDevice* dev, const BlockListRef& ref)
      : dev_(dev), next_(ref.head), buf_(dev->page_size()) {}

  /// Starts mid-list at a known page (from a BlockListInfo directory).
  BlockListCursor(PageDevice* dev, PageId start_page)
      : dev_(dev), next_(start_page), buf_(dev->page_size()) {}

  /// Directory mode over exactly `pages` (copied), batching `readahead`
  /// pages per device call.  The caller asserts it will consume every page
  /// listed; `next` chaining in the page headers is ignored for traversal.
  BlockListCursor(PageDevice* dev, std::span<const PageId> pages,
                  uint32_t readahead = kDefaultReadahead)
      : dev_(dev),
        next_(pages.empty() ? kInvalidPageId : pages.front()),
        buf_(dev->page_size()),
        dir_(pages.begin(), pages.end()),
        readahead_(readahead == 0 ? 1 : readahead) {}

  /// Switches chain traversal to batched readahead with the given window.
  /// Call only when the whole remainder of the list will be consumed.
  void EnableChainReadahead(uint32_t window = kDefaultReadahead) {
    readahead_ = window == 0 ? 1 : window;
  }

  bool done() const {
    if (!dir_.empty()) {
      return dir_pos_ >= dir_.size() && !pending_ready_ &&
             batch_pos_ >= batch_cnt_;
    }
    return batch_pos_ >= batch_cnt_ && !pending_ready_ &&
           next_ == kInvalidPageId;
  }

  /// Advances to the next page and exposes its raw bytes (header already
  /// validated into `*hdr`).  The pointer stays valid until the next
  /// NextBlockRaw/NextBlock call; use the io/page_codec.h accessors (or
  /// AppendBlockRecords) to reach the records in either page format.
  Status NextBlockRaw(const std::byte** page_out, BlockPageHeader* hdr_out) {
    *page_out = nullptr;
    if (done()) return Status::OK();
    // In chain mode a corrupt `next` pointer can form a cycle; no walk can
    // legitimately visit more pages than the device holds.
    if (dir_.empty()) {
      PC_RETURN_IF_ERROR(CheckChainStep(blocks_read_, dev_->live_pages()));
    }
    const std::byte* page = nullptr;
    const uint32_t psz = dev_->page_size();
    if (batch_pos_ < batch_cnt_) {
      page = batch_buf_.data() + static_cast<size_t>(batch_pos_) * psz;
      ++batch_pos_;
    } else if (pending_ready_) {
      PC_RETURN_IF_ERROR(PromotePending());
      page = batch_buf_.data();
      batch_pos_ = 1;
      if (!dir_.empty()) PC_RETURN_IF_ERROR(SubmitNextDirWindow());
    } else if (!dir_.empty()) {
      const size_t n = std::min<size_t>(readahead_, dir_.size() - dir_pos_);
      PC_RETURN_IF_ERROR(
          FetchBatch(std::span<const PageId>(dir_.data() + dir_pos_, n)));
      dir_pos_ += n;
      page = batch_buf_.data();
      batch_pos_ = 1;
      PC_RETURN_IF_ERROR(SubmitNextDirWindow());
    } else {
      PC_RETURN_IF_ERROR(dev_->Read(next_, buf_.data()));
      page = buf_.data();
      if (readahead_ > 1) {
        BlockPageHeader hdr;
        std::memcpy(&hdr, buf_.data(), sizeof(hdr));
        if (hdr.contig > 0) {
          const uint32_t n = std::min(hdr.contig, readahead_ - 1);
          run_ids_.resize(n);
          for (uint32_t k = 0; k < n; ++k) run_ids_[k] = next_ + 1 + k;
          // The run lands while the caller works on the page in buf_.
          PC_RETURN_IF_ERROR(SubmitPending(run_ids_));
        }
      }
    }
    ++blocks_read_;
    BlockPageHeader hdr;
    std::memcpy(&hdr, page, sizeof(hdr));
    PC_RETURN_IF_ERROR(
        CheckBlockPageHeader(hdr, RecordsPerPage<T>(psz), sizeof(T), psz));
    next_ = hdr.next;
    *page_out = page;
    *hdr_out = hdr;
    return Status::OK();
  }

  /// Appends the next page's records to `out`; no-op once done().
  Status NextBlock(std::vector<T>* out) {
    const std::byte* page = nullptr;
    BlockPageHeader hdr;
    PC_RETURN_IF_ERROR(NextBlockRaw(&page, &hdr));
    if (page != nullptr) AppendBlockRecords(page, hdr, out);
    return Status::OK();
  }

  uint64_t blocks_read() const { return blocks_read_; }

 private:
  // Blocking fetch into the serving buffer (first directory window, or a
  // single page).  A single page gains nothing from the batch path; keep
  // the device's batch_reads counter meaningful (one tick == one
  // multi-page batch).
  Status FetchBatch(std::span<const PageId> ids) {
    batch_buf_.resize(ids.size() * static_cast<size_t>(dev_->page_size()));
    if (ids.size() == 1) {
      PC_RETURN_IF_ERROR(dev_->Read(ids[0], batch_buf_.data()));
    } else {
      PC_RETURN_IF_ERROR(dev_->ReadBatch(ids, batch_buf_.data()));
    }
    batch_pos_ = 0;
    batch_cnt_ = ids.size();
    return Status::OK();
  }

  // Starts filling the pending buffer with `ids` (async when the device
  // supports it).  Single pages stay on the Read path for counter parity.
  Status SubmitPending(std::span<const PageId> ids) {
    pending_buf_.resize(ids.size() * static_cast<size_t>(dev_->page_size()));
    if (ids.size() == 1) {
      PC_RETURN_IF_ERROR(dev_->Read(ids[0], pending_buf_.data()));
    } else {
      PC_RETURN_IF_ERROR(async_.Start(dev_, ids, pending_buf_.data()));
    }
    pending_cnt_ = ids.size();
    pending_ready_ = true;
    return Status::OK();
  }

  // Awaits the pending batch and makes it the serving batch.
  Status PromotePending() {
    PC_RETURN_IF_ERROR(async_.Wait());
    batch_buf_.swap(pending_buf_);
    batch_pos_ = 0;
    batch_cnt_ = pending_cnt_;
    pending_cnt_ = 0;
    pending_ready_ = false;
    return Status::OK();
  }

  // Directory mode: pipeline the next window while the current one serves.
  Status SubmitNextDirWindow() {
    if (dir_pos_ >= dir_.size()) return Status::OK();
    const size_t n = std::min<size_t>(readahead_, dir_.size() - dir_pos_);
    PC_RETURN_IF_ERROR(
        SubmitPending(std::span<const PageId>(dir_.data() + dir_pos_, n)));
    dir_pos_ += n;
    return Status::OK();
  }

  PageDevice* dev_;
  PageId next_;
  std::vector<std::byte> buf_;
  std::vector<PageId> dir_;  // directory mode: the exact pages to read
  size_t dir_pos_ = 0;
  uint32_t readahead_ = 1;
  std::vector<std::byte> batch_buf_;
  size_t batch_pos_ = 0;
  size_t batch_cnt_ = 0;
  std::vector<std::byte> pending_buf_;  // in-flight double buffer
  size_t pending_cnt_ = 0;
  bool pending_ready_ = false;
  std::vector<PageId> run_ids_;
  AsyncBatchReader async_;
  uint64_t blocks_read_ = 0;
};

/// Reads an entire list into memory (used by rebuild paths and tests).
/// Always a full scan, so chain readahead is exact here.
template <typename T>
Status ReadBlockList(PageDevice* dev, const BlockListRef& ref,
                     std::vector<T>* out,
                     uint32_t readahead = kDefaultReadahead) {
  BlockListCursor<T> cur(dev, ref);
  cur.EnableChainReadahead(readahead);
  while (!cur.done()) PC_RETURN_IF_ERROR(cur.NextBlock(out));
  return Status::OK();
}

}  // namespace pathcache

#endif  // PATHCACHE_IO_BLOCK_LIST_H_
