// BlockList: a list of fixed-size records packed B-to-a-page on a
// PageDevice, scanned a block at a time.
//
// This is the storage shape the paper's accounting argument lives on: a list
// is read front-to-back, every full block read is a "useful" I/O (returns B
// records) and only the final partial block can be "wasteful".  Cover-lists,
// X/Y-lists and the A/S caches are all BlockLists.
//
// On-page layout:  [BlockPageHeader][record 0][record 1]...[record k-1]
// Pages are chained via `next`; builders also return the page-id vector so
// callers that need random block access can keep a directory.

#ifndef PATHCACHE_IO_BLOCK_LIST_H_
#define PATHCACHE_IO_BLOCK_LIST_H_

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "io/page_device.h"
#include "util/mathutil.h"

namespace pathcache {

struct BlockPageHeader {
  uint32_t count = 0;     // records in this page
  uint32_t reserved = 0;  // alignment / future use
  PageId next = kInvalidPageId;
};
static_assert(sizeof(BlockPageHeader) == 16);

/// Handle to a stored BlockList.
struct BlockListRef {
  PageId head = kInvalidPageId;
  uint64_t count = 0;  // total records

  bool empty() const { return count == 0; }
};

/// Records per page for record type T on a device with the given page size.
template <typename T>
constexpr uint32_t RecordsPerPage(uint32_t page_size) {
  static_assert(std::is_trivially_copyable_v<T>);
  return (page_size - sizeof(BlockPageHeader)) / sizeof(T);
}

/// Result of building a list: the scan handle plus the page directory.
struct BlockListInfo {
  BlockListRef ref;
  std::vector<PageId> pages;
};

/// Writes `records` as a chained BlockList.  One device write per page.
template <typename T>
Result<BlockListInfo> BuildBlockList(PageDevice* dev,
                                     std::span<const T> records) {
  BlockListInfo info;
  info.ref.count = records.size();
  if (records.empty()) return info;

  const uint32_t per_page = RecordsPerPage<T>(dev->page_size());
  const uint64_t num_pages = CeilDiv(records.size(), per_page);
  info.pages.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    auto r = dev->Allocate();
    if (!r.ok()) return r.status();
    info.pages.push_back(r.value());
  }
  info.ref.head = info.pages[0];

  std::vector<std::byte> buf(dev->page_size());
  uint64_t off = 0;
  for (uint64_t i = 0; i < num_pages; ++i) {
    const uint32_t here = static_cast<uint32_t>(
        std::min<uint64_t>(per_page, records.size() - off));
    BlockPageHeader hdr;
    hdr.count = here;
    hdr.next = (i + 1 < num_pages) ? info.pages[i + 1] : kInvalidPageId;
    std::memset(buf.data(), 0, buf.size());
    std::memcpy(buf.data(), &hdr, sizeof(hdr));
    std::memcpy(buf.data() + sizeof(hdr), records.data() + off,
                here * sizeof(T));
    PC_RETURN_IF_ERROR(dev->Write(info.pages[i], buf.data()));
    off += here;
  }
  return info;
}

/// Frees every page of a list built by BuildBlockList.
inline Status FreeBlockList(PageDevice* dev, const BlockListRef& ref) {
  PageId id = ref.head;
  std::vector<std::byte> buf(dev->page_size());
  while (id != kInvalidPageId) {
    PC_RETURN_IF_ERROR(dev->Read(id, buf.data()));
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(dev->Free(id));
    id = hdr.next;
  }
  return Status::OK();
}

/// Forward scanner over a BlockList; one device read per NextBlock().
template <typename T>
class BlockListCursor {
 public:
  BlockListCursor(PageDevice* dev, const BlockListRef& ref)
      : dev_(dev), next_(ref.head), buf_(dev->page_size()) {}

  /// Starts mid-list at a known page (from a BlockListInfo directory).
  BlockListCursor(PageDevice* dev, PageId start_page)
      : dev_(dev), next_(start_page), buf_(dev->page_size()) {}

  bool done() const { return next_ == kInvalidPageId; }

  /// Appends the next page's records to `out`; no-op once done().
  Status NextBlock(std::vector<T>* out) {
    if (done()) return Status::OK();
    PC_RETURN_IF_ERROR(dev_->Read(next_, buf_.data()));
    ++blocks_read_;
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf_.data(), sizeof(hdr));
    const size_t old = out->size();
    out->resize(old + hdr.count);
    std::memcpy(out->data() + old, buf_.data() + sizeof(hdr),
                hdr.count * sizeof(T));
    next_ = hdr.next;
    return Status::OK();
  }

  uint64_t blocks_read() const { return blocks_read_; }

 private:
  PageDevice* dev_;
  PageId next_;
  std::vector<std::byte> buf_;
  uint64_t blocks_read_ = 0;
};

/// Reads an entire list into memory (used by rebuild paths and tests).
template <typename T>
Status ReadBlockList(PageDevice* dev, const BlockListRef& ref,
                     std::vector<T>* out) {
  BlockListCursor<T> cur(dev, ref);
  while (!cur.done()) PC_RETURN_IF_ERROR(cur.NextBlock(out));
  return Status::OK();
}

}  // namespace pathcache

#endif  // PATHCACHE_IO_BLOCK_LIST_H_
