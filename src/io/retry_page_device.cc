#include "io/retry_page_device.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

namespace pathcache {

void RetryPageDevice::Backoff(uint32_t attempt) const {
  const uint64_t base = opts_.base_backoff_us;
  if (base == 0) return;
  // `base << attempt` must saturate, not wrap: max_attempts is
  // caller-controlled, so `attempt` can reach 64+ where the shift is
  // undefined, and even below 64 an overflowing shift could wrap to a value
  // *smaller* than max_backoff_us and silently shorten the sleep.  Any
  // shift that could carry a set bit past bit 63 is therefore treated as
  // "already past the cap".
  const uint64_t headroom = 64 - std::bit_width(base);
  const uint64_t us =
      attempt >= headroom
          ? opts_.max_backoff_us
          : std::min<uint64_t>(base << attempt, opts_.max_backoff_us);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

template <typename Op>
Status RetryPageDevice::RetryLoop(const Op& op) {
  const uint32_t attempts = std::max<uint32_t>(1, opts_.max_attempts);
  Status last;
  for (uint32_t k = 0; k < attempts; ++k) {
    if (k > 0) {
      Backoff(k - 1);
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    last = op();
    if (last.ok()) {
      if (k > 0) recovered_.fetch_add(1, std::memory_order_relaxed);
      return last;
    }
    if (last.code() != StatusCode::kIoError) return last;  // deterministic
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

Result<PageId> RetryPageDevice::Allocate() {
  PageId id = kInvalidPageId;
  PC_RETURN_IF_ERROR(RetryLoop([&] {
    Result<PageId> r = inner_->Allocate();
    if (r.ok()) id = r.value();
    return r.ToStatus();
  }));
  ++stats_.allocs;
  return id;
}

Status RetryPageDevice::Free(PageId id) {
  PC_RETURN_IF_ERROR(RetryLoop([&] { return inner_->Free(id); }));
  ++stats_.frees;
  return Status::OK();
}

Status RetryPageDevice::Read(PageId id, std::byte* buf) {
  PC_RETURN_IF_ERROR(RetryLoop([&] { return inner_->Read(id, buf); }));
  ++stats_.reads;
  return Status::OK();
}

Status RetryPageDevice::ReadBatch(std::span<const PageId> ids,
                                  std::byte* bufs) {
  if (ids.empty()) return Status::OK();
  PC_RETURN_IF_ERROR(RetryLoop([&] { return inner_->ReadBatch(ids, bufs); }));
  stats_.reads += ids.size();
  ++stats_.batch_reads;
  return Status::OK();
}

Status RetryPageDevice::Write(PageId id, const std::byte* buf) {
  PC_RETURN_IF_ERROR(RetryLoop([&] { return inner_->Write(id, buf); }));
  ++stats_.writes;
  return Status::OK();
}

Status RetryPageDevice::Sync() {
  PC_RETURN_IF_ERROR(RetryLoop([&] { return inner_->Sync(); }));
  ++stats_.syncs;
  return Status::OK();
}

Result<const std::byte*> RetryPageDevice::Pin(PageId id) {
  const std::byte* frame = nullptr;
  PC_RETURN_IF_ERROR(RetryLoop([&] {
    Result<const std::byte*> r = inner_->Pin(id);
    if (r.ok()) frame = r.value();
    return r.ToStatus();
  }));
  ++stats_.reads;
  return frame;
}

}  // namespace pathcache
