// An in-memory simulated disk with exact I/O accounting and optional fault
// injection.  This is the measurement substrate for every experiment: the
// paper's model (one unit per page access) maps 1:1 onto reads/writes here.

#ifndef PATHCACHE_IO_MEM_PAGE_DEVICE_H_
#define PATHCACHE_IO_MEM_PAGE_DEVICE_H_

#include <memory>
#include <vector>

#include "io/aligned.h"
#include "io/page_device.h"

namespace pathcache {

class MemPageDevice final : public PageDevice {
 public:
  explicit MemPageDevice(uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;
  Status Write(PageId id, const std::byte* buf) override;
  /// Pages live in stable heap blocks, so pinning is free: same counting as
  /// Read(), no copy.  Unpin is a no-op — the simulated disk never evicts.
  Result<const std::byte*> Pin(PageId id) override;
  /// Memory is trivially durable; counted so callers can assert their sync
  /// discipline on the simulated disk.
  Status Sync() override {
    ++stats_.syncs;
    return Status::OK();
  }
  Status ListLivePages(std::vector<PageId>* out) override;
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }
  uint64_t live_pages() const override { return live_; }

  /// Fault injection: after `n` further successful reads/writes, every
  /// subsequent call fails with IOError.  Pass a negative value to disarm.
  void InjectFailureAfter(int64_t n) { fail_after_ = n; }

 private:
  Status CheckId(PageId id) const;
  Status MaybeFail();

  uint32_t page_size_;
  std::vector<PageFrame> pages_;
  std::vector<bool> freed_;
  std::vector<PageId> free_list_;
  uint64_t live_ = 0;
  IoStats stats_;
  int64_t fail_after_ = -1;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_MEM_PAGE_DEVICE_H_
