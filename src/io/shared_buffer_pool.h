// SharedBufferPool: a thread-safe LRU page cache for concurrent read-only
// queries.  The cache is striped into N shards (page id modulo N), each with
// its own mutex, frame map, LRU list and counters, so readers hitting
// different shards never contend.  The inner device is NOT assumed to be
// thread-safe — every inner call is serialized behind one mutex — so the
// concurrency win comes from warm-cache hits, which is exactly the regime
// the throughput bench measures.
//
// Lock order is always shard mutex → inner mutex; no call path takes two
// shard mutexes, so the pool cannot deadlock against itself.
//
// Counter semantics match BufferPool: `stats()` counts logical accesses,
// the inner device's stats count cache-miss I/Os, and hits()/misses()
// aggregate across shards.  Writes are write-through.  Unlike BufferPool,
// `stats()` returns a snapshot by value (it must aggregate shards under
// their locks).

#ifndef PATHCACHE_IO_SHARED_BUFFER_POOL_H_
#define PATHCACHE_IO_SHARED_BUFFER_POOL_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "io/aligned.h"
#include "io/page_device.h"

namespace pathcache {

class SharedBufferPool final : public PageDevice {
 public:
  /// Total capacity is split evenly across shards (each shard gets at least
  /// one frame unless `capacity_pages == 0`, which makes the pool a pure
  /// pass-through).  `shards` is clamped to at least 1.
  SharedBufferPool(PageDevice* inner, uint64_t capacity_pages,
                   uint32_t shards = 16);

  uint32_t page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;

  /// Async ReadBatch: hits are copied (and counted) at submit; misses go to
  /// the inner device's own SubmitBatch so the physical reads land under the
  /// caller's compute, then AwaitBatch copies them out and admits them to
  /// the cache.  Counting is identical to ReadBatch on the same ids.
  /// Batches with duplicate ids return NotSupported before touching any
  /// counter (the ReadBatch fallback handles them), as does a pool whose
  /// inner device has no async engine.
  Result<uint64_t> SubmitBatch(std::span<const PageId> ids,
                               std::byte* bufs) override;
  Status AwaitBatch(uint64_t ticket) override;

  Status Write(PageId id, const std::byte* buf) override;

  /// Pins the page's frame in its shard (faulting it in on a miss) and
  /// returns its stable data pointer; counted exactly like Read().  The
  /// pointer stays valid after the shard lock is released because pinned
  /// frames are exempt from eviction and Clear(), and frame bytes live in
  /// their own heap blocks that map rehashes never move.  Safe under the
  /// read-only concurrent regime this pool is built for: nothing writes a
  /// page while queries run, so readers of a pinned frame race with no one.
  /// A zero-capacity (pass-through) pool returns NotSupported.
  Result<const std::byte*> Pin(PageId id) override;
  void Unpin(PageId id) override;

  /// Write-through pool: a barrier is the inner device's barrier, issued
  /// under the inner-device lock like every other inner call.
  Status Sync() override;

  Status ListLivePages(std::vector<PageId>* out) override;

  /// Aggregated logical-access counters.  Returns a reference to an
  /// internal snapshot refreshed by this call; the refresh is serialized, but
  /// the returned reference can be overwritten by a later call, so this
  /// remains a quiesced-measurement API.  Concurrent readers (the serving
  /// layer's observability path) must use StatsSnapshot() instead.
  const IoStats& stats() const override;

  /// Thread-safe by-value variant of stats(): aggregates the shards under
  /// their locks and returns the copy.  Safe to call at any time, including
  /// while readers are mid-flight on other threads.
  IoStats StatsSnapshot() const;

  void ResetStats() override;
  uint64_t live_pages() const override;

  /// Same contract as BufferPool::Clear(): drops every cached frame in
  /// every shard, leaves all counters untouched.
  void Clear();
  void ClearAndResetStats() {
    Clear();
    ResetStats();
  }

  uint64_t hits() const;
  uint64_t misses() const;
  /// Frames dropped by the capacity eviction scan since construction (or
  /// the last ResetStats()); Clear()/Free() drops are not evictions.
  uint64_t evictions() const;
  uint64_t cached_pages() const;
  uint64_t pinned_pages() const;
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }

 private:
  struct Frame {
    PageFrame data;
    std::list<PageId>::iterator lru_it;
    uint32_t pins = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PageId, Frame> frames;
    std::list<PageId> lru;  // front = most recent
    uint64_t capacity = 0;
    uint64_t pinned = 0;  // frames with pins > 0
    IoStats stats;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  // Callers hold `s.mu`.
  static void Touch(Shard& s, Frame& f, PageId id);
  void InsertFrame(Shard& s, PageId id, const std::byte* buf);

  PageDevice* inner_;
  uint32_t page_size_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex inner_mu_;  // serializes every inner_-> call
  mutable std::mutex snapshot_mu_;  // serializes stats_snapshot_ refreshes
  mutable IoStats stats_snapshot_;

  // One outstanding SubmitBatch.  `inner_async` is false when the batch
  // finished at submit time (all hits, or the inner device fell back to a
  // blocking read); the staging buffer holds the missed pages until
  // AwaitBatch copies them into the caller's slots.
  struct AsyncBatch {
    uint64_t inner_ticket = 0;
    bool inner_async = false;
    std::vector<size_t> miss_slots;
    std::vector<PageId> miss_ids;
    std::vector<std::byte> fetched;
    std::byte* bufs = nullptr;
  };
  std::mutex async_mu_;  // guards the ticket map and the memo below
  std::map<uint64_t, AsyncBatch> async_batches_;
  uint64_t next_async_ticket_ = 1;
  bool inner_async_unsupported_ = false;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_SHARED_BUFFER_POOL_H_
