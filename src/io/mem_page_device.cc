#include "io/mem_page_device.h"

#include <cstring>
#include <string>

namespace pathcache {

MemPageDevice::MemPageDevice(uint32_t page_size) : page_size_(page_size) {}

Status MemPageDevice::MaybeFail() {
  if (fail_after_ < 0) return Status::OK();
  if (fail_after_ == 0) return Status::IoError("injected device failure");
  --fail_after_;
  return Status::OK();
}

Status MemPageDevice::CheckId(PageId id) const {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("page id out of range: " +
                                   std::to_string(id));
  }
  if (freed_[id]) {
    return Status::Corruption("access to freed page " + std::to_string(id));
  }
  return Status::OK();
}

Result<PageId> MemPageDevice::Allocate() {
  ++stats_.allocs;
  ++live_;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    std::memset(pages_[id].get(), 0, page_size_);
    return id;
  }
  pages_.push_back(AllocPageFrame(page_size_));
  freed_.push_back(false);
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPageDevice::Free(PageId id) {
  PC_RETURN_IF_ERROR(CheckId(id));
  ++stats_.frees;
  --live_;
  freed_[id] = true;
  free_list_.push_back(id);
  return Status::OK();
}

Status MemPageDevice::Read(PageId id, std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  PC_RETURN_IF_ERROR(MaybeFail());
  ++stats_.reads;
  std::memcpy(buf, pages_[id].get(), page_size_);
  return Status::OK();
}

Status MemPageDevice::ReadBatch(std::span<const PageId> ids,
                                std::byte* bufs) {
  // Page-for-page identical accounting to ids.size() Read() calls — ids are
  // processed in order so fault injection trips at the same point — plus one
  // batch_reads tick to record that the pages moved in a single batch.
  for (size_t i = 0; i < ids.size(); ++i) {
    PC_RETURN_IF_ERROR(CheckId(ids[i]));
    PC_RETURN_IF_ERROR(MaybeFail());
    ++stats_.reads;
    std::memcpy(bufs + i * page_size_, pages_[ids[i]].get(), page_size_);
  }
  if (!ids.empty()) ++stats_.batch_reads;
  return Status::OK();
}

Result<const std::byte*> MemPageDevice::Pin(PageId id) {
  PC_RETURN_IF_ERROR(CheckId(id));
  PC_RETURN_IF_ERROR(MaybeFail());
  ++stats_.reads;
  return static_cast<const std::byte*>(pages_[id].get());
}

Status MemPageDevice::Write(PageId id, const std::byte* buf) {
  PC_RETURN_IF_ERROR(CheckId(id));
  PC_RETURN_IF_ERROR(MaybeFail());
  ++stats_.writes;
  std::memcpy(pages_[id].get(), buf, page_size_);
  return Status::OK();
}

Status MemPageDevice::ListLivePages(std::vector<PageId>* out) {
  for (PageId id = 0; id < pages_.size(); ++id) {
    if (!freed_[id]) out->push_back(id);
  }
  return Status::OK();
}

}  // namespace pathcache
