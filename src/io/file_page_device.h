// A PageDevice backed by a real file, for running the examples against an
// actual filesystem.  Same accounting as MemPageDevice; pages are appended
// to the file on allocation and recycled through a free list.
//
// Short transfers (signals, filesystems that return partial pread/pwrite)
// are retried until the full page moved; a zero-length transfer mid-page is
// reported as Corruption with the failing byte offset.  ReadBatch sorts the
// requested ids and coalesces disk-adjacent pages into preadv calls, so a
// batch of k pages typically costs far fewer than k syscalls;
// `read_syscalls()` exposes the actual count for the coalescing benchmarks.

#ifndef PATHCACHE_IO_FILE_PAGE_DEVICE_H_
#define PATHCACHE_IO_FILE_PAGE_DEVICE_H_

#include <string>
#include <vector>

#include "io/page_device.h"

namespace pathcache {

class FilePageDevice final : public PageDevice {
 public:
  /// Opens (creating or truncating) `path` as the backing store.
  static Result<std::unique_ptr<FilePageDevice>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Re-opens an existing store without truncation.  Every page below the
  /// file's size is treated as live (the free list is not persisted), so
  /// reopening is intended for stores whose structures were saved via their
  /// manifests rather than partially freed.  A file whose size is not a
  /// multiple of `page_size` is rejected with Corruption: a partial tail
  /// page means the store was truncated mid-write (or the wrong page_size
  /// was passed), and treating it as live would surface later as a baffling
  /// short-read error instead of at open time.
  static Result<std::unique_ptr<FilePageDevice>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  ~FilePageDevice() override;
  FilePageDevice(const FilePageDevice&) = delete;
  FilePageDevice& operator=(const FilePageDevice&) = delete;

  uint32_t page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;
  Status Write(PageId id, const std::byte* buf) override;
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_ = IoStats{};
    read_syscalls_ = 0;
    sorted_batches_ = 0;
  }
  uint64_t live_pages() const override { return live_; }

  /// pread/preadv calls actually issued (retries included).  With batching,
  /// stats().reads - read_syscalls() is the number of syscalls coalescing
  /// saved over one-page-at-a-time reading.
  uint64_t read_syscalls() const { return read_syscalls_; }

  /// ReadBatch calls whose ids arrived already in disk order, taking the
  /// sort-free fast path.  Clustered structures make this the common case.
  uint64_t sorted_batches() const { return sorted_batches_; }

 private:
  FilePageDevice(int fd, uint32_t page_size) : fd_(fd), page_size_(page_size) {}

  Status CheckId(PageId id) const;

  int fd_;
  uint32_t page_size_;
  uint64_t page_count_ = 0;
  uint64_t live_ = 0;
  std::vector<bool> freed_;
  std::vector<PageId> free_list_;
  IoStats stats_;
  uint64_t read_syscalls_ = 0;
  uint64_t sorted_batches_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_FILE_PAGE_DEVICE_H_
