// A PageDevice backed by a real file, for running the examples against an
// actual filesystem.  Same accounting as MemPageDevice; pages are appended
// to the file on allocation and recycled through a free list.
//
// Short transfers (signals, filesystems that return partial pread/pwrite)
// are retried until the full page moved; a zero-length transfer mid-page is
// reported as Corruption with the failing byte offset.  ReadBatch sorts the
// requested ids and coalesces disk-adjacent pages into runs, so a batch of
// k pages typically costs far fewer than k transfer operations;
// `read_syscalls()` exposes the actual count for the coalescing benchmarks.
//
// Two read backends serve the coalesced runs:
//
//  * kPreadv — one blocking preadv per run (the portable baseline).
//  * kIoUring — every run of a multi-run batch is submitted to an io_uring
//    in one io_uring_enter, letting the kernel service the runs
//    concurrently.  Probed at runtime; the device silently uses preadv when
//    the kernel refuses a ring or PATHCACHE_DISABLE_IOURING is set in the
//    environment.  Bytes delivered, IoStats, read_syscalls() and error
//    mapping are identical between backends (tests/uring_test.cpp) — the
//    backend is a transport choice, never a semantic one, so the paper's
//    one-unit-per-page cost model is unaffected.

#ifndef PATHCACHE_IO_FILE_PAGE_DEVICE_H_
#define PATHCACHE_IO_FILE_PAGE_DEVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/page_device.h"
#include "io/uring_reader.h"

namespace pathcache {

class FilePageDevice final : public PageDevice {
 public:
  enum class ReadBackend { kPreadv, kIoUring };

  /// Opens (creating or truncating) `path` as the backing store.
  static Result<std::unique_ptr<FilePageDevice>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Re-opens an existing store without truncation.  Every page below the
  /// file's size is treated as live (the free list is not persisted), so
  /// reopening is intended for stores whose structures were saved via their
  /// manifests rather than partially freed.  A file whose size is not a
  /// multiple of `page_size` is rejected with Corruption: a partial tail
  /// page means the store was truncated mid-write (or the wrong page_size
  /// was passed), and treating it as live would surface later as a baffling
  /// short-read error instead of at open time.
  static Result<std::unique_ptr<FilePageDevice>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// fsyncs the directory containing `path`, making renames and creations
  /// of entries in it durable.  Create() calls this itself; publish
  /// protocols that rename a store file into place need it again after the
  /// rename.
  static Status SyncParentDir(const std::string& path);

  ~FilePageDevice() override;
  FilePageDevice(const FilePageDevice&) = delete;
  FilePageDevice& operator=(const FilePageDevice&) = delete;

  uint32_t page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::byte* buf) override;
  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override;

  /// Truly-async ReadBatch: SubmitBatch coalesces exactly like ReadBatch and
  /// hands every run to the io_uring WITHOUT waiting, so the kernel reads
  /// under the caller's compute; AwaitBatch blocks until the batch landed.
  /// Returns NotSupported when the io_uring backend is unavailable (callers
  /// fall back to ReadBatch via AsyncBatchReader).  IoStats land at
  /// AwaitBatch with totals identical to ReadBatch on the same ids;
  /// read_syscalls() counts submitted ring ops as it does for the
  /// synchronous uring path.
  Result<uint64_t> SubmitBatch(std::span<const PageId> ids,
                               std::byte* bufs) override;
  Status AwaitBatch(uint64_t ticket) override;

  Status Write(PageId id, const std::byte* buf) override;
  /// fdatasync on the backing file — the durability barrier the WAL and
  /// manifest-publish protocols ack against.
  Status Sync() override;
  Status ListLivePages(std::vector<PageId>* out) override;
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_ = IoStats{};
    read_syscalls_ = 0;
    sorted_batches_ = 0;
    uring_batches_ = 0;
  }
  uint64_t live_pages() const override { return live_; }

  /// pread/preadv calls actually issued (retries included).  With batching,
  /// stats().reads - read_syscalls() is the number of syscalls coalescing
  /// saved over one-page-at-a-time reading.
  uint64_t read_syscalls() const { return read_syscalls_; }

  /// ReadBatch calls whose ids arrived already in disk order, taking the
  /// sort-free fast path.  Clustered structures make this the common case.
  uint64_t sorted_batches() const { return sorted_batches_; }

  /// Selects the ReadBatch transport.  Requesting kIoUring on a kernel
  /// without io_uring returns NotSupported and leaves preadv active; the
  /// constructor default is kIoUring where supported unless
  /// PATHCACHE_DISABLE_IOURING is set.
  Status SetReadBackend(ReadBackend backend);

  /// The backend multi-run batches actually use right now.
  ReadBackend read_backend() const { return backend_; }

  /// ReadBatch calls whose runs went through the io_uring backend.
  uint64_t uring_batches() const { return uring_batches_; }

 private:
  FilePageDevice(int fd, uint32_t page_size);

  Status CheckId(PageId id) const;

  /// Lazily builds the ring; on failure flips the device to preadv for good.
  bool EnsureUring();

  int fd_;
  uint32_t page_size_;
  uint64_t page_count_ = 0;
  uint64_t live_ = 0;
  std::vector<bool> freed_;
  std::vector<PageId> free_list_;
  IoStats stats_;
  uint64_t read_syscalls_ = 0;
  uint64_t sorted_batches_ = 0;
  uint64_t uring_batches_ = 0;
  ReadBackend backend_ = ReadBackend::kPreadv;
  std::unique_ptr<UringReader> uring_;
  bool uring_failed_ = false;

  // One outstanding SubmitBatch.  `token` is the ring's handle; `n` defers
  // the IoStats bump to AwaitBatch; `submitted` is false for the empty
  // batch, which never touches the ring.
  struct InflightBatch {
    uint64_t token = 0;
    size_t n = 0;
    bool submitted = false;
  };
  std::map<uint64_t, InflightBatch> inflight_;
  uint64_t next_ticket_ = 1;
};

}  // namespace pathcache

#endif  // PATHCACHE_IO_FILE_PAGE_DEVICE_H_
