// Dynamic 3-sided queries — Theorem 5.2 of the paper: O(log_B n + t/B)
// queries with O(log_B n log^2 B) amortized updates at
// O((n/B) log B log log B) space.
//
// Realized, per Section 5's buffer-and-rebuild pattern, as a static
// ThreeSidedPst image plus a chained update buffer: updates append to the
// buffer in O(1) I/Os; once the buffer exceeds ~c log_B n pages the image
// is rebuilt from scratch.  Queries run against the image, scan the whole
// buffer (O(log_B n) pages by the size invariant) and replay the pending
// operations in sequence order.  The rebuild costs O((n/B) log^2 B) I/Os
// amortized over Theta(B log_B n) buffered updates — i.e.
// O(log_B n log^2 B)-class amortized updates, matching the theorem.

#ifndef PATHCACHE_CORE_THREE_SIDED_DYNAMIC_H_
#define PATHCACHE_CORE_THREE_SIDED_DYNAMIC_H_

#include <memory>
#include <vector>

#include "core/pst_dynamic.h"  // UpdateRec
#include "core/three_sided.h"
#include "io/page_device.h"

namespace pathcache {

struct DynamicThreeSidedOptions {
  /// Buffer page budget as a multiple of log_B n before a rebuild.
  uint32_t buffer_pages_per_log = 2;
};

class DynamicThreeSidedPst {
 public:
  explicit DynamicThreeSidedPst(PageDevice* dev,
                                DynamicThreeSidedOptions opts = {});

  Status Build(std::vector<Point> points);
  Status Insert(const Point& p);
  Status Erase(const Point& p);

  Status QueryThreeSided(const ThreeSidedQuery& q, std::vector<Point>* out,
                         QueryStats* stats = nullptr) const;

  Status Destroy();

  uint64_t size() const { return live_count_; }
  uint64_t rebuilds() const { return rebuilds_; }
  StorageBreakdown storage() const;

 private:
  Status Update(const Point& p, uint32_t op);
  Status ReadPending(std::vector<UpdateRec>* out) const;
  Status Rebuild();

  PageDevice* dev_;
  DynamicThreeSidedOptions opts_;
  std::unique_ptr<ThreeSidedPst> image_;
  std::vector<PageId> buffer_pages_;
  uint32_t buffer_count_ = 0;  // records across buffer pages
  uint32_t buf_cap_ = 0;
  uint64_t live_count_ = 0;
  uint64_t image_count_ = 0;
  uint32_t next_seq_ = 1;
  uint64_t rebuilds_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_THREE_SIDED_DYNAMIC_H_
