// Dynamic interval management via the [KRV] reduction (Section 1 of the
// paper): a stabbing query "report all intervals [lo, hi] containing q"
// maps to the 2-sided query  x >= q && y >= -q  over points (hi, -lo) —
// a diagonal-corner query, the special case the paper generalizes.
//
// StabbingIndex is the static form (two-level PST inside, Theorem 4.3);
// DynamicStabbingIndex is fully dynamic (Theorem 5.1), giving the paper's
// headline application: dynamic interval management with O(log_B n + t/B)
// stabbing queries and O(log_B n) amortized updates.

#ifndef PATHCACHE_CORE_STABBING_H_
#define PATHCACHE_CORE_STABBING_H_

#include <vector>

#include "core/pst_dynamic.h"
#include "core/pst_two_level.h"
#include "core/query_stats.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

/// Maps an interval to its [KRV] dual point and back.
inline Point IntervalToDual(const Interval& iv) {
  return Point{iv.hi, -iv.lo, iv.id};
}
inline Interval DualToInterval(const Point& p) {
  return Interval{-p.y, p.x, p.id};
}
inline TwoSidedQuery StabToDualQuery(int64_t q) {
  return TwoSidedQuery{q, -q};
}

/// Static interval-management index: bulk-built, optimal stabbing queries.
class StabbingIndex {
 public:
  explicit StabbingIndex(PageDevice* dev, TwoLevelPstOptions opts = {})
      : pst_(dev, opts) {}

  Status Build(std::vector<Interval> intervals) {
    std::vector<Point> duals;
    duals.reserve(intervals.size());
    for (const auto& iv : intervals) duals.push_back(IntervalToDual(iv));
    return pst_.Build(std::move(duals));
  }

  /// Reports every interval containing q.
  Status Stab(int64_t q, std::vector<Interval>* out,
              QueryStats* stats = nullptr) const {
    std::vector<Point> duals;
    PC_RETURN_IF_ERROR(pst_.QueryTwoSided(StabToDualQuery(q), &duals, stats));
    out->reserve(out->size() + duals.size());
    for (const auto& p : duals) out->push_back(DualToInterval(p));
    return Status::OK();
  }

  Status Destroy() { return pst_.Destroy(); }
  uint64_t size() const { return pst_.size(); }
  StorageBreakdown storage() const { return pst_.storage(); }

 private:
  TwoLevelPst pst_;
};

/// Fully dynamic interval management (the open problem of [KRV] that the
/// paper solves up to an O(log log B) space factor).
class DynamicStabbingIndex {
 public:
  explicit DynamicStabbingIndex(PageDevice* dev, DynamicPstOptions opts = {})
      : pst_(dev, opts) {}

  Status Build(std::vector<Interval> intervals) {
    std::vector<Point> duals;
    duals.reserve(intervals.size());
    for (const auto& iv : intervals) duals.push_back(IntervalToDual(iv));
    return pst_.Build(std::move(duals));
  }

  Status Insert(const Interval& iv) { return pst_.Insert(IntervalToDual(iv)); }
  Status Erase(const Interval& iv) { return pst_.Erase(IntervalToDual(iv)); }

  Status Stab(int64_t q, std::vector<Interval>* out,
              QueryStats* stats = nullptr) const {
    std::vector<Point> duals;
    PC_RETURN_IF_ERROR(pst_.QueryTwoSided(StabToDualQuery(q), &duals, stats));
    out->reserve(out->size() + duals.size());
    for (const auto& p : duals) out->push_back(DualToInterval(p));
    return Status::OK();
  }

  Status Destroy() { return pst_.Destroy(); }
  uint64_t size() const { return pst_.size(); }
  StorageBreakdown storage() const { return pst_.storage(); }

 private:
  DynamicPst pst_;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_STABBING_H_
