// The in-memory hierarchical plane decomposition underlying every external
// priority search tree in the paper (Sections 3-5, Figure 4).
//
// Each node ("region") keeps the top `region_size` points of its subtree's
// set by y; the residue is split at the median x into two children.  A
// node's region is therefore a rectangle: its x-range times the y-band
// between its lowest stored point and its parent's lowest stored point.
// Heap order — every stored point of a node has y above everything stored
// below it — is what makes the corner/ancestor/sibling/descendant query
// classification work.
//
// Ties are broken by record id in both coordinates, restoring the paper's
// distinct-coordinates assumption for arbitrary inputs.

#ifndef PATHCACHE_CORE_REGION_TREE_H_
#define PATHCACHE_CORE_REGION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/geometry.h"

namespace pathcache {

struct RegionNode {
  /// The region's points, sorted by descending (y, id).
  std::vector<Point> pts;
  /// Composite split key: left subtree holds (x, id) <= (split_x, split_id).
  int64_t split_x = 0;
  uint64_t split_id = 0;
  /// Smallest y value among pts (INT64_MAX when pts is empty).
  int64_t y_min = INT64_MAX;
  int32_t left = -1;
  int32_t right = -1;
  uint32_t depth = 0;

  bool is_leaf() const { return left < 0 && right < 0; }
};

/// Builds the region tree; returns nodes with the root at index 0 (empty
/// vector for an empty input).  O(n log^2 n) time, all in memory — this is
/// construction machinery; querying happens against the on-disk layout.
std::vector<RegionNode> BuildRegionTree(std::vector<Point> points,
                                        uint32_t region_size);

/// Checks heap order, x-partitioning and point conservation; tests only.
/// Returns an empty string when consistent, else a description.
std::string CheckRegionTree(const std::vector<RegionNode>& nodes,
                            size_t expected_points, uint32_t region_size);

}  // namespace pathcache

#endif  // PATHCACHE_CORE_REGION_TREE_H_
