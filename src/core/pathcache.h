// pathcache — umbrella header for the public API.
//
// A C++ library reproducing "Path Caching: A Technique for Optimal External
// Searching" (Ramaswamy & Subramanian, PODS 1994).  Everything operates on a
// PageDevice whose read/write counters realize the paper's I/O cost model.
//
// Quick map (paper anchor -> type):
//   Theorem 3.2  ExternalPst            basic path-cached PST, 2-sided
//   [IKO]        ExternalPst            with enable_path_caching = false
//   Theorem 4.3  TwoLevelPst            two-level recursive scheme
//   Theorem 4.4  TwoLevelPst            with levels > 2 (multilevel)
//   Theorem 3.3  ThreeSidedPst          3-sided queries
//   Theorem 3.4  ExtSegmentTree         stabbing via segment tree
//   Theorem 3.5  ExtIntervalTree        stabbing via interval tree
//   Theorem 5.1  DynamicPst             fully dynamic 2-sided
//   Theorem 5.2  DynamicThreeSidedPst   dynamic 3-sided
//   Section 1    StabbingIndex / DynamicStabbingIndex   interval management
//   Section 1    XSortedBaseline, BPlusTree             baselines

#ifndef PATHCACHE_CORE_PATHCACHE_H_
#define PATHCACHE_CORE_PATHCACHE_H_

#include "btree/bplus_tree.h"
#include "core/baselines.h"
#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/persist.h"
#include "core/pst_dynamic.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "core/query_stats.h"
#include "core/range_index.h"
#include "core/stabbing.h"
#include "core/three_sided.h"
#include "core/three_sided_dynamic.h"
#include "core/two_sided_index.h"
#include "io/buffer_pool.h"
#include "io/file_page_device.h"
#include "io/mem_page_device.h"
#include "util/geometry.h"
#include "util/status.h"

#endif  // PATHCACHE_CORE_PATHCACHE_H_
