#include "core/pst_common.h"

#include <cstddef>
#include <cstring>

#include "util/mathutil.h"

namespace pathcache {

uint64_t CacheHeaderBytes(uint32_t a_pages, uint32_t s_pages,
                          uint32_t anc_count, uint32_t sib_count) {
  return sizeof(CachePageHeader) + sizeof(PageId) * (a_pages + s_pages) +
         sizeof(AncInfo) * anc_count + sizeof(SibInfo) * sib_count;
}

Status WriteCacheHeader(PageDevice* dev, PageId page, const NodeCache& cache) {
  const uint64_t need = CacheHeaderBytes(
      static_cast<uint32_t>(cache.a_pages.size()),
      static_cast<uint32_t>(cache.s_pages.size()),
      static_cast<uint32_t>(cache.ancs.size()),
      static_cast<uint32_t>(cache.sibs.size()));
  if (need > dev->page_size()) {
    return Status::InvalidArgument("cache header exceeds page size");
  }
  std::vector<std::byte> buf(dev->page_size());
  CachePageHeader hdr;
  hdr.a_pages = static_cast<uint32_t>(cache.a_pages.size());
  hdr.s_pages = static_cast<uint32_t>(cache.s_pages.size());
  hdr.anc_count = static_cast<uint32_t>(cache.ancs.size());
  hdr.sib_count = static_cast<uint32_t>(cache.sibs.size());
  hdr.a_count = cache.a_count;
  hdr.s_count = cache.s_count;
  std::byte* p = buf.data();
  // Empty vectors have a null data(); memcpy forbids null even with n == 0.
  auto append = [&p](const void* src, size_t n) {
    if (n != 0) std::memcpy(p, src, n);
    p += n;
  };
  std::memcpy(p, &hdr, sizeof(hdr));
  p += sizeof(hdr);
  append(cache.a_pages.data(), cache.a_pages.size() * sizeof(PageId));
  append(cache.s_pages.data(), cache.s_pages.size() * sizeof(PageId));
  append(cache.ancs.data(), cache.ancs.size() * sizeof(AncInfo));
  append(cache.sibs.data(), cache.sibs.size() * sizeof(SibInfo));

  // Optional tail-key trailer.  It is written only when (a) the builder
  // supplied one tail per A/S page and (b) it fits in the slack after the
  // mandatory arrays.  The fit rule is derivable from the mandatory shape
  // alone, so readers know where to look, and CacheHeaderBytes /
  // FitSegmentLen deliberately exclude the trailer: segment lengths — and
  // with them the structures' counted I/O — are identical whether or not
  // tails are stored.
  const bool have_tails = cache.a_tails.size() == cache.a_pages.size() &&
                          cache.s_tails.size() == cache.s_pages.size();
  const uint64_t trailer =
      sizeof(kCacheTailMagic) +
      sizeof(int64_t) * (cache.a_pages.size() + cache.s_pages.size());
  if (have_tails && need + trailer <= dev->page_size()) {
    std::memcpy(p, &kCacheTailMagic, sizeof(kCacheTailMagic));
    p += sizeof(kCacheTailMagic);
    append(cache.a_tails.data(), cache.a_tails.size() * sizeof(int64_t));
    append(cache.s_tails.data(), cache.s_tails.size() * sizeof(int64_t));
  }
  return dev->Write(page, buf.data());
}

Status ReadCacheHeader(PageDevice* dev, PageId page, NodeCache* out) {
  // Parse straight out of the device's frame when it supports pinning; one
  // counted read either way.
  PagePin pin;
  PC_RETURN_IF_ERROR(pin.Load(dev, page));
  const std::byte* buf_data = pin.data();
  CachePageHeader hdr;
  std::memcpy(&hdr, buf_data, sizeof(hdr));
  if (CacheHeaderBytes(hdr.a_pages, hdr.s_pages, hdr.anc_count,
                       hdr.sib_count) > dev->page_size()) {
    return Status::Corruption("cache header shape exceeds page");
  }
  out->a_pages.resize(hdr.a_pages);
  out->s_pages.resize(hdr.s_pages);
  out->ancs.resize(hdr.anc_count);
  out->sibs.resize(hdr.sib_count);
  out->a_count = hdr.a_count;
  out->s_count = hdr.s_count;
  const std::byte* p = buf_data + sizeof(hdr);
  // As in WriteCacheHeader: resize(0) leaves data() null, which memcpy
  // forbids even for zero-length copies.
  auto extract = [&p](void* dst, size_t n) {
    if (n != 0) std::memcpy(dst, p, n);
    p += n;
  };
  extract(out->a_pages.data(), hdr.a_pages * sizeof(PageId));
  extract(out->s_pages.data(), hdr.s_pages * sizeof(PageId));
  extract(out->ancs.data(), hdr.anc_count * sizeof(AncInfo));
  extract(out->sibs.data(), hdr.sib_count * sizeof(SibInfo));

  // Optional tail-key trailer (see WriteCacheHeader).  Absent — page slack
  // is zeroed, so no magic — leaves the vectors empty.
  out->a_tails.clear();
  out->s_tails.clear();
  const uint64_t base = CacheHeaderBytes(hdr.a_pages, hdr.s_pages,
                                         hdr.anc_count, hdr.sib_count);
  const uint64_t trailer =
      sizeof(kCacheTailMagic) +
      sizeof(int64_t) * (static_cast<uint64_t>(hdr.a_pages) + hdr.s_pages);
  if (base + trailer <= dev->page_size()) {
    uint64_t magic = 0;
    std::memcpy(&magic, p, sizeof(magic));
    if (magic == kCacheTailMagic) {
      p += sizeof(magic);
      out->a_tails.resize(hdr.a_pages);
      out->s_tails.resize(hdr.s_pages);
      extract(out->a_tails.data(), hdr.a_pages * sizeof(int64_t));
      extract(out->s_tails.data(), hdr.s_pages * sizeof(int64_t));
    }
  }
  return Status::OK();
}

void AppendCachePagesToPlan(PageId header_page, const NodeCache& cache,
                            LayoutPlan* plan) {
  plan->Add(header_page);

  // Mirror the serialized layout of WriteCacheHeader: header struct, then
  // the A/S page-id arrays, then the AncInfo and SibInfo directories.  The
  // tail-key trailer holds no PageIds.
  const uint32_t na = static_cast<uint32_t>(cache.a_pages.size());
  const uint32_t ns = static_cast<uint32_t>(cache.s_pages.size());
  uint32_t off = sizeof(CachePageHeader);
  for (uint32_t i = 0; i < na + ns; ++i) {
    plan->AddRef(header_page, off);
    off += sizeof(PageId);
  }
  for (size_t k = 0; k < cache.ancs.size(); ++k) {
    plan->AddRef(header_page,
                 off + static_cast<uint32_t>(offsetof(AncInfo, x_next)));
    off += sizeof(AncInfo);
  }
  for (size_t m = 0; m < cache.sibs.size(); ++m) {
    plan->AddRef(header_page,
                 off + static_cast<uint32_t>(offsetof(SibInfo, left) +
                                             offsetof(NodeRef, page)));
    plan->AddRef(header_page,
                 off + static_cast<uint32_t>(offsetof(SibInfo, right) +
                                             offsetof(NodeRef, page)));
    plan->AddRef(header_page,
                 off + static_cast<uint32_t>(offsetof(SibInfo, y_next)));
    off += sizeof(SibInfo);
  }

  plan->AddChain(cache.a_pages);
  plan->AddChain(cache.s_pages);
}

uint32_t FitSegmentLen(uint32_t page_size, uint32_t want,
                       uint32_t max_contrib_per_node) {
  const uint32_t src_per_page = RecordsPerPage<SrcPoint>(page_size);
  for (uint32_t s = want; s > 1; --s) {
    // Worst case: s+1 ancestors and s siblings, each contributing up to
    // max_contrib_per_node records, stored as SrcPoint.
    const uint64_t a_recs =
        static_cast<uint64_t>(s + 1) * max_contrib_per_node;
    const uint64_t s_recs = static_cast<uint64_t>(s) * max_contrib_per_node;
    const uint32_t a_pg = static_cast<uint32_t>(CeilDiv(a_recs, src_per_page));
    const uint32_t s_pg = static_cast<uint32_t>(CeilDiv(s_recs, src_per_page));
    if (CacheHeaderBytes(a_pg, s_pg, s + 1, s) <= page_size) return s;
  }
  return 1;
}

}  // namespace pathcache
