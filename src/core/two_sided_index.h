// Common interface of the 2-sided external indexes, so the recursive
// (multi-level) scheme of Section 4 can nest any of them as its per-region
// second-level structure, and benchmarks can sweep implementations.

#ifndef PATHCACHE_CORE_TWO_SIDED_INDEX_H_
#define PATHCACHE_CORE_TWO_SIDED_INDEX_H_

#include <vector>

#include "core/pst_common.h"
#include "core/query_stats.h"
#include "util/geometry.h"
#include "util/status.h"

namespace pathcache {

class TwoSidedIndex {
 public:
  virtual ~TwoSidedIndex() = default;

  /// Bulk-builds the index; callable once per instance.
  virtual Status Build(std::vector<Point> points) = 0;

  /// Reports all points with x >= q.x_min && y >= q.y_min.
  virtual Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                               QueryStats* stats) const = 0;

  /// Frees every page owned by the index.
  virtual Status Destroy() = 0;

  virtual uint64_t size() const = 0;
  virtual StorageBreakdown storage() const = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_TWO_SIDED_INDEX_H_
