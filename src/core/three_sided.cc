#include "core/three_sided.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>
#include <unordered_set>

#include "core/persist.h"
#include "core/region_tree.h"
#include "kernels/search.h"
#include "util/mathutil.h"

namespace pathcache {

namespace {

// ---- A-cache header page -------------------------------------------------
// [AHeader][PageId pages[n]][int64 block_min_x[n]]
// optionally followed by [magic][int64 block_max_x[n]] when it fits the
// page's slack.  The max-x directory bounds the A-scan's end block exactly
// (ascending x stops in the first block whose max exceeds x_max), enabling
// batched reads; the segment-length fit rule deliberately ignores it, so
// seg_len — and the counted I/O — is the same whether or not it is stored.
struct AHeader {
  uint32_t pages = 0;
  uint32_t pad = 0;
  uint64_t count = 0;
};
static_assert(sizeof(AHeader) == 16);

constexpr uint64_t kAMaxTrailerMagic = 0x5043'414D'4158'5831ULL;

// ---- S-index page ----------------------------------------------------------
// [SIndexHeader][PageId sr[anchors]][PageId sl[anchors]]
// Anchor k points at the sibling cache covering depths [seg_start + k, d].
struct SIndexHeader {
  uint32_t anchors = 0;
  uint32_t seg_start = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(SIndexHeader) == 16);

Status ReadPointBlock(PageDevice* dev, PageId page, std::vector<Point>* out,
                      PageId* next) {
  std::vector<std::byte> buf(dev->page_size());
  PC_RETURN_IF_ERROR(dev->Read(page, buf.data()));
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  PC_RETURN_IF_ERROR(
      CheckBlockPageHeader(hdr, RecordsPerPage<Point>(dev->page_size()),
                           sizeof(Point), dev->page_size()));
  AppendBlockRecords(buf.data(), hdr, out);
  *next = hdr.next;
  return Status::OK();
}

void Bump(QueryStats* stats, uint64_t QueryStats::* role, uint64_t n = 1) {
  if (stats != nullptr) stats->*role += n;
}

void Classify(QueryStats* stats, uint64_t qualifying, uint64_t capacity) {
  if (stats == nullptr) return;
  if (qualifying >= capacity) {
    ++stats->useful;
  } else {
    ++stats->wasteful;
  }
}

bool LessByXId(const SrcPoint& a, const SrcPoint& b) {
  return LessByX(a.ToPoint(), b.ToPoint());
}

}  // namespace

ThreeSidedPst::ThreeSidedPst(PageDevice* dev, ThreeSidedPstOptions opts)
    : dev_(dev), opts_(opts) {}

Status ThreeSidedPst::Build(std::vector<Point> points) {
  if (root_.valid()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  n_ = points.size();
  const uint32_t B = RecordsPerPage<Point>(dev_->page_size());
  if (B == 0) return Status::InvalidArgument("page too small");
  region_size_ = B;
  uint32_t want = opts_.segment_len != 0 ? opts_.segment_len
                                         : std::max<uint32_t>(1, FloorLog2(B));
  seg_len_ = FitSegmentLen(dev_->page_size(), want, B);
  // The A header also needs (s+1) page ids + min-x entries to fit.
  while (seg_len_ > 1) {
    const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());
    const uint64_t a_recs = static_cast<uint64_t>(seg_len_ + 1) * B;
    const uint64_t a_pg = CeilDiv(a_recs, src_cap);
    const uint64_t a_hdr = sizeof(AHeader) + a_pg * (sizeof(PageId) + 8);
    const uint64_t s_idx =
        sizeof(SIndexHeader) + 2ULL * (seg_len_ + 1) * sizeof(PageId);
    if (a_hdr <= dev_->page_size() && s_idx <= dev_->page_size()) break;
    --seg_len_;
  }
  if (n_ == 0) return Status::OK();

  auto nodes = BuildRegionTree(std::move(points), region_size_);

  std::vector<Pst3NodeRec> recs(nodes.size());
  std::vector<int32_t> lefts(nodes.size()), rights(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    // Points pages pack on y (format v3): the descend scan's stop key.
    auto info = BuildBlockList<Point>(
        dev_, std::span<const Point>(nodes[i].pts), offsetof(Point, y));
    if (!info.ok()) return info.status();
    for (PageId p : info.value().pages) owned_pages_.push_back(p);
    storage_.points += info.value().pages.size();

    Pst3NodeRec& r = recs[i];
    r.split_x = nodes[i].split_x;
    r.split_id = nodes[i].split_id;
    r.y_min = nodes[i].y_min;
    r.points_page = info.value().ref.head;
    r.count = static_cast<uint32_t>(nodes[i].pts.size());
    r.depth = nodes[i].depth;
    lefts[i] = nodes[i].left;
    rights[i] = nodes[i].right;
    if (opts_.enable_path_caching) {
      auto ah = dev_->Allocate();
      if (!ah.ok()) return ah.status();
      auto si = dev_->Allocate();
      if (!si.ok()) return si.status();
      r.a_header = ah.value();
      r.s_index = si.value();
      owned_pages_.push_back(ah.value());
      owned_pages_.push_back(si.value());
      storage_.cache_headers += 2;
    }
  }

  auto tree = WriteSkeletalTree<Pst3NodeRec>(dev_, recs, lefts, rights, 0);
  if (!tree.ok()) return tree.status();
  root_ = tree.value().root;
  storage_.skeletal = tree.value().pages;
  {
    std::unordered_set<PageId> seen;
    for (const NodeRef& ref : tree.value().refs) {
      if (ref.valid() && seen.insert(ref.page).second) {
        owned_pages_.push_back(ref.page);
      }
    }
  }
  if (!opts_.enable_path_caching) return Status::OK();
  const auto& refs = tree.value().refs;

  std::vector<std::byte> buf(dev_->page_size());
  std::vector<int32_t> chain;
  struct Frame {
    int32_t idx;
    uint8_t stage;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.stage == 0) {
      f.stage = 1;
      const int32_t v = f.idx;
      chain.push_back(v);
      const uint32_t d = nodes[v].depth;
      const uint32_t seg_start = (d / seg_len_) * seg_len_;

      // --- A-cache: segment-local ancestors (incl. self), ascending x,
      // src = depth - seg_start, plus a per-block min-x directory. ---
      std::vector<SrcPoint> a_recs;
      for (uint32_t j = seg_start; j <= d; ++j) {
        for (const Point& p : nodes[chain[j]].pts) {
          a_recs.push_back(SrcPoint::From(p, j - seg_start));
        }
      }
      std::sort(a_recs.begin(), a_recs.end(), LessByXId);
      // A-cache is ascending x; x is the scan/stop key.
      auto a_info = BuildBlockList<SrcPoint>(
          dev_, std::span<const SrcPoint>(a_recs), offsetof(SrcPoint, x));
      if (!a_info.ok()) return a_info.status();
      for (PageId p : a_info.value().pages) owned_pages_.push_back(p);
      storage_.cache_blocks += a_info.value().pages.size();
      {
        const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());
        std::memset(buf.data(), 0, buf.size());
        AHeader ah;
        ah.pages = static_cast<uint32_t>(a_info.value().pages.size());
        ah.count = a_recs.size();
        std::byte* p = buf.data();
        std::memcpy(p, &ah, sizeof(ah));
        p += sizeof(ah);
        std::memcpy(p, a_info.value().pages.data(),
                    ah.pages * sizeof(PageId));
        p += ah.pages * sizeof(PageId);
        for (uint32_t bi = 0; bi < ah.pages; ++bi) {
          int64_t mn = a_recs[static_cast<size_t>(bi) * src_cap].x;
          std::memcpy(p + bi * 8, &mn, 8);
        }
        p += ah.pages * 8;
        const uint64_t used = static_cast<uint64_t>(p - buf.data());
        if (used + 8 + ah.pages * 8ULL <= dev_->page_size()) {
          std::memcpy(p, &kAMaxTrailerMagic, 8);
          p += 8;
          for (uint32_t bi = 0; bi < ah.pages; ++bi) {
            const size_t last = std::min<size_t>(
                a_recs.size(), (static_cast<size_t>(bi) + 1) * src_cap);
            int64_t mx = a_recs[last - 1].x;
            std::memcpy(p + bi * 8, &mx, 8);
          }
        }
        PC_RETURN_IF_ERROR(dev_->Write(recs[v].a_header, buf.data()));
      }

      // --- Anchored sibling caches: for every anchor depth k, the right
      // siblings (and, separately, left siblings) attached at depths
      // [seg_start + k, d]. ---
      const uint32_t anchors = d - seg_start + 1;
      std::vector<PageId> sr_pages(anchors, kInvalidPageId);
      std::vector<PageId> sl_pages(anchors, kInvalidPageId);
      for (uint32_t k = 0; k < anchors; ++k) {
        for (int side = 0; side < 2; ++side) {
          NodeCache cache;
          std::vector<SrcPoint> s_recs;
          for (uint32_t j = std::max<uint32_t>(1, seg_start + k); j <= d;
               ++j) {
            const int32_t u = chain[j];
            const int32_t parent = chain[j - 1];
            int32_t sib = -1;
            if (side == 0) {  // right siblings of a left-child path node
              if (nodes[parent].left == u) sib = nodes[parent].right;
            } else {  // left siblings of a right-child path node
              if (nodes[parent].right == u) sib = nodes[parent].left;
            }
            if (sib < 0) continue;
            const uint32_t ord = static_cast<uint32_t>(cache.sibs.size());
            for (const Point& p : nodes[sib].pts) {
              s_recs.push_back(SrcPoint::From(p, ord));
            }
            cache.sibs.push_back(SibInfo{
                nodes[sib].left >= 0 ? refs[nodes[sib].left] : kNullNodeRef,
                nodes[sib].right >= 0 ? refs[nodes[sib].right] : kNullNodeRef,
                kInvalidPageId,
                static_cast<uint32_t>(nodes[sib].pts.size()),
                static_cast<uint32_t>(nodes[sib].pts.size())});
          }
          if (cache.sibs.empty()) continue;
          std::sort(s_recs.begin(), s_recs.end(),
                    [](const SrcPoint& a, const SrcPoint& b) {
                      return GreaterByY(a.ToPoint(), b.ToPoint());
                    });
          auto s_info = BuildBlockList<SrcPoint>(
              dev_, std::span<const SrcPoint>(s_recs), offsetof(SrcPoint, y));
          if (!s_info.ok()) return s_info.status();
          cache.s_pages = s_info.value().pages;
          cache.s_count = s_recs.size();
          {
            const uint32_t src_cap =
                RecordsPerPage<SrcPoint>(dev_->page_size());
            for (size_t pg = 0; pg < cache.s_pages.size(); ++pg) {
              const size_t last = std::min(
                  s_recs.size(), (pg + 1) * static_cast<size_t>(src_cap));
              cache.s_tails.push_back(s_recs[last - 1].y);
            }
          }
          auto hp = dev_->Allocate();
          if (!hp.ok()) return hp.status();
          PC_RETURN_IF_ERROR(WriteCacheHeader(dev_, hp.value(), cache));
          owned_pages_.push_back(hp.value());
          for (PageId p : cache.s_pages) owned_pages_.push_back(p);
          storage_.cache_blocks += cache.s_pages.size() + 1;
          (side == 0 ? sr_pages : sl_pages)[k] = hp.value();
        }
      }
      {
        std::memset(buf.data(), 0, buf.size());
        SIndexHeader sh;
        sh.anchors = anchors;
        sh.seg_start = seg_start;
        std::byte* p = buf.data();
        std::memcpy(p, &sh, sizeof(sh));
        p += sizeof(sh);
        std::memcpy(p, sr_pages.data(), anchors * sizeof(PageId));
        p += anchors * sizeof(PageId);
        std::memcpy(p, sl_pages.data(), anchors * sizeof(PageId));
        PC_RETURN_IF_ERROR(dev_->Write(recs[v].s_index, buf.data()));
      }

      if (nodes[v].right >= 0) stack.push_back({nodes[v].right, 0});
      if (nodes[v].left >= 0) stack.push_back({nodes[v].left, 0});
    } else {
      chain.pop_back();
      stack.pop_back();
    }
  }
  return Status::OK();
}

Status ThreeSidedPst::DescendPath(
    int64_t x, int64_t y_min, bool right_path, std::vector<PathEnt>* path,
    SkeletalTreeReader<Pst3NodeRec>* reader) const {
  const uint64_t limit = SkeletalWalkLimit<Pst3NodeRec>(dev_);
  uint64_t steps = 0;
  NodeRef cur = root_;
  for (;;) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(steps++, limit));
    PathEnt ent;
    ent.ref = cur;
    PC_RETURN_IF_ERROR(reader->Read(cur, &ent.rec));
    path->push_back(ent);
    if (y_min > ent.rec.y_min) break;
    // Tie-handling differs per boundary: duplicate x values may straddle a
    // split, so the left path keeps x == split on its right (siblings all
    // have x >= x1) while the right path keeps x == split on its left
    // (siblings all have x <= x2).
    const bool go_left =
        right_path ? (x < ent.rec.split_x) : (x <= ent.rec.split_x);
    NodeRef next = go_left ? ent.rec.left : ent.rec.right;
    if (!next.valid()) break;
    cur = next;
  }
  return Status::OK();
}

Status ThreeSidedPst::ProcessCache(const ThreeSidedQuery& q,
                                   const PathEnt& ent, bool right_side,
                                   size_t fork,
                                   std::vector<NodeRef>* descend_todo,
                                   std::vector<Point>* out,
                                   QueryStats* stats) const {
  const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());
  const uint32_t d = ent.rec.depth;
  const uint32_t seg_start = (d / seg_len_) * seg_len_;

  // --- A-cache ---
  {
    std::vector<std::byte> buf(dev_->page_size());
    PC_RETURN_IF_ERROR(dev_->Read(ent.rec.a_header, buf.data()));
    Bump(stats, &QueryStats::cache);
    Bump(stats, &QueryStats::wasteful);
    AHeader ah;
    std::memcpy(&ah, buf.data(), sizeof(ah));
    if (sizeof(ah) + static_cast<uint64_t>(ah.pages) * (sizeof(PageId) + 8) >
        dev_->page_size()) {
      return Status::Corruption("A-cache header block directory exceeds page");
    }
    std::vector<PageId> pages(ah.pages);
    std::vector<int64_t> min_x(ah.pages);
    std::memcpy(pages.data(), buf.data() + sizeof(ah),
                ah.pages * sizeof(PageId));
    std::memcpy(min_x.data(),
                buf.data() + sizeof(ah) + ah.pages * sizeof(PageId),
                ah.pages * 8);
    // Optional max-x trailer (see AHeader): lets us bound the scan's end
    // block up front and fetch the exact [start..end] range batched.
    std::vector<int64_t> max_x;
    {
      const uint64_t base =
          sizeof(ah) + static_cast<uint64_t>(ah.pages) * (sizeof(PageId) + 8);
      if (base + 8 + ah.pages * 8ULL <= dev_->page_size()) {
        uint64_t magic = 0;
        std::memcpy(&magic, buf.data() + base, 8);
        if (magic == kAMaxTrailerMagic) {
          max_x.resize(ah.pages);
          std::memcpy(max_x.data(), buf.data() + base + 8, ah.pages * 8);
        }
      }
    }
    // Start at the last block whose minimum is strictly below x_min: a
    // block opening exactly at x_min may be preceded by equal-x records at
    // the tail of the previous block (ties on x are legal).
    uint32_t start = 0;
    for (uint32_t bi = 1; bi < ah.pages; ++bi) {
      if (min_x[bi] < q.x_min) start = bi;
    }
    bool stop = false;
    auto scan_a_block = [&](std::span<const SrcPoint> recs) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      for (const SrcPoint& sp : recs) {
        if (sp.x > q.x_max) {
          stop = true;
          break;
        }
        if (sp.x < q.x_min) continue;
        // On the right path, records of shared-prefix ancestors were
        // already reported while walking the left path's caches.
        if (right_side && seg_start + sp.src <= fork) continue;
        if (sp.y >= q.y_min) {
          out->push_back(sp.ToPoint());
          ++qual;
        }
      }
      Classify(stats, qual, src_cap);
    };
    // v3 packed pages: stop probe over the dense ascending-x key array,
    // qualifying records reassembled field-wise.  Same records, same stop,
    // same accounting as scan_a_block.
    auto scan_a_packed = [&](const PackedPageView<SrcPoint>& v) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      const size_t limit =
          kernels::FindFirstAbove(v.keys, sizeof(int64_t), v.count, q.x_max);
      if (limit < v.count) stop = true;
      for (size_t i = 0; i < limit; ++i) {
        if (v.keys[i] < q.x_min) continue;
        if (right_side &&
            seg_start + v.U32Field(i, offsetof(SrcPoint, src)) <= fork) {
          continue;
        }
        const int64_t y = v.I64Field(i, offsetof(SrcPoint, y));
        if (y >= q.y_min) {
          out->push_back(
              Point{v.keys[i], y, v.U64Field(i, offsetof(SrcPoint, id))});
          ++qual;
        }
      }
      Classify(stats, qual, src_cap);
    };
    if (opts_.enable_readahead && !max_x.empty() && ah.pages > 0) {
      // Ascending x stops in the first block whose maximum exceeds x_max,
      // so the page-at-a-time scan reads exactly blocks [start..end].
      uint32_t end = ah.pages - 1;
      for (uint32_t bi = start; bi < ah.pages; ++bi) {
        if (max_x[bi] > q.x_max) {
          end = bi;
          break;
        }
      }
      BlockListCursor<SrcPoint> cur(
          dev_,
          std::span<const PageId>(pages.data() + start, end - start + 1));
      std::vector<SrcPoint> recs;
      while (!cur.done()) {
        const std::byte* page = nullptr;
        BlockPageHeader bh;
        PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
        if (codec::IsPacked(bh.count) &&
            codec::KeyOffset(bh.count) == offsetof(SrcPoint, x)) {
          scan_a_packed(PackedPageView<SrcPoint>::From(page, bh));
        } else {
          recs.clear();
          AppendBlockRecords(page, bh, &recs);
          scan_a_block(recs);
        }
      }
    } else {
      // Records scanned in place via a pinned frame: one counted read per
      // page either way.
      BlockPageView<SrcPoint> view;
      for (uint32_t bi = start; bi < ah.pages && !stop; ++bi) {
        PC_RETURN_IF_ERROR(view.Load(dev_, pages[bi]));
        if (view.is_packed() && view.key_offset() == offsetof(SrcPoint, x)) {
          scan_a_packed(view.packed());
        } else {
          scan_a_block(view.records());
        }
      }
    }
  }

  // --- Anchored sibling cache ---
  {
    // Relevant siblings hang at depths >= fork + 2: at depth fork + 1 the
    // "sibling" is the other path's node, which reports via its own caches.
    uint32_t k =
        (fork + 2 > seg_start) ? static_cast<uint32_t>(fork + 2 - seg_start)
                               : 0;
    if (seg_start + k > d) return Status::OK();  // whole segment above fork
    std::vector<std::byte> buf(dev_->page_size());
    PC_RETURN_IF_ERROR(dev_->Read(ent.rec.s_index, buf.data()));
    Bump(stats, &QueryStats::cache);
    Bump(stats, &QueryStats::wasteful);
    SIndexHeader sh;
    std::memcpy(&sh, buf.data(), sizeof(sh));
    if (sizeof(sh) + 2ULL * sh.anchors * sizeof(PageId) > dev_->page_size()) {
      return Status::Corruption("S-index anchor directory exceeds page");
    }
    if (k >= sh.anchors) return Status::OK();
    PageId hdr_page;
    const std::byte* base = buf.data() + sizeof(sh);
    if (!right_side) {
      std::memcpy(&hdr_page, base + k * sizeof(PageId), sizeof(PageId));
    } else {
      std::memcpy(&hdr_page,
                  base + (sh.anchors + k) * sizeof(PageId), sizeof(PageId));
    }
    if (hdr_page == kInvalidPageId) return Status::OK();
    NodeCache cache;
    PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, hdr_page, &cache));
    Bump(stats, &QueryStats::cache);
    Bump(stats, &QueryStats::wasteful);

    std::vector<uint32_t> sib_qual(cache.sibs.size(), 0);
    bool stop = false;
    bool bad_src = false;
    auto scan_s_block = [&](std::span<const SrcPoint> recs) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      // Vectorized hoist of the per-record stop branch (first y < y_min);
      // the prefix before the stop record is scanned exactly as before,
      // including the unconditional sibling tally.
      const size_t limit =
          recs.empty() ? 0
                       : kernels::FindFirstBelow(&recs[0].y, sizeof(SrcPoint),
                                                 recs.size(), q.y_min);
      if (limit < recs.size()) stop = true;
      for (const SrcPoint& sp : recs.first(limit)) {
        if (sp.src >= sib_qual.size()) {
          bad_src = true;
          stop = true;
          break;
        }
        ++sib_qual[sp.src];
        if (q.Contains(sp.ToPoint())) {
          out->push_back(sp.ToPoint());
          ++qual;
        }
      }
      Classify(stats, qual, src_cap);
    };
    auto scan_s_packed = [&](const PackedPageView<SrcPoint>& v) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      const size_t limit =
          kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, q.y_min);
      if (limit < v.count) stop = true;
      for (size_t i = 0; i < limit; ++i) {
        const uint32_t src = v.U32Field(i, offsetof(SrcPoint, src));
        if (src >= sib_qual.size()) {
          bad_src = true;
          stop = true;
          break;
        }
        ++sib_qual[src];
        const Point p{v.I64Field(i, offsetof(SrcPoint, x)), v.keys[i],
                      v.U64Field(i, offsetof(SrcPoint, id))};
        if (q.Contains(p)) {
          out->push_back(p);
          ++qual;
        }
      }
      Classify(stats, qual, src_cap);
    };
    if (opts_.enable_readahead &&
        cache.s_tails.size() == cache.s_pages.size()) {
      // Descending y stops in the first page whose tail (minimum y) falls
      // below y_min: fetch exactly that prefix, batched.
      const size_t n_tails = cache.s_tails.size();
      const size_t hit = kernels::FindFirstBelow(
          cache.s_tails.data(), sizeof(int64_t), n_tails, q.y_min);
      const size_t prefix = hit == n_tails ? n_tails : hit + 1;
      BlockListCursor<SrcPoint> cur(
          dev_, std::span<const PageId>(cache.s_pages.data(), prefix));
      std::vector<SrcPoint> recs;
      while (!cur.done()) {
        const std::byte* page = nullptr;
        BlockPageHeader bh;
        PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
        if (codec::IsPacked(bh.count) &&
            codec::KeyOffset(bh.count) == offsetof(SrcPoint, y)) {
          scan_s_packed(PackedPageView<SrcPoint>::From(page, bh));
        } else {
          recs.clear();
          AppendBlockRecords(page, bh, &recs);
          scan_s_block(recs);
        }
      }
    } else {
      BlockPageView<SrcPoint> view;
      for (PageId p : cache.s_pages) {
        if (stop) break;
        PC_RETURN_IF_ERROR(view.Load(dev_, p));
        if (view.is_packed() && view.key_offset() == offsetof(SrcPoint, y)) {
          scan_s_packed(view.packed());
        } else {
          scan_s_block(view.records());
        }
      }
    }
    if (bad_src) {
      return Status::Corruption(
          "anchored cache record names a sibling ordinal beyond the cache's "
          "sibling table");
    }
    for (size_t i = 0; i < cache.sibs.size(); ++i) {
      if (sib_qual[i] == cache.sibs[i].total) {
        if (cache.sibs[i].left.valid()) {
          descend_todo->push_back(cache.sibs[i].left);
        }
        if (cache.sibs[i].right.valid()) {
          descend_todo->push_back(cache.sibs[i].right);
        }
      }
    }
  }
  return Status::OK();
}

Status ThreeSidedPst::DescendDescendants(
    const ThreeSidedQuery& q, std::vector<NodeRef> todo,
    SkeletalTreeReader<Pst3NodeRec>* reader, std::vector<Point>* out,
    QueryStats* stats) const {
  const uint32_t pt_cap = RecordsPerPage<Point>(dev_->page_size());
  const uint64_t limit = SkeletalWalkLimit<Pst3NodeRec>(dev_);
  uint64_t steps = 0;
  while (!todo.empty()) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(steps++, limit));
    NodeRef ref = todo.back();
    todo.pop_back();
    uint64_t nav_before = reader->pages_read();
    Pst3NodeRec rec;
    PC_RETURN_IF_ERROR(reader->Read(ref, &rec));
    Bump(stats, &QueryStats::descendant, reader->pages_read() - nav_before);
    Bump(stats, &QueryStats::wasteful, reader->pages_read() - nav_before);

    // rec.y_min >= q.y_min guarantees the early stop never fires, so the
    // whole chain is consumed and can be fetched with batched readahead.
    bool all = true;
    if (opts_.enable_readahead && rec.y_min >= q.y_min) {
      BlockListCursor<Point> cur(dev_, rec.points_page);
      cur.EnableChainReadahead();
      std::vector<Point> pts;
      while (!cur.done()) {
        const std::byte* page = nullptr;
        BlockPageHeader bh;
        PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
        Bump(stats, &QueryStats::descendant);
        uint64_t qual = 0;
        if (codec::IsPacked(bh.count) &&
            codec::KeyOffset(bh.count) == offsetof(Point, y)) {
          const PackedPageView<Point> v = PackedPageView<Point>::From(page, bh);
          for (size_t i = 0; i < v.count; ++i) {
            const Point p{v.I64Field(i, offsetof(Point, x)), v.keys[i],
                          v.U64Field(i, offsetof(Point, id))};
            if (q.Contains(p)) {
              out->push_back(p);
              ++qual;
            }
          }
        } else {
          pts.clear();
          AppendBlockRecords(page, bh, &pts);
          for (const Point& p : pts) {
            if (q.Contains(p)) {
              out->push_back(p);
              ++qual;
            }
          }
        }
        Classify(stats, qual, pt_cap);
      }
    } else {
      // Early-stopping scan: records filtered in place via a pinned frame.
      BlockPageView<Point> view;
      PageId page = rec.points_page;
      uint64_t walked = 0;
      while (page != kInvalidPageId && all) {
        PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
        PC_RETURN_IF_ERROR(view.Load(dev_, page));
        Bump(stats, &QueryStats::descendant);
        uint64_t qual = 0;
        if (view.is_packed() && view.key_offset() == offsetof(Point, y)) {
          const PackedPageView<Point> v = view.packed();
          const size_t lim = kernels::FindFirstBelow(v.keys, sizeof(int64_t),
                                                     v.count, q.y_min);
          if (lim < v.count) all = false;
          for (size_t i = 0; i < lim; ++i) {
            const Point p{v.I64Field(i, offsetof(Point, x)), v.keys[i],
                          v.U64Field(i, offsetof(Point, id))};
            if (q.Contains(p)) {
              out->push_back(p);
              ++qual;
            }
          }
        } else {
          const auto recs = view.records();
          const size_t lim =
              recs.empty() ? 0
                           : kernels::FindFirstBelow(&recs[0].y, sizeof(Point),
                                                     recs.size(), q.y_min);
          if (lim < recs.size()) all = false;
          for (const Point& p : recs.first(lim)) {
            if (q.Contains(p)) {
              out->push_back(p);
              ++qual;
            }
          }
        }
        Classify(stats, qual, pt_cap);
        page = view.next();
      }
    }
    if (all) {
      if (rec.left.valid()) todo.push_back(rec.left);
      if (rec.right.valid()) todo.push_back(rec.right);
    }
  }
  return Status::OK();
}

Status ThreeSidedPst::QueryUncached(const ThreeSidedQuery& q,
                                    const std::vector<PathEnt>& p1,
                                    const std::vector<PathEnt>& p2,
                                    size_t fork,
                                    SkeletalTreeReader<Pst3NodeRec>* reader,
                                    std::vector<Point>* out,
                                    QueryStats* stats) const {
  const uint32_t pt_cap = RecordsPerPage<Point>(dev_->page_size());
  std::vector<NodeRef> descend_todo;
  auto scan_node = [&](const Pst3NodeRec& rec,
                       uint64_t QueryStats::* role) -> Status {
    // Always a full-chain read, so chain readahead is exact.
    std::vector<Point> pts;
    if (opts_.enable_readahead) {
      BlockListCursor<Point> cur(dev_, rec.points_page);
      cur.EnableChainReadahead();
      while (!cur.done()) {
        PC_RETURN_IF_ERROR(cur.NextBlock(&pts));
        Bump(stats, role);
      }
    } else {
      PageId page = rec.points_page;
      uint64_t walked = 0;
      while (page != kInvalidPageId) {
        PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
        PageId next;
        PC_RETURN_IF_ERROR(ReadPointBlock(dev_, page, &pts, &next));
        Bump(stats, role);
        page = next;
      }
    }
    uint64_t qual = 0;
    for (const Point& p : pts) {
      if (q.Contains(p)) {
        out->push_back(p);
        ++qual;
      }
    }
    Classify(stats, qual, pt_cap);
    return Status::OK();
  };

  // Path nodes: the shared prefix once, then both tails.
  for (size_t i = 0; i < p1.size(); ++i) {
    PC_RETURN_IF_ERROR(scan_node(
        p1[i].rec,
        i + 1 == p1.size() ? &QueryStats::corner : &QueryStats::ancestor));
  }
  for (size_t i = fork + 1; i < p2.size(); ++i) {
    PC_RETURN_IF_ERROR(scan_node(
        p2[i].rec,
        i + 1 == p2.size() ? &QueryStats::corner : &QueryStats::ancestor));
  }

  // Inner siblings below the fork.
  auto visit_sibling = [&](NodeRef sib) -> Status {
    uint64_t nav_before = reader->pages_read();
    Pst3NodeRec rec;
    PC_RETURN_IF_ERROR(reader->Read(sib, &rec));
    Bump(stats, &QueryStats::sibling, reader->pages_read() - nav_before);
    Bump(stats, &QueryStats::wasteful, reader->pages_read() - nav_before);
    std::vector<Point> pts;
    if (opts_.enable_readahead) {
      BlockListCursor<Point> cur(dev_, rec.points_page);
      cur.EnableChainReadahead();
      while (!cur.done()) {
        PC_RETURN_IF_ERROR(cur.NextBlock(&pts));
        Bump(stats, &QueryStats::sibling);
      }
    } else {
      PageId page = rec.points_page;
      uint64_t walked = 0;
      while (page != kInvalidPageId) {
        PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
        PageId next;
        PC_RETURN_IF_ERROR(ReadPointBlock(dev_, page, &pts, &next));
        Bump(stats, &QueryStats::sibling);
        page = next;
      }
    }
    uint64_t qual = 0, y_ok = 0;
    for (const Point& p : pts) {
      if (p.y >= q.y_min) ++y_ok;
      if (q.Contains(p)) {
        out->push_back(p);
        ++qual;
      }
    }
    Classify(stats, qual, pt_cap);
    if (y_ok == rec.count) {
      if (rec.left.valid()) descend_todo.push_back(rec.left);
      if (rec.right.valid()) descend_todo.push_back(rec.right);
    }
    return Status::OK();
  };
  // Start at fork + 2: the node at depth fork + 1 has the other path's node
  // as its "sibling", and that one reports through its own path walk.
  for (size_t i = fork + 2; i < p1.size(); ++i) {
    if (p1[i - 1].rec.left == p1[i].ref && p1[i - 1].rec.right.valid()) {
      PC_RETURN_IF_ERROR(visit_sibling(p1[i - 1].rec.right));
    }
  }
  for (size_t i = fork + 2; i < p2.size(); ++i) {
    if (p2[i - 1].rec.right == p2[i].ref && p2[i - 1].rec.left.valid()) {
      PC_RETURN_IF_ERROR(visit_sibling(p2[i - 1].rec.left));
    }
  }
  return DescendDescendants(q, std::move(descend_todo), reader, out, stats);
}

Status ThreeSidedPst::QueryThreeSided(const ThreeSidedQuery& q,
                                      std::vector<Point>* out,
                                      QueryStats* stats) const {
  if (!root_.valid() || q.x_min > q.x_max) {
    if (stats != nullptr) stats->records_reported = 0;
    return Status::OK();
  }
  SkeletalTreeReader<Pst3NodeRec> reader(dev_);
  std::vector<PathEnt> p1, p2;
  PC_RETURN_IF_ERROR(
      DescendPath(q.x_min, q.y_min, /*right_path=*/false, &p1, &reader));
  reader.InvalidateCache();
  PC_RETURN_IF_ERROR(
      DescendPath(q.x_max, q.y_min, /*right_path=*/true, &p2, &reader));
  Bump(stats, &QueryStats::navigation, reader.pages_read());
  Bump(stats, &QueryStats::wasteful, reader.pages_read());

  size_t fork = 0;
  while (fork + 1 < p1.size() && fork + 1 < p2.size() &&
         p1[fork + 1].ref == p2[fork + 1].ref) {
    ++fork;
  }

  Status s;
  if (!opts_.enable_path_caching) {
    s = QueryUncached(q, p1, p2, fork, &reader, out, stats);
  } else {
    std::vector<NodeRef> descend_todo;
    const size_t c1 = p1.size() - 1;
    for (size_t i = 0; i < c1; ++i) {
      if (i % seg_len_ == seg_len_ - 1) {
        PC_RETURN_IF_ERROR(ProcessCache(q, p1[i], /*right_side=*/false, fork,
                                        &descend_todo, out, stats));
      }
    }
    PC_RETURN_IF_ERROR(ProcessCache(q, p1[c1], /*right_side=*/false, fork,
                                    &descend_todo, out, stats));
    const size_t c2 = p2.size() - 1;
    if (!(c2 == c1 && p2[c2].ref == p1[c1].ref)) {
      for (size_t i = fork + 1; i < c2; ++i) {
        if (i % seg_len_ == seg_len_ - 1) {
          PC_RETURN_IF_ERROR(ProcessCache(q, p2[i], /*right_side=*/true, fork,
                                          &descend_todo, out, stats));
        }
      }
      if (c2 > fork) {
        PC_RETURN_IF_ERROR(ProcessCache(q, p2[c2], /*right_side=*/true, fork,
                                        &descend_todo, out, stats));
      }
    }
    s = DescendDescendants(q, std::move(descend_todo), &reader, out, stats);
  }
  if (stats != nullptr) stats->records_reported = out->size();
  return s;
}

Status ThreeSidedPst::Destroy() {
  for (PageId p : owned_pages_) PC_RETURN_IF_ERROR(dev_->Free(p));
  owned_pages_.clear();
  root_ = kNullNodeRef;
  n_ = 0;
  storage_ = StorageBreakdown{};
  return Status::OK();
}

Result<PageId> ThreeSidedPst::Save() {
  auto list =
      BuildBlockList<PageId>(dev_, std::span<const PageId>(owned_pages_));
  if (!list.ok()) return list.status();
  auto mp = dev_->Allocate();
  if (!mp.ok()) return mp.status();

  PstManifestHeader hdr;
  hdr.magic = kThreeSidedPstMagic;
  hdr.n = n_;
  hdr.root = root_;
  hdr.region_size = region_size_;
  hdr.seg_len = seg_len_;
  hdr.caching = opts_.enable_path_caching ? 1 : 0;
  hdr.skeletal = storage_.skeletal;
  hdr.points_pages = storage_.points;
  hdr.cache_headers = storage_.cache_headers;
  hdr.cache_blocks = storage_.cache_blocks;
  hdr.owned_head = list.value().ref.head;
  hdr.owned_count = owned_pages_.size();
  PC_RETURN_IF_ERROR(internal::WriteManifestHeader(dev_, mp.value(), hdr));

  owned_pages_.push_back(mp.value());
  for (PageId p : list.value().pages) owned_pages_.push_back(p);
  return mp.value();
}

Status ThreeSidedPst::Open(PageId manifest) {
  if (root_.valid() || !owned_pages_.empty()) {
    return Status::FailedPrecondition("Open on a non-empty structure");
  }
  PstManifestHeader hdr;
  std::vector<PageId> owned, chain;
  PC_RETURN_IF_ERROR(internal::ReadManifest(
      dev_, manifest, kThreeSidedPstMagic, &hdr, &owned, nullptr, &chain));
  n_ = hdr.n;
  root_ = hdr.root;
  region_size_ = hdr.region_size;
  seg_len_ = hdr.seg_len;
  opts_.enable_path_caching = hdr.caching != 0;
  storage_ = StorageBreakdown{};
  storage_.skeletal = hdr.skeletal;
  storage_.points = hdr.points_pages;
  storage_.cache_headers = hdr.cache_headers;
  storage_.cache_blocks = hdr.cache_blocks;
  owned_pages_ = std::move(owned);
  for (PageId p : chain) owned_pages_.push_back(p);
  return Status::OK();
}

Status ThreeSidedPst::CheckStructure() const {
  if (!root_.valid()) {
    return n_ == 0 ? Status::OK()
                   : Status::Corruption("no root for non-empty structure");
  }
  SkeletalTreeReader<Pst3NodeRec> reader(dev_);
  const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());
  const uint64_t walk_limit = SkeletalWalkLimit<Pst3NodeRec>(dev_);
  uint64_t walk_steps = 0;

  // DFS with an explicit unwind marker so the root-to-node chain is in hand
  // at every visit — the caches replicate path-dependent state (ancestor
  // counts, sibling refs) that can only be validated against the live path.
  struct ChainEnt {
    Pst3NodeRec rec;
    int8_t side;  // 0 = left child of its parent, 1 = right, -1 = root
  };
  struct Item {
    NodeRef ref;
    int8_t side = -1;
    int64_t parent_y_min = INT64_MAX;
    bool has_x_lo = false, has_x_hi = false;
    int64_t x_lo = 0, x_hi = 0;  // composite bounds via (x, id)
    uint64_t x_lo_id = 0, x_hi_id = 0;
    bool unwind = false;
  };
  std::vector<ChainEnt> chain;
  std::vector<Item> stack;
  stack.push_back(Item{root_});
  uint64_t total = 0;
  std::vector<std::byte> buf(dev_->page_size());

  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (it.unwind) {
      chain.pop_back();
      continue;
    }
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(walk_steps++, walk_limit));

    Pst3NodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(it.ref, &rec));
    const uint32_t depth = static_cast<uint32_t>(chain.size());
    if (rec.depth != depth) return Status::Corruption("depth mismatch");
    chain.push_back(ChainEnt{rec, it.side});
    {
      Item unwind;
      unwind.unwind = true;
      stack.push_back(unwind);
    }

    // Points chain: count, descending-(y,id) order, range and heap checks.
    std::vector<Point> pts;
    PC_RETURN_IF_ERROR(ReadBlockChain<Point>(dev_, rec.points_page, &pts));
    if (pts.size() != rec.count) {
      return Status::Corruption("points chain count mismatch");
    }
    if (pts.empty()) return Status::Corruption("empty region node");
    for (size_t i = 0; i < pts.size(); ++i) {
      if (i > 0 && !GreaterByY(pts[i - 1], pts[i])) {
        return Status::Corruption("points not y-descending");
      }
      if (pts[i].y > it.parent_y_min) {
        return Status::Corruption("heap order violated");
      }
      auto key_le = [](int64_t ax, uint64_t aid, int64_t bx, uint64_t bid) {
        if (ax != bx) return ax < bx;
        return aid <= bid;
      };
      if (it.has_x_lo && key_le(pts[i].x, pts[i].id, it.x_lo, it.x_lo_id)) {
        return Status::Corruption("point left of subtree x-range");
      }
      if (it.has_x_hi && !key_le(pts[i].x, pts[i].id, it.x_hi, it.x_hi_id)) {
        return Status::Corruption("point right of subtree x-range");
      }
    }
    if (rec.y_min != pts.back().y) return Status::Corruption("y_min stale");
    total += pts.size();
    const bool internal = rec.left.valid() || rec.right.valid();
    if (internal && pts.size() != region_size_) {
      return Status::Corruption("internal region not full");
    }

    if (!opts_.enable_path_caching) {
      if (rec.a_header != kInvalidPageId || rec.s_index != kInvalidPageId) {
        return Status::Corruption("cache pages on a caching-off structure");
      }
    } else {
      if (rec.a_header == kInvalidPageId || rec.s_index == kInvalidPageId) {
        return Status::Corruption("missing cache pages");
      }
      const uint32_t seg_start = (depth / seg_len_) * seg_len_;

      // --- A-cache: counts per segment-local ancestor, ascending-(x, id)
      // order, min-x directory, optional max-x trailer. ---
      PC_RETURN_IF_ERROR(dev_->Read(rec.a_header, buf.data()));
      AHeader ah;
      std::memcpy(&ah, buf.data(), sizeof(ah));
      if (sizeof(ah) + ah.pages * (sizeof(PageId) + 8ULL) >
          dev_->page_size()) {
        return Status::Corruption("A-cache block directory exceeds page");
      }
      uint64_t expect_count = 0;
      for (uint32_t j = seg_start; j <= depth; ++j) {
        expect_count += chain[j].rec.count;
      }
      if (ah.count != expect_count) {
        return Status::Corruption("A-cache count mismatch");
      }
      if (ah.pages != CeilDiv(ah.count, src_cap)) {
        return Status::Corruption("A-cache block directory size mismatch");
      }
      std::vector<PageId> a_pages(ah.pages);
      std::memcpy(a_pages.data(), buf.data() + sizeof(ah),
                  ah.pages * sizeof(PageId));
      std::vector<SrcPoint> a_recs;
      {
        BlockListCursor<SrcPoint> cur(dev_,
                                      std::span<const PageId>(a_pages));
        while (!cur.done()) PC_RETURN_IF_ERROR(cur.NextBlock(&a_recs));
      }
      if (a_recs.size() != ah.count) {
        return Status::Corruption("A-cache record count mismatch");
      }
      std::vector<uint64_t> per_src(depth - seg_start + 1, 0);
      for (size_t i = 0; i < a_recs.size(); ++i) {
        if (i > 0 && LessByXId(a_recs[i], a_recs[i - 1])) {
          return Status::Corruption("A-cache not x-ascending");
        }
        if (a_recs[i].src >= per_src.size()) {
          return Status::Corruption("A-cache source ordinal out of range");
        }
        ++per_src[a_recs[i].src];
      }
      for (uint32_t j = seg_start; j <= depth; ++j) {
        if (per_src[j - seg_start] != chain[j].rec.count) {
          return Status::Corruption("A-cache per-ancestor count mismatch");
        }
      }
      const std::byte* mn = buf.data() + sizeof(ah) +
                            ah.pages * sizeof(PageId);
      for (uint32_t bi = 0; bi < ah.pages; ++bi) {
        int64_t v;
        std::memcpy(&v, mn + bi * 8, 8);
        if (v != a_recs[static_cast<size_t>(bi) * src_cap].x) {
          return Status::Corruption("A-cache min-x directory stale");
        }
      }
      const uint64_t used = sizeof(ah) + ah.pages * (sizeof(PageId) + 8ULL);
      if (used + 8 + ah.pages * 8ULL <= dev_->page_size()) {
        const std::byte* tr = buf.data() + used;
        uint64_t magic;
        std::memcpy(&magic, tr, 8);
        if (magic != kAMaxTrailerMagic) {
          return Status::Corruption("A-cache max-x trailer missing");
        }
        for (uint32_t bi = 0; bi < ah.pages; ++bi) {
          const size_t last = std::min<size_t>(
              a_recs.size(), (static_cast<size_t>(bi) + 1) * src_cap);
          int64_t v;
          std::memcpy(&v, tr + 8 + bi * 8, 8);
          if (v != a_recs[last - 1].x) {
            return Status::Corruption("A-cache max-x trailer stale");
          }
        }
      }

      // --- S-index: one anchored sibling cache per (anchor, side), checked
      // against the actual siblings hanging off the live path. ---
      PC_RETURN_IF_ERROR(dev_->Read(rec.s_index, buf.data()));
      SIndexHeader sh;
      std::memcpy(&sh, buf.data(), sizeof(sh));
      if (sh.seg_start != seg_start) {
        return Status::Corruption("S-index segment start mismatch");
      }
      const uint32_t anchors = depth - seg_start + 1;
      if (sh.anchors != anchors) {
        return Status::Corruption("S-index anchor count mismatch");
      }
      if (sizeof(sh) + 2ULL * anchors * sizeof(PageId) > dev_->page_size()) {
        return Status::Corruption("S-index anchor directory exceeds page");
      }
      std::vector<PageId> sr(anchors), sl(anchors);
      std::memcpy(sr.data(), buf.data() + sizeof(sh),
                  anchors * sizeof(PageId));
      std::memcpy(sl.data(),
                  buf.data() + sizeof(sh) + anchors * sizeof(PageId),
                  anchors * sizeof(PageId));
      for (uint32_t k = 0; k < anchors; ++k) {
        for (int side = 0; side < 2; ++side) {
          std::vector<NodeRef> expect_sibs;
          for (uint32_t j = std::max<uint32_t>(1, seg_start + k); j <= depth;
               ++j) {
            NodeRef sib = kNullNodeRef;
            if (side == 0 && chain[j].side == 0) {
              sib = chain[j - 1].rec.right;
            } else if (side == 1 && chain[j].side == 1) {
              sib = chain[j - 1].rec.left;
            }
            if (sib.valid()) expect_sibs.push_back(sib);
          }
          const PageId hp = (side == 0 ? sr : sl)[k];
          if (expect_sibs.empty()) {
            if (hp != kInvalidPageId) {
              return Status::Corruption(
                  "anchored sibling cache present with no siblings in scope");
            }
            continue;
          }
          if (hp == kInvalidPageId) {
            return Status::Corruption("anchored sibling cache missing");
          }
          NodeCache cache;
          PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, hp, &cache));
          if (cache.sibs.size() != expect_sibs.size()) {
            return Status::Corruption(
                "anchored cache sibling directory size mismatch");
          }
          uint64_t s_sum = 0;
          for (size_t ord = 0; ord < expect_sibs.size(); ++ord) {
            Pst3NodeRec srec;
            PC_RETURN_IF_ERROR(reader.Read(expect_sibs[ord], &srec));
            const SibInfo& si = cache.sibs[ord];
            if (si.left != srec.left || si.right != srec.right) {
              return Status::Corruption("anchored cache child refs stale");
            }
            if (si.total != srec.count || si.contributed != si.total) {
              return Status::Corruption(
                  "anchored cache sibling counts mismatch");
            }
            s_sum += si.contributed;
          }
          if (cache.s_count != s_sum) {
            return Status::Corruption(
                "anchored cache contributed sum mismatch");
          }
          std::vector<SrcPoint> s_recs;
          {
            BlockListCursor<SrcPoint> cur(
                dev_, std::span<const PageId>(cache.s_pages));
            while (!cur.done()) PC_RETURN_IF_ERROR(cur.NextBlock(&s_recs));
          }
          if (s_recs.size() != cache.s_count) {
            return Status::Corruption("anchored cache record count mismatch");
          }
          std::vector<uint64_t> per(cache.sibs.size(), 0);
          for (size_t i = 0; i < s_recs.size(); ++i) {
            if (i > 0 && GreaterByY(s_recs[i].ToPoint(),
                                    s_recs[i - 1].ToPoint())) {
              return Status::Corruption("anchored cache not y-descending");
            }
            if (s_recs[i].src >= per.size()) {
              return Status::Corruption(
                  "anchored cache source ordinal out of range");
            }
            ++per[s_recs[i].src];
          }
          for (size_t ord = 0; ord < per.size(); ++ord) {
            if (per[ord] != cache.sibs[ord].contributed) {
              return Status::Corruption(
                  "anchored cache per-sibling count mismatch");
            }
          }
          if (!cache.s_tails.empty()) {
            if (cache.s_tails.size() != cache.s_pages.size()) {
              return Status::Corruption(
                  "anchored cache tail directory size mismatch");
            }
            for (size_t pg = 0; pg < cache.s_pages.size(); ++pg) {
              const size_t last = std::min<size_t>(
                  s_recs.size(), (pg + 1) * static_cast<size_t>(src_cap));
              if (cache.s_tails[pg] != s_recs[last - 1].y) {
                return Status::Corruption("anchored cache tail key stale");
              }
            }
          }
        }
      }
    }

    if (rec.left.valid()) {
      Item child = it;
      child.ref = rec.left;
      child.side = 0;
      child.parent_y_min = rec.y_min;
      child.has_x_hi = true;
      child.x_hi = rec.split_x;
      child.x_hi_id = rec.split_id;
      stack.push_back(child);
    }
    if (rec.right.valid()) {
      Item child = it;
      child.ref = rec.right;
      child.side = 1;
      child.parent_y_min = rec.y_min;
      child.has_x_lo = true;
      child.x_lo = rec.split_x;
      child.x_lo_id = rec.split_id;
      stack.push_back(child);
    }
  }
  if (total != n_) return Status::Corruption("total point count mismatch");
  return Status::OK();
}

Status ThreeSidedPst::Cluster() {
  if (!root_.valid()) return Status::OK();

  std::vector<PageTreeNode> ptree;
  PC_RETURN_IF_ERROR(
      CollectSkeletalPageTree<Pst3NodeRec>(dev_, root_, &ptree));
  const std::vector<uint32_t> veb = VanEmdeBoasOrder(ptree, 0);

  // Pass 1: skeletal pages in van Emde Boas order with every stored PageId
  // slot registered for rewrite.
  LayoutPlan plan;
  std::vector<std::byte> buf(dev_->page_size());
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    plan.Add(pid);
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      const uint32_t base =
          static_cast<uint32_t>(sizeof(hdr) + s * sizeof(Pst3NodeRec));
      plan.AddRef(pid, base + offsetof(Pst3NodeRec, left) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(Pst3NodeRec, right) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(Pst3NodeRec, points_page));
      plan.AddRef(pid, base + offsetof(Pst3NodeRec, a_header));
      plan.AddRef(pid, base + offsetof(Pst3NodeRec, s_index));
    }
  }

  // Pass 2: each node's cluster — A header + chain, S index with its
  // per-anchor sibling caches, points chain — in descent order.
  std::vector<std::byte> aux(dev_->page_size());
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      Pst3NodeRec rec;
      std::memcpy(&rec, buf.data() + sizeof(hdr) + s * sizeof(Pst3NodeRec),
                  sizeof(rec));
      if (rec.a_header != kInvalidPageId) {
        plan.Add(rec.a_header);
        PC_RETURN_IF_ERROR(dev_->Read(rec.a_header, aux.data()));
        AHeader ah;
        std::memcpy(&ah, aux.data(), sizeof(ah));
        if (sizeof(ah) + static_cast<uint64_t>(ah.pages) *
                             (sizeof(PageId) + 8) > dev_->page_size()) {
          return Status::Corruption(
              "A-cache header block directory exceeds page");
        }
        std::vector<PageId> a_chain(ah.pages);
        std::memcpy(a_chain.data(), aux.data() + sizeof(ah),
                    ah.pages * sizeof(PageId));
        for (uint32_t i = 0; i < ah.pages; ++i) {
          plan.AddRef(rec.a_header, static_cast<uint32_t>(
                                        sizeof(ah) + i * sizeof(PageId)));
        }
        plan.AddChain(a_chain);
      }
      if (rec.s_index != kInvalidPageId) {
        plan.Add(rec.s_index);
        PC_RETURN_IF_ERROR(dev_->Read(rec.s_index, aux.data()));
        SIndexHeader sh;
        std::memcpy(&sh, aux.data(), sizeof(sh));
        if (sizeof(sh) + 2ULL * sh.anchors * sizeof(PageId) >
            dev_->page_size()) {
          return Status::Corruption("S-index anchor directory exceeds page");
        }
        std::vector<PageId> anchor_pages(2ULL * sh.anchors);
        std::memcpy(anchor_pages.data(), aux.data() + sizeof(sh),
                    anchor_pages.size() * sizeof(PageId));
        for (uint32_t k = 0; k < anchor_pages.size(); ++k) {
          plan.AddRef(rec.s_index, static_cast<uint32_t>(
                                       sizeof(sh) + k * sizeof(PageId)));
        }
        for (PageId hp : anchor_pages) {
          if (hp == kInvalidPageId) continue;
          NodeCache cache;
          PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, hp, &cache));
          AppendCachePagesToPlan(hp, cache, &plan);
        }
      }
      std::vector<PageId> points_chain;
      PC_RETURN_IF_ERROR(
          CollectChainPages(dev_, rec.points_page, &points_chain));
      plan.AddChain(points_chain);
    }
  }

  if (plan.page_count() != owned_pages_.size()) {
    return Status::FailedPrecondition(
        "layout plan covers " + std::to_string(plan.page_count()) +
        " pages but the structure owns " +
        std::to_string(owned_pages_.size()) +
        " — Cluster() must run on a finished build before Save()");
  }
  auto remap = ComputeRemap(plan);
  if (!remap.ok()) return remap.status();
  PC_RETURN_IF_ERROR(ApplyLayout(dev_, plan, remap.value()));
  root_.page = remap.value().Of(root_.page);
  for (PageId& p : owned_pages_) p = remap.value().Of(p);
  return Status::OK();
}

}  // namespace pathcache
