// External interval tree with path caching — Theorem 3.5 of the paper:
// stabbing queries in O(log_B n + t/B) I/Os using O((n/B) log B) blocks.
//
// The paper only states the bounds ("a restricted version of interval trees
// in secondary memory"); the concrete design here, documented in DESIGN.md:
//
//  * A binary interval tree over the distinct endpoint values with FAT
//    LEAVES of ~B endpoints.  Intervals containing an internal node's
//    center live in that node's L-list (ascending lo) and R-list
//    (descending hi); intervals falling entirely inside a fat leaf's span
//    go to the leaf's pool — at most ~B/2 distinct intervals when
//    endpoints are distinct, i.e. O(1) blocks, filtered in memory.
//  * The tree is blocked into skeletal pages.  A query's branch direction
//    at every interior node is already determined by which page-root /
//    fat-leaf it later reaches, so each page root and each fat leaf v
//    carries a direction-split cache over its strictly-in-page ancestors:
//    CL(v) merges the first L-blocks of ancestors the path leaves to the
//    LEFT (scan while lo <= q; hi >= center > q holds automatically), and
//    CR(v) merges the first R-blocks of right-direction ancestors (scan
//    while hi >= q).  Continuation pointers resume into an ancestor's full
//    list when its cached block is consumed — a paid read.
//  * Page roots read their own (single) relevant list directly: at most
//    one wasteful I/O per page boundary, i.e. O(log_B n) total.
//  * A stab at q == center needs no special case: the descent continues to
//    a fat leaf and the node's whole list drains through the cache +
//    continuation path, since every record satisfies lo <= q <= hi.
//
// `enable_path_caching = false` reads every path node's list directly —
// O(log_2 n + t/B) I/Os at optimal O(n/B) space.

#ifndef PATHCACHE_CORE_EXT_INTERVAL_TREE_H_
#define PATHCACHE_CORE_EXT_INTERVAL_TREE_H_

#include <vector>

#include "core/pst_common.h"
#include "core/query_stats.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

struct ExtIntervalTreeOptions {
  bool enable_path_caching = true;
  /// Batch provably-consumed list pages into vectored device reads.  Pure
  /// transport optimization: counted I/Os and results are unchanged.
  bool enable_readahead = true;
};

/// A cached interval tagged with its source-node ordinal within the cache.
struct SrcInterval {
  int64_t lo = 0;
  int64_t hi = 0;
  uint64_t id = 0;
  uint32_t src = 0;
  uint32_t pad = 0;

  Interval ToInterval() const { return Interval{lo, hi, id}; }
  static SrcInterval From(const Interval& iv, uint32_t src_ordinal) {
    return SrcInterval{iv.lo, iv.hi, iv.id, src_ordinal, 0};
  }
};
static_assert(sizeof(SrcInterval) == 32);

/// Skeletal node record of the external interval tree.
struct IntNodeRec {
  int64_t center = 0;
  NodeRef left;
  NodeRef right;
  PageId l_head = kInvalidPageId;     // internal: L-list (ascending lo)
  PageId r_head = kInvalidPageId;     // internal: R-list (descending hi)
  PageId pool_page = kInvalidPageId;  // fat leaf: contained intervals
  PageId cache_page = kInvalidPageId; // page roots and fat leaves
  uint32_t count = 0;                 // intervals at this node / in pool
  uint32_t is_leaf = 0;
};
static_assert(sizeof(IntNodeRec) == 80);

/// Thread-safety: mutators (Build/Save/Open/Cluster/Destroy) require
/// external serialization.  Stab is const with no lazy mutation: concurrent
/// queries on distinct instances are safe; on the same instance they are
/// safe iff the PageDevice is thread-safe (see the contract note on
/// ExternalPst in pst_external.h).
class ExtIntervalTree {
 public:
  explicit ExtIntervalTree(PageDevice* dev, ExtIntervalTreeOptions opts = {});

  Status Build(std::vector<Interval> intervals);

  /// Reports every interval containing q.
  Status Stab(int64_t q, std::vector<Interval>* out,
              QueryStats* stats = nullptr) const;

  Status Destroy();

  /// Serializes the handle into a manifest page (kExtIntTreeMagic); Open()
  /// on a fresh instance restores it.  The manifest chain joins the owned
  /// set, so Destroy() from either instance reclaims everything.
  Result<PageId> Save();

  /// Restores a previously Save()d structure into this empty instance.
  Status Open(PageId manifest);

  /// Build-time disk-layout clustering (io/layout.h): skeletal pages in van
  /// Emde Boas order, then per node the direction-split cache cluster and
  /// the L/R-list (or leaf pool) chains in descent order.  Counted logical
  /// I/O is bit-identical before and after.  Call on a finished build
  /// BEFORE Save().
  Status Cluster();

  /// Exhaustively validates every on-disk invariant: the center BST against
  /// subtree bounds, L/R lists that sort correctly, hold the same interval
  /// multiset and straddle their center, leaf pools inside their span, and
  /// the direction-split caches (per-ancestor directory entries,
  /// continuation pointers, record contents and tail keys) against the
  /// actual in-page ancestor path.  Corruption on the first violation; the
  /// fsck hook behind VerifyStore.
  Status CheckStructure() const;

  uint64_t size() const { return n_; }
  StorageBreakdown storage() const { return storage_; }
  bool caching_enabled() const { return opts_.enable_path_caching; }

 private:
  /// Scans a blocked L- or R-list from `page`: records are reported while
  /// the sort key is on the query side (lo <= q ascending / hi >= q
  /// descending); *consumed counts records passing the key test.
  Status ScanList(int64_t q, PageId page, bool is_l_list,
                  uint64_t QueryStats::* role, std::vector<Interval>* out,
                  QueryStats* stats, uint64_t* consumed) const;
  Status ProcessCache(int64_t q, PageId cache_page, std::vector<Interval>* out,
                      QueryStats* stats) const;

  PageDevice* dev_;
  ExtIntervalTreeOptions opts_;
  NodeRef root_;
  uint64_t n_ = 0;
  StorageBreakdown storage_;
  std::vector<PageId> owned_pages_;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_EXT_INTERVAL_TREE_H_
