#include "core/region_tree.h"

#include <algorithm>
#include <string>

namespace pathcache {

namespace {

// Recursive builder over a (x, id)-sorted span of `pool`, using `scratch`
// for the top-k selection.  Appends the node for [lo, hi) and returns its
// index, or -1 for an empty range.
struct Builder {
  std::vector<Point>& pool;  // x-sorted; mutated in place (points removed)
  uint32_t region_size;
  std::vector<RegionNode> out;

  int32_t Build(size_t lo, size_t hi, uint32_t depth) {
    if (lo >= hi) return -1;
    const size_t m = hi - lo;
    const size_t k = std::min<size_t>(region_size, m);

    // Select the k points with the highest (y, id) in [lo, hi).
    std::vector<std::pair<Point, size_t>> by_y;
    by_y.reserve(m);
    for (size_t i = lo; i < hi; ++i) by_y.push_back({pool[i], i});
    std::nth_element(by_y.begin(), by_y.begin() + (k - 1), by_y.end(),
                     [](const auto& a, const auto& b) {
                       return GreaterByY(a.first, b.first);
                     });
    std::vector<bool> selected(m, false);
    std::vector<Point> top;
    top.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      selected[by_y[i].second - lo] = true;
      top.push_back(by_y[i].first);
    }
    std::sort(top.begin(), top.end(), GreaterByY);

    int32_t idx = static_cast<int32_t>(out.size());
    out.push_back(RegionNode{});
    out[idx].depth = depth;
    out[idx].y_min = top.back().y;
    out[idx].pts = std::move(top);

    if (k == m) {
      // Leaf: whole residue stored here.
      out[idx].split_x = out[idx].pts.front().x;
      out[idx].split_id = out[idx].pts.front().id;
      return idx;
    }

    // Compact the residue back into [lo, lo + rem), preserving x-order.
    size_t w = lo;
    for (size_t i = lo; i < hi; ++i) {
      if (!selected[i - lo]) pool[w++] = pool[i];
    }
    const size_t rem = w - lo;
    const size_t mid = lo + (rem - 1) / 2;  // left gets ceil(rem/2)
    out[idx].split_x = pool[mid].x;
    out[idx].split_id = pool[mid].id;
    int32_t l = Build(lo, mid + 1, depth + 1);
    int32_t r = Build(mid + 1, lo + rem, depth + 1);
    out[idx].left = l;
    out[idx].right = r;
    return idx;
  }
};

}  // namespace

std::vector<RegionNode> BuildRegionTree(std::vector<Point> points,
                                        uint32_t region_size) {
  if (points.empty() || region_size == 0) return {};
  std::sort(points.begin(), points.end(), LessByX);
  Builder b{points, region_size, {}};
  b.out.reserve(2 * points.size() / std::max<uint32_t>(1, region_size) + 4);
  b.Build(0, points.size(), 0);
  return b.out;
}

namespace {

struct Checker {
  const std::vector<RegionNode>& nodes;
  uint32_t region_size;
  size_t points_seen = 0;
  std::string error;

  // Verifies the subtree at idx; every stored (y, id) must be below
  // `y_bound` (exclusive, lexicographic) and x-keys within (lo, hi].
  void Check(int32_t idx, std::pair<int64_t, uint64_t> y_bound, bool has_lo,
             std::pair<int64_t, uint64_t> lo, bool has_hi,
             std::pair<int64_t, uint64_t> hi, uint32_t depth) {
    if (idx < 0 || !error.empty()) return;
    const RegionNode& n = nodes[idx];
    if (n.depth != depth) {
      error = "depth mismatch";
      return;
    }
    if (n.pts.empty()) {
      error = "empty region node";
      return;
    }
    if (n.pts.size() < region_size && !n.is_leaf()) {
      error = "underfull internal region";
      return;
    }
    for (size_t i = 0; i < n.pts.size(); ++i) {
      const Point& p = n.pts[i];
      if (i > 0 && !GreaterByY(n.pts[i - 1], p)) {
        error = "region points not y-sorted";
        return;
      }
      std::pair<int64_t, uint64_t> py{p.y, p.id};
      if (!(py < y_bound)) {
        error = "heap order violated";
        return;
      }
      std::pair<int64_t, uint64_t> px{p.x, p.id};
      if (has_lo && !(lo < px)) {
        error = "x below subtree range";
        return;
      }
      if (has_hi && !(px <= hi)) {
        error = "x above subtree range";
        return;
      }
    }
    if (n.y_min != n.pts.back().y) {
      error = "y_min mismatch";
      return;
    }
    points_seen += n.pts.size();
    std::pair<int64_t, uint64_t> min_y_id{n.pts.back().y, n.pts.back().id};
    std::pair<int64_t, uint64_t> split{n.split_x, n.split_id};
    Check(n.left, min_y_id, has_lo, lo, true, split, depth + 1);
    Check(n.right, min_y_id, true, split, has_hi, hi, depth + 1);
  }
};

}  // namespace

std::string CheckRegionTree(const std::vector<RegionNode>& nodes,
                            size_t expected_points, uint32_t region_size) {
  if (nodes.empty()) {
    return expected_points == 0 ? "" : "empty tree for non-empty input";
  }
  Checker c{nodes, region_size, 0, {}};
  c.Check(0, {INT64_MAX, UINT64_MAX}, false, {}, false, {}, 0);
  if (!c.error.empty()) return c.error;
  if (c.points_seen != expected_points) return "point count mismatch";
  return "";
}

}  // namespace pathcache
