// Polymorphic reopening of saved 2-sided indexes.
//
// ExternalPst::Save() / TwoLevelPst::Save() serialize a handle into a
// manifest page (plus chained page lists) on the device; this helper peeks
// the manifest's magic and restores the right concrete type — used by
// TwoLevelPst to reopen its per-region second-level structures, and by
// applications reopening a FilePageDevice store after a restart.

#ifndef PATHCACHE_CORE_PERSIST_H_
#define PATHCACHE_CORE_PERSIST_H_

#include <memory>
#include <span>
#include <vector>

#include "core/two_sided_index.h"
#include "io/page_device.h"

namespace pathcache {

/// Knobs for VerifyStore.
struct VerifyStoreOptions {
  /// Read every owned page once.  On a checksummed device stack this scrubs
  /// the CRC of every page the store owns, surfacing latent bit rot that no
  /// query path has touched yet.
  bool scrub_pages = true;
  /// Open each top-level structure and run its CheckStructure() pass.
  bool check_structures = true;
  /// Treat live pages owned by no manifest as Corruption (leaks).  Disable
  /// when the device hosts data outside the manifests being verified.
  bool expect_full_coverage = true;
  /// Record every claimed page id in VerifyStoreReport::claimed_pages.
  /// Higher-level checkers (the dynamic store's fsck) use the set to
  /// classify pages their own metadata owns versus true leaks.
  bool collect_claimed = false;
};

/// What VerifyStore saw.  Filled on success and on a leak failure; earlier
/// corruption aborts the walk with the report only partially meaningful.
struct VerifyStoreReport {
  uint64_t manifests = 0;          // manifests walked, children included
  uint64_t structures_checked = 0; // top-level CheckStructure() passes run
  uint64_t owned_pages = 0;        // distinct pages claimed by the manifests
  uint64_t scrubbed_pages = 0;     // pages read by the scrub pass
  uint64_t leaked_pages = 0;       // live pages no manifest claims
  /// Every page the manifests claim; filled only when
  /// VerifyStoreOptions::collect_claimed is set.
  std::vector<PageId> claimed_pages;
};

/// Offline consistency check over a store: walks every manifest (descending
/// into child manifests), claims each owned page exactly once (a page owned
/// by two manifests is Corruption, as is a live page owned by none), scrubs
/// each owned page with a read, and dispatches the per-structure
/// CheckStructure() deep validation by manifest magic.  The store is not
/// modified.  `manifests` must list every top-level manifest on the device
/// when `expect_full_coverage` is on.
Status VerifyStore(PageDevice* dev, std::span<const PageId> manifests,
                   const VerifyStoreOptions& opts = {},
                   VerifyStoreReport* report = nullptr);

/// Opens the saved index whose manifest lives at `manifest`; the returned
/// instance owns every page of the structure including the manifest chain
/// (its Destroy() reclaims the whole store).
Result<std::unique_ptr<TwoSidedIndex>> OpenTwoSidedIndex(PageDevice* dev,
                                                         PageId manifest);

/// Reads and validates (magic, header CRC, format version) the manifest at
/// `manifest`, returning its magic — the structure type tag — without
/// opening the structure.  Lets a caller holding a bag of manifest ids
/// dispatch each to the right concrete Open() (the serving layer's
/// AddStructure does exactly this).
Result<uint64_t> PeekManifestMagic(PageDevice* dev, PageId manifest);

/// Clusters a finished structure's disk layout (io/layout.h) and then saves
/// it, returning the manifest page id.  The order matters: the manifest
/// chain is outside the structure's page graph, so clustering must precede
/// Save() — this helper encodes that contract for every structure exposing
/// the Cluster()/Save() pair.
template <typename S>
Result<PageId> SaveClustered(S* s) {
  PC_RETURN_IF_ERROR(s->Cluster());
  return s->Save();
}

/// Save() + a durability barrier.  Save() only WRITES pages; on a real file
/// the data sits in the page cache until an fsync, so a crash after Save()
/// returned can lose any subset of the structure while the caller already
/// published the manifest id — the classic "saved but not durable" hole the
/// fsync audit closed.  This helper orders the barrier before the id is
/// returned: when it succeeds, the whole structure (manifest included) has
/// reached stable storage.  `dev` must be the (bottom of the) stack `s`
/// writes through.
template <typename S>
Result<PageId> SaveDurable(S* s, PageDevice* dev) {
  PC_ASSIGN_OR_RETURN(PageId manifest, s->Save());
  PC_RETURN_IF_ERROR(dev->Sync());
  return manifest;
}

/// Cluster() + Save() + durability barrier; see SaveDurable.
template <typename S>
Result<PageId> SaveClusteredDurable(S* s, PageDevice* dev) {
  PC_RETURN_IF_ERROR(s->Cluster());
  return SaveDurable(s, dev);
}

namespace internal {

/// Serializes a manifest header into its (pre-allocated) page.
Status WriteManifestHeader(PageDevice* dev, PageId page,
                           const PstManifestHeader& hdr);

/// Reads a manifest of the expected type: fills the header, the owned-page
/// list, the child-manifest list (when `children` is non-null) and appends
/// every page of the manifest chain itself to `manifest_chain` so the
/// opener can take ownership of it.
Status ReadManifest(PageDevice* dev, PageId page, uint64_t expected_magic,
                    PstManifestHeader* hdr, std::vector<PageId>* owned,
                    std::vector<PageId>* children,
                    std::vector<PageId>* manifest_chain);

}  // namespace internal

}  // namespace pathcache

#endif  // PATHCACHE_CORE_PERSIST_H_
