#include "core/persist.h"

#include <cstring>

#include "core/pst_common.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "io/block_list.h"

namespace pathcache {

namespace {

Status ReadManifestHeader(PageDevice* dev, PageId page,
                          PstManifestHeader* out) {
  std::vector<std::byte> buf(dev->page_size());
  PC_RETURN_IF_ERROR(dev->Read(page, buf.data()));
  std::memcpy(out, buf.data(), sizeof(*out));
  if (out->magic != kExternalPstMagic && out->magic != kTwoLevelPstMagic &&
      out->magic != kThreeSidedPstMagic && out->magic != kExtSegTreeMagic &&
      out->magic != kExtIntTreeMagic) {
    return Status::Corruption("not a pathcache manifest page");
  }
  return Status::OK();
}

}  // namespace

namespace internal {

Status WriteManifestHeader(PageDevice* dev, PageId page,
                           const PstManifestHeader& hdr) {
  std::vector<std::byte> buf(dev->page_size());
  std::memcpy(buf.data(), &hdr, sizeof(hdr));
  return dev->Write(page, buf.data());
}

Status ReadManifest(PageDevice* dev, PageId page, uint64_t expected_magic,
                    PstManifestHeader* hdr, std::vector<PageId>* owned,
                    std::vector<PageId>* children,
                    std::vector<PageId>* manifest_chain) {
  PC_RETURN_IF_ERROR(ReadManifestHeader(dev, page, hdr));
  if (hdr->magic != expected_magic) {
    return Status::InvalidArgument("manifest type mismatch");
  }
  manifest_chain->push_back(page);
  if (hdr->owned_head != kInvalidPageId) {
    BlockListRef ref{hdr->owned_head, hdr->owned_count};
    PageId walk = hdr->owned_head;
    while (walk != kInvalidPageId) {
      manifest_chain->push_back(walk);
      std::vector<std::byte> buf(dev->page_size());
      PC_RETURN_IF_ERROR(dev->Read(walk, buf.data()));
      BlockPageHeader bh;
      std::memcpy(&bh, buf.data(), sizeof(bh));
      walk = bh.next;
    }
    PC_RETURN_IF_ERROR(ReadBlockList<PageId>(dev, ref, owned));
  }
  if (children != nullptr && hdr->children_head != kInvalidPageId) {
    BlockListRef ref{hdr->children_head, hdr->children_count};
    PageId walk = hdr->children_head;
    while (walk != kInvalidPageId) {
      manifest_chain->push_back(walk);
      std::vector<std::byte> buf(dev->page_size());
      PC_RETURN_IF_ERROR(dev->Read(walk, buf.data()));
      BlockPageHeader bh;
      std::memcpy(&bh, buf.data(), sizeof(bh));
      walk = bh.next;
    }
    PC_RETURN_IF_ERROR(ReadBlockList<PageId>(dev, ref, children));
  }
  return Status::OK();
}

}  // namespace internal

Result<std::unique_ptr<TwoSidedIndex>> OpenTwoSidedIndex(PageDevice* dev,
                                                         PageId manifest) {
  PstManifestHeader hdr;
  PC_RETURN_IF_ERROR(ReadManifestHeader(dev, manifest, &hdr));
  if (hdr.magic == kExternalPstMagic) {
    auto pst = std::make_unique<ExternalPst>(dev);
    PC_RETURN_IF_ERROR(pst->Open(manifest));
    return std::unique_ptr<TwoSidedIndex>(std::move(pst));
  }
  if (hdr.magic != kTwoLevelPstMagic) {
    return Status::InvalidArgument("manifest is not a 2-sided index");
  }
  auto pst = std::make_unique<TwoLevelPst>(dev);
  PC_RETURN_IF_ERROR(pst->Open(manifest));
  return std::unique_ptr<TwoSidedIndex>(std::move(pst));
}

}  // namespace pathcache
