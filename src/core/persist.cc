#include "core/persist.h"

#include <cstring>
#include <string>
#include <unordered_set>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/pst_common.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "core/three_sided.h"
#include "io/block_list.h"
#include "io/crc32c.h"

namespace pathcache {

namespace {

// CRC32C over the header bytes with `header_crc` itself zeroed — the value
// WriteManifestHeader stamps and ReadManifestHeader demands back.
uint32_t ManifestHeaderCrc(const PstManifestHeader& hdr) {
  PstManifestHeader scratch = hdr;
  scratch.header_crc = 0;
  return Crc32c(&scratch, sizeof(scratch));
}

Status ReadManifestHeader(PageDevice* dev, PageId page,
                          PstManifestHeader* out) {
  if (dev->page_size() < sizeof(PstManifestHeader)) {
    return Status::InvalidArgument("page size below manifest header size");
  }
  std::vector<std::byte> buf(dev->page_size());
  PC_RETURN_IF_ERROR(dev->Read(page, buf.data()));
  std::memcpy(out, buf.data(), sizeof(*out));
  if (out->magic != kExternalPstMagic && out->magic != kTwoLevelPstMagic &&
      out->magic != kThreeSidedPstMagic && out->magic != kExtSegTreeMagic &&
      out->magic != kExtIntTreeMagic) {
    return Status::Corruption("page " + std::to_string(page) +
                              " is not a pathcache manifest");
  }
  // The CRC gate comes before any field is trusted (only the magic, which
  // the CRC also covers, is peeked first to give unrelated pages a clearer
  // error).  A failed gate means SOME header byte changed since Save() —
  // maybe one that merely skews storage accounting — so nothing below may
  // interpret the rest.
  if (out->header_crc != ManifestHeaderCrc(*out)) {
    return Status::Corruption("manifest page " + std::to_string(page) +
                              " header checksum mismatch");
  }
  if (out->format_version > kManifestFormatVersion) {
    return Status::Corruption(
        "manifest format version " + std::to_string(out->format_version) +
        " is newer than this build understands (" +
        std::to_string(kManifestFormatVersion) + ")");
  }
  return Status::OK();
}

/// Walks the block-list chain holding one of the manifest's PageId lists,
/// appending its pages to `manifest_chain` and its records to `out`, with
/// the count and chain length cross-checked against the header so a torn or
/// truncated chain degrades to Corruption.
Status ReadManifestList(PageDevice* dev, PageId head, uint64_t count,
                        const char* what, std::vector<PageId>* out,
                        std::vector<PageId>* manifest_chain) {
  if (head == kInvalidPageId) {
    if (count != 0) {
      return Status::Corruption(std::string("manifest ") + what +
                                " list lost: count is " +
                                std::to_string(count) + " but head is null");
    }
    return Status::OK();
  }
  const uint64_t expect_pages =
      CeilDiv(count, RecordsPerPage<PageId>(dev->page_size()));
  std::vector<std::byte> buf(dev->page_size());
  uint64_t walked = 0;
  for (PageId walk = head; walk != kInvalidPageId;) {
    if (walked++ >= expect_pages) {
      return Status::Corruption(std::string("manifest ") + what +
                                " chain longer than its record count needs");
    }
    manifest_chain->push_back(walk);
    PC_RETURN_IF_ERROR(dev->Read(walk, buf.data()));
    BlockPageHeader bh;
    std::memcpy(&bh, buf.data(), sizeof(bh));
    PC_RETURN_IF_ERROR(
        CheckBlockPageHeader(bh, RecordsPerPage<PageId>(dev->page_size())));
    walk = bh.next;
  }
  const size_t before = out->size();
  PC_RETURN_IF_ERROR(ReadBlockList<PageId>(dev, BlockListRef{head, count}, out));
  if (out->size() - before != count) {
    return Status::Corruption(
        std::string("manifest ") + what + " list truncated: header promises " +
        std::to_string(count) + " entries, chain holds " +
        std::to_string(out->size() - before));
  }
  return Status::OK();
}

}  // namespace

namespace internal {

Status WriteManifestHeader(PageDevice* dev, PageId page,
                           const PstManifestHeader& hdr) {
  if (dev->page_size() < sizeof(PstManifestHeader)) {
    return Status::InvalidArgument("page size below manifest header size");
  }
  std::vector<std::byte> buf(dev->page_size());
  PstManifestHeader stamped = hdr;
  stamped.format_version = kManifestFormatVersion;
  stamped.header_crc = 0;
  stamped.header_crc = ManifestHeaderCrc(stamped);
  std::memcpy(buf.data(), &stamped, sizeof(stamped));
  return dev->Write(page, buf.data());
}

Status ReadManifest(PageDevice* dev, PageId page, uint64_t expected_magic,
                    PstManifestHeader* hdr, std::vector<PageId>* owned,
                    std::vector<PageId>* children,
                    std::vector<PageId>* manifest_chain) {
  PC_RETURN_IF_ERROR(ReadManifestHeader(dev, page, hdr));
  if (hdr->magic != expected_magic) {
    return Status::InvalidArgument("manifest type mismatch");
  }
  manifest_chain->push_back(page);
  PC_RETURN_IF_ERROR(ReadManifestList(dev, hdr->owned_head, hdr->owned_count,
                                      "owned-page", owned, manifest_chain));
  if (children != nullptr) {
    PC_RETURN_IF_ERROR(ReadManifestList(dev, hdr->children_head,
                                        hdr->children_count, "child-manifest",
                                        children, manifest_chain));
  }
  return Status::OK();
}

}  // namespace internal

Status VerifyStore(PageDevice* dev, std::span<const PageId> manifests,
                   const VerifyStoreOptions& opts,
                   VerifyStoreReport* report) {
  VerifyStoreReport local;
  std::unordered_set<PageId> owned_set;
  auto claim = [&owned_set](PageId p) -> Status {
    if (!owned_set.insert(p).second) {
      return Status::Corruption("page " + std::to_string(p) +
                                " is owned twice across the store's "
                                "manifests");
    }
    return Status::OK();
  };

  // Ownership walk: every manifest's chain + owned list, descending into
  // child manifests (the two-level scheme's per-region structures).
  std::vector<PageId> todo(manifests.begin(), manifests.end());
  for (size_t i = 0; i < todo.size(); ++i) {
    if (i > dev->live_pages()) {
      return Status::Corruption(
          "manifest graph larger than the device (corrupt child list)");
    }
    PstManifestHeader hdr;
    PC_RETURN_IF_ERROR(ReadManifestHeader(dev, todo[i], &hdr));
    std::vector<PageId> owned, children, chain;
    PC_RETURN_IF_ERROR(internal::ReadManifest(dev, todo[i], hdr.magic, &hdr,
                                              &owned, &children, &chain));
    ++local.manifests;
    for (PageId p : chain) PC_RETURN_IF_ERROR(claim(p));
    for (PageId p : owned) PC_RETURN_IF_ERROR(claim(p));
    for (PageId c : children) todo.push_back(c);
  }
  local.owned_pages = owned_set.size();

  // Scrub: one read per owned page.  On a ChecksumPageDevice stack the read
  // verifies the CRC, so this pass catches rot on pages queries never touch.
  if (opts.scrub_pages) {
    std::vector<std::byte> buf(dev->page_size());
    for (PageId p : owned_set) {
      PC_RETURN_IF_ERROR(dev->Read(p, buf.data()));
      ++local.scrubbed_pages;
    }
  }

  // Deep structural validation, dispatched by manifest magic.  Child
  // manifests are covered by their parent's CheckStructure().
  if (opts.check_structures) {
    for (PageId m : manifests) {
      PstManifestHeader hdr;
      PC_RETURN_IF_ERROR(ReadManifestHeader(dev, m, &hdr));
      if (hdr.magic == kExternalPstMagic) {
        ExternalPst s(dev);
        PC_RETURN_IF_ERROR(s.Open(m));
        PC_RETURN_IF_ERROR(s.CheckStructure());
      } else if (hdr.magic == kTwoLevelPstMagic) {
        TwoLevelPst s(dev);
        PC_RETURN_IF_ERROR(s.Open(m));
        PC_RETURN_IF_ERROR(s.CheckStructure());
      } else if (hdr.magic == kThreeSidedPstMagic) {
        ThreeSidedPst s(dev);
        PC_RETURN_IF_ERROR(s.Open(m));
        PC_RETURN_IF_ERROR(s.CheckStructure());
      } else if (hdr.magic == kExtSegTreeMagic) {
        ExtSegmentTree s(dev);
        PC_RETURN_IF_ERROR(s.Open(m));
        PC_RETURN_IF_ERROR(s.CheckStructure());
      } else {
        ExtIntervalTree s(dev);
        PC_RETURN_IF_ERROR(s.Open(m));
        PC_RETURN_IF_ERROR(s.CheckStructure());
      }
      ++local.structures_checked;
    }
  }

  // Coverage: every live page should be spoken for.
  const uint64_t live = dev->live_pages();
  if (live < owned_set.size()) {
    return Status::Corruption(
        "manifests own " + std::to_string(owned_set.size()) +
        " pages but only " + std::to_string(live) + " are live");
  }
  local.leaked_pages = live - owned_set.size();
  if (opts.collect_claimed) {
    local.claimed_pages.assign(owned_set.begin(), owned_set.end());
  }
  if (report != nullptr) *report = local;
  if (opts.expect_full_coverage && local.leaked_pages != 0) {
    return Status::Corruption(
        std::to_string(local.leaked_pages) +
        " live pages are owned by no manifest (leaked)");
  }
  return Status::OK();
}

Result<uint64_t> PeekManifestMagic(PageDevice* dev, PageId manifest) {
  PstManifestHeader hdr;
  PC_RETURN_IF_ERROR(ReadManifestHeader(dev, manifest, &hdr));
  return hdr.magic;
}

Result<std::unique_ptr<TwoSidedIndex>> OpenTwoSidedIndex(PageDevice* dev,
                                                         PageId manifest) {
  PstManifestHeader hdr;
  PC_RETURN_IF_ERROR(ReadManifestHeader(dev, manifest, &hdr));
  if (hdr.magic == kExternalPstMagic) {
    auto pst = std::make_unique<ExternalPst>(dev);
    PC_RETURN_IF_ERROR(pst->Open(manifest));
    return std::unique_ptr<TwoSidedIndex>(std::move(pst));
  }
  if (hdr.magic != kTwoLevelPstMagic) {
    return Status::InvalidArgument("manifest is not a 2-sided index");
  }
  auto pst = std::make_unique<TwoLevelPst>(dev);
  PC_RETURN_IF_ERROR(pst->Open(manifest));
  return std::unique_ptr<TwoSidedIndex>(std::move(pst));
}

}  // namespace pathcache
