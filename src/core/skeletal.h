// Skeletal tree paging (Figure 2 of the paper).
//
// A binary tree with small per-node records is stored "in a blocked fashion
// by mapping subtrees of height log B into disk blocks", turning a log2 n
// pointer chase into a log_B n page chase.  The writer takes an array-based
// binary tree (children as indices), chunks it into height-h subtrees that
// fit one page each, patches the child links into (page, slot) NodeRefs and
// writes the pages.  The reader resolves NodeRefs with a one-page cache, so
// a root-to-leaf descent costs one device read per *page* on the path —
// exactly the skeletal-B-tree search the paper describes.
//
// Rec must be trivially copyable and expose `NodeRef left, right` members.

#ifndef PATHCACHE_CORE_SKELETAL_H_
#define PATHCACHE_CORE_SKELETAL_H_

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/layout.h"
#include "io/page_device.h"
#include "util/mathutil.h"

namespace pathcache {

/// Location of a tree node: a page plus a slot within it.
struct NodeRef {
  PageId page = kInvalidPageId;
  uint32_t slot = 0;
  uint32_t pad = 0;

  bool valid() const { return page != kInvalidPageId; }
  friend bool operator==(const NodeRef&, const NodeRef&) = default;
};
static_assert(sizeof(NodeRef) == 16);

inline constexpr NodeRef kNullNodeRef{};

struct SkeletalPageHeader {
  uint32_t count = 0;
  uint32_t rec_size = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(SkeletalPageHeader) == 16);

/// Nodes a page can hold for record type Rec.
template <typename Rec>
constexpr uint32_t SkeletalNodesPerPage(uint32_t page_size) {
  static_assert(std::is_trivially_copyable_v<Rec>);
  return (page_size - sizeof(SkeletalPageHeader)) / sizeof(Rec);
}

/// Upper bound on nodes any legitimate skeletal-tree walk can visit: the
/// device cannot hold more.  Walk loops (descents, work-list expansions)
/// check their step count against this so corrupt child refs that form a
/// cycle degrade to Corruption instead of an infinite loop.
template <typename Rec>
uint64_t SkeletalWalkLimit(const PageDevice* dev) {
  return (dev->live_pages() + 1) *
         static_cast<uint64_t>(SkeletalNodesPerPage<Rec>(dev->page_size()));
}

inline Status CheckSkeletalWalkStep(uint64_t steps, uint64_t limit) {
  if (steps >= limit) {
    return Status::Corruption(
        "tree walk visited more nodes than the device can hold (corrupt "
        "child refs forming a cycle)");
  }
  return Status::OK();
}

/// Result of writing a skeletal tree: the root ref and page accounting.
struct SkeletalTreeInfo {
  NodeRef root;
  uint64_t pages = 0;
  /// ref of every input node, indexed like the input arrays.
  std::vector<NodeRef> refs;
  /// node indices per page, in slot order (page_members[i] lives in
  /// page_ids[i]); kept so callers can rewrite pages after augmenting recs.
  std::vector<std::vector<int32_t>> page_members;
  std::vector<PageId> page_ids;
};

template <typename Rec>
Status RewriteSkeletalPages(PageDevice* dev, const SkeletalTreeInfo& info,
                            const std::vector<Rec>& recs,
                            const std::vector<int32_t>& left,
                            const std::vector<int32_t>& right);

/// Chunks the tree rooted at `root_idx` into height-limited subtrees, one
/// per page, and writes them.  `left`/`right` give child indices (-1 none).
/// The `left`/`right` NodeRef members of each Rec are overwritten.
template <typename Rec>
Result<SkeletalTreeInfo> WriteSkeletalTree(PageDevice* dev,
                                           std::vector<Rec> recs,
                                           const std::vector<int32_t>& left,
                                           const std::vector<int32_t>& right,
                                           int32_t root_idx) {
  SkeletalTreeInfo info;
  info.refs.assign(recs.size(), kNullNodeRef);
  if (root_idx < 0) return info;

  const uint32_t cap = SkeletalNodesPerPage<Rec>(dev->page_size());
  if (cap == 0) return Status::InvalidArgument("page too small for node rec");
  // Height of a complete subtree that surely fits: 2^h - 1 <= cap.
  const uint32_t chunk_h = std::max<uint32_t>(1, FloorLog2(cap + 1));

  // Pass 1: assign every node a (page, slot) by chunked BFS.
  struct Chunk {
    int32_t root;
  };
  std::vector<Chunk> chunk_queue{{root_idx}};
  std::vector<std::vector<int32_t>> page_nodes;
  std::vector<PageId> page_ids;
  for (size_t ci = 0; ci < chunk_queue.size(); ++ci) {
    int32_t croot = chunk_queue[ci].root;
    std::vector<int32_t> members;
    // BFS limited to chunk_h levels below croot.
    std::vector<std::pair<int32_t, uint32_t>> bfs{{croot, 0}};
    for (size_t bi = 0; bi < bfs.size(); ++bi) {
      auto [idx, lvl] = bfs[bi];
      members.push_back(idx);
      if (lvl + 1 < chunk_h) {
        if (left[idx] >= 0) bfs.push_back({left[idx], lvl + 1});
        if (right[idx] >= 0) bfs.push_back({right[idx], lvl + 1});
      } else {
        if (left[idx] >= 0) chunk_queue.push_back({left[idx]});
        if (right[idx] >= 0) chunk_queue.push_back({right[idx]});
      }
    }
    auto r = dev->Allocate();
    if (!r.ok()) return r.status();
    PageId pid = r.value();
    for (uint32_t s = 0; s < members.size(); ++s) {
      info.refs[members[s]] = NodeRef{pid, s, 0};
    }
    page_nodes.push_back(std::move(members));
    page_ids.push_back(pid);
  }
  info.pages = page_ids.size();
  info.root = info.refs[root_idx];
  info.page_members = std::move(page_nodes);
  info.page_ids = std::move(page_ids);

  PC_RETURN_IF_ERROR(RewriteSkeletalPages(dev, info, recs, left, right));
  return info;
}

/// (Re)writes every page of a previously laid-out skeletal tree from the
/// given recs, patching child refs.  Used by structures whose node records
/// gain layout-dependent fields (e.g., caches attached to page roots) after
/// the first write.
template <typename Rec>
Status RewriteSkeletalPages(PageDevice* dev, const SkeletalTreeInfo& info,
                            const std::vector<Rec>& recs,
                            const std::vector<int32_t>& left,
                            const std::vector<int32_t>& right) {
  std::vector<std::byte> buf(dev->page_size());
  for (size_t pi = 0; pi < info.page_ids.size(); ++pi) {
    std::memset(buf.data(), 0, buf.size());
    SkeletalPageHeader hdr;
    hdr.count = static_cast<uint32_t>(info.page_members[pi].size());
    hdr.rec_size = sizeof(Rec);
    std::memcpy(buf.data(), &hdr, sizeof(hdr));
    for (uint32_t s = 0; s < info.page_members[pi].size(); ++s) {
      int32_t idx = info.page_members[pi][s];
      Rec rec = recs[idx];
      rec.left = left[idx] >= 0 ? info.refs[left[idx]] : kNullNodeRef;
      rec.right = right[idx] >= 0 ? info.refs[right[idx]] : kNullNodeRef;
      std::memcpy(buf.data() + sizeof(hdr) + s * sizeof(Rec), &rec,
                  sizeof(Rec));
    }
    PC_RETURN_IF_ERROR(dev->Write(info.page_ids[pi], buf.data()));
  }
  return Status::OK();
}

/// Reads skeletal nodes with a one-page cache: consecutive reads within the
/// same page cost a single device read, so descents cost one read per page
/// boundary crossed — the paper's skeletal-B-tree search.  The cached page
/// is held through PagePin, so on pinning devices (buffer pools, the
/// simulated disk) node records are copied straight out of the frame with
/// no per-page buffer fill.
template <typename Rec>
class SkeletalTreeReader {
 public:
  explicit SkeletalTreeReader(PageDevice* dev) : dev_(dev) {}

  Status Read(NodeRef ref, Rec* out) {
    if (!ref.valid()) return Status::InvalidArgument("null node ref");
    if (ref.page != cached_page_) {
      PC_RETURN_IF_ERROR(pin_.Load(dev_, ref.page));
      cached_page_ = ref.page;
      ++pages_read_;
    }
    const std::byte* page = pin_.data();
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, page, sizeof(hdr));
    if (hdr.rec_size != sizeof(Rec) ||
        hdr.count > SkeletalNodesPerPage<Rec>(dev_->page_size())) {
      return Status::Corruption("skeletal page " + std::to_string(ref.page) +
                                ": bad header (count " +
                                std::to_string(hdr.count) + ", rec_size " +
                                std::to_string(hdr.rec_size) + ")");
    }
    if (ref.slot >= hdr.count) {
      return Status::Corruption("skeletal page " + std::to_string(ref.page) +
                                ": slot " + std::to_string(ref.slot) +
                                " out of range");
    }
    std::memcpy(out, page + sizeof(hdr) + ref.slot * sizeof(Rec),
                sizeof(Rec));
    return Status::OK();
  }

  /// Device reads issued so far (page-cache misses).
  uint64_t pages_read() const { return pages_read_; }

  /// Drops the one-page cache (e.g., between queries for cold measurements)
  /// and releases the pin backing it.
  void InvalidateCache() {
    cached_page_ = kInvalidPageId;
    pin_.Release();
  }

 private:
  PageDevice* dev_;
  PagePin pin_;
  PageId cached_page_ = kInvalidPageId;
  uint64_t pages_read_ = 0;
};

/// Collects the PAGE tree of a written skeletal tree for layout passes: one
/// PageTreeNode per page reachable from `root` (index 0 = the root page),
/// with an edge wherever a node in page u has a child stored in page v.
/// Chunking gives every page exactly one parent node, so the result is a
/// tree discovered in BFS order.  Costs one read per page.
template <typename Rec>
Status CollectSkeletalPageTree(PageDevice* dev, NodeRef root,
                               std::vector<PageTreeNode>* out) {
  out->clear();
  if (!root.valid()) return Status::OK();

  std::unordered_map<PageId, uint32_t> index;
  out->push_back(PageTreeNode{root.page, {}});
  index.emplace(root.page, 0);

  std::vector<std::byte> buf(dev->page_size());
  for (uint32_t i = 0; i < out->size(); ++i) {
    const PageId pid = (*out)[i].id;
    PC_RETURN_IF_ERROR(dev->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    if (hdr.rec_size != sizeof(Rec) ||
        hdr.count > SkeletalNodesPerPage<Rec>(dev->page_size())) {
      return Status::Corruption("bad skeletal page in page-tree walk");
    }
    for (uint32_t s = 0; s < hdr.count; ++s) {
      Rec rec;
      std::memcpy(&rec, buf.data() + sizeof(hdr) + s * sizeof(Rec),
                  sizeof(Rec));
      for (const NodeRef& child : {rec.left, rec.right}) {
        if (!child.valid() || child.page == pid) continue;
        auto [it, inserted] = index.emplace(
            child.page, static_cast<uint32_t>(out->size()));
        if (inserted) {
          (*out)[i].children.push_back(it->second);
          out->push_back(PageTreeNode{child.page, {}});
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace pathcache

#endif  // PATHCACHE_CORE_SKELETAL_H_
