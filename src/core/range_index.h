// General (4-sided) 2-D range reporting, composed from the paper's pieces
// (the rightmost query shape of Figure 1).
//
// The paper leaves optimal external 4-sided search open (Section 6).
// RangeIndex offers the honest composition available from its toolbox: a
// 3-sided query [x1, x2] x [y1, inf) answered optimally by ThreeSidedPst,
// followed by an in-memory clip at y2.  The guarantee is therefore
// O(log_B n + t'/B) I/Os where t' counts the points matching the x-range
// with y >= y1; when y2 sits at or above the data (t' = t) the query is
// optimal, and the gap between t' and t is exactly the open problem.
// Space: O((n/B) log^2 B), inherited from the 3-sided structure.

#ifndef PATHCACHE_CORE_RANGE_INDEX_H_
#define PATHCACHE_CORE_RANGE_INDEX_H_

#include <memory>
#include <vector>

#include "core/query_stats.h"
#include "core/three_sided.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

class RangeIndex {
 public:
  explicit RangeIndex(PageDevice* dev) : dev_(dev) {}

  Status Build(std::vector<Point> points) {
    if (three_ != nullptr) {
      return Status::FailedPrecondition("Build on a non-empty structure");
    }
    n_ = points.size();
    three_ = std::make_unique<ThreeSidedPst>(dev_, ThreeSidedPstOptions{});
    return three_->Build(std::move(points));
  }

  /// Reports all points inside the axis-aligned rectangle.
  Status QueryRange(const RangeQuery& q, std::vector<Point>* out,
                    QueryStats* stats = nullptr) const {
    if (three_ == nullptr || q.x_min > q.x_max || q.y_min > q.y_max) {
      return Status::OK();
    }
    std::vector<Point> open;
    PC_RETURN_IF_ERROR(three_->QueryThreeSided(
        ThreeSidedQuery{q.x_min, q.x_max, q.y_min}, &open, stats));
    out->reserve(out->size() + open.size());
    for (const Point& p : open) {
      if (p.y <= q.y_max) out->push_back(p);
    }
    if (stats != nullptr) stats->records_reported = out->size();
    return Status::OK();
  }

  Status Destroy() {
    if (three_ != nullptr) {
      PC_RETURN_IF_ERROR(three_->Destroy());
      three_.reset();
    }
    n_ = 0;
    return Status::OK();
  }

  uint64_t size() const { return n_; }
  StorageBreakdown storage() const {
    return three_ != nullptr ? three_->storage() : StorageBreakdown{};
  }

 private:
  PageDevice* dev_;
  std::unique_ptr<ThreeSidedPst> three_;
  uint64_t n_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_RANGE_INDEX_H_
